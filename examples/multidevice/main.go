// Multidevice: sweep one MCNC benchmark over all four devices of the
// paper, mirroring a row of Tables 2-5 and Table 6 at once.
//
//	go run ./examples/multidevice            # default s9234
//	go run ./examples/multidevice -circuit s13207
package main

import (
	"flag"
	"fmt"
	"log"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
)

func main() {
	name := flag.String("circuit", "s9234", "Table 1 circuit name")
	flag.Parse()

	spec, ok := gen.ByName(*name)
	if !ok {
		log.Fatalf("unknown circuit %q", *name)
	}
	fmt.Printf("%s: %d IOBs, %d CLBs (XC2000), %d CLBs (XC3000)\n",
		spec.Name, spec.IOBs, spec.CLBs2000, spec.CLBs3000)
	fmt.Printf("%-8s %6s %6s %4s %8s %10s %8s\n",
		"device", "S_MAX", "T_MAX", "M", "devices", "feasible", "time")

	for _, dev := range device.Catalog {
		h := gen.Generate(spec, dev.Family)
		m := device.LowerBound(h, dev)
		r, err := core.Partition(h, dev, core.Default())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %6d %6d %4d %8d %10v %8v\n",
			dev.Name, dev.SMax(), dev.TMax(), m, r.K, r.Feasible,
			r.Elapsed.Round(1000000))
	}
}
