// Baselines: compare FPART against the two baselines implemented here —
// the k-way.x-style recursive FM peeling and the flow-based FBB-MW-style
// method — on one benchmark, reporting block counts, fill quality, and
// runtime. This is one cell of Tables 2-5 expanded into detail.
//
//	go run ./examples/baselines                      # s13207 on XC3020
//	go run ./examples/baselines -circuit s38584 -device XC3042
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/flow"
	"fpart/internal/gen"
	"fpart/internal/kwayx"
	"fpart/internal/partition"
)

func main() {
	name := flag.String("circuit", "s13207", "Table 1 circuit name")
	devName := flag.String("device", "XC3020", "device name")
	flag.Parse()

	spec, ok := gen.ByName(*name)
	if !ok {
		log.Fatalf("unknown circuit %q", *name)
	}
	dev, ok := device.ByName(*devName)
	if !ok {
		log.Fatalf("unknown device %q", *devName)
	}
	h := gen.Generate(spec, dev.Family)
	m := device.LowerBound(h, dev)
	fmt.Printf("%s on %s: %d CLBs, %d IOBs, lower bound M=%d\n\n",
		spec.Name, dev.Name, h.TotalSize(), h.NumPads(), m)

	type outcome struct {
		name     string
		p        *partition.Partition
		k        int
		feasible bool
		elapsed  time.Duration
	}
	var outs []outcome

	start := time.Now()
	fr, err := core.Partition(h, dev, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	outs = append(outs, outcome{"FPART", fr.Partition, fr.K, fr.Feasible, time.Since(start)})

	start = time.Now()
	kr, err := kwayx.Partition(gen.Generate(spec, dev.Family), dev, kwayx.Config{})
	if err != nil {
		log.Fatal(err)
	}
	outs = append(outs, outcome{"k-way.x", kr.Partition, kr.K, kr.Feasible, time.Since(start)})

	start = time.Now()
	wr, err := flow.Partition(gen.Generate(spec, dev.Family), dev, flow.Config{})
	if err != nil {
		log.Fatal(err)
	}
	outs = append(outs, outcome{"flow-MW", wr.Partition, wr.K, wr.Feasible, time.Since(start)})

	fmt.Printf("%-8s %8s %9s %9s %10s %9s\n", "method", "devices", "feasible", "avg fill", "avg pins", "time")
	for _, o := range outs {
		var fill, pins float64
		n := 0
		for b := 0; b < o.p.NumBlocks(); b++ {
			id := partition.BlockID(b)
			if o.p.Nodes(id) == 0 {
				continue
			}
			fill += float64(o.p.Size(id)) / float64(dev.SMax())
			pins += float64(o.p.Terminals(id)) / float64(dev.TMax())
			n++
		}
		fmt.Printf("%-8s %8d %9v %8.0f%% %9.0f%% %9v\n",
			o.name, o.k, o.feasible, 100*fill/float64(n), 100*pins/float64(n),
			o.elapsed.Round(1000000))
	}
	fmt.Printf("\nthe paper's shape: FPART <= flow-MW <= k-way.x in devices used,\nwith FPART pulling ahead on the largest benchmarks (Tables 2-5).\n")
}
