// Replication: the technique FPART's strongest competitors (r+p.0, PROP)
// rely on — copying logic into a consuming device so its driving signals
// stop crossing. The FPART paper avoids it because its undirected input
// lacks functional information (§1); this repository's BLIF flow keeps
// direction, so the pass applies there.
//
// The example builds a broadcast-heavy circuit (shared decode logic fanning
// into many consumers), partitions it, and shows the terminal reduction
// replication buys.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"strings"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/netlist"
	"fpart/internal/partition"
	"fpart/internal/replicate"
	"fpart/internal/techmap"
)

// decoderBlif emits the replication-friendly shape: an inverted enable
// (nsel = !sel) consumed by every bank alongside the raw sel line. A bank's
// block already imports sel, so copying the one-gate inverter into the
// block trades the nsel crossing for nothing new — a strict pin win,
// exactly the transformation PROP's replication step performs.
func decoderBlif(banks, width int) string {
	var sb strings.Builder
	sb.WriteString(".model dec\n.inputs sel")
	for b := 0; b < banks; b++ {
		for w := 0; w < width; w++ {
			fmt.Fprintf(&sb, " in_%d_%d", b, w)
		}
	}
	sb.WriteString("\n.outputs")
	for b := 0; b < banks; b++ {
		for w := 0; w < width; w++ {
			fmt.Fprintf(&sb, " out_%d_%d", b, w)
		}
	}
	sb.WriteString("\n")
	// The shared "shaper": two strobe signals t0, t1 derived from sel. The
	// two gates pack into one output-saturated CLB, so no bank logic can
	// merge in, and every bank consumes t0, t1, and sel — the replication
	// sweet spot (copying the shaper trades two crossings for none).
	sb.WriteString(".names sel t0\n1 1\n")
	sb.WriteString(".names t0 sel t1\n10 1\n")
	for b := 0; b < banks; b++ {
		for w := 0; w < width; w++ {
			sig := []string{"t0", "t1", "sel"}[w%3]
			fmt.Fprintf(&sb, ".names %s in_%d_%d out_%d_%d\n11 1\n", sig, b, w, b, w)
		}
	}
	sb.WriteString(".end\n")
	return sb.String()
}

func main() {
	c, err := netlist.ReadBLIF(strings.NewReader(decoderBlif(6, 8)))
	if err != nil {
		log.Fatal(err)
	}
	m, err := techmap.Map(c, techmap.XC3000Arch)
	if err != nil {
		log.Fatal(err)
	}
	h, err := m.Hypergraph()
	if err != nil {
		log.Fatal(err)
	}
	dev := device.Device{Name: "small", Family: device.XC3000, DatasheetCells: 16, Pins: 40, Fill: 1.0}
	r, err := core.Partition(h, dev, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoder circuit: %d CLBs, %d pads -> %d devices (feasible=%v)\n",
		h.NumInterior(), h.NumPads(), r.K, r.Feasible)

	res, err := replicate.Reduce(m, h, r.Partition, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replication: %d copies, total terminal reduction %d, still feasible=%v\n",
		res.CopiesAdded, res.TotalReduction(), res.Feasible)
	for b := 0; b < r.Partition.NumBlocks(); b++ {
		id := partition.BlockID(b)
		before, ok := res.TerminalsBefore[id]
		if !ok {
			continue
		}
		after := res.TerminalsAfter[id]
		marker := ""
		if after < before {
			marker = fmt.Sprintf("  <- %d replicas", len(res.Replicas[id]))
		}
		fmt.Printf("  block %d: T %d -> %d%s\n", b, before, after, marker)
	}
}
