// IOcritical: demonstrate the external-I/O balancing factor d_k^E (§3.4)
// on an I/O-critical design — one where ⌈|Y0|/T_MAX⌉ exceeds ⌈S0/S_MAX⌉,
// so the pin constraint, not logic capacity, decides the device count.
//
// The paper's motivation: without balancing, early blocks hoard few
// external I/Os and the leftover externals make the final remainder
// infeasible. This example partitions the same pad-heavy circuit with the
// published cost function and with λ-weights that ignore I/O (ablating
// λ^T, the I/O infeasibility weight) and reports the damage.
//
//	go run ./examples/iocritical
package main

import (
	"fmt"
	"log"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
)

func main() {
	// A pad-heavy synthetic circuit: 300 CLBs but 260 pads.
	h := gen.Synthetic(300, 260, 7, false)
	dev := device.Device{Name: "pin-poor", Family: device.XC3000, DatasheetCells: 120, Pins: 48, Fill: 1.0}
	m := device.LowerBound(h, dev)
	fmt.Printf("circuit: %v\n", h)
	fmt.Printf("device: %v\n", dev)
	fmt.Printf("size bound ⌈S0/S_MAX⌉ = %d, I/O bound ⌈|Y0|/T_MAX⌉ = %d -> M = %d (I/O-critical)\n\n",
		(h.TotalSize()+dev.SMax()-1)/dev.SMax(), (h.NumPads()+dev.TMax()-1)/dev.TMax(), m)

	run := func(label string, cfg core.Config) {
		r, err := core.Partition(h, dev, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var minPads, maxPads int = 1 << 30, 0
		p := r.Partition
		for b := 0; b < p.NumBlocks(); b++ {
			id := partition.BlockID(b)
			if p.Nodes(id) == 0 {
				continue
			}
			if pd := p.Pads(id); pd < minPads {
				minPads = pd
			}
			if pd := p.Pads(id); pd > maxPads {
				maxPads = pd
			}
		}
		fmt.Printf("%-28s devices=%2d feasible=%v  external pads per block: min=%d max=%d\n",
			label, r.K, r.Feasible, minPads, maxPads)
	}

	run("published cost (λT=0.6)", core.Default())

	cfg := core.Default()
	cfg.Engine.Cost = partition.CostParams{LambdaS: 1.0, LambdaT: 0.0, LambdaR: 0.1}
	run("I/O-blind cost (λT=0)", cfg)

	cfg2 := core.Default()
	cfg2.Engine = sanchis.Default()
	cfg2.Engine.CutObjective = true // the [9]-style net-count-only objective
	run("cut-only objective ([9])", cfg2)

	fmt.Println("\nzeroing the I/O infeasibility weight λT strands external pads (min pads")
	fmt.Println("per block drops to 0) and costs extra devices; the published weights keep")
	fmt.Println("the pin constraint visible to every move decision.")
}
