// Heterogeneous: minimize total device *cost* over a menu of priced FPGA
// types instead of the device count for a single type — the heterogeneous
// extension of Kuznar et al. (reference [10] of the FPART paper), layered
// on top of FPART.
//
//	go run ./examples/heterogeneous              # default s13207
//	go run ./examples/heterogeneous -circuit s38417
package main

import (
	"flag"
	"fmt"
	"log"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hetero"
)

func main() {
	name := flag.String("circuit", "s13207", "Table 1 circuit name")
	flag.Parse()

	spec, ok := gen.ByName(*name)
	if !ok {
		log.Fatalf("unknown circuit %q", *name)
	}
	h := gen.Generate(spec, device.XC3000)
	menu := hetero.XilinxMenu()
	fmt.Printf("%s: %d CLBs, %d pads\n", spec.Name, h.TotalSize(), h.NumPads())
	fmt.Println("menu:")
	for _, d := range menu {
		fmt.Printf("  %-8s S_MAX=%3d T_MAX=%3d cost=%.1f\n", d.Name, d.SMax(), d.TMax(), d.Cost)
	}

	// Single-type costs for comparison.
	fmt.Println("\nsingle-type solutions:")
	for _, d := range menu {
		r, err := core.Partition(h, d.Device, core.Default())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d × %-8s cost %.1f (feasible=%v)\n", r.K, d.Name, float64(r.K)*d.Cost, r.Feasible)
	}

	r, err := hetero.Partition(h, menu, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheterogeneous solution (anchored on %s): %d devices, total cost %.1f\n",
		r.Anchor.Name, r.K, r.TotalCost)
	used := map[string]int{}
	for _, a := range r.Blocks {
		used[a.Device.Name]++
	}
	for _, d := range menu {
		if n := used[d.Name]; n > 0 {
			fmt.Printf("  %d × %-8s (%.1f)\n", n, d.Name, float64(n)*d.Cost)
		}
	}
}
