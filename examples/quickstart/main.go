// Quickstart: build a small circuit hypergraph with the library API,
// partition it onto an XC3020 with FPART under a deadline, and print the
// blocks plus the effort counters.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

func main() {
	// A toy design: four 30-cell modules connected in a chain, each with a
	// handful of external I/Os. One XC3020 holds 57 cells / 64 pins, so
	// two devices suffice.
	var b hypergraph.Builder
	var modules [][]hypergraph.NodeID
	for m := 0; m < 4; m++ {
		var cells []hypergraph.NodeID
		for i := 0; i < 30; i++ {
			cells = append(cells, b.AddInterior(fmt.Sprintf("m%d_c%d", m, i), 1))
		}
		// Local connectivity inside the module.
		for i := 0; i+1 < len(cells); i++ {
			b.AddNet(fmt.Sprintf("m%d_n%d", m, i), cells[i], cells[i+1])
			if i+3 < len(cells) {
				b.AddNet(fmt.Sprintf("m%d_s%d", m, i), cells[i], cells[i+3])
			}
		}
		// Four external pads per module.
		for p := 0; p < 4; p++ {
			pad := b.AddPad(fmt.Sprintf("m%d_io%d", m, p))
			b.AddNet(fmt.Sprintf("m%d_pn%d", m, p), pad, cells[p])
		}
		modules = append(modules, cells)
	}
	// A thin bus between adjacent modules.
	for m := 0; m+1 < 4; m++ {
		for w := 0; w < 3; w++ {
			b.AddNet(fmt.Sprintf("bus%d_%d", m, w), modules[m][29-w], modules[m+1][w])
		}
	}
	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	dev := device.XC3020
	fmt.Printf("circuit: %v\n", h)
	fmt.Printf("device:  %v, lower bound M=%d\n", dev, device.LowerBound(h, dev))

	// core.Run is the context-aware entry point: the deadline bounds the
	// search, and the sink streams one event per algorithm step. Drop both
	// (or call core.Partition) when you just want the answer.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cfg := core.Default()
	cfg.Sink = obs.NewTextSink(os.Stdout)

	result, err := core.Run(ctx, h, dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPART found %d blocks (feasible=%v) in %v\n",
		result.K, result.Feasible, result.Elapsed.Round(time.Millisecond))
	result.Stats.Report(os.Stdout)

	p := result.Partition
	for bID := 0; bID < p.NumBlocks(); bID++ {
		id := partition.BlockID(bID)
		if p.Nodes(id) == 0 {
			continue
		}
		fmt.Printf("  block %d: %3d cells, %2d terminals (S_MAX=%d, T_MAX=%d)\n",
			bID, p.Size(id), p.Terminals(id), dev.SMax(), dev.TMax())
	}

	// Which module went where?
	for m, cells := range modules {
		counts := map[partition.BlockID]int{}
		for _, c := range cells {
			counts[p.Block(c)]++
		}
		fmt.Printf("  module %d spread: %v\n", m, counts)
	}
}
