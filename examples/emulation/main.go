// Emulation: the downstream flow of multi-FPGA partitioning — partition a
// circuit with FPART, place the blocks onto an emulation board, and route
// the inter-FPGA signals over three interconnect topologies, reporting
// wire usage and routability. This is the system context (logic emulation)
// that motivates the paper's pin-constrained partitioning problem.
//
//	go run ./examples/emulation
//	go run ./examples/emulation -circuit s13207 -device XC3042
package main

import (
	"flag"
	"fmt"
	"log"

	"fpart/internal/board"
	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
)

func main() {
	name := flag.String("circuit", "s9234", "Table 1 circuit name")
	devName := flag.String("device", "XC3042", "device name")
	wires := flag.Int("wires", 150, "wires per adjacent board link")
	flag.Parse()

	spec, ok := gen.ByName(*name)
	if !ok {
		log.Fatalf("unknown circuit %q", *name)
	}
	dev, ok := device.ByName(*devName)
	if !ok {
		log.Fatalf("unknown device %q", *devName)
	}
	h := gen.Generate(spec, dev.Family)
	r, err := core.Partition(h, dev, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: %d devices (feasible=%v), %d cut nets\n\n",
		spec.Name, dev.Name, r.K, r.Feasible, r.Partition.Cut())

	cols := 1
	for cols*cols < r.K {
		cols++
	}
	boards := []board.Board{
		{Slots: r.K, Topology: board.Crossbar, WiresPerLink: *wires},
		{Slots: r.K, Topology: board.Chain, WiresPerLink: *wires},
		{Slots: cols * cols, Topology: board.Mesh, Cols: cols, WiresPerLink: *wires},
	}
	fmt.Printf("%-10s %10s %10s %14s %10s\n", "topology", "internets", "hops", "max link load", "routable")
	for _, bd := range boards {
		pl, err := board.Place(r.Partition, bd)
		if err != nil {
			log.Fatal(err)
		}
		rep := pl.Evaluate(r.Partition)
		fmt.Printf("%-10s %10d %10d %14d %10v\n",
			bd.Topology, rep.InterNets, rep.TotalHops, rep.MaxLinkLoad, rep.Routable)
	}
	fmt.Println("\ncrossbars route anything at one hop; chains pay distance and can")
	fmt.Println("exhaust per-link wires — the same pin pressure the partitioner fights.")
}
