package wcdp

import (
	"testing"

	"fpart/internal/device"
	"fpart/internal/gen"
)

// TestSuiteShape pins WCDP's published position: feasible everywhere,
// behind the FM-family methods but in their neighbourhood.
func TestSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, c := range []string{"c3540", "s9234", "s13207"} {
		spec, _ := gen.ByName(c)
		h := gen.Generate(spec, device.XC3000)
		for _, dev := range []device.Device{device.XC3042, device.XC3090} {
			r, err := Partition(h, dev, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Feasible {
				t.Errorf("%s/%s infeasible", c, dev.Name)
				continue
			}
			if r.K > 2*r.M {
				t.Errorf("%s/%s: K=%d > 2·M=%d", c, dev.Name, r.K, 2*r.M)
			}
			t.Logf("%s/%s: K=%d M=%d", c, dev.Name, r.K, r.M)
		}
	}
}

// TestOrderingAblation shows the clustering order beating max-adjacency.
func TestOrderingAblation(t *testing.T) {
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	cl, err := Partition(h, device.XC3042, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := Partition(h, device.XC3042, Config{MaxAdjacencyOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if cl.K > ma.K {
		t.Errorf("clustering order (%d) should not lose to max-adjacency (%d)", cl.K, ma.K)
	}
	t.Logf("clustering K=%d, max-adjacency K=%d, M=%d", cl.K, ma.K, cl.M)
}
