// Package wcdp implements an ordering + dynamic-programming partitioning
// baseline in the spirit of WCDP (Huang & Kahng, FPGA'95, reference [6] of
// the FPART paper: "WINDOW ordering, clustering and dynamic programming").
//
// The method has two stages:
//
//  1. A max-adjacency linear ordering of the nodes: starting from the
//     biggest node, repeatedly append the unordered node with the most
//     connectivity to the ordered prefix. This concentrates each cluster
//     of the circuit into a contiguous run of the ordering.
//  2. A dynamic program that cuts the ordering into the minimum number of
//     consecutive segments, each of which meets the device constraints
//     (size, terminals, and the secondary resource). Segment terminal
//     counts follow the same model as the partition bookkeeping: a net
//     costs a pin wherever it crosses the segment boundary, and each pad
//     costs its IOB.
//
// The DP is exact *for the chosen ordering*; overall quality depends on
// how well the ordering linearizes the circuit, which is why the published
// WCDP trails FBB-MW and FPART on most instances (Tables 4–5).
package wcdp

import (
	"errors"
	"fmt"
	"time"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/multilevel"
	"fpart/internal/partition"
)

// Result mirrors the other drivers' results.
type Result struct {
	Partition *partition.Partition
	K         int
	M         int
	Feasible  bool
	// Order is the linear arrangement used by the DP.
	Order   []hypergraph.NodeID
	Elapsed time.Duration
}

// Config tunes the baseline. The zero value is canonical.
type Config struct {
	// MaxSegmentNodes bounds DP segment length in nodes; zero derives it
	// from the device size (S_MAX + pad slack).
	MaxSegmentNodes int
	// MaxAdjacencyOrder switches the linear arrangement from the default
	// clustering order (DFS of a coarsening hierarchy, the "C" in WCDP)
	// to a plain max-adjacency sweep — an ablation that demonstrates how
	// much the ordering quality matters.
	MaxAdjacencyOrder bool
}

// Partition runs ordering + DP.
func Partition(h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	start := time.Now()
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	n := h.NumNodes()
	if n == 0 {
		return nil, errors.New("wcdp: empty circuit")
	}
	for _, id := range h.InteriorIDs() {
		if h.Node(id).Size > dev.SMax() {
			return nil, fmt.Errorf("wcdp: node %q larger than device (%d > %d)",
				h.Node(id).Name, h.Node(id).Size, dev.SMax())
		}
	}

	var order []hypergraph.NodeID
	if cfg.MaxAdjacencyOrder {
		order = maxAdjacencyOrder(h)
	} else {
		order = multilevel.ClusterOrder(h)
	}
	maxSeg := cfg.MaxSegmentNodes
	if maxSeg == 0 {
		// Unit-size interiors dominate; allow the segment to hold a full
		// device of logic plus its share of pads.
		maxSeg = dev.SMax() + dev.TMax() + 8
	}

	parent, ok := segmentDP(h, dev, order, maxSeg)
	res := &Result{M: device.LowerBound(h, dev), Order: order}
	p := partition.New(h, dev)
	res.Partition = p
	if !ok {
		// No feasible segmentation under the ordering (e.g., a node whose
		// incident pins exceed T_MAX alone); report infeasible with
		// everything in block 0.
		res.K = 1
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Reconstruct segments right-to-left; assign each to a block.
	var bounds []int
	for i := n; i > 0; i = parent[i] {
		bounds = append(bounds, i)
	}
	// bounds is descending: [n, ..., firstSegmentEnd]; segments are
	// (parent[i], i].
	for si := len(bounds) - 1; si >= 0; si-- {
		end := bounds[si]
		begin := parent[end]
		var blk partition.BlockID
		if si == len(bounds)-1 {
			blk = 0 // reuse the initial block for the first segment
		} else {
			blk = p.AddBlock()
		}
		for oi := begin; oi < end; oi++ {
			p.Move(order[oi], blk)
		}
	}
	res.K = 0
	for b := 0; b < p.NumBlocks(); b++ {
		if p.Nodes(partition.BlockID(b)) > 0 {
			res.K++
		}
	}
	res.Feasible = p.Classify() == partition.FeasibleSolution
	res.Elapsed = time.Since(start)
	return res, nil
}

// maxAdjacencyOrder produces the linear arrangement: biggest interior node
// first, then repeatedly the node most connected to the prefix (ties to
// lower ID); disconnected leftovers restart from the next biggest node.
func maxAdjacencyOrder(h *hypergraph.Hypergraph) []hypergraph.NodeID {
	n := h.NumNodes()
	ordered := make([]bool, n)
	attract := make([]int, n)
	order := make([]hypergraph.NodeID, 0, n)

	nextSeed := func() hypergraph.NodeID {
		var best hypergraph.NodeID = -1
		for v := 0; v < n; v++ {
			id := hypergraph.NodeID(v)
			if ordered[v] {
				continue
			}
			if best < 0 {
				best = id
				continue
			}
			bn, cn := h.Node(best), h.Node(id)
			if cn.Kind == hypergraph.Interior && bn.Kind != hypergraph.Interior {
				best = id
			} else if cn.Kind == bn.Kind && cn.Size > bn.Size {
				best = id
			}
		}
		return best
	}
	appendNode := func(v hypergraph.NodeID) {
		ordered[v] = true
		order = append(order, v)
		for _, e := range h.Nets(v) {
			for _, u := range h.Pins(e) {
				if !ordered[u] {
					attract[u]++
				}
			}
		}
	}

	for len(order) < n {
		var best hypergraph.NodeID = -1
		bestA := 0
		for v := 0; v < n; v++ {
			if ordered[v] {
				continue
			}
			if a := attract[v]; a > bestA || (a == bestA && a > 0 && hypergraph.NodeID(v) < best) {
				bestA, best = a, hypergraph.NodeID(v)
			}
		}
		if best < 0 || bestA == 0 {
			best = nextSeed()
		}
		appendNode(best)
	}
	return order
}

// segmentDP computes, for every prefix length i, the minimum number of
// feasible segments covering order[0:i]; parent[i] records the start of
// the last segment. Returns ok=false when no full segmentation exists.
func segmentDP(h *hypergraph.Hypergraph, dev device.Device, order []hypergraph.NodeID, maxSeg int) (parent []int, ok bool) {
	n := len(order)
	const inf = int(1) << 30
	f := make([]int, n+1)
	parent = make([]int, n+1)
	pos := make([]int, h.NumNodes()) // node -> position in order
	for i, v := range order {
		pos[v] = i
	}
	for i := 1; i <= n; i++ {
		f[i] = inf
		parent[i] = -1
	}

	// For each segment end i, extend the segment leftward maintaining
	// size, aux, and terminal counts incrementally.
	pinsIn := make(map[hypergraph.NetID]int)
	for i := 1; i <= n; i++ {
		for k := range pinsIn {
			delete(pinsIn, k)
		}
		size, aux, pads, term := 0, 0, 0, 0
		lo := i - maxSeg
		if lo < 0 {
			lo = 0
		}
		for j := i - 1; j >= lo; j-- {
			// Segment is order[j:i]; add node order[j] on the left.
			v := order[j]
			nd := h.Node(v)
			size += nd.Size
			aux += nd.Aux
			if nd.Kind == hypergraph.Pad {
				pads++
			}
			for _, e := range h.Nets(v) {
				before := pinsIn[e]
				after := before + 1
				pinsIn[e] = after
				total := len(h.Pins(e))
				// A net crosses when the segment holds some but not all of
				// its pins... but pins to the RIGHT of i or LEFT of j are
				// both outside; total inside is `after` only if every pin
				// of e within [j, i) has been added — which holds because
				// we add leftward from i-1 and pins right of i are never
				// inside. So crossing iff after < total AND after > 0,
				// *except* pins between j and i-1 not yet visited... those
				// will be added as j decreases; at this j the segment is
				// exactly [j, i), and pinsIn counts pins with position in
				// [j, i) because each was added when its position was
				// reached. Correct as-is.
				wasCross := before > 0 && before < total
				isCross := after > 0 && after < total
				if isCross && !wasCross {
					term++
				} else if !isCross && wasCross {
					term--
				}
			}
			if size > dev.SMax() {
				break // growing further only increases size
			}
			if dev.AuxCap > 0 && aux > dev.AuxCap {
				break
			}
			if term+pads <= dev.TMax() && f[j] != inf && f[j]+1 < f[i] {
				f[i] = f[j] + 1
				parent[i] = j
			}
		}
	}
	if f[n] == inf {
		return parent, false
	}
	return parent, true
}
