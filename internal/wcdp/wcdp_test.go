package wcdp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func chainGraph(t testing.TB, n int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.AddInterior("v", 1)
	}
	for i := 0; i+1 < n; i++ {
		b.AddNet("e", hypergraph.NodeID(i), hypergraph.NodeID(i+1))
	}
	return b.MustBuild()
}

func TestOrderingCoversAllNodes(t *testing.T) {
	h := chainGraph(t, 20)
	order := maxAdjacencyOrder(h)
	if len(order) != 20 {
		t.Fatalf("order length %d", len(order))
	}
	seen := map[hypergraph.NodeID]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("node %d ordered twice", v)
		}
		seen[v] = true
	}
}

func TestOrderingFollowsChain(t *testing.T) {
	// On a path the max-adjacency order must be contiguous: each next node
	// adjacent to the prefix, so positions of neighbours differ by small
	// amounts — verify segments of the chain stay contiguous by checking
	// the order is a walk from some start.
	h := chainGraph(t, 12)
	order := maxAdjacencyOrder(h)
	pos := make([]int, 12)
	for i, v := range order {
		pos[v] = i
	}
	// Every chain edge should connect nodes at nearby order positions.
	far := 0
	for i := 0; i+1 < 12; i++ {
		d := pos[i] - pos[i+1]
		if d < 0 {
			d = -d
		}
		if d > 2 {
			far++
		}
	}
	if far > 1 {
		t.Errorf("%d chain edges stretched across the ordering", far)
	}
}

func TestDPCutsChainOptimally(t *testing.T) {
	// 30-cell chain, device of 10 cells / plenty of pins: exactly 3 blocks.
	h := chainGraph(t, 30)
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.K != 3 {
		t.Errorf("K=%d feasible=%v, want 3 feasible", r.K, r.Feasible)
	}
	if err := r.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	// Blocks must be contiguous segments: each block's cut contribution on
	// a chain is at most 2.
	for b := 0; b < r.Partition.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if r.Partition.Nodes(id) == 0 {
			continue
		}
		if tc := r.Partition.Terminals(id); tc > 2 {
			t.Errorf("block %d has %d terminals on a chain, want <= 2", b, tc)
		}
	}
}

func TestDPRespectsPinConstraint(t *testing.T) {
	// A star cannot be cut anywhere cheaply: center with 20 leaves, device
	// pins=3. Segments with the center inside but leaves outside blow T.
	var b hypergraph.Builder
	center := b.AddInterior("c", 1)
	for i := 0; i < 20; i++ {
		leaf := b.AddInterior("l", 1)
		b.AddNet("n", center, leaf)
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 30, Pins: 25, Fill: 1.0}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Whole circuit fits one device (21 cells, T=0).
	if r.K != 1 || !r.Feasible {
		t.Errorf("K=%d feasible=%v, want single block", r.K, r.Feasible)
	}
	// With pins=3 and size cap 12, every split strands leaves: K must grow
	// but every block must still be pin-feasible.
	tight := device.Device{Name: "t", DatasheetCells: 12, Pins: 21, Fill: 1.0}
	r2, err := Partition(h, tight, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Feasible {
		for bb := 0; bb < r2.Partition.NumBlocks(); bb++ {
			id := partition.BlockID(bb)
			if r2.Partition.Nodes(id) > 0 && !r2.Partition.Feasible(id) {
				t.Errorf("block %d infeasible in a feasible result", bb)
			}
		}
	}
}

func TestAuxInDP(t *testing.T) {
	var b hypergraph.Builder
	for i := 0; i < 12; i++ {
		id := b.AddInterior("ff", 1)
		b.SetAux(id, 1)
		if i > 0 {
			b.AddNet("n", hypergraph.NodeID(i-1), hypergraph.NodeID(i))
		}
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 50, Pins: 50, Fill: 1.0, AuxCap: 4}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.K != 3 {
		t.Errorf("K=%d feasible=%v, want 3 (12 FFs / 4)", r.K, r.Feasible)
	}
}

func TestOnBenchmark(t *testing.T) {
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	r, err := Partition(h, device.XC3042, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("wcdp infeasible on s9234/XC3042")
	}
	// WCDP trails the FM-family methods; anything within 2x of M is sane.
	if r.K < r.M || r.K > 2*r.M+2 {
		t.Errorf("K=%d outside sane band around M=%d", r.K, r.M)
	}
}

func TestErrors(t *testing.T) {
	var b hypergraph.Builder
	if _, err := Partition(b.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("empty circuit accepted")
	}
	var b2 hypergraph.Builder
	v := b2.AddInterior("huge", 999)
	w := b2.AddInterior("w", 1)
	b2.AddNet("n", v, w)
	if _, err := Partition(b2.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("oversized node accepted")
	}
	if _, err := Partition(chainGraph(t, 3), device.Device{Name: "bad"}, Config{}); err == nil {
		t.Error("bad device accepted")
	}
}

// Property: the DP result is always a valid partition, and when feasible
// every block meets the constraints and K >= M.
func TestQuickDPValid(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 6 + r.Intn(40)
		for i := 0; i < n; i++ {
			if r.Intn(9) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1)
			}
		}
		for e := 0; e < n+r.Intn(n); e++ {
			d := 2 + r.Intn(3)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		dev := device.Device{Name: "d", DatasheetCells: 5 + r.Intn(20), Pins: 6 + r.Intn(25), Fill: 1.0}
		res, err := Partition(h, dev, Config{})
		if err != nil {
			return true
		}
		if res.Partition.Validate() != nil {
			return false
		}
		if !res.Feasible {
			return true // DP may legitimately fail on hostile orderings
		}
		return res.K >= res.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: segment terminal accounting in the DP matches the partition's
// bookkeeping — cross-check via the final assignment.
func TestQuickSegmentsMeetConstraints(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		n := 10 + r.Intn(30)
		var b hypergraph.Builder
		for i := 0; i < n; i++ {
			b.AddInterior("v", 1)
		}
		for e := 0; e < 2*n; e++ {
			b.AddNet("e", hypergraph.NodeID(r.Intn(n)), hypergraph.NodeID(r.Intn(n)), hypergraph.NodeID(r.Intn(n)))
		}
		h := b.MustBuild()
		dev := device.Device{Name: "d", DatasheetCells: 4 + r.Intn(10), Pins: 10 + r.Intn(20), Fill: 1.0}
		res, err := Partition(h, dev, Config{})
		if err != nil || !res.Feasible {
			return true
		}
		for bb := 0; bb < res.Partition.NumBlocks(); bb++ {
			id := partition.BlockID(bb)
			if res.Partition.Nodes(id) == 0 {
				continue
			}
			if !res.Partition.Feasible(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWCDPS9234(b *testing.B) {
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(h, device.XC3020, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
