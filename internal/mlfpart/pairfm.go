package mlfpart

import (
	"context"

	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
)

// pairFM runs boundary-restricted Sanchis FM between the most
// cut-connected block pairs of one level. The engine runs in cut-objective
// mode — the solution key is (feasible blocks, cut), so a pass can never
// trade feasibility for cut — with strict S_MAX ceilings (m = 0 disables
// the overfill window) and no lower window, and each call is restricted to
// the pair's boundary cells, keeping the cost proportional to the cut, not
// the level size. One pooled engine is Reset per level.
func (r *refiner) pairFM(ctx context.Context, p *partition.Partition, stats *obs.Stats) error {
	pairs := r.topPairs(p)
	if len(pairs) == 0 {
		return nil
	}
	cfg := sanchis.Config{
		CutObjective: true,
		StackDepth:   -1,
		MaxPasses:    2,
		Windows:      sanchis.Windows{Upper: 1.05, Lower2: 1e-9, LowerMulti: 1e-9},
	}
	if r.eng == nil {
		r.eng = sanchis.New(p, cfg)
	} else {
		r.eng.Reset(p, cfg)
	}
	for _, pr := range pairs {
		if err := ctx.Err(); err != nil {
			return err
		}
		cells := r.pairBoundary(p, pr.a, pr.b)
		if len(cells) < 2 {
			continue
		}
		st, err := r.eng.ImproveSubsetCtx(ctx, []partition.BlockID{pr.a, pr.b}, partition.NoBlock, 0, cells)
		if err != nil {
			return err
		}
		stats.Passes += st.Passes
		stats.MovesEvaluated += st.MovesEvaluated
		stats.MovesApplied += st.MovesApplied
		stats.MovesGated += st.MovesGated
		stats.BucketOps += st.BucketOps
	}
	return nil
}
