package mlfpart

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"fpart/internal/flow"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
)

// refiner holds the scratch state shared by every uncoarsening level:
// candidate and gain buffers plus one pooled Sanchis engine that is Reset
// per level instead of reallocated.
type refiner struct {
	cfg   Config
	eng   *sanchis.Engine
	cand  []hypergraph.NodeID
	gains []moveCand
	seen  []bool
}

func newRefiner(cfg Config) *refiner { return &refiner{cfg: cfg} }

// refine improves one projected level in three tiers, coarsest-friendly
// first: corridor flow refinement on the top block pairs (small levels
// only — one max-flow per pair), pairwise boundary-restricted FM (mid
// levels), and greedy feasibility-gated boundary passes (every level).
// It returns the number of kept greedy moves.
func (r *refiner) refine(ctx context.Context, p *partition.Partition, stats *obs.Stats) (int, error) {
	n := p.Hypergraph().NumNodes()
	if !r.cfg.DisableFlow && n <= r.cfg.FlowMaxNodes {
		for _, pr := range r.topPairs(p) {
			if _, err := flow.RefinePairCtx(ctx, p, pr.a, pr.b, 2, 2048); err != nil {
				return 0, err
			}
		}
	}
	if n <= r.cfg.PairFMMaxNodes {
		if err := r.pairFM(ctx, p, stats); err != nil {
			return 0, err
		}
	}
	moves := 0
	for pass := 0; pass < r.cfg.RefinePasses; pass++ {
		moved, err := r.greedyPass(ctx, p, stats)
		moves += moved
		if err != nil {
			return moves, err
		}
		if moved == 0 {
			break
		}
	}
	return moves, nil
}

// blockPair is a cut-connected block pair, weighted by the number of
// two-block nets spanning exactly {a, b}.
type blockPair struct {
	a, b partition.BlockID
	w    int
}

// topPairs returns a greedy matching of the most cut-connected block
// pairs: pairs sorted by (weight desc, a asc, b asc), each block used at
// most once, at most cfg.MaxPairs pairs. Deterministic: the sort key is a
// total order because each (a, b) appears once.
func (r *refiner) topPairs(p *partition.Partition) []blockPair {
	h := p.Hypergraph()
	w := make(map[uint64]int)
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if p.Span(ne) != 2 {
			continue
		}
		a := p.Block(h.Pins(ne)[0])
		b := p.OtherBlock(ne, a)
		if a > b {
			a, b = b, a
		}
		w[uint64(uint32(a))<<32|uint64(uint32(b))]++
	}
	pairs := make([]blockPair, 0, len(w))
	for key, cnt := range w {
		pairs = append(pairs, blockPair{
			a: partition.BlockID(int32(key >> 32)),
			b: partition.BlockID(int32(uint32(key))),
			w: cnt,
		})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	used := make(map[partition.BlockID]bool)
	var out []blockPair
	for _, pr := range pairs {
		if used[pr.a] || used[pr.b] {
			continue
		}
		used[pr.a], used[pr.b] = true, true
		out = append(out, pr)
		if len(out) >= r.cfg.MaxPairs {
			break
		}
	}
	return out
}

// pairBoundary collects the interior cells of blocks a and b incident to a
// net with pins in both, sorted by ID (the subset contract of
// sanchis.ImproveSubsetCtx).
func (r *refiner) pairBoundary(p *partition.Partition, a, b partition.BlockID) []hypergraph.NodeID {
	h := p.Hypergraph()
	if cap(r.seen) < h.NumNodes() {
		r.seen = make([]bool, h.NumNodes())
	}
	seen := r.seen[:h.NumNodes()]
	var cells []hypergraph.NodeID
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if p.PinCount(ne, a) == 0 || p.PinCount(ne, b) == 0 {
			continue
		}
		for _, v := range h.Pins(ne) {
			if seen[v] || h.KindOf(v) != hypergraph.Interior {
				continue
			}
			if blk := p.Block(v); blk == a || blk == b {
				seen[v] = true
				cells = append(cells, v)
			}
		}
	}
	for _, v := range cells {
		seen[v] = false
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	return cells
}

// greedyPass runs one feasibility-gated boundary sweep. Best moves are
// precomputed against the frozen pre-pass state — a pure per-cell function,
// so sharding it over Budget workers cannot change the result — then
// applied serially in candidate order with the gain recomputed against the
// live partition and the move undone if either touched block would leave
// the device window.
func (r *refiner) greedyPass(ctx context.Context, p *partition.Partition, stats *obs.Stats) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	h := p.Hypergraph()
	cand := r.cand[:0]
	for v := 0; v < h.NumNodes(); v++ {
		id := hypergraph.NodeID(v)
		if h.KindOf(id) != hypergraph.Interior {
			continue
		}
		for _, e := range h.Nets(id) {
			if p.Span(e) > 1 {
				cand = append(cand, id)
				break
			}
		}
	}
	r.cand = cand
	if len(cand) == 0 {
		return 0, nil
	}
	if cap(r.gains) < len(cand) {
		r.gains = make([]moveCand, len(cand))
	}
	gains := r.gains[:len(cand)]

	workers := 1
	if len(cand) >= 4096 {
		workers = r.acquireWorkers()
	}
	if workers > 1 {
		var wg sync.WaitGroup
		chunk := (len(cand) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(cand))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					gains[i] = bestMove(p, cand[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i := range cand {
			gains[i] = bestMove(p, cand[i])
		}
	}
	r.releaseWorkers(workers)
	stats.MovesEvaluated += len(cand)

	moved := 0
	for i, v := range cand {
		if i%4096 == 4095 {
			if err := ctx.Err(); err != nil {
				return moved, err
			}
		}
		if gains[i].gain <= 0 {
			continue
		}
		// Earlier moves this sweep may have changed the neighbourhood;
		// recompute against the live state before committing.
		mc := bestMove(p, v)
		if mc.gain <= 0 {
			continue
		}
		from := p.Block(v)
		p.Move(v, mc.target)
		if !p.Feasible(mc.target) || !p.Feasible(from) {
			p.Move(v, from)
			stats.MovesGated++
			continue
		}
		stats.MovesApplied++
		moved++
	}
	stats.Passes++
	return moved, nil
}

// moveCand is a candidate cell move: the best strictly-positive cut gain
// and its target block (gain 0 when no improving move exists).
type moveCand struct {
	gain   int32
	target partition.BlockID
}

// bestMove returns v's best cut-improving move. Candidate targets are the
// far sides of v's two-block incident nets: a single move can only uncut a
// net whose span is exactly 2, so every strictly-positive-gain target
// appears there. The gain is exact over all of v's nets (span-3+ nets can
// contribute negatively and are accounted for). Ties break to the lowest
// target block ID.
func bestMove(p *partition.Partition, v hypergraph.NodeID) moveCand {
	h := p.Hypergraph()
	from := p.Block(v)
	nets := h.Nets(v)
	var tstore [16]partition.BlockID
	targets := tstore[:0]
	for _, e := range nets {
		if p.Span(e) != 2 {
			continue
		}
		t := p.OtherBlock(e, from)
		dup := false
		for _, u := range targets {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			targets = append(targets, t)
		}
	}
	best := moveCand{target: from}
	for _, t := range targets {
		var g int32
		for _, e := range nets {
			if h.NetDegree(e) < 2 {
				continue
			}
			span := p.Span(e)
			newSpan := span
			if p.PinCount(e, from) == 1 {
				newSpan--
			}
			if p.PinCount(e, t) == 0 {
				newSpan++
			}
			if span > 1 {
				g++
			}
			if newSpan > 1 {
				g--
			}
		}
		if g > best.gain || (g == best.gain && g > 0 && t < best.target) {
			best = moveCand{gain: g, target: t}
		}
	}
	return best
}

// acquireWorkers sizes the gain-precompute pool: one worker for the
// caller's own token plus any extra tokens the shared Budget will yield,
// capped by GOMAXPROCS (and 8 — the precompute is memory-bound). Worker
// count never affects results, only wall-clock.
func (r *refiner) acquireWorkers() int {
	maxW := min(runtime.GOMAXPROCS(0), 8)
	if r.cfg.Budget == nil {
		return maxW
	}
	w := 1
	for w < maxW && r.cfg.Budget.TryAcquire() {
		w++
	}
	return w
}

func (r *refiner) releaseWorkers(w int) {
	if r.cfg.Budget == nil {
		return
	}
	for i := 1; i < w; i++ {
		r.cfg.Budget.Release()
	}
}
