// Package mlfpart is the multilevel-accelerated FPART engine: it coarsens
// the input hypergraph through a hierarchy of heavy-edge contractions,
// runs the paper's feasibility-window peeling (core.Run) on the coarsest
// graph, and then uncoarsens level by level, projecting the block
// assignment onto each finer graph and refining it with boundary-restricted
// passes. Contraction only ever drops nets internal to one cluster and
// surviving nets keep their span, so projection is exact — block sizes,
// terminal counts, and the cut value carry over unchanged — and every
// refinement move is feasibility-gated, so a feasible coarse solution stays
// feasible all the way down.
//
// Below Config.FlatThreshold the engine delegates to core.Run verbatim and
// is bit-identical to the flat fpart method; above it, the V-cycle turns
// the O(large-n) peeling into an O(coarse-n) problem plus linear-time
// refinement sweeps, which is what makes 10⁵–10⁶-cell netlists tractable.
//
// Determinism: coarsening, the coarse peel, pair selection, and every
// refinement pass are deterministic, and the only parallel step (the
// boundary-gain precompute) is a pure function of the frozen pre-pass
// state sharded over workers — results are bit-identical for a fixed seed
// at any GOMAXPROCS and any core.Budget capacity.
package mlfpart

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/multilevel"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// Config tunes the multilevel engine. The zero value selects defaults.
type Config struct {
	// FlatThreshold: inputs with at most this many nodes bypass the
	// V-cycle and run flat core.Run directly (bit-identical to the fpart
	// method). Zero selects 8192; negative forces the V-cycle on any
	// input (tests use this).
	FlatThreshold int
	// CoarsestNodes stops coarsening at this node count. Zero selects
	// max(1024, 16·M, n/128): room for M blocks, and coarse granularity
	// that grows with the input. The n/128 term matters at the top of
	// the scale — coarsening concentrates connectivity (pads never
	// merge, hub clusters accumulate nets), so an over-coarsened graph
	// can be terminal-infeasible for the peel even when the fine graph
	// is fine; stopping earlier is both more feasible and cheaper,
	// because refinement then starts from a better solution (measured
	// at 10⁶ cells on a 20000x5000 part: coarsest 8000 gives 69 devices
	// in 56s where coarsest 1024 gives 112 in 2m4s).
	CoarsestNodes int
	// MaxClusterFrac caps a coarse node's size as a fraction of the
	// device S_MAX (default 0.25) so coarse nodes stay placeable.
	MaxClusterFrac float64
	// MaxLevels caps the hierarchy depth (default 24).
	MaxLevels int
	// RefinePasses is the number of greedy boundary passes per level
	// (default 2; each pass stops early when no cell moves).
	RefinePasses int
	// PairFMMaxNodes: levels with at most this many nodes also run
	// pairwise boundary-restricted Sanchis FM between the most
	// cut-connected block pairs (default 40000).
	PairFMMaxNodes int
	// FlowMaxNodes: levels with at most this many nodes additionally run
	// corridor flow refinement on the top block pairs (default 4096).
	FlowMaxNodes int
	// MaxPairs bounds the block pairs examined per level by pair FM and
	// flow refinement (default 32; pairs are a greedy matching by cut-net
	// weight, so each block appears at most once per round).
	MaxPairs int
	// DisableFlow turns off corridor flow refinement (ablation switch).
	DisableFlow bool

	// Sink receives structured events: CoarsenLevel/RefineLevel per
	// hierarchy level plus the coarse peel's own stream under
	// Label+"#coarse".
	Sink obs.Sink
	// Label tags this run's events (default "mlfpart").
	Label string
	// SpecWidth is forwarded to the coarse core.Run peel.
	SpecWidth int
	// Budget, when non-nil, caps the extra goroutines the refinement
	// gain precompute (and the coarse peel's speculation) may spawn.
	Budget *core.Budget
}

func (c Config) normalize() Config {
	if c.FlatThreshold == 0 {
		c.FlatThreshold = 8192
	}
	if c.FlatThreshold < 0 {
		c.FlatThreshold = 0
	}
	if c.MaxClusterFrac <= 0 || c.MaxClusterFrac > 1 {
		c.MaxClusterFrac = 0.25
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 24
	}
	if c.RefinePasses <= 0 {
		c.RefinePasses = 2
	}
	if c.PairFMMaxNodes <= 0 {
		c.PairFMMaxNodes = 40000
	}
	if c.FlowMaxNodes <= 0 {
		c.FlowMaxNodes = 4096
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 32
	}
	if c.Label == "" {
		c.Label = "mlfpart"
	}
	return c
}

// Result is the outcome of a PartitionCtx call.
type Result struct {
	// Partition holds the final assignment on the input graph.
	Partition *partition.Partition
	// K is the number of non-empty blocks; M the device lower bound.
	K, M int
	// Feasible reports whether every block meets the device constraints.
	Feasible bool
	// Levels is the hierarchy depth used (0 when the flat path ran).
	Levels  int
	Stats   obs.Stats
	Elapsed time.Duration
}

// Partition runs the multilevel engine with a background context.
func Partition(h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	return PartitionCtx(context.Background(), h, dev, cfg)
}

// PartitionCtx partitions circuit h targeting device dev through the
// coarsen → peel → uncoarsen+refine V-cycle described in the package
// comment. Cancellation is polled in the coarsening loop, inside the
// coarse peel, and per refinement batch.
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	start := time.Now()
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if h.NumNodes() == 0 {
		return nil, errors.New("mlfpart: empty circuit")
	}
	for _, id := range h.InteriorIDs() {
		if h.Node(id).Size > dev.SMax() {
			return nil, fmt.Errorf("mlfpart: node %q larger than device (%d > %d)",
				h.Node(id).Name, h.Node(id).Size, dev.SMax())
		}
	}
	cfg = cfg.normalize()
	m := device.LowerBound(h, dev)

	if h.NumNodes() <= cfg.FlatThreshold {
		r, err := core.Run(ctx, h, dev, core.Config{
			Sink: cfg.Sink, Label: cfg.Label, SpecWidth: cfg.SpecWidth, Budget: cfg.Budget,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Partition: r.Partition, K: r.K, M: r.M, Feasible: r.Feasible,
			Stats: r.Stats, Elapsed: time.Since(start),
		}, nil
	}

	em := obs.NewEmitter(cfg.Sink, cfg.Label)
	res := &Result{M: m}
	em.Emit(obs.Event{Type: obs.RunStart, M: m})

	// Coarsen. The per-level size cap keeps every coarse node well under
	// S_MAX so the coarsest peel can always place them.
	t0 := time.Now()
	coarsest := cfg.CoarsestNodes
	if coarsest <= 0 {
		coarsest = max(1024, 16*m, h.NumNodes()/128)
	}
	hr, err := multilevel.BuildHierarchy(ctx, h, multilevel.HierarchyConfig{
		CoarsestNodes:  coarsest,
		MaxClusterSize: max(int(cfg.MaxClusterFrac*float64(dev.SMax())), 1),
		MaxLevels:      cfg.MaxLevels,
	})
	if err != nil {
		em.Emit(obs.Event{Type: obs.Cancelled})
		return nil, err
	}
	res.Stats.PhaseTime[obs.PhaseCoarsen] += time.Since(t0)
	res.Levels = hr.Depth()
	for i := 1; i <= hr.Depth(); i++ {
		em.Emit(obs.Event{Type: obs.CoarsenLevel, Iteration: i, Size: hr.Graph(i).NumNodes()})
	}

	// Initial partition: the paper's peel on the coarsest graph, with its
	// own event stream so traces show both layers.
	cr, err := core.Run(ctx, hr.Coarsest(), dev, core.Config{
		Sink: cfg.Sink, Label: cfg.Label + "#coarse", SpecWidth: cfg.SpecWidth, Budget: cfg.Budget,
	})
	if err != nil {
		em.Emit(obs.Event{Type: obs.Cancelled})
		return nil, err
	}
	res.Stats.Merge(cr.Stats)

	// Uncoarsen: project the assignment one level down, rebuild the
	// partition on the finer graph (exact by the projection invariant),
	// and refine its boundary.
	p := cr.Partition
	k := p.NumBlocks()
	assign := p.Assignment(nil)
	var fine []partition.BlockID
	ref := newRefiner(cfg)
	t0 = time.Now()
	for li := hr.Depth(); li >= 1; li-- {
		if err := ctx.Err(); err != nil {
			em.Emit(obs.Event{Type: obs.Cancelled})
			return nil, err
		}
		fine = hr.Project(li, assign, fine)
		fh := hr.Graph(li - 1)
		p, err = partition.FromAssignment(fh, dev, fine, k)
		if err != nil {
			return nil, fmt.Errorf("mlfpart: project to level %d: %w", li-1, err)
		}
		before := p.Cut()
		moves, err := ref.refine(ctx, p, &res.Stats)
		if err != nil {
			res.Stats.PhaseTime[obs.PhaseRefine] += time.Since(t0)
			em.Emit(obs.Event{Type: obs.Cancelled})
			return nil, err
		}
		em.Emit(obs.Event{
			Type: obs.RefineLevel, Iteration: li - 1, Size: fh.NumNodes(),
			Moves: moves, Improved: p.Cut() < before,
		})
		// Swap buffers: the refined assignment becomes the next level's
		// coarse side.
		assign, fine = p.Assignment(fine), assign
	}
	res.Stats.PhaseTime[obs.PhaseRefine] += time.Since(t0)

	res.Partition = p
	res.Feasible = p.Classify() == partition.FeasibleSolution
	for b := 0; b < p.NumBlocks(); b++ {
		if p.Nodes(partition.BlockID(b)) > 0 {
			res.K++
		}
	}
	if res.Stats.PeakBlocks < p.NumBlocks() {
		res.Stats.PeakBlocks = p.NumBlocks()
	}
	res.Elapsed = time.Since(start)
	em.Emit(obs.Event{Type: obs.RunEnd, K: res.K, M: m, Feasible: res.Feasible})
	return res, nil
}
