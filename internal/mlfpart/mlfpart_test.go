package mlfpart

import (
	"context"
	"runtime"
	"testing"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func testDevice(t *testing.T) device.Device {
	t.Helper()
	dev, ok := device.ByName("XC3090")
	if !ok {
		t.Fatal("XC3090 missing from catalog")
	}
	return dev
}

// Below FlatThreshold mlfpart must be bit-identical to flat FPART: same
// assignment, same K, same cut.
func TestFlatDelegation(t *testing.T) {
	h := gen.Synthetic(500, 40, 7, true)
	dev := testDevice(t)
	mr, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatalf("mlfpart: %v", err)
	}
	fr, err := core.Partition(h, dev, core.Config{})
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	if mr.K != fr.K || mr.Feasible != fr.Feasible || mr.Partition.Cut() != fr.Partition.Cut() {
		t.Fatalf("flat delegation diverged: mlfpart (K=%d feas=%v cut=%d) vs fpart (K=%d feas=%v cut=%d)",
			mr.K, mr.Feasible, mr.Partition.Cut(), fr.K, fr.Feasible, fr.Partition.Cut())
	}
	for v := 0; v < h.NumNodes(); v++ {
		id := hypergraph.NodeID(v)
		if mr.Partition.Block(id) != fr.Partition.Block(id) {
			t.Fatalf("node %d: mlfpart block %d, fpart block %d", v, mr.Partition.Block(id), fr.Partition.Block(id))
		}
	}
	if mr.Levels != 0 {
		t.Fatalf("flat path reported %d levels", mr.Levels)
	}
}

// A forced V-cycle on a mid-size circuit must produce a valid, feasible
// partition with K in a sane band around the flat result.
func TestVCycleFeasibleQuality(t *testing.T) {
	h := gen.Synthetic(3000, 120, 11, true)
	dev := testDevice(t)
	mr, err := Partition(h, dev, Config{FlatThreshold: -1, CoarsestNodes: 256})
	if err != nil {
		t.Fatalf("mlfpart: %v", err)
	}
	if mr.Levels < 1 {
		t.Fatalf("V-cycle built no levels (n=%d)", h.NumNodes())
	}
	if err := mr.Partition.Validate(); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if !mr.Feasible {
		t.Fatalf("V-cycle result infeasible (K=%d M=%d)", mr.K, mr.M)
	}
	if mr.K < mr.M {
		t.Fatalf("K=%d below lower bound M=%d", mr.K, mr.M)
	}
	fr, err := core.Partition(h, dev, core.Config{})
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	if fr.Feasible && mr.K > 2*fr.K {
		t.Fatalf("V-cycle K=%d more than double flat K=%d", mr.K, fr.K)
	}
}

// The refined result must be bit-identical at any GOMAXPROCS and any
// Budget capacity: the only parallel step is a pure precompute.
func TestDeterminismAcrossParallelism(t *testing.T) {
	h := gen.Synthetic(3000, 120, 3, false)
	dev := testDevice(t)
	run := func(procs int, budget *core.Budget) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		r, err := Partition(h, dev, Config{FlatThreshold: -1, CoarsestNodes: 256, Budget: budget})
		if err != nil {
			t.Fatalf("mlfpart(procs=%d): %v", procs, err)
		}
		return r
	}
	base := run(1, nil)
	for _, tc := range []struct {
		name   string
		procs  int
		budget *core.Budget
	}{
		{"procs4", 4, nil},
		{"procs4-budget1", 4, core.NewBudget(1)},
		{"procs8-budget8", 8, core.NewBudget(8)},
	} {
		got := run(tc.procs, tc.budget)
		if got.K != base.K || got.Partition.Cut() != base.Partition.Cut() {
			t.Fatalf("%s diverged: K=%d cut=%d vs base K=%d cut=%d",
				tc.name, got.K, got.Partition.Cut(), base.K, base.Partition.Cut())
		}
		for v := 0; v < h.NumNodes(); v++ {
			id := hypergraph.NodeID(v)
			if got.Partition.Block(id) != base.Partition.Block(id) {
				t.Fatalf("%s: node %d block %d vs base %d", tc.name, v, got.Partition.Block(id), base.Partition.Block(id))
			}
		}
	}
}

// Cancellation must abort promptly from every phase entry point.
func TestCancelled(t *testing.T) {
	h := gen.Synthetic(2000, 80, 5, true)
	dev := testDevice(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PartitionCtx(ctx, h, dev, Config{FlatThreshold: -1}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// An interior node larger than the device can never be placed.
func TestOversizeNode(t *testing.T) {
	var b hypergraph.Builder
	a := b.AddNode("a", hypergraph.Interior, 10_000)
	c := b.AddNode("b", hypergraph.Interior, 1)
	b.AddNet("n", a, c)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(h, testDevice(t), Config{}); err == nil {
		t.Fatal("want oversize-node error")
	}
}

// Moving cells between blocks must never leave partition bookkeeping
// stale; run a V-cycle and validate the final state from scratch.
func TestValidateAfterRefine(t *testing.T) {
	h := gen.Synthetic(1500, 60, 9, true)
	mr, err := Partition(h, testDevice(t), Config{FlatThreshold: -1, CoarsestNodes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = partition.NoBlock
}
