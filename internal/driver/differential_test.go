package driver

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/engine"
	"fpart/internal/flow"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/kwayx"
	"fpart/internal/mlfpart"
	"fpart/internal/multilevel"
	"fpart/internal/partition"
)

// solutionKey fingerprints an assignment: the block of every node in node
// order. Two runs agree iff their keys are equal.
func solutionKey(p *partition.Partition) string {
	h := p.Hypergraph()
	var sb strings.Builder
	for v := 0; v < h.NumNodes(); v++ {
		fmt.Fprintf(&sb, "%d,", p.Block(hypergraph.NodeID(v)))
	}
	return sb.String()
}

// TestRegistryDispatchMatchesDirectCalls is the refactor's differential
// guard: dispatching through the engine registry (RunOpts at speculation
// width 1, no budget, no sink) must produce solutions bit-identical to
// calling each algorithm package directly, the way the pre-registry method
// switch did. Any drift means the adapters changed behavior, not just
// plumbing.
func TestRegistryDispatchMatchesDirectCalls(t *testing.T) {
	spec, _ := gen.ByName("c3540")
	h := gen.Generate(spec, device.XC3000)
	dev, _ := device.ByName("XC3020")
	ctx := context.Background()

	cases := []struct {
		method string
		direct func() (*partition.Partition, error)
	}{
		{"fpart", func() (*partition.Partition, error) {
			cfg := core.Default()
			cfg.SpecWidth = 0 // what Options{} maps to: the sequential peel
			r, err := core.Run(ctx, h, dev, cfg)
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		}},
		{"portfolio", func() (*partition.Partition, error) {
			r, err := core.Portfolio(ctx, h, dev, nil)
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		}},
		{"kwayx", func() (*partition.Partition, error) {
			r, err := kwayx.Partition(h, dev, kwayx.Config{})
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		}},
		{"flow", func() (*partition.Partition, error) {
			r, err := flow.Partition(h, dev, flow.Config{})
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		}},
		{"multilevel", func() (*partition.Partition, error) {
			r, err := multilevel.Partition(h, dev, multilevel.Config{})
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		}},
		{"mlfpart", func() (*partition.Partition, error) {
			r, err := mlfpart.Partition(h, dev, mlfpart.Config{})
			if err != nil {
				return nil, err
			}
			return r.Partition, nil
		}},
	}
	if len(cases) != len(Methods()) {
		t.Fatalf("differential test covers %d methods, registry has %v", len(cases), Methods())
	}
	for _, tc := range cases {
		t.Run(tc.method, func(t *testing.T) {
			viaRegistry, err := RunOpts(ctx, tc.method, h, dev, Options{})
			if err != nil {
				t.Fatal(err)
			}
			direct, err := tc.direct()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := solutionKey(viaRegistry.Partition), solutionKey(direct); got != want {
				t.Errorf("registry dispatch diverged from the direct %s call", tc.method)
			}
		})
	}

	// R=1 equivalence: the same device with extra resource axes whose caps
	// can never bind (the circuit stamps no demands, so every block total
	// is 0) must reproduce the scalar trajectory bit-identically for every
	// method. This is the resource-vector refactor's differential guard:
	// the scalar path is the R=1 special case by construction, not by
	// accident.
	vdev := dev
	vdev.Resources = []device.Resource{{Name: "DSP", Cap: 1 << 30}, {Name: "LUT", Cap: 1 << 30}}
	for _, method := range Methods() {
		t.Run(method+"/vector-r1", func(t *testing.T) {
			scalar, err := RunOpts(ctx, method, h, dev, Options{})
			if err != nil {
				t.Fatal(err)
			}
			vector, err := RunOpts(ctx, method, h, vdev, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if solutionKey(scalar.Partition) != solutionKey(vector.Partition) {
				t.Errorf("%s: non-binding resource axes changed the trajectory", method)
			}
			if scalar.K != vector.K || scalar.Feasible != vector.Feasible {
				t.Errorf("%s: K/Feasible drifted: scalar K=%d/%v vector K=%d/%v",
					method, scalar.K, scalar.Feasible, vector.K, vector.Feasible)
			}
		})
	}
}

// TestRunOptsErrorPaths covers the dispatch failure contract, table-driven
// over the live registry so a newly registered engine is held to it
// automatically.
func TestRunOptsErrorPaths(t *testing.T) {
	dev, _ := device.ByName("XC3020")
	c, err := Load(Source{Reader: strings.NewReader(tinyPHG), Format: "phg"}, dev)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Hypergraph

	// Unknown methods are rejected with the registry's names in the message,
	// before any budget token is taken.
	_, err = RunOpts(context.Background(), "anneal", h, dev, Options{})
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	for _, want := range append([]string{"anneal"}, Methods()...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-method error missing %q: %v", want, err)
		}
	}

	// A context cancelled before dispatch returns ctx.Err() for every
	// registered engine — no partial work, no panic.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, method := range Methods() {
		res, err := RunOpts(cancelled, method, h, dev, Options{})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: cancelled-before-start: want context.Canceled, got %v", method, err)
		}
		if res != nil {
			t.Errorf("%s: cancelled dispatch returned a result", method)
		}
		// The same holds one layer down, where no budget front-runs the
		// engine: each engine's own upfront ctx check must fire.
		if _, err := engine.Run(cancelled, method, h, dev, engine.Options{}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: engine-level cancelled-before-start: want context.Canceled, got %v", method, err)
		}
	}

	// Nil sinks are free: every engine must run to completion without a
	// sink, a budget, or any option set.
	for _, method := range Methods() {
		if _, err := RunOpts(context.Background(), method, h, dev, Options{}); err != nil {
			t.Errorf("%s: nil-sink run failed: %v", method, err)
		}
	}
}
