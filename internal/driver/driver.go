// Package driver is the shared front end of the partitioning pipeline: it
// loads circuits from any supported source (built-in benchmarks, netlist
// files, in-memory uploads) and dispatches a partitioning method on them.
//
// Both entry points consume it — the one-shot `cmd/fpart` CLI and the
// long-running `cmd/fpartd` service — so the circuit-loading rules (format
// selection, BLIF technology mapping, parser limits) live in exactly one
// place. Method dispatch resolves through the internal/engine registry:
// every partitioner sits behind the same instrumented, cancellable
// Engine interface, and RunOpts only adds the shared Budget token
// discipline on top.
package driver

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"

	"fpart/internal/device"
	"fpart/internal/engine"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
	"fpart/internal/obs"
	"fpart/internal/techmap"
)

// Source describes where a circuit comes from. Exactly one of Builtin,
// Path, or Reader must be set.
type Source struct {
	// Builtin names a synthetic MCNC benchmark from the gen catalog.
	Builtin string
	// Path names a netlist file to open; Format selects its parser.
	Path string
	// Reader is an already-open netlist stream (service uploads); Format
	// selects its parser and Name labels the circuit.
	Reader io.Reader
	// Name overrides the display name (defaults to Builtin or Path).
	Name string
	// Format is the netlist format for Path/Reader sources: "phg", "hgr",
	// or "blif".
	Format string
	// Arch selects the CLB architecture for BLIF technology mapping:
	// "XC2000", "XC3000", or "" for the target device's family.
	Arch string
	// Limits bounds the netlist parsers; the zero value applies
	// netlist.DefaultLimits. Set tighter caps for untrusted input.
	Limits netlist.Limits
}

// Circuit is a loaded, partition-ready circuit.
type Circuit struct {
	Hypergraph *hypergraph.Hypergraph
	// Name labels the circuit in reports.
	Name string
	// Mapped carries the technology-mapping result for BLIF sources (the
	// replication pass needs its functional direction information); nil
	// otherwise.
	Mapped *techmap.Mapped
}

// Load resolves src into a circuit targeting device dev (the device picks
// the default BLIF architecture and sizes built-in benchmarks).
func Load(src Source, dev device.Device) (*Circuit, error) {
	if src.Builtin != "" {
		spec, ok := gen.ByName(src.Builtin)
		if !ok {
			return nil, fmt.Errorf("unknown built-in circuit %q (valid: %v)", src.Builtin, BuiltinNames())
		}
		return &Circuit{Hypergraph: gen.Generate(spec, dev.Family), Name: src.Builtin}, nil
	}
	r := src.Reader
	name := src.Name
	if r == nil {
		if src.Path == "" {
			return nil, fmt.Errorf("no input: set Builtin, Path, or Reader")
		}
		f, err := os.Open(src.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		if name == "" {
			name = src.Path
		}
	}
	if name == "" {
		name = "<stream>"
	}
	switch src.Format {
	case "phg":
		h, err := netlist.ReadPHGLimits(r, src.Limits)
		if err != nil {
			return nil, err
		}
		return &Circuit{Hypergraph: h, Name: name}, nil
	case "hgr":
		h, err := netlist.ReadHgrLimits(r, src.Limits)
		if err != nil {
			return nil, err
		}
		return &Circuit{Hypergraph: h, Name: name}, nil
	case "blif":
		c, err := netlist.ReadBLIFLimits(r, src.Limits)
		if err != nil {
			return nil, err
		}
		a := techmap.XC3000Arch
		switch {
		case src.Arch == "XC2000" || (src.Arch == "" && dev.Family == device.XC2000):
			a = techmap.XC2000Arch
		case src.Arch == "XC3000" || src.Arch == "":
		default:
			return nil, fmt.Errorf("unknown arch %q", src.Arch)
		}
		m, err := techmap.Map(c, a)
		if err != nil {
			return nil, err
		}
		h, err := m.Hypergraph()
		if err != nil {
			return nil, err
		}
		return &Circuit{Hypergraph: h, Name: name, Mapped: m}, nil
	default:
		return nil, fmt.Errorf("unknown format %q (valid: phg, hgr, blif)", src.Format)
	}
}

// BuiltinNames lists the built-in benchmark circuits.
func BuiltinNames() []string {
	out := make([]string, len(gen.MCNC))
	for i, s := range gen.MCNC {
		out[i] = s.Name
	}
	return out
}

// Methods lists the partitioning methods Run dispatches, in documentation
// order, derived from the engine registry. "fpart" is the paper's
// algorithm; "portfolio" races the core.DefaultPortfolio configuration
// mix; the rest are baselines.
func Methods() []string { return engine.Names() }

// ValidMethod reports whether Run accepts method (i.e. whether an engine
// of that name is registered).
func ValidMethod(method string) bool {
	_, ok := engine.Lookup(method)
	return ok
}

// Result is the outcome of one Run dispatch. Every registered engine is
// instrumented, so Stats is non-nil on success and Elapsed is the engine's
// own measurement (token waits and dispatch overhead excluded).
type Result = engine.Result

// ClampParallel normalizes a user-facing worker/parallelism count: values
// below 1 (the "auto" setting of `fpart -parallel 0` and `fpartd
// -workers 0`) select runtime.GOMAXPROCS(0). Both binaries and the service
// share this one clamp so "auto" means the same thing everywhere.
func ClampParallel(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Options tunes a RunOpts dispatch beyond the method name. It is the
// engine layer's option set: Sink receives every registered engine's event
// stream, SpecWidth widens the fpart engine's speculative peel, and Budget
// is the shared concurrency pool (RunOpts holds one token for the run
// itself; budgeted engines draw extras from the same pool).
type Options = engine.Options

// Run dispatches method on circuit h targeting dev. ctx and sink apply to
// every registered engine — all of them poll cancellation in their pass
// loops and emit structured events. It is RunOpts with only a sink.
func Run(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, sink obs.Sink) (*Result, error) {
	return RunOpts(ctx, method, h, dev, Options{Sink: sink})
}

// RunOpts resolves method in the engine registry and dispatches it on
// circuit h targeting dev under opts. When opts.Budget is set, the call
// blocks until a worker token is free (or ctx dies) and holds it for the
// whole dispatch, so concurrent callers — the fpartd job runners — cannot
// oversubscribe the machine. An unknown method is rejected (quoting the
// registry) before any token is taken.
func RunOpts(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	if _, ok := engine.Lookup(method); !ok {
		return nil, fmt.Errorf("unknown method %q (valid: %v)", method, Methods())
	}
	if err := opts.Budget.Acquire(ctx); err != nil {
		return nil, err
	}
	defer opts.Budget.Release()
	// Dispatch through engine.Run, not the engine directly: the board
	// feasibility gate (Options.Board) is applied there.
	return engine.Run(ctx, method, h, dev, opts)
}
