package driver

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpart/internal/device"
	"fpart/internal/netlist"
	"fpart/internal/obs"
)

const tinyPHG = `phg
node a 2
node b 2
node c 2
node d 2
pad p
pad q
net n1 0 1 4
net n2 1 2
net n3 2 3 5
net n4 0 3
`

func TestLoadBuiltin(t *testing.T) {
	dev, _ := device.ByName("XC3020")
	c, err := Load(Source{Builtin: "s9234"}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "s9234" || c.Hypergraph.NumInterior() == 0 {
		t.Fatalf("bad builtin load: %+v", c)
	}
	if _, err := Load(Source{Builtin: "nope"}, dev); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

func TestLoadReaderFormats(t *testing.T) {
	dev, _ := device.ByName("XC3020")
	c, err := Load(Source{Reader: strings.NewReader(tinyPHG), Format: "phg", Name: "tiny"}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "tiny" || c.Hypergraph.NumNodes() != 6 {
		t.Fatalf("bad phg load: %v", c.Hypergraph)
	}

	blif := ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n.end\n"
	c, err = Load(Source{Reader: strings.NewReader(blif), Format: "blif"}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mapped == nil {
		t.Fatal("BLIF load should carry the techmap result")
	}

	if _, err := Load(Source{Reader: strings.NewReader("x"), Format: "tsv"}, dev); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := Load(Source{}, dev); err == nil {
		t.Fatal("empty source accepted")
	}
}

func TestLoadAppliesLimits(t *testing.T) {
	dev, _ := device.ByName("XC3020")
	_, err := Load(Source{
		Reader: strings.NewReader(tinyPHG),
		Format: "phg",
		Limits: netlist.Limits{MaxNodes: 2},
	}, dev)
	var le *netlist.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
}

func TestRunMethods(t *testing.T) {
	dev, _ := device.ByName("XC3020")
	c, err := Load(Source{Reader: strings.NewReader(tinyPHG), Format: "phg"}, dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range Methods() {
		var coll obs.Collector
		r, err := Run(context.Background(), method, c.Hypergraph, dev, &coll)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if r.K < 1 || r.M < 1 || r.Partition == nil {
			t.Fatalf("%s: degenerate result %+v", method, r)
		}
		// Every registered engine is instrumented: Stats present, events
		// flowing.
		if r.Stats == nil {
			t.Fatalf("%s: no stats", method)
		}
		if coll.Count(obs.RunStart) == 0 {
			t.Fatalf("%s: no events reached the sink", method)
		}
	}
	if _, err := Run(context.Background(), "nope", c.Hypergraph, dev, nil); err == nil {
		t.Fatal("unknown method accepted")
	}
	if ValidMethod("nope") || !ValidMethod("fpart") {
		t.Fatal("ValidMethod broken")
	}
}

// TestStartProfilesPanicSafe asserts the teardown contract: a panic in the
// profiled region must still leave complete, closed profile files behind.
func TestStartProfilesPanicSafe(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	var notes []string
	func() {
		stop, err := StartProfiles(cpu, mem, func(f string, a ...any) {
			notes = append(notes, f)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { recover() }() // the panic under test
		defer stop()
		panic("mid-run failure")
	}()

	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing after panic: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty after panic", p)
		}
	}
	if len(notes) != 2 {
		t.Fatalf("want 2 notifications, got %v", notes)
	}
}

func TestStartProfilesIdempotentStop(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartProfiles(filepath.Join(dir, "c"), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // second call must be a no-op, not a double-close
}
