package driver

// Tests for the shared parallelism clamp and the Options-based dispatch.

import (
	"context"
	"runtime"
	"testing"

	"fpart/internal/core"
	"fpart/internal/device"
)

func TestClampParallel(t *testing.T) {
	auto := runtime.GOMAXPROCS(0)
	cases := []struct{ in, want int }{
		{0, auto}, {-3, auto}, {1, 1}, {4, 4},
	}
	for _, tc := range cases {
		if got := ClampParallel(tc.in); got != tc.want {
			t.Errorf("ClampParallel(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRunOptsSpeculativeFpart(t *testing.T) {
	c, err := Load(Source{Builtin: "c3540"}, device.XC3042)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBudget(2)
	r, err := RunOpts(context.Background(), "fpart", c.Hypergraph, device.XC3042, Options{
		SpecWidth: 4,
		Budget:    b,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Error("speculative fpart dispatch infeasible")
	}
	if r.Stats == nil || r.Stats.SpecRounds == 0 {
		t.Error("speculative dispatch recorded no speculation rounds")
	}
	// The dispatch token was released: the budget is fully available again.
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Error("RunOpts leaked a budget token")
	}
}

func TestRunOptsHonoursCancelledAcquire(t *testing.T) {
	c, err := Load(Source{Builtin: "c3540"}, device.XC3042)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBudget(1)
	if !b.TryAcquire() {
		t.Fatal("fresh budget refused")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOpts(ctx, "fpart", c.Hypergraph, device.XC3042, Options{Budget: b}); err == nil {
		t.Error("RunOpts ran with no free token and a dead context")
	}
}

func TestRunOptsMultilevelCancellation(t *testing.T) {
	c, err := Load(Source{Builtin: "c3540"}, device.XC3042)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOpts(ctx, "multilevel", c.Hypergraph, device.XC3042, Options{}); err == nil {
		t.Error("multilevel dispatch ignored a cancelled context")
	}
}
