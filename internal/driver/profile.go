package driver

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// StartProfiles begins CPU profiling to cpuPath and arranges a heap
// profile at memPath (either may be empty to skip it). The returned stop
// function finishes both: it stops the CPU profile, takes the heap
// snapshot, closes the files, and reports what was written via notify
// (which may be nil).
//
// stop is idempotent and intended for defer, so profiles survive panics
// and early error returns — the failure mode the one-shot CLI used to
// have, where an os.Exit or a panic between StartCPUProfile and
// StopCPUProfile left a truncated, unusable profile.
func StartProfiles(cpuPath, memPath string, notify func(format string, args ...any)) (stop func(), err error) {
	if notify == nil {
		notify = func(string, ...any) {}
	}
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					notify("cpu profile: %v", err)
				} else {
					notify("wrote CPU profile to %s", cpuPath)
				}
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					notify("heap profile: %v", err)
					return
				}
				runtime.GC() // surface only live allocations
				if err := pprof.WriteHeapProfile(f); err != nil {
					f.Close()
					notify("heap profile: %v", err)
					return
				}
				if err := f.Close(); err != nil {
					notify("heap profile: %v", err)
					return
				}
				notify("wrote heap profile to %s", memPath)
			}
		})
	}
	return stop, nil
}

// StderrNotify is the notify callback both binaries pass to StartProfiles:
// one line per written profile on standard error.
func StderrNotify(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}
