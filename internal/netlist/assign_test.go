package netlist

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func assignFixture(t *testing.T) *partition.Partition {
	t.Helper()
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 1)
	v1 := b.AddInterior("b", 1)
	v2 := b.AddInterior("c", 1)
	pd := b.AddPad("p")
	b.AddNet("n1", v0, v1)
	b.AddNet("n2", v1, v2, pd)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 6, Fill: 1.0}
	p := partition.New(h, dev)
	blk := p.AddBlock()
	p.Move(v2, blk)
	p.Move(pd, blk)
	return p
}

func TestAssignmentRoundTrip(t *testing.T) {
	p := assignFixture(t)
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, p); err != nil {
		t.Fatal(err)
	}
	blocks, k, err := ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k != p.NumBlocks() {
		t.Errorf("k = %d, want %d", k, p.NumBlocks())
	}
	p2, err := partition.FromAssignment(p.Hypergraph(), p.Device(), blocks, k)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Cut() != p.Cut() || p2.TerminalSum() != p.TerminalSum() {
		t.Errorf("round trip changed solution: cut %d->%d", p.Cut(), p2.Cut())
	}
	for v := 0; v < p.Hypergraph().NumNodes(); v++ {
		if p.Block(hypergraph.NodeID(v)) != p2.Block(hypergraph.NodeID(v)) {
			t.Fatalf("node %d moved", v)
		}
	}
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAssignmentErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "nope 2 2\n",
		"short":       "assign 2 2\n0 0\n",
		"extra field": "assign 1 1\n0 0 0\n",
		"bad node":    "assign 1 1\n5 0\n",
		"bad block":   "assign 1 1\n0 7\n",
		"duplicate":   "assign 2 2\n0 0\n0 1\n1 0\n",
		"zero k":      "assign 1 0\n0 0\n",
	}
	for name, in := range cases {
		if _, _, err := ReadAssignment(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestReadAssignmentComments(t *testing.T) {
	in := "assign 2 2\n# comment\n0 1\n\n1 0\n"
	blocks, k, err := ReadAssignment(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 || blocks[0] != 1 || blocks[1] != 0 {
		t.Errorf("parsed %v k=%d", blocks, k)
	}
}

func TestFromAssignmentErrors(t *testing.T) {
	p := assignFixture(t)
	h := p.Hypergraph()
	dev := p.Device()
	if _, err := partition.FromAssignment(h, dev, []partition.BlockID{0}, 1); err == nil {
		t.Error("short assignment accepted")
	}
	bad := make([]partition.BlockID, h.NumNodes())
	bad[0] = 9
	if _, err := partition.FromAssignment(h, dev, bad, 2); err == nil {
		t.Error("out-of-range block accepted")
	}
	if _, err := partition.FromAssignment(h, dev, make([]partition.BlockID, h.NumNodes()), 0); err == nil {
		t.Error("k=0 accepted")
	}
}
