package netlist

import (
	"errors"
	"strings"
	"testing"
)

// The service feeds these readers untrusted uploads; every quantity a
// hostile file can inflate must hit a typed LimitError instead of an
// unbounded allocation.

func wantLimitError(t *testing.T, err error, format, quantity string) {
	t.Helper()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %v", err)
	}
	if le.Format != format || le.Quantity != quantity {
		t.Fatalf("want %s/%s limit error, got %s/%s (%v)", format, quantity, le.Format, le.Quantity, le)
	}
}

func TestPHGLimits(t *testing.T) {
	lim := Limits{MaxNodes: 2, MaxNets: 1, MaxPins: 3, MaxLineBytes: 64}

	_, err := ReadPHGLimits(strings.NewReader("phg\nnode a 1\nnode b 1\nnode c 1\n"), lim)
	wantLimitError(t, err, "phg", "nodes")

	_, err = ReadPHGLimits(strings.NewReader("phg\nnode a 1\npad p\nnet x 0 1\nnet y 0 1\n"), lim)
	wantLimitError(t, err, "phg", "nets")

	_, err = ReadPHGLimits(strings.NewReader("phg\nnode a 1\nnet x 0 0 0 0\n"), lim)
	wantLimitError(t, err, "phg", "pins")

	long := "phg\n# " + strings.Repeat("x", 200) + "\n"
	_, err = ReadPHGLimits(strings.NewReader(long), lim)
	wantLimitError(t, err, "phg", "line bytes")

	// Zero limits mean defaults: ordinary inputs keep parsing.
	h, err := ReadPHGLimits(strings.NewReader("phg\nnode a 1\npad p\nnet n 0 1\n"), Limits{})
	if err != nil || h.NumNodes() != 2 {
		t.Fatalf("defaults rejected valid input: %v %v", h, err)
	}
}

func TestHgrLimits(t *testing.T) {
	lim := Limits{MaxNodes: 4, MaxNets: 4, MaxPins: 2}

	// Headers claiming huge counts must be rejected before allocation.
	_, err := ReadHgrLimits(strings.NewReader("999999999 3\n"), lim)
	wantLimitError(t, err, "hgr", "nets")

	_, err = ReadHgrLimits(strings.NewReader("1 999999999\n1 2\n"), lim)
	wantLimitError(t, err, "hgr", "nodes")

	_, err = ReadHgrLimits(strings.NewReader("1 4\n1 2 3 4\n"), lim)
	wantLimitError(t, err, "hgr", "pins")
}

func TestBLIFLimits(t *testing.T) {
	lim := Limits{MaxNodes: 3, MaxPins: 2, MaxLineBytes: 64}

	_, err := ReadBLIFLimits(strings.NewReader(".model m\n.inputs a b c d\n.end\n"), lim)
	wantLimitError(t, err, "blif", "nodes")

	_, err = ReadBLIFLimits(strings.NewReader(".model m\n.names a b c z\n.end\n"), lim)
	wantLimitError(t, err, "blif", "pins")

	// A '\' continuation chain must not accumulate past MaxLineBytes.
	chain := ".model m\n.names " + strings.Repeat("\\\naaaaaaaaaaaaaaaa ", 16) + "z\n.end\n"
	_, err = ReadBLIFLimits(strings.NewReader(chain), lim)
	wantLimitError(t, err, "blif", "line bytes")
}
