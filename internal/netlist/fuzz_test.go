package netlist

// Fuzz targets for every text parser: arbitrary input must never panic,
// and successfully parsed hypergraphs must round-trip through their
// writers. Run the seeds as regular tests, or explore with
// `go test -fuzz FuzzReadPHG ./internal/netlist`.

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/hypergraph"
)

func FuzzReadPHG(f *testing.F) {
	f.Add("phg\nnode a 2\npad p\nnet n 0 1\n")
	f.Add("phg\n")
	f.Add("# comment only\nphg\nnode x 1\n")
	f.Add("phg\nnode a 1\nnet n 0 0 0\n")
	f.Add("phg\nnode a 1\nnet n " + strings.Repeat("0 ", 64) + "\n") // wide net
	f.Add("phg\n# " + strings.Repeat("y", 1<<12) + "\n")             // long line
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadPHG(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePHG(&buf, h); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		h2, err := ReadPHG(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if h2.NumNodes() != h.NumNodes() || h2.NumNets() != h.NumNets() {
			t.Fatalf("round trip drifted: %v vs %v", h2, h)
		}
	})
}

func FuzzReadHgr(f *testing.F) {
	f.Add("2 3\n1 2\n2 3\n")
	f.Add("1 2 10\n1 2\n0\n3\n")
	f.Add("% comment\n1 1\n1\n")
	f.Add("999999999 999999999 10\n") // hostile header: huge declared counts
	f.Add("1 2\n1 " + strings.Repeat("2 ", 128) + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadHgr(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteHgr(&buf, h); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if _, err := ReadHgr(&buf); err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
	})
}

func FuzzReadBLIF(f *testing.F) {
	f.Add(".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n.end\n")
	f.Add(".model m\n.latch a b re c 0\n.end\n")
	f.Add(".model m\n.names \\\na z\n.end\n")
	f.Add(".model m\n.inputs " + strings.Repeat("i ", 256) + "\n.end\n")
	f.Add(".model m\n.names " + strings.Repeat("\\\nx ", 32) + "z\n.end\n")
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ReadBLIF(strings.NewReader(in))
		if err != nil {
			return
		}
		// Lowering a parsed circuit must not panic and must produce a
		// structurally valid hypergraph.
		h, err := c.Hypergraph()
		if err != nil {
			return // duplicate drivers etc. are legitimate rejections
		}
		if h.NumNodes() < 0 {
			t.Fatal("impossible")
		}
	})
}

func FuzzReadAssignment(f *testing.F) {
	f.Add("assign 2 2\n0 0\n1 1\n")
	f.Add("assign 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		blocks, k, err := ReadAssignment(strings.NewReader(in))
		if err != nil {
			return
		}
		if k < 1 {
			t.Fatalf("accepted k=%d", k)
		}
		for _, b := range blocks {
			if int(b) >= k || b < 0 {
				t.Fatalf("accepted out-of-range block %d", b)
			}
		}
	})
}

// Guard: the writers themselves never emit something their readers reject,
// even for adversarial names.
func TestWritersSanitizeNames(t *testing.T) {
	var b hypergraph.Builder
	v := b.AddInterior("we ird\tname", 1)
	u := b.AddInterior("", 1)
	b.AddNet("also bad", v, u)
	h := b.MustBuild()
	var buf bytes.Buffer
	if err := WritePHG(&buf, h); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPHG(&buf); err != nil {
		t.Fatalf("reader rejected sanitized output: %v", err)
	}
}
