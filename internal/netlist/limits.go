package netlist

import (
	"bufio"
	"errors"
	"fmt"
)

// Limits bounds what the text parsers will accept. The readers in this
// package are exposed to untrusted input by the partitioning service
// (`POST /v1/partition` uploads), so every quantity an input file can
// inflate — line length, node/net counts, net arity — is capped before the
// corresponding allocation happens. Exceeding a limit yields a *LimitError.
//
// A zero value in any field selects that field's DefaultLimits entry, so
// Limits{} behaves exactly like DefaultLimits().
type Limits struct {
	// MaxLineBytes caps one logical input line (after BLIF '\'
	// continuations are joined).
	MaxLineBytes int
	// MaxNodes caps the number of nodes (PHG node/pad directives, the hgr
	// header node count, BLIF gates+latches+primary I/Os).
	MaxNodes int
	// MaxNets caps the number of nets (PHG net directives, the hgr header
	// net count, BLIF signals).
	MaxNets int
	// MaxPins caps the arity of a single net (pins on one PHG/hgr net
	// line, inputs of one BLIF .names record).
	MaxPins int
}

// DefaultLimits returns the caps used by the plain Read* functions:
// generous enough for every published benchmark family, small enough that a
// hostile upload cannot drive unbounded allocation.
func DefaultLimits() Limits {
	return Limits{
		MaxLineBytes: 1 << 20, // 1 MiB logical line
		MaxNodes:     1 << 22, // ~4M nodes
		MaxNets:      1 << 22, // ~4M nets
		MaxPins:      1 << 20, // ~1M pins on a single net
	}
}

func (l Limits) normalize() Limits {
	d := DefaultLimits()
	if l.MaxLineBytes <= 0 {
		l.MaxLineBytes = d.MaxLineBytes
	}
	if l.MaxNodes <= 0 {
		l.MaxNodes = d.MaxNodes
	}
	if l.MaxNets <= 0 {
		l.MaxNets = d.MaxNets
	}
	if l.MaxPins <= 0 {
		l.MaxPins = d.MaxPins
	}
	return l
}

// scanner builds a bufio.Scanner whose maximum token size enforces
// MaxLineBytes. lineErr translates the scanner's overflow into a LimitError.
func (l Limits) bufferFor(sc *bufio.Scanner) {
	max := l.MaxLineBytes
	initial := 64 * 1024
	if initial > max {
		initial = max
	}
	sc.Buffer(make([]byte, initial), max)
}

// lineErr maps bufio.ErrTooLong onto the typed limit error; other scanner
// errors pass through unchanged.
func (l Limits) lineErr(format string, err error) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return &LimitError{Format: format, Quantity: "line bytes", Limit: l.MaxLineBytes}
	}
	return err
}

// LimitError reports input that exceeded a configured parser limit. It is
// returned (wrapped) by the Read* functions; match with errors.As.
type LimitError struct {
	// Format names the parser: "phg", "hgr", or "blif".
	Format string
	// Quantity names what overflowed: "line bytes", "nodes", "nets", "pins".
	Quantity string
	// Limit is the configured cap that was exceeded.
	Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s: input exceeds %s limit (%d)", e.Format, e.Quantity, e.Limit)
}
