package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fpart/internal/hypergraph"
)

func sample(t testing.TB) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	a := b.AddInterior("a", 2)
	c := b.AddInterior("b c", 3) // space in name: sanitized on write
	p := b.AddPad("p")
	b.AddNet("n1", a, c)
	b.AddNet("n2", a, c, p)
	return b.MustBuild()
}

func TestPHGRoundTrip(t *testing.T) {
	h := sample(t)
	var buf bytes.Buffer
	if err := WritePHG(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadPHG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumNodes() != h.NumNodes() || h2.NumNets() != h.NumNets() ||
		h2.NumPads() != h.NumPads() || h2.TotalSize() != h.TotalSize() {
		t.Errorf("round trip mismatch: %v vs %v", h2, h)
	}
	for e := 0; e < h.NumNets(); e++ {
		if len(h2.Pins(hypergraph.NetID(e))) != len(h.Pins(hypergraph.NetID(e))) {
			t.Errorf("net %d pin count differs", e)
		}
	}
}

func TestPHGErrors(t *testing.T) {
	cases := map[string]string{
		"no header":     "node a 1\n",
		"bad size":      "phg\nnode a zero\n",
		"zero size":     "phg\nnode a 0\n",
		"bad pin":       "phg\nnode a 1\nnet n 7\n",
		"negative pin":  "phg\nnode a 1\nnet n -1\n",
		"short node":    "phg\nnode a\n",
		"short pad":     "phg\npad\n",
		"short net":     "phg\nnet n\n",
		"unknown direc": "phg\nblah x\n",
	}
	for name, in := range cases {
		if _, err := ReadPHG(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestPHGCommentsAndBlank(t *testing.T) {
	in := "# leading comment\nphg\n\nnode a 2\n# mid\npad p\nnet n 0 1\n"
	h, err := ReadPHG(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 2 || h.NumNets() != 1 {
		t.Errorf("parsed %v", h)
	}
}

func TestHgrRoundTrip(t *testing.T) {
	h := sample(t)
	var buf bytes.Buffer
	if err := WriteHgr(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHgr(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumNodes() != h.NumNodes() || h2.NumNets() != h.NumNets() ||
		h2.NumPads() != h.NumPads() || h2.TotalSize() != h.TotalSize() {
		t.Errorf("round trip mismatch: %v vs %v", h2, h)
	}
}

func TestHgrUnweighted(t *testing.T) {
	in := "2 3\n1 2\n2 3\n"
	h, err := ReadHgr(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 3 || h.NumNets() != 2 || h.TotalSize() != 3 {
		t.Errorf("parsed %v", h)
	}
}

func TestHgrComments(t *testing.T) {
	in := "% hmetis comment\n1 2 10\n1 2\n2\n0\n"
	h, err := ReadHgr(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumPads() != 1 || h.NumInterior() != 1 {
		t.Errorf("weight-0 pad convention broken: %v", h)
	}
}

func TestHgrErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x y\n",
		"one field":    "3\n",
		"net weights":  "1 2 1\n1 2\n",
		"short nets":   "2 2\n1 2\n",
		"pin range":    "1 2\n1 3\n",
		"pin zero":     "1 2\n0 1\n",
		"missing wgt":  "1 2 10\n1 2\n1\n",
		"negative wgt": "1 2 10\n1 2\n-1\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadHgr(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// Property: PHG and HGR round trips preserve the full pin structure for
// random hypergraphs.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b hypergraph.Builder
		n := 2 + r.Intn(25)
		for i := 0; i < n; i++ {
			if r.Intn(6) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1+r.Intn(5))
			}
		}
		for e := 0; e < 1+r.Intn(30); e++ {
			d := 1 + r.Intn(4)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		for _, codec := range []struct {
			w func(*bytes.Buffer) error
			r func(*bytes.Buffer) (*hypergraph.Hypergraph, error)
		}{
			{func(buf *bytes.Buffer) error { return WritePHG(buf, h) },
				func(buf *bytes.Buffer) (*hypergraph.Hypergraph, error) { return ReadPHG(buf) }},
			{func(buf *bytes.Buffer) error { return WriteHgr(buf, h) },
				func(buf *bytes.Buffer) (*hypergraph.Hypergraph, error) { return ReadHgr(buf) }},
		} {
			var buf bytes.Buffer
			if err := codec.w(&buf); err != nil {
				return false
			}
			h2, err := codec.r(&buf)
			if err != nil {
				return false
			}
			if h2.NumNodes() != h.NumNodes() || h2.NumNets() != h.NumNets() ||
				h2.NumPads() != h.NumPads() || h2.TotalSize() != h.TotalSize() {
				return false
			}
			for e := 0; e < h.NumNets(); e++ {
				a, bb := h.Pins(hypergraph.NetID(e)), h2.Pins(hypergraph.NetID(e))
				if len(a) != len(bb) {
					return false
				}
				for i := range a {
					if a[i] != bb[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

const sampleBlif = `
# a tiny accumulator
.model acc
.inputs a b clk
.outputs sum
.names a b w1   # AND
11 1
.names w1 q w2 \

.names w2 sum
1 1
.latch w2 q re clk 0
.end
`

func TestReadBLIF(t *testing.T) {
	c, err := ReadBLIF(strings.NewReader(sampleBlif))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "acc" {
		t.Errorf("model = %q", c.Name)
	}
	if len(c.Inputs) != 3 || len(c.Outputs) != 1 {
		t.Errorf("io: %v %v", c.Inputs, c.Outputs)
	}
	if len(c.Gates) != 3 {
		t.Fatalf("gates = %d, want 3", len(c.Gates))
	}
	if len(c.Latches) != 1 || c.Latches[0].Input != "w2" || c.Latches[0].Output != "q" {
		t.Errorf("latches = %+v", c.Latches)
	}
	// Continuation line: second gate has inputs w1 q, output w2.
	g := c.Gates[1]
	if g.Output != "w2" || len(g.Inputs) != 2 {
		t.Errorf("gate 1 = %+v", g)
	}
}

func TestBLIFErrors(t *testing.T) {
	cases := map[string]string{
		"no model":   ".inputs a\n.end\n",
		"two models": ".model a\n.end\n.model b\n.end\n",
		"subckt":     ".model a\n.subckt foo x=y\n.end\n",
		"gate":       ".model a\n.gate nand2 a=x\n.end\n",
		"bare names": ".model a\n.names\n.end\n",
		"bare latch": ".model a\n.latch x\n.end\n",
	}
	for name, in := range cases {
		if _, err := ReadBLIF(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBLIFHypergraph(t *testing.T) {
	c, err := ReadBLIF(strings.NewReader(sampleBlif))
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: 3 PI pads + 1 PO pad + 3 gates + 1 latch = 8.
	if h.NumNodes() != 8 || h.NumPads() != 4 || h.NumInterior() != 4 {
		t.Fatalf("nodes=%d pads=%d", h.NumNodes(), h.NumPads())
	}
	// Signals with >= 2 connections: a, b, w1, q, w2, sum. clk has only
	// its pad (latch control signals are not modeled) -> 6 nets.
	if h.NumNets() != 6 {
		t.Errorf("nets = %d, want 6", h.NumNets())
	}
	// w2 connects gate(w2), gate(sum), latch -> 3 pins.
	found := false
	for e := 0; e < h.NumNets(); e++ {
		if h.Net(hypergraph.NetID(e)).Name == "w2" {
			found = true
			if len(h.Pins(hypergraph.NetID(e))) != 3 {
				t.Errorf("w2 has %d pins, want 3", len(h.Pins(hypergraph.NetID(e))))
			}
		}
	}
	if !found {
		t.Error("net w2 missing")
	}
}

func TestBLIFHypergraphDeterministic(t *testing.T) {
	mk := func() string {
		c, err := ReadBLIF(strings.NewReader(sampleBlif))
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WritePHG(&buf, h); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if mk() != mk() {
		t.Error("BLIF lowering is nondeterministic")
	}
}
