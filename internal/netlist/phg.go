// Package netlist reads and writes circuit hypergraphs in three formats:
//
//   - PHG, a small line-oriented native format that captures everything the
//     partitioning model needs (interior node sizes, pad nodes, named nets);
//   - hMETIS .hgr, the de-facto exchange format for hypergraph
//     partitioning benchmarks (node weights supported; pads encoded as
//     weight-0 nodes);
//   - a structural subset of Berkeley BLIF (.model/.inputs/.outputs/
//     .names/.latch), from which a gate-level hypergraph is derived for the
//     technology mapper.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fpart/internal/hypergraph"
)

// WritePHG serializes the hypergraph in PHG form:
//
//	phg
//	node <name> <size> [RES:DEMAND...]
//	pad <name>
//	net <name> <node-index>...
//
// Nodes are referenced by zero-based index to keep files compact and to
// avoid requiring unique names. Lines beginning with '#' are comments.
// The optional trailing NAME:DEMAND tokens on a node line declare the
// node's demand on named resource axes (DSP, BRAM, ...); absent tokens
// mean zero, so scalar netlists are written and parsed exactly as before.
func WritePHG(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "phg")
	fmt.Fprintf(bw, "# nodes=%d nets=%d\n", h.NumNodes(), h.NumNets())
	resNames := h.ResourceNames()
	resCols := make([][]int32, len(resNames))
	for i, name := range resNames {
		resCols[i] = h.ResourceColumn(name)
	}
	for i := 0; i < h.NumNodes(); i++ {
		n := h.Node(hypergraph.NodeID(i))
		if n.Kind == hypergraph.Pad {
			fmt.Fprintf(bw, "pad %s\n", sanitizeName(n.Name, i))
		} else {
			fmt.Fprintf(bw, "node %s %d", sanitizeName(n.Name, i), n.Size)
			for ri, col := range resCols {
				if d := col[i]; d > 0 {
					fmt.Fprintf(bw, " %s:%d", resNames[ri], d)
				}
			}
			fmt.Fprintln(bw)
		}
	}
	for e := 0; e < h.NumNets(); e++ {
		net := h.Net(hypergraph.NetID(e))
		fmt.Fprintf(bw, "net %s", sanitizeName(net.Name, e))
		for _, p := range net.Pins {
			fmt.Fprintf(bw, " %d", p)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func sanitizeName(name string, fallback int) string {
	if name == "" {
		return fmt.Sprintf("_%d", fallback)
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, name)
}

// ReadPHG parses the PHG format written by WritePHG, applying
// DefaultLimits. Use ReadPHGLimits to accept untrusted input under custom
// caps.
func ReadPHG(r io.Reader) (*hypergraph.Hypergraph, error) {
	return ReadPHGLimits(r, Limits{})
}

// ReadPHGLimits parses PHG input under the given parser limits; exceeding
// one returns a *LimitError. Zero Limits fields select DefaultLimits.
func ReadPHGLimits(r io.Reader, lim Limits) (*hypergraph.Hypergraph, error) {
	lim = lim.normalize()
	sc := bufio.NewScanner(r)
	lim.bufferFor(sc)
	var b hypergraph.Builder
	lineNo := 0
	sawHeader := false
	nets := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "phg":
			sawHeader = true
		case "node":
			if len(fields) < 3 {
				return nil, fmt.Errorf("phg line %d: node wants 2 args", lineNo)
			}
			size, err := strconv.Atoi(fields[2])
			if err != nil || size < 1 {
				return nil, fmt.Errorf("phg line %d: bad size %q", lineNo, fields[2])
			}
			if b.NumNodes() >= lim.MaxNodes {
				return nil, &LimitError{Format: "phg", Quantity: "nodes", Limit: lim.MaxNodes}
			}
			id := b.AddInterior(fields[1], size)
			// Optional trailing NAME:DEMAND resource tokens.
			for _, tok := range fields[3:] {
				name, demStr, ok := strings.Cut(tok, ":")
				if !ok || name == "" {
					return nil, fmt.Errorf("phg line %d: bad resource token %q (want NAME:DEMAND)", lineNo, tok)
				}
				dem, err := strconv.Atoi(demStr)
				if err != nil || dem < 0 {
					return nil, fmt.Errorf("phg line %d: bad resource demand %q", lineNo, tok)
				}
				b.SetResource(id, name, dem)
			}
		case "pad":
			if len(fields) != 2 {
				return nil, fmt.Errorf("phg line %d: pad wants 1 arg", lineNo)
			}
			if b.NumNodes() >= lim.MaxNodes {
				return nil, &LimitError{Format: "phg", Quantity: "nodes", Limit: lim.MaxNodes}
			}
			b.AddPad(fields[1])
		case "net":
			if len(fields) < 3 {
				return nil, fmt.Errorf("phg line %d: net wants a name and pins", lineNo)
			}
			if len(fields)-2 > lim.MaxPins {
				return nil, &LimitError{Format: "phg", Quantity: "pins", Limit: lim.MaxPins}
			}
			if nets >= lim.MaxNets {
				return nil, &LimitError{Format: "phg", Quantity: "nets", Limit: lim.MaxNets}
			}
			pins := make([]hypergraph.NodeID, 0, len(fields)-2)
			for _, f := range fields[2:] {
				idx, err := strconv.Atoi(f)
				if err != nil || idx < 0 || idx >= b.NumNodes() {
					return nil, fmt.Errorf("phg line %d: bad pin %q", lineNo, f)
				}
				pins = append(pins, hypergraph.NodeID(idx))
			}
			b.AddNet(fields[1], pins...)
			nets++
		default:
			return nil, fmt.Errorf("phg line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, lim.lineErr("phg", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("phg: missing header line")
	}
	return b.Build()
}

// WriteHgr serializes the hypergraph in hMETIS format with node weights
// (fmt code 10). Pads are written with weight 0 — a convention this package
// round-trips; standard hMETIS tools treat them as ordinary light nodes.
func WriteHgr(w io.Writer, h *hypergraph.Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d 10\n", h.NumNets(), h.NumNodes())
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(hypergraph.NetID(e))
		for i, p := range pins {
			if i > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprint(bw, int(p)+1)
		}
		fmt.Fprintln(bw)
	}
	for i := 0; i < h.NumNodes(); i++ {
		fmt.Fprintln(bw, h.Node(hypergraph.NodeID(i)).Size)
	}
	return bw.Flush()
}

// ReadHgr parses hMETIS format, accepting fmt codes 0 (unweighted) and 10
// (node weights). Weight-0 nodes become pads; all others are interior.
// DefaultLimits apply; use ReadHgrLimits for untrusted input.
func ReadHgr(r io.Reader) (*hypergraph.Hypergraph, error) {
	return ReadHgrLimits(r, Limits{})
}

// ReadHgrLimits parses hMETIS input under the given parser limits. The
// header's declared node and net counts are validated against the limits
// before any proportional allocation happens; exceeding a cap returns a
// *LimitError. Zero Limits fields select DefaultLimits.
func ReadHgrLimits(r io.Reader, lim Limits) (*hypergraph.Hypergraph, error) {
	lim = lim.normalize()
	sc := bufio.NewScanner(r)
	lim.bufferFor(sc)
	readLine := func() ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, lim.lineErr("hgr", err)
		}
		return nil, io.EOF
	}
	header, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("hgr: %w", err)
	}
	if len(header) < 2 || len(header) > 3 {
		return nil, fmt.Errorf("hgr: header wants 2 or 3 fields, got %d", len(header))
	}
	nNets, err1 := strconv.Atoi(header[0])
	nNodes, err2 := strconv.Atoi(header[1])
	if err1 != nil || err2 != nil || nNets < 0 || nNodes <= 0 {
		return nil, fmt.Errorf("hgr: bad header %v", header)
	}
	if nNodes > lim.MaxNodes {
		return nil, &LimitError{Format: "hgr", Quantity: "nodes", Limit: lim.MaxNodes}
	}
	if nNets > lim.MaxNets {
		return nil, &LimitError{Format: "hgr", Quantity: "nets", Limit: lim.MaxNets}
	}
	format := "0"
	if len(header) == 3 {
		format = header[2]
	}
	if format != "0" && format != "10" {
		return nil, fmt.Errorf("hgr: unsupported fmt %q (net weights not supported)", format)
	}

	type netRec []hypergraph.NodeID
	nets := make([]netRec, 0, nNets)
	for e := 0; e < nNets; e++ {
		fields, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("hgr: net %d: %w", e+1, err)
		}
		if len(fields) > lim.MaxPins {
			return nil, &LimitError{Format: "hgr", Quantity: "pins", Limit: lim.MaxPins}
		}
		pins := make(netRec, 0, len(fields))
		for _, f := range fields {
			idx, err := strconv.Atoi(f)
			if err != nil || idx < 1 || idx > nNodes {
				return nil, fmt.Errorf("hgr: net %d: bad pin %q", e+1, f)
			}
			pins = append(pins, hypergraph.NodeID(idx-1))
		}
		nets = append(nets, pins)
	}
	weights := make([]int, nNodes)
	for i := range weights {
		weights[i] = 1
	}
	if format == "10" {
		for i := 0; i < nNodes; i++ {
			fields, err := readLine()
			if err != nil {
				return nil, fmt.Errorf("hgr: weight %d: %w", i+1, err)
			}
			wgt, err := strconv.Atoi(fields[0])
			if err != nil || wgt < 0 {
				return nil, fmt.Errorf("hgr: weight %d: bad value %q", i+1, fields[0])
			}
			weights[i] = wgt
		}
	}
	var b hypergraph.Builder
	for i := 0; i < nNodes; i++ {
		if weights[i] == 0 {
			b.AddPad(fmt.Sprintf("p%d", i+1))
		} else {
			b.AddInterior(fmt.Sprintf("v%d", i+1), weights[i])
		}
	}
	for e, pins := range nets {
		b.AddNet(fmt.Sprintf("e%d", e+1), pins...)
	}
	return b.Build()
}
