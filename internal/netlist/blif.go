package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fpart/internal/hypergraph"
)

// BlifCircuit is the structural content of a parsed BLIF model: gates
// (.names), latches (.latch), and the primary I/O lists. Cube tables are
// discarded — partitioning needs connectivity, not logic.
type BlifCircuit struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []BlifGate
	Latches []BlifLatch
}

// BlifGate is one .names record: a single-output logic function.
type BlifGate struct {
	Inputs []string
	Output string
}

// BlifLatch is one .latch record.
type BlifLatch struct {
	Input, Output string
}

// ReadBLIF parses the structural BLIF subset:
// .model, .inputs, .outputs, .names, .latch, .end, with '\' continuations
// and '#' comments. .gate/.subckt and multiple models are rejected.
// DefaultLimits apply; use ReadBLIFLimits for untrusted input.
func ReadBLIF(r io.Reader) (*BlifCircuit, error) {
	return ReadBLIFLimits(r, Limits{})
}

// ReadBLIFLimits parses BLIF input under the given parser limits: logical
// lines (after continuation joining) are capped at MaxLineBytes, the total
// element count (gates + latches + primary I/Os) at MaxNodes, and the fanin
// of one .names record at MaxPins. Exceeding a cap returns a *LimitError.
// Zero Limits fields select DefaultLimits.
func ReadBLIFLimits(r io.Reader, lim Limits) (*BlifCircuit, error) {
	lim = lim.normalize()
	sc := bufio.NewScanner(r)
	lim.bufferFor(sc)
	c := &BlifCircuit{}
	sawModel := false
	lineNo := 0
	elements := 0
	var limErr *LimitError

	addElements := func(n int) bool {
		elements += n
		if elements > lim.MaxNodes {
			limErr = &LimitError{Format: "blif", Quantity: "nodes", Limit: lim.MaxNodes}
			return false
		}
		return true
	}

	nextLogical := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			for strings.HasSuffix(line, "\\") {
				line = strings.TrimSuffix(line, "\\")
				if !sc.Scan() {
					break
				}
				lineNo++
				cont := sc.Text()
				if i := strings.IndexByte(cont, '#'); i >= 0 {
					cont = cont[:i]
				}
				line += " " + strings.TrimSpace(cont)
				if len(line) > lim.MaxLineBytes {
					limErr = &LimitError{Format: "blif", Quantity: "line bytes", Limit: lim.MaxLineBytes}
					return "", false
				}
			}
			return line, true
		}
		return "", false
	}

	for {
		line, ok := nextLogical()
		if !ok {
			break
		}
		if !strings.HasPrefix(line, ".") {
			continue // cube rows of the preceding .names
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if sawModel {
				return nil, fmt.Errorf("blif line %d: multiple models not supported", lineNo)
			}
			sawModel = true
			if len(fields) > 1 {
				c.Name = fields[1]
			}
		case ".inputs":
			if !addElements(len(fields) - 1) {
				return nil, limErr
			}
			c.Inputs = append(c.Inputs, fields[1:]...)
		case ".outputs":
			if !addElements(len(fields) - 1) {
				return nil, limErr
			}
			c.Outputs = append(c.Outputs, fields[1:]...)
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif line %d: .names needs at least an output", lineNo)
			}
			if len(fields)-2 > lim.MaxPins {
				return nil, &LimitError{Format: "blif", Quantity: "pins", Limit: lim.MaxPins}
			}
			if !addElements(1) {
				return nil, limErr
			}
			g := BlifGate{Output: fields[len(fields)-1]}
			g.Inputs = append(g.Inputs, fields[1:len(fields)-1]...)
			c.Gates = append(c.Gates, g)
		case ".latch":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif line %d: .latch needs input and output", lineNo)
			}
			if !addElements(1) {
				return nil, limErr
			}
			c.Latches = append(c.Latches, BlifLatch{Input: fields[1], Output: fields[2]})
		case ".end":
			// done with the model
		case ".gate", ".subckt", ".mlatch":
			return nil, fmt.Errorf("blif line %d: %s not supported (structural subset)", lineNo, fields[0])
		default:
			// Unknown dot-directives (.clock, .default_input_arrival, ...)
			// are ignored for structural purposes.
		}
	}
	if limErr != nil {
		return nil, limErr
	}
	if err := sc.Err(); err != nil {
		return nil, lim.lineErr("blif", err)
	}
	if !sawModel {
		return nil, fmt.Errorf("blif: no .model found")
	}
	return c, nil
}

// Hypergraph lowers the BLIF circuit to a gate-level hypergraph: one
// interior node per gate/latch (unit size), one pad per primary input and
// output, and one net per signal connecting its driver to all its readers.
// Signals with a single connection produce no net. Undriven signals are
// tolerated (common in benchmark BLIFs with implicit constants).
func (c *BlifCircuit) Hypergraph() (*hypergraph.Hypergraph, error) {
	var b hypergraph.Builder
	// signal -> node IDs attached to it
	attach := make(map[string][]hypergraph.NodeID)
	add := func(sig string, id hypergraph.NodeID) {
		attach[sig] = append(attach[sig], id)
	}
	for _, in := range c.Inputs {
		add(in, b.AddPad("pi:"+in))
	}
	outPads := make(map[string]hypergraph.NodeID, len(c.Outputs))
	for _, out := range c.Outputs {
		id := b.AddPad("po:" + out)
		outPads[out] = id
		add(out, id)
	}
	for _, g := range c.Gates {
		id := b.AddInterior("g:"+g.Output, 1)
		add(g.Output, id)
		for _, in := range g.Inputs {
			add(in, id)
		}
	}
	for _, l := range c.Latches {
		id := b.AddInterior("ff:"+l.Output, 1)
		b.SetAux(id, 1) // one flip-flop of the device's secondary resource
		add(l.Output, id)
		add(l.Input, id)
	}
	// Deterministic net order: iterate signals in first-appearance order.
	order := make([]string, 0, len(attach))
	seen := make(map[string]bool)
	appendSig := func(s string) {
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	for _, in := range c.Inputs {
		appendSig(in)
	}
	for _, g := range c.Gates {
		appendSig(g.Output)
		for _, in := range g.Inputs {
			appendSig(in)
		}
	}
	for _, l := range c.Latches {
		appendSig(l.Output)
		appendSig(l.Input)
	}
	for _, out := range c.Outputs {
		appendSig(out)
	}
	for _, sig := range order {
		ids := attach[sig]
		if len(ids) >= 2 {
			b.AddNet(sig, ids...)
		}
	}
	return b.Build()
}
