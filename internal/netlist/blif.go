package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fpart/internal/hypergraph"
)

// BlifCircuit is the structural content of a parsed BLIF model: gates
// (.names), latches (.latch), and the primary I/O lists. Cube tables are
// discarded — partitioning needs connectivity, not logic.
type BlifCircuit struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []BlifGate
	Latches []BlifLatch
}

// BlifGate is one .names record: a single-output logic function.
type BlifGate struct {
	Inputs []string
	Output string
}

// BlifLatch is one .latch record.
type BlifLatch struct {
	Input, Output string
}

// ReadBLIF parses the structural BLIF subset:
// .model, .inputs, .outputs, .names, .latch, .end, with '\' continuations
// and '#' comments. .gate/.subckt and multiple models are rejected.
func ReadBLIF(r io.Reader) (*BlifCircuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	c := &BlifCircuit{}
	sawModel := false
	lineNo := 0

	nextLogical := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			for strings.HasSuffix(line, "\\") {
				line = strings.TrimSuffix(line, "\\")
				if !sc.Scan() {
					break
				}
				lineNo++
				cont := sc.Text()
				if i := strings.IndexByte(cont, '#'); i >= 0 {
					cont = cont[:i]
				}
				line += " " + strings.TrimSpace(cont)
			}
			return line, true
		}
		return "", false
	}

	for {
		line, ok := nextLogical()
		if !ok {
			break
		}
		if !strings.HasPrefix(line, ".") {
			continue // cube rows of the preceding .names
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if sawModel {
				return nil, fmt.Errorf("blif line %d: multiple models not supported", lineNo)
			}
			sawModel = true
			if len(fields) > 1 {
				c.Name = fields[1]
			}
		case ".inputs":
			c.Inputs = append(c.Inputs, fields[1:]...)
		case ".outputs":
			c.Outputs = append(c.Outputs, fields[1:]...)
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif line %d: .names needs at least an output", lineNo)
			}
			g := BlifGate{Output: fields[len(fields)-1]}
			g.Inputs = append(g.Inputs, fields[1:len(fields)-1]...)
			c.Gates = append(c.Gates, g)
		case ".latch":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif line %d: .latch needs input and output", lineNo)
			}
			c.Latches = append(c.Latches, BlifLatch{Input: fields[1], Output: fields[2]})
		case ".end":
			// done with the model
		case ".gate", ".subckt", ".mlatch":
			return nil, fmt.Errorf("blif line %d: %s not supported (structural subset)", lineNo, fields[0])
		default:
			// Unknown dot-directives (.clock, .default_input_arrival, ...)
			// are ignored for structural purposes.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawModel {
		return nil, fmt.Errorf("blif: no .model found")
	}
	return c, nil
}

// Hypergraph lowers the BLIF circuit to a gate-level hypergraph: one
// interior node per gate/latch (unit size), one pad per primary input and
// output, and one net per signal connecting its driver to all its readers.
// Signals with a single connection produce no net. Undriven signals are
// tolerated (common in benchmark BLIFs with implicit constants).
func (c *BlifCircuit) Hypergraph() (*hypergraph.Hypergraph, error) {
	var b hypergraph.Builder
	// signal -> node IDs attached to it
	attach := make(map[string][]hypergraph.NodeID)
	add := func(sig string, id hypergraph.NodeID) {
		attach[sig] = append(attach[sig], id)
	}
	for _, in := range c.Inputs {
		add(in, b.AddPad("pi:"+in))
	}
	outPads := make(map[string]hypergraph.NodeID, len(c.Outputs))
	for _, out := range c.Outputs {
		id := b.AddPad("po:" + out)
		outPads[out] = id
		add(out, id)
	}
	for _, g := range c.Gates {
		id := b.AddInterior("g:"+g.Output, 1)
		add(g.Output, id)
		for _, in := range g.Inputs {
			add(in, id)
		}
	}
	for _, l := range c.Latches {
		id := b.AddInterior("ff:"+l.Output, 1)
		b.SetAux(id, 1) // one flip-flop of the device's secondary resource
		add(l.Output, id)
		add(l.Input, id)
	}
	// Deterministic net order: iterate signals in first-appearance order.
	order := make([]string, 0, len(attach))
	seen := make(map[string]bool)
	appendSig := func(s string) {
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	for _, in := range c.Inputs {
		appendSig(in)
	}
	for _, g := range c.Gates {
		appendSig(g.Output)
		for _, in := range g.Inputs {
			appendSig(in)
		}
	}
	for _, l := range c.Latches {
		appendSig(l.Output)
		appendSig(l.Input)
	}
	for _, out := range c.Outputs {
		appendSig(out)
	}
	for _, sig := range order {
		ids := attach[sig]
		if len(ids) >= 2 {
			b.AddNet(sig, ids...)
		}
	}
	return b.Build()
}
