package netlist_test

import (
	"fmt"
	"log"
	"strings"

	"fpart/internal/netlist"
)

// ExampleReadBLIF parses a tiny sequential circuit and lowers it to a
// hypergraph.
func ExampleReadBLIF() {
	blif := `
.model toggle
.inputs en clk
.outputs q
.names en q d
10 1
01 1
.latch d q re clk 0
.end
`
	c, err := netlist.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		log.Fatal(err)
	}
	h, err := c.Hypergraph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model=%s gates=%d latches=%d\n", c.Name, len(c.Gates), len(c.Latches))
	fmt.Printf("hypergraph: %d interior, %d pads, %d flip-flops\n",
		h.NumInterior(), h.NumPads(), h.TotalAux())
	// Output:
	// model=toggle gates=1 latches=1
	// hypergraph: 2 interior, 3 pads, 1 flip-flops
}
