package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// WriteAssignment serializes a partition's node-to-block mapping as one
// "index block" pair per line, with a header carrying the node count for
// validation. Node indices (not names) key the mapping so files pair with
// the PHG/HGR netlist they were produced from.
func WriteAssignment(w io.Writer, p *partition.Partition) error {
	bw := bufio.NewWriter(w)
	h := p.Hypergraph()
	fmt.Fprintf(bw, "assign %d %d\n", h.NumNodes(), p.NumBlocks())
	for v := 0; v < h.NumNodes(); v++ {
		fmt.Fprintf(bw, "%d %d\n", v, p.Block(hypergraph.NodeID(v)))
	}
	return bw.Flush()
}

// ReadAssignment parses an assignment file and returns per-node block IDs
// and the block count. The node count must match the circuit the caller
// pairs it with.
func ReadAssignment(r io.Reader) (blocks []partition.BlockID, k int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("assign: empty input")
	}
	header := strings.Fields(strings.TrimSpace(sc.Text()))
	if len(header) != 3 || header[0] != "assign" {
		return nil, 0, fmt.Errorf("assign: bad header %q", sc.Text())
	}
	n, err1 := strconv.Atoi(header[1])
	k, err2 := strconv.Atoi(header[2])
	if err1 != nil || err2 != nil || n < 0 || k < 1 {
		return nil, 0, fmt.Errorf("assign: bad header %q", sc.Text())
	}
	blocks = make([]partition.BlockID, n)
	seen := make([]bool, n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, 0, fmt.Errorf("assign: bad line %q", line)
		}
		v, errV := strconv.Atoi(fields[0])
		b, errB := strconv.Atoi(fields[1])
		if errV != nil || errB != nil || v < 0 || v >= n || b < 0 || b >= k {
			return nil, 0, fmt.Errorf("assign: bad line %q", line)
		}
		if seen[v] {
			return nil, 0, fmt.Errorf("assign: node %d assigned twice", v)
		}
		seen[v] = true
		blocks[v] = partition.BlockID(b)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	for v, ok := range seen {
		if !ok {
			return nil, 0, fmt.Errorf("assign: node %d missing", v)
		}
	}
	return blocks, k, nil
}
