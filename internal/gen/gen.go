// Package gen generates synthetic CLB-level benchmark circuits that
// reproduce the characteristics of the MCNC Partitioning93 suite used in
// the FPART paper's Table 1 (#IOBs and #CLBs per Xilinx family, exactly),
// with hierarchical Rent-style connectivity.
//
// The original mapped netlists (Kuznar's Partitioning93 directories) are
// not distributable here, so each circuit is synthesized deterministically
// from its name: a recursive cluster hierarchy gives the locality structure
// that iterative-improvement partitioners exploit, a Rent-rule exponent
// controls how many nets cross each hierarchy level (and therefore how hard
// the I/O constraint binds), and sequential circuits get a high-fanout
// clock net. DESIGN.md documents why this substitution preserves the
// partitioning behaviour the paper measures.
package gen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// Spec mirrors one row of Table 1.
type Spec struct {
	Name     string
	IOBs     int
	CLBs2000 int // mapped to XC2000-family CLBs (K=4)
	CLBs3000 int // mapped to XC3000-family CLBs (K=5)
	// Sequential marks circuits with flip-flops (the ISCAS89 s-circuits);
	// they receive a global clock net.
	Sequential bool
	// RentExp is the circuit's Rent exponent; zero selects the Params
	// default. The big sequential ISCAS89 circuits are much more
	// partitionable (p ≈ 0.5) than the dense combinational c-circuits —
	// Rent-exponent studies of the MCNC/ISCAS suites report exactly this
	// spread, and it is what lets the paper's methods approach the lower
	// bound on s38417/s38584 (see EXPERIMENTS.md calibration notes).
	RentExp float64
}

// CLBs returns the mapped CLB count for the family.
func (s Spec) CLBs(f device.Family) int {
	if f == device.XC2000 {
		return s.CLBs2000
	}
	return s.CLBs3000
}

// MCNC lists the ten benchmark circuits of Table 1.
var MCNC = []Spec{
	{Name: "c3540", IOBs: 72, CLBs2000: 373, CLBs3000: 283, RentExp: 0.62},
	{Name: "c5315", IOBs: 301, CLBs2000: 535, CLBs3000: 377, RentExp: 0.58},
	{Name: "c6288", IOBs: 64, CLBs2000: 833, CLBs3000: 833, RentExp: 0.62},
	{Name: "c7552", IOBs: 313, CLBs2000: 611, CLBs3000: 489, RentExp: 0.58},
	{Name: "s5378", IOBs: 86, CLBs2000: 500, CLBs3000: 381, Sequential: true, RentExp: 0.62},
	{Name: "s9234", IOBs: 43, CLBs2000: 565, CLBs3000: 454, Sequential: true, RentExp: 0.62},
	{Name: "s13207", IOBs: 154, CLBs2000: 1038, CLBs3000: 915, Sequential: true, RentExp: 0.60},
	{Name: "s15850", IOBs: 102, CLBs2000: 1013, CLBs3000: 842, Sequential: true, RentExp: 0.60},
	{Name: "s38417", IOBs: 136, CLBs2000: 2763, CLBs3000: 2221, Sequential: true, RentExp: 0.55},
	{Name: "s38584", IOBs: 292, CLBs2000: 3956, CLBs3000: 2904, Sequential: true, RentExp: 0.50},
}

// ByName finds a Table 1 circuit.
func ByName(name string) (Spec, bool) {
	for _, s := range MCNC {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Params tunes the synthetic structure. Zero values select the calibrated
// defaults (see EXPERIMENTS.md for the calibration results).
type Params struct {
	// Branch is the hierarchy branching factor (default 4).
	Branch int
	// LeafSize is the cluster size at the bottom of the hierarchy
	// (default 8).
	LeafSize int
	// Rent is the Rent-rule exponent governing cross-cluster nets
	// (default 0.62).
	Rent float64
	// RentCoeff scales the cross-net count at each level (default 0.75).
	RentCoeff float64
	// LocalNets is the nets-per-node density inside leaves (default 1.05).
	LocalNets float64
	// ClockFanout caps the global clock net's pin count (default 256).
	ClockFanout int
}

func (p Params) normalize() Params {
	if p.Branch == 0 {
		p.Branch = 4
	}
	if p.LeafSize == 0 {
		p.LeafSize = 8
	}
	if p.Rent == 0 {
		p.Rent = 0.62
	}
	if p.RentCoeff == 0 {
		p.RentCoeff = 0.75
	}
	if p.LocalNets == 0 {
		p.LocalNets = 1.05
	}
	if p.ClockFanout == 0 {
		p.ClockFanout = 256
	}
	return p
}

// Generate synthesizes the circuit deterministically for the given family
// with default parameters.
func Generate(s Spec, fam device.Family) *hypergraph.Hypergraph {
	return GenerateParams(s, fam, Params{})
}

// GenerateParams synthesizes with explicit parameters.
func GenerateParams(s Spec, fam device.Family, prm Params) *hypergraph.Hypergraph {
	var b builderEmitter
	generate(s, fam, prm, &b)
	return b.b.MustBuild()
}

// emitter receives the generator's output in emission order. The builder
// implementation materializes a hypergraph; the streaming implementations
// in stream.go count or write netlist lines without retaining anything, so
// a million-cell circuit never has to exist in memory at once. Node IDs
// are assigned sequentially by emission order in every implementation —
// that equivalence is what makes StreamPHG byte-identical to
// WritePHG(Generate(...)).
type emitter interface {
	AddInterior(name string, size int) hypergraph.NodeID
	AddPad(name string) hypergraph.NodeID
	AddNet(name string, pins ...hypergraph.NodeID)
}

// builderEmitter materializes the emitted circuit via hypergraph.Builder.
type builderEmitter struct {
	b hypergraph.Builder
}

func (be *builderEmitter) AddInterior(name string, size int) hypergraph.NodeID {
	return be.b.AddInterior(name, size)
}
func (be *builderEmitter) AddPad(name string) hypergraph.NodeID { return be.b.AddPad(name) }
func (be *builderEmitter) AddNet(name string, pins ...hypergraph.NodeID) {
	be.b.AddNet(name, pins...)
}

// generate runs the synthesis recursion into em. It is deterministic in
// (s, fam, prm): the RNG is seeded from the circuit name, so repeated
// calls replay the identical emission sequence — the streaming writer
// leans on this to make multiple passes over the same circuit.
func generate(s Spec, fam device.Family, prm Params, em emitter) {
	if prm.Rent == 0 && s.RentExp != 0 {
		prm.Rent = s.RentExp
	}
	prm = prm.normalize()
	n := s.CLBs(fam)
	if n < 1 {
		panic(fmt.Sprintf("gen: circuit %q has no CLBs for family %v", s.Name, fam))
	}
	hsh := fnv.New64a()
	fmt.Fprintf(hsh, "%s/%v", s.Name, fam)
	r := rand.New(rand.NewSource(int64(hsh.Sum64())))

	b := em
	for i := 0; i < n; i++ {
		b.AddInterior(fmt.Sprintf("clb%d", i), 1)
	}

	// Recursive hierarchy over the index range [lo, hi).
	var build func(lo, hi int)
	build = func(lo, hi int) {
		m := hi - lo
		if m <= prm.LeafSize {
			// Local nets: chain for guaranteed connectivity plus random
			// small nets for density.
			for i := lo; i+1 < hi; i++ {
				b.AddNet("l", hypergraph.NodeID(i), hypergraph.NodeID(i+1))
			}
			extra := int(prm.LocalNets*float64(m)) - (m - 1)
			for i := 0; i < extra; i++ {
				deg := 2 + r.Intn(2)
				pins := make([]hypergraph.NodeID, deg)
				for j := range pins {
					pins[j] = hypergraph.NodeID(lo + r.Intn(m))
				}
				b.AddNet("l", pins...)
			}
			return
		}
		// Split into Branch nearly equal children.
		kids := prm.Branch
		if kids > m {
			kids = m
		}
		bounds := make([]int, kids+1)
		for i := 0; i <= kids; i++ {
			bounds[i] = lo + i*m/kids
		}
		for i := 0; i < kids; i++ {
			build(bounds[i], bounds[i+1])
		}
		// Cross-cluster nets at this level: Rent's rule. The count scales
		// with the cluster's terminal demand t·m^p distributed over its
		// children.
		cross := int(math.Round(prm.RentCoeff * math.Pow(float64(m), prm.Rent)))
		if cross < kids-1 {
			cross = kids - 1 // keep children connected
		}
		for c := 0; c < cross; c++ {
			deg := 2 + r.Intn(3) // 2-4 pins
			pins := make([]hypergraph.NodeID, 0, deg)
			// First two pins from distinct children to guarantee a
			// crossing; the rest anywhere in the range.
			k1 := c % kids
			k2 := (k1 + 1 + r.Intn(kids-1)) % kids
			pins = append(pins,
				pick(r, bounds[k1], bounds[k1+1]),
				pick(r, bounds[k2], bounds[k2+1]))
			for len(pins) < deg {
				pins = append(pins, hypergraph.NodeID(lo+r.Intn(m)))
			}
			b.AddNet("x", pins...)
		}
	}
	build(0, n)

	// Global clock for sequential circuits: a single high-fanout net.
	if s.Sequential {
		fan := n / 6
		if fan > prm.ClockFanout {
			fan = prm.ClockFanout
		}
		if fan >= 2 {
			pins := make([]hypergraph.NodeID, fan)
			for i := range pins {
				pins[i] = hypergraph.NodeID(i * n / fan)
			}
			clkPad := b.AddPad("clk")
			b.AddNet("clk", append(pins, clkPad)...)
		}
	}

	// Pads: stratified across the top-level clusters so external I/Os are
	// spread the way real pad rings are. Each pad hangs on a 2-pin net.
	pads := s.IOBs
	if s.Sequential && pads > 0 {
		pads-- // the clock pad is one of the IOBs
	}
	for i := 0; i < pads; i++ {
		p := b.AddPad(fmt.Sprintf("io%d", i))
		anchor := hypergraph.NodeID((i * 7919) % n) // spread deterministically
		b.AddNet("pn", p, anchor)
	}
}

func pick(r *rand.Rand, lo, hi int) hypergraph.NodeID {
	return hypergraph.NodeID(lo + r.Intn(hi-lo))
}

// Synthetic builds an anonymous circuit with the same generator machinery —
// useful for tests, examples, and scaling studies.
func Synthetic(n, pads int, seed int64, sequential bool) *hypergraph.Hypergraph {
	s := Spec{
		Name:       fmt.Sprintf("syn%d-%d", n, seed),
		IOBs:       pads,
		CLBs2000:   n,
		CLBs3000:   n,
		Sequential: sequential,
	}
	return Generate(s, device.XC3000)
}
