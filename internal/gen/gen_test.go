package gen

import (
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

func TestTable1Characteristics(t *testing.T) {
	// The generator must reproduce Table 1 exactly: interior node count =
	// mapped CLBs, pad count = IOBs, for both families.
	for _, s := range MCNC {
		for _, fam := range []device.Family{device.XC2000, device.XC3000} {
			h := Generate(s, fam)
			if got, want := h.NumInterior(), s.CLBs(fam); got != want {
				t.Errorf("%s/%v: CLBs = %d, want %d", s.Name, fam, got, want)
			}
			if got := h.NumPads(); got != s.IOBs {
				t.Errorf("%s/%v: IOBs = %d, want %d", s.Name, fam, got, s.IOBs)
			}
			if h.TotalSize() != s.CLBs(fam) {
				t.Errorf("%s/%v: size = %d, want %d (unit CLBs)", s.Name, fam, h.TotalSize(), s.CLBs(fam))
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := ByName("c3540")
	h1 := Generate(s, device.XC3000)
	h2 := Generate(s, device.XC3000)
	if h1.NumNets() != h2.NumNets() {
		t.Fatalf("net counts differ: %d vs %d", h1.NumNets(), h2.NumNets())
	}
	for e := 0; e < h1.NumNets(); e++ {
		a, b := h1.Pins(hypergraph.NetID(e)), h2.Pins(hypergraph.NetID(e))
		if len(a) != len(b) {
			t.Fatalf("net %d degree differs", e)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("net %d pin %d differs", e, i)
			}
		}
	}
}

func TestFamiliesDiffer(t *testing.T) {
	s, _ := ByName("c3540")
	h2 := Generate(s, device.XC2000)
	h3 := Generate(s, device.XC3000)
	if h2.NumInterior() == h3.NumInterior() {
		t.Error("c3540 maps to different CLB counts per family")
	}
}

func TestConnectivityShape(t *testing.T) {
	s, _ := ByName("s9234")
	h := Generate(s, device.XC3000)
	st := h.ComputeStats()
	if st.Components != 1 {
		t.Errorf("circuit disconnected: %d components", st.Components)
	}
	ratio := float64(st.Nets) / float64(st.Interior)
	if ratio < 0.8 || ratio > 2.5 {
		t.Errorf("nets/CLB ratio %.2f outside plausible [0.8, 2.5]", ratio)
	}
	if st.AvgNetDegree < 2.0 || st.AvgNetDegree > 4.0 {
		t.Errorf("avg net degree %.2f outside [2,4]", st.AvgNetDegree)
	}
}

func TestSequentialHasClock(t *testing.T) {
	s, _ := ByName("s5378")
	h := Generate(s, device.XC3000)
	maxDeg := 0
	for e := 0; e < h.NumNets(); e++ {
		if d := len(h.Pins(hypergraph.NetID(e))); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 20 {
		t.Errorf("sequential circuit lacks a high-fanout clock: max net degree %d", maxDeg)
	}
	// Combinational circuits have no such net.
	c, _ := ByName("c3540")
	hc := Generate(c, device.XC3000)
	maxDeg = 0
	for e := 0; e < hc.NumNets(); e++ {
		if d := len(hc.Pins(hypergraph.NetID(e))); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 10 {
		t.Errorf("combinational circuit has a %d-pin net", maxDeg)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("c3540"); !ok {
		t.Error("c3540 missing")
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("bogus found")
	}
}

func TestSynthetic(t *testing.T) {
	h := Synthetic(200, 30, 1, true)
	if h.NumInterior() != 200 || h.NumPads() != 30 {
		t.Errorf("synthetic: %v", h)
	}
}

func TestParamsNormalize(t *testing.T) {
	p := Params{}.normalize()
	if p.Branch != 4 || p.LeafSize != 8 || p.Rent != 0.62 || p.RentCoeff != 0.75 {
		t.Errorf("defaults: %+v", p)
	}
}

func BenchmarkGenerateS38584(b *testing.B) {
	s, _ := ByName("s38584")
	for i := 0; i < b.N; i++ {
		Generate(s, device.XC3000)
	}
}
