package gen

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/netlist"
)

// The streaming writer must be byte-identical to materializing the same
// circuit and serializing it — the two paths share one deterministic
// generator, and any drift would silently fork the benchmark inputs.
func TestStreamPHGMatchesWritePHG(t *testing.T) {
	for _, tc := range []struct {
		n, pads int
		seed    int64
		seq     bool
	}{
		{12, 4, 2, true},
		{100, 10, 1, false},
		{500, 40, 7, true},
		{1000, 0, 3, true},
	} {
		var want, got bytes.Buffer
		if err := netlist.WritePHG(&want, Synthetic(tc.n, tc.pads, tc.seed, tc.seq)); err != nil {
			t.Fatal(err)
		}
		if err := StreamPHG(&got, tc.n, tc.pads, tc.seed, tc.seq); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			wl := strings.Split(want.String(), "\n")
			gl := strings.Split(got.String(), "\n")
			for i := 0; i < len(wl) || i < len(gl); i++ {
				var w, g string
				if i < len(wl) {
					w = wl[i]
				}
				if i < len(gl) {
					g = gl[i]
				}
				if w != g {
					t.Fatalf("n=%d seed=%d: line %d differs:\nwrite:  %q\nstream: %q", tc.n, tc.seed, i+1, w, g)
				}
			}
			t.Fatalf("n=%d seed=%d: outputs differ in length only", tc.n, tc.seed)
		}
	}
}

// Streamed output must parse back into the same graph shape.
func TestStreamPHGRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := StreamPHG(&buf, 300, 24, 5, true); err != nil {
		t.Fatal(err)
	}
	h, err := netlist.ReadPHG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := Synthetic(300, 24, 5, true)
	if h.NumNodes() != ref.NumNodes() || h.NumNets() != ref.NumNets() || h.NumPins() != ref.NumPins() {
		t.Fatalf("round trip: %d/%d/%d nodes/nets/pins, want %d/%d/%d",
			h.NumNodes(), h.NumNets(), h.NumPins(), ref.NumNodes(), ref.NumNets(), ref.NumPins())
	}
}
