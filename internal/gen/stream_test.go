package gen

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/netlist"
)

// The streaming writer must be byte-identical to materializing the same
// circuit and serializing it — the two paths share one deterministic
// generator, and any drift would silently fork the benchmark inputs.
func TestStreamPHGMatchesWritePHG(t *testing.T) {
	for _, tc := range []struct {
		n, pads int
		seed    int64
		seq     bool
	}{
		{12, 4, 2, true},
		{100, 10, 1, false},
		{500, 40, 7, true},
		{1000, 0, 3, true},
	} {
		var want, got bytes.Buffer
		if err := netlist.WritePHG(&want, Synthetic(tc.n, tc.pads, tc.seed, tc.seq)); err != nil {
			t.Fatal(err)
		}
		if err := StreamPHG(&got, tc.n, tc.pads, tc.seed, tc.seq, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			wl := strings.Split(want.String(), "\n")
			gl := strings.Split(got.String(), "\n")
			for i := 0; i < len(wl) || i < len(gl); i++ {
				var w, g string
				if i < len(wl) {
					w = wl[i]
				}
				if i < len(gl) {
					g = gl[i]
				}
				if w != g {
					t.Fatalf("n=%d seed=%d: line %d differs:\nwrite:  %q\nstream: %q", tc.n, tc.seed, i+1, w, g)
				}
			}
			t.Fatalf("n=%d seed=%d: outputs differ in length only", tc.n, tc.seed)
		}
	}
}

// TestStreamPHGResourceStamps pins the -resources contract: stamping is
// deterministic (two runs agree byte for byte), the demand totals land
// near 1/Period of the cells, and the annotated output parses back with
// the resource columns intact.
func TestStreamPHGResourceStamps(t *testing.T) {
	stamps := []ResStamp{{Name: "DSP", Period: 16}, {Name: "BRAM", Period: 64}}
	var a, b bytes.Buffer
	if err := StreamPHG(&a, 1000, 40, 3, false, stamps); err != nil {
		t.Fatal(err)
	}
	if err := StreamPHG(&b, 1000, 40, 3, false, stamps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resource stamping is not deterministic")
	}
	h, err := netlist.ReadPHG(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cells := h.NumInterior()
	for _, st := range stamps {
		got := h.TotalResource(st.Name)
		want := cells / st.Period
		if got < want/2 || got > want*2 {
			t.Errorf("%s: %d demands over %d cells, want about %d (period %d)",
				st.Name, got, cells, want, st.Period)
		}
	}
	// Unstamped output is byte-identical to the nil-stamps stream: the
	// flag must not perturb the topology.
	var plain, empty bytes.Buffer
	if err := StreamPHG(&plain, 200, 10, 3, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := StreamPHG(&empty, 200, 10, 3, false, []ResStamp{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), empty.Bytes()) {
		t.Fatal("empty stamp list changed the output")
	}
}

func TestParseStamps(t *testing.T) {
	stamps, err := ParseStamps("DSP:16,BRAM:64")
	if err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 2 || stamps[0] != (ResStamp{"DSP", 16}) || stamps[1] != (ResStamp{"BRAM", 64}) {
		t.Fatalf("parsed %+v", stamps)
	}
	if s, err := ParseStamps(""); err != nil || s != nil {
		t.Errorf("empty spec: %v %v", s, err)
	}
	for spec, wantSub := range map[string]string{
		"DSP":            `malformed resource token "DSP"`,
		"DSP:16,DSP:8":   `duplicate resource name in token "DSP:8"`,
		"DSP:many":       `not an integer`,
		"DSP:0":          `must be positive in token "DSP:0"`,
		"DSP:16,:4":      "malformed resource token",
		"DSP:16,BRAM:-2": `must be positive in token "BRAM:-2"`,
	} {
		_, err := ParseStamps(spec)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("ParseStamps(%q) = %v, want error containing %q", spec, err, wantSub)
		}
	}
}

// Streamed output must parse back into the same graph shape.
func TestStreamPHGRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := StreamPHG(&buf, 300, 24, 5, true, nil); err != nil {
		t.Fatal(err)
	}
	h, err := netlist.ReadPHG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := Synthetic(300, 24, 5, true)
	if h.NumNodes() != ref.NumNodes() || h.NumNets() != ref.NumNets() || h.NumPins() != ref.NumPins() {
		t.Fatalf("round trip: %d/%d/%d nodes/nets/pins, want %d/%d/%d",
			h.NumNodes(), h.NumNets(), h.NumPins(), ref.NumNodes(), ref.NumNets(), ref.NumPins())
	}
}
