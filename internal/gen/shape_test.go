package gen

// Structural shape tests for the synthetic generator's calibration knobs.

import (
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// windowCut counts nets crossing a contiguous index window [lo, hi) — a
// proxy for the Rent boundary of a natural cluster.
func windowCut(h *hypergraph.Hypergraph, lo, hi int) int {
	cut := 0
	for e := 0; e < h.NumNets(); e++ {
		in, out := false, false
		for _, v := range h.Pins(hypergraph.NetID(e)) {
			if int(v) >= lo && int(v) < hi {
				in = true
			} else {
				out = true
			}
		}
		if in && out {
			cut++
		}
	}
	return cut
}

func TestRentExponentControlsBoundary(t *testing.T) {
	spec := Spec{Name: "rent-test", IOBs: 0, CLBs2000: 1024, CLBs3000: 1024}
	low := GenerateParams(spec, device.XC3000, Params{Rent: 0.45})
	high := GenerateParams(spec, device.XC3000, Params{Rent: 0.75})
	// Cut of a mid-range 128-node window must grow with the exponent.
	cl := windowCut(low, 256, 384)
	ch := windowCut(high, 256, 384)
	if cl >= ch {
		t.Errorf("boundary did not grow with Rent exponent: p=0.45 cut %d, p=0.75 cut %d", cl, ch)
	}
}

func TestPerCircuitExponentsOrdered(t *testing.T) {
	// s38584 (p=0.50) must have relatively smaller window boundaries than
	// c6288 (p=0.62) at comparable window sizes.
	sSpec, _ := ByName("s38584")
	cSpec, _ := ByName("c6288")
	sh := Generate(sSpec, device.XC3000)
	chh := Generate(cSpec, device.XC3000)
	win := 256
	sCut := float64(windowCut(sh, 512, 512+win))
	cCut := float64(windowCut(chh, 256, 256+win))
	if sCut >= cCut*1.5 {
		t.Errorf("s38584 window cut %v not clearly below c6288's %v", sCut, cCut)
	}
}

func TestClockNetCapped(t *testing.T) {
	spec := Spec{Name: "big-seq", IOBs: 10, CLBs2000: 4000, CLBs3000: 4000, Sequential: true}
	h := GenerateParams(spec, device.XC3000, Params{ClockFanout: 100})
	maxDeg := 0
	for e := 0; e < h.NumNets(); e++ {
		if d := len(h.Pins(hypergraph.NetID(e))); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 101 { // fanout cap + clock pad
		t.Errorf("clock fanout %d exceeds cap", maxDeg)
	}
}

func TestSequentialPadBudgetExact(t *testing.T) {
	// The clock pad counts toward the IOB budget.
	s, _ := ByName("s5378")
	h := Generate(s, device.XC3000)
	if h.NumPads() != s.IOBs {
		t.Errorf("pads = %d, want %d", h.NumPads(), s.IOBs)
	}
}

func TestGeneratorFamiliesIndependent(t *testing.T) {
	// The two family variants are independent circuits (different sizes),
	// but both deterministic.
	s, _ := ByName("s13207")
	a1 := Generate(s, device.XC2000)
	a2 := Generate(s, device.XC2000)
	if a1.NumNets() != a2.NumNets() {
		t.Error("XC2000 variant nondeterministic")
	}
	b1 := Generate(s, device.XC3000)
	if a1.NumInterior() == b1.NumInterior() {
		t.Error("families produced identical CLB counts for s13207")
	}
}

func TestTinyCircuitGeneration(t *testing.T) {
	// Degenerate sizes must not panic.
	for _, n := range []int{1, 2, 3, 7, 8, 9} {
		h := Synthetic(n, 2, 1, false)
		if h.NumInterior() != n {
			t.Errorf("n=%d: interior=%d", n, h.NumInterior())
		}
		if h.ComputeStats().Components > 2 {
			t.Errorf("n=%d badly disconnected", n)
		}
	}
}
