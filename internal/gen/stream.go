package gen

// Streaming PHG emission: a million-cell synthetic netlist is written
// directly to an io.Writer without ever materializing the hypergraph. The
// generator is deterministic in its spec (generate seeds its RNG from the
// circuit name), so StreamPHG simply replays it three times — once to
// count nets for the header, once to emit the node lines, once to emit the
// net lines — trading ~3× generation time (cheap) for O(1) buffering. The
// output is byte-identical to netlist.WritePHG(Synthetic(...));
// stream_test.go pins this differentially.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// ResStamp describes one synthetic resource axis stamped onto streamed
// cells: on average one cell in Period demands a unit of Name. Selection
// is a pure function of the cell's emission index, so the stamping is
// deterministic across runs, and cells are picked in short consecutive
// runs — emission order is locality order under the hierarchical
// generator, so demands cluster the way DSP/BRAM columns do in real
// designs rather than spreading uniformly.
type ResStamp struct {
	Name   string
	Period int
}

// stampRun is the length of each consecutive stamped run: Rent locality
// in the generator means runs of emission indices are topologically close.
const stampRun = 4

// hits reports whether the cell at emission index i carries this stamp.
func (st ResStamp) hits(i int) bool {
	return (i/stampRun)%st.Period == 0
}

// ParseStamps parses a -resources spec of NAME:PERIOD pairs, e.g.
// "DSP:16,BRAM:64" (one cell in 16 demands a DSP, one in 64 a BRAM).
func ParseStamps(spec string) ([]ResStamp, error) {
	if spec == "" {
		return nil, nil
	}
	var out []ResStamp
	seen := map[string]bool{}
	for _, tok := range strings.Split(spec, ",") {
		name, per, ok := strings.Cut(tok, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed resource token %q (want NAME:PERIOD)", tok)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate resource name in token %q", tok)
		}
		seen[name] = true
		p, err := strconv.Atoi(per)
		if err != nil {
			return nil, fmt.Errorf("resource period in token %q is not an integer", tok)
		}
		if p < 1 {
			return nil, fmt.Errorf("resource period must be positive in token %q", tok)
		}
		out = append(out, ResStamp{Name: name, Period: p})
	}
	return out, nil
}

// StreamPHG writes the Synthetic(n, pads, seed, sequential) circuit to w
// in PHG form without building it in memory. A non-empty stamps list
// annotates cells with deterministic resource demands (see ResStamp);
// with stamps nil the output is byte-identical to
// netlist.WritePHG(Synthetic(...)).
func StreamPHG(w io.Writer, n, pads int, seed int64, sequential bool, stamps []ResStamp) error {
	s := Spec{
		Name:       fmt.Sprintf("syn%d-%d", n, seed),
		IOBs:       pads,
		CLBs2000:   n,
		CLBs3000:   n,
		Sequential: sequential,
	}
	var cnt countEmitter
	generate(s, device.XC3000, Params{}, &cnt)

	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "phg")
	fmt.Fprintf(bw, "# nodes=%d nets=%d\n", cnt.nodes, cnt.nets)
	ne := nodeEmitter{bw: bw, stamps: stamps}
	generate(s, device.XC3000, Params{}, &ne)
	te := netEmitter{bw: bw, stamp: make([]int32, cnt.nodes)}
	generate(s, device.XC3000, Params{}, &te)
	return bw.Flush()
}

// countEmitter tallies nodes and nets for the PHG header line.
type countEmitter struct {
	nodes, nets int
}

func (c *countEmitter) AddInterior(string, int) hypergraph.NodeID {
	c.nodes++
	return hypergraph.NodeID(c.nodes - 1)
}

func (c *countEmitter) AddPad(string) hypergraph.NodeID {
	c.nodes++
	return hypergraph.NodeID(c.nodes - 1)
}

func (c *countEmitter) AddNet(string, ...hypergraph.NodeID) { c.nets++ }

// nodeEmitter writes node and pad lines as they are emitted — emission
// order is ID order, matching WritePHG's sequential node dump.
type nodeEmitter struct {
	bw     *bufio.Writer
	next   int
	stamps []ResStamp
}

func (ne *nodeEmitter) AddInterior(name string, size int) hypergraph.NodeID {
	fmt.Fprintf(ne.bw, "node %s %d", name, size)
	for _, st := range ne.stamps {
		if st.hits(ne.next) {
			fmt.Fprintf(ne.bw, " %s:1", st.Name)
		}
	}
	fmt.Fprintln(ne.bw)
	ne.next++
	return hypergraph.NodeID(ne.next - 1)
}

func (ne *nodeEmitter) AddPad(name string) hypergraph.NodeID {
	fmt.Fprintf(ne.bw, "pad %s\n", name)
	ne.next++
	return hypergraph.NodeID(ne.next - 1)
}

func (ne *nodeEmitter) AddNet(string, ...hypergraph.NodeID) {}

// netEmitter writes net lines, deduplicating pins with the same
// keep-first-occurrence rule as hypergraph.Builder.AddNet so pin lists
// match the materialized graph exactly.
// net pre-increments per AddNet call, so the zero-valued stamp array never
// collides with a live net id.
type netEmitter struct {
	bw    *bufio.Writer
	next  int
	stamp []int32
	net   int32
}

func (te *netEmitter) AddInterior(string, int) hypergraph.NodeID {
	te.next++
	return hypergraph.NodeID(te.next - 1)
}

func (te *netEmitter) AddPad(string) hypergraph.NodeID {
	te.next++
	return hypergraph.NodeID(te.next - 1)
}

func (te *netEmitter) AddNet(name string, pins ...hypergraph.NodeID) {
	te.net++
	fmt.Fprintf(te.bw, "net %s", name)
	for _, p := range pins {
		if te.stamp[p] == te.net {
			continue
		}
		te.stamp[p] = te.net
		fmt.Fprintf(te.bw, " %d", p)
	}
	fmt.Fprintln(te.bw)
}
