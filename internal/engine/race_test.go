package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpart/internal/board"
	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// fake is a registrable test engine. Behavior is injected per test through
// fakeBehavior (tests in this package run sequentially), so one set of
// registered names serves every test.
type fake struct {
	name string
	idx  int
}

func (f fake) Name() string       { return f.name }
func (f fake) Caps() Capabilities { return Capabilities{Summary: "test fake"} }
func (f fake) Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	return fakeBehavior(f.idx, ctx)
}

var (
	fakeBehavior func(i int, ctx context.Context) (*Result, error)
	fakesOnce    sync.Once
)

const numFakes = 6

// registerFakes installs test-fake-0..5 at ranks far above the shipped
// engines, so rank-ordered listings keep the real methods first.
func registerFakes() {
	fakesOnce.Do(func() {
		for i := 0; i < numFakes; i++ {
			Register(100+i, fake{name: fmt.Sprintf("test-fake-%d", i), idx: i})
		}
	})
}

func fakeMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{Method: fmt.Sprintf("test-fake-%d", i)}
	}
	return ms
}

// TestRaceNeverExceedsBudget drives six members through a two-token budget
// (one of which the caller holds, as driver.RunOpts would) and checks the
// peak number of concurrently running engines never exceeds the capacity.
// Run under -race this also exercises the result-slot and sink sharing.
func TestRaceNeverExceedsBudget(t *testing.T) {
	registerFakes()
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}

	var cur, peak atomic.Int64
	errFake := errors.New("fake engine failure")
	fakeBehavior = func(i int, ctx context.Context) (*Result, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return nil, errFake
	}

	budget := core.NewBudget(2)
	if !budget.TryAcquire() {
		t.Fatal("fresh budget refused a token")
	}
	defer budget.Release()

	_, err := Race(context.Background(), h, dev, fakeMembers(numFakes), budget)
	if !errors.Is(err, errFake) {
		t.Fatalf("want the members' failure surfaced, got %v", err)
	}
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d exceeds budget capacity 2", got)
	}
}

// TestRaceCancelsLosers mixes a real engine with blocking fakes: when the
// real member finishes feasible at the K = M lower bound, every fake must
// observe cancellation, and their context.Canceled returns must be
// absorbed rather than reported.
func TestRaceCancelsLosers(t *testing.T) {
	registerFakes()
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "big", DatasheetCells: 50, Pins: 50, Fill: 1.0} // fits one device: K = M = 1

	var cancelled atomic.Int64
	fakeBehavior = func(i int, ctx context.Context) (*Result, error) {
		<-ctx.Done()
		cancelled.Add(1)
		return nil, ctx.Err()
	}

	budget := core.NewBudget(4)
	if !budget.TryAcquire() {
		t.Fatal("fresh budget refused a token")
	}
	defer budget.Release()

	members := append([]Member{{Method: "test-fake-1"}, {Method: "test-fake-2"}, {Method: "test-fake-3"}}, Member{Method: "fpart"})
	res, err := Race(context.Background(), h, dev, members, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.K != res.M {
		t.Fatalf("winner not at the lower bound: K=%d M=%d feasible=%v", res.K, res.M, res.Feasible)
	}
	if got := cancelled.Load(); got != 3 {
		t.Fatalf("want all 3 losing members cancelled, got %d", got)
	}
}

// TestRaceBoardAwareMembers races the same method under two board gates:
// the member on the over-constrained chain is demoted to infeasible inside
// runOne, so the crossbar member must win even though both produce the
// same partition.
func TestRaceBoardAwareMembers(t *testing.T) {
	h := ring(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	budget := core.NewBudget(2)
	if !budget.TryAcquire() {
		t.Fatal("fresh budget refused a token")
	}
	defer budget.Release()

	ch := board.Board{Slots: 16, Topology: board.Chain, WiresPerLink: 1}
	xb := board.Board{Slots: 16, Topology: board.Crossbar}
	members := []Member{
		{Method: "fpart", Options: Options{Board: &ch}},
		{Method: "fpart", Options: Options{Board: &xb}},
	}
	res, err := Race(context.Background(), h, dev, members, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("crossbar member should have won feasible")
	}
	if res.Board == nil || !res.Board.Routable {
		t.Fatalf("winner's board report: %+v", res.Board)
	}

	registerFakes()
	badMembers := []Member{{Method: "test-fake-0", Options: Options{Board: &xb}}}
	if _, err := Race(context.Background(), h, dev, badMembers, budget); err == nil || !strings.Contains(err.Error(), "board-aware") {
		t.Errorf("non-board-aware member with a board: %v", err)
	}
}

func TestRaceRejectsBadMembers(t *testing.T) {
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	if _, err := Race(context.Background(), h, dev, nil, nil); err == nil {
		t.Error("empty member list accepted")
	}
	_, err := Race(context.Background(), h, dev, []Member{{Method: "nope"}}, nil)
	if err == nil || !strings.Contains(err.Error(), "fpart") {
		t.Errorf("unknown member should fail quoting the registry, got %v", err)
	}
}

func TestRacePropagatesParentCancellation(t *testing.T) {
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Race(ctx, h, dev, []Member{{Method: "fpart"}, {Method: "kwayx"}}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRaceMixedMethods races the paper's algorithm against every baseline
// on a real circuit under a shared budget — the engine-agnostic portfolio
// the registry exists for. Under -race this doubles as the detector pass
// over all four engines running concurrently.
func TestRaceMixedMethods(t *testing.T) {
	h := ring(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}

	budget := core.NewBudget(3)
	if !budget.TryAcquire() {
		t.Fatal("fresh budget refused a token")
	}
	defer budget.Release()

	members := []Member{{Method: "fpart"}, {Method: "kwayx"}, {Method: "flow"}, {Method: "multilevel"}}
	res, err := Race(context.Background(), h, dev, members, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("mixed race infeasible: K=%d M=%d", res.K, res.M)
	}
	if res.Stats == nil {
		t.Fatal("winner should carry its engine's stats")
	}
	if err := res.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}
