package engine

import (
	"context"

	"fpart/internal/device"
	"fpart/internal/flow"
	"fpart/internal/hypergraph"
	"fpart/internal/kwayx"
	"fpart/internal/multilevel"
)

// kwayxEngine wraps kwayx.PartitionCtx, the k-way.x recursive
// bipartitioning baseline of §3 / Tables 2–5.
type kwayxEngine struct{}

func init() { Register(2, kwayxEngine{}) }

func (kwayxEngine) Name() string { return "kwayx" }

func (kwayxEngine) Caps() Capabilities {
	return Capabilities{
		Cancellable:  true,
		Instrumented: true,
		BoardAware:   true,
		Cost:         1,
		Summary:      "k-way.x recursive bipartitioning baseline (Kuznar-Brglez-Kozminski)",
	}
}

func (kwayxEngine) Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	r, err := kwayx.PartitionCtx(ctx, h, dev, kwayx.Config{Sink: opts.Sink, Label: opts.Label})
	if err != nil {
		return nil, err
	}
	return &Result{Partition: r.Partition, K: r.K, M: r.M, Feasible: r.Feasible, Stats: &r.Stats, Elapsed: r.Elapsed}, nil
}

// flowEngine wraps flow.PartitionCtx, the FBB-MW flow-based baseline.
type flowEngine struct{}

func init() { Register(3, flowEngine{}) }

func (flowEngine) Name() string { return "flow" }

func (flowEngine) Caps() Capabilities {
	return Capabilities{
		Cancellable:  true,
		Instrumented: true,
		BoardAware:   true,
		Cost:         3,
		Summary:      "FBB-MW flow-based peeling baseline (Liu-Wong max-flow min-cut)",
	}
}

func (flowEngine) Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	r, err := flow.PartitionCtx(ctx, h, dev, flow.Config{Sink: opts.Sink, Label: opts.Label})
	if err != nil {
		return nil, err
	}
	return &Result{Partition: r.Partition, K: r.K, M: r.M, Feasible: r.Feasible, Stats: &r.Stats, Elapsed: r.Elapsed}, nil
}

// multilevelEngine wraps multilevel.PartitionCtx, the hMETIS-style
// coarsen/split/refine baseline.
type multilevelEngine struct{}

func init() { Register(4, multilevelEngine{}) }

func (multilevelEngine) Name() string { return "multilevel" }

func (multilevelEngine) Caps() Capabilities {
	return Capabilities{
		Cancellable:  true,
		Instrumented: true,
		BoardAware:   true,
		Cost:         2,
		Summary:      "multilevel coarsen/split/refine baseline (hMETIS-style V-cycles)",
	}
}

func (multilevelEngine) Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	r, err := multilevel.PartitionCtx(ctx, h, dev, multilevel.Config{Sink: opts.Sink, Label: opts.Label})
	if err != nil {
		return nil, err
	}
	return &Result{Partition: r.Partition, K: r.K, M: r.M, Feasible: r.Feasible, Stats: &r.Stats, Elapsed: r.Elapsed}, nil
}
