package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
)

// Member is one Race entrant: a registered method name plus its per-member
// options. Options.Budget is overwritten with the race's shared budget;
// Options.Label defaults to "race[i]/<method>".
type Member struct {
	Method  string
	Options Options
}

// Race runs several registered engines on the same circuit concurrently
// and returns the best result. It generalizes core.Portfolio — which races
// configuration variants of one algorithm — to an engine-agnostic
// portfolio: any mix of registered methods competes under one shared
// core.Budget, so "fpart vs flow vs multilevel" is one call.
//
// Winner selection is the same lexicographic order as core.Portfolio:
// feasible beats infeasible, then fewer devices, then fewer total
// terminals, ties resolved to the lowest member index — deterministic at
// any budget capacity and any goroutine schedule. When a member finishes
// feasible at the lower bound (K = M, provably optimal on device count)
// the remaining members are cancelled; their context.Canceled errors are
// absorbed.
//
// Concurrency follows the Budget discipline of the rest of the pipeline:
// the caller is assumed to hold one token already (driver.RunOpts does),
// member 0 runs on the caller's goroutine under that token, and the other
// members spawn only when budget.TryAcquire grants a spare token — a
// saturated machine degrades to the classic one-by-one portfolio, never
// oversubscription. Member sinks are serialized with one shared lock, so
// several members may point at the same obs.Sink.
func Race(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, members []Member, budget *core.Budget) (*Result, error) {
	if len(members) == 0 {
		return nil, errors.New("engine: Race with no members")
	}
	engines := make([]Engine, len(members))
	for i, m := range members {
		eng, ok := Lookup(m.Method)
		if !ok {
			return nil, fmt.Errorf("unknown method %q (valid: %v)", m.Method, Names())
		}
		if m.Options.Board != nil && !eng.Caps().BoardAware {
			return nil, fmt.Errorf("method %q is not board-aware", m.Method)
		}
		engines[i] = eng
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	opts := make([]Options, len(members))
	var sinkMu sync.Mutex
	for i, m := range members {
		opts[i] = m.Options
		opts[i].Sink = obs.Locked(&sinkMu, opts[i].Sink)
		opts[i].Budget = budget
		if opts[i].Label == "" {
			opts[i].Label = fmt.Sprintf("race[%d]/%s", i, m.Method)
		}
	}

	type slot struct {
		res *Result
		err error
	}
	out := make([]slot, len(members))
	runOne := func(i int) {
		res, err := engines[i].Run(runCtx, h, dev, opts[i])
		if err == nil {
			// Board-aware members are gated here, not only in Run dispatch:
			// runOne calls the engine directly, and the K=M early cancel
			// below must see the post-gate feasibility, or a board-infeasible
			// member could cancel members that would have routed.
			gateBoard(res, opts[i].Board)
		}
		out[i] = slot{res, err}
		if err == nil && res.Feasible && res.K == res.M {
			cancel() // provably optimal: stop the losing members
		}
	}
	var wg sync.WaitGroup
	spawned := make([]bool, len(members))
	for i := 1; i < len(members); i++ {
		if budget.TryAcquire() {
			spawned[i] = true
			wg.Add(1)
			// Tag profiler samples on race goroutines with the engine they
			// run, so a profile of a mixed-method race splits by method.
			labels := pprof.Labels("method", members[i].Method, "candidate", opts[i].Label)
			go func(i int) {
				pprof.Do(runCtx, labels, func(context.Context) {
					defer wg.Done()
					defer budget.Release()
					runOne(i)
				})
			}(i)
		}
	}
	runOne(0)
	for i := 1; i < len(members); i++ {
		if !spawned[i] {
			runOne(i)
		}
	}
	wg.Wait()

	var best *Result
	var firstErr error
	for _, s := range out {
		if s.err != nil {
			// A member cancelled by the winner's cancel() is not a failure;
			// a parent-context cancellation is handled below.
			if !errors.Is(s.err, context.Canceled) && !errors.Is(s.err, context.DeadlineExceeded) && firstErr == nil {
				firstErr = s.err
			}
			continue
		}
		if best == nil || betterResult(s.res, best) {
			best = s.res
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, context.Canceled
	}
	return best, nil
}

// betterResult orders race outcomes: feasible, then device count, then
// total terminals. Strict, so the first member wins ties.
func betterResult(a, b *Result) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if a.K != b.K {
		return a.K < b.K
	}
	return a.Partition.TerminalSum() < b.Partition.TerminalSum()
}
