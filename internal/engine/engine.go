// Package engine puts every partitioner of the repository behind one
// instrumented, cancellable interface and a self-registration registry.
//
// The FPART paper's value is comparative — §5 pits guided iterative
// improvement against set-cover and multilevel baselines — so the pipeline
// must treat "which partitioner" as data, not as a hardcoded switch. Each
// algorithm package's adapter registers itself here under a stable name
// ("fpart", "portfolio", "kwayx", "flow", "multilevel"); the driver, the
// fpartd service, and the CLIs all resolve methods through Lookup and
// derive their method lists, usage strings, and capability matrices from
// the registry. Race generalizes core.Portfolio to an engine-agnostic
// portfolio: any mix of registered methods competes under one shared
// core.Budget, with the same lexicographic winner selection.
//
// Every registered engine honours the same contract:
//
//   - Run returns promptly with ctx.Err() when ctx is cancelled, including
//     before the first move (engines poll in their pass loops);
//   - events flow to Options.Sink and effort counters land in
//     Result.Stats (nil sinks are free — the obs.Emitter is nil-safe);
//   - Result.Elapsed is measured by the engine itself, not by the caller's
//     stopwatch, so queueing and token waits never pollute it.
package engine

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"fpart/internal/board"
	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// Capabilities describes what a registered engine supports; the service
// and CLI surface these flags so callers know what instrumentation to
// expect before dispatching.
type Capabilities struct {
	// Cancellable engines poll ctx in their pass loops and return ctx.Err()
	// promptly, even mid-pass.
	Cancellable bool
	// Instrumented engines emit obs events to Options.Sink and fill
	// Result.Stats.
	Instrumented bool
	// Budgeted engines draw extra concurrency tokens from Options.Budget
	// (speculation, portfolio members) beyond the one the caller holds.
	Budgeted bool
	// BoardAware engines accept Options.Board: after the run the dispatch
	// layer places the partition on the board and routes the cut nets
	// (board.Route), demoting Result.Feasible when placement or routing
	// fails. The gate is generic post-processing, so every registered
	// engine sets it; a custom Engine that bypasses Run/Race does not.
	BoardAware bool
	// Cost ranks the engine's relative compute expense (1 = cheapest).
	// It is the static prior of the fpartd degradation ladder: under
	// load, admission control falls back from an expensive engine to a
	// strictly cheaper one (refined at runtime by the measured per-method
	// latency histograms). 0 means unranked — never a degradation target.
	Cost int
	// Summary is a one-line description for method listings.
	Summary string
}

// CheaperThan lists the registered engines with a cost rank strictly
// below the named engine's, cheapest first — the named engine's
// degradation ladder. Unranked engines (Cost 0) never appear, and an
// unknown or unranked name has an empty ladder.
func CheaperThan(name string) []Info {
	eng, ok := Lookup(name)
	if !ok || eng.Caps().Cost == 0 {
		return nil
	}
	limit := eng.Caps().Cost
	var out []Info
	for _, inf := range List() {
		if inf.Caps.Cost > 0 && inf.Caps.Cost < limit {
			out = append(out, inf)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Caps.Cost < out[j].Caps.Cost })
	return out
}

// Flags renders the capability booleans as a stable comma-joined list
// ("cancellable,instrumented,budgeted"), or "-" when none are set.
func (c Capabilities) Flags() string {
	var out []string
	if c.Cancellable {
		out = append(out, "cancellable")
	}
	if c.Instrumented {
		out = append(out, "instrumented")
	}
	if c.Budgeted {
		out = append(out, "budgeted")
	}
	if c.BoardAware {
		out = append(out, "board-aware")
	}
	if len(out) == 0 {
		return "-"
	}
	return strings.Join(out, ",")
}

// Options tunes one Run dispatch beyond the method choice.
type Options struct {
	// Sink receives structured events from the run.
	Sink obs.Sink
	// Label tags the run's events (obs.Event.Source); empty means the
	// engine's default labelling.
	Label string
	// SpecWidth is the speculative peeling width for the fpart engine
	// (core.Config.SpecWidth); ≤ 1 selects the sequential peel. It does not
	// multiply the portfolio — portfolio members already race whole runs.
	SpecWidth int
	// Budget, when non-nil, is the shared concurrency budget budgeted
	// engines draw extra tokens from. The caller is expected to hold one
	// token for the run itself (driver.RunOpts acquires it).
	Budget *core.Budget
	// Board, when non-nil, turns the dispatch into a board-aware run: after
	// the engine finishes, the partition is placed on the board and the cut
	// nets are routed (board.Route). An unplaceable (more blocks than
	// slots) or unroutable (a link over WiresPerLink) outcome demotes
	// Result.Feasible; the routing report lands in Result.Board.
	Board *board.Board
}

// Result is the outcome of one engine dispatch.
type Result struct {
	// Partition holds the final assignment.
	Partition *partition.Partition
	// K is the number of non-empty blocks; M the device lower bound.
	K, M int
	// Feasible reports whether every block meets the device constraints.
	Feasible bool
	// Stats carries the effort counters; non-nil for every instrumented
	// engine (all registered engines are).
	Stats *obs.Stats
	// Elapsed is the wall time of the run, measured by the engine itself.
	Elapsed time.Duration
	// Board is the board routing report of a board-aware run (Options.Board
	// set); nil otherwise, and nil when the partition could not even be
	// placed (Feasible is false in that case).
	Board *board.Report
}

// Engine is one partitioning method behind the common contract described
// in the package comment.
type Engine interface {
	// Name is the registry key ("fpart", "kwayx", ...).
	Name() string
	// Caps reports the engine's capability flags.
	Caps() Capabilities
	// Run partitions circuit h targeting device dev under opts.
	Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error)
}

// registry is the global engine table. Engines register at init time; the
// rank fixes the documentation order regardless of init sequencing, so
// Names() is deterministic.
var (
	regMu    sync.RWMutex
	registry = map[string]regEntry{}
)

type regEntry struct {
	eng  Engine
	rank int
}

// Register adds e to the registry under e.Name(). rank orders method
// listings (lower first; the paper's algorithm is 0, baselines follow).
// Registering a duplicate name panics: it is a programmer error that
// would make dispatch ambiguous.
func Register(rank int, e Engine) {
	regMu.Lock()
	defer regMu.Unlock()
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate Register(%q)", name))
	}
	registry[name] = regEntry{eng: e, rank: rank}
}

// Lookup resolves a registered engine by name.
func Lookup(name string) (Engine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	ent, ok := registry[name]
	return ent.eng, ok
}

// Names lists the registered engine names in rank order (documentation
// order: the paper's algorithm first, then the baselines).
func Names() []string {
	infos := List()
	out := make([]string, len(infos))
	for i, inf := range infos {
		out[i] = inf.Name
	}
	return out
}

// Info pairs a registered engine's name with its capabilities.
type Info struct {
	Name string
	Caps Capabilities
}

// List returns every registered engine's name and capabilities in rank
// order.
func List() []Info {
	regMu.RLock()
	type ranked struct {
		inf  Info
		rank int
	}
	ents := make([]ranked, 0, len(registry))
	for name, ent := range registry {
		ents = append(ents, ranked{Info{Name: name, Caps: ent.eng.Caps()}, ent.rank})
	}
	regMu.RUnlock()
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].rank != ents[j].rank {
			return ents[i].rank < ents[j].rank
		}
		return ents[i].inf.Name < ents[j].inf.Name
	})
	out := make([]Info, len(ents))
	for i, e := range ents {
		out[i] = e.inf
	}
	return out
}

// WriteList renders the registry as an aligned text table — one engine per
// line with its capability flags and summary. `fpart -list-methods` prints
// exactly this, and the README method table mirrors it.
func WriteList(w io.Writer) {
	infos := List()
	wide := 0
	for _, inf := range infos {
		if len(inf.Name) > wide {
			wide = len(inf.Name)
		}
	}
	for _, inf := range infos {
		fmt.Fprintf(w, "%-*s  %-36s %s\n", wide, inf.Name, inf.Caps.Flags(), inf.Caps.Summary)
	}
}

// UsageString is the one-line method enumeration for flag help text,
// generated from the registry ("fpart, portfolio, kwayx, ...").
func UsageString() string {
	return strings.Join(Names(), ", ")
}

// Run dispatches the named engine, or an error quoting the registry when
// the name is unknown. The caller is responsible for Budget token
// acquisition (see driver.RunOpts).
func Run(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	eng, ok := Lookup(method)
	if !ok {
		return nil, fmt.Errorf("unknown method %q (valid: %v)", method, Names())
	}
	if opts.Board != nil && !eng.Caps().BoardAware {
		return nil, fmt.Errorf("method %q is not board-aware", method)
	}
	res, err := eng.Run(ctx, h, dev, opts)
	if err != nil {
		return nil, err
	}
	gateBoard(res, opts.Board)
	return res, nil
}

// gateBoard applies the post-peel board feasibility gate: place the result
// on b and route the cut nets, demoting Feasible when the partition does
// not fit the board's slots or its link capacities. A nil board is a no-op
// (the plain flat-engine path).
func gateBoard(res *Result, b *board.Board) {
	if res == nil || b == nil || res.Partition == nil {
		return
	}
	_, rep, err := board.Route(res.Partition, *b)
	if err != nil {
		res.Feasible = false
		return
	}
	res.Board = &rep
	if !rep.Routable {
		res.Feasible = false
	}
}
