package engine

import (
	"context"
	"strings"
	"testing"

	"fpart/internal/board"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// ring builds c clusters of n nodes each, chained into a cycle, with pads —
// the standard small-but-nontrivial test circuit of the baseline packages.
func ring(t testing.TB, c, n, pads int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	sets := make([][]hypergraph.NodeID, c)
	for ci := 0; ci < c; ci++ {
		for i := 0; i < n; i++ {
			sets[ci] = append(sets[ci], b.AddInterior("v", 1))
		}
		for i := 0; i+1 < n; i++ {
			b.AddNet("in", sets[ci][i], sets[ci][i+1])
			if i+2 < n {
				b.AddNet("in2", sets[ci][i], sets[ci][i+2])
			}
		}
	}
	for ci := 0; ci < c; ci++ {
		b.AddNet("bridge", sets[ci][n-1], sets[(ci+1)%c][0])
	}
	for i := 0; i < pads; i++ {
		pd := b.AddPad("p")
		b.AddNet("pe", pd, sets[i%c][i%n])
	}
	return b.MustBuild()
}

// realNames is the registry content every build of the repo ships; tests
// assert on this prefix (not the whole listing) so test-only fake engines
// registered at high ranks cannot interfere.
var realNames = []string{"fpart", "portfolio", "kwayx", "flow", "multilevel"}

func TestRegistryOrderAndCaps(t *testing.T) {
	infos := List()
	if len(infos) < len(realNames) {
		t.Fatalf("registry too small: %+v", infos)
	}
	for i, want := range realNames {
		inf := infos[i]
		if inf.Name != want {
			t.Fatalf("List()[%d] = %q, want %q (rank order broken)", i, inf.Name, want)
		}
		if !inf.Caps.Cancellable || !inf.Caps.Instrumented {
			t.Errorf("%s: every shipped engine is cancellable+instrumented: %+v", inf.Name, inf.Caps)
		}
		if inf.Caps.Summary == "" {
			t.Errorf("%s: missing summary", inf.Name)
		}
		wantBudgeted := want == "fpart" || want == "portfolio"
		if inf.Caps.Budgeted != wantBudgeted {
			t.Errorf("%s: Budgeted = %v, want %v", inf.Name, inf.Caps.Budgeted, wantBudgeted)
		}
	}
	for _, name := range Names() {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Names() lists %q but Lookup misses it", name)
		}
	}
}

func TestCapabilitiesFlags(t *testing.T) {
	if got := (Capabilities{}).Flags(); got != "-" {
		t.Errorf("empty caps: %q", got)
	}
	all := Capabilities{Cancellable: true, Instrumented: true, Budgeted: true, BoardAware: true}
	if got := all.Flags(); got != "cancellable,instrumented,budgeted,board-aware" {
		t.Errorf("full caps: %q", got)
	}
}

// TestBoardGating pins the post-peel board feasibility gate: the same
// partition that is feasible on a crossbar (routing always succeeds) must
// be rejected on a chain board whose per-link wire budget the routed cut
// cannot meet, and on a board with fewer slots than blocks.
func TestBoardGating(t *testing.T) {
	h := ring(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}

	xb := board.Board{Slots: 16, Topology: board.Crossbar}
	res, err := Run(context.Background(), "fpart", h, dev, Options{Board: &xb})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("crossbar-gated run infeasible: K=%d M=%d", res.K, res.M)
	}
	if res.Board == nil || !res.Board.Routable || res.Board.InterNets == 0 {
		t.Fatalf("crossbar report: %+v", res.Board)
	}

	// The identical device constraints on a chain with one wire per link:
	// the ring's cut nets overload the middle links, so the gate must
	// demote the crossbar-feasible assignment.
	ch := board.Board{Slots: 16, Topology: board.Chain, WiresPerLink: 1}
	res2, err := Run(context.Background(), "fpart", h, dev, Options{Board: &ch})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Feasible {
		t.Errorf("1-wire chain reported feasible (max link load %d)", res2.Board.MaxLinkLoad)
	}
	if res2.Board == nil || res2.Board.Routable || res2.Board.MaxLinkLoad < 2 {
		t.Errorf("chain report: %+v", res2.Board)
	}

	// Unplaceable: more blocks than slots. No report, not feasible.
	tiny := board.Board{Slots: 1, Topology: board.Chain}
	res3, err := Run(context.Background(), "fpart", h, dev, Options{Board: &tiny})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Feasible || res3.Board != nil {
		t.Errorf("unplaceable run: feasible=%v report=%+v", res3.Feasible, res3.Board)
	}
}

func TestRunRejectsBoardOnNonBoardAware(t *testing.T) {
	registerFakes()
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	b := board.Board{Slots: 4, Topology: board.Crossbar}
	_, err := Run(context.Background(), "test-fake-0", h, dev, Options{Board: &b})
	if err == nil || !strings.Contains(err.Error(), "board-aware") {
		t.Errorf("non-board-aware method with a board: %v", err)
	}
}

func TestUsageStringAndWriteList(t *testing.T) {
	if !strings.HasPrefix(UsageString(), strings.Join(realNames, ", ")) {
		t.Errorf("UsageString() = %q, want the registry in rank order", UsageString())
	}
	var sb strings.Builder
	WriteList(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) < len(realNames) {
		t.Fatalf("WriteList: %d lines", len(lines))
	}
	for i, want := range realNames {
		if !strings.HasPrefix(lines[i], want) {
			t.Errorf("WriteList line %d = %q, want method %q first", i, lines[i], want)
		}
		if !strings.Contains(lines[i], "cancellable,instrumented") {
			t.Errorf("WriteList line %d lacks capability flags: %q", i, lines[i])
		}
	}
}

func TestRegisterRejectsBadEngines(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register should panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { Register(999, fake{name: ""}) })
	mustPanic("duplicate", func() { Register(999, fake{name: "fpart"}) })
}

func TestRunUnknownMethod(t *testing.T) {
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	_, err := Run(context.Background(), "simulated-annealing", h, dev, Options{})
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	for _, want := range append([]string{"simulated-annealing"}, realNames...) {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should quote the registry (missing %q): %v", want, err)
		}
	}
}
