package engine

import (
	"context"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/mlfpart"
)

// mlfpartEngine wraps mlfpart.PartitionCtx, the multilevel-accelerated
// FPART V-cycle for 10⁵–10⁶-cell netlists.
type mlfpartEngine struct{}

func init() { Register(5, mlfpartEngine{}) }

func (mlfpartEngine) Name() string { return "mlfpart" }

func (mlfpartEngine) Caps() Capabilities {
	return Capabilities{
		Cancellable:  true,
		Instrumented: true,
		BoardAware:   true,
		Budgeted:     true,
		Cost:         2,
		Summary:      "multilevel-accelerated FPART (coarsen, peel coarsest, refine down)",
	}
}

func (mlfpartEngine) Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	r, err := mlfpart.PartitionCtx(ctx, h, dev, mlfpart.Config{
		Sink: opts.Sink, Label: opts.Label, SpecWidth: opts.SpecWidth, Budget: opts.Budget,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Partition: r.Partition, K: r.K, M: r.M, Feasible: r.Feasible, Stats: &r.Stats, Elapsed: r.Elapsed}, nil
}
