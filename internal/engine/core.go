package engine

import (
	"context"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// fpartEngine wraps core.Run: the paper's guided iterative improvement,
// including speculative peeling when Options.SpecWidth > 1.
type fpartEngine struct{}

func init() { Register(0, fpartEngine{}) }

func (fpartEngine) Name() string { return "fpart" }

func (fpartEngine) Caps() Capabilities {
	return Capabilities{
		Cancellable:  true,
		Instrumented: true,
		BoardAware:   true,
		Budgeted:     true,
		Cost:         4,
		Summary:      "guided iterative improvement of Krupnova & Saucier (the paper's algorithm)",
	}
}

func (fpartEngine) Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	cfg := core.Default()
	cfg.Sink = opts.Sink
	cfg.Label = opts.Label
	cfg.SpecWidth = opts.SpecWidth
	cfg.Budget = opts.Budget
	r, err := core.Run(ctx, h, dev, cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Partition: r.Partition, K: r.K, M: r.M, Feasible: r.Feasible, Stats: &r.Stats, Elapsed: r.Elapsed}, nil
}

// portfolioEngine wraps core.Portfolio over the DefaultPortfolio
// configuration mix (engine-variant racing of one method); Race is the
// engine-agnostic generalization that mixes registered methods instead.
type portfolioEngine struct{}

func init() { Register(1, portfolioEngine{}) }

func (portfolioEngine) Name() string { return "portfolio" }

func (portfolioEngine) Caps() Capabilities {
	return Capabilities{
		Cancellable:  true,
		Instrumented: true,
		BoardAware:   true,
		Budgeted:     true,
		Cost:         5,
		Summary:      "races the core.DefaultPortfolio configuration mix, first K=M win cancels the rest",
	}
}

func (portfolioEngine) Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, opts Options) (*Result, error) {
	cfgs := core.DefaultPortfolio()
	for i := range cfgs {
		cfgs[i].Sink = opts.Sink
		cfgs[i].Budget = opts.Budget
	}
	r, err := core.Portfolio(ctx, h, dev, cfgs)
	if err != nil {
		return nil, err
	}
	return &Result{Partition: r.Partition, K: r.K, M: r.M, Feasible: r.Feasible, Stats: &r.Stats, Elapsed: r.Elapsed}, nil
}
