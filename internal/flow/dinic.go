// Package flow implements a network-flow-based multi-way partitioning
// baseline in the spirit of FBB-MW (Liu & Wong, TCAD 1998), the strongest
// competitor in the FPART paper's Tables 2–5.
//
// The package provides three layers:
//
//   - a Dinic max-flow solver on an adjacency-array residual graph;
//   - FBB, the flow-balanced bipartition of Yang & Wong: a hypergraph is
//     transformed into a flow network (each net becomes a bridging edge of
//     capacity 1 between two auxiliary nodes, pins attach with infinite
//     capacity), and repeated max-flow/min-cut computations with node
//     merging steer the source side into a size window;
//   - a multi-way driver that repeatedly peels one device-feasible block,
//     enforcing both the size and the pin constraint, until the remainder
//     fits — the FBB-MW recursion.
package flow

// Inf is the practically infinite capacity used for pin edges.
const Inf int32 = 1 << 30

// Graph is a directed flow network stored as paired residual arcs. Nodes
// are dense int32 indices.
type Graph struct {
	head  []int32 // per node: first arc index, -1 none
	next  []int32 // per arc
	to    []int32 // per arc
	cap   []int32 // per arc: residual capacity
	level []int32
	iter  []int32
}

// NewGraph creates a flow network with n nodes and capacity hint for arcs.
func NewGraph(n, arcHint int) *Graph {
	g := &Graph{
		head: make([]int32, n),
		next: make([]int32, 0, 2*arcHint),
		to:   make([]int32, 0, 2*arcHint),
		cap:  make([]int32, 0, 2*arcHint),
	}
	for i := range g.head {
		g.head[i] = -1
	}
	return g
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.head) }

// AddEdge adds a directed edge u→v with the given capacity and its residual
// counterpart v→u with capacity 0. It returns the arc index of the forward
// arc (the reverse arc is always arc^1).
func (g *Graph) AddEdge(u, v int32, c int32) int32 {
	a := int32(len(g.to))
	g.to = append(g.to, v)
	g.cap = append(g.cap, c)
	g.next = append(g.next, g.head[u])
	g.head[u] = a
	g.to = append(g.to, u)
	g.cap = append(g.cap, 0)
	g.next = append(g.next, g.head[v])
	g.head[v] = a + 1
	return a
}

// Cap returns the residual capacity of arc a.
func (g *Graph) Cap(a int32) int32 { return g.cap[a] }

// Flow returns the flow currently pushed through forward arc a (the
// residual capacity accumulated on its reverse arc).
func (g *Graph) Flow(a int32) int32 { return g.cap[a^1] }

// bfsLevel builds the level graph; returns false when t is unreachable.
func (g *Graph) bfsLevel(s, t int32) bool {
	if g.level == nil {
		g.level = make([]int32, len(g.head))
	}
	for i := range g.level {
		g.level[i] = -1
	}
	g.level[s] = 0
	queue := []int32{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for a := g.head[u]; a != -1; a = g.next[a] {
			v := g.to[a]
			if g.cap[a] > 0 && g.level[v] == -1 {
				g.level[v] = g.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return g.level[t] != -1
}

// dfsAugment pushes blocking flow along level-increasing paths.
func (g *Graph) dfsAugment(u, t int32, f int32) int32 {
	if u == t {
		return f
	}
	for ; g.iter[u] != -1; g.iter[u] = g.next[g.iter[u]] {
		a := g.iter[u]
		v := g.to[a]
		if g.cap[a] <= 0 || g.level[v] != g.level[u]+1 {
			continue
		}
		push := f
		if g.cap[a] < push {
			push = g.cap[a]
		}
		got := g.dfsAugment(v, t, push)
		if got > 0 {
			g.cap[a] -= got
			g.cap[a^1] += got
			return got
		}
	}
	return 0
}

// MaxFlow runs Dinic from s to t and returns the additional flow pushed.
// Calling it again after adding edges continues from the current residual
// state, enabling the incremental FBB loop. The degenerate s == t case
// returns zero.
func (g *Graph) MaxFlow(s, t int32) int64 {
	if s == t {
		return 0
	}
	var total int64
	if g.iter == nil {
		g.iter = make([]int32, len(g.head))
	}
	for g.bfsLevel(s, t) {
		copy(g.iter, g.head)
		for {
			f := g.dfsAugment(s, t, Inf)
			if f == 0 {
				break
			}
			total += int64(f)
		}
	}
	return total
}

// MinCutSource marks every node reachable from s in the residual graph —
// the source side of a minimum cut after MaxFlow has run.
func (g *Graph) MinCutSource(s int32, mark []bool) {
	for i := range mark {
		mark[i] = false
	}
	mark[s] = true
	queue := []int32{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for a := g.head[u]; a != -1; a = g.next[a] {
			v := g.to[a]
			if g.cap[a] > 0 && !mark[v] {
				mark[v] = true
				queue = append(queue, v)
			}
		}
	}
}
