package flow

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/seed"
)

// Result is the outcome of the multi-way flow-based partitioning.
type Result struct {
	Partition  *partition.Partition
	K          int
	M          int
	Feasible   bool
	Iterations int
	// Stats carries the effort counters of the run (iterations, per-phase
	// wall time; the flow carve is accounted as the seed phase).
	Stats   obs.Stats
	Elapsed time.Duration
}

// Config tunes the FBB-MW-style driver.
type Config struct {
	// MinFill is the fraction of S_MAX below which candidate source sides
	// are not pin-evaluated (speed knob). Zero selects 0.55.
	MinFill float64
	// MaxBlocks caps iterations; zero selects 4·M+32.
	MaxBlocks int
	// Sink, when non-nil, receives one obs.Event per peeled block.
	Sink obs.Sink
	// Label tags this run's events (obs.Event.Source).
	Label string
}

// Partition runs the flow-based multi-way partitioning: FBB peels one
// device-feasible block per iteration until the remainder fits, mirroring
// the FBB-MW recursion of Liu & Wong. It is PartitionCtx with a background
// context.
func Partition(h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	return PartitionCtx(context.Background(), h, dev, cfg)
}

// PartitionCtx runs the flow-based multi-way partitioning under ctx.
// Cancellation is polled at every peel iteration and inside the FBB grow
// loop (each min-cut/merge round), so even one slow carve aborts promptly;
// the partial solution is discarded and ctx's error is returned.
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if h.NumNodes() == 0 {
		return nil, errors.New("flow: empty circuit")
	}
	for _, id := range h.InteriorIDs() {
		if h.Node(id).Size > dev.SMax() {
			return nil, fmt.Errorf("flow: node %q larger than device (%d > %d)",
				h.Node(id).Name, h.Node(id).Size, dev.SMax())
		}
	}
	if cfg.MinFill == 0 {
		cfg.MinFill = 0.55
	}
	em := obs.NewEmitter(cfg.Sink, cfg.Label)

	p := partition.New(h, dev)
	m := device.LowerBound(h, dev)
	rem := partition.BlockID(0)
	res := &Result{Partition: p, M: m}
	res.Stats.PeakBlocks = p.NumBlocks()
	maxBlocks := cfg.MaxBlocks
	if maxBlocks == 0 {
		maxBlocks = 4*m + 32
	}

	em.Emit(obs.Event{Type: obs.RunStart, M: m})
	for !p.Feasible(rem) {
		if err := ctx.Err(); err != nil {
			em.Emit(obs.Event{Type: obs.Cancelled})
			return nil, err
		}
		if p.NumBlocks() >= maxBlocks {
			break
		}
		res.Iterations++
		res.Stats.Iterations++
		em.Emit(obs.Event{Type: obs.BipartitionStart, Iteration: res.Iterations})
		t0 := time.Now()
		set, ok, err := fbbPeelCtx(ctx, p, rem, dev, cfg.MinFill)
		if err != nil {
			res.Stats.PhaseTime[obs.PhaseSeed] += time.Since(t0)
			em.Emit(obs.Event{Type: obs.Cancelled})
			return nil, err
		}
		if !ok {
			// Flow found no pin-feasible side: fall back to a pin-aware
			// greedy carve from the biggest node so the recursion can
			// continue with a feasible (if small) block.
			set = pinAwareFallback(p, rem, dev)
			if len(set) == 0 {
				set = greedyFallback(p, rem, dev)
			}
		}
		res.Stats.PhaseTime[obs.PhaseSeed] += time.Since(t0)
		if len(set) == 0 {
			break
		}
		nb := p.AddBlock()
		for _, v := range set {
			p.Move(v, nb)
			res.Stats.MovesApplied++
		}
		if p.NumBlocks() > res.Stats.PeakBlocks {
			res.Stats.PeakBlocks = p.NumBlocks()
		}
		em.Emit(obs.Event{
			Type: obs.BipartitionEnd, Iteration: res.Iterations,
			Block: int(nb), Size: p.Size(nb), Terminals: p.Terminals(nb),
		})
		if p.Nodes(rem) == 0 {
			break
		}
	}
	res.Feasible = p.Classify() == partition.FeasibleSolution
	for b := 0; b < p.NumBlocks(); b++ {
		if p.Nodes(partition.BlockID(b)) > 0 {
			res.K++
		}
	}
	res.Elapsed = time.Since(start)
	em.Emit(obs.Event{Type: obs.RunEnd, K: res.K, M: m, Feasible: res.Feasible})
	return res, nil
}

// pinAwareFallback saturates a block from the biggest remainder node under
// both device constraints.
func pinAwareFallback(p *partition.Partition, rem partition.BlockID, dev device.Device) []hypergraph.NodeID {
	h := p.Hypergraph()
	var s hypergraph.NodeID = -1
	for _, v := range p.NodesIn(rem) {
		if h.Node(v).Kind != hypergraph.Interior {
			continue
		}
		if s < 0 || h.Node(v).Size > h.Node(s).Size {
			s = v
		}
	}
	if s < 0 {
		return nil
	}
	set := seed.Grow(p, rem, dev, []hypergraph.NodeID{s})
	if len(set) == p.Nodes(rem) {
		// Absorbing the whole remainder makes no progress; let the caller
		// detect the empty remainder instead.
		return set
	}
	return set
}

// greedyFallback grows a block by connectivity until S_MAX, ignoring pins —
// the last-resort carve when flow cannot find any pin-feasible side.
func greedyFallback(p *partition.Partition, rem partition.BlockID, dev device.Device) []hypergraph.NodeID {
	h := p.Hypergraph()
	remNodes := p.NodesIn(rem)
	if len(remNodes) == 0 {
		return nil
	}
	var seedNode hypergraph.NodeID = -1
	for _, v := range remNodes {
		if h.Node(v).Kind != hypergraph.Interior {
			continue
		}
		if seedNode < 0 || h.Node(v).Size > h.Node(seedNode).Size {
			seedNode = v
		}
	}
	if seedNode < 0 {
		seedNode = remNodes[0]
	}
	in := map[hypergraph.NodeID]bool{seedNode: true}
	set := []hypergraph.NodeID{seedNode}
	size := h.Node(seedNode).Size
	frontier := map[hypergraph.NodeID]int{}
	expand := func(v hypergraph.NodeID) {
		for _, e := range h.Nets(v) {
			for _, u := range h.Pins(e) {
				if !in[u] && p.Block(u) == rem {
					frontier[u]++
				}
			}
		}
	}
	expand(seedNode)
	for size < dev.SMax() {
		var best hypergraph.NodeID = -1
		bestC := -1
		for u, c := range frontier {
			if c > bestC || (c == bestC && u < best) {
				best, bestC = u, c
			}
		}
		if best < 0 {
			break
		}
		if size+h.Node(best).Size > dev.SMax() {
			delete(frontier, best)
			continue
		}
		in[best] = true
		set = append(set, best)
		size += h.Node(best).Size
		delete(frontier, best)
		expand(best)
	}
	return set
}
