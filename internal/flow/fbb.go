package flow

import (
	"context"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
	"fpart/internal/seed"
)

// fbbNetwork is the Yang–Wong flow transform of the remainder of a
// partition: every remainder node becomes a flow node; every net whose pins
// all lie in the remainder becomes a capacity-1 bridging edge between two
// auxiliary net nodes, with infinite-capacity pin edges. Nets already cut
// (touching peeled blocks) carry no bridging edge — their cut state is fixed
// — but still count toward terminal evaluation.
type fbbNetwork struct {
	g        *Graph
	p        *partition.Partition
	h        *hypergraph.Hypergraph
	rem      partition.BlockID
	nodes    []hypergraph.NodeID         // remainder nodes, flow index = position
	flowIdx  map[hypergraph.NodeID]int32 // node -> flow index
	s, t     int32                       // super source / sink
	mark     []bool
	inSource []bool // nodes already collapsed into the source side
	inSink   []bool
}

func buildNetwork(p *partition.Partition, rem partition.BlockID) *fbbNetwork {
	h := p.Hypergraph()
	nodes := p.NodesIn(rem)
	n := len(nodes)
	flowIdx := make(map[hypergraph.NodeID]int32, n)
	for i, v := range nodes {
		flowIdx[v] = int32(i)
	}
	// Count internal nets to size the graph.
	internal := 0
	pins := 0
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if p.Span(ne) == 1 && p.PinCount(ne, rem) == len(h.Pins(ne)) && len(h.Pins(ne)) >= 2 {
			internal++
			pins += len(h.Pins(ne))
		}
	}
	total := n + 2*internal + 2
	g := NewGraph(total, internal+2*pins+2*n)
	nw := &fbbNetwork{
		g: g, p: p, h: h, rem: rem,
		nodes: nodes, flowIdx: flowIdx,
		s: int32(total - 2), t: int32(total - 1),
		mark:     make([]bool, total),
		inSource: make([]bool, n),
		inSink:   make([]bool, n),
	}
	aux := int32(n)
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		ep := h.Pins(ne)
		if !(p.Span(ne) == 1 && p.PinCount(ne, rem) == len(ep) && len(ep) >= 2) {
			continue
		}
		e1, e2 := aux, aux+1
		aux += 2
		g.AddEdge(e1, e2, 1)
		for _, v := range ep {
			vi := flowIdx[v]
			g.AddEdge(vi, e1, Inf)
			g.AddEdge(e2, vi, Inf)
		}
	}
	return nw
}

// mergeSource pins node (by flow index) to the source side.
func (nw *fbbNetwork) mergeSource(i int32) {
	if !nw.inSource[i] {
		nw.inSource[i] = true
		nw.g.AddEdge(nw.s, i, Inf)
	}
}

// mergeSink pins node (by flow index) to the sink side.
func (nw *fbbNetwork) mergeSink(i int32) {
	if !nw.inSink[i] {
		nw.inSink[i] = true
		nw.g.AddEdge(i, nw.t, Inf)
	}
}

// cutSides runs max-flow and returns the flow indices of remainder nodes on
// the source side (residual-reachable) and the sink side (the complement).
func (nw *fbbNetwork) cutSides() (src, sink []int32) {
	nw.g.MaxFlow(nw.s, nw.t)
	nw.g.MinCutSource(nw.s, nw.mark)
	for i := range nw.nodes {
		if nw.mark[i] {
			src = append(src, int32(i))
		} else {
			sink = append(sink, int32(i))
		}
	}
	return src, sink
}

// evaluate returns the size and terminal count the block would have if the
// given flow indices were carved out of the remainder.
func (nw *fbbNetwork) evaluate(side []int32) (size, term int) {
	inX := make(map[hypergraph.NodeID]bool, len(side))
	for _, i := range side {
		inX[nw.nodes[i]] = true
	}
	seen := make(map[hypergraph.NetID]bool)
	for _, i := range side {
		v := nw.nodes[i]
		nd := nw.h.Node(v)
		if nd.Kind == hypergraph.Pad {
			term++
		} else {
			size += nd.Size
		}
		for _, e := range nw.h.Nets(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			// The net costs a pin when it has pins outside X: either in
			// another block already, or in the remainder beyond X.
			outside := false
			if nw.p.Span(e) > 1 {
				outside = true
			} else {
				for _, u := range nw.h.Pins(e) {
					if !inX[u] {
						outside = true
						break
					}
				}
			}
			if outside {
				term++
			}
		}
	}
	return size, term
}

// FBBPeel extracts one block from the remainder using flow-balanced
// bipartition: the source side is grown node by node (collapsing each min
// cut into the source) until its size would exceed S_MAX, keeping the best
// device-feasible candidate seen. minFill sets the smallest acceptable
// size as a fraction of S_MAX for pin evaluation (evaluation below it is
// skipped for speed but candidates are still tracked by the final pick).
// It returns the chosen node set, or ok=false when nothing fits.
func FBBPeel(p *partition.Partition, rem partition.BlockID, dev device.Device, minFill float64) ([]hypergraph.NodeID, bool) {
	set, ok, _ := fbbPeelCtx(context.Background(), p, rem, dev, minFill)
	return set, ok
}

// fbbPeelCtx is FBBPeel with cancellation: the grow loop — one max-flow
// plus merge per round, the carve's pass loop — polls ctx and returns its
// error when the context dies mid-carve.
func fbbPeelCtx(ctx context.Context, p *partition.Partition, rem partition.BlockID, dev device.Device, minFill float64) ([]hypergraph.NodeID, bool, error) {
	remNodes := p.NodesIn(rem)
	if len(remNodes) < 2 {
		return nil, false, nil
	}
	nw := buildNetwork(p, rem)
	h := p.Hypergraph()
	smax := dev.SMax()

	// Seeds: biggest interior node as source, BFS-farthest as sink.
	var s hypergraph.NodeID = -1
	for _, v := range remNodes {
		if h.Node(v).Kind != hypergraph.Interior {
			continue
		}
		if s < 0 || h.Node(v).Size > h.Node(s).Size {
			s = v
		}
	}
	if s < 0 {
		s = remNodes[0]
	}
	t := farthestInRemainder(p, rem, s)
	nw.mergeSource(nw.flowIdx[s])
	if t != s {
		nw.mergeSink(nw.flowIdx[t])
	}

	var best []hypergraph.NodeID
	bestSize := -1
	guard := len(remNodes) + 4
	for iter := 0; iter < guard; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		src, sink := nw.cutSides()
		// The candidate block is the smaller side of the cut (the min cut
		// can hug either terminal depending on the seeds); grow it toward
		// S_MAX by collapsing it into its terminal and merging its best
		// frontier node.
		side, toSource := src, true
		if sideSize(h, nw, sink) < sideSize(h, nw, src) {
			side, toSource = sink, false
		}
		size := sideSize(h, nw, side)
		if size > smax {
			break // both sides overshoot: previous best stands
		}
		if float64(size) >= minFill*float64(smax) || bestSize < 0 {
			sz, term := nw.evaluate(side)
			if dev.Fits(sz, term) && sz > bestSize {
				bestSize = sz
				best = best[:0]
				for _, i := range side {
					best = append(best, nw.nodes[i])
				}
			}
		}
		// Collapse the candidate side into its terminal and grow.
		inSide := make(map[int32]bool, len(side))
		for _, i := range side {
			inSide[i] = true
			if toSource {
				nw.mergeSource(i)
			} else {
				nw.mergeSink(i)
			}
		}
		u := nw.bestFrontier(side, inSide, toSource)
		if u < 0 {
			break
		}
		if toSource {
			nw.mergeSource(u)
		} else {
			nw.mergeSink(u)
		}
	}
	if bestSize <= 0 {
		return nil, false, nil
	}
	// The min cut can jump far past S_MAX between merges, leaving a small
	// nucleus as the best flow candidate. Saturate it greedily (pin-aware)
	// the way FBB-MW's balancing merge does.
	return seed.Grow(p, rem, dev, best), true, nil
}

// sideSize sums interior sizes over a side's flow indices.
func sideSize(h *hypergraph.Hypergraph, nw *fbbNetwork, side []int32) int {
	size := 0
	for _, i := range side {
		size += h.Node(nw.nodes[i]).Size
	}
	return size
}

// bestFrontier picks the remainder node outside the candidate side with the
// most nets into it, skipping nodes already pinned to the opposite terminal;
// when the side is a whole component it jumps to the lowest-index free node.
func (nw *fbbNetwork) bestFrontier(side []int32, inSide map[int32]bool, toSource bool) int32 {
	blocked := nw.inSink
	if !toSource {
		blocked = nw.inSource
	}
	counts := make(map[int32]int)
	for _, i := range side {
		v := nw.nodes[i]
		for _, e := range nw.h.Nets(v) {
			for _, u := range nw.h.Pins(e) {
				ui, ok := nw.flowIdx[u]
				if !ok || inSide[ui] || blocked[ui] {
					continue
				}
				counts[ui]++
			}
		}
	}
	var bestU int32 = -1
	bestC := 0
	for u, c := range counts {
		if c > bestC || (c == bestC && (bestU < 0 || u < bestU)) {
			bestU, bestC = u, c
		}
	}
	if bestU >= 0 {
		return bestU
	}
	for i := range nw.nodes {
		ii := int32(i)
		if !inSide[ii] && !blocked[ii] {
			return ii
		}
	}
	return -1
}

// farthestInRemainder returns the remainder node at maximal BFS distance
// from s, restricted to remainder nodes (unreachable interior nodes win).
func farthestInRemainder(p *partition.Partition, rem partition.BlockID, s hypergraph.NodeID) hypergraph.NodeID {
	h := p.Hypergraph()
	dist := map[hypergraph.NodeID]int{s: 0}
	queue := []hypergraph.NodeID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range h.Nets(v) {
			for _, u := range h.Pins(e) {
				if p.Block(u) != rem {
					continue
				}
				if _, ok := dist[u]; !ok {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	best := s
	bestD := -1
	for _, v := range p.NodesIn(rem) {
		if v == s {
			continue
		}
		d, ok := dist[v]
		if !ok {
			if h.Node(v).Kind != hypergraph.Interior {
				continue
			}
			d = 1 << 30
		}
		if d > bestD {
			best, bestD = v, d
		}
	}
	return best
}
