package flow

import (
	"context"

	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// RefinePairCtx runs one flow-based refinement step on the boundary
// between blocks a and b, in the spirit of Heuer–Sanders–Schlag's
// network-flow refinement for multilevel partitioning: it collects the
// corridor of interior cells within radius BFS hops of the a↔b cut, builds
// the Yang–Wong flow transform of the corridor (nets reaching cells
// outside the corridor are pinned to the source or sink side), and
// reassigns corridor cells along the min cut. The reassignment is applied
// tentatively and kept only when the global cut strictly improves and both
// blocks stay device-feasible; otherwise every move is rolled back.
//
// maxCorridor bounds the corridor cell count so one max-flow stays
// affordable; the mlfpart engine only invokes this on coarse levels. The
// whole procedure is deterministic: corridor collection follows net/pin
// order and Dinic's augmentation order is fixed.
func RefinePairCtx(ctx context.Context, p *partition.Partition, a, b partition.BlockID, radius, maxCorridor int) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	h := p.Hypergraph()
	if maxCorridor <= 0 {
		maxCorridor = 2048
	}

	inPair := func(v hypergraph.NodeID) bool {
		blk := p.Block(v)
		return blk == a || blk == b
	}
	// pairNet reports whether every pin of e lies in a ∪ b; only such nets
	// can change cut state when cells shuffle between a and b.
	pairNet := func(e hypergraph.NetID) bool {
		return p.PinCount(e, a)+p.PinCount(e, b) == h.NetDegree(e)
	}

	// Seed the corridor with the endpoints of nets currently cut strictly
	// between a and b, then grow it by BFS over pair-internal nets. Pads
	// never enter the corridor: their side is part of the device's pin
	// assignment, not something flow refinement should rewrite.
	inCorr := make([]bool, h.NumNodes())
	var corridor []hypergraph.NodeID
	add := func(v hypergraph.NodeID) {
		if !inCorr[v] && len(corridor) < maxCorridor &&
			h.KindOf(v) == hypergraph.Interior && inPair(v) {
			inCorr[v] = true
			corridor = append(corridor, v)
		}
	}
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if p.PinCount(ne, a) == 0 || p.PinCount(ne, b) == 0 || !pairNet(ne) {
			continue
		}
		for _, v := range h.Pins(ne) {
			add(v)
		}
	}
	frontier := corridor
	for r := 0; r < radius && len(frontier) > 0 && len(corridor) < maxCorridor; r++ {
		mark := len(corridor)
		for _, v := range frontier {
			for _, e := range h.Nets(v) {
				if !pairNet(e) {
					continue
				}
				for _, u := range h.Pins(e) {
					add(u)
				}
			}
		}
		frontier = corridor[mark:]
	}
	if len(corridor) < 2 {
		return false, nil
	}

	// Yang–Wong transform over the corridor. Each pair-internal net with a
	// corridor pin gets a capacity-1 bridging edge; non-corridor pins pin
	// the net to the source (block a) or sink (block b) side. A net pinned
	// to both sides is cut no matter how the corridor falls, so it carries
	// no bridging edge.
	flowIdx := make([]int32, h.NumNodes())
	for i := range flowIdx {
		flowIdx[i] = -1
	}
	for i, v := range corridor {
		flowIdx[v] = int32(i)
	}
	type netArc struct {
		e1, e2  int32
		srcPin  bool
		sinkPin bool
		pins    []hypergraph.NodeID
	}
	var arcs []netArc
	nc := int32(len(corridor))
	aux := nc
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if !pairNet(ne) {
			continue
		}
		pins := h.Pins(ne)
		hasCorr, srcPin, sinkPin := false, false, false
		for _, v := range pins {
			if flowIdx[v] >= 0 {
				hasCorr = true
			} else if p.Block(v) == a {
				srcPin = true
			} else {
				sinkPin = true
			}
		}
		if !hasCorr || (srcPin && sinkPin) {
			continue
		}
		arcs = append(arcs, netArc{e1: aux, e2: aux + 1, srcPin: srcPin, sinkPin: sinkPin, pins: pins})
		aux += 2
	}
	s, t := aux, aux+1
	g := NewGraph(int(aux)+2, len(arcs)*6+int(nc))
	for _, arc := range arcs {
		g.AddEdge(arc.e1, arc.e2, 1)
		for _, v := range arc.pins {
			if vi := flowIdx[v]; vi >= 0 {
				g.AddEdge(vi, arc.e1, Inf)
				g.AddEdge(arc.e2, vi, Inf)
			}
		}
		if arc.srcPin {
			g.AddEdge(s, arc.e1, Inf)
		}
		if arc.sinkPin {
			g.AddEdge(arc.e2, t, Inf)
		}
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	g.MaxFlow(s, t)
	mark := make([]bool, int(aux)+2)
	g.MinCutSource(s, mark)

	// Tentatively reassign the corridor along the min cut, then keep the
	// result only if the cut strictly improved with both blocks feasible.
	oldCut := p.Cut()
	type undo struct {
		v    hypergraph.NodeID
		from partition.BlockID
	}
	var moves []undo
	for _, v := range corridor {
		target := b
		if mark[flowIdx[v]] {
			target = a
		}
		if from := p.Block(v); from != target {
			moves = append(moves, undo{v, from})
			p.Move(v, target)
		}
	}
	if len(moves) == 0 {
		return false, nil
	}
	if p.Cut() < oldCut && p.Feasible(a) && p.Feasible(b) {
		return true, nil
	}
	for i := len(moves) - 1; i >= 0; i-- {
		p.Move(moves[i].v, moves[i].from)
	}
	return false, nil
}
