package flow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func TestMaxFlowClassic(t *testing.T) {
	// Classic 6-node example; max flow s(0)->t(5) = 23.
	g := NewGraph(6, 10)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if f := g.MaxFlow(0, 5); f != 23 {
		t.Errorf("max flow = %d, want 23", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(4, 2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	if f := g.MaxFlow(0, 3); f != 0 {
		t.Errorf("flow across disconnect = %d, want 0", f)
	}
}

func TestMaxFlowIncremental(t *testing.T) {
	// Adding edges after a MaxFlow call and re-running continues from the
	// existing flow (the FBB merge pattern).
	g := NewGraph(4, 4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 3, 3)
	if f := g.MaxFlow(0, 3); f != 3 {
		t.Fatalf("first flow = %d, want 3", f)
	}
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	if f := g.MaxFlow(0, 3); f != 2 {
		t.Errorf("incremental flow = %d, want 2 additional", f)
	}
}

func TestMinCutSource(t *testing.T) {
	// s -1-> a -9-> t : cut is the s->a edge; source side = {s}.
	g := NewGraph(3, 2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 9)
	g.MaxFlow(0, 2)
	mark := make([]bool, 3)
	g.MinCutSource(0, mark)
	if !mark[0] || mark[1] || mark[2] {
		t.Errorf("source side = %v, want {0}", mark)
	}
}

// Property: max flow equals the capacity across any (source-side, rest)
// min-cut computed from the residual graph.
func TestQuickMaxFlowMinCut(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(10)
		g := NewGraph(n, 3*n)
		type edge struct{ u, v, c int32 }
		var edges []edge
		for i := 0; i < 3*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v {
				continue
			}
			c := int32(1 + r.Intn(9))
			g.AddEdge(u, v, c)
			edges = append(edges, edge{u, v, c})
		}
		s, t := int32(0), int32(n-1)
		flow := g.MaxFlow(s, t)
		mark := make([]bool, n)
		g.MinCutSource(s, mark)
		if mark[t] && flow > 0 {
			return false // t reachable => flow not maximal
		}
		var cutCap int64
		for _, e := range edges {
			if mark[e.u] && !mark[e.v] {
				cutCap += int64(e.c)
			}
		}
		return flow == cutCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// twoClusters builds the canonical bridge instance.
func twoClusters(t testing.TB, n int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	mk := func() []hypergraph.NodeID {
		var set []hypergraph.NodeID
		for i := 0; i < n; i++ {
			set = append(set, b.AddInterior("v", 1))
		}
		for i := 0; i+1 < n; i++ {
			b.AddNet("in", set[i], set[i+1])
			if i+2 < n {
				b.AddNet("in2", set[i], set[i+2])
			}
		}
		return set
	}
	l := mk()
	rset := mk()
	b.AddNet("bridge", l[n-1], rset[0])
	return b.MustBuild()
}

func TestFBBPeelFindsCluster(t *testing.T) {
	h := twoClusters(t, 8)
	dev := device.Device{Name: "d", DatasheetCells: 9, Pins: 10, Fill: 1.0}
	p := partition.New(h, dev)
	set, ok := FBBPeel(p, 0, dev, 0.2)
	if !ok {
		t.Fatal("FBBPeel failed")
	}
	size := 0
	for _, v := range set {
		size += h.Node(v).Size
	}
	if size == 0 || size > dev.SMax() {
		t.Fatalf("peeled size %d outside (0,%d]", size, dev.SMax())
	}
	// The peel should respect the bridge: verify the block's pin count is
	// tiny (a min-cut block, not a random scoop).
	nb := p.AddBlock()
	for _, v := range set {
		p.Move(v, nb)
	}
	if p.Terminals(nb) > 2 {
		t.Errorf("peeled block has %d terminals, want <= 2 (bridge cut)", p.Terminals(nb))
	}
}

func TestFBBPeelRespectsPinConstraint(t *testing.T) {
	// A star: center connected to 20 leaves by separate nets. Any block
	// containing the center plus some leaves has pins = leaves outside.
	var b hypergraph.Builder
	center := b.AddInterior("c", 1)
	for i := 0; i < 20; i++ {
		leaf := b.AddInterior("l", 1)
		b.AddNet("n", center, leaf)
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 12, Fill: 1.0}
	p := partition.New(h, dev)
	set, ok := FBBPeel(p, 0, dev, 0.2)
	if !ok {
		t.Skip("no pin-feasible block on the star; acceptable")
	}
	nb := p.AddBlock()
	for _, v := range set {
		p.Move(v, nb)
	}
	if !dev.Fits(p.Size(nb), p.Terminals(nb)) {
		t.Errorf("peeled block infeasible: S=%d T=%d", p.Size(nb), p.Terminals(nb))
	}
}

func TestMultiwayPartition(t *testing.T) {
	var b hypergraph.Builder
	sets := make([][]hypergraph.NodeID, 4)
	for ci := 0; ci < 4; ci++ {
		for i := 0; i < 10; i++ {
			sets[ci] = append(sets[ci], b.AddInterior("v", 1))
		}
		for i := 0; i+1 < 10; i++ {
			b.AddNet("in", sets[ci][i], sets[ci][i+1])
			if i+2 < 10 {
				b.AddNet("in2", sets[ci][i], sets[ci][i+2])
			}
		}
	}
	for ci := 0; ci < 4; ci++ {
		b.AddNet("bridge", sets[ci][9], sets[(ci+1)%4][0])
	}
	for i := 0; i < 6; i++ {
		pd := b.AddPad("p")
		b.AddNet("pe", pd, sets[i%4][0])
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("flow partition infeasible: K=%d M=%d", r.K, r.M)
	}
	if r.K < r.M || r.K > 6 {
		t.Errorf("K = %d outside [M=%d, 6]", r.K, r.M)
	}
	if err := r.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiwayErrors(t *testing.T) {
	var b hypergraph.Builder
	if _, err := Partition(b.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("empty circuit accepted")
	}
	var b2 hypergraph.Builder
	v := b2.AddInterior("huge", 999)
	w := b2.AddInterior("w", 1)
	b2.AddNet("n", v, w)
	if _, err := Partition(b2.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("oversized node accepted")
	}
	if _, err := Partition(twoClusters(t, 3), device.Device{Name: "bad"}, Config{}); err == nil {
		t.Error("bad device accepted")
	}
}

func TestGreedyFallback(t *testing.T) {
	h := twoClusters(t, 6)
	dev := device.Device{Name: "d", DatasheetCells: 7, Pins: 2, Fill: 1.0}
	p := partition.New(h, dev)
	set := greedyFallback(p, 0, dev)
	if len(set) == 0 {
		t.Fatal("fallback returned nothing")
	}
	size := 0
	for _, v := range set {
		size += h.Node(v).Size
	}
	if size > dev.SMax() {
		t.Errorf("fallback block size %d > S_MAX %d", size, dev.SMax())
	}
}

// Property: the multiway driver terminates with a structurally valid
// partition on random graphs and never reports K < M when feasible.
func TestQuickMultiwayValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b hypergraph.Builder
		n := 8 + r.Intn(40)
		for i := 0; i < n; i++ {
			if r.Intn(10) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1)
			}
		}
		for e := 0; e < n+r.Intn(n); e++ {
			d := 2 + r.Intn(3)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		dev := device.Device{Name: "d", DatasheetCells: 6 + r.Intn(20), Pins: 8 + r.Intn(25), Fill: 1.0}
		res, err := Partition(h, dev, Config{})
		if err != nil {
			return true
		}
		if res.Partition.Validate() != nil {
			return false
		}
		return !res.Feasible || res.K >= res.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDinic(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < b.N; i++ {
		const n = 500
		g := NewGraph(n, 2000)
		for e := 0; e < 2000; e++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				g.AddEdge(u, v, int32(1+r.Intn(8)))
			}
		}
		g.MaxFlow(0, n-1)
	}
}
