package flow

// Edge-case tests for the flow network and FBB machinery.

import (
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func TestGraphAccessors(t *testing.T) {
	g := NewGraph(3, 2)
	a := g.AddEdge(0, 1, 5)
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if g.Cap(a) != 5 || g.Flow(a) != 0 {
		t.Errorf("fresh edge cap/flow = %d/%d", g.Cap(a), g.Flow(a))
	}
	g.AddEdge(1, 2, 3)
	g.MaxFlow(0, 2)
	if g.Flow(a) != 3 {
		t.Errorf("flow through first edge = %d, want 3", g.Flow(a))
	}
	if g.Cap(a) != 2 {
		t.Errorf("residual = %d, want 2", g.Cap(a))
	}
}

func TestSelfFlowIsZero(t *testing.T) {
	g := NewGraph(2, 1)
	g.AddEdge(0, 1, 4)
	if f := g.MaxFlow(0, 0); f != 0 {
		t.Errorf("s==t flow = %d", f)
	}
}

func TestMergeIdempotent(t *testing.T) {
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 1)
	v1 := b.AddInterior("b", 1)
	b.AddNet("n", v0, v1)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 4, Fill: 1.0}
	p := partition.New(h, dev)
	nw := buildNetwork(p, 0)
	before := len(nw.g.to)
	nw.mergeSource(0)
	nw.mergeSource(0)                           // second call must not add another edge
	if got := len(nw.g.to) - before; got != 2 { // one edge = 2 residual arcs
		t.Errorf("duplicate merge added arcs: %d", got)
	}
	nw.mergeSink(1)
	nw.mergeSink(1)
	if got := len(nw.g.to) - before; got != 4 {
		t.Errorf("arcs after both merges = %d, want 4", got)
	}
}

func TestNetworkExcludesCutNets(t *testing.T) {
	// Nets already spanning another block carry no bridging edge.
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 1)
	v1 := b.AddInterior("b", 1)
	out := b.AddInterior("c", 1)
	b.AddNet("cut", v0, out)
	b.AddNet("internal", v0, v1)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 4, Fill: 1.0}
	p := partition.New(h, dev)
	carved := p.AddBlock()
	p.Move(out, carved)
	nw := buildNetwork(p, 0)
	// Remainder has 2 nodes; only "internal" is bridged: total flow nodes
	// = 2 + 2 aux + s + t = 6.
	if nw.g.NumNodes() != 6 {
		t.Errorf("network nodes = %d, want 6", nw.g.NumNodes())
	}
}

func TestEvaluateCountsStubsAndPads(t *testing.T) {
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 1)
	v1 := b.AddInterior("b", 1)
	pd := b.AddPad("p")
	ext := b.AddInterior("x", 1)
	b.AddNet("stub", v0, ext) // will be cut after carving ext
	b.AddNet("padnet", pd, v0)
	b.AddNet("pair", v0, v1)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 4, Fill: 1.0}
	p := partition.New(h, dev)
	carved := p.AddBlock()
	p.Move(ext, carved)
	nw := buildNetwork(p, 0)
	// Evaluate the side {v0, pd}: terminals = stub (cut already, counts) +
	// padnet (pad inside, v0 inside => internal... all pins of padnet are
	// inside the side, so no crossing) + pad IOB + pair (v1 outside).
	side := []int32{nw.flowIdx[v0], nw.flowIdx[pd]}
	size, term := nw.evaluate(side)
	if size != 1 {
		t.Errorf("size = %d, want 1 (pad is size-free)", size)
	}
	// stub crosses (ext in another block) = 1; pair crosses (v1 in
	// remainder outside side) = 1; pad IOB = 1; padnet fully inside = 0.
	if term != 3 {
		t.Errorf("term = %d, want 3", term)
	}
}

func TestFBBPeelTinyRemainder(t *testing.T) {
	var b hypergraph.Builder
	b.AddInterior("only", 1)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 4, Fill: 1.0}
	p := partition.New(h, dev)
	if _, ok := FBBPeel(p, 0, dev, 0.5); ok {
		t.Error("single-node remainder peeled")
	}
}

func TestFarthestInRemainderDisconnected(t *testing.T) {
	var b hypergraph.Builder
	a := b.AddInterior("a", 1)
	c := b.AddInterior("b", 1)
	d := b.AddInterior("c", 1)
	b.AddNet("n", a, c)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 4, Fill: 1.0}
	p := partition.New(h, dev)
	if far := farthestInRemainder(p, 0, a); far != d {
		t.Errorf("farthest = %d, want the disconnected node %d", far, d)
	}
}
