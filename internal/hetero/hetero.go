// Package hetero extends FPART to heterogeneous FPGA families: given a
// menu of priced device types, it minimizes the total device cost of a
// feasible partition — the problem of Kuznar, Brglez & Zajc (DAC 1994,
// reference [10] of the FPART paper; the paper itself fixes a single
// device type, §2: "we consider that all the subcircuits ... are
// implemented with the same device type").
//
// The method is partition-then-rightsize, swept over anchor devices:
//
//  1. For each device type D in the menu, run FPART targeting D.
//  2. Rightsize every resulting block to the cheapest device that fits it.
//  3. Keep the assignment with the lowest total cost.
//
// Rightsizing is exact per block (blocks never exceed their anchor device,
// and any smaller-or-equal device that fits is valid), so the result is
// always feasible when FPART's was.
package hetero

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// Priced attaches a cost to a device type.
type Priced struct {
	device.Device
	// Cost is the unit price in arbitrary units (e.g., dollars).
	Cost float64
}

// BlockAssignment describes one block of the final solution.
type BlockAssignment struct {
	Block     partition.BlockID
	Device    Priced
	Size      int
	Terminals int
}

// Result is the outcome of a heterogeneous partitioning run.
type Result struct {
	// Partition is the winning partition (produced under Anchor).
	Partition *partition.Partition
	// Anchor is the device type the winning FPART run targeted.
	Anchor Priced
	// Blocks lists the rightsized device assignment per non-empty block.
	Blocks []BlockAssignment
	// TotalCost is the summed device cost.
	TotalCost float64
	// K is the number of devices used.
	K        int
	Feasible bool
	Elapsed  time.Duration
}

// Partition minimizes total device cost over the menu.
func Partition(h *hypergraph.Hypergraph, menu []Priced, cfg core.Config) (*Result, error) {
	start := time.Now()
	if len(menu) == 0 {
		return nil, errors.New("hetero: empty device menu")
	}
	for _, d := range menu {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if d.Cost <= 0 {
			return nil, fmt.Errorf("hetero: device %s has non-positive cost %v", d.Name, d.Cost)
		}
		if d.Family != menu[0].Family {
			// A circuit is technology-mapped per family; CLB counts are
			// not comparable across families.
			return nil, fmt.Errorf("hetero: menu mixes families %v and %v", menu[0].Family, d.Family)
		}
	}
	// Cheapest-first menu for rightsizing.
	byPrice := append([]Priced(nil), menu...)
	sort.SliceStable(byPrice, func(i, j int) bool { return byPrice[i].Cost < byPrice[j].Cost })

	var best *Result
	for _, anchor := range menu {
		r, err := core.Partition(h, anchor.Device, cfg)
		if err != nil {
			// An anchor too small for some node is skipped, not fatal —
			// other menu entries may fit.
			if errors.Is(err, core.ErrUnsplittable) {
				continue
			}
			return nil, err
		}
		if !r.Feasible {
			continue
		}
		cand := Rightsize(r.Partition, anchor, byPrice)
		if best == nil || cand.TotalCost < best.TotalCost {
			best = cand
		}
	}
	if best == nil {
		return nil, errors.New("hetero: no menu device yields a feasible partition")
	}
	best.Elapsed = time.Since(start)
	return best, nil
}

// Rightsize assigns each non-empty block of p the cheapest device of the
// menu that fits it. A candidate fits when the block's size, terminal, and
// aux totals meet the scalar datasheet constraints AND every resource axis
// the candidate declares a cap for (vector-priced menus: a block that fits
// device A's LUT budget but exceeds its DSP cap must not rightsize into
// A). Resources a candidate does not declare are unconstrained on it,
// mirroring device.FitsRes. byPrice must be sorted cheapest-first;
// Partition prepares it that way.
func Rightsize(p *partition.Partition, anchor Priced, byPrice []Priced) *Result {
	res := &Result{Partition: p, Anchor: anchor, Feasible: true}
	// Per-block demand totals for every resource name any menu device
	// caps, accumulated in one pass per named column over the hypergraph
	// (the partition itself only tracks the anchor device's axes).
	h := p.Hypergraph()
	demand := map[string][]int{}
	for _, d := range byPrice {
		for _, r := range d.Resources {
			if _, done := demand[r.Name]; done {
				continue
			}
			col := h.ResourceColumn(r.Name)
			tot := make([]int, p.NumBlocks())
			if col != nil {
				for v, dem := range col {
					if dem > 0 {
						if b := p.Block(hypergraph.NodeID(v)); b >= 0 {
							tot[b] += int(dem)
						}
					}
				}
			}
			demand[r.Name] = tot
		}
	}
	resFits := func(d Priced, b partition.BlockID) bool {
		for _, r := range d.Resources {
			if demand[r.Name][b] > r.Cap {
				return false
			}
		}
		return true
	}
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) == 0 {
			continue
		}
		res.K++
		assigned := false
		for _, d := range byPrice {
			if d.FitsFull(p.Size(id), p.Terminals(id), p.Aux(id)) && resFits(d, id) {
				res.Blocks = append(res.Blocks, BlockAssignment{
					Block: id, Device: d, Size: p.Size(id), Terminals: p.Terminals(id),
				})
				res.TotalCost += d.Cost
				assigned = true
				break
			}
		}
		if !assigned {
			// Cannot happen when the anchor itself is in the menu, but be
			// defensive: charge the anchor.
			res.Blocks = append(res.Blocks, BlockAssignment{
				Block: id, Device: anchor, Size: p.Size(id), Terminals: p.Terminals(id),
			})
			res.TotalCost += anchor.Cost
		}
	}
	return res
}

// XilinxMenu prices the paper's XC3000-family devices with plausible
// relative early-'90s prices (arbitrary units, roughly proportional to
// capacity). The XC2064 is excluded: it belongs to the XC2000 family,
// whose CLB counts are not comparable.
func XilinxMenu() []Priced {
	return []Priced{
		{Device: device.XC3020, Cost: 1.2},
		{Device: device.XC3042, Cost: 2.5},
		{Device: device.XC3090, Cost: 6.0},
	}
}
