package hetero

import (
	"testing"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
)

func TestHeterogeneousBeatsSingleBigDevice(t *testing.T) {
	// s9234 fits 2 × XC3090 (cost 12.0) but also 4 × XC3042 (cost 10.0)
	// or cheaper mixes; the menu search must not cost more than the best
	// single-type solution.
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	r, err := Partition(h, XilinxMenu(), core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	// Upper bound: 2 × XC3090 = 12.0 units.
	if r.TotalCost > 12.0 {
		t.Errorf("TotalCost = %v, want <= 12.0", r.TotalCost)
	}
	if len(r.Blocks) != r.K {
		t.Errorf("assignments %d != K %d", len(r.Blocks), r.K)
	}
	// Every assignment must actually fit.
	for _, a := range r.Blocks {
		if !a.Device.Fits(a.Size, a.Terminals) {
			t.Errorf("block %d assigned %s but S=%d T=%d does not fit", a.Block, a.Device.Name, a.Size, a.Terminals)
		}
	}
}

func TestRightsizingPicksCheapest(t *testing.T) {
	// A tiny circuit fits the cheapest menu entry outright.
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 1)
	v1 := b.AddInterior("b", 1)
	b.AddNet("n", v0, v1)
	h := b.MustBuild()
	r, err := Partition(h, XilinxMenu(), core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 1 || r.TotalCost != 1.2 {
		t.Errorf("K=%d cost=%v, want 1 × XC3020 at 1.2", r.K, r.TotalCost)
	}
	if r.Blocks[0].Device.Name != "XC3020" {
		t.Errorf("assigned %s, want XC3020", r.Blocks[0].Device.Name)
	}
}

// TestRightsizeRespectsResourceVectors pins the vector-menu rule: a block
// whose LUT demand fits the cheap device A but whose DSP demand exceeds
// A's cap must rightsize into the pricier B, even though every scalar
// constraint of A is met.
func TestRightsizeRespectsResourceVectors(t *testing.T) {
	var b hypergraph.Builder
	var set []hypergraph.NodeID
	for i := 0; i < 4; i++ {
		set = append(set, b.AddInterior("v", 1))
	}
	for i := 0; i+1 < 4; i++ {
		b.AddNet("e", set[i], set[i+1])
	}
	b.SetResource(set[0], "LUT", 2)
	b.SetResource(set[1], "DSP", 3) // block total: 3 DSP > A's cap of 2
	h := b.MustBuild()

	devA := device.Device{Name: "A", Family: device.XC3000, DatasheetCells: 50, Pins: 64, Fill: 1.0,
		Resources: []device.Resource{{Name: "DSP", Cap: 2}, {Name: "LUT", Cap: 10}}}
	devB := device.Device{Name: "B", Family: device.XC3000, DatasheetCells: 50, Pins: 64, Fill: 1.0,
		Resources: []device.Resource{{Name: "DSP", Cap: 8}, {Name: "LUT", Cap: 10}}}
	menu := []Priced{{Device: devA, Cost: 1.0}, {Device: devB, Cost: 3.0}}

	r, err := Partition(h, menu, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.K != 1 {
		t.Fatalf("want one feasible block, got K=%d feasible=%v", r.K, r.Feasible)
	}
	if got := r.Blocks[0].Device.Name; got != "B" {
		t.Errorf("rightsized into %s, want B (A's DSP cap is 2 < demand 3)", got)
	}
	if r.TotalCost != 3.0 {
		t.Errorf("TotalCost = %v, want 3.0", r.TotalCost)
	}

	// Control: drop the DSP demand below A's cap and A must win again.
	var b2 hypergraph.Builder
	var set2 []hypergraph.NodeID
	for i := 0; i < 4; i++ {
		set2 = append(set2, b2.AddInterior("v", 1))
	}
	for i := 0; i+1 < 4; i++ {
		b2.AddNet("e", set2[i], set2[i+1])
	}
	b2.SetResource(set2[0], "LUT", 2)
	b2.SetResource(set2[1], "DSP", 2)
	h2 := b2.MustBuild()
	r2, err := Partition(h2, menu, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Blocks[0].Device.Name; got != "A" {
		t.Errorf("control rightsized into %s, want A", got)
	}
}

func TestMenuValidation(t *testing.T) {
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 1)
	v1 := b.AddInterior("b", 1)
	b.AddNet("n", v0, v1)
	h := b.MustBuild()
	if _, err := Partition(h, nil, core.Default()); err == nil {
		t.Error("empty menu accepted")
	}
	if _, err := Partition(h, []Priced{{Device: device.Device{Name: "bad"}, Cost: 1}}, core.Default()); err == nil {
		t.Error("invalid device accepted")
	}
	if _, err := Partition(h, []Priced{{Device: device.XC3020, Cost: 0}}, core.Default()); err == nil {
		t.Error("zero cost accepted")
	}
	mixed := []Priced{{Device: device.XC3020, Cost: 1}, {Device: device.XC2064, Cost: 1}}
	if _, err := Partition(h, mixed, core.Default()); err == nil {
		t.Error("cross-family menu accepted")
	}
}

func TestOversizedAnchorSkipped(t *testing.T) {
	// One giant node: the small device cannot host it, but the menu also
	// holds a big device, so the run must still succeed.
	var b hypergraph.Builder
	v := b.AddInterior("big", 100) // > XC3020's 57, <= XC3090's 288
	w := b.AddInterior("w", 1)
	b.AddNet("n", v, w)
	h := b.MustBuild()
	r, err := Partition(h, XilinxMenu(), core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks[0].Device.Name != "XC3090" && r.Blocks[0].Device.Name != "XC3042" {
		t.Errorf("assigned %s, want a device that fits size 101", r.Blocks[0].Device.Name)
	}
}

func TestNoFeasibleMenu(t *testing.T) {
	var b hypergraph.Builder
	v := b.AddInterior("huge", 10000)
	w := b.AddInterior("w", 1)
	b.AddNet("n", v, w)
	h := b.MustBuild()
	if _, err := Partition(h, XilinxMenu(), core.Default()); err == nil {
		t.Error("impossible circuit accepted")
	}
}

func TestMixedBlockSizesGetMixedDevices(t *testing.T) {
	// Two dense 120-cell clusters plus a light 30-cell tail: anchored on
	// XC3042 (129 cells) the tail block should rightsize down to XC3020.
	var b hypergraph.Builder
	mk := func(n int) []hypergraph.NodeID {
		var set []hypergraph.NodeID
		for i := 0; i < n; i++ {
			set = append(set, b.AddInterior("v", 1))
		}
		for i := 0; i+1 < n; i++ {
			b.AddNet("e", set[i], set[i+1])
			if i+2 < n {
				b.AddNet("e2", set[i], set[i+2])
			}
		}
		return set
	}
	c1, c2, tail := mk(120), mk(120), mk(30)
	b.AddNet("b1", c1[119], c2[0])
	b.AddNet("b2", c2[119], tail[0])
	h := b.MustBuild()
	r, err := Partition(h, XilinxMenu(), core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	names := map[string]int{}
	for _, a := range r.Blocks {
		names[a.Device.Name]++
	}
	if len(names) < 2 {
		t.Logf("assignments: %v (homogeneous menus can win; informational)", names)
	}
	// Whatever the mix, the cost must beat all-XC3090 and all-XC3042 for
	// the same block count.
	if r.TotalCost >= float64(r.K)*6.0 {
		t.Errorf("cost %v did not beat the all-big-device bound %v", r.TotalCost, float64(r.K)*6.0)
	}
}
