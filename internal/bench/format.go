package bench

import (
	"fmt"
	"io"
	"strings"
)

// Format selects the rendering of regenerated tables.
type Format string

const (
	// Text is the aligned fixed-width rendering used by default.
	Text Format = "text"
	// Markdown emits GitHub-style pipe tables (EXPERIMENTS.md-ready).
	Markdown Format = "md"
	// CSV emits comma-separated values for spreadsheets.
	CSV Format = "csv"
)

// ParseFormat validates a format name.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case Text, Markdown, CSV:
		return Format(s), nil
	default:
		return "", fmt.Errorf("bench: unknown format %q (valid: text, md, csv)", s)
	}
}

// tableWriter renders header + rows in one of the formats.
type tableWriter struct {
	w      io.Writer
	format Format
	widths []int
}

func newTableWriter(w io.Writer, format Format, widths []int) *tableWriter {
	return &tableWriter{w: w, format: format, widths: widths}
}

func (tw *tableWriter) header(cells []string) {
	tw.emit(cells)
	if tw.format == Markdown {
		seps := make([]string, len(cells))
		for i := range seps {
			seps[i] = "---"
		}
		tw.emit(seps)
	}
}

func (tw *tableWriter) emit(cells []string) {
	switch tw.format {
	case Markdown:
		fmt.Fprintf(tw.w, "| %s |\n", strings.Join(cells, " | "))
	case CSV:
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		fmt.Fprintln(tw.w, strings.Join(quoted, ","))
	default:
		for i, c := range cells {
			w := 10
			if i < len(tw.widths) {
				w = tw.widths[i]
			}
			if i == 0 {
				fmt.Fprintf(tw.w, "%-*s", w, c)
			} else {
				fmt.Fprintf(tw.w, " %*s", w, c)
			}
		}
		fmt.Fprintln(tw.w)
	}
}
