package bench

// End-to-end integration tests across module boundaries: netlist parsing →
// technology mapping → partitioning, serialization round trips feeding the
// partitioners, and cross-method consistency.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/netlist"
	"fpart/internal/partition"
	"fpart/internal/techmap"
)

// counterBlif generates a synthetic BLIF ripple counter with n bits: n
// LUT+FF pairs chained by carry logic.
func counterBlif(n int) string {
	var sb strings.Builder
	sb.WriteString(".model counter\n.inputs en clk\n.outputs")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, " q%d", i)
	}
	sb.WriteString("\n")
	carry := "en"
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, ".names %s q%d d%d\n10 1\n01 1\n", carry, i, i)
		fmt.Fprintf(&sb, ".latch d%d q%d re clk 0\n", i, i)
		if i+1 < n {
			fmt.Fprintf(&sb, ".names %s q%d c%d\n11 1\n", carry, i, i)
			carry = fmt.Sprintf("c%d", i)
		}
	}
	sb.WriteString(".end\n")
	return sb.String()
}

func TestBlifToPartitionPipeline(t *testing.T) {
	c, err := netlist.ReadBLIF(strings.NewReader(counterBlif(48)))
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []techmap.Arch{techmap.XC2000Arch, techmap.XC3000Arch} {
		m, err := techmap.Map(c, arch)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		h, err := m.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		dev := device.Device{Name: "d", Family: device.XC3000, DatasheetCells: 20, Pins: 30, Fill: 1.0}
		r, err := core.Partition(h, dev, core.Default())
		if err != nil {
			t.Fatal(err)
		}
		if !r.Feasible {
			t.Errorf("%s: pipeline produced infeasible result (K=%d M=%d)", arch.Name, r.K, r.M)
		}
		if err := r.Partition.Validate(); err != nil {
			t.Fatal(err)
		}
		// Aux (flip-flops) must have propagated through the mapper.
		if h.TotalAux() != 48 {
			t.Errorf("%s: mapped circuit carries %d FFs, want 48", arch.Name, h.TotalAux())
		}
	}
}

func TestBlifFFCapConstrainsPipeline(t *testing.T) {
	c, err := netlist.ReadBLIF(strings.NewReader(counterBlif(32)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := techmap.Map(c, techmap.XC3000Arch)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	// Size/pins generous; 8 FFs per device force >= 4 devices.
	dev := device.Device{Name: "ffbound", Family: device.XC3000, DatasheetCells: 500, Pins: 200, Fill: 1.0, AuxCap: 8}
	r, err := core.Partition(h, dev, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.M != 4 {
		t.Fatalf("M = %d, want 4 (32 FFs / 8)", r.M)
	}
	if !r.Feasible || r.K < 4 {
		t.Errorf("K=%d feasible=%v, want >= 4 feasible", r.K, r.Feasible)
	}
	for b := 0; b < r.Partition.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if r.Partition.Nodes(id) > 0 && r.Partition.Aux(id) > 8 {
			t.Errorf("block %d holds %d FFs > cap", b, r.Partition.Aux(id))
		}
	}
}

func TestSerializationPreservesPartitioningResult(t *testing.T) {
	// gen → PHG → parse → partition must equal direct partitioning (PHG
	// preserves the full structure, and FPART is deterministic).
	spec, _ := gen.ByName("c3540")
	h := gen.Generate(spec, device.XC3000)
	direct, err := core.Partition(h, device.XC3042, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.WritePHG(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := netlist.ReadPHG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip, err := core.Partition(h2, device.XC3042, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if direct.K != roundTrip.K {
		t.Errorf("K diverged across PHG round trip: %d vs %d", direct.K, roundTrip.K)
	}
	if direct.Partition.Cut() != roundTrip.Partition.Cut() {
		t.Errorf("cut diverged: %d vs %d", direct.Partition.Cut(), roundTrip.Partition.Cut())
	}
}

func TestHgrRoundTripPartition(t *testing.T) {
	spec, _ := gen.ByName("c3540")
	h := gen.Generate(spec, device.XC3000)
	var buf bytes.Buffer
	if err := netlist.WriteHgr(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := netlist.ReadHgr(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumPads() != h.NumPads() || h2.TotalSize() != h.TotalSize() {
		t.Fatalf("hgr round trip lost structure: %v vs %v", h2, h)
	}
	r, err := core.Partition(h2, device.XC3090, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.K != 1 {
		t.Errorf("c3540/XC3090 after hgr round trip: K=%d feasible=%v, want 1", r.K, r.Feasible)
	}
}

func TestAllMethodsAgreeOnFeasibility(t *testing.T) {
	// Every implemented method must find a feasible solution with K >= M
	// on a mid-size benchmark, and their Ks must be within a sane band of
	// each other.
	ks := map[Method]int{}
	for _, m := range []Method{FPART, KwayX, FlowMW, Multilevel} {
		out, err := Run("s5378", device.XC3042, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !out.Feasible {
			t.Errorf("%v infeasible", m)
		}
		if out.K < out.M {
			t.Errorf("%v: K=%d < M=%d", m, out.K, out.M)
		}
		ks[m] = out.K
	}
	if ks[FPART] > ks[KwayX] || ks[FPART] > ks[FlowMW] || ks[FPART] > ks[Multilevel]+1 {
		t.Errorf("FPART should not lose to the baselines: %v", ks)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Run("s9234", device.XC3020, FPART)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("s9234", device.XC3020, FPART)
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K {
		t.Errorf("nondeterministic: %d vs %d", a.K, b.K)
	}
}
