package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/flow"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/kwayx"
	"fpart/internal/multilevel"
	"fpart/internal/setcover"
	"fpart/internal/wcdp"
)

// Method identifies a partitioner implemented in this repository.
type Method uint8

const (
	// FPART is the paper's algorithm (internal/core).
	FPART Method = iota
	// KwayX is the recursive-FM baseline (internal/kwayx).
	KwayX
	// FlowMW is the flow-based baseline (internal/flow).
	FlowMW
	// Multilevel is the hMETIS-style multilevel baseline
	// (internal/multilevel) — a paradigm the paper predates; included for
	// perspective.
	Multilevel
	// WCDP is the ordering + dynamic-programming baseline
	// (internal/wcdp), reproducing the method of reference [6].
	WCDP
	// SC is the set-covering baseline (internal/setcover), reproducing
	// the method of reference [3].
	SC
)

// String names the method as used in table headers.
func (m Method) String() string {
	switch m {
	case FPART:
		return "FPART"
	case KwayX:
		return "k-way.x"
	case FlowMW:
		return "flow-MW"
	case Multilevel:
		return "multilevel"
	case WCDP:
		return "WCDP"
	case SC:
		return "SC"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Outcome is one measured partitioning run.
type Outcome struct {
	Circuit  string
	Device   device.Device
	Method   Method
	K        int
	M        int
	Feasible bool
	Elapsed  time.Duration
	// Stats carries the effort counters of the run. Only FPART reports
	// them; the baselines leave the zero value.
	Stats core.Stats
}

// Run generates the circuit for the device's family and partitions it with
// the given method.
func Run(circuit string, dev device.Device, m Method) (Outcome, error) {
	spec, ok := gen.ByName(circuit)
	if !ok {
		return Outcome{}, fmt.Errorf("bench: unknown circuit %q", circuit)
	}
	h := gen.Generate(spec, dev.Family)
	return RunOn(h, circuit, dev, m)
}

// RunOn partitions an already-generated hypergraph.
func RunOn(h *hypergraph.Hypergraph, name string, dev device.Device, m Method) (Outcome, error) {
	out := Outcome{Circuit: name, Device: dev, Method: m, M: device.LowerBound(h, dev)}
	start := time.Now()
	switch m {
	case FPART:
		r, err := core.Partition(h, dev, core.Default())
		if err != nil {
			return out, err
		}
		out.K, out.Feasible, out.Stats = r.K, r.Feasible, r.Stats
	case KwayX:
		r, err := kwayx.Partition(h, dev, kwayx.Config{})
		if err != nil {
			return out, err
		}
		out.K, out.Feasible = r.K, r.Feasible
	case FlowMW:
		r, err := flow.Partition(h, dev, flow.Config{})
		if err != nil {
			return out, err
		}
		out.K, out.Feasible = r.K, r.Feasible
	case Multilevel:
		r, err := multilevel.Partition(h, dev, multilevel.Config{})
		if err != nil {
			return out, err
		}
		out.K, out.Feasible = r.K, r.Feasible
	case WCDP:
		r, err := wcdp.Partition(h, dev, wcdp.Config{})
		if err != nil {
			return out, err
		}
		out.K, out.Feasible = r.K, r.Feasible
	case SC:
		r, err := setcover.Partition(h, dev, setcover.Config{})
		if err != nil {
			return out, err
		}
		out.K, out.Feasible = r.K, r.Feasible
	default:
		return out, fmt.Errorf("bench: unknown method %v", m)
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// Suite runs every (circuit, method) pair for one device concurrently and
// returns outcomes keyed by circuit then method.
func Suite(circuits []string, dev device.Device, methods []Method) (map[string]map[Method]Outcome, error) {
	results := make(map[string]map[Method]Outcome, len(circuits))
	for _, c := range circuits {
		results[c] = make(map[Method]Outcome, len(methods))
	}
	type job struct {
		circuit string
		method  Method
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out, err := Run(j.circuit, dev, j.method)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("%s/%s/%v: %w", j.circuit, dev.Name, j.method, err)
				}
				results[j.circuit][j.method] = out
				mu.Unlock()
			}
		}()
	}
	for _, c := range circuits {
		for _, m := range methods {
			jobs <- job{c, m}
		}
	}
	close(jobs)
	wg.Wait()
	return results, firstErr
}

// cell renders a published integer, with "-" for unreported.
func cell(v int) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// WriteTable1 renders Table 1: benchmark circuit characteristics.
func WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1. Benchmark circuits characteristics")
	fmt.Fprintf(w, "%-8s %6s %14s %14s %10s %10s\n",
		"Circuit", "#IOBs", "#CLBs XC2000", "#CLBs XC3000", "nets(3000)", "pins/net")
	for _, name := range CircuitOrder {
		spec, _ := gen.ByName(name)
		h := gen.Generate(spec, device.XC3000)
		st := h.ComputeStats()
		fmt.Fprintf(w, "%-8s %6d %14d %14d %10d %10.2f\n",
			name, spec.IOBs, spec.CLBs2000, spec.CLBs3000, st.Nets, st.AvgNetDegree)
	}
}

// deviceTable describes one of Tables 2-5.
type deviceTable struct {
	number    int
	dev       device.Device
	published map[string]Published
	order     []string
	// columns of published values to print, in order
	pubCols []pubCol
	// methods measured fresh for this table
	methods []Method
}

type pubCol struct {
	name string
	get  func(Published) int
}

func tableSpec(n int) (deviceTable, error) {
	switch n {
	case 2:
		return deviceTable{
			number: 2, dev: device.XC3020, published: Table2Published, order: CircuitOrder,
			pubCols: []pubCol{
				{"kway.x*", func(p Published) int { return p.KwayX }},
				{"r+p.0*", func(p Published) int { return p.RP0 }},
				{"PROP(p,o,p)*", func(p Published) int { return p.PropOP }},
				{"PROP(p,r,o,p)*", func(p Published) int { return p.PropROP }},
				{"FBB-MW*", func(p Published) int { return p.FBBMW }},
				{"FPART*", func(p Published) int { return p.FPART }},
			},
			methods: []Method{KwayX, FlowMW, FPART},
		}, nil
	case 3:
		dt, _ := tableSpec(2)
		dt.number = 3
		dt.dev = device.XC3042
		dt.published = Table3Published
		return dt, nil
	case 4:
		return deviceTable{
			number: 4, dev: device.XC3090, published: Table4Published, order: CircuitOrder,
			pubCols: []pubCol{
				{"kway.x*", func(p Published) int { return p.KwayX }},
				{"r+p.0*", func(p Published) int { return p.RP0 }},
				{"SC*", func(p Published) int { return p.SC }},
				{"WCDP*", func(p Published) int { return p.WCDP }},
				{"FBB-MW*", func(p Published) int { return p.FBBMW }},
				{"FPART*", func(p Published) int { return p.FPART }},
			},
			methods: []Method{KwayX, SC, WCDP, FlowMW, Multilevel, FPART},
		}, nil
	case 5:
		return deviceTable{
			number: 5, dev: device.XC2064, published: Table5Published, order: Table5Order,
			pubCols: []pubCol{
				{"kway.x*", func(p Published) int { return p.KwayX }},
				{"SC*", func(p Published) int { return p.SC }},
				{"WCDP*", func(p Published) int { return p.WCDP }},
				{"FBB-MW*", func(p Published) int { return p.FBBMW }},
				{"FPART*", func(p Published) int { return p.FPART }},
			},
			methods: []Method{KwayX, SC, WCDP, FlowMW, Multilevel, FPART},
		}, nil
	default:
		return deviceTable{}, fmt.Errorf("bench: no device table %d (tables 2-5)", n)
	}
}

// WriteDeviceTable regenerates Table n (2-5) in the default text format.
func WriteDeviceTable(w io.Writer, n int) error {
	return WriteDeviceTableFormat(w, n, Text)
}

// WriteDeviceTableFormat regenerates Table n (2-5): published reference
// columns (marked *) next to freshly measured columns for the methods
// implemented here, plus the measured lower bound M, rendered as text,
// markdown, or CSV.
func WriteDeviceTableFormat(w io.Writer, n int, format Format) error {
	dt, err := tableSpec(n)
	if err != nil {
		return err
	}
	methods := dt.methods
	results, err := Suite(dt.order, dt.dev, methods)
	if err != nil {
		return err
	}
	if format == Text {
		fmt.Fprintf(w, "Table %d. Results comparison on %s device (columns marked * are the paper's published values;\nmeasured columns are fresh runs on the synthetic suite)\n", dt.number, dt.dev.Name)
	}
	widths := make([]int, 0, len(dt.pubCols)+len(methods)+2)
	widths = append(widths, 8)
	header := []string{"Circuit"}
	for _, c := range dt.pubCols {
		header = append(header, c.name)
		widths = append(widths, 13)
	}
	for _, m := range methods {
		header = append(header, "meas "+m.String())
		widths = append(widths, 13)
	}
	header = append(header, "M")
	widths = append(widths, 4)
	tw := newTableWriter(w, format, widths)
	tw.header(header)

	totPub := make([]int, len(dt.pubCols))
	totMeas := make([]int, len(methods))
	totM := 0
	for _, name := range dt.order {
		pub := dt.published[name]
		row := []string{name}
		for i, c := range dt.pubCols {
			v := c.get(pub)
			totPub[i] += v
			row = append(row, cell(v))
		}
		for i, m := range methods {
			out := results[name][m]
			mark := ""
			if !out.Feasible {
				mark = "!"
			}
			totMeas[i] += out.K
			row = append(row, fmt.Sprintf("%d%s", out.K, mark))
		}
		m := results[name][FPART].M
		totM += m
		row = append(row, fmt.Sprintf("%d", m))
		tw.emit(row)
	}
	row := []string{"Total"}
	for _, v := range totPub {
		row = append(row, fmt.Sprintf("%d", v))
	}
	for _, v := range totMeas {
		row = append(row, fmt.Sprintf("%d", v))
	}
	row = append(row, fmt.Sprintf("%d", totM))
	tw.emit(row)
	return nil
}

// WriteTable6 regenerates Table 6: FPART execution times per circuit and
// device, published Sparc Ultra 5 seconds next to measured seconds on this
// host.
func WriteTable6(w io.Writer) error {
	devs := []device.Device{device.XC3020, device.XC3042, device.XC3090, device.XC2064}
	fmt.Fprintln(w, "Table 6. Execution time results (pub = paper's SUN Sparc Ultra 5 seconds, meas = this host)")
	fmt.Fprintf(w, "%-8s", "Circuit")
	for _, d := range devs {
		fmt.Fprintf(w, " %10s %10s", "pub "+d.Name[2:], "meas")
	}
	fmt.Fprintln(w)
	for _, name := range CircuitOrder {
		pub := Table6Published[name]
		fmt.Fprintf(w, "%-8s", name)
		for di, d := range devs {
			if d.Name == device.XC2064.Name && pub[di] == 0 {
				fmt.Fprintf(w, " %10s %10s", "-", "-")
				continue
			}
			out, err := Run(name, d, FPART)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10.2f %10.2f", pub[di], out.Elapsed.Seconds())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Totals sums a published column over a table for cross-checks.
func Totals(published map[string]Published, get func(Published) int) int {
	keys := make([]string, 0, len(published))
	for k := range published {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := 0
	for _, k := range keys {
		t += get(published[k])
	}
	return t
}
