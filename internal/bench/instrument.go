package bench

// Instrumentation table: the per-circuit effort counters collected through
// internal/obs. This table has no counterpart in the paper (which reports
// only device counts and runtimes); it documents how much iterative
// improvement FPART actually performs per instance, the subject of the
// EXPERIMENTS.md "Instrumentation" section.

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"fpart/internal/device"
)

// WriteInstrumentation runs FPART on every suite circuit for dev and
// renders the effort counters: Algorithm 1 iterations, FM passes, applied
// moves, moves per pass, the fraction of candidates rejected by the §3.5
// move windows, stack restarts (§3.6), and the peak block count.
func WriteInstrumentation(w io.Writer, dev device.Device, format Format) error {
	if format == Text {
		fmt.Fprintf(w, "Instrumentation. FPART effort counters on %s device (fresh runs on the synthetic suite)\n", dev.Name)
	}

	outs := make([]Outcome, len(CircuitOrder))
	errs := make([]error, len(CircuitOrder))
	var wg sync.WaitGroup
	sem := make(chan struct{}, min(runtime.GOMAXPROCS(0), 8))
	for i, name := range CircuitOrder {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i], errs[i] = Run(name, dev, FPART)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	tw := newTableWriter(w, format, []int{8, 3, 6, 7, 8, 11, 8, 9, 6, 8})
	tw.header([]string{"Circuit", "K", "iters", "passes", "moves", "moves/pass", "gated%", "restarts", "peak", "time"})
	var total Outcome
	for _, out := range outs {
		st := out.Stats
		tw.emit([]string{
			out.Circuit,
			fmt.Sprintf("%d", out.K),
			fmt.Sprintf("%d", st.Iterations),
			fmt.Sprintf("%d", st.Passes),
			fmt.Sprintf("%d", st.MovesApplied),
			fmt.Sprintf("%.1f", st.MovesPerPass()),
			fmt.Sprintf("%.1f", 100*st.GateRate()),
			fmt.Sprintf("%d", st.Restarts),
			fmt.Sprintf("%d", st.PeakBlocks),
			fmt.Sprintf("%.2fs", out.Elapsed.Seconds()),
		})
		total.K += out.K
		total.Elapsed += out.Elapsed
		total.Stats.Merge(st)
	}
	st := total.Stats
	tw.emit([]string{
		"Total",
		fmt.Sprintf("%d", total.K),
		fmt.Sprintf("%d", st.Iterations),
		fmt.Sprintf("%d", st.Passes),
		fmt.Sprintf("%d", st.MovesApplied),
		fmt.Sprintf("%.1f", st.MovesPerPass()),
		fmt.Sprintf("%.1f", 100*st.GateRate()),
		fmt.Sprintf("%d", st.Restarts),
		fmt.Sprintf("%d", st.PeakBlocks),
		fmt.Sprintf("%.2fs", total.Elapsed.Seconds()),
	})
	return nil
}
