package bench

import (
	"testing"

	"fpart/internal/device"
)

// TestMultilevelOnSuite pins the multilevel baseline's behaviour on four
// representative circuits: feasible, at or near the lower bound.
func TestMultilevelOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full partitioner")
	}
	for _, c := range []string{"c3540", "s9234", "s13207", "s38584"} {
		out, err := Run(c, device.XC3020, Multilevel)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Feasible {
			t.Errorf("%s: multilevel infeasible", c)
		}
		if out.K > out.M+2 {
			t.Errorf("%s: K=%d far above M=%d", c, out.K, out.M)
		}
	}
}
