// Package bench regenerates the FPART paper's experimental tables
// (Tables 1–6). For every method implemented in this repository — FPART
// (internal/core), the k-way.x baseline (internal/kwayx), and the
// flow-based baseline (internal/flow) — the harness measures fresh results
// on the synthetic benchmark suite; the remaining competitor columns
// (r+p.0, PROP, SC, WCDP) are reproduced from the paper as published
// reference values, clearly marked in the output.
package bench

// Published holds one row of published results; zero means "not reported"
// (rendered as "-").
type Published struct {
	KwayX   int // k-way.x (p,p) [11]
	RP0     int // r+p.0 (p,r,p) [11]
	PropOP  int // PROP (p,o,p) [12]
	PropROP int // PROP (p,r,o,p) [12]
	SC      int // set covering [3]
	WCDP    int // WINDOW clustering + DP [6]
	FBBMW   int // network flow [16]
	FPART   int // the paper's own result
	M       int // published lower bound
}

// Table2Published: partitioning into XC3020 devices.
var Table2Published = map[string]Published{
	"c3540":  {KwayX: 6, RP0: 6, PropOP: 6, PropROP: 6, FBBMW: 6, FPART: 6, M: 5},
	"c5315":  {KwayX: 9, RP0: 8, PropOP: 9, PropROP: 8, FBBMW: 8, FPART: 9, M: 7},
	"c6288":  {KwayX: 16, RP0: 16, PropOP: 12, PropROP: 12, FBBMW: 15, FPART: 15, M: 15},
	"c7552":  {KwayX: 10, RP0: 10, PropOP: 9, PropROP: 9, FBBMW: 9, FPART: 9, M: 9},
	"s5378":  {KwayX: 11, RP0: 10, PropOP: 11, PropROP: 9, FBBMW: 9, FPART: 9, M: 7},
	"s9234":  {KwayX: 10, RP0: 10, PropOP: 9, PropROP: 9, FBBMW: 8, FPART: 8, M: 8},
	"s13207": {KwayX: 23, RP0: 23, PropOP: 21, PropROP: 19, FBBMW: 18, FPART: 18, M: 16},
	"s15850": {KwayX: 19, RP0: 19, PropOP: 17, PropROP: 16, FBBMW: 15, FPART: 15, M: 15},
	"s38417": {KwayX: 46, RP0: 48, PropOP: 44, PropROP: 44, FBBMW: 41, FPART: 39, M: 39},
	"s38584": {KwayX: 60, RP0: 60, PropOP: 60, PropROP: 56, FBBMW: 54, FPART: 52, M: 51},
}

// Table3Published: partitioning into XC3042 devices.
var Table3Published = map[string]Published{
	"c3540":  {KwayX: 3, RP0: 3, PropOP: 2, PropROP: 2, FBBMW: 3, FPART: 3, M: 3},
	"c5315":  {KwayX: 5, RP0: 5, PropOP: 4, PropROP: 4, FBBMW: 4, FPART: 5, M: 4},
	"c6288":  {KwayX: 7, RP0: 7, PropOP: 6, PropROP: 5, FBBMW: 7, FPART: 7, M: 7},
	"c7552":  {KwayX: 4, RP0: 4, PropOP: 5, PropROP: 4, FBBMW: 4, FPART: 4, M: 4},
	"s5378":  {KwayX: 5, RP0: 4, PropOP: 4, PropROP: 4, FBBMW: 4, FPART: 4, M: 3},
	"s9234":  {KwayX: 4, RP0: 4, PropOP: 4, PropROP: 4, FBBMW: 4, FPART: 4, M: 4},
	"s13207": {KwayX: 11, RP0: 10, PropOP: 9, PropROP: 8, FBBMW: 9, FPART: 9, M: 8},
	"s15850": {KwayX: 8, RP0: 9, PropOP: 8, PropROP: 7, FBBMW: 8, FPART: 7, M: 7},
	"s38417": {KwayX: 20, RP0: 20, PropOP: 20, PropROP: 19, FBBMW: 18, FPART: 18, M: 18},
	"s38584": {KwayX: 27, RP0: 27, PropOP: 25, PropROP: 25, FBBMW: 23, FPART: 23, M: 23},
}

// Table4Published: partitioning into XC3090 devices. The paper splits this
// table into small circuits (where SC/WCDP/FBB-MW report nothing) and the
// four big ones.
var Table4Published = map[string]Published{
	"c3540":  {KwayX: 1, RP0: 1, FPART: 1, M: 1},
	"c5315":  {KwayX: 3, RP0: 3, FPART: 3, M: 3},
	"c6288":  {KwayX: 3, RP0: 3, FPART: 3, M: 3},
	"c7552":  {KwayX: 3, RP0: 3, FPART: 3, M: 3},
	"s5378":  {KwayX: 2, RP0: 2, FPART: 2, M: 2},
	"s9234":  {KwayX: 2, RP0: 2, FPART: 2, M: 2},
	"s13207": {KwayX: 7, RP0: 4, SC: 6, WCDP: 6, FBBMW: 5, FPART: 5, M: 4},
	"s15850": {KwayX: 4, RP0: 3, SC: 3, WCDP: 3, FBBMW: 3, FPART: 3, M: 3},
	"s38417": {KwayX: 9, RP0: 8, SC: 10, WCDP: 8, FBBMW: 8, FPART: 8, M: 8},
	"s38584": {KwayX: 14, RP0: 11, SC: 14, WCDP: 12, FBBMW: 11, FPART: 11, M: 11},
}

// Table5Published: partitioning into XC2064 devices (c-circuits only).
var Table5Published = map[string]Published{
	"c3540": {KwayX: 6, SC: 6, WCDP: 7, FBBMW: 6, FPART: 6, M: 6},
	"c5315": {KwayX: 11, SC: 12, WCDP: 12, FBBMW: 10, FPART: 10, M: 9},
	"c7552": {KwayX: 11, SC: 11, WCDP: 11, FBBMW: 10, FPART: 10, M: 10},
	"c6288": {KwayX: 14, SC: 14, WCDP: 14, FBBMW: 14, FPART: 14, M: 14},
}

// Table6Published: FPART CPU seconds on a SUN Sparc Ultra 5, per circuit
// and device; zero means not reported.
var Table6Published = map[string][4]float64{
	// XC3020, XC3042, XC3090, XC2064
	"c3540":  {15.59, 2.75, 1.00, 11.2},
	"c5315":  {43.99, 16.12, 6.15, 34.74},
	"c6288":  {89.14, 36.45, 10.83, 64.62},
	"c7552":  {46.23, 14.11, 6.05, 40.89},
	"s5378":  {52.09, 22.01, 3.87, 0},
	"s9234":  {59.47, 23.65, 3.45, 0},
	"s13207": {121.51, 95.18, 91.61, 0},
	"s15850": {156.25, 61.54, 15.61, 0},
	"s38417": {464.66, 131.48, 78.54, 0},
	"s38584": {875.26, 258.73, 184.12, 0},
}

// CircuitOrder is the paper's row order in Tables 1-3 and 6.
var CircuitOrder = []string{
	"c3540", "c5315", "c6288", "c7552",
	"s5378", "s9234", "s13207", "s15850", "s38417", "s38584",
}

// Table5Order is the paper's row order in Table 5.
var Table5Order = []string{"c3540", "c5315", "c7552", "c6288"}
