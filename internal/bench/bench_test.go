package bench

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/device"
	"fpart/internal/gen"
)

func TestPublishedTotalsMatchPaper(t *testing.T) {
	// The paper prints column totals; verify the transcription.
	cases := []struct {
		table map[string]Published
		get   func(Published) int
		want  int
		name  string
	}{
		{Table2Published, func(p Published) int { return p.KwayX }, 210, "T2 k-way.x"},
		{Table2Published, func(p Published) int { return p.RP0 }, 210, "T2 r+p.0"},
		{Table2Published, func(p Published) int { return p.PropOP }, 198, "T2 PROP(p,o,p)"},
		{Table2Published, func(p Published) int { return p.PropROP }, 188, "T2 PROP(p,r,o,p)"},
		{Table2Published, func(p Published) int { return p.FBBMW }, 183, "T2 FBB-MW"},
		{Table2Published, func(p Published) int { return p.FPART }, 180, "T2 FPART"},
		{Table2Published, func(p Published) int { return p.M }, 172, "T2 M"},
		{Table3Published, func(p Published) int { return p.KwayX }, 94, "T3 k-way.x"},
		{Table3Published, func(p Published) int { return p.RP0 }, 93, "T3 r+p.0"},
		{Table3Published, func(p Published) int { return p.PropOP }, 87, "T3 PROP(p,o,p)"},
		{Table3Published, func(p Published) int { return p.PropROP }, 82, "T3 PROP(p,r,o,p)"},
		{Table3Published, func(p Published) int { return p.FBBMW }, 84, "T3 FBB-MW"},
		{Table3Published, func(p Published) int { return p.FPART }, 84, "T3 FPART"},
		{Table3Published, func(p Published) int { return p.M }, 81, "T3 M"},
		{Table4Published, func(p Published) int { return p.KwayX }, 48, "T4 k-way.x"}, // 14+34
		{Table4Published, func(p Published) int { return p.RP0 }, 40, "T4 r+p.0"},     // 14+26
		{Table4Published, func(p Published) int { return p.SC }, 33, "T4 SC"},
		{Table4Published, func(p Published) int { return p.WCDP }, 29, "T4 WCDP"},
		{Table4Published, func(p Published) int { return p.FBBMW }, 27, "T4 FBB-MW"},
		{Table4Published, func(p Published) int { return p.FPART }, 41, "T4 FPART"}, // 14+27
		{Table4Published, func(p Published) int { return p.M }, 40, "T4 M"},         // 14+26
		{Table5Published, func(p Published) int { return p.KwayX }, 42, "T5 k-way.x"},
		{Table5Published, func(p Published) int { return p.SC }, 43, "T5 SC"},
		{Table5Published, func(p Published) int { return p.WCDP }, 44, "T5 WCDP"},
		{Table5Published, func(p Published) int { return p.FBBMW }, 40, "T5 FBB-MW"},
		{Table5Published, func(p Published) int { return p.FPART }, 40, "T5 FPART"},
		{Table5Published, func(p Published) int { return p.M }, 39, "T5 M"},
	}
	for _, c := range cases {
		if got := Totals(c.table, c.get); got != c.want {
			t.Errorf("%s: total = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRunSingle(t *testing.T) {
	out, err := Run("c3540", device.XC3090, FPART)
	if err != nil {
		t.Fatal(err)
	}
	if out.K != 1 || !out.Feasible || out.M != 1 {
		t.Errorf("c3540/XC3090 FPART: %+v, want K=1", out)
	}
}

func TestRunUnknownCircuit(t *testing.T) {
	if _, err := Run("nope", device.XC3020, FPART); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestRunAllMethods(t *testing.T) {
	for _, m := range []Method{FPART, KwayX, FlowMW} {
		out, err := Run("c3540", device.XC3042, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if out.K < out.M {
			t.Errorf("%v: K=%d < M=%d", m, out.K, out.M)
		}
		if !out.Feasible {
			t.Errorf("%v: infeasible on an easy instance", m)
		}
	}
}

func TestSuiteSmall(t *testing.T) {
	res, err := Suite([]string{"c3540", "s9234"}, device.XC3090, []Method{FPART, KwayX})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("suite rows = %d", len(res))
	}
	for c, row := range res {
		for m, out := range row {
			if out.K == 0 {
				t.Errorf("%s/%v: zero K", c, m)
			}
		}
	}
}

func TestWriteTable1(t *testing.T) {
	var buf bytes.Buffer
	WriteTable1(&buf)
	out := buf.String()
	for _, want := range []string{"c3540", "s38584", "373", "2904", "292"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestWriteDeviceTableBadNumber(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDeviceTable(&buf, 7); err == nil {
		t.Error("table 7 accepted")
	}
}

func TestWriteDeviceTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full partitioner suite")
	}
	var buf bytes.Buffer
	if err := WriteDeviceTable(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"XC2064", "c6288", "Total", "meas FPART"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 output missing %q", want)
		}
	}
}

func TestMethodString(t *testing.T) {
	if FPART.String() != "FPART" || KwayX.String() != "k-way.x" || FlowMW.String() != "flow-MW" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should render")
	}
}

func TestSuiteErrorPropagation(t *testing.T) {
	_, err := Suite([]string{"c3540", "doesnotexist"}, device.XC3090, []Method{FPART})
	if err == nil {
		t.Error("Suite swallowed the unknown-circuit error")
	}
}

func TestRunOnUnknownMethod(t *testing.T) {
	spec, _ := gen.ByName("c3540")
	h := gen.Generate(spec, device.XC3000)
	if _, err := RunOn(h, "c3540", device.XC3090, Method(99)); err == nil {
		t.Error("unknown method accepted")
	}
}
