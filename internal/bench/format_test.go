package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"text", "md", "csv"} {
		if _, err := ParseFormat(s); err != nil {
			t.Errorf("ParseFormat(%q): %v", s, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("xml accepted")
	}
}

func TestTableWriterMarkdown(t *testing.T) {
	var buf bytes.Buffer
	tw := newTableWriter(&buf, Markdown, nil)
	tw.header([]string{"a", "b"})
	tw.emit([]string{"1", "2"})
	out := buf.String()
	want := "| a | b |\n| --- | --- |\n| 1 | 2 |\n"
	if out != want {
		t.Errorf("markdown = %q, want %q", out, want)
	}
}

func TestTableWriterCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	tw := newTableWriter(&buf, CSV, nil)
	tw.header([]string{"name", "note"})
	tw.emit([]string{"x,y", `say "hi"`})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[1] != `"x,y","say ""hi"""` {
		t.Errorf("csv quoting = %q", lines[1])
	}
}

func TestTableWriterTextAlignment(t *testing.T) {
	var buf bytes.Buffer
	tw := newTableWriter(&buf, Text, []int{6, 4})
	tw.header([]string{"col", "v"})
	tw.emit([]string{"row", "7"})
	out := buf.String()
	if !strings.Contains(out, "col   ") {
		t.Errorf("left pad missing: %q", out)
	}
	if !strings.Contains(out, "   7") {
		t.Errorf("right align missing: %q", out)
	}
}
