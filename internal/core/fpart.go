// Package core implements FPART, the multi-way FPGA netlist partitioning
// algorithm of Krupnova & Saucier (DATE 1999).
//
// FPART finds a feasible partition of a circuit hypergraph into the minimum
// number k of blocks, each meeting the device constraints (S_MAX, T_MAX).
// It follows the recursive peeling paradigm (Algorithm 1 of the paper): at
// each iteration the remainder is bipartitioned by constructive seeding
// (§3.2) and the solution is refined by a schedule of guided iterative
// improvement passes (§3.1):
//
//	{R_k, P_k} = Bipartition(R_{k-1})
//	Improve(R_k, P_k)                      // the two newest blocks
//	if M <= N_small: Improve(all blocks)   // full Sanchis pass
//	Improve(P_MIN_size, R_k)               // smallest block
//	Improve(P_MIN_IO,   R_k)               // fewest-terminal block
//	Improve(P_MIN_F,    R_k)               // most free space (σ1, σ2 weights)
//	if k == M and M <= N_small:
//	    Improve(P_i, R_k) for every i      // final all-pairs sweep
//
// until the remainder itself meets the device constraints.
//
// Run is the primary entry point: it accepts a context.Context for
// cancellation and deadlines, and emits structured events and effort
// counters through internal/obs (Config.Sink, Result.Stats). Partition is
// the context-free convenience wrapper; Portfolio races several
// configurations concurrently, cancelling the losers once a provably
// optimal winner (feasible with K = M) is in.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
	"fpart/internal/seed"
)

// Config tunes FPART. The zero value selects every published parameter of
// §4: σ1 = σ2 = 0.5, N_small = 15, λ = (0.4, 0.6, 0.1), move windows
// (1.05, 0.95, 0.3), stack depth 4, 2-level gains.
type Config struct {
	// Engine configures the iterative-improvement engine (§3.3–§3.7).
	Engine sanchis.Config
	// Sigma1 and Sigma2 weight logic and I/O occupation in the free-space
	// estimate F = σ1·(S_MAX−S_i)/S_MAX + σ2·(T_MAX−T_i)/T_MAX (§3.1).
	Sigma1, Sigma2 float64
	// NSmall separates the small-k and big-k improvement strategies (§3.1).
	NSmall int
	// DisableSchedule reduces the improvement schedule to the single
	// newest-pair pass (ablation switch; approximates the k-way.x baseline
	// strategy).
	DisableSchedule bool
	// MaxBlocks caps the iteration count for termination safety; zero
	// selects 4·M+32.
	MaxBlocks int
	// DisableAbsorb turns off the final absorption pass that dissolves
	// small leftover blocks into the free space of the others once a
	// feasible solution exists. Absorption is this implementation's
	// endgame counterpart to the paper's k = M all-pairs sweep; it can
	// only reduce K and never breaks feasibility.
	DisableAbsorb bool
	// Sink, when non-nil, receives one obs.Event per algorithm step
	// (bipartitions, improvement passes, stack restarts, repairs,
	// absorptions), mirroring Figure 1. Use obs.NewTextSink for the
	// classic line trace or obs.NewJSONSink for machine consumption. The
	// sink is invoked synchronously; Portfolio serializes shared sinks.
	Sink obs.Sink
	// Label tags this configuration's events (obs.Event.Source).
	// Portfolio fills it with "portfolio[i]" when empty.
	Label string
	// SpecWidth is the speculative peeling width: at every Algorithm 1
	// step, race this many candidate bipartitions (candidate 0 is this
	// configuration, the rest cycle the DefaultPortfolio engine variants)
	// and adopt the one with the best §3.4 solution key. Values ≤ 1 select
	// the classic sequential peel. The candidate set is fixed by the width
	// alone and ties break to the lowest candidate index, so the result is
	// deterministic at any Budget capacity and any goroutine schedule.
	SpecWidth int
	// Budget, when non-nil, caps the extra goroutines speculation may
	// spawn (candidates that find no free token run on the caller's
	// goroutine). Share one Budget across runs, portfolio members, and
	// daemon jobs to bound total CPU oversubscription.
	Budget *Budget
}

func (c Config) normalize() Config {
	if c.Sigma1 == 0 && c.Sigma2 == 0 {
		c.Sigma1, c.Sigma2 = 0.5, 0.5
	}
	if c.NSmall == 0 {
		c.NSmall = 15
	}
	if c.Engine == (sanchis.Config{}) {
		c.Engine = sanchis.Default()
	}
	if c.SpecWidth < 1 {
		c.SpecWidth = 1
	}
	return c
}

// Default returns the published configuration.
func Default() Config { return Config{}.normalize() }

// Stats aggregates algorithm effort counters; it is an alias for obs.Stats
// (see that package for the field catalogue).
type Stats = obs.Stats

// Result is the outcome of a Run call.
type Result struct {
	// Partition holds the final assignment. When Feasible is true every
	// block meets the device constraints.
	Partition *partition.Partition
	// K is the number of non-empty blocks in the final solution.
	K int
	// M is the theoretical lower bound on the block count.
	M int
	// Feasible reports whether a fully feasible solution was reached.
	Feasible bool
	Stats    Stats
	Elapsed  time.Duration
}

// Blocks returns the node sets of the non-empty blocks.
func (r *Result) Blocks() [][]hypergraph.NodeID {
	var out [][]hypergraph.NodeID
	for b := 0; b < r.Partition.NumBlocks(); b++ {
		if r.Partition.Nodes(partition.BlockID(b)) > 0 {
			out = append(out, r.Partition.NodesIn(partition.BlockID(b)))
		}
	}
	return out
}

// ErrUnsplittable is returned when the circuit contains a node that can
// never fit the device on its own.
var ErrUnsplittable = errors.New("core: circuit contains a node larger than the device capacity")

// Partition runs FPART on circuit h targeting device dev. It is Run with a
// background context.
func Partition(h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	return Run(context.Background(), h, dev, cfg)
}

// Run executes FPART on circuit h targeting device dev. When ctx is
// cancelled or its deadline passes, Run aborts promptly — mid-pass, via the
// engine's cancellation polling — and returns ctx's error; the partial
// solution is discarded. Structured events flow to cfg.Sink and effort
// counters land in Result.Stats.
func Run(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	start := time.Now()
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if h.NumNodes() == 0 {
		return nil, errors.New("core: empty circuit")
	}
	resCols := make([][]int32, len(dev.Resources))
	for ri, r := range dev.Resources {
		resCols[ri] = h.ResourceColumn(r.Name)
	}
	// Columnar accessors, not h.Node(id): the full Node is only needed on
	// the (cold) error paths, and materializing the 64-byte struct per
	// cell makes this scan the dominant cost of trivially-feasible runs.
	smax := dev.SMax()
	for _, id := range h.InteriorIDs() {
		if h.SizeOf(id) > smax {
			return nil, fmt.Errorf("%w: node %q has size %d > S_MAX %d",
				ErrUnsplittable, h.Node(id).Name, h.SizeOf(id), smax)
		}
		if dev.AuxCap > 0 && h.AuxOf(id) > dev.AuxCap {
			return nil, fmt.Errorf("%w: node %q needs %d secondary resources > cap %d",
				ErrUnsplittable, h.Node(id).Name, h.AuxOf(id), dev.AuxCap)
		}
		for ri, r := range dev.Resources {
			if resCols[ri] != nil && int(resCols[ri][id]) > r.Cap {
				return nil, fmt.Errorf("%w: node %q needs %d %s > cap %d",
					ErrUnsplittable, h.Node(id).Name, resCols[ri][id], r.Name, r.Cap)
			}
		}
	}
	cfg = cfg.normalize()
	em := obs.NewEmitter(cfg.Sink, cfg.Label)

	p := partition.New(h, dev)
	m := device.LowerBound(h, dev)
	ecfg := cfg.Engine
	ecfg.Obs = em
	eng := getEngine(p, ecfg)
	defer putEngine(eng)
	cost := cfg.Engine.Cost
	if cost == (partition.CostParams{}) {
		cost = partition.DefaultCost()
	}
	rem := partition.BlockID(0)
	res := &Result{Partition: p, M: m}
	res.Stats.PeakBlocks = p.NumBlocks()
	maxBlocks := cfg.MaxBlocks
	if maxBlocks == 0 {
		maxBlocks = 4*m + 32
	}

	em.Emit(obs.Event{Type: obs.RunStart, M: m})
	cancelled := func(err error) (*Result, error) {
		em.Emit(obs.Event{Type: obs.Cancelled})
		return nil, err
	}

	r := &runState{
		ctx: ctx, cfg: cfg, dev: dev,
		p: p, eng: eng, cost: cost, rem: rem, m: m,
		st: &res.Stats, em: em,
	}
	var spec *speculator
	if cfg.SpecWidth > 1 {
		spec = newSpeculator(cfg)
	}

	for !p.Feasible(rem) {
		if err := ctx.Err(); err != nil {
			return cancelled(err)
		}
		if p.NumBlocks() >= maxBlocks {
			break // bail out; Feasible stays false
		}
		var (
			out peelOutcome
			err error
		)
		if spec != nil {
			out, err = spec.round(r)
		} else {
			out, err = r.peelStep()
		}
		if err != nil {
			return cancelled(err)
		}
		if out != peelProgress {
			break
		}
	}

	res.Feasible = p.Classify() == partition.FeasibleSolution
	if res.Feasible && !cfg.DisableAbsorb {
		t0 := time.Now()
		var snapBuf partition.Snapshot
		for ctx.Err() == nil && absorbSmallest(p, &snapBuf, &res.Stats, em) {
		}
		res.Stats.PhaseTime[obs.PhaseAbsorb] += time.Since(t0)
		if err := ctx.Err(); err != nil {
			return cancelled(err)
		}
	}
	res.K = nonEmptyBlocks(p)
	res.Elapsed = time.Since(start)
	em.Emit(obs.Event{Type: obs.RunEnd, K: res.K, M: m, Feasible: res.Feasible})
	return res, nil
}

// peelOutcome reports how one Algorithm 1 step left the trajectory.
type peelOutcome uint8

const (
	// peelProgress: a block was carved and improved; keep peeling.
	peelProgress peelOutcome = iota
	// peelStuck: seeding found no bipartition; the loop must stop.
	peelStuck
	// peelDone: the remainder emptied out entirely; the partition is final.
	peelDone
)

// runState bundles one peeling trajectory: the partition being grown, the
// engine improving it, and the stats/event stream describing it. The main
// run owns one; every speculation candidate gets its own over an arena
// clone, with iter carried over so candidate events continue the main
// iteration numbering.
type runState struct {
	ctx  context.Context
	cfg  Config
	dev  device.Device
	p    *partition.Partition
	eng  *sanchis.Engine
	cost partition.CostParams
	rem  partition.BlockID
	m    int
	iter int // Algorithm 1 iteration counter for event labelling
	st   *Stats
	em   *obs.Emitter
}

// improve runs one schedule step and folds the engine counters into the
// trajectory stats; it returns ctx's error when the step was cut short.
func (r *runState) improve(label string, blocks ...partition.BlockID) error {
	t0 := time.Now()
	st, err := r.eng.ImproveCtx(r.ctx, blocks, r.rem, r.m)
	r.st.PhaseTime[obs.PhaseImprove] += time.Since(t0)
	r.st.ImproveCalls++
	r.st.Passes += st.Passes
	r.st.MovesEvaluated += st.MovesEvaluated
	r.st.MovesApplied += st.MovesApplied
	r.st.MovesGated += st.MovesGated
	r.st.BucketOps += st.BucketOps
	r.st.Restarts += st.Restarts
	if r.em.Enabled() {
		r.em.Emit(obs.Event{
			Type: obs.ImprovePass, Iteration: r.iter,
			Label: label, Blocks: blockInts(blocks),
			Passes: st.Passes, Moves: st.MovesApplied, Improved: st.Improved,
		})
	}
	return err
}

// peelStep executes one full Algorithm 1 iteration — seed a bipartition,
// run the improvement schedule, repair semi-feasibility — and reports how
// it left the trajectory. An error is the context's, already folded into
// the partial step.
func (r *runState) peelStep() (peelOutcome, error) {
	r.iter++
	r.st.Iterations++
	r.em.Emit(obs.Event{Type: obs.BipartitionStart, Iteration: r.iter})
	t0 := time.Now()
	pk, ok := seed.Best(r.p, r.rem, r.dev, r.cost, r.m)
	r.st.PhaseTime[obs.PhaseSeed] += time.Since(t0)
	if !ok {
		return peelStuck, nil
	}
	if r.p.NumBlocks() > r.st.PeakBlocks {
		r.st.PeakBlocks = r.p.NumBlocks()
	}
	r.em.Emit(obs.Event{
		Type: obs.BipartitionEnd, Iteration: r.iter,
		Block: int(pk), Size: r.p.Size(pk), Terminals: r.p.Terminals(pk),
	})

	if err := r.improve("pair(R,Pk)", r.rem, pk); err != nil {
		return peelProgress, err
	}
	if !r.cfg.DisableSchedule {
		if r.m <= r.cfg.NSmall {
			if err := r.improve("all", allBlocks(r.p)...); err != nil {
				return peelProgress, err
			}
		}
		schedule := []struct {
			label string
			pick  func() partition.BlockID
		}{
			{"pair(Pmin_size,R)", func() partition.BlockID { return minSizeBlock(r.p, r.rem) }},
			{"pair(Pmin_IO,R)", func() partition.BlockID { return minIOBlock(r.p, r.rem) }},
			{"pair(Pmax_F,R)", func() partition.BlockID { return maxFreeBlock(r.p, r.rem, r.cfg.Sigma1, r.cfg.Sigma2) }},
		}
		prev := pk
		for _, s := range schedule {
			b := s.pick()
			if b == partition.NoBlock || b == prev {
				continue
			}
			if err := r.improve(s.label, b, r.rem); err != nil {
				return peelProgress, err
			}
			prev = b
		}
		if r.p.NumBlocks() == r.m && r.m <= r.cfg.NSmall {
			for b := 0; b < r.p.NumBlocks(); b++ {
				if partition.BlockID(b) != r.rem {
					if err := r.improve("final-pair", partition.BlockID(b), r.rem); err != nil {
						return peelProgress, err
					}
				}
			}
		}
	}

	t0 = time.Now()
	repairNonRemainder(r.p, r.rem, r.st, r.em)
	r.st.PhaseTime[obs.PhaseRepair] += time.Since(t0)

	if r.p.Nodes(r.rem) == 0 {
		return peelDone, nil
	}
	return peelProgress, nil
}

// blockInts converts block IDs for an event payload.
func blockInts(blocks []partition.BlockID) []int {
	out := make([]int, len(blocks))
	for i, b := range blocks {
		out[i] = int(b)
	}
	return out
}

// absorbSmallest tries to dissolve the smallest non-empty block by moving
// each of its nodes into the feasible block with the strongest net
// affinity. On failure the partition is restored. snapBuf is a reusable
// rollback snapshot owned by the caller so the absorb loop allocates at
// most once. Reports whether a block was dissolved.
func absorbSmallest(p *partition.Partition, snapBuf *partition.Snapshot, st *Stats, em *obs.Emitter) bool {
	target := partition.NoBlock
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) == 0 {
			continue
		}
		if target == partition.NoBlock || p.Size(id) < p.Size(target) ||
			(p.Size(id) == p.Size(target) && p.Nodes(id) < p.Nodes(target)) {
			target = id
		}
	}
	if target == partition.NoBlock || nonEmptyBlocks(p) < 2 {
		return false
	}
	h := p.Hypergraph()
	*snapBuf = p.SnapshotInto(*snapBuf)
	snap := *snapBuf
	for p.Nodes(target) > 0 {
		moved := false
		// Take the node with the strongest pull toward some other block.
		type cand struct {
			v  hypergraph.NodeID
			to partition.BlockID
			w  int
		}
		best := cand{v: -1, to: partition.NoBlock, w: -1}
		for _, v := range p.NodesIn(target) {
			affinity := map[partition.BlockID]int{}
			for _, e := range h.Nets(v) {
				for _, b := range p.Blocks(e, nil) {
					if b != target {
						affinity[b]++
					}
				}
			}
			for b := 0; b < p.NumBlocks(); b++ {
				id := partition.BlockID(b)
				if id == target || p.Nodes(id) == 0 {
					continue
				}
				if w := affinity[id]; w > best.w {
					best = cand{v: v, to: id, w: w}
				}
			}
		}
		if best.to == partition.NoBlock {
			p.Restore(snap)
			return false
		}
		// Prefer the affinity-ranked target but accept any feasible one.
		order := []partition.BlockID{best.to}
		for b := 0; b < p.NumBlocks(); b++ {
			id := partition.BlockID(b)
			if id != target && id != best.to && p.Nodes(id) > 0 {
				order = append(order, id)
			}
		}
		for _, to := range order {
			p.Move(best.v, to)
			if p.Feasible(to) {
				moved = true
				break
			}
			p.Move(best.v, target)
		}
		if !moved {
			p.Restore(snap)
			return false
		}
	}
	if p.Classify() != partition.FeasibleSolution {
		p.Restore(snap)
		return false
	}
	st.Absorbed++
	em.Emit(obs.Event{Type: obs.Absorb, Block: int(target)})
	return true
}

// Portfolio runs FPART once per configuration (concurrently — the
// hypergraph is read-only) and returns the best result: feasible beats
// infeasible, then fewer devices, then fewer total terminals. It realizes
// the classical "number of runs" FM parameter (§1) as a deterministic
// strategy portfolio rather than random restarts.
//
// When a member finishes feasible at the lower bound (K = M — no other
// configuration can beat it on the device count), the remaining members
// are cancelled; their context.Canceled errors are absorbed. Cancelling
// ctx itself aborts every member and returns ctx's error. Member sinks are
// wrapped with one shared lock, so several configurations may point at the
// same obs.Sink.
func Portfolio(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, cfgs []Config) (*Result, error) {
	if len(cfgs) == 0 {
		cfgs = DefaultPortfolio()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	members := make([]Config, len(cfgs))
	copy(members, cfgs)
	var sinkMu sync.Mutex
	for i := range members {
		members[i].Sink = obs.Locked(&sinkMu, members[i].Sink)
		if members[i].Label == "" {
			members[i].Label = fmt.Sprintf("portfolio[%d]", i)
		}
	}

	type slot struct {
		res *Result
		err error
	}
	out := make([]slot, len(members))
	runOne := func(i int) {
		res, err := Run(runCtx, h, dev, members[i])
		out[i] = slot{res, err}
		if err == nil && res.Feasible && res.K == res.M {
			cancel() // provably optimal: stop the losing members
		}
	}
	// Member 0 runs on the caller's goroutine (whose budget token, if any,
	// the caller already holds); the others spawn only when their budget
	// has spare tokens and fall back to sequential execution otherwise, so
	// a saturated machine degrades to the classic one-by-one portfolio.
	var wg sync.WaitGroup
	spawned := make([]bool, len(members))
	for i := 1; i < len(members); i++ {
		if members[i].Budget.TryAcquire() {
			spawned[i] = true
			wg.Add(1)
			// Tag profiler samples on portfolio goroutines with the member
			// they run, so concurrent-run profiles split by strategy.
			labels := pprof.Labels("method", "portfolio", "candidate", members[i].Label)
			go func(i int) {
				pprof.Do(runCtx, labels, func(context.Context) {
					defer wg.Done()
					defer members[i].Budget.Release()
					runOne(i)
				})
			}(i)
		}
	}
	runOne(0)
	for i := 1; i < len(members); i++ {
		if !spawned[i] {
			runOne(i)
		}
	}
	wg.Wait()

	var best *Result
	var firstErr error
	for _, s := range out {
		if s.err != nil {
			// A member cancelled by the winner's cancel() is not a
			// failure; a parent-context cancellation is handled below.
			if !errors.Is(s.err, context.Canceled) && !errors.Is(s.err, context.DeadlineExceeded) && firstErr == nil {
				firstErr = s.err
			}
			continue
		}
		if best == nil || betterResult(s.res, best) {
			best = s.res
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, context.Canceled
	}
	return best, nil
}

// betterResult orders portfolio outcomes.
func betterResult(a, b *Result) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if a.K != b.K {
		return a.K < b.K
	}
	return a.Partition.TerminalSum() < b.Partition.TerminalSum()
}

// DefaultPortfolio returns the strategy mix used by Portfolio when no
// configurations are given: the published configuration, the pin-gain
// variant (§5 future work), a deeper-stack variant, and a no-windows
// variant for circuits where the regions trap the search.
func DefaultPortfolio() []Config {
	published := Default()
	pin := Default()
	pin.Engine.PinGain = true
	deep := Default()
	deep.Engine.StackDepth = 8
	open := Default()
	open.Engine.DisableWindows = true
	return []Config{published, pin, deep, open}
}

// allBlocks lists every current block.
func allBlocks(p *partition.Partition) []partition.BlockID {
	out := make([]partition.BlockID, p.NumBlocks())
	for i := range out {
		out[i] = partition.BlockID(i)
	}
	return out
}

// nonEmptyBlocks counts blocks holding at least one node.
func nonEmptyBlocks(p *partition.Partition) int {
	n := 0
	for b := 0; b < p.NumBlocks(); b++ {
		if p.Nodes(partition.BlockID(b)) > 0 {
			n++
		}
	}
	return n
}

// minSizeBlock returns the non-remainder, non-empty block with the smallest
// size (§3.1, P_MIN_size). NoBlock when none exists.
func minSizeBlock(p *partition.Partition, rem partition.BlockID) partition.BlockID {
	best := partition.NoBlock
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if id == rem || p.Nodes(id) == 0 {
			continue
		}
		if best == partition.NoBlock || p.Size(id) < p.Size(best) {
			best = id
		}
	}
	return best
}

// minIOBlock returns the non-remainder block with the fewest terminals
// (§3.1, P_MIN_IO).
func minIOBlock(p *partition.Partition, rem partition.BlockID) partition.BlockID {
	best := partition.NoBlock
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if id == rem || p.Nodes(id) == 0 {
			continue
		}
		if best == partition.NoBlock || p.Terminals(id) < p.Terminals(best) {
			best = id
		}
	}
	return best
}

// maxFreeBlock returns the non-remainder block with the greatest free-space
// estimate F = σ1·(S_MAX−S_i)/S_MAX + σ2·(T_MAX−T_i)/T_MAX (§3.1, P_MIN_F).
func maxFreeBlock(p *partition.Partition, rem partition.BlockID, s1, s2 float64) partition.BlockID {
	dev := p.Device()
	smax, tmax := float64(dev.SMax()), float64(dev.TMax())
	best := partition.NoBlock
	bestF := 0.0
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if id == rem || p.Nodes(id) == 0 {
			continue
		}
		f := s1*(smax-float64(p.Size(id)))/smax + s2*(tmax-float64(p.Terminals(id)))/tmax
		if best == partition.NoBlock || f > bestF {
			best, bestF = id, f
		}
	}
	return best
}

// repairNonRemainder restores semi-feasibility: any non-remainder block
// still violating the device constraints sheds its least-connected cells
// back to the remainder until it fits. Only semi-feasible solutions are
// accepted between Algorithm 1 steps (§3.5), and the improvement passes'
// best-key selection almost always delivers that already; this is the
// safety net for adversarial inputs.
func repairNonRemainder(p *partition.Partition, rem partition.BlockID, st *Stats, em *obs.Emitter) {
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if id == rem || p.Feasible(id) {
			continue
		}
		shed := 0
		for !p.Feasible(id) && p.Nodes(id) > 0 {
			v := worstCell(p, id)
			p.Move(v, rem)
			shed++
			st.MovesApplied++
		}
		em.Emit(obs.Event{Type: obs.Repair, Block: int(id), Moves: shed})
	}
}

// worstCell returns the cell of block b with the fewest pins on nets
// internal to b (the loosest-bound cell), preferring larger cells when the
// block is size-infeasible.
func worstCell(p *partition.Partition, b partition.BlockID) hypergraph.NodeID {
	h := p.Hypergraph()
	dev := p.Device()
	sizeViolated := p.Size(b) > dev.SMax()
	auxViolated := dev.AuxCap > 0 && p.Aux(b) > dev.AuxCap
	// For R>1 devices, prefer shedding cells that demand an overflowing
	// resource axis — moving DSP-free cells out of a DSP-overfull block
	// can never repair it.
	var resViolated []bool
	for r := 0; r < p.NumRes(); r++ {
		if p.Res(b, r) > p.ResCap(r) {
			if resViolated == nil {
				resViolated = make([]bool, p.NumRes())
			}
			resViolated[r] = true
		}
	}
	var best hypergraph.NodeID = -1
	bestScore := 0
	for _, v := range p.NodesIn(b) {
		internal := 0
		for _, e := range h.Nets(v) {
			if p.Span(e) == 1 {
				internal++
			}
		}
		score := -internal
		if sizeViolated {
			score += h.Node(v).Size * 8
		}
		if auxViolated {
			score += h.Node(v).Aux * 8
		}
		for r := range resViolated {
			if resViolated[r] {
				score += p.ResDemandOf(v, r) * 8
			}
		}
		if best < 0 || score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}
