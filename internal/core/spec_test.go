package core

// Tests for speculative peeling (spec.go), the Budget semaphore, and the
// arena/engine pools.

import (
	"context"
	"testing"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// assignment flattens the final block of every node for exact comparison.
func assignment(p *partition.Partition) []partition.BlockID {
	out := make([]partition.BlockID, p.Hypergraph().NumNodes())
	for v := range out {
		out[v] = p.Block(hypergraph.NodeID(v))
	}
	return out
}

func equalAssign(a, b []partition.BlockID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func genInstance(t testing.TB, name string) *hypergraph.Hypergraph {
	t.Helper()
	spec, ok := gen.ByName(name)
	if !ok {
		t.Fatalf("spec %s missing", name)
	}
	return gen.Generate(spec, device.XC3000)
}

// TestSpeculativeNotWorseThanSequential is the differential guarantee of
// the speculation design: adopting the per-step key winner can only match
// or beat committing to the base candidate.
func TestSpeculativeNotWorseThanSequential(t *testing.T) {
	cases := []struct {
		circuit string
		dev     device.Device
	}{
		{"c3540", device.XC3042},
		{"c5315", device.XC3042}, // speculation saves a whole device here
		{"s5378", device.XC3042},
		{"s9234", device.XC3090},
	}
	for _, tc := range cases {
		t.Run(tc.circuit, func(t *testing.T) {
			h := genInstance(t, tc.circuit)
			seq, err := Partition(h, tc.dev, Default())
			if err != nil {
				t.Fatal(err)
			}
			cfg := Default()
			cfg.SpecWidth = 4
			spec, err := Partition(h, tc.dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Partition.Validate(); err != nil {
				t.Fatal(err)
			}
			if betterResult(seq, spec) {
				t.Errorf("speculative (feasible=%v K=%d T=%d) worse than sequential (feasible=%v K=%d T=%d)",
					spec.Feasible, spec.K, spec.Partition.TerminalSum(),
					seq.Feasible, seq.K, seq.Partition.TerminalSum())
			}
			if spec.Stats.SpecRounds == 0 {
				t.Error("width-4 run recorded no speculative rounds")
			}
			if spec.Stats.SpecLosses != 3*spec.Stats.SpecRounds {
				t.Errorf("SpecLosses = %d, want 3 per round over %d rounds",
					spec.Stats.SpecLosses, spec.Stats.SpecRounds)
			}
		})
	}
}

// TestSpeculativeDeterministicAcrossBudgets: the Budget shapes concurrency
// only; the adopted solution must be bit-identical at every capacity.
func TestSpeculativeDeterministicAcrossBudgets(t *testing.T) {
	h := genInstance(t, "c3540")
	budgets := []*Budget{nil, NewBudget(1), NewBudget(4)}
	var want []partition.BlockID
	for trial := 0; trial < 2; trial++ {
		for bi, b := range budgets {
			cfg := Default()
			cfg.SpecWidth = 4
			cfg.Budget = b
			r, err := Partition(h, device.XC3042, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := assignment(r.Partition)
			if want == nil {
				want = got
				continue
			}
			if !equalAssign(want, got) {
				t.Fatalf("trial %d budget[%d]: assignment diverged from first run", trial, bi)
			}
		}
	}
}

// TestSpeculativeEmitsWinLossEvents checks the per-candidate observability
// contract: one spec-win and width-1 spec-losses per round, with variant
// labels from the fixed cycle.
func TestSpeculativeEmitsWinLossEvents(t *testing.T) {
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	var c obs.Collector
	cfg := Default()
	cfg.SpecWidth = 3
	cfg.Sink = &c
	r, err := Partition(h, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	wins, losses := c.Count(obs.SpecWin), c.Count(obs.SpecLoss)
	if wins != r.Stats.SpecRounds {
		t.Errorf("spec-win events = %d, want one per round (%d)", wins, r.Stats.SpecRounds)
	}
	if losses != r.Stats.SpecLosses || losses != 2*r.Stats.SpecRounds {
		t.Errorf("spec-loss events = %d, stats = %d, rounds = %d",
			losses, r.Stats.SpecLosses, r.Stats.SpecRounds)
	}
	valid := map[string]bool{"base": true, "pin-gain": true, "deep-stack": true, "open-windows": true}
	for _, ev := range c.Events() {
		if ev.Type == obs.SpecWin || ev.Type == obs.SpecLoss {
			if !valid[ev.Label] {
				t.Errorf("unknown candidate label %q", ev.Label)
			}
			if ev.Candidate < 0 || ev.Candidate >= 3 {
				t.Errorf("candidate index %d out of range", ev.Candidate)
			}
		}
	}
}

// TestSpeculativeCancellation: a pre-cancelled context must abort a
// speculative run exactly like a sequential one.
func TestSpeculativeCancellation(t *testing.T) {
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Default()
	cfg.SpecWidth = 4
	if _, err := Run(ctx, h, dev, cfg); err == nil {
		t.Fatal("cancelled speculative run returned no error")
	}
}

// TestEnginePoolDeterminism: repeated runs in one process draw pooled
// engines and arenas; their trajectories must match a fresh process's
// first run exactly.
func TestEnginePoolDeterminism(t *testing.T) {
	h := genInstance(t, "c3540")
	var want []partition.BlockID
	for trial := 0; trial < 3; trial++ {
		r, err := Partition(h, device.XC3042, Default())
		if err != nil {
			t.Fatal(err)
		}
		got := assignment(r.Partition)
		if want == nil {
			want = got
		} else if !equalAssign(want, got) {
			t.Fatalf("trial %d: pooled-engine run diverged", trial)
		}
	}
}

func TestBudgetSemantics(t *testing.T) {
	b := NewBudget(2)
	if b.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", b.Cap())
	}
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("fresh budget refused its capacity")
	}
	if b.TryAcquire() {
		t.Fatal("budget over-granted")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("released token not reusable")
	}
	if err := NewBudget(0); err.Cap() != 1 {
		t.Errorf("NewBudget(0) capacity = %d, want clamp to 1", err.Cap())
	}

	// Acquire honours the context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	full := NewBudget(1)
	full.TryAcquire()
	if err := full.Acquire(ctx); err == nil {
		t.Error("Acquire on a full budget ignored a dead context")
	}

	// The nil budget is unlimited and inert.
	var nb *Budget
	if !nb.TryAcquire() {
		t.Error("nil budget refused")
	}
	if err := nb.Acquire(context.Background()); err != nil {
		t.Error("nil budget Acquire errored")
	}
	nb.Release()
	if nb.Cap() != 0 {
		t.Error("nil budget reports capacity")
	}
}

// TestPortfolioUnderUnitBudget: a one-token budget degrades the portfolio
// to sequential execution but must still produce a valid best result.
func TestPortfolioUnderUnitBudget(t *testing.T) {
	h := ringOfClusters(t, 3, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	cfgs := DefaultPortfolio()
	b := NewBudget(1)
	for i := range cfgs {
		cfgs[i].Budget = b
	}
	r, err := Portfolio(context.Background(), h, dev, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
}
