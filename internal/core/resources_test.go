package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// dspChain builds n chained unit-size cells, each demanding one DSP.
func dspChain(t *testing.T, n int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	var set []hypergraph.NodeID
	for i := 0; i < n; i++ {
		id := b.AddInterior("v", 1)
		b.SetResource(id, "DSP", 1)
		set = append(set, id)
	}
	for i := 0; i+1 < n; i++ {
		b.AddNet("e", set[i], set[i+1])
	}
	return b.MustBuild()
}

// TestResourceUnsplittable: a single node whose DSP demand exceeds the
// device's DSP cap can never be placed, and the error must name the
// offending node and resource.
func TestResourceUnsplittable(t *testing.T) {
	var b hypergraph.Builder
	v := b.AddInterior("dsp-hog", 1)
	w := b.AddInterior("w", 1)
	b.SetResource(v, "DSP", 9)
	b.AddNet("n", v, w)
	h := b.MustBuild()

	dev := device.Device{Name: "d", DatasheetCells: 50, Pins: 64, Fill: 1.0,
		Resources: []device.Resource{{Name: "DSP", Cap: 4}}}
	_, err := Run(context.Background(), h, dev, Default())
	if !errors.Is(err, ErrUnsplittable) {
		t.Fatalf("err = %v, want ErrUnsplittable", err)
	}
	for _, want := range []string{"dsp-hog", "DSP"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should name %q: %v", want, err)
		}
	}
}

// TestResourceCapsForceMoreBlocks is the DSP-tight acceptance case: a
// 40-cell chain is scalar-feasible on one 50-cell device, but with each
// cell demanding a DSP and the device capping DSPs at 10, the flat engine
// must peel at least ⌈40/10⌉ = 4 blocks, every one within the DSP cap.
func TestResourceCapsForceMoreBlocks(t *testing.T) {
	h := dspChain(t, 40)
	scalar := device.Device{Name: "big", DatasheetCells: 50, Pins: 64, Fill: 1.0}
	rs, err := Run(context.Background(), h, scalar, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Feasible || rs.K != 1 {
		t.Fatalf("scalar run: K=%d feasible=%v, want one feasible block", rs.K, rs.Feasible)
	}

	vdev := scalar
	vdev.Resources = []device.Resource{{Name: "DSP", Cap: 10}}
	rv, err := Run(context.Background(), h, vdev, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !rv.Feasible {
		t.Fatalf("vector run infeasible: K=%d M=%d", rv.K, rv.M)
	}
	if rv.M != 4 {
		t.Errorf("M = %d, want 4 (LowerBound must count the DSP axis)", rv.M)
	}
	if rv.K < 4 {
		t.Errorf("K = %d, want >= 4 (DSP cap 10 over 40 demands)", rv.K)
	}
	p := rv.Partition
	if p.NumRes() != 1 {
		t.Fatalf("NumRes = %d, want 1", p.NumRes())
	}
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) == 0 {
			continue
		}
		if got := p.Res(id, 0); got > 10 {
			t.Errorf("block %d holds %d DSPs > cap 10", b, got)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
