package core_test

import (
	"fmt"
	"log"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// ExamplePartition partitions a two-cluster circuit onto a small device.
func ExamplePartition() {
	var b hypergraph.Builder
	var left, right []hypergraph.NodeID
	for i := 0; i < 6; i++ {
		left = append(left, b.AddInterior(fmt.Sprintf("l%d", i), 1))
		right = append(right, b.AddInterior(fmt.Sprintf("r%d", i), 1))
	}
	for i := 0; i+1 < 6; i++ {
		b.AddNet("lnet", left[i], left[i+1])
		b.AddNet("rnet", right[i], right[i+1])
	}
	b.AddNet("bridge", left[5], right[0])
	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	dev := device.Device{Name: "toy", Family: device.XC3000, DatasheetCells: 8, Pins: 16, Fill: 1.0}
	res, err := core.Partition(h, dev, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("devices=%d feasible=%v cut=%d\n", res.K, res.Feasible, res.Partition.Cut())
	// Output:
	// devices=2 feasible=true cut=1
}
