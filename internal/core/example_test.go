package core_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
)

// twoClusters builds the example circuit: two 6-cell chains joined by one
// bridge net — the minimum cut is the bridge.
func twoClusters() *hypergraph.Hypergraph {
	var b hypergraph.Builder
	var left, right []hypergraph.NodeID
	for i := 0; i < 6; i++ {
		left = append(left, b.AddInterior(fmt.Sprintf("l%d", i), 1))
		right = append(right, b.AddInterior(fmt.Sprintf("r%d", i), 1))
	}
	for i := 0; i+1 < 6; i++ {
		b.AddNet("lnet", left[i], left[i+1])
		b.AddNet("rnet", right[i], right[i+1])
	}
	b.AddNet("bridge", left[5], right[0])
	return b.MustBuild()
}

var toyDevice = device.Device{Name: "toy", Family: device.XC3000, DatasheetCells: 8, Pins: 16, Fill: 1.0}

// ExamplePartition partitions a two-cluster circuit onto a small device.
func ExamplePartition() {
	res, err := core.Partition(twoClusters(), toyDevice, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("devices=%d feasible=%v cut=%d\n", res.K, res.Feasible, res.Partition.Cut())
	// Output:
	// devices=2 feasible=true cut=1
}

// ExampleRun traces a run: the sink receives one structured event per
// algorithm step, and Result.Stats aggregates the effort counters.
func ExampleRun() {
	var events obs.Collector
	cfg := core.Default()
	cfg.Sink = &events

	res, err := core.Run(context.Background(), twoClusters(), toyDevice, cfg)
	if err != nil {
		log.Fatal(err)
	}

	evs := events.Events()
	fmt.Printf("first=%s last=%s\n", evs[0].Type, evs[len(evs)-1].Type)
	fmt.Printf("bipartitions=%d improve-passes=%d\n",
		events.Count(obs.BipartitionEnd), events.Count(obs.ImprovePass))
	fmt.Printf("devices=%d iterations=%d\n", res.K, res.Stats.Iterations)
	// Output:
	// first=run-start last=run-end
	// bipartitions=1 improve-passes=3
	// devices=2 iterations=1
}

// ExamplePortfolio_cancelled shows cancellation propagating through the
// strategy portfolio: with the parent context already cancelled, every
// member aborts and the portfolio surfaces the context error.
func ExamplePortfolio_cancelled() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // a deadline via context.WithTimeout behaves the same way

	_, err := core.Portfolio(ctx, twoClusters(), toyDevice, nil)
	fmt.Println(errors.Is(err, context.Canceled))
	// Output:
	// true
}
