package core

// Cancellation, deadline, and event-stream tests for Run and Portfolio.

import (
	"context"
	"errors"
	"testing"
	"time"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/obs"
)

func TestRunPreCancelledReturnsCanceled(t *testing.T) {
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var c obs.Collector
	cfg := Default()
	cfg.Sink = &c
	r, err := Run(ctx, h, dev, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r != nil {
		t.Error("cancelled run returned a result")
	}
	if c.Count(obs.Cancelled) != 1 {
		t.Errorf("Cancelled events = %d, want 1", c.Count(obs.Cancelled))
	}
	if c.Count(obs.RunEnd) != 0 {
		t.Error("cancelled run emitted RunEnd")
	}
	// No schedule work happened: no improvement pass completed.
	if c.Count(obs.ImprovePass) != 0 {
		t.Errorf("cancelled run completed %d improvement passes", c.Count(obs.ImprovePass))
	}
}

func TestRunDeadlineAbortsPromptly(t *testing.T) {
	// A large generated circuit that needs many iterations: the in-pass
	// cancellation polling must surface the deadline long before the
	// schedule could complete.
	spec, ok := gen.ByName("s38584")
	if !ok {
		t.Fatal("spec s38584 missing")
	}
	h := gen.Generate(spec, device.XC3000)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, h, device.XC3020, Default())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: a full run takes orders of magnitude longer, and the
	// engine polls every 64 applied moves.
	if elapsed > 2*time.Second {
		t.Errorf("run took %v to notice a 30ms deadline", elapsed)
	}
}

func TestRunEventStreamShape(t *testing.T) {
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	var c obs.Collector
	cfg := Default()
	cfg.Sink = &c
	cfg.Label = "shape-test"
	r, err := Partition(h, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := c.Events()
	if len(evs) < 4 {
		t.Fatalf("only %d events", len(evs))
	}
	if evs[0].Type != obs.RunStart || evs[0].M != r.M {
		t.Errorf("first event = %+v, want RunStart with M=%d", evs[0], r.M)
	}
	last := evs[len(evs)-1]
	if last.Type != obs.RunEnd || last.K != r.K || !last.Feasible {
		t.Errorf("last event = %+v, want feasible RunEnd with K=%d", last, r.K)
	}
	if got := c.Count(obs.BipartitionStart); got != r.Stats.Iterations {
		t.Errorf("BipartitionStart events = %d, want Iterations = %d", got, r.Stats.Iterations)
	}
	if got := c.Count(obs.BipartitionEnd); got != r.Stats.Iterations {
		t.Errorf("BipartitionEnd events = %d, want Iterations = %d", got, r.Stats.Iterations)
	}
	if got := c.Count(obs.ImprovePass); got != r.Stats.ImproveCalls {
		t.Errorf("ImprovePass events = %d, want ImproveCalls = %d", got, r.Stats.ImproveCalls)
	}
	if got := c.Count(obs.Absorb); got != r.Stats.Absorbed {
		t.Errorf("Absorb events = %d, want Absorbed = %d", got, r.Stats.Absorbed)
	}
	for i, e := range evs {
		if e.Source != "shape-test" {
			t.Fatalf("event %d source = %q, want config label", i, e.Source)
		}
		if i > 0 && e.At < evs[i-1].At {
			t.Fatalf("event %d timestamp regressed: %v after %v", i, e.At, evs[i-1].At)
		}
	}
	// Every BipartitionStart is eventually followed by its BipartitionEnd
	// before the next one starts.
	depth := 0
	for _, e := range evs {
		switch e.Type {
		case obs.BipartitionStart:
			depth++
		case obs.BipartitionEnd:
			depth--
		}
		if depth < 0 || depth > 1 {
			t.Fatalf("bipartition events unbalanced (depth %d)", depth)
		}
	}
}

func TestRunStatsCounters(t *testing.T) {
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	r, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats
	if st.Iterations == 0 || st.ImproveCalls == 0 || st.Passes == 0 {
		t.Errorf("schedule counters zero: %+v", st)
	}
	if st.MovesEvaluated == 0 || st.BucketOps == 0 {
		t.Errorf("engine counters zero: %+v", st)
	}
	if st.MovesEvaluated < st.MovesApplied {
		t.Errorf("evaluated %d < applied %d", st.MovesEvaluated, st.MovesApplied)
	}
	if st.PeakBlocks < r.K {
		t.Errorf("PeakBlocks %d < final K %d", st.PeakBlocks, r.K)
	}
	var phase time.Duration
	for _, d := range st.PhaseTime {
		if d < 0 {
			t.Errorf("negative phase time: %v", st.PhaseTime)
		}
		phase += d
	}
	if phase == 0 {
		t.Error("no phase time recorded")
	}
	if phase > r.Elapsed+time.Millisecond {
		t.Errorf("phase time %v exceeds elapsed %v", phase, r.Elapsed)
	}
}

func TestPortfolioParentCancellation(t *testing.T) {
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Portfolio(ctx, h, dev, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestPortfolioSharedSinkAndLabels(t *testing.T) {
	// Every member writes to the same Collector concurrently; Portfolio
	// must serialize them (run with -race) and tag each stream.
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	var c obs.Collector
	cfgs := DefaultPortfolio()
	for i := range cfgs {
		cfgs[i].Sink = &c
	}
	r, err := Portfolio(context.Background(), h, dev, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	// Each member emits exactly one terminal event: RunEnd when it ran to
	// completion, Cancelled when the winner stopped it early.
	starts := c.Count(obs.RunStart)
	if starts != len(cfgs) {
		t.Errorf("RunStart events = %d, want one per member (%d)", starts, len(cfgs))
	}
	if terminal := c.Count(obs.RunEnd) + c.Count(obs.Cancelled); terminal != len(cfgs) {
		t.Errorf("terminal events = %d, want %d", terminal, len(cfgs))
	}
	sources := map[string]bool{}
	for _, e := range c.Events() {
		sources[e.Source] = true
	}
	for i := range cfgs {
		label := "portfolio[" + string(rune('0'+i)) + "]"
		if !sources[label] {
			t.Errorf("no events tagged %q (sources: %v)", label, sources)
		}
	}
}

func TestPortfolioWinnerCancelsLosers(t *testing.T) {
	// On an instance where the published configuration reaches K = M, the
	// portfolio must still return that provably optimal result even though
	// it cancels the remaining members.
	h := ringOfClusters(t, 2, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 14, Pins: 30, Fill: 1.0}
	r, err := Portfolio(context.Background(), h, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	if r.K != r.M {
		t.Errorf("K = %d, M = %d: expected the bound to be reached here", r.K, r.M)
	}
}
