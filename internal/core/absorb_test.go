package core

// Focused tests for the endgame absorption pass and the repair safety net.

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// fragmented builds a partition with two nearly-full blocks and one tiny
// fragment that fits into either.
func fragmented(t *testing.T) (*partition.Partition, partition.BlockID) {
	t.Helper()
	var b hypergraph.Builder
	var all []hypergraph.NodeID
	for i := 0; i < 22; i++ {
		all = append(all, b.AddInterior("v", 1))
	}
	for i := 0; i+1 < 22; i++ {
		b.AddNet("e", all[i], all[i+1])
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 12, Pins: 20, Fill: 1.0}
	p := partition.New(h, dev)
	b1 := p.AddBlock()
	b2 := p.AddBlock()
	for i := 10; i < 20; i++ {
		p.Move(all[i], b1)
	}
	for i := 20; i < 22; i++ {
		p.Move(all[i], b2) // the 2-cell fragment
	}
	return p, b2
}

func TestAbsorbSmallestDissolvesFragment(t *testing.T) {
	p, frag := fragmented(t)
	var st Stats
	if !absorbSmallest(p, new(partition.Snapshot), &st, nil) {
		t.Fatal("absorption failed on an absorbable fragment")
	}
	if p.Nodes(frag) != 0 {
		t.Errorf("fragment still holds %d nodes", p.Nodes(frag))
	}
	if p.Classify() != partition.FeasibleSolution {
		t.Error("absorption broke feasibility")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Nothing else absorbable: blocks 0 and 1 are 10 and 12 cells; the
	// device caps at 12, so a second call must refuse and roll back.
	if absorbSmallest(p, new(partition.Snapshot), &st, nil) {
		t.Error("absorbed a block that cannot fit anywhere")
	}
	if st.Absorbed != 1 {
		t.Errorf("Absorbed = %d, want 1", st.Absorbed)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("failed absorption left damage: %v", err)
	}
}

func TestAbsorbRollsBackOnFailure(t *testing.T) {
	p, _ := fragmented(t)
	// Fill block 0 to capacity so the fragment can only go to block 1.
	snapshotCut := p.Cut()
	// Tighten: make device pins tiny so any move breaks feasibility.
	// (Rebuild with a 2-pin device.)
	var b hypergraph.Builder
	v0 := b.AddInterior("a", 6)
	v1 := b.AddInterior("b", 6)
	v2 := b.AddInterior("c", 1)
	b.AddNet("n1", v0, v2)
	b.AddNet("n2", v1, v2)
	h := b.MustBuild()
	dev := device.Device{Name: "tiny", DatasheetCells: 6, Pins: 2, Fill: 1.0}
	p2 := partition.New(h, dev)
	b1 := p2.AddBlock()
	b2 := p2.AddBlock()
	p2.Move(v1, b1)
	p2.Move(v2, b2)
	// v2 cannot join v0's or v1's block (size 6+1 > 6): absorption fails.
	var st Stats
	if absorbSmallest(p2, new(partition.Snapshot), &st, nil) {
		t.Error("absorbed into a size-saturated block")
	}
	if p2.Nodes(b2) != 1 {
		t.Error("rollback lost the fragment")
	}
	_ = snapshotCut
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDisableAbsorbKeepsFragments(t *testing.T) {
	// End-to-end: an instance where absorption saves a device.
	h := ringOfClusters(t, 3, 10, 3)
	dev := device.Device{Name: "d", DatasheetCells: 16, Pins: 30, Fill: 1.0}
	on, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.DisableAbsorb = true
	off, err := Partition(h, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.K > off.K {
		t.Errorf("absorption increased K: %d vs %d", on.K, off.K)
	}
}

func TestAbsorbTraceLine(t *testing.T) {
	p, _ := fragmented(t)
	var buf bytes.Buffer
	var st Stats
	em := obs.NewEmitter(obs.NewTextSink(&buf), "")
	if absorbSmallest(p, new(partition.Snapshot), &st, em) {
		if !strings.Contains(buf.String(), "absorbed") {
			t.Error("absorption did not trace")
		}
	}
}

func TestRepairShedsAuxViolations(t *testing.T) {
	var b hypergraph.Builder
	var ids []hypergraph.NodeID
	for i := 0; i < 6; i++ {
		id := b.AddInterior("ff", 1)
		b.SetAux(id, 1)
		ids = append(ids, id)
	}
	for i := 0; i+1 < 6; i++ {
		b.AddNet("n", ids[i], ids[i+1])
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 50, Pins: 50, Fill: 1.0, AuxCap: 2}
	p := partition.New(h, dev)
	blk := p.AddBlock()
	for _, v := range ids[:5] {
		p.Move(v, blk) // 5 FFs > cap 2
	}
	var st Stats
	repairNonRemainder(p, 0, &st, nil)
	if !p.Feasible(blk) {
		t.Errorf("repair left block aux-infeasible: aux=%d", p.Aux(blk))
	}
}

func TestMaxBlocksCap(t *testing.T) {
	// An impossible instance (pins too tight) must terminate at the cap
	// with Feasible=false rather than loop.
	var b hypergraph.Builder
	center := b.AddInterior("c", 1)
	for i := 0; i < 30; i++ {
		leaf := b.AddInterior("l", 1)
		b.AddNet("n", center, leaf)
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 2, Fill: 1.0}
	cfg := Default()
	cfg.MaxBlocks = 6
	r, err := Partition(h, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Error("impossible instance reported feasible")
	}
	if r.Partition.NumBlocks() > 6 {
		t.Errorf("cap ignored: %d blocks", r.Partition.NumBlocks())
	}
}
