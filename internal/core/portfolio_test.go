package core

import (
	"context"
	"testing"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
)

func TestPortfolioBeatsOrMatchesSingle(t *testing.T) {
	spec, _ := gen.ByName("c3540")
	h := gen.Generate(spec, device.XC3000)
	single, err := Partition(h, device.XC3020, Default())
	if err != nil {
		t.Fatal(err)
	}
	best, err := Portfolio(context.Background(), h, device.XC3020, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("portfolio infeasible")
	}
	if best.K > single.K {
		t.Errorf("portfolio K=%d worse than single K=%d", best.K, single.K)
	}
	if err := best.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPortfolioCustomConfigs(t *testing.T) {
	h := ringOfClusters(t, 3, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	cfgs := []Config{Default(), func() Config {
		c := Default()
		c.DisableSchedule = true
		return c
	}()}
	r, err := Portfolio(context.Background(), h, dev, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
}

func TestPortfolioPropagatesErrors(t *testing.T) {
	// Empty circuit: every member fails, the error must surface.
	var b hypergraph.Builder
	if _, err := Portfolio(context.Background(), b.MustBuild(), device.XC3020, nil); err == nil {
		t.Error("portfolio swallowed errors")
	}
}

func TestDefaultPortfolioShape(t *testing.T) {
	cfgs := DefaultPortfolio()
	if len(cfgs) < 3 {
		t.Fatalf("portfolio too small: %d", len(cfgs))
	}
	// Must contain the published configuration and at least one pin-gain
	// and one windowless variant.
	var hasDefault, hasPin, hasOpen bool
	for _, c := range cfgs {
		switch {
		case c.Engine.PinGain:
			hasPin = true
		case c.Engine.DisableWindows:
			hasOpen = true
		case c == Default():
			hasDefault = true
		}
	}
	if !hasDefault || !hasPin || !hasOpen {
		t.Errorf("portfolio missing strategies: default=%v pin=%v open=%v", hasDefault, hasPin, hasOpen)
	}
}

func TestBetterResultOrdering(t *testing.T) {
	h := ringOfClusters(t, 2, 5, 2)
	dev := device.Device{Name: "d", DatasheetCells: 20, Pins: 20, Fill: 1.0}
	a, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	// Identical results: neither strictly better.
	if betterResult(a, b) && betterResult(b, a) {
		t.Error("betterResult is not antisymmetric")
	}
	// Feasibility dominates.
	b.Feasible = false
	if !betterResult(a, b) {
		t.Error("feasible result should beat infeasible")
	}
}
