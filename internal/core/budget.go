package core

import "context"

// Budget is a counting semaphore bounding how many CPU-bound goroutines the
// partitioning pipeline runs at once. One Budget is shared across every
// layer that can go concurrent — daemon jobs (internal/service), portfolio
// members, and intra-run speculative peeling — so stacking those layers
// cannot oversubscribe the machine. A nil *Budget is valid and unlimited.
//
// Budget gates concurrency only, never results: speculative peeling runs
// the same fixed candidate set at any capacity, executing candidates that
// fail TryAcquire on the caller's goroutine instead of a new one.
type Budget struct {
	sem chan struct{}
}

// NewBudget returns a budget with n tokens; n < 1 is clamped to 1.
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	return &Budget{sem: make(chan struct{}, n)}
}

// Cap returns the token capacity; 0 for the nil (unlimited) budget.
func (b *Budget) Cap() int {
	if b == nil {
		return 0
	}
	return cap(b.sem)
}

// Acquire blocks until a token is free or ctx is done, returning ctx's
// error in the latter case. The nil budget grants immediately.
func (b *Budget) Acquire(ctx context.Context) error {
	if b == nil {
		return ctx.Err()
	}
	select {
	case b.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a token if one is free, without blocking. The nil
// budget always grants.
func (b *Budget) TryAcquire() bool {
	if b == nil {
		return true
	}
	select {
	case b.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a token taken by Acquire or TryAcquire.
func (b *Budget) Release() {
	if b == nil {
		return
	}
	<-b.sem
}
