package core

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// ringOfClusters builds c clusters of n unit cells each, joined in a ring,
// with pads sprinkled on p of the clusters.
func ringOfClusters(t testing.TB, c, n, pads int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	sets := make([][]hypergraph.NodeID, c)
	for ci := 0; ci < c; ci++ {
		for i := 0; i < n; i++ {
			sets[ci] = append(sets[ci], b.AddInterior("v", 1))
		}
		for i := 0; i+1 < n; i++ {
			b.AddNet("in", sets[ci][i], sets[ci][i+1])
			if i+2 < n {
				b.AddNet("in2", sets[ci][i], sets[ci][i+2])
			}
		}
	}
	for ci := 0; ci < c; ci++ {
		b.AddNet("bridge", sets[ci][n-1], sets[(ci+1)%c][0])
	}
	for i := 0; i < pads; i++ {
		pd := b.AddPad("p")
		b.AddNet("pe", pd, sets[i%c][i%n])
	}
	return b.MustBuild()
}

func checkResult(t *testing.T, h *hypergraph.Hypergraph, r *Result) {
	t.Helper()
	if err := r.Partition.Validate(); err != nil {
		t.Fatalf("final partition corrupt: %v", err)
	}
	if !r.Feasible {
		t.Fatalf("not feasible: k=%d m=%d %s", r.K, r.M, r.Partition)
	}
	dev := r.Partition.Device()
	for b := 0; b < r.Partition.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if r.Partition.Nodes(id) == 0 {
			continue
		}
		if !dev.Fits(r.Partition.Size(id), r.Partition.Terminals(id)) {
			t.Errorf("block %d infeasible: S=%d T=%d", b, r.Partition.Size(id), r.Partition.Terminals(id))
		}
	}
	if r.K < r.M {
		t.Errorf("K=%d below lower bound M=%d", r.K, r.M)
	}
	// Blocks() must partition the node set.
	seen := make(map[hypergraph.NodeID]bool)
	for _, blk := range r.Blocks() {
		for _, v := range blk {
			if seen[v] {
				t.Fatalf("node %d in two blocks", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != h.NumNodes() {
		t.Errorf("blocks cover %d of %d nodes", len(seen), h.NumNodes())
	}
}

func TestTrivialSingleDevice(t *testing.T) {
	h := ringOfClusters(t, 2, 5, 3)
	dev := device.Device{Name: "big", DatasheetCells: 100, Pins: 50, Fill: 1.0}
	r, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	if r.K != 1 || r.Stats.Iterations != 0 {
		t.Errorf("K=%d iters=%d, want 1 and 0", r.K, r.Stats.Iterations)
	}
}

func TestTwoWaySplit(t *testing.T) {
	h := ringOfClusters(t, 2, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 14, Pins: 30, Fill: 1.0}
	r, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	if r.K != 2 {
		t.Errorf("K = %d, want 2 (M=%d)", r.K, r.M)
	}
}

func TestMultiWaySplit(t *testing.T) {
	h := ringOfClusters(t, 6, 10, 6)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	r, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	// M = ceil(60/13) = 5; clusters are 10 so 6 is the natural answer;
	// anything in [5, 7] is acceptable quality here.
	if r.K > 7 {
		t.Errorf("K = %d, want <= 7 (M=%d)", r.K, r.M)
	}
}

func TestErrEmptyCircuit(t *testing.T) {
	var b hypergraph.Builder
	h := b.MustBuild()
	if _, err := Partition(h, device.XC3020, Default()); err == nil {
		t.Error("empty circuit accepted")
	}
}

func TestErrOversizedNode(t *testing.T) {
	var b hypergraph.Builder
	v := b.AddInterior("huge", 1000)
	w := b.AddInterior("w", 1)
	b.AddNet("n", v, w)
	h := b.MustBuild()
	_, err := Partition(h, device.XC3020, Default())
	if !errors.Is(err, ErrUnsplittable) {
		t.Errorf("err = %v, want ErrUnsplittable", err)
	}
}

func TestErrBadDevice(t *testing.T) {
	h := ringOfClusters(t, 2, 4, 0)
	bad := device.Device{Name: "bad", DatasheetCells: 0, Pins: 0, Fill: 0}
	if _, err := Partition(h, bad, Default()); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestImprovementScheduleFigure1(t *testing.T) {
	// The trace must show, per iteration, the Figure 1 pass sequence:
	// newest pair, all blocks (small-M strategy), then the selected pairs.
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	var buf bytes.Buffer
	cfg := Default()
	cfg.Sink = obs.NewTextSink(&buf)
	r, err := Partition(h, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	out := buf.String()
	for _, want := range []string{"bipartition", "pair(R,Pk)", "improve all"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	// Per iteration, the "all" pass must come after the newest-pair pass.
	lines := strings.Split(out, "\n")
	pairIdx, allIdx := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "pair(R,Pk)") && pairIdx == -1 {
			pairIdx = i
		}
		if strings.Contains(l, "improve all") && allIdx == -1 {
			allIdx = i
		}
	}
	if pairIdx == -1 || allIdx == -1 || allIdx < pairIdx {
		t.Errorf("schedule order wrong: pair at %d, all at %d", pairIdx, allIdx)
	}
}

func TestScheduleBigMSkipsAllPass(t *testing.T) {
	// With NSmall forced below M, the all-blocks pass must not run.
	h := ringOfClusters(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	var buf bytes.Buffer
	cfg := Default()
	cfg.NSmall = 1 // M is 4: strategy switches to the big-k variant
	cfg.Sink = obs.NewTextSink(&buf)
	r, err := Partition(h, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	if strings.Contains(buf.String(), "improve all") {
		t.Error("all-blocks pass ran despite M > NSmall")
	}
	if !strings.Contains(buf.String(), "pair(Pmin_size,R)") &&
		!strings.Contains(buf.String(), "pair(Pmin_IO,R)") &&
		!strings.Contains(buf.String(), "pair(Pmax_F,R)") {
		t.Error("big-k strategy must still run the selected-pair passes")
	}
}

func TestDisableSchedule(t *testing.T) {
	h := ringOfClusters(t, 3, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	var buf bytes.Buffer
	cfg := Default()
	cfg.DisableSchedule = true
	cfg.Sink = obs.NewTextSink(&buf)
	r, err := Partition(h, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	out := buf.String()
	if strings.Contains(out, "improve all") || strings.Contains(out, "Pmin_size") {
		t.Error("DisableSchedule still ran schedule passes")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (int, int64) {
		h := ringOfClusters(t, 4, 8, 4)
		dev := device.Device{Name: "d", DatasheetCells: 11, Pins: 30, Fill: 1.0}
		r, err := Partition(h, dev, Default())
		if err != nil {
			t.Fatal(err)
		}
		return r.K, r.Partition.Moves()
	}
	k1, m1 := run()
	k2, m2 := run()
	if k1 != k2 || m1 != m2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", k1, m1, k2, m2)
	}
}

func TestBlockSelectors(t *testing.T) {
	h := ringOfClusters(t, 3, 6, 6)
	dev := device.Device{Name: "d", DatasheetCells: 20, Pins: 10, Fill: 1.0}
	p := partition.New(h, dev)
	b1 := p.AddBlock()
	b2 := p.AddBlock()
	rem := partition.BlockID(0)
	// b1: 2 cells; b2: 5 cells.
	nodes := h.InteriorIDs()
	p.Move(nodes[0], b1)
	p.Move(nodes[1], b1)
	for i := 2; i < 7; i++ {
		p.Move(nodes[i], b2)
	}
	if got := minSizeBlock(p, rem); got != b1 {
		t.Errorf("minSizeBlock = %d, want %d", got, b1)
	}
	if got := minIOBlock(p, rem); got == rem || got == partition.NoBlock {
		t.Errorf("minIOBlock = %d, want a non-remainder block", got)
	}
	if got := maxFreeBlock(p, rem, 0.5, 0.5); got == rem || got == partition.NoBlock {
		t.Errorf("maxFreeBlock = %d invalid", got)
	}
	// With σ = (1, 0) free space is size-only: the smaller block wins.
	if got := maxFreeBlock(p, rem, 1, 0); got != b1 {
		t.Errorf("maxFreeBlock(size only) = %d, want %d", got, b1)
	}
	// Empty partition of selectors: no non-remainder blocks.
	p2 := partition.New(h, dev)
	if minSizeBlock(p2, 0) != partition.NoBlock ||
		minIOBlock(p2, 0) != partition.NoBlock ||
		maxFreeBlock(p2, 0, 0.5, 0.5) != partition.NoBlock {
		t.Error("selectors on remainder-only partition should return NoBlock")
	}
}

func TestIOCriticalDesign(t *testing.T) {
	// Lots of pads, little logic: the I/O constraint dominates
	// (⌈|Y0|/T_MAX⌉ > ⌈S0/S_MAX⌉), exercising the external-balance term.
	var b hypergraph.Builder
	var cells []hypergraph.NodeID
	for i := 0; i < 30; i++ {
		cells = append(cells, b.AddInterior("v", 1))
	}
	for i := 0; i+1 < 30; i++ {
		b.AddNet("c", cells[i], cells[i+1])
	}
	for i := 0; i < 40; i++ {
		pd := b.AddPad("p")
		b.AddNet("pe", pd, cells[i%30])
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 40, Pins: 12, Fill: 1.0}
	// M = max(ceil(30/40), ceil(40/12)) = 4.
	r, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, h, r)
	if r.M != 4 {
		t.Fatalf("M = %d, want 4", r.M)
	}
	if r.K > 6 {
		t.Errorf("K = %d for I/O-critical design, want close to M=4", r.K)
	}
}

// Property: FPART always terminates with a valid partition; when it reports
// feasible, every block fits and K >= M.
func TestQuickAlwaysValid(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 10 + r.Intn(60)
		for i := 0; i < n; i++ {
			if r.Intn(8) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1+r.Intn(2))
			}
		}
		for e := 0; e < n+r.Intn(2*n); e++ {
			d := 2 + r.Intn(3)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		dev := device.Device{
			Name:           "d",
			DatasheetCells: 6 + r.Intn(30),
			Pins:           8 + r.Intn(30),
			Fill:           1.0,
		}
		cfg := Default()
		cfg.Engine.MaxPasses = 2 // keep the property test fast
		res, err := Partition(h, dev, cfg)
		if err != nil {
			return true // rejected inputs (oversized node) are fine
		}
		if res.Partition.Validate() != nil {
			return false
		}
		if res.Feasible && res.K < res.M {
			return false
		}
		seen := 0
		for _, blk := range res.Blocks() {
			seen += len(blk)
		}
		return seen == h.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPartitionRing8(b *testing.B) {
	h := ringOfClusters(b, 8, 12, 8)
	dev := device.Device{Name: "d", DatasheetCells: 15, Pins: 30, Fill: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(h, dev, Default()); err != nil {
			b.Fatal(err)
		}
	}
}
