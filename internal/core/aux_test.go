package core

// End-to-end tests of the secondary-resource (flip-flop) constraint from
// §2 of the paper, driven through the full FPART flow.

import (
	"errors"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// ffChain builds n unit cells in a chain, each carrying one flip-flop.
func ffChain(t *testing.T, n int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	prev := hypergraph.NodeID(-1)
	for i := 0; i < n; i++ {
		id := b.AddInterior("ff", 1)
		b.SetAux(id, 1)
		if prev >= 0 {
			b.AddNet("n", prev, id)
		}
		prev = id
	}
	return b.MustBuild()
}

func TestAuxConstraintForcesMoreDevices(t *testing.T) {
	h := ffChain(t, 24)
	// Size and pins would allow one device; 8 FFs per device force >= 3.
	dev := device.Device{Name: "ffcap", Family: device.XC3000, DatasheetCells: 100, Pins: 100, Fill: 1.0, AuxCap: 8}
	r, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("infeasible: K=%d M=%d", r.K, r.M)
	}
	if r.M != 3 {
		t.Fatalf("M = %d, want 3 (aux-dominated)", r.M)
	}
	if r.K < 3 {
		t.Errorf("K = %d below the aux bound", r.K)
	}
	p := r.Partition
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) > 0 && p.Aux(id) > dev.AuxCap {
			t.Errorf("block %d exceeds aux cap: %d > %d", b, p.Aux(id), dev.AuxCap)
		}
	}
}

func TestAuxUnsplittableNode(t *testing.T) {
	var b hypergraph.Builder
	v := b.AddInterior("megaff", 1)
	b.SetAux(v, 10)
	w := b.AddInterior("w", 1)
	b.AddNet("n", v, w)
	h := b.MustBuild()
	dev := device.Device{Name: "d", Family: device.XC3000, DatasheetCells: 100, Pins: 100, Fill: 1.0, AuxCap: 4}
	_, err := Partition(h, dev, Default())
	if !errors.Is(err, ErrUnsplittable) {
		t.Errorf("err = %v, want ErrUnsplittable for aux-oversized node", err)
	}
}

func TestAuxUncappedDeviceIgnoresAux(t *testing.T) {
	h := ffChain(t, 24)
	dev := device.Device{Name: "d", Family: device.XC3000, DatasheetCells: 100, Pins: 100, Fill: 1.0}
	r, err := Partition(h, dev, Default())
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 1 {
		t.Errorf("K = %d, want 1 when aux is unconstrained", r.K)
	}
}
