package core

// Speculative peeling: instead of committing to one bipartition per
// Algorithm 1 step, race Config.SpecWidth candidate peels over arena
// clones of the live partition and adopt the one whose post-repair
// solution key (§3.4) is best. Candidate 0 always carries the caller's
// engine configuration; the others cycle the DefaultPortfolio variant mix
// (pin gain, deeper stacks, open windows), so speculation explores the
// same strategy space as the portfolio but per peel step rather than per
// whole run.
//
// Determinism: the candidate set is fixed by the width, every candidate
// runs to completion (seeding is engine-independent, so all candidates
// carve the same seed and diverge only in improvement), the winner is the
// strictly-better key with ties to the lowest candidate index, and only
// the winner's partition and stats are adopted. The Budget decides merely
// which candidates overlap in time — never which exist or which wins — so
// results are bit-identical at any parallelism.

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"

	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
)

// specVariantNames label the engine-variant cycle applied to candidates
// (candidate i uses variant i mod 4; index 0 is the base configuration).
var specVariantNames = [4]string{"base", "pin-gain", "deep-stack", "open-windows"}

// speculator holds the per-run speculation state: one engine variant,
// event emitter, and candidate slot per width index, reused across rounds.
type speculator struct {
	variants []sanchis.Config
	labels   []string
	cands    []specCand
}

// specCand is one racing candidate: a trajectory over an arena clone plus
// its round outcome.
type specCand struct {
	rs      runState
	st      Stats
	arena   *arena
	out     peelOutcome
	err     error
	key     partition.Key
	spawned bool
}

// newSpeculator builds the fixed candidate set for cfg (already
// normalized). Candidate emitters share one locked view of cfg.Sink so the
// concurrent trajectories may interleave safely on the caller's sink.
func newSpeculator(cfg Config) *speculator {
	width := cfg.SpecWidth
	s := &speculator{
		variants: make([]sanchis.Config, width),
		labels:   make([]string, width),
		cands:    make([]specCand, width),
	}
	var mu sync.Mutex
	sink := obs.Locked(&mu, cfg.Sink)
	for i := 0; i < width; i++ {
		v := cfg.Engine
		switch i % 4 {
		case 1:
			v.PinGain = !v.PinGain
		case 2:
			v.StackDepth = 8
		case 3:
			v.DisableWindows = !v.DisableWindows
		}
		s.labels[i] = specVariantNames[i%4]
		label := fmt.Sprintf("spec[%d]", i)
		if cfg.Label != "" {
			label = fmt.Sprintf("%s/spec[%d]", cfg.Label, i)
		}
		em := obs.NewEmitter(sink, label)
		v.Obs = em
		s.variants[i] = v
		s.cands[i].rs.em = em
	}
	return s
}

// round races one speculative peel step for the main trajectory r and
// adopts the winner. The returned outcome is the winner's; an error is a
// context cancellation observed by any candidate.
func (s *speculator) round(r *runState) (peelOutcome, error) {
	width := len(s.cands)
	roundCtx, cancelRound := context.WithCancel(r.ctx)
	defer cancelRound()

	// Serial setup: clone the live partition into one arena per candidate.
	for i := range s.cands {
		c := &s.cands[i]
		c.arena = getArena(r.p, s.variants[i])
		c.st = Stats{}
		c.out, c.err, c.spawned = peelProgress, nil, false
		em := c.rs.em
		c.rs = runState{
			ctx: roundCtx, cfg: r.cfg, dev: r.dev,
			p: c.arena.p, eng: c.arena.eng,
			cost: r.cost, rem: r.rem, m: r.m, iter: r.iter,
			st: &c.st, em: em,
		}
	}
	runCand := func(c *specCand) {
		c.out, c.err = c.rs.peelStep()
		if c.err != nil {
			// A dead context dooms the whole round; stop the siblings early.
			cancelRound()
			return
		}
		if c.out != peelStuck {
			c.key = c.rs.p.Key(c.rs.cost, c.rs.rem, c.rs.m)
		}
	}

	// Race. Extra candidates get their own goroutine only while the shared
	// budget has spare tokens; the rest run on this goroutine afterwards.
	// Token availability shapes the overlap, never the candidate set.
	var wg sync.WaitGroup
	for i := 1; i < width; i++ {
		if r.cfg.Budget.TryAcquire() {
			c := &s.cands[i]
			c.spawned = true
			wg.Add(1)
			// Profiler labels tag every sample taken on a speculation
			// goroutine with the peel step and candidate variant, so a CPU
			// or goroutine profile of a concurrent run attributes time to
			// (method, peel, candidate) instead of one anonymous closure.
			labels := pprof.Labels(
				"method", "speculate",
				"peel", strconv.Itoa(r.iter),
				"candidate", s.labels[i%len(s.labels)],
			)
			go pprof.Do(roundCtx, labels, func(context.Context) {
				defer wg.Done()
				defer r.cfg.Budget.Release()
				runCand(c)
			})
		}
	}
	runCand(&s.cands[0])
	for i := 1; i < width; i++ {
		if !s.cands[i].spawned {
			runCand(&s.cands[i])
		}
	}
	wg.Wait()

	defer func() {
		for i := range s.cands {
			putArena(s.cands[i].arena)
			s.cands[i].arena = nil
		}
	}()
	for i := range s.cands {
		if err := s.cands[i].err; err != nil {
			return peelProgress, err
		}
	}
	if s.cands[0].out == peelStuck {
		// Seeding is engine-independent: no candidate could carve a block.
		// The live partition is untouched (candidates worked on clones).
		return peelStuck, nil
	}

	// Deterministic selection: best §3.4 key, ties to the lowest index.
	w := 0
	for i := 1; i < width; i++ {
		if s.cands[i].out != peelStuck && s.cands[i].key.Better(s.cands[w].key) {
			w = i
		}
	}
	win := &s.cands[w]
	r.p.CopyFrom(win.rs.p)
	// Only the winner's effort is folded in, so effort counters stay
	// comparable across speculation widths; the Spec* counters record the
	// racing itself.
	r.st.Merge(win.st)
	r.iter++
	r.st.SpecRounds++
	if w != 0 {
		r.st.SpecWins++
	}
	for i := range s.cands {
		if i == w {
			r.em.Emit(obs.Event{Type: obs.SpecWin, Iteration: r.iter, Candidate: i, Label: s.labels[i]})
		} else {
			r.st.SpecLosses++
			r.em.Emit(obs.Event{Type: obs.SpecLoss, Iteration: r.iter, Candidate: i, Label: s.labels[i]})
		}
	}
	return win.out, nil
}
