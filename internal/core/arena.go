package core

import (
	"sync"

	"fpart/internal/partition"
	"fpart/internal/sanchis"
)

// arena bundles a partition clone with an engine bound to it. Speculative
// peeling draws one arena per candidate and returns it after the round, so
// each candidate's graph-sized state (assignment arrays, net counters,
// gain buckets, level scratch, solution-stack snapshots) is reset-and-
// reused across candidates, peel steps, runs, and daemon jobs instead of
// reallocated every round.
type arena struct {
	p   *partition.Partition
	eng *sanchis.Engine
}

var arenaPool sync.Pool

// getArena returns an arena whose partition is a copy of src and whose
// engine is reset under ecfg. Engine.Reset rewinds all revision/memo state
// through full capacity, so a pooled arena's trajectory is bit-identical
// to a freshly allocated one — pool draw order cannot leak into results.
func getArena(src *partition.Partition, ecfg sanchis.Config) *arena {
	a, _ := arenaPool.Get().(*arena)
	if a == nil {
		a = &arena{p: &partition.Partition{}}
	}
	a.p.CopyFrom(src)
	if a.eng == nil {
		a.eng = sanchis.New(a.p, ecfg)
	} else {
		a.eng.Reset(a.p, ecfg)
	}
	return a
}

// putArena retires an arena. The engine drops its partition binding so a
// pooled engine can never pin a partition that escaped to a caller; the
// arena's own clone stays resident for reuse — that is the point.
func putArena(a *arena) {
	a.eng.Unbind()
	arenaPool.Put(a)
}

// enginePool recycles the main sequential engine across runs. fpartd calls
// Run once per job in a long-lived process, so this alone removes the
// largest per-job allocation (buckets, level buffers, journal, stacks).
var enginePool sync.Pool

// getEngine returns an engine bound to p under cfg, reusing pooled scratch
// when available.
func getEngine(p *partition.Partition, cfg sanchis.Config) *sanchis.Engine {
	if e, ok := enginePool.Get().(*sanchis.Engine); ok {
		e.Reset(p, cfg)
		return e
	}
	return sanchis.New(p, cfg)
}

// putEngine retires an engine to the pool.
func putEngine(e *sanchis.Engine) {
	e.Unbind()
	enginePool.Put(e)
}
