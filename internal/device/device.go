// Package device models the target FPGA devices of the FPART paper
// (Krupnova & Saucier, DATE 1999, §2 and §4).
//
// A device D = (S_MAX, T_MAX) is characterized by its logic-cell capacity
// and its terminal (IOB) count. S_MAX is derated from the datasheet cell
// count by a user-chosen filling ratio δ (0.9 in the paper's XC3000
// experiments, 1.0 for XC2064) to leave headroom for routing.
package device

import (
	"fmt"
	"strconv"
	"strings"

	"fpart/internal/hypergraph"
)

// Family identifies a Xilinx CLB architecture generation. The MCNC
// benchmarks of the paper are mapped once per family (Table 1).
type Family uint8

const (
	// XC2000 CLBs have a 4-input function generator; designs map to more,
	// smaller CLBs.
	XC2000 Family = iota
	// XC3000 CLBs have a 5-input function generator; designs map to fewer
	// CLBs.
	XC3000
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case XC2000:
		return "XC2000"
	case XC3000:
		return "XC3000"
	default:
		return fmt.Sprintf("Family(%d)", uint8(f))
	}
}

// Resource is one named capacity axis beyond the primary logic-cell size:
// FF, DSP, BRAM on modern parts. §2 notes such secondary constraints are
// "handled like the size constraint" — each is a pure upper bound on the
// per-block demand total.
type Resource struct {
	Name string
	Cap  int
}

// Device describes one FPGA part.
type Device struct {
	Name string
	// Family is the CLB architecture the part belongs to; it selects which
	// technology-mapped variant of a benchmark the part consumes.
	Family Family
	// DatasheetCells is S_ds, the CLB count from the vendor datasheet.
	DatasheetCells int
	// Pins is T_MAX, the number of user I/O terminals (IOBs).
	Pins int
	// Fill is δ, the desired filling ratio applied to DatasheetCells.
	Fill float64
	// AuxCap bounds the device's secondary resource (flip-flops on the
	// Xilinx parts; §2 notes such constraints are handled like the size
	// constraint). Zero means unconstrained — the paper's experiments
	// never hit these limits.
	AuxCap int
	// Resources lists the extra capacity axes beyond the primary size axis.
	// Empty for scalar parts: every scalar device is the R=1 special case
	// of the resource-vector model, and all pre-vector code paths treat it
	// identically by construction. Demands are matched to netlist resource
	// columns by name; a circuit with no column for an axis demands zero.
	Resources []Resource
}

// SMax returns S_MAX = floor(S_ds · δ), the usable logic capacity.
func (d Device) SMax() int {
	return int(float64(d.DatasheetCells) * d.Fill)
}

// TMax returns T_MAX, the terminal capacity.
func (d Device) TMax() int { return d.Pins }

// WithFill returns a copy of the device with filling ratio δ replaced.
func (d Device) WithFill(delta float64) Device {
	d.Fill = delta
	return d
}

// String renders the device with its effective capacities.
func (d Device) String() string {
	return fmt.Sprintf("%s(S_MAX=%d,T_MAX=%d,δ=%.2f)", d.Name, d.SMax(), d.TMax(), d.Fill)
}

// Validate reports an error for degenerate device descriptions.
func (d Device) Validate() error {
	if d.DatasheetCells <= 0 {
		return fmt.Errorf("device %s: datasheet cell count %d must be positive", d.Name, d.DatasheetCells)
	}
	if d.Pins <= 0 {
		return fmt.Errorf("device %s: pin count %d must be positive", d.Name, d.Pins)
	}
	if d.Fill <= 0 || d.Fill > 1.0 {
		return fmt.Errorf("device %s: fill ratio %.3f outside (0,1]", d.Name, d.Fill)
	}
	if d.SMax() < 1 {
		return fmt.Errorf("device %s: effective S_MAX is zero after fill derating", d.Name)
	}
	// Quadratic duplicate scan: R stays single-digit, and Validate runs
	// once per core.Run — a map here would cost an allocation per run.
	for i, r := range d.Resources {
		if r.Name == "" {
			return fmt.Errorf("device %s: resource with empty name", d.Name)
		}
		for _, prev := range d.Resources[:i] {
			if prev.Name == r.Name {
				return fmt.Errorf("device %s: duplicate resource name %q", d.Name, r.Name)
			}
		}
		if r.Cap <= 0 {
			return fmt.Errorf("device %s: resource %s cap %d must be positive", d.Name, r.Name, r.Cap)
		}
	}
	return nil
}

// Fits reports whether a block with the given size and terminal count meets
// the device constraints (the relation P ⊨ D of §2), ignoring the secondary
// resource.
func (d Device) Fits(size, terminals int) bool {
	return size <= d.SMax() && terminals <= d.TMax()
}

// FitsFull additionally checks the secondary-resource demand against
// AuxCap (unconstrained when AuxCap is zero).
func (d Device) FitsFull(size, terminals, aux int) bool {
	if !d.Fits(size, terminals) {
		return false
	}
	return d.AuxCap == 0 || aux <= d.AuxCap
}

// FitsRes checks a vector of extra-resource demands against Resources,
// componentwise, positionally. Demands beyond len(Resources) are ignored;
// missing trailing demands count as zero — so a scalar block (nil demands)
// fits any resource vector and the R=1 device admits everything here.
func (d Device) FitsRes(demands []int) bool {
	for i, r := range d.Resources {
		if i < len(demands) && demands[i] > r.Cap {
			return false
		}
	}
	return true
}

// The experimental devices of the paper (§4), with the fill ratios used
// there: δ = 0.9 for the XC3000 parts, δ = 1.0 for XC2064.
var (
	XC2064 = Device{Name: "XC2064", Family: XC2000, DatasheetCells: 64, Pins: 58, Fill: 1.0}
	XC3020 = Device{Name: "XC3020", Family: XC3000, DatasheetCells: 64, Pins: 64, Fill: 0.9}
	XC3042 = Device{Name: "XC3042", Family: XC3000, DatasheetCells: 144, Pins: 96, Fill: 0.9}
	XC3090 = Device{Name: "XC3090", Family: XC3000, DatasheetCells: 320, Pins: 144, Fill: 0.9}
)

// Catalog lists the paper's devices in the order of Tables 2-5.
var Catalog = []Device{XC3020, XC3042, XC3090, XC2064}

// ByName resolves a device from Catalog by case-sensitive name.
func ByName(name string) (Device, bool) {
	for _, d := range Catalog {
		if d.Name == name {
			return d, true
		}
	}
	return Device{}, false
}

// Parse resolves a device name: a Catalog entry, or a synthetic
// "CELLSxPINS" part such as "20000x2000" — an XC3000-family device with
// the given datasheet cell and pin counts at the family's 0.9 fill. Large
// synthetic parts keep the block count modest on 10⁵–10⁶-cell netlists,
// where carving a million cells into 64-cell physical devices would need
// thousands of blocks (and the partitioner's dense per-net block rows
// would not fit in memory).
func Parse(name string) (Device, bool) {
	if strings.IndexByte(name, ':') >= 0 {
		d, err := ParseSpec(name)
		return d, err == nil
	}
	if d, ok := ByName(name); ok {
		return d, true
	}
	x := strings.IndexByte(name, 'x')
	if x <= 0 || x == len(name)-1 {
		return Device{}, false
	}
	cells, err1 := strconv.Atoi(name[:x])
	pins, err2 := strconv.Atoi(name[x+1:])
	if err1 != nil || err2 != nil || cells < 1 || pins < 1 {
		return Device{}, false
	}
	d := Device{Name: name, Family: XC3000, DatasheetCells: cells, Pins: pins, Fill: 0.9}
	if d.Validate() != nil {
		return Device{}, false
	}
	return d, true
}

// DefaultVectorPins is the T_MAX assumed for resource-vector specs that
// omit the "/T_MAX" suffix. Vector parts model modern dies whose pin
// budget rarely binds before a resource axis does, so the default is
// generous rather than paper-scale.
const DefaultVectorPins = 256

// ParseSpec resolves an extended device spec string. Accepted forms:
//
//	XC3020                        a Catalog part
//	20000x2000                    a synthetic CELLSxPINS part (Parse)
//	LUT:1500,FF:3000,DSP:12/120   a resource-vector part
//
// In the vector form the first NAME:CAP token is the primary size axis
// (S_MAX = CAP at fill 1.0, checked against node sizes, exactly like a
// scalar part), later tokens become extra Resources matched to netlist
// resource columns by name, and the optional "/T_MAX" suffix sets the pin
// budget (DefaultVectorPins when omitted). A single-token vector spec is
// therefore an R=1 device whose code paths are identical to a scalar part.
//
// Unlike Parse, malformed specs return an error naming the offending
// token: duplicate resource names, zero or negative caps, and tokens that
// are not NAME:CAP are all rejected.
func ParseSpec(spec string) (Device, error) {
	if strings.IndexByte(spec, ':') < 0 {
		d, ok := Parse(spec)
		if !ok {
			return Device{}, fmt.Errorf("unknown device %q (valid: a catalog name, CELLSxPINS, or NAME:CAP,NAME:CAP,.../T_MAX)", spec)
		}
		return d, nil
	}
	body, pinsStr, hasPins := strings.Cut(spec, "/")
	pins := DefaultVectorPins
	if hasPins {
		v, err := strconv.Atoi(pinsStr)
		if err != nil || v < 1 {
			return Device{}, fmt.Errorf("device %q: T_MAX suffix %q must be a positive integer", spec, pinsStr)
		}
		pins = v
	}
	d := Device{Name: spec, Family: XC3000, Pins: pins, Fill: 1.0}
	seen := map[string]bool{}
	for i, tok := range strings.Split(body, ",") {
		name, capStr, ok := strings.Cut(tok, ":")
		if !ok || name == "" || capStr == "" {
			return Device{}, fmt.Errorf("device %q: malformed resource token %q (want NAME:CAP)", spec, tok)
		}
		c, err := strconv.Atoi(capStr)
		if err != nil {
			return Device{}, fmt.Errorf("device %q: resource cap in token %q is not an integer", spec, tok)
		}
		if c <= 0 {
			return Device{}, fmt.Errorf("device %q: resource cap must be positive in token %q (got %d)", spec, tok, c)
		}
		if seen[name] {
			return Device{}, fmt.Errorf("device %q: duplicate resource name in token %q", spec, tok)
		}
		seen[name] = true
		if i == 0 {
			d.DatasheetCells = c
		} else {
			d.Resources = append(d.Resources, Resource{Name: name, Cap: c})
		}
	}
	if err := d.Validate(); err != nil {
		return Device{}, err
	}
	return d, nil
}

// WithResources returns a copy of the device with extra resource axes
// appended (the fpartd job schema composes catalog parts with a separate
// "resources" field this way). The combined device must validate.
func (d Device) WithResources(extra []Resource) (Device, error) {
	if len(extra) == 0 {
		return d, nil
	}
	d.Resources = append(append([]Resource(nil), d.Resources...), extra...)
	if err := d.Validate(); err != nil {
		return Device{}, err
	}
	return d, nil
}

// ParseResources parses a bare extra-resource list "NAME:CAP,NAME:CAP"
// (no primary axis, no pin suffix) — the fpartd job schema's "resources"
// field, which augments a named device. Rejections mirror ParseSpec.
func ParseResources(spec string) ([]Resource, error) {
	if spec == "" {
		return nil, nil
	}
	var out []Resource
	seen := map[string]bool{}
	for _, tok := range strings.Split(spec, ",") {
		name, capStr, ok := strings.Cut(tok, ":")
		if !ok || name == "" || capStr == "" {
			return nil, fmt.Errorf("resources %q: malformed token %q (want NAME:CAP)", spec, tok)
		}
		c, err := strconv.Atoi(capStr)
		if err != nil {
			return nil, fmt.Errorf("resources %q: cap in token %q is not an integer", spec, tok)
		}
		if c <= 0 {
			return nil, fmt.Errorf("resources %q: cap must be positive in token %q (got %d)", spec, tok, c)
		}
		if seen[name] {
			return nil, fmt.Errorf("resources %q: duplicate resource name in token %q", spec, tok)
		}
		seen[name] = true
		out = append(out, Resource{Name: name, Cap: c})
	}
	return out, nil
}

// LowerBound returns M = max(⌈S0/S_MAX⌉, ⌈|Y0|/T_MAX⌉), the theoretical
// minimum number of devices required to implement the circuit (§2).
//
// The size term uses the real-valued capacity S_ds·δ rather than the
// integer-floored per-block capacity: the paper's Table 2 reports M = 16 for
// s13207 on XC3020 (915 CLBs, capacity 64·0.9 = 57.6), which is
// ⌈915/57.6⌉ = 16, not ⌈915/57⌉ = 17. M is therefore a slightly optimistic
// bound — per-block feasibility still floors the capacity.
func LowerBound(h *hypergraph.Hypergraph, d Device) int {
	cap := float64(d.DatasheetCells) * d.Fill
	m := int(ceil(float64(h.TotalSize()) / cap))
	if io := ceilDiv(h.NumPads(), d.TMax()); io > m {
		m = io
	}
	if d.AuxCap > 0 {
		if aux := ceilDiv(h.TotalAux(), d.AuxCap); aux > m {
			m = aux
		}
	}
	// Each extra resource axis bounds M the same way the size axis does:
	// a circuit demanding 40 DSPs on a 12-DSP part needs ≥ ⌈40/12⌉ devices.
	for _, r := range d.Resources {
		if v := ceilDiv(h.TotalResource(r.Name), r.Cap); v > m {
			m = v
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ceil avoids importing math for one call site and keeps exact behaviour on
// integer-valued quotients.
func ceil(x float64) float64 {
	i := float64(int64(x))
	if x > i {
		return i + 1
	}
	return i
}
