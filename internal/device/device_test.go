package device

import (
	"testing"

	"fpart/internal/hypergraph"
	"strings"
)

func TestPaperDeviceCapacities(t *testing.T) {
	// §4: XC3020 (S_ds=64, T=64), XC3042 (144, 96), XC3090 (320, 144) at
	// δ=0.9; XC2064 (64, 58) at δ=1.0.
	cases := []struct {
		d          Device
		smax, tmax int
	}{
		{XC3020, 57, 64},  // floor(64*0.9) = 57
		{XC3042, 129, 96}, // floor(144*0.9) = 129
		{XC3090, 288, 144},
		{XC2064, 64, 58},
	}
	for _, c := range cases {
		if c.d.SMax() != c.smax {
			t.Errorf("%s SMax = %d, want %d", c.d.Name, c.d.SMax(), c.smax)
		}
		if c.d.TMax() != c.tmax {
			t.Errorf("%s TMax = %d, want %d", c.d.Name, c.d.TMax(), c.tmax)
		}
		if err := c.d.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.d.Name, err)
		}
	}
}

func TestFamilies(t *testing.T) {
	if XC2064.Family != XC2000 {
		t.Error("XC2064 should be XC2000 family")
	}
	for _, d := range []Device{XC3020, XC3042, XC3090} {
		if d.Family != XC3000 {
			t.Errorf("%s should be XC3000 family", d.Name)
		}
	}
	if XC2000.String() != "XC2000" || XC3000.String() != "XC3000" {
		t.Error("Family.String wrong")
	}
	if Family(9).String() == "" {
		t.Error("unknown family should render")
	}
}

func TestWithFill(t *testing.T) {
	d := XC3020.WithFill(1.0)
	if d.SMax() != 64 {
		t.Errorf("SMax at δ=1.0 = %d, want 64", d.SMax())
	}
	if XC3020.SMax() != 57 {
		t.Error("WithFill mutated the original")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Device{
		{Name: "z", DatasheetCells: 0, Pins: 1, Fill: 1},
		{Name: "z", DatasheetCells: 1, Pins: 0, Fill: 1},
		{Name: "z", DatasheetCells: 1, Pins: 1, Fill: 0},
		{Name: "z", DatasheetCells: 1, Pins: 1, Fill: 1.5},
		{Name: "z", DatasheetCells: 10, Pins: 1, Fill: 0.05}, // SMax rounds to 0
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, d)
		}
	}
}

func TestFits(t *testing.T) {
	d := XC3020 // S_MAX 57, T_MAX 64
	if !d.Fits(57, 64) {
		t.Error("exact capacity should fit")
	}
	if d.Fits(58, 64) || d.Fits(57, 65) {
		t.Error("overflow should not fit")
	}
	if !d.Fits(0, 0) {
		t.Error("empty block should fit")
	}
}

func TestByName(t *testing.T) {
	d, ok := ByName("XC3042")
	if !ok || d.Name != "XC3042" {
		t.Errorf("ByName(XC3042) = %v,%v", d, ok)
	}
	if _, ok := ByName("XC9999"); ok {
		t.Error("ByName found nonexistent device")
	}
}

func buildCircuit(t *testing.T, interiorSizes []int, pads int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	var prev hypergraph.NodeID = -1
	for _, s := range interiorSizes {
		id := b.AddInterior("v", s)
		if prev >= 0 {
			b.AddNet("e", prev, id)
		}
		prev = id
	}
	for i := 0; i < pads; i++ {
		p := b.AddPad("p")
		b.AddNet("pe", p, 0)
	}
	return b.MustBuild()
}

func TestLowerBoundSizeDominated(t *testing.T) {
	// 200 cells onto XC3020 (S_MAX=57): ⌈200/57⌉ = 4; 10 pads: ⌈10/64⌉ = 1.
	h := buildCircuit(t, []int{50, 50, 50, 50}, 10)
	if m := LowerBound(h, XC3020); m != 4 {
		t.Errorf("LowerBound = %d, want 4", m)
	}
}

func TestLowerBoundIODominated(t *testing.T) {
	// 10 cells, 200 pads onto XC3020 (T_MAX=64): ⌈200/64⌉ = 4.
	h := buildCircuit(t, []int{10}, 200)
	if m := LowerBound(h, XC3020); m != 4 {
		t.Errorf("LowerBound = %d, want 4", m)
	}
}

func TestLowerBoundAtLeastOne(t *testing.T) {
	h := buildCircuit(t, []int{1}, 0)
	if m := LowerBound(h, XC3090); m != 1 {
		t.Errorf("LowerBound = %d, want 1", m)
	}
}

func TestLowerBoundPaperExamples(t *testing.T) {
	// Table 2: s38584 has 2904 CLBs (XC3000) and 292 IOBs; onto XC3020 the
	// paper reports M = 51: max(⌈2904/57⌉, ⌈292/64⌉) = max(51, 5) = 51.
	h := buildCircuit(t, manyOnes(2904), 292)
	if m := LowerBound(h, XC3020); m != 51 {
		t.Errorf("s38584/XC3020 M = %d, want 51", m)
	}
	// Table 4: s38584 onto XC3090: max(⌈2904/288⌉, ⌈292/144⌉) = max(11,3) = 11.
	if m := LowerBound(h, XC3090); m != 11 {
		t.Errorf("s38584/XC3090 M = %d, want 11", m)
	}
}

func TestLowerBoundUsesRealValuedCapacity(t *testing.T) {
	// s13207 on XC3020: 915 CLBs / (64·0.9 = 57.6) = 15.89 → M = 16 per
	// Table 2, even though the integer per-block capacity is 57 and
	// ⌈915/57⌉ would be 17.
	h := buildCircuit(t, manyOnes(915), 154)
	if m := LowerBound(h, XC3020); m != 16 {
		t.Errorf("s13207/XC3020 M = %d, want 16", m)
	}
}

func TestAllPaperLowerBounds(t *testing.T) {
	// Every M column entry from Tables 2-5 cross-checked against Table 1.
	type row struct {
		iobs, clbs2000, clbs3000 int
		m3020, m3042, m3090      int // XC3000-mapped
		m2064                    int // XC2000-mapped; 0 = not in Table 5
	}
	rows := map[string]row{
		"c3540":  {72, 373, 283, 5, 3, 1, 6},
		"c5315":  {301, 535, 377, 7, 4, 3, 9},
		"c6288":  {64, 833, 833, 15, 7, 3, 14},
		"c7552":  {313, 611, 489, 9, 4, 3, 10},
		"s5378":  {86, 500, 381, 7, 3, 2, 0},
		"s9234":  {43, 565, 454, 8, 4, 2, 0},
		"s13207": {154, 1038, 915, 16, 8, 4, 0},
		"s15850": {102, 1013, 842, 15, 7, 3, 0},
		"s38417": {136, 2763, 2221, 39, 18, 8, 0},
		"s38584": {292, 3956, 2904, 51, 23, 11, 0},
	}
	for name, r := range rows {
		h3 := buildCircuit(t, manyOnes(r.clbs3000), r.iobs)
		if m := LowerBound(h3, XC3020); m != r.m3020 {
			t.Errorf("%s/XC3020: M = %d, want %d", name, m, r.m3020)
		}
		if m := LowerBound(h3, XC3042); m != r.m3042 {
			t.Errorf("%s/XC3042: M = %d, want %d", name, m, r.m3042)
		}
		if m := LowerBound(h3, XC3090); m != r.m3090 {
			t.Errorf("%s/XC3090: M = %d, want %d", name, m, r.m3090)
		}
		if r.m2064 > 0 {
			h2 := buildCircuit(t, manyOnes(r.clbs2000), r.iobs)
			if m := LowerBound(h2, XC2064); m != r.m2064 {
				t.Errorf("%s/XC2064: M = %d, want %d", name, m, r.m2064)
			}
		}
	}
}

func manyOnes(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func TestDeviceString(t *testing.T) {
	if XC3020.String() == "" {
		t.Error("empty String")
	}
}

func TestParse(t *testing.T) {
	if d, ok := Parse("XC3042"); !ok || d.Name != XC3042.Name || d.DatasheetCells != XC3042.DatasheetCells {
		t.Fatalf("Parse(XC3042) = %+v, %v", d, ok)
	}
	d, ok := Parse("20000x2000")
	if !ok {
		t.Fatal("Parse rejected 20000x2000")
	}
	if d.DatasheetCells != 20000 || d.Pins != 2000 || d.Fill != 0.9 || d.Family != XC3000 {
		t.Fatalf("Parse(20000x2000) = %+v", d)
	}
	if d.SMax() != 18000 {
		t.Fatalf("SMax = %d, want 18000", d.SMax())
	}
	for _, bad := range []string{"", "x", "20x", "x20", "-5x7", "0x9", "axb", "XC9999"} {
		if _, ok := Parse(bad); ok {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestParseSpecVector covers the extended part syntax
// NAME:CAP,NAME:CAP,.../T_MAX: the first token is the primary cell axis,
// later tokens become extra resource axes, the suffix sets T_MAX.
func TestParseSpecVector(t *testing.T) {
	d, err := ParseSpec("LUT:1500,FF:3000,DSP:12/200")
	if err != nil {
		t.Fatal(err)
	}
	if d.DatasheetCells != 1500 || d.Pins != 200 || d.Fill != 1.0 {
		t.Errorf("primary axis: %+v", d)
	}
	want := []Resource{{Name: "FF", Cap: 3000}, {Name: "DSP", Cap: 12}}
	if len(d.Resources) != len(want) {
		t.Fatalf("Resources = %+v, want %+v", d.Resources, want)
	}
	for i, r := range want {
		if d.Resources[i] != r {
			t.Errorf("Resources[%d] = %+v, want %+v", i, d.Resources[i], r)
		}
	}

	// No pin suffix: the default vector pin budget applies.
	d2, err := ParseSpec("LUT:64")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Pins != DefaultVectorPins || len(d2.Resources) != 0 {
		t.Errorf("suffix-free spec: %+v", d2)
	}

	// Catalog and CELLSxPINS forms still resolve through ParseSpec.
	if d3, err := ParseSpec("XC3020"); err != nil || d3.Name != "XC3020" {
		t.Errorf("catalog name through ParseSpec: %+v, %v", d3, err)
	}
}

// TestParseSpecRejections pins the error contract of satellite 1: each
// malformed spec is rejected with a message naming the offending token.
func TestParseSpecRejections(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring the error must carry
	}{
		{"not-a-part", "unknown device"},
		{"LUT:100,LUT:50", `duplicate resource name in token "LUT:50"`},
		{"LUT:100,DSP:0", `must be positive in token "DSP:0"`},
		{"LUT:100,DSP:-3", `must be positive in token "DSP:-3"`},
		{"LUT:100,DSP:many", `token "DSP:many" is not an integer`},
		{"LUT:100,DSP", `malformed resource token "DSP"`},
		{"LUT:100,:5", `malformed resource token ":5"`},
		{"LUT:", `malformed resource token "LUT:"`},
		{"LUT:100/zero", "T_MAX suffix"},
		{"LUT:100/-4", "T_MAX suffix"},
		{"LUT:0", `must be positive in token "LUT:0"`},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) error %q, want it to contain %q", tc.spec, err, tc.want)
		}
	}
}

func TestParseResources(t *testing.T) {
	rs, err := ParseResources("FF:3000,DSP:12")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0] != (Resource{Name: "FF", Cap: 3000}) || rs[1] != (Resource{Name: "DSP", Cap: 12}) {
		t.Errorf("ParseResources = %+v", rs)
	}
	if rs, err := ParseResources(""); err != nil || rs != nil {
		t.Errorf("empty spec: %v, %v", rs, err)
	}
	for _, bad := range []string{"FF", "FF:0", "FF:x", "FF:1,FF:2", ":3"} {
		if _, err := ParseResources(bad); err == nil {
			t.Errorf("ParseResources(%q) accepted", bad)
		}
	}
}

func TestWithResources(t *testing.T) {
	d, err := XC3020.WithResources([]Resource{{Name: "DSP", Cap: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Resources) != 1 || len(XC3020.Resources) != 0 {
		t.Errorf("WithResources must copy, not mutate: %+v / %+v", d.Resources, XC3020.Resources)
	}
	if _, err := d.WithResources([]Resource{{Name: "DSP", Cap: 9}}); err == nil {
		t.Error("duplicate axis across base and extra accepted")
	}
	if _, err := XC3020.WithResources([]Resource{{Name: "FF", Cap: 0}}); err == nil {
		t.Error("zero cap accepted")
	}
	if same, err := XC3020.WithResources(nil); err != nil || len(same.Resources) != 0 {
		t.Errorf("nil extras: %+v, %v", same, err)
	}
}

func TestFitsRes(t *testing.T) {
	d := Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0,
		Resources: []Resource{{Name: "FF", Cap: 5}, {Name: "DSP", Cap: 2}}}
	cases := []struct {
		demands []int
		want    bool
	}{
		{nil, true},
		{[]int{5}, true},
		{[]int{5, 2}, true},
		{[]int{6, 0}, false},
		{[]int{0, 3}, false},
		{[]int{5, 2, 999}, true}, // beyond the declared axes: ignored
	}
	for _, tc := range cases {
		if got := d.FitsRes(tc.demands); got != tc.want {
			t.Errorf("FitsRes(%v) = %v, want %v", tc.demands, got, tc.want)
		}
	}
	if !(Device{}).FitsRes([]int{7}) {
		t.Error("scalar device must admit any demand vector")
	}
}
