// Package seed constructs initial bipartitions of a remainder block, per
// §3.2 of Krupnova & Saucier (DATE 1999).
//
// Randomly created initial partitions lead to poor results, and the overall
// algorithm needs a *semi-feasible* starting point, so two constructive
// methods are run and the best of the two is kept:
//
//  1. GreedyConeMerge — the greedy node-merge of Brasen, Hiol & Saucier
//     (ICCAD 1993): two seed nodes (the biggest node, and the node at
//     maximal BFS distance from it) grow two blocks simultaneously, each
//     step adding the frontier candidate with the best cost S/T; growing
//     both blocks at once softens the greed.
//  2. RatioCutSweep — the ratio-cut objective of Wei & Cheng (1991): nodes
//     are swept one by one into a block seeded at one point, and the prefix
//     minimizing cut/(S1·S2) with at least one feasible side is kept; the
//     sweep is run from both seed points.
//
// Both methods operate on the set of nodes currently in the remainder block
// of a global partition, and account for nets escaping to already-carved
// blocks when estimating terminal counts.
package seed

import (
	"math"
	"sync"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// tracker incrementally maintains size and terminal count of a growing node
// cluster within the remainder of a partition. A net contributes a terminal
// to the cluster when the cluster holds at least one of its pins and the net
// has pins outside the cluster — elsewhere in the remainder or in an
// already-carved block.
//
// Node and net IDs are dense, so membership and the per-net counters live
// in flat slices; the map-based version this replaced spent most of the
// seeding phase hashing and iterating.
type tracker struct {
	p      *partition.Partition
	h      *hypergraph.Hypergraph
	rem    partition.BlockID
	inC    []bool  // cluster membership per node
	pinsIn []int32 // cluster pins per net
	remPin []int32 // remainder pins per net (memoized; -1 unknown)
	size   int
	aux    int
	term   int
	pads   int
	nodes  int
	intCut int   // nets split between the cluster and the rest of the remainder
	res    []int // per-extra-resource demand totals (empty for scalar devices)
}

func newTracker(p *partition.Partition, rem partition.BlockID) *tracker {
	t := new(tracker)
	t.reset(p, rem)
	return t
}

// reset rebinds the tracker to (p, rem) and clears its state, reusing the
// three graph-sized slices when they still fit. Pooled callers rely on a
// reset tracker being indistinguishable from a fresh one.
func (t *tracker) reset(p *partition.Partition, rem partition.BlockID) {
	h := p.Hypergraph()
	t.p, t.h, t.rem = p, h, rem
	t.inC = resizeBools(t.inC, h.NumNodes())
	t.pinsIn = resizeInt32s(t.pinsIn, h.NumNets(), 0)
	t.remPin = resizeInt32s(t.remPin, h.NumNets(), -1)
	t.size, t.aux, t.term, t.pads, t.nodes, t.intCut = 0, 0, 0, 0, 0, 0
	if nr := p.NumRes(); cap(t.res) < nr {
		t.res = make([]int, nr)
	} else {
		t.res = t.res[:nr]
		clear(t.res)
	}
}

// resizeBools returns a false-filled n-slice, reusing b's storage when it
// fits.
func resizeBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// resizeInt32s returns an n-slice filled with fill, reusing s's storage when
// it fits.
func resizeInt32s(s []int32, n int, fill int32) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
		if fill == 0 {
			return s
		}
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = fill
	}
	return s
}

// remainderPins returns the number of pins net e has inside the remainder.
func (t *tracker) remainderPins(e hypergraph.NetID) int {
	if c := t.remPin[e]; c >= 0 {
		return int(c)
	}
	c := t.p.PinCount(e, t.rem)
	t.remPin[e] = int32(c)
	return c
}

// external reports whether net e has pins outside the remainder.
func (t *tracker) external(e hypergraph.NetID) bool {
	return t.remainderPins(e) < len(t.h.Pins(e))
}

// netCounts returns whether net e currently contributes a terminal to the
// cluster, given pinsIn cluster pins.
func (t *tracker) contributes(e hypergraph.NetID, pinsIn int) bool {
	if pinsIn == 0 {
		return false
	}
	return pinsIn < t.remainderPins(e) || t.external(e)
}

// Probe returns the size and terminal count the cluster would have after
// adding v, without modifying the tracker.
func (t *tracker) Probe(v hypergraph.NodeID) (size, term int) {
	n := t.h.Node(v)
	size = t.size + n.Size
	term = t.term
	if n.Kind == hypergraph.Pad {
		term++
	}
	for _, e := range t.h.Nets(v) {
		before := int(t.pinsIn[e])
		wasC := t.contributes(e, before)
		isC := t.contributes(e, before+1)
		if isC && !wasC {
			term++
		} else if !isC && wasC {
			term--
		}
	}
	return size, term
}

// Add commits node v to the cluster.
func (t *tracker) Add(v hypergraph.NodeID) {
	_, term := t.Probe(v)
	n := t.h.Node(v)
	t.size += n.Size
	t.aux += n.Aux
	for r := range t.res {
		t.res[r] += t.p.ResDemandOf(v, r)
	}
	t.term = term
	if n.Kind == hypergraph.Pad {
		t.pads++
	}
	t.nodes++
	t.inC[v] = true
	for _, e := range t.h.Nets(v) {
		before := int(t.pinsIn[e])
		after := before + 1
		rp := t.remainderPins(e)
		wasSplit := before > 0 && before < rp
		isSplit := after > 0 && after < rp
		if isSplit && !wasSplit {
			t.intCut++
		} else if !isSplit && wasSplit {
			t.intCut--
		}
		t.pinsIn[e] = int32(after)
	}
}

// resFits reports whether adding v keeps every extra resource axis of the
// bound device within its cap; trivially true for scalar devices, whose
// trackers carry no res totals. Mirrors the size/aux saturation tests of
// the §3.2 growth loops.
func (t *tracker) resFits(v hypergraph.NodeID) bool {
	for r := range t.res {
		if t.res[r]+t.p.ResDemandOf(v, r) > t.p.ResCap(r) {
			return false
		}
	}
	return true
}

// resWithin reports whether the cluster's accumulated extra-resource
// demand totals all sit within the bound device's caps.
func (t *tracker) resWithin() bool {
	for r := range t.res {
		if t.res[r] > t.p.ResCap(r) {
			return false
		}
	}
	return true
}

// Contains reports whether v is already in the cluster.
func (t *tracker) Contains(v hypergraph.NodeID) bool { return t.inC[v] }

// bfsScratch recycles the distance array and queue of restrictedBFS across
// peels (the seeding phase runs two BFS sweeps per peel step).
type bfsScratch struct {
	dist  []int32
	queue []hypergraph.NodeID
}

var bfsPool = sync.Pool{New: func() any { return new(bfsScratch) }}

// restrictedBFS returns hop distances from seedNode over remainder nodes
// only; -1 for unreached. The returned slice belongs to bs and is valid
// until bs returns to the pool.
func restrictedBFS(bs *bfsScratch, p *partition.Partition, rem partition.BlockID, seedNode hypergraph.NodeID) []int32 {
	h := p.Hypergraph()
	dist := resizeInt32s(bs.dist, h.NumNodes(), -1)
	bs.dist = dist
	dist[seedNode] = 0
	queue := bs.queue[:0]
	queue = append(queue, seedNode)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range h.Nets(v) {
			for _, u := range h.Pins(e) {
				if p.Block(u) != rem {
					continue
				}
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	bs.queue = queue[:0]
	return dist
}

// seeds picks the two seed nodes of §3.2: the biggest interior node of the
// remainder, and the remainder node at maximal BFS distance from it
// (unreachable nodes count as farthest). Ties break toward lower IDs.
func seeds(p *partition.Partition, rem partition.BlockID) (s1, s2 hypergraph.NodeID, ok bool) {
	h := p.Hypergraph()
	nodes := p.NodesIn(rem)
	if len(nodes) < 2 {
		return 0, 0, false
	}
	s1 = -1
	for _, v := range nodes {
		n := h.Node(v)
		if n.Kind != hypergraph.Interior {
			continue
		}
		if s1 < 0 || n.Size > h.Node(s1).Size {
			s1 = v
		}
	}
	if s1 < 0 {
		s1 = nodes[0] // pad-only remainder: degenerate but handled
	}
	bs := bfsPool.Get().(*bfsScratch)
	defer bfsPool.Put(bs)
	dist := restrictedBFS(bs, p, rem, s1)
	s2 = -1
	best := -1
	const inf = math.MaxInt32
	for _, v := range nodes {
		if v == s1 {
			continue
		}
		d := int(dist[v])
		if d < 0 {
			if h.Node(v).Kind != hypergraph.Interior {
				continue
			}
			d = inf
		}
		if d > best {
			best, s2 = d, v
		}
	}
	if s2 < 0 {
		s2 = nodes[1]
		if s2 == s1 {
			s2 = nodes[0]
		}
	}
	return s1, s2, true
}

// GreedyConeMerge runs the two-block greedy merge and returns the node set
// of the block selected as P_k (the saturated block with the biggest size).
// Returns ok=false when the remainder has fewer than two nodes.
func GreedyConeMerge(p *partition.Partition, rem partition.BlockID, dev device.Device) (blockP []hypergraph.NodeID, ok bool) {
	s1, s2, ok := seeds(p, rem)
	if !ok {
		return nil, false
	}
	h := p.Hypergraph()
	smax := dev.SMax()

	mk := func(s hypergraph.NodeID) *grow {
		g := newGrow(p, rem)
		g.add(p, h, rem, s)
		return g
	}
	a := mk(s1)
	b := mk(s2)
	defer a.release()
	defer b.release()

	taken := func(v hypergraph.NodeID) bool { return a.t.Contains(v) || b.t.Contains(v) }

	tmax := dev.TMax()
	// step grows g by its best frontier candidate; returns false when the
	// block is saturated — no candidate keeps both device constraints
	// (§3.2: "merge for each block stops when constraints are saturated").
	// When the frontier runs dry but the block is unsaturated (disconnected
	// remainder, or pads stranded by earlier carves), growth jumps to the
	// best admissible node anywhere in the remainder.
	step := func(g *grow) bool {
		var bestV hypergraph.NodeID = -1
		bestCost := math.Inf(-1)
		consider := func(v hypergraph.NodeID) {
			s, t := g.t.Probe(v)
			if s > smax || t > tmax {
				return
			}
			if dev.AuxCap > 0 && g.t.aux+h.Node(v).Aux > dev.AuxCap {
				return
			}
			if !g.t.resFits(v) {
				return
			}
			// Brasen/Saucier cost: size per terminal of the merged
			// cluster — bigger is better (more logic per pin).
			cost := float64(s) / float64(t+1)
			if cost > bestCost || (cost == bestCost && v < bestV) {
				bestCost, bestV = cost, v
			}
		}
		keep := g.frontier[:0]
		for _, v := range g.frontier {
			if taken(v) {
				continue // compact out: taken nodes never return
			}
			keep = append(keep, v)
			consider(v)
		}
		g.frontier = keep
		if bestV < 0 && len(g.frontier) == 0 {
			for _, v := range p.NodesIn(rem) {
				if !taken(v) {
					consider(v)
				}
			}
		}
		if bestV < 0 {
			return false
		}
		g.add(p, h, rem, bestV)
		return true
	}

	for !a.done || !b.done {
		if !a.done && !step(a) {
			a.done = true
		}
		if !b.done && !step(b) {
			b.done = true
		}
	}

	// The block with the biggest size becomes P_k; everything else stays in
	// (returns to) the remainder.
	if b.t.size > a.t.size {
		a = b
	}
	return a.detachMembers(), true
}

// add extends a grow cluster with v and refreshes its frontier.
func (g *grow) add(p *partition.Partition, h *hypergraph.Hypergraph, rem partition.BlockID, v hypergraph.NodeID) {
	g.t.Add(v)
	g.members = append(g.members, v)
	for _, e := range h.Nets(v) {
		for _, u := range h.Pins(e) {
			if u != v && !g.inFront[u] && p.Block(u) == rem && !g.t.Contains(u) {
				g.inFront[u] = true
				g.frontier = append(g.frontier, u)
			}
		}
	}
}

// grow tracks one of the two simultaneously growing blocks of the greedy
// cone merge. The frontier is an insertion-ordered slice deduplicated by
// inFront; entries that joined a cluster are compacted out during scans.
// Candidate selection breaks ties by a total order (cost, then node ID), so
// scan order does not affect the pick.
type grow struct {
	t        *tracker
	members  []hypergraph.NodeID
	frontier []hypergraph.NodeID
	inFront  []bool
	done     bool
}

// growPool recycles grow clusters across peel steps: each §3.2 seeding pass
// builds up to three of them, and the tracker plus membership slices are all
// graph-sized.
var growPool = sync.Pool{New: func() any { return &grow{t: new(tracker)} }}

// newGrow draws a fully reset grow cluster from the pool.
func newGrow(p *partition.Partition, rem partition.BlockID) *grow {
	g := growPool.Get().(*grow)
	g.t.reset(p, rem)
	g.inFront = resizeBools(g.inFront, p.Hypergraph().NumNodes())
	g.frontier = g.frontier[:0]
	g.members = g.members[:0]
	g.done = false
	return g
}

// detachMembers hands ownership of the member list to the caller, so the
// cluster can return to the pool while its result escapes.
func (g *grow) detachMembers() []hypergraph.NodeID {
	m := g.members
	g.members = nil
	return m
}

// release returns g to the pool, dropping its partition binding.
func (g *grow) release() {
	g.t.p, g.t.h = nil, nil
	growPool.Put(g)
}

// RatioCutSweep runs the ratio-cut sweep from both seed points and returns
// the side-1 node set of the prefix with the smallest ratio
// cut/(S1·S2) among prefixes where at least one side meets the device
// constraints. Returns ok=false when no valid prefix exists.
func RatioCutSweep(p *partition.Partition, rem partition.BlockID, dev device.Device) (blockP []hypergraph.NodeID, ok bool) {
	s1, s2, okSeeds := seeds(p, rem)
	if !okSeeds {
		return nil, false
	}
	remNodes := p.NodesIn(rem)
	totalSize := 0
	h := p.Hypergraph()
	for _, v := range remNodes {
		totalSize += h.Node(v).Size
	}

	best := math.Inf(1)
	var bestSet []hypergraph.NodeID
	for _, s := range []hypergraph.NodeID{s1, s2} {
		set, ratio, found := sweepFrom(p, rem, dev, s, remNodes, totalSize)
		if found && ratio < best {
			best, bestSet = ratio, set
		}
	}
	if bestSet == nil {
		return nil, false
	}
	return bestSet, true
}

// attEntry is one lazy max-heap entry of a sweep: a node and the
// attraction it had when pushed.
type attEntry struct {
	a  int32
	id hypergraph.NodeID
}

// sweepScratch recycles one ratio-cut sweep's working state (tracker,
// attraction array, lazy heap, member list) across the two sweeps per peel.
type sweepScratch struct {
	t       *tracker
	attract []int32
	heap    attHeap
	members []hypergraph.NodeID
	mark    []int32             // per-node last-touched stamp, see sweepFrom
	touched []hypergraph.NodeID // nodes stamped by the current add
	epoch   int32
}

var sweepPool = sync.Pool{New: func() any { return &sweepScratch{t: new(tracker)} }}

// attHeap is a binary max-heap ordered by (attraction desc, node ID asc),
// with lazy deletion: every attraction increment pushes a fresh entry, and
// pops skip entries that are stale (superseded value) or already clustered.
// The top valid entry is therefore exactly the node a full scan with the
// same tie-break would select.
type attHeap []attEntry

func attBefore(x, y attEntry) bool {
	if x.a != y.a {
		return x.a > y.a
	}
	return x.id < y.id
}

func (hp *attHeap) push(e attEntry) {
	*hp = append(*hp, e)
	i := len(*hp) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !attBefore((*hp)[i], (*hp)[par]) {
			break
		}
		(*hp)[i], (*hp)[par] = (*hp)[par], (*hp)[i]
		i = par
	}
}

func (hp *attHeap) pop() attEntry {
	h := *hp
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	*hp = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		next := i
		if l < len(h) && attBefore(h[l], h[next]) {
			next = l
		}
		if r < len(h) && attBefore(h[r], h[next]) {
			next = r
		}
		if next == i {
			break
		}
		h[i], h[next] = h[next], h[i]
		i = next
	}
	return top
}

// sweepFrom grows a cluster from seed node s, moving at each step the
// unclustered remainder node with the strongest attraction (most incident
// pins already in the cluster; ties to smaller BFS frontier order), and
// records the best ratio prefix.
func sweepFrom(p *partition.Partition, rem partition.BlockID, dev device.Device, s hypergraph.NodeID, remNodes []hypergraph.NodeID, totalSize int) (set []hypergraph.NodeID, ratio float64, found bool) {
	h := p.Hypergraph()
	sc := sweepPool.Get().(*sweepScratch)
	t := sc.t
	t.reset(p, rem)
	attract := resizeInt32s(sc.attract, h.NumNodes(), 0)
	sc.attract = attract
	heap := sc.heap[:0]
	members := sc.members[:0]
	defer func() {
		// Retire the scratch with its grown capacities; members never
		// escapes (the best prefix is copied out below).
		sc.heap, sc.members = heap[:0], members[:0]
		sc.t.p, sc.t.h = nil, nil
		sweepPool.Put(sc)
	}()

	mark := resizeInt32s(sc.mark, h.NumNodes(), 0)
	sc.mark = mark
	sc.epoch = 0
	add := func(v hypergraph.NodeID) {
		t.Add(v)
		members = append(members, v)
		// A neighbour sharing several nets with v gains several attraction
		// points but needs only ONE fresh heap entry — entries carrying the
		// intermediate values would be superseded immediately and popped as
		// stale. The epoch stamp dedups neighbours within this add; the top
		// valid entry the lazy heap yields is unchanged.
		sc.epoch++
		sc.touched = sc.touched[:0]
		for _, e := range h.Nets(v) {
			for _, u := range h.Pins(e) {
				if u != v && p.Block(u) == rem && !t.Contains(u) {
					attract[u]++
					if mark[u] != sc.epoch {
						mark[u] = sc.epoch
						sc.touched = append(sc.touched, u)
					}
				}
			}
		}
		for _, u := range sc.touched {
			heap.push(attEntry{a: attract[u], id: u})
		}
	}
	add(s)

	best := math.Inf(1)
	bestLen := -1
	n := len(remNodes)
	for len(members) < n {
		// Pick the most attracted node; fall back to the lowest-ID
		// unclustered node for disconnected remainders.
		var v hypergraph.NodeID = -1
		for len(heap) > 0 {
			e := heap.pop()
			if t.Contains(e.id) || attract[e.id] != e.a {
				continue // lazy deletion: clustered or superseded entry
			}
			v = e.id
			break
		}
		if v < 0 {
			for _, u := range remNodes {
				if !t.Contains(u) {
					v = u
					break
				}
			}
			if v < 0 {
				break
			}
		}
		add(v)
		if len(members) == n {
			break // no second side left
		}
		s1, t1 := t.size, t.term
		s2 := totalSize - t.size
		if s1 == 0 || s2 == 0 {
			continue
		}
		r := float64(t.intCut) / (float64(s1) * float64(s2))
		// Require at least one feasible side. The second side's terminal
		// count is not tracked; the cluster side must be the feasible one.
		if dev.Fits(s1, t1) && t.resWithin() && r < best {
			best = r
			bestLen = len(members)
		}
	}
	if bestLen < 0 {
		return nil, 0, false
	}
	out := make([]hypergraph.NodeID, bestLen)
	copy(out, members[:bestLen])
	return out, best, true
}

// Grow greedily extends an initial cluster of remainder nodes, adding at
// each step the frontier candidate with the best size-per-terminal cost
// S/T, and stopping when no candidate keeps both device constraints. It
// returns the full member set (including init). Callers outside this
// package use it to saturate a nucleus found by other means (e.g. the flow
// baseline's min-cut side).
func Grow(p *partition.Partition, rem partition.BlockID, dev device.Device, init []hypergraph.NodeID) []hypergraph.NodeID {
	h := p.Hypergraph()
	g := newGrow(p, rem)
	defer g.release()
	for _, v := range init {
		g.add(p, h, rem, v)
	}
	smax, tmax := dev.SMax(), dev.TMax()
	for {
		var bestV hypergraph.NodeID = -1
		bestCost := math.Inf(-1)
		consider := func(v hypergraph.NodeID) {
			s, t := g.t.Probe(v)
			if s > smax || t > tmax {
				return
			}
			if dev.AuxCap > 0 && g.t.aux+h.Node(v).Aux > dev.AuxCap {
				return
			}
			if !g.t.resFits(v) {
				return
			}
			cost := float64(s) / float64(t+1)
			if cost > bestCost || (cost == bestCost && v < bestV) {
				bestCost, bestV = cost, v
			}
		}
		keep := g.frontier[:0]
		for _, v := range g.frontier {
			if g.t.Contains(v) {
				continue // compact out: clustered nodes never return
			}
			keep = append(keep, v)
			consider(v)
		}
		g.frontier = keep
		if bestV < 0 && len(g.frontier) == 0 {
			// Frontier exhausted (disconnected remainder or stranded
			// pads): jump to the best admissible node anywhere.
			for _, v := range p.NodesIn(rem) {
				if !g.t.Contains(v) {
					consider(v)
				}
			}
		}
		if bestV < 0 {
			return g.detachMembers()
		}
		g.add(p, h, rem, bestV)
	}
}

// Best runs both constructive methods, applies each candidate split to the
// partition in turn (new block carved out of the remainder), and keeps the
// one with the better solution key (§3.4). It returns the new block ID.
// The caller must ensure the remainder has at least two nodes.
func Best(p *partition.Partition, rem partition.BlockID, dev device.Device, cp partition.CostParams, m int) (partition.BlockID, bool) {
	cand1, ok1 := GreedyConeMerge(p, rem, dev)
	cand2, ok2 := RatioCutSweep(p, rem, dev)
	if !ok1 && !ok2 {
		return partition.NoBlock, false
	}
	newBlock := p.AddBlock()
	apply := func(set []hypergraph.NodeID) partition.Key {
		for _, v := range set {
			p.Move(v, newBlock)
		}
		return p.Key(cp, rem, m)
	}
	unapply := func(set []hypergraph.NodeID) {
		for _, v := range set {
			p.Move(v, rem)
		}
	}
	switch {
	case ok1 && !ok2:
		apply(cand1)
	case ok2 && !ok1:
		apply(cand2)
	default:
		k1 := apply(cand1)
		unapply(cand1)
		k2 := apply(cand2)
		if k1.Better(k2) {
			unapply(cand2)
			apply(cand1)
		}
	}
	return newBlock, true
}
