package seed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

var testDev = device.Device{Name: "T", DatasheetCells: 6, Pins: 8, Fill: 1.0}

// twoClusters builds a circuit of two densely connected clusters of n nodes
// each, joined by a single bridge net — the canonical easy bipartition.
func twoClusters(t testing.TB, n int) (*hypergraph.Hypergraph, []hypergraph.NodeID, []hypergraph.NodeID) {
	t.Helper()
	var b hypergraph.Builder
	var left, right []hypergraph.NodeID
	for i := 0; i < n; i++ {
		left = append(left, b.AddInterior("l", 1))
	}
	for i := 0; i < n; i++ {
		right = append(right, b.AddInterior("r", 1))
	}
	for i := 0; i+1 < n; i++ {
		b.AddNet("le", left[i], left[i+1])
		b.AddNet("re", right[i], right[i+1])
		if i+2 < n {
			b.AddNet("le2", left[i], left[i+2])
			b.AddNet("re2", right[i], right[i+2])
		}
	}
	b.AddNet("bridge", left[n-1], right[0])
	return b.MustBuild(), left, right
}

func TestTrackerProbeMatchesAdd(t *testing.T) {
	h, left, _ := twoClusters(t, 5)
	p := partition.New(h, testDev)
	tr := newTracker(p, 0)
	for _, v := range left {
		ps, pt := tr.Probe(v)
		tr.Add(v)
		if tr.size != ps || tr.term != pt {
			t.Fatalf("Probe(%d) = (%d,%d) but Add produced (%d,%d)", v, ps, pt, tr.size, tr.term)
		}
	}
}

func TestTrackerCountsExternalNets(t *testing.T) {
	// A net from the remainder to an already-carved block must count as a
	// terminal of any cluster containing its remainder pin.
	var b hypergraph.Builder
	v0 := b.AddInterior("v0", 1)
	v1 := b.AddInterior("v1", 1)
	out := b.AddInterior("out", 1)
	b.AddNet("ext", v0, out)
	b.AddNet("int", v0, v1)
	h := b.MustBuild()
	p := partition.New(h, testDev)
	carved := p.AddBlock()
	p.Move(out, carved)

	tr := newTracker(p, 0)
	tr.Add(v0)
	// Cluster {v0}: net "ext" goes to the carved block (terminal), net
	// "int" goes to v1 still in the remainder (terminal) -> T = 2.
	if tr.term != 2 {
		t.Errorf("term = %d, want 2", tr.term)
	}
	tr.Add(v1)
	// Cluster {v0,v1}: "int" fully inside -> only "ext" remains.
	if tr.term != 1 {
		t.Errorf("term = %d, want 1", tr.term)
	}
}

func TestTrackerPads(t *testing.T) {
	var b hypergraph.Builder
	v := b.AddInterior("v", 2)
	pd := b.AddPad("p")
	b.AddNet("n", v, pd)
	h := b.MustBuild()
	p := partition.New(h, testDev)
	tr := newTracker(p, 0)
	tr.Add(pd)
	if tr.term != 2 { // pad itself + net to v still outside cluster
		t.Errorf("term = %d, want 2", tr.term)
	}
	if tr.size != 0 {
		t.Errorf("size = %d, want 0 (pads are size-free)", tr.size)
	}
	tr.Add(v)
	if tr.term != 1 { // net internal now; pad IOB remains
		t.Errorf("term = %d, want 1", tr.term)
	}
}

func TestSeedsPicksBiggestAndFarthest(t *testing.T) {
	var b hypergraph.Builder
	v0 := b.AddInterior("v0", 1)
	big := b.AddInterior("big", 9)
	v2 := b.AddInterior("v2", 1)
	far := b.AddInterior("far", 1)
	b.AddNet("e1", big, v0)
	b.AddNet("e2", v0, v2)
	b.AddNet("e3", v2, far)
	h := b.MustBuild()
	p := partition.New(h, testDev)
	s1, s2, ok := seeds(p, 0)
	if !ok {
		t.Fatal("seeds failed")
	}
	if s1 != big {
		t.Errorf("s1 = %d, want biggest node %d", s1, big)
	}
	if s2 != far {
		t.Errorf("s2 = %d, want farthest node %d", s2, far)
	}
}

func TestSeedsTooSmall(t *testing.T) {
	var b hypergraph.Builder
	v := b.AddInterior("v", 1)
	b.AddNet("n", v)
	p := partition.New(b.MustBuild(), testDev)
	if _, _, ok := seeds(p, 0); ok {
		t.Error("seeds should fail on single-node remainder")
	}
}

func TestGreedyConeMergeSplitsClusters(t *testing.T) {
	h, left, right := twoClusters(t, 5) // 10 cells, device fits 6
	p := partition.New(h, testDev)
	set, ok := GreedyConeMerge(p, 0, testDev)
	if !ok {
		t.Fatal("GreedyConeMerge failed")
	}
	if len(set) == 0 || len(set) > 6 {
		t.Fatalf("block size %d outside (0,6]", len(set))
	}
	// The returned block should be dominated by one cluster: count sides.
	inSet := map[hypergraph.NodeID]bool{}
	for _, v := range set {
		inSet[v] = true
	}
	l, r := 0, 0
	for _, v := range left {
		if inSet[v] {
			l++
		}
	}
	for _, v := range right {
		if inSet[v] {
			r++
		}
	}
	if l > 0 && r > 0 && l+r >= 5 {
		t.Errorf("greedy merge mixed clusters badly: left=%d right=%d", l, r)
	}
}

func TestGreedyConeMergeRespectsSMax(t *testing.T) {
	h, _, _ := twoClusters(t, 8)
	p := partition.New(h, testDev) // S_MAX = 6
	set, ok := GreedyConeMerge(p, 0, testDev)
	if !ok {
		t.Fatal("failed")
	}
	size := 0
	for _, v := range set {
		size += h.Node(v).Size
	}
	if size > testDev.SMax() {
		t.Errorf("block size %d exceeds S_MAX %d", size, testDev.SMax())
	}
}

func TestRatioCutSweepFindsBridge(t *testing.T) {
	h, left, right := twoClusters(t, 5)
	dev := device.Device{Name: "T", DatasheetCells: 8, Pins: 8, Fill: 1.0}
	p := partition.New(h, dev)
	set, ok := RatioCutSweep(p, 0, dev)
	if !ok {
		t.Fatal("RatioCutSweep failed")
	}
	inSet := map[hypergraph.NodeID]bool{}
	for _, v := range set {
		inSet[v] = true
	}
	l, r := 0, 0
	for _, v := range left {
		if inSet[v] {
			l++
		}
	}
	for _, v := range right {
		if inSet[v] {
			r++
		}
	}
	// The min-ratio prefix should be exactly one cluster.
	if !(l == 5 && r == 0) && !(l == 0 && r == 5) {
		t.Errorf("ratio cut did not isolate a cluster: left=%d right=%d", l, r)
	}
}

func TestRatioCutFeasibleSideRequired(t *testing.T) {
	// Device so small nothing fits: no valid prefix.
	h, _, _ := twoClusters(t, 5)
	tiny := device.Device{Name: "tiny", DatasheetCells: 1, Pins: 1, Fill: 1.0}
	p := partition.New(h, tiny)
	if _, ok := RatioCutSweep(p, 0, tiny); ok {
		t.Error("RatioCutSweep should fail when no prefix is feasible")
	}
}

func TestBestCarvesFeasibleBlock(t *testing.T) {
	h, _, _ := twoClusters(t, 6) // 12 cells, device 6
	p := partition.New(h, testDev)
	m := device.LowerBound(h, testDev)
	nb, ok := Best(p, 0, testDev, partition.DefaultCost(), m)
	if !ok {
		t.Fatal("Best failed")
	}
	if p.NumBlocks() != 2 {
		t.Fatalf("k = %d, want 2", p.NumBlocks())
	}
	if p.Size(nb) == 0 {
		t.Error("carved block is empty")
	}
	if p.Size(nb) > testDev.SMax() {
		t.Errorf("carved block size %d > S_MAX", p.Size(nb))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBestOnDisconnectedRemainder(t *testing.T) {
	var b hypergraph.Builder
	for c := 0; c < 3; c++ {
		v0 := b.AddInterior("a", 2)
		v1 := b.AddInterior("b", 2)
		b.AddNet("n", v0, v1)
	}
	h := b.MustBuild()
	p := partition.New(h, testDev)
	nb, ok := Best(p, 0, testDev, partition.DefaultCost(), 2)
	if !ok {
		t.Fatal("Best failed on disconnected remainder")
	}
	if p.Size(nb) == 0 || p.Size(nb) > testDev.SMax() {
		t.Errorf("block size %d invalid", p.Size(nb))
	}
}

// Property: on random graphs, Best always carves a nonempty block within
// S_MAX that leaves the partition bookkeeping valid.
func TestQuickBestInvariants(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 6 + r.Intn(40)
		for i := 0; i < n; i++ {
			if r.Intn(10) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1+r.Intn(2))
			}
		}
		for e := 0; e < n+r.Intn(2*n); e++ {
			d := 2 + r.Intn(3)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		dev := device.Device{Name: "d", DatasheetCells: 4 + r.Intn(20), Pins: 4 + r.Intn(20), Fill: 1.0}
		p := partition.New(h, dev)
		nb, ok := Best(p, 0, dev, partition.DefaultCost(), device.LowerBound(h, dev))
		if !ok {
			return true // degenerate inputs may legitimately fail
		}
		if p.Size(nb) > dev.SMax() {
			return false
		}
		if p.Nodes(nb) == 0 {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBestOn500(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	var bld hypergraph.Builder
	const n = 500
	for i := 0; i < n; i++ {
		bld.AddInterior("v", 1)
	}
	for e := 0; e < 800; e++ {
		bld.AddNet("e", hypergraph.NodeID(r.Intn(n)), hypergraph.NodeID(r.Intn(n)), hypergraph.NodeID(r.Intn(n)))
	}
	h := bld.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 100, Pins: 200, Fill: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := partition.New(h, dev)
		Best(p, 0, dev, partition.DefaultCost(), device.LowerBound(h, dev))
	}
}
