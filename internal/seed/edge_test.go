package seed

// Edge-case tests for the constructive seed machinery.

import (
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func TestGrowFromMultiNodeInit(t *testing.T) {
	h, left, right := twoClusters(t, 6)
	dev := device.Device{Name: "d", DatasheetCells: 8, Pins: 20, Fill: 1.0}
	p := partition.New(h, dev)
	// Start from a 2-node nucleus on the left; growth stays on the left.
	init := []hypergraph.NodeID{left[0], left[1]}
	set := Grow(p, 0, dev, init)
	if len(set) < 2 {
		t.Fatalf("Grow returned %d nodes", len(set))
	}
	inSet := map[hypergraph.NodeID]bool{}
	size := 0
	for _, v := range set {
		inSet[v] = true
		size += h.Node(v).Size
	}
	if !inSet[left[0]] || !inSet[left[1]] {
		t.Error("Grow dropped the nucleus")
	}
	if size > dev.SMax() {
		t.Errorf("grown size %d > S_MAX", size)
	}
	rightIn := 0
	for _, v := range right {
		if inSet[v] {
			rightIn++
		}
	}
	if rightIn > 2 {
		t.Errorf("growth leaked %d nodes across the bridge", rightIn)
	}
}

func TestGrowPinBound(t *testing.T) {
	// Star center with 10 leaves, T_MAX=4: growth stops before the pin
	// budget is blown even though size allows everything.
	var b hypergraph.Builder
	center := b.AddInterior("c", 1)
	var leaves []hypergraph.NodeID
	for i := 0; i < 10; i++ {
		leaf := b.AddInterior("l", 1)
		leaves = append(leaves, leaf)
		b.AddNet("n", center, leaf)
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 20, Pins: 4, Fill: 1.0}
	p := partition.New(h, dev)
	set := Grow(p, 0, dev, []hypergraph.NodeID{leaves[0]})
	// Verify the final cluster is pin-feasible by probing via a block.
	blk := p.AddBlock()
	for _, v := range set {
		p.Move(v, blk)
	}
	if p.Terminals(blk) > dev.TMax() {
		t.Errorf("grown cluster has %d terminals > %d", p.Terminals(blk), dev.TMax())
	}
}

func TestBestSingleNodeRemainder(t *testing.T) {
	var b hypergraph.Builder
	v := b.AddInterior("v", 1)
	b.AddNet("n", v)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 4, Fill: 1.0}
	p := partition.New(h, dev)
	if _, ok := Best(p, 0, dev, partition.DefaultCost(), 1); ok {
		t.Error("single-node remainder bipartitioned")
	}
}

func TestGreedyConeMergeAuxBound(t *testing.T) {
	// FF-heavy cells with AuxCap 2: the grown block respects the cap.
	var b hypergraph.Builder
	var ids []hypergraph.NodeID
	for i := 0; i < 8; i++ {
		id := b.AddInterior("ff", 1)
		b.SetAux(id, 1)
		ids = append(ids, id)
	}
	for i := 0; i+1 < 8; i++ {
		b.AddNet("n", ids[i], ids[i+1])
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0, AuxCap: 2}
	p := partition.New(h, dev)
	set, ok := GreedyConeMerge(p, 0, dev)
	if !ok {
		t.Fatal("merge failed")
	}
	aux := 0
	for _, v := range set {
		aux += h.Node(v).Aux
	}
	if aux > 2 {
		t.Errorf("grown block carries %d aux > cap 2", aux)
	}
}

func TestRatioCutPrefersSmallRatio(t *testing.T) {
	// Unequal clusters joined by a bridge: the sweep should cut at the
	// bridge, not mid-cluster.
	var b hypergraph.Builder
	var big, small []hypergraph.NodeID
	for i := 0; i < 10; i++ {
		big = append(big, b.AddInterior("b", 1))
	}
	for i := 0; i < 4; i++ {
		small = append(small, b.AddInterior("s", 1))
	}
	for i := 0; i+1 < 10; i++ {
		b.AddNet("be", big[i], big[i+1])
		if i+2 < 10 {
			b.AddNet("be2", big[i], big[i+2])
		}
	}
	for i := 0; i+1 < 4; i++ {
		b.AddNet("se", small[i], small[i+1])
	}
	b.AddNet("bridge", big[9], small[0])
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 12, Pins: 20, Fill: 1.0}
	p := partition.New(h, dev)
	set, ok := RatioCutSweep(p, 0, dev)
	if !ok {
		t.Fatal("sweep failed")
	}
	inSet := map[hypergraph.NodeID]bool{}
	for _, v := range set {
		inSet[v] = true
	}
	// The selected side must be cluster-pure.
	bigIn, smallIn := 0, 0
	for _, v := range big {
		if inSet[v] {
			bigIn++
		}
	}
	for _, v := range small {
		if inSet[v] {
			smallIn++
		}
	}
	if bigIn > 0 && smallIn > 0 && bigIn+smallIn < 13 {
		t.Errorf("sweep mixed clusters: big=%d small=%d", bigIn, smallIn)
	}
}
