package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	payload := []byte(`{"answer":42,"name":"x"}`)
	if err := s.Put("abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("abc123")
	if !ok {
		t.Fatal("stored entry missing")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mangled: %s", got)
	}
	if _, ok := s.Get("never-stored"); ok {
		t.Fatal("phantom hit")
	}
	st := s.StatsNow()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReopenSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.Put("key1", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key2", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}

	// A fresh Store over the same directory must index both entries.
	s2 := open(t, dir, 0)
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", s2.Len())
	}
	got, ok := s2.Get("key2")
	if !ok || string(got) != `{"v":2}` {
		t.Fatalf("reopened get: %q %v", got, ok)
	}
	if s2.Bytes() <= 0 {
		t.Fatal("byte accounting lost across reopen")
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.Put("good", []byte(`{"v":"ok"}`)); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(path string){
		"truncated": func(p string) {
			raw, _ := os.ReadFile(p)
			os.WriteFile(p, raw[:len(raw)/2], 0o644)
		},
		"bitflip": func(p string) {
			raw, _ := os.ReadFile(p)
			// Flip a byte inside the payload, leaving the JSON well-formed.
			i := strings.Index(string(raw), `"ok"`)
			raw[i+1] = 'X'
			os.WriteFile(p, raw, 0o644)
		},
		"badversion": func(p string) {
			var env map[string]any
			raw, _ := os.ReadFile(p)
			json.Unmarshal(raw, &env)
			env["version"] = 99
			out, _ := json.Marshal(env)
			os.WriteFile(p, out, 0o644)
		},
		"wrongkey": func(p string) {
			raw, _ := os.ReadFile(p)
			os.WriteFile(p, []byte(strings.ReplaceAll(string(raw), `"victim"`, `"evil00"`)), 0o644)
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("victim", []byte(`{"v":"ok"}`)); err != nil {
				t.Fatal(err)
			}
			before := s.StatsNow().Corrupt
			corrupt(filepath.Join(dir, "victim.json"))
			if _, ok := s.Get("victim"); ok {
				t.Fatal("corrupt entry served")
			}
			if s.StatsNow().Corrupt != before+1 {
				t.Fatal("corruption not counted")
			}
			if _, err := os.Stat(filepath.Join(dir, "victim.json")); !os.IsNotExist(err) {
				t.Fatal("corrupt file not deleted")
			}
			// The good entry is untouched.
			if _, ok := s.Get("good"); !ok {
				t.Fatal("collateral damage to intact entry")
			}
		})
	}
}

func TestLRUByteBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	// Size the budget for roughly three entries.
	pad := strings.Repeat("x", 200)
	probe := fmt.Sprintf(`{"pad":%q}`, pad)
	s := open(t, dir, 0)
	if err := s.Put("probe", []byte(probe)); err != nil {
		t.Fatal(err)
	}
	entryBytes := s.Bytes()
	s = open(t, dir, 3*entryBytes+entryBytes/2)
	os.Remove(filepath.Join(dir, "probe.json"))
	s = open(t, dir, 3*entryBytes+entryBytes/2)

	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(probe)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct atimes
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	time.Sleep(2 * time.Millisecond)
	if err := s.Put("k3", []byte(probe)); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("k1"); ok {
		t.Fatal("LRU entry k1 survived over-budget Put")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently-used entry %s evicted", k)
		}
	}
	if s.StatsNow().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
	if s.Bytes() > 3*entryBytes+entryBytes/2 {
		t.Fatalf("over budget after eviction: %d", s.Bytes())
	}
}

func TestOpenEnforcesShrunkenBudget(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	payload := []byte(fmt.Sprintf(`{"pad":%q}`, strings.Repeat("y", 100)))
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	perEntry := s.Bytes() / 4

	s2 := open(t, dir, 2*perEntry+perEntry/2)
	if s2.Len() != 2 {
		t.Fatalf("reopen with smaller budget kept %d entries, want 2", s2.Len())
	}
	// The survivors are the most recently written.
	for _, k := range []string{"k2", "k3"} {
		if _, ok := s2.Get(k); !ok {
			t.Fatalf("most-recent entry %s evicted at open", k)
		}
	}
}

func TestTempFilesSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, 0)
	if s.Len() != 0 {
		t.Fatal("temp file indexed as an entry")
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-123")); !os.IsNotExist(err) {
		t.Fatal("stale temp file not swept")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	for _, key := range []string{"", "../escape", "a/b", "a.b", strings.Repeat("k", 200)} {
		if err := s.Put(key, []byte(`{}`)); err == nil {
			t.Errorf("key %q accepted", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("key %q readable", key)
		}
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	s := open(t, t.TempDir(), 256)
	if err := s.Put("big", []byte(fmt.Sprintf(`{"pad":%q}`, strings.Repeat("z", 1024)))); err == nil {
		t.Fatal("payload larger than the whole budget accepted")
	}
	if s.Len() != 0 {
		t.Fatal("rejected payload left residue")
	}
}

// TestConcurrentAccess exercises the store under the race detector:
// parallel writers, readers, and over-budget eviction.
func TestConcurrentAccess(t *testing.T) {
	payload := []byte(fmt.Sprintf(`{"pad":%q}`, strings.Repeat("c", 64)))
	s := open(t, t.TempDir(), 4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%24)
				if i%3 == 0 {
					if err := s.Put(key, payload); err != nil {
						t.Error(err)
						return
					}
				} else {
					s.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Bytes() > 4096 {
		t.Fatalf("budget exceeded after concurrent load: %d", s.Bytes())
	}
	st := s.StatsNow()
	if st.Writes == 0 || st.Hits == 0 {
		t.Fatalf("stats: %+v", st)
	}
}
