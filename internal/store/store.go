// Package store is a disk-backed content-addressed result store: the
// persistence layer under the fpartd in-memory result cache.
//
// The in-memory LRU of internal/service dies with the process, but
// partitioning results are pure functions of (hypergraph structure,
// device, method) — exactly what the service's Fingerprint hashes — so
// they are safe to keep forever and share across restarts and peers. The
// store keeps one file per fingerprint key under a data directory:
//
//	<dir>/<key>.json    — a versioned JSON envelope around the payload
//	<dir>/.tmp-*        — in-flight writes, renamed into place atomically
//
// Properties:
//
//   - Atomic writes. Put writes to a temp file in the same directory and
//     renames it over the final name, so a crash mid-write never leaves a
//     truncated entry visible; stale temp files are swept at Open.
//   - Corruption detection. The envelope records a format version and the
//     SHA-256 of the payload; Get verifies both (and that the entry is
//     filed under its own key) and deletes anything that fails, counting
//     it, so one flipped bit never serves a wrong partition.
//   - LRU byte budget. The store tracks entry sizes and access order and
//     evicts the least-recently-used files when the on-disk total exceeds
//     the budget. Access times are persisted best-effort via the file
//     mtime so the LRU order survives restarts too.
//
// The payload is opaque bytes: the service layer owns the result
// serialization (see internal/service's stored-result codec), the store
// owns durability. All methods are safe for concurrent use.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Version is the on-disk envelope format version. Envelopes with another
// version are treated as corrupt (deleted and counted), so a future
// incompatible codec bump invalidates old entries instead of mis-reading
// them.
const Version = 1

// envelope is the on-disk JSON framing around one payload.
type envelope struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	// Sum is the hex SHA-256 of Payload; Get recomputes and compares.
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// entry is the in-memory index record for one on-disk file.
type entry struct {
	key   string
	size  int64 // file size in bytes (envelope included)
	atime time.Time
}

// Store is a disk-backed content-addressed byte store with an LRU byte
// budget. Create one with Open.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry
	bytes   int64

	hits      atomic.Int64
	misses    atomic.Int64
	writes    atomic.Int64
	evictions atomic.Int64
	corrupt   atomic.Int64
}

// Open opens (creating if needed) the store rooted at dir with an LRU
// budget of maxBytes on-disk bytes (≤ 0 means 256 MiB). Existing entries
// are indexed by their file sizes and mtimes — oldest-accessed first —
// and leftover temp files from interrupted writes are removed.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, entries: make(map[string]*entry)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name)) // interrupted write
			continue
		}
		key, ok := strings.CutSuffix(name, ".json")
		if !ok {
			continue // not ours; leave it alone
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.entries[key] = &entry{key: key, size: info.Size(), atime: info.ModTime()}
		s.bytes += info.Size()
	}
	// Enforce the budget immediately: a shrunken -store-bytes must bite at
	// boot, not only on the next write.
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// validKey rejects keys that could escape the directory or collide with
// temp files. Fingerprint keys are lowercase hex, so this is a cheap
// defensive gate, not a parser.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_') {
			return false
		}
	}
	return true
}

// Get returns the payload stored under key, if present and intact. A
// corrupt entry (bad envelope, version or checksum mismatch, or an entry
// filed under the wrong key) is deleted, counted, and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	ent, ok := s.entries[key]
	if ok {
		ent.atime = time.Now()
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}

	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		// Index and disk disagree (external deletion); drop the entry.
		s.dropLocked1(key)
		s.misses.Add(1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil ||
		env.Version != Version || env.Key != key ||
		env.Sum != payloadSum(env.Payload) {
		s.corrupt.Add(1)
		s.removeFile(key)
		s.misses.Add(1)
		return nil, false
	}
	// Persist the LRU touch best-effort so access order survives restarts.
	now := time.Now()
	_ = os.Chtimes(s.path(key), now, now)
	s.hits.Add(1)
	return env.Payload, true
}

// Put stores payload under key, replacing any previous entry, then evicts
// least-recently-used entries until the on-disk total fits the budget.
// The payload must be one valid JSON value (it is embedded raw in the
// envelope so entries stay greppable on disk); a payload larger than the
// whole budget is rejected.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	raw, err := json.Marshal(envelope{
		Version: Version,
		Key:     key,
		Sum:     payloadSum(payload),
		Payload: json.RawMessage(payload),
	})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if int64(len(raw)) > s.maxBytes {
		return fmt.Errorf("store: entry %q (%d bytes) exceeds the %d-byte budget", key, len(raw), s.maxBytes)
	}

	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}

	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		s.bytes -= old.size
	}
	s.entries[key] = &entry{key: key, size: int64(len(raw)), atime: time.Now()}
	s.bytes += int64(len(raw))
	s.evictLocked()
	s.mu.Unlock()
	s.writes.Add(1)
	return nil
}

// evictLocked removes least-recently-used entries until the byte total is
// within budget. Callers hold mu.
func (s *Store) evictLocked() {
	if s.bytes <= s.maxBytes {
		return
	}
	ents := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		ents = append(ents, e)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].atime.Before(ents[j].atime) })
	for _, e := range ents {
		if s.bytes <= s.maxBytes {
			break
		}
		os.Remove(s.path(e.key))
		s.bytes -= e.size
		delete(s.entries, e.key)
		s.evictions.Add(1)
	}
}

// removeFile deletes an entry's file and index record.
func (s *Store) removeFile(key string) {
	os.Remove(s.path(key))
	s.dropLocked1(key)
}

// dropLocked1 removes key from the index (taking mu itself).
func (s *Store) dropLocked1(key string) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.bytes -= e.size
		delete(s.entries, key)
	}
	s.mu.Unlock()
}

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the indexed on-disk byte total.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats is a snapshot of the store's operational counters.
type Stats struct {
	Entries   int
	Bytes     int64
	Hits      int64
	Misses    int64
	Writes    int64
	Evictions int64
	Corrupt   int64
}

// StatsNow snapshots the counters for the /metrics exposition.
func (s *Store) StatsNow() Stats {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return Stats{
		Entries:   entries,
		Bytes:     bytes,
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
	}
}

func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
