package replicate

import (
	"fmt"
	"strings"
	"testing"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
	"fpart/internal/partition"
	"fpart/internal/techmap"
)

// mapBlif parses, maps, and lowers a BLIF string.
func mapBlif(t *testing.T, blif string) (*techmap.Mapped, *hypergraph.Hypergraph) {
	t.Helper()
	c, err := netlist.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	m, err := techmap.Map(c, techmap.XC3000Arch)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	return m, h
}

// broadcast builds the canonical replication win: one driver gate whose
// output feeds consumers in another block; replicating the driver removes
// the crossing.
const broadcast = `
.model bc
.inputs a b
.outputs z0 z1 z2 z3
.names a b s
11 1
.names s a z0
11 1
.names s b z1
11 1
.names s a z2
10 1
.names s b z3
01 1
.end
`

func TestDirectedTerminalsMatchPartitionWithoutReplicas(t *testing.T) {
	m, h := mapBlif(t, broadcast)
	dev := device.Device{Name: "d", Family: device.XC3000, DatasheetCells: 10, Pins: 20, Fill: 1.0}
	// Split CLBs arbitrarily in two blocks.
	p := partition.New(h, dev)
	b1 := p.AddBlock()
	for i := 0; i < h.NumNodes(); i += 2 {
		p.Move(hypergraph.NodeID(i), b1)
	}
	sigs, err := extractSignals(m, h)
	if err != nil {
		t.Fatal(err)
	}
	e := &engine{h: h, p: p, dev: dev, signals: sigs,
		replicated: map[partition.BlockID]map[hypergraph.NodeID]bool{},
		extraSize:  map[partition.BlockID]int{}, extraAux: map[partition.BlockID]int{},
		drives: map[hypergraph.NodeID][]int{}, inputsOf: map[hypergraph.NodeID][]int{}}
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		want := p.Terminals(id)
		got := e.blockTerminals(id)
		if got != want {
			t.Errorf("block %d: directed terminals %d, partition model %d", b, got, want)
		}
	}
}

func TestReduceBroadcastDriver(t *testing.T) {
	m, h := mapBlif(t, broadcast)
	dev := device.Device{Name: "d", Family: device.XC3000, DatasheetCells: 10, Pins: 20, Fill: 1.0}
	p := partition.New(h, dev)
	// Put the CLB containing the s-driver alone in block 0; consumers in
	// block 1. Find the driver CLB via CellsPerCLB.
	driverCLB := -1
	for ci, cells := range m.CellsPerCLB() {
		for _, c := range cells {
			if c.Output == "s" {
				driverCLB = ci
			}
		}
	}
	if driverCLB < 0 {
		t.Fatal("driver CLB not found")
	}
	b1 := p.AddBlock()
	for v := 0; v < m.NumCLBs(); v++ {
		if v != driverCLB {
			p.Move(hypergraph.NodeID(v), b1)
		}
	}
	// Pads: a,b with the driver, outputs with consumers.
	for v := m.NumCLBs(); v < h.NumNodes(); v++ {
		name := h.Node(hypergraph.NodeID(v)).Name
		if strings.HasPrefix(name, "po:") {
			p.Move(hypergraph.NodeID(v), b1)
		}
	}
	res, err := Reduce(m, h, p, dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReduction() <= 0 {
		t.Errorf("no terminal reduction: before=%v after=%v replicas=%v",
			res.TerminalsBefore, res.TerminalsAfter, res.Replicas)
	}
	if res.CopiesAdded == 0 {
		t.Error("no replicas added despite reduction")
	}
	if !res.Feasible {
		t.Error("replication broke feasibility")
	}
}

func TestReduceRespectsSizeHeadroom(t *testing.T) {
	m, h := mapBlif(t, broadcast)
	// Device so tight no block has room for a replica.
	dev := device.Device{Name: "tight", Family: device.XC3000, DatasheetCells: 3, Pins: 20, Fill: 1.0}
	r, err := core.Partition(h, dev, core.Default())
	if err != nil || !r.Feasible {
		t.Skipf("setup infeasible: %v", err)
	}
	// Shrink headroom: blocks at S_MAX cannot take copies.
	full := true
	for b := 0; b < r.Partition.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if r.Partition.Nodes(id) > 0 && r.Partition.Size(id) < dev.SMax() {
			full = false
		}
	}
	res, err := Reduce(m, h, r.Partition, dev)
	if err != nil {
		t.Fatal(err)
	}
	if full && res.CopiesAdded > 0 {
		t.Error("replicated into full blocks")
	}
	if !res.Feasible {
		t.Error("reduction broke feasibility")
	}
}

func TestReduceEndToEndCounter(t *testing.T) {
	// A ripple counter mapped and partitioned, then replicated: the carry
	// chain crosses blocks and earlier stages are replication candidates.
	var sb strings.Builder
	sb.WriteString(".model ctr\n.inputs en clk\n.outputs")
	n := 24
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, " q%d", i)
	}
	sb.WriteString("\n")
	carry := "en"
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, ".names %s q%d d%d\n10 1\n01 1\n", carry, i, i)
		fmt.Fprintf(&sb, ".latch d%d q%d re clk 0\n", i, i)
		if i+1 < n {
			fmt.Fprintf(&sb, ".names %s q%d c%d\n11 1\n", carry, i, i)
			carry = fmt.Sprintf("c%d", i)
		}
	}
	sb.WriteString(".end\n")
	m, h := mapBlif(t, sb.String())
	dev := device.Device{Name: "d", Family: device.XC3000, DatasheetCells: 12, Pins: 24, Fill: 1.0}
	r, err := core.Partition(h, dev, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("partition infeasible")
	}
	res, err := Reduce(m, h, r.Partition, dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReduction() < 0 {
		t.Errorf("replication increased terminals: %+v", res)
	}
	if !res.Feasible {
		t.Error("replication broke feasibility")
	}
	t.Logf("counter: reduction=%d copies=%d", res.TotalReduction(), res.CopiesAdded)
}

func TestExtractSignalsLayoutMismatch(t *testing.T) {
	m, _ := mapBlif(t, broadcast)
	var b hypergraph.Builder
	b.AddInterior("lonely", 1)
	wrong := b.MustBuild()
	if _, err := extractSignals(m, wrong); err == nil {
		t.Error("mismatched hypergraph accepted")
	}
}
