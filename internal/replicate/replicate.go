// Package replicate implements functional logic replication as a
// post-partitioning optimization: copying a CLB into a consuming device so
// the signals it drives no longer cross into that device. Replication is
// the technique behind the r+p.0 and PROP competitors of the FPART paper
// ([11], [12]); the paper itself skips it because replication "depends on
// whether such functional information is available in the used input
// format" (§1) — the undirected netlists it consumes cannot tell driver
// from sink. This repository's BLIF → techmap flow retains direction, so
// the technique applies to circuits entering through that path.
//
// The pass is a greedy gain loop per block: replicating CLB c into block B
// removes the crossings of c's escaping output signals that B consumes and
// adds crossings for c's input signals not already available in B;
// candidates are applied while the net terminal reduction is positive and
// the block has logic/flip-flop headroom. The original copy always remains
// in its own block (cut-down replication that *moves* logic is plain
// repartitioning, handled elsewhere).
package replicate

import (
	"fmt"
	"sort"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
	"fpart/internal/techmap"
)

// signalInfo records one signal's directed connectivity at CLB level.
// Driver and consumers are expressed as hypergraph node IDs of the mapped
// circuit (CLBs first, then pads — the layout techmap.Mapped.Hypergraph
// produces).
type signalInfo struct {
	name      string
	driver    hypergraph.NodeID // CLB or PI pad; -1 when undriven
	consumers []hypergraph.NodeID
}

// Result describes the replication outcome.
type Result struct {
	// Replicas lists, per block, the CLB node IDs copied into it.
	Replicas map[partition.BlockID][]hypergraph.NodeID
	// TerminalsBefore and TerminalsAfter are per-block terminal counts
	// under the directed signal model.
	TerminalsBefore, TerminalsAfter map[partition.BlockID]int
	// CopiesAdded is the total logic overhead in CLBs.
	CopiesAdded int
	// Feasible reports whether every block still meets the device
	// constraints after replication (it held before by precondition).
	Feasible bool
}

// TotalReduction sums the per-block terminal reductions.
func (r *Result) TotalReduction() int {
	t := 0
	for b, before := range r.TerminalsBefore {
		t += before - r.TerminalsAfter[b]
	}
	return t
}

// engine carries the directed model.
type engine struct {
	h       *hypergraph.Hypergraph
	p       *partition.Partition
	dev     device.Device
	signals []signalInfo
	// drives[clb] lists signal indices driven by the CLB.
	drives map[hypergraph.NodeID][]int
	// inputsOf[clb] lists signal indices consumed by the CLB.
	inputsOf map[hypergraph.NodeID][]int
	// inputSet[clb] is the set of signal indices the CLB consumes.
	inputSet map[hypergraph.NodeID]map[int]bool
	// replicated[b][clb] marks replicas.
	replicated map[partition.BlockID]map[hypergraph.NodeID]bool
	// replicaNeeds[b] is the set of signals consumed by replicas in b.
	replicaNeeds map[partition.BlockID]map[int]bool
	// extraSize/extraAux accumulate replica overhead per block.
	extraSize map[partition.BlockID]int
	extraAux  map[partition.BlockID]int
}

// Reduce runs the replication pass. The partition must be over the exact
// hypergraph produced by m.Hypergraph(), with every block feasible.
func Reduce(m *techmap.Mapped, h *hypergraph.Hypergraph, p *partition.Partition, dev device.Device) (*Result, error) {
	sigs, err := extractSignals(m, h)
	if err != nil {
		return nil, err
	}
	e := &engine{
		h: h, p: p, dev: dev, signals: sigs,
		drives:       map[hypergraph.NodeID][]int{},
		inputsOf:     map[hypergraph.NodeID][]int{},
		inputSet:     map[hypergraph.NodeID]map[int]bool{},
		replicated:   map[partition.BlockID]map[hypergraph.NodeID]bool{},
		replicaNeeds: map[partition.BlockID]map[int]bool{},
		extraSize:    map[partition.BlockID]int{},
		extraAux:     map[partition.BlockID]int{},
	}
	for si, s := range e.signals {
		if s.driver >= 0 && h.Node(s.driver).Kind == hypergraph.Interior {
			e.drives[s.driver] = append(e.drives[s.driver], si)
		}
		for _, c := range s.consumers {
			if h.Node(c).Kind == hypergraph.Interior {
				e.inputsOf[c] = append(e.inputsOf[c], si)
				if e.inputSet[c] == nil {
					e.inputSet[c] = map[int]bool{}
				}
				e.inputSet[c][si] = true
			}
		}
	}

	res := &Result{
		Replicas:        map[partition.BlockID][]hypergraph.NodeID{},
		TerminalsBefore: map[partition.BlockID]int{},
		TerminalsAfter:  map[partition.BlockID]int{},
	}
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if p.Nodes(id) > 0 {
			res.TerminalsBefore[id] = e.blockTerminals(id)
		}
	}

	// Greedy loop per block, blocks in ID order for determinism.
	for b := range res.TerminalsBefore {
		e.reduceBlock(b, res)
	}

	res.Feasible = true
	for b := range res.TerminalsBefore {
		after := e.blockTerminals(b)
		res.TerminalsAfter[b] = after
		size := p.Size(b) + e.extraSize[b]
		aux := p.Aux(b) + e.extraAux[b]
		if !dev.FitsFull(size, after, aux) {
			res.Feasible = false
		}
	}
	return res, nil
}

// reduceBlock replicates into block b while a candidate strictly reduces
// its terminals.
func (e *engine) reduceBlock(b partition.BlockID, res *Result) {
	for {
		cur := e.blockTerminals(b)
		var best hypergraph.NodeID = -1
		bestAfter := cur
		for _, cand := range e.candidates(b) {
			if e.p.Size(b)+e.extraSize[b]+e.h.Node(cand).Size > e.dev.SMax() {
				continue
			}
			if e.dev.AuxCap > 0 && e.p.Aux(b)+e.extraAux[b]+e.h.Node(cand).Aux > e.dev.AuxCap {
				continue
			}
			after := e.terminalsWith(b, cand)
			if after < bestAfter || (after == bestAfter && best >= 0 && cand < best && after < cur) {
				best, bestAfter = cand, after
			}
		}
		if best < 0 || bestAfter >= cur {
			return
		}
		if e.replicated[b] == nil {
			e.replicated[b] = map[hypergraph.NodeID]bool{}
		}
		e.replicated[b][best] = true
		if e.replicaNeeds[b] == nil {
			e.replicaNeeds[b] = map[int]bool{}
		}
		for si := range e.inputSet[best] {
			e.replicaNeeds[b][si] = true
		}
		e.extraSize[b] += e.h.Node(best).Size
		e.extraAux[b] += e.h.Node(best).Aux
		res.Replicas[b] = append(res.Replicas[b], best)
		res.CopiesAdded++
	}
}

// candidates lists CLBs outside b that drive at least one signal b
// consumes across its boundary.
func (e *engine) candidates(b partition.BlockID) []hypergraph.NodeID {
	set := map[hypergraph.NodeID]bool{}
	for si := range e.signals {
		s := &e.signals[si]
		if s.driver < 0 || e.h.Node(s.driver).Kind != hypergraph.Interior {
			continue
		}
		if e.available(si, b) {
			continue
		}
		if !e.consumedIn(si, b) && !e.replicaNeeds[b][si] {
			continue
		}
		if e.replicated[b][s.driver] {
			continue
		}
		set[s.driver] = true
	}
	out := make([]hypergraph.NodeID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// available reports whether signal si is produced inside block b (original
// driver or replica, CLB or PI pad).
func (e *engine) available(si int, b partition.BlockID) bool {
	s := &e.signals[si]
	if s.driver < 0 {
		return false
	}
	if e.p.Block(s.driver) == b {
		return true
	}
	return e.replicated[b][s.driver]
}

// consumedIn reports whether any consumer of si sits in block b.
func (e *engine) consumedIn(si int, b partition.BlockID) bool {
	for _, c := range e.signals[si].consumers {
		if e.p.Block(c) == b {
			return true
		}
	}
	return false
}

// blockTerminals evaluates block b's terminal count under the directed
// model: inbound unavailable consumed signals + outbound driven signals
// still needed elsewhere + physical pads assigned to b.
func (e *engine) blockTerminals(b partition.BlockID) int {
	return e.terminalsWith(b, -1)
}

// terminalsWith evaluates blockTerminals(b) as if extra (when >= 0) were
// additionally replicated into b. Replica inputs count as consumption in
// their block, and other blocks' replica inputs keep a driver's signal
// exported.
func (e *engine) terminalsWith(b partition.BlockID, extra hypergraph.NodeID) int {
	avail := func(si int) bool {
		if e.available(si, b) {
			return true
		}
		return extra >= 0 && e.signals[si].driver == extra
	}
	consumed := func(si int) bool {
		if e.consumedIn(si, b) || e.replicaNeeds[b][si] {
			return true
		}
		return extra >= 0 && e.inputSet[extra][si]
	}
	term := e.p.Pads(b)
	for si := range e.signals {
		s := &e.signals[si]
		if consumed(si) && !avail(si) {
			term++ // inbound
			continue
		}
		// Outbound: b drives s (original copy only; replicas never export)
		// and some other block still needs it — through an original
		// consumer or a replica input. Pad-driven signals count too,
		// matching the partition model's incidence accounting.
		if s.driver >= 0 && e.p.Block(s.driver) == b {
			needed := false
			for _, c := range s.consumers {
				cb := e.p.Block(c)
				if cb == b {
					continue
				}
				if !e.available(si, cb) {
					needed = true
					break
				}
			}
			if !needed {
				for ob, needs := range e.replicaNeeds {
					if ob != b && needs[si] && !e.available(si, ob) {
						needed = true
						break
					}
				}
			}
			if needed {
				term++
			}
		}
	}
	return term
}

// extractSignals rebuilds the directed signal list from the mapped circuit
// and checks it matches the hypergraph's node layout.
func extractSignals(m *techmap.Mapped, h *hypergraph.Hypergraph) ([]signalInfo, error) {
	circ := m.Circuit()
	if m.NumCLBs() > h.NumNodes() {
		return nil, fmt.Errorf("replicate: hypergraph/mapped mismatch: %d CLBs > %d nodes", m.NumCLBs(), h.NumNodes())
	}
	// Node layout from Mapped.Hypergraph: CLBs 0..NumCLBs-1, then PI pads
	// in input order, then PO pads in output order.
	padID := map[string]hypergraph.NodeID{}
	next := hypergraph.NodeID(m.NumCLBs())
	for _, in := range circ.Inputs {
		padID["pi:"+in] = next
		next++
	}
	for _, out := range circ.Outputs {
		padID["po:"+out] = next
		next++
	}
	if int(next) != h.NumNodes() {
		return nil, fmt.Errorf("replicate: hypergraph has %d nodes, expected %d", h.NumNodes(), next)
	}

	// Signal driver/consumer sets at CLB granularity.
	type sigRec struct {
		driver    hypergraph.NodeID
		consumers map[hypergraph.NodeID]bool
	}
	recs := map[string]*sigRec{}
	order := []string{}
	get := func(name string) *sigRec {
		r, ok := recs[name]
		if !ok {
			r = &sigRec{driver: -1, consumers: map[hypergraph.NodeID]bool{}}
			recs[name] = r
			order = append(order, name)
		}
		return r
	}
	for _, in := range circ.Inputs {
		get(in).driver = padID["pi:"+in]
	}
	for _, out := range circ.Outputs {
		get(out).consumers[padID["po:"+out]] = true
	}
	for ci, clb := range m.CellsPerCLB() {
		clbNode := hypergraph.NodeID(ci)
		for _, cell := range clb {
			r := get(cell.Output)
			if r.driver < 0 || r.driver == clbNode {
				r.driver = clbNode
			} else if h.Node(r.driver).Kind == hypergraph.Pad {
				// A gate re-driving a PI name would be a malformed circuit;
				// keep the pad driver and treat the gate as a consumer-less
				// duplicate.
			} else {
				r.driver = clbNode // intra-CLB duplicates resolved to the CLB
			}
			for _, in := range cell.Inputs {
				get(in).consumers[clbNode] = true
			}
		}
	}
	out := make([]signalInfo, 0, len(order))
	for _, name := range order {
		r := recs[name]
		cs := make([]hypergraph.NodeID, 0, len(r.consumers))
		for c := range r.consumers {
			if c != r.driver { // self-consumption is internal
				cs = append(cs, c)
			}
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		out = append(out, signalInfo{name: name, driver: r.driver, consumers: cs})
	}
	return out, nil
}
