package partition

// Tests for MoveTrace's NetDelta reporting and the incremental cost
// aggregates it feeds (Validate cross-checks feasCount, termSum, sizeOver,
// termOver, and the external-balance numerator on every call).

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/hypergraph"
)

func TestQuickMoveTraceMatchesObservedTransitions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b hypergraph.Builder
		n := 4 + r.Intn(30)
		for i := 0; i < n; i++ {
			if r.Intn(6) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1+r.Intn(3))
			}
		}
		for e := 0; e < 2+r.Intn(40); e++ {
			deg := 2 + r.Intn(4)
			pins := make([]hypergraph.NodeID, deg)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		p := New(h, testDev)
		k := 2 + r.Intn(4)
		for i := 1; i < k; i++ {
			p.AddBlock()
		}
		buf := make([]NetDelta, 0, 8) // non-nil: nil means "record nothing"
		for mv := 0; mv < 120; mv++ {
			v := hypergraph.NodeID(r.Intn(n))
			to := BlockID(r.Intn(k))
			from := p.Block(v)
			nets := h.Nets(v)
			type obs struct{ fp, tp, span int }
			before := make([]obs, len(nets))
			for i, e := range nets {
				before[i] = obs{p.PinCount(e, from), p.PinCount(e, to), p.Span(e)}
			}
			buf = p.MoveTrace(v, to, buf[:0])
			if from == to {
				if len(buf) != 0 {
					t.Logf("seed %d: no-op move recorded %d deltas", seed, len(buf))
					return false
				}
				continue
			}
			if len(buf) != len(nets) {
				t.Logf("seed %d: %d deltas for %d nets", seed, len(buf), len(nets))
				return false
			}
			for i, nd := range buf {
				if nd.Net != nets[i] ||
					int(nd.FromPins) != before[i].fp ||
					int(nd.ToPins) != before[i].tp ||
					int(nd.SpanBefore) != before[i].span ||
					int(nd.SpanAfter) != p.Span(nets[i]) {
					t.Logf("seed %d move %d net %d: delta %+v, observed before=%+v spanAfter=%d",
						seed, mv, nets[i], nd, before[i], p.Span(nets[i]))
					return false
				}
			}
			// Prime and exercise the external-balance cache with varying m
			// so Validate cross-checks its incremental numerator too.
			if r.Intn(7) == 0 {
				p.ExternalBalance(1 + r.Intn(5))
			}
			if r.Intn(9) == 0 {
				if err := p.Validate(); err != nil {
					t.Logf("seed %d move %d: %v", seed, mv, err)
					return false
				}
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExternalBalanceCacheSurvivesAddBlock(t *testing.T) {
	var b hypergraph.Builder
	v0 := b.AddInterior("v", 1)
	for i := 0; i < 4; i++ {
		p := b.AddPad("p")
		b.AddNet("pe", p, v0)
	}
	h := b.MustBuild()
	p := New(h, testDev)
	b1 := p.AddBlock()
	p.Move(1, b1)
	p.Move(2, b1)
	_ = p.ExternalBalance(2) // prime the cache at m=2
	p.AddBlock()             // must fold the new zero-pad block into the numerator
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Recompute from scratch for comparison.
	pads := h.NumPads()
	want := 0
	for blk := 0; blk < p.NumBlocks(); blk++ {
		if d := pads - 2*p.Pads(BlockID(blk)); d > 0 {
			want += d
		}
	}
	if got := p.ExternalBalance(2); got != float64(want)/float64(pads) {
		t.Errorf("d_E after AddBlock = %v, want %v", got, float64(want)/float64(pads))
	}
}
