package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// small test device: S_MAX=10, T_MAX=4 at δ=1.
var testDev = device.Device{Name: "T", DatasheetCells: 10, Pins: 4, Fill: 1.0}

// grid builds a small circuit: 6 interior nodes in a chain plus 2 pads.
//
//	p0 - v0 - v1 - v2 - v3 - v4 - v5 - p1
//
// with one 3-pin net {v1, v3, v5}.
func grid(t testing.TB) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	v := make([]hypergraph.NodeID, 6)
	for i := range v {
		v[i] = b.AddInterior("v", 1)
	}
	p0 := b.AddPad("p0")
	p1 := b.AddPad("p1")
	b.AddNet("e0", p0, v[0])
	for i := 0; i < 5; i++ {
		b.AddNet("e", v[i], v[i+1])
	}
	b.AddNet("e6", v[5], p1)
	b.AddNet("big", v[1], v[3], v[5])
	return b.MustBuild()
}

func TestNewSingleBlock(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	if p.NumBlocks() != 1 {
		t.Fatalf("k = %d, want 1", p.NumBlocks())
	}
	if p.Size(0) != 6 || p.Pads(0) != 2 || p.Nodes(0) != 8 {
		t.Errorf("block 0: size=%d pads=%d nodes=%d", p.Size(0), p.Pads(0), p.Nodes(0))
	}
	if p.Cut() != 0 {
		t.Errorf("cut = %d, want 0", p.Cut())
	}
	// T_0 = 0 cut nets + 2 pads.
	if p.Terminals(0) != 2 {
		t.Errorf("T_0 = %d, want 2", p.Terminals(0))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveUpdatesCutAndTerminals(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	b1 := p.AddBlock()
	// Move v3 to block 1: cuts nets e(v2,v3), e(v3,v4), big(v1,v3,v5).
	p.Move(3, b1)
	if p.Cut() != 3 {
		t.Errorf("cut = %d, want 3", p.Cut())
	}
	// Block1: 3 cut nets incident + 0 pads = 3 terminals.
	if p.Terminals(b1) != 3 {
		t.Errorf("T_1 = %d, want 3", p.Terminals(b1))
	}
	// Block0: same 3 cut nets + 2 pads = 5.
	if p.Terminals(0) != 5 {
		t.Errorf("T_0 = %d, want 5", p.Terminals(0))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Move v3 back: everything restores.
	p.Move(3, 0)
	if p.Cut() != 0 || p.Terminals(0) != 2 || p.Terminals(b1) != 0 {
		t.Errorf("after undo: cut=%d T0=%d T1=%d", p.Cut(), p.Terminals(0), p.Terminals(b1))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveNoop(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	before := p.Moves()
	p.Move(0, 0)
	if p.Moves() != before {
		t.Error("self-move should not count")
	}
}

func TestPadMove(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	b1 := p.AddBlock()
	p.Move(6, b1) // p0 moves; net e0(p0,v0) becomes cut
	if p.Pads(0) != 1 || p.Pads(b1) != 1 {
		t.Errorf("pads: %d,%d want 1,1", p.Pads(0), p.Pads(b1))
	}
	if p.Cut() != 1 {
		t.Errorf("cut = %d, want 1", p.Cut())
	}
	// T_1 = 1 cut net + 1 pad = 2.
	if p.Terminals(b1) != 2 {
		t.Errorf("T_1 = %d, want 2", p.Terminals(b1))
	}
	if p.Size(b1) != 0 {
		t.Errorf("pad block size = %d, want 0", p.Size(b1))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEntireNetMigration(t *testing.T) {
	// A net whose pins all move one by one: span must return to 1 and the
	// cut must return to zero.
	var b hypergraph.Builder
	a := b.AddInterior("a", 1)
	c := b.AddInterior("b", 1)
	d := b.AddInterior("c", 1)
	e := b.AddNet("n", a, c, d)
	h := b.MustBuild()
	p := New(h, testDev)
	b1 := p.AddBlock()
	p.Move(a, b1)
	if p.Span(e) != 2 || p.Cut() != 1 {
		t.Fatalf("span=%d cut=%d after first move", p.Span(e), p.Cut())
	}
	p.Move(c, b1)
	p.Move(d, b1)
	if p.Span(e) != 1 || p.Cut() != 0 {
		t.Errorf("span=%d cut=%d after full migration, want 1,0", p.Span(e), p.Cut())
	}
	if p.PinCount(e, b1) != 3 || p.PinCount(e, 0) != 0 {
		t.Errorf("pin counts: b1=%d b0=%d", p.PinCount(e, b1), p.PinCount(e, 0))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksOfNet(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	b1 := p.AddBlock()
	b2 := p.AddBlock()
	p.Move(1, b1)
	p.Move(3, b2)
	// net "big" = {v1,v3,v5} spans blocks {b1, b2, 0}.
	big := hypergraph.NetID(h.NumNets() - 1)
	got := p.Blocks(big, nil)
	if len(got) != 3 {
		t.Fatalf("Blocks(big) = %v, want 3 entries", got)
	}
	seen := map[BlockID]bool{}
	for _, b := range got {
		seen[b] = true
	}
	if !seen[0] || !seen[b1] || !seen[b2] {
		t.Errorf("Blocks(big) = %v, want {0,1,2}", got)
	}
}

func TestClassification(t *testing.T) {
	h := grid(t) // 6 cells, 2 pads; device S_MAX=10 T_MAX=4
	p := New(h, testDev)
	// Single block: size 6 <= 10, T = 2 <= 4: feasible.
	if c := p.Classify(); c != FeasibleSolution {
		t.Errorf("class = %v, want feasible", c)
	}
	// Force T_0 over: shrink device pins via a tighter device.
	tight := device.Device{Name: "tight", DatasheetCells: 3, Pins: 1, Fill: 1.0}
	p2 := New(h, tight) // size 6 > 3: block 0 infeasible => semi-feasible (k-1=0 feasible blocks)
	if c := p2.Classify(); c != SemiFeasibleSolution {
		t.Errorf("class = %v, want semi-feasible", c)
	}
	b1 := p2.AddBlock()
	p2.Move(0, b1) // both blocks infeasible by terminals/size
	p2.Move(1, b1)
	p2.Move(2, b1)
	p2.Move(3, b1)
	if c := p2.Classify(); c != InfeasibleSolution {
		t.Errorf("class = %v, want infeasible (sizes %d,%d terms %d,%d)",
			c, p2.Size(0), p2.Size(1), p2.Terminals(0), p2.Terminals(1))
	}
}

func TestClassifyFigure2(t *testing.T) {
	// Reconstructs the three solutions pictured in Figure 2 of the paper on
	// a schematic device with S_MAX=10, T_MAX=4.
	//
	// (a) 4 blocks, all inside the rectangle -> feasible.
	// (b) 3 blocks, one outside (the remainder) -> semi-feasible.
	// (c) 4 blocks, two outside -> infeasible.
	mk := func(sizes []int, padsPerBlock []int) *Partition {
		var b hypergraph.Builder
		var ids [][]hypergraph.NodeID
		for bi, s := range sizes {
			var blk []hypergraph.NodeID
			for j := 0; j < s; j++ {
				blk = append(blk, b.AddInterior("v", 1))
			}
			for j := 0; j < padsPerBlock[bi]; j++ {
				pid := b.AddPad("p")
				b.AddNet("pe", pid, blk[0])
				blk = append(blk, pid)
			}
			ids = append(ids, blk)
		}
		h := b.MustBuild()
		p := New(h, testDev)
		for bi := 1; bi < len(sizes); bi++ {
			nb := p.AddBlock()
			for _, v := range ids[bi] {
				p.Move(v, nb)
			}
		}
		return p
	}
	a := mk([]int{8, 9, 7, 6}, []int{2, 1, 0, 3})
	if a.Classify() != FeasibleSolution {
		t.Errorf("Figure 2a: %v, want feasible", a.Classify())
	}
	b := mk([]int{8, 9, 15}, []int{2, 1, 0}) // block 2 size 15 > 10: remainder
	if b.Classify() != SemiFeasibleSolution {
		t.Errorf("Figure 2b: %v, want semi-feasible", b.Classify())
	}
	c := mk([]int{8, 12, 15, 6}, []int{2, 1, 0, 3})
	if c.Classify() != InfeasibleSolution {
		t.Errorf("Figure 2c: %v, want infeasible", c.Classify())
	}
}

func TestBlockDistance(t *testing.T) {
	h := grid(t)
	tiny := device.Device{Name: "tiny", DatasheetCells: 4, Pins: 1, Fill: 1.0}
	p := New(h, tiny)
	cp := DefaultCost()
	// Block 0: size 6 > 4 => dS = (6-4)/4 = 0.5; T = 2 > 1 => dT = (2-1)/1 = 1.
	want := 0.4*0.5 + 0.6*1.0
	if got := p.BlockDistance(0, cp); got != want {
		t.Errorf("BlockDistance = %v, want %v", got, want)
	}
	// Feasible block has zero distance.
	big := device.Device{Name: "big", DatasheetCells: 100, Pins: 10, Fill: 1.0}
	p2 := New(h, big)
	if got := p2.BlockDistance(0, cp); got != 0 {
		t.Errorf("feasible block distance = %v, want 0", got)
	}
}

func TestSizeDeviationPenalty(t *testing.T) {
	// Remainder of size 30 on S_MAX=10 with M=4, k=2 (1 created block):
	// S_AVG = 30/(4-1+1) = 7.5 <= 10 -> 0.
	// With M=3: S_AVG = 30/(3-1+1) = 10 -> 0 (not strictly greater).
	// With M=2: S_AVG = 30/(2-1+1) = 15 > 10 -> 15/10 = 1.5.
	var b hypergraph.Builder
	var pins []hypergraph.NodeID
	for i := 0; i < 40; i++ {
		pins = append(pins, b.AddInterior("v", 1))
	}
	b.AddNet("n", pins[0], pins[1])
	h := b.MustBuild()
	p := New(h, testDev)
	rem := BlockID(0)
	blk := p.AddBlock()
	for i := 0; i < 10; i++ {
		p.Move(pins[i], blk) // created block size 10, remainder 30
	}
	if d := p.SizeDeviation(rem, 4); d != 0 {
		t.Errorf("M=4: d_R = %v, want 0", d)
	}
	if d := p.SizeDeviation(rem, 3); d != 0 {
		t.Errorf("M=3: d_R = %v, want 0", d)
	}
	if d := p.SizeDeviation(rem, 2); d != 1.5 {
		t.Errorf("M=2: d_R = %v, want 1.5", d)
	}
}

func TestExternalBalance(t *testing.T) {
	// 4 pads, M=2 => avg 2 per block. Block with 0 pads contributes 1,
	// block with all 4 contributes 0.
	var b hypergraph.Builder
	v0 := b.AddInterior("v", 1)
	v1 := b.AddInterior("v", 1)
	b.AddNet("n", v0, v1)
	for i := 0; i < 4; i++ {
		p := b.AddPad("p")
		b.AddNet("pe", p, v0)
	}
	h := b.MustBuild()
	p := New(h, testDev)
	b1 := p.AddBlock()
	p.Move(v1, b1) // all pads stay in block 0
	if d := p.ExternalBalance(2); d != 1.0 {
		t.Errorf("d_E = %v, want 1.0", d)
	}
	// Balance the pads 2/2: zero penalty.
	p.Move(2, b1)
	p.Move(3, b1)
	if d := p.ExternalBalance(2); d != 0 {
		t.Errorf("balanced d_E = %v, want 0", d)
	}
	// No pads: always zero.
	var b2 hypergraph.Builder
	x := b2.AddInterior("x", 1)
	y := b2.AddInterior("y", 1)
	b2.AddNet("n", x, y)
	p2 := New(b2.MustBuild(), testDev)
	if d := p2.ExternalBalance(3); d != 0 {
		t.Errorf("no-pad d_E = %v, want 0", d)
	}
}

func TestKeyLexicographic(t *testing.T) {
	cases := []struct {
		a, b   Key
		better bool
	}{
		{Key{F: 3, D: 9, TSum: 9, DE: 9}, Key{F: 2, D: 0, TSum: 0, DE: 0}, true},    // F dominates
		{Key{F: 2, D: 1, TSum: 9, DE: 9}, Key{F: 2, D: 2, TSum: 0, DE: 0}, true},    // then D
		{Key{F: 2, D: 1, TSum: 5, DE: 9}, Key{F: 2, D: 1, TSum: 6, DE: 0}, true},    // then TSum
		{Key{F: 2, D: 1, TSum: 5, DE: 1}, Key{F: 2, D: 1, TSum: 5, DE: 2}, true},    // then DE
		{Key{F: 2, D: 1, TSum: 5, DE: 2}, Key{F: 2, D: 1, TSum: 5, DE: 2}, false},   // equal
		{Key{F: 1, D: 0, TSum: 0, DE: 0}, Key{F: 2, D: 99, TSum: 99, DE: 9}, false}, // F loses
	}
	for i, c := range cases {
		if got := c.a.Better(c.b); got != c.better {
			t.Errorf("case %d: Better = %v, want %v", i, got, c.better)
		}
	}
	// Float jitter below eps must not flip a comparison.
	a := Key{F: 1, D: 1.0 + 1e-12, TSum: 3, DE: 0}
	b := Key{F: 1, D: 1.0, TSum: 4, DE: 0}
	if !a.Better(b) {
		t.Error("eps guard failed: TSum should break the tie")
	}
}

func TestSnapshotRestore(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	b1 := p.AddBlock()
	p.Move(1, b1)
	p.Move(3, b1)
	snap := p.Snapshot()
	wantCut := p.Cut()
	p.Move(2, b1)
	p.Move(4, b1)
	p.Move(1, 0)
	p.Restore(snap)
	if p.Cut() != wantCut {
		t.Errorf("cut after restore = %d, want %d", p.Cut(), wantCut)
	}
	if p.Block(1) != b1 || p.Block(3) != b1 || p.Block(2) != 0 || p.Block(4) != 0 {
		t.Error("assignment not restored")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.K() != 2 || snap.Assign(1) != b1 {
		t.Error("snapshot accessors wrong")
	}
}

func TestNodesIn(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	b1 := p.AddBlock()
	p.Move(2, b1)
	p.Move(5, b1)
	got := p.NodesIn(b1)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("NodesIn = %v, want [2 5]", got)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	p.AddBlock()
	p.Move(1, 1)
	p.blockSize[0]++ // corrupt
	if err := p.Validate(); err == nil {
		t.Error("Validate missed corrupted size")
	}
	p.blockSize[0]--
	p.cut++ // corrupt
	if err := p.Validate(); err == nil {
		t.Error("Validate missed corrupted cut")
	}
	p.cut--
}

// Property: after any random move sequence, incremental state matches a
// from-scratch recomputation. This is the central bookkeeping invariant that
// every partitioner in the repository relies on.
func TestQuickIncrementalMatchesRecompute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b hypergraph.Builder
		n := 4 + r.Intn(30)
		for i := 0; i < n; i++ {
			if r.Intn(6) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1+r.Intn(3))
			}
		}
		for e := 0; e < 2+r.Intn(40); e++ {
			deg := 2 + r.Intn(4)
			pins := make([]hypergraph.NodeID, deg)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		p := New(h, testDev)
		k := 2 + r.Intn(5)
		for i := 1; i < k; i++ {
			p.AddBlock()
		}
		for m := 0; m < 100; m++ {
			p.Move(hypergraph.NodeID(r.Intn(n)), BlockID(r.Intn(k)))
			if r.Intn(10) == 0 {
				if err := p.Validate(); err != nil {
					t.Logf("seed %d move %d: %v", seed, m, err)
					return false
				}
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Restore is an exact inverse of any move sequence.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b hypergraph.Builder
		n := 4 + r.Intn(20)
		for i := 0; i < n; i++ {
			b.AddInterior("v", 1)
		}
		for e := 0; e < 2+r.Intn(20); e++ {
			b.AddNet("e", hypergraph.NodeID(r.Intn(n)), hypergraph.NodeID(r.Intn(n)), hypergraph.NodeID(r.Intn(n)))
		}
		h := b.MustBuild()
		p := New(h, testDev)
		k := 2 + r.Intn(4)
		for i := 1; i < k; i++ {
			p.AddBlock()
		}
		for m := 0; m < 30; m++ {
			p.Move(hypergraph.NodeID(r.Intn(n)), BlockID(r.Intn(k)))
		}
		snap := p.Snapshot()
		cut, tsum := p.Cut(), p.TerminalSum()
		for m := 0; m < 50; m++ {
			p.Move(hypergraph.NodeID(r.Intn(n)), BlockID(r.Intn(k)))
		}
		p.Restore(snap)
		return p.Cut() == cut && p.TerminalSum() == tsum && p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{FeasibleSolution, SemiFeasibleSolution, InfeasibleSolution, Class(9)} {
		if c.String() == "" {
			t.Errorf("Class(%d).String empty", c)
		}
	}
	h := grid(t)
	p := New(h, testDev)
	if p.String() == "" || p.Key(DefaultCost(), NoBlock, 1).String() == "" {
		t.Error("String renderings empty")
	}
}

func BenchmarkMove(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	var bld hypergraph.Builder
	const n = 2000
	for i := 0; i < n; i++ {
		bld.AddInterior("v", 1)
	}
	for e := 0; e < 3000; e++ {
		deg := 2 + r.Intn(3)
		pins := make([]hypergraph.NodeID, deg)
		for i := range pins {
			pins[i] = hypergraph.NodeID(r.Intn(n))
		}
		bld.AddNet("e", pins...)
	}
	h := bld.MustBuild()
	p := New(h, testDev)
	for i := 1; i < 8; i++ {
		p.AddBlock()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Move(hypergraph.NodeID(r.Intn(n)), BlockID(r.Intn(8)))
	}
}

// Property: with R>1 resource axes, incremental per-block resource totals
// and the overflow sums match a from-scratch recomputation after any random
// move sequence, and snapshots round-trip the vector state exactly.
func TestQuickResourceVectorsMatchRecompute(t *testing.T) {
	vdev := device.Device{Name: "V", DatasheetCells: 10, Pins: 4, Fill: 1.0,
		Resources: []device.Resource{{Name: "FF", Cap: 7}, {Name: "DSP", Cap: 3}}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b hypergraph.Builder
		n := 4 + r.Intn(30)
		for i := 0; i < n; i++ {
			if r.Intn(6) == 0 {
				b.AddPad("p")
			} else {
				id := b.AddInterior("v", 1+r.Intn(3))
				if r.Intn(2) == 0 {
					b.SetResource(id, "FF", 1+r.Intn(3))
				}
				if r.Intn(3) == 0 {
					b.SetResource(id, "DSP", 1+r.Intn(2))
				}
			}
		}
		for e := 0; e < 2+r.Intn(40); e++ {
			deg := 2 + r.Intn(4)
			pins := make([]hypergraph.NodeID, deg)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		p := New(h, vdev)
		if p.NumRes() != 2 {
			t.Fatalf("NumRes = %d, want 2", p.NumRes())
		}
		k := 2 + r.Intn(5)
		for i := 1; i < k; i++ {
			p.AddBlock()
		}
		for m := 0; m < 60; m++ {
			p.Move(hypergraph.NodeID(r.Intn(n)), BlockID(r.Intn(k)))
			if r.Intn(10) == 0 {
				if err := p.Validate(); err != nil {
					t.Logf("seed %d move %d: %v", seed, m, err)
					return false
				}
			}
		}
		// Feasible must agree with an explicit componentwise check.
		for blk := 0; blk < k; blk++ {
			id := BlockID(blk)
			want := p.Size(id) <= 10 && p.Terminals(id) <= 4 &&
				p.Res(id, 0) <= 7 && p.Res(id, 1) <= 3
			if got := p.Feasible(id); got != want {
				t.Logf("seed %d block %d: Feasible=%v, componentwise=%v", seed, blk, got, want)
				return false
			}
		}
		// Snapshot must round-trip the vector totals via move replay.
		snap := p.Snapshot()
		before := make([]int, 0, 2*k)
		for blk := 0; blk < k; blk++ {
			before = append(before, p.Res(BlockID(blk), 0), p.Res(BlockID(blk), 1))
		}
		for m := 0; m < 30; m++ {
			p.Move(hypergraph.NodeID(r.Intn(n)), BlockID(r.Intn(k)))
		}
		p.Restore(snap)
		for blk := 0; blk < k; blk++ {
			if p.Res(BlockID(blk), 0) != before[2*blk] || p.Res(BlockID(blk), 1) != before[2*blk+1] {
				t.Logf("seed %d: restore drifted block %d resources", seed, blk)
				return false
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
