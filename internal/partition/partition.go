// Package partition maintains the state of a multi-way partition of a
// circuit hypergraph: block assignment of every node, incrementally updated
// block sizes and terminal counts, the cut set, and the feasibility
// machinery of Krupnova & Saucier (DATE 1999): classification into feasible /
// semi-feasible / infeasible solutions (§2), the infeasibility-distance cost
// function (§3.3), and the lexicographic solution key (§3.4).
//
// Terminal counting: the terminal (I/O pin) count of block i is
//
//	T_i = |{nets incident to block i that also touch another block}| +
//	      |{pad nodes assigned to block i}|
//
// Every cut net consumes one pin on each block it touches, and every primary
// I/O pad consumes one IOB on its block.
package partition

import (
	"fmt"
	"math/bits"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

// BlockID identifies a block of the partition. Blocks are dense, 0..K-1.
type BlockID int32

// NoBlock is the nil block; used for "no remainder" in cost evaluation.
const NoBlock BlockID = -1

// Partition is a mutable k-way partition over a hypergraph. All nodes are
// always assigned to some block; a fresh Partition places everything in
// block 0. Partition is not safe for concurrent use.
type Partition struct {
	h   *hypergraph.Hypergraph
	dev device.Device

	assign []BlockID
	k      int

	blockSize   []int // Σ sizes of interior nodes per block
	blockAux    []int // Σ secondary-resource demands per block
	blockCutInc []int // nets cut and incident, per block
	blockPads   []int // pad nodes per block (T_i^E)
	blockNodes  []int // node count per block (interior + pads)

	// Per-net block state, packed structure-of-arrays (PR 7 layout): one
	// stride-wide row of pin counts per net in blockPins, the net's span in
	// spans, and a touched-block bitset in netTouch (twords words per net).
	// stride (≥ k, doubling growth) fixes the row width so PinCount and the
	// Move inner loop are single indexed loads, and CopyFrom is three flat
	// copies over contiguous slabs.
	stride    int
	twords    int
	blockPins []int32
	spans     []int32
	netTouch  []uint64

	cut   int   // nets with span >= 2
	moves int64 // total Move calls, for statistics

	// Incremental solution-cost aggregates, maintained by Move and AddBlock
	// so that CountFeasible, TerminalSum, Distance, and Classify are O(1)
	// per query instead of O(k) rescans. All four are exact integer sums
	// (no float drift): the infeasibility distance factors as
	// λ^S·sizeOver/S_MAX + λ^T·termOver/T_MAX, and the external-balance
	// numerator Σ max(0, |Y0| − m·T_i^E) is kept in integer form.
	feasCount int // blocks meeting the device constraints
	termSum   int // Σ_i T_i
	sizeOver  int // Σ_i max(0, S_i − S_MAX)
	termOver  int // Σ_i max(0, T_i − T_MAX)
	ebM       int // m for which ebNum is valid; 0 = cache empty
	ebNum     int // Σ_i max(0, |Y0| − m·T_i^E) for m = ebM

	// Device capacities cached at construction (the device is immutable for
	// the partition's lifetime): SMax() redoes float arithmetic on every
	// call, too slow for the per-move aggregate update.
	smax, tmax, auxCap int

	// Resource-vector state, active only when the device declares extra
	// resource axes (nres > 0). Scalar devices keep nres == 0 and every
	// pre-vector code path — Move, aggUpdate, Feasible, Distance — runs
	// exactly as before: the R=1 fast path is one predicate test per call.
	nres     int       // extra resource axes beyond the primary size axis
	resCaps  []int     // per-axis cap, from dev.Resources
	resOf    [][]int32 // per-axis packed node demand column (nil = all-zero)
	blockRes []int     // per-block demand totals, nres-stride rows: [b*nres+r]
	resOver  []int     // Σ_b max(0, blockRes[b][r] − cap_r), per axis
}

func max0(x int) int {
	if x < 0 {
		return 0
	}
	return x
}

// growZeroed32 returns buf resized to n with every element zeroed, reusing
// its backing array when it is large enough.
func growZeroed32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// growZeroed64 is growZeroed32 for bitset words.
func growZeroed64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// FromAssignment builds a partition of h with k blocks from an explicit
// per-node block mapping (e.g., one loaded from an assignment file). The
// mapping must cover every node with blocks in [0, k).
func FromAssignment(h *hypergraph.Hypergraph, dev device.Device, blocks []BlockID, k int) (*Partition, error) {
	if len(blocks) != h.NumNodes() {
		return nil, fmt.Errorf("partition: assignment covers %d of %d nodes", len(blocks), h.NumNodes())
	}
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d", k)
	}
	p := New(h, dev)
	for i := 1; i < k; i++ {
		p.AddBlock()
	}
	for v, b := range blocks {
		if b < 0 || int(b) >= k {
			return nil, fmt.Errorf("partition: node %d assigned to block %d of %d", v, b, k)
		}
		p.Move(hypergraph.NodeID(v), b)
	}
	return p, nil
}

// New creates a partition with a single block 0 containing every node.
func New(h *hypergraph.Hypergraph, dev device.Device) *Partition {
	p := &Partition{}
	p.Reset(h, dev)
	return p
}

// Reset rebinds p to hypergraph h on device dev and returns it to the
// initial single-block state, reusing every buffer that still fits. It makes
// a pooled Partition behaviourally indistinguishable from New(h, dev).
func (p *Partition) Reset(h *hypergraph.Hypergraph, dev device.Device) {
	p.h, p.dev = h, dev
	p.k = 1
	p.smax, p.tmax, p.auxCap = dev.SMax(), dev.TMax(), dev.AuxCap
	n := h.NumNodes()
	if cap(p.assign) < n {
		p.assign = make([]BlockID, n)
	} else {
		p.assign = p.assign[:n]
		for i := range p.assign {
			p.assign[i] = 0
		}
	}
	p.blockSize = append(p.blockSize[:0], h.TotalSize())
	p.blockAux = append(p.blockAux[:0], h.TotalAux())
	p.blockCutInc = append(p.blockCutInc[:0], 0)
	p.blockPads = append(p.blockPads[:0], h.NumPads())
	p.blockNodes = append(p.blockNodes[:0], n)
	nets := h.NumNets()
	// Keep the previous stride when the existing slabs already hold it, so
	// a pooled partition cycling through same-shaped jobs never restrides.
	if p.stride < 4 || cap(p.blockPins) < nets*p.stride {
		p.stride = 4
	}
	p.twords = (p.stride + 63) / 64
	p.blockPins = growZeroed32(p.blockPins, nets*p.stride)
	p.spans = growZeroed32(p.spans, nets)
	p.netTouch = growZeroed64(p.netTouch, nets*p.twords)
	for e := 0; e < nets; e++ {
		p.blockPins[e*p.stride] = int32(h.NetDegree(hypergraph.NetID(e)))
		p.spans[e] = 1
		p.netTouch[e*p.twords] = 1 // bit 0: block 0 holds every pin
	}
	p.cut = 0
	p.moves = 0
	p.ebM, p.ebNum = 0, 0

	// Bind the device's extra resource axes to the netlist's demand
	// columns by name; a missing column means every node demands zero.
	p.nres = len(dev.Resources)
	p.resCaps = p.resCaps[:0]
	p.resOf = p.resOf[:0]
	p.blockRes = p.blockRes[:0]
	p.resOver = p.resOver[:0]
	for _, r := range dev.Resources {
		p.resCaps = append(p.resCaps, r.Cap)
		p.resOf = append(p.resOf, h.ResourceColumn(r.Name))
		total := h.TotalResource(r.Name)
		p.blockRes = append(p.blockRes, total)
		p.resOver = append(p.resOver, max0(total-r.Cap))
	}

	p.feasCount = 0
	p.termSum = p.Terminals(0)
	p.sizeOver = max0(p.blockSize[0] - p.smax)
	p.termOver = max0(p.Terminals(0) - p.tmax)
	if p.Feasible(0) {
		p.feasCount = 1
	}
}

// CopyFrom makes p a deep, independent copy of src, reusing p's buffers
// (including each net counter's grown capacity across repeated copies).
// Speculative peeling clones the live partition into pooled arenas with it,
// and adopts the winning candidate back the same way.
func (p *Partition) CopyFrom(src *Partition) {
	p.h, p.dev = src.h, src.dev
	p.k = src.k
	p.smax, p.tmax, p.auxCap = src.smax, src.tmax, src.auxCap
	p.assign = append(p.assign[:0], src.assign...)
	p.blockSize = append(p.blockSize[:0], src.blockSize...)
	p.blockAux = append(p.blockAux[:0], src.blockAux...)
	p.blockCutInc = append(p.blockCutInc[:0], src.blockCutInc...)
	p.blockPads = append(p.blockPads[:0], src.blockPads...)
	p.blockNodes = append(p.blockNodes[:0], src.blockNodes...)
	// The packed net state copies as three flat slab memmoves.
	p.stride, p.twords = src.stride, src.twords
	p.blockPins = append(p.blockPins[:0], src.blockPins...)
	p.spans = append(p.spans[:0], src.spans...)
	p.netTouch = append(p.netTouch[:0], src.netTouch...)
	p.nres = src.nres
	p.resCaps = append(p.resCaps[:0], src.resCaps...)
	p.resOf = append(p.resOf[:0], src.resOf...)
	p.blockRes = append(p.blockRes[:0], src.blockRes...)
	p.resOver = append(p.resOver[:0], src.resOver...)
	p.cut = src.cut
	p.moves = src.moves
	p.feasCount = src.feasCount
	p.termSum = src.termSum
	p.sizeOver = src.sizeOver
	p.termOver = src.termOver
	p.ebM, p.ebNum = src.ebM, src.ebNum
}

// Hypergraph returns the underlying circuit.
func (p *Partition) Hypergraph() *hypergraph.Hypergraph { return p.h }

// Device returns the target device.
func (p *Partition) Device() device.Device { return p.dev }

// NumBlocks returns k, the current number of blocks.
func (p *Partition) NumBlocks() int { return p.k }

// AddBlock appends an empty block and returns its ID.
func (p *Partition) AddBlock() BlockID {
	id := BlockID(p.k)
	p.k++
	if p.k > p.stride {
		p.restride()
	}
	p.blockSize = append(p.blockSize, 0)
	p.blockAux = append(p.blockAux, 0)
	p.blockCutInc = append(p.blockCutInc, 0)
	p.blockPads = append(p.blockPads, 0)
	p.blockNodes = append(p.blockNodes, 0)
	for r := 0; r < p.nres; r++ {
		p.blockRes = append(p.blockRes, 0)
	}
	p.feasCount++ // an empty block always meets the constraints
	if p.ebM > 0 {
		p.ebNum += p.h.NumPads() // max(0, |Y0| − m·0)
	}
	return id
}

// Block returns the block node v is assigned to.
func (p *Partition) Block(v hypergraph.NodeID) BlockID { return p.assign[v] }

// Assignment copies the full node→block assignment into dst (reused when
// it has capacity) and returns it. It is the cheap export half of the
// multilevel projection cycle — FromAssignment is the import half.
func (p *Partition) Assignment(dst []BlockID) []BlockID {
	if cap(dst) < len(p.assign) {
		dst = make([]BlockID, len(p.assign))
	}
	dst = dst[:len(p.assign)]
	copy(dst, p.assign)
	return dst
}

// Size returns S_i, the total interior size of block b.
func (p *Partition) Size(b BlockID) int { return p.blockSize[b] }

// Aux returns the secondary-resource demand of block b.
func (p *Partition) Aux(b BlockID) int { return p.blockAux[b] }

// NumRes returns the number of extra resource axes (beyond the primary
// size axis) the bound device declares; zero for scalar parts.
func (p *Partition) NumRes() int { return p.nres }

// ResCap returns the capacity of extra resource axis r.
func (p *Partition) ResCap(r int) int { return p.resCaps[r] }

// Res returns block b's demand total on extra resource axis r.
func (p *Partition) Res(b BlockID, r int) int { return p.blockRes[int(b)*p.nres+r] }

// ResDemandOf returns node v's demand on extra resource axis r.
func (p *Partition) ResDemandOf(v hypergraph.NodeID, r int) int {
	if col := p.resOf[r]; col != nil {
		return int(col[v])
	}
	return 0
}

// BlockResources appends block b's extra-resource demand totals to dst in
// device.Resources order and returns it — the shape device.FitsRes wants.
func (p *Partition) BlockResources(b BlockID, dst []int) []int {
	row := int(b) * p.nres
	return append(dst, p.blockRes[row:row+p.nres]...)
}

// Terminals returns T_i = cut-incident nets + pads of block b.
func (p *Partition) Terminals(b BlockID) int { return p.blockCutInc[b] + p.blockPads[b] }

// Pads returns T_i^E, the number of primary I/O pads assigned to block b.
func (p *Partition) Pads(b BlockID) int { return p.blockPads[b] }

// Nodes returns the number of nodes (interior + pads) in block b.
func (p *Partition) Nodes(b BlockID) int { return p.blockNodes[b] }

// Cut returns the number of nets spanning two or more blocks.
func (p *Partition) Cut() int { return p.cut }

// Moves returns the total number of Move operations applied, a cheap proxy
// for algorithm effort used in statistics.
func (p *Partition) Moves() int64 { return p.moves }

// restride doubles the row width of the packed per-net state so it can
// hold the new block count, copying every net's row into the wider layout.
// Restrides are O(numNets·stride) but happen only log(k) times per run.
func (p *Partition) restride() {
	nets := len(p.spans)
	oldStride, oldTwords := p.stride, p.twords
	newStride := oldStride * 2
	for newStride < p.k {
		newStride *= 2
	}
	newTwords := (newStride + 63) / 64
	pins := make([]int32, nets*newStride)
	for e := 0; e < nets; e++ {
		copy(pins[e*newStride:e*newStride+oldStride], p.blockPins[e*oldStride:(e+1)*oldStride])
	}
	touch := make([]uint64, nets*newTwords)
	for e := 0; e < nets; e++ {
		copy(touch[e*newTwords:e*newTwords+oldTwords], p.netTouch[e*oldTwords:(e+1)*oldTwords])
	}
	p.blockPins, p.netTouch = pins, touch
	p.stride, p.twords = newStride, newTwords
}

// PinCount returns the number of pins net e has in block b. It is a single
// indexed load into the packed pin-count matrix.
func (p *Partition) PinCount(e hypergraph.NetID, b BlockID) int {
	return int(p.blockPins[int(e)*p.stride+int(b)])
}

// Span returns the number of distinct blocks net e touches.
func (p *Partition) Span(e hypergraph.NetID) int { return int(p.spans[e]) }

// Blocks appends the blocks touched by net e to dst and returns it, in
// ascending block order (a scan of the net's membership bitset).
func (p *Partition) Blocks(e hypergraph.NetID, dst []BlockID) []BlockID {
	base := int(e) * p.twords
	for w := 0; w < p.twords; w++ {
		word := p.netTouch[base+w]
		for word != 0 {
			dst = append(dst, BlockID(w*64+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// OtherBlock returns the lowest-numbered block other than b touched by net
// e, or b itself when no such block exists. For span-2 nets this is the
// unique second endpoint, found in O(k/64) words of the membership bitset.
func (p *Partition) OtherBlock(e hypergraph.NetID, b BlockID) BlockID {
	base := int(e) * p.twords
	for w := 0; w < p.twords; w++ {
		word := p.netTouch[base+w]
		if w == int(b)/64 {
			word &^= 1 << (uint(b) % 64)
		}
		if word != 0 {
			return BlockID(w*64 + bits.TrailingZeros64(word))
		}
	}
	return b
}

// NodesIn returns the IDs of all nodes assigned to block b, in ID order.
func (p *Partition) NodesIn(b BlockID) []hypergraph.NodeID {
	out := make([]hypergraph.NodeID, 0, p.blockNodes[b])
	for v, bv := range p.assign {
		if bv == b {
			out = append(out, hypergraph.NodeID(v))
		}
	}
	return out
}

// Move reassigns node v to block `to`, updating all incremental state in
// O(degree(v) · avg span). Moving to the current block is a no-op.
func (p *Partition) Move(v hypergraph.NodeID, to BlockID) {
	p.MoveTrace(v, to, nil)
}

// NetDelta records how one net incident to a moved node transitioned: its
// pin counts in the source and destination blocks before the move, and its
// span before and after. Delta-gain engines consume the trace to update
// only the gain contributions that can actually change (see
// internal/sanchis).
type NetDelta struct {
	Net        hypergraph.NetID
	FromPins   int32 // pins in the source block, before the move
	ToPins     int32 // pins in the destination block, before the move
	SpanBefore int32
	SpanAfter  int32
}

// MoveTrace is Move, additionally appending one NetDelta per incident net
// to buf (in h.Nets(v) order) and returning it. Pass a reused buffer to
// avoid allocation; a nil buf records nothing. A same-block no-op move
// returns buf unchanged.
func (p *Partition) MoveTrace(v hypergraph.NodeID, to BlockID, buf []NetDelta) []NetDelta {
	from := p.assign[v]
	if from == to {
		return buf
	}
	p.moves++
	p.assign[v] = to
	size, aux := p.h.SizeOf(v), p.h.AuxOf(v)
	oldFromS, oldFromT, oldFromAux := p.blockSize[from], p.Terminals(from), p.blockAux[from]
	oldToS, oldToT, oldToAux := p.blockSize[to], p.Terminals(to), p.blockAux[to]
	oldFromResOK, oldToResOK := true, true
	p.blockSize[from] -= size
	p.blockSize[to] += size
	p.blockAux[from] -= aux
	p.blockAux[to] += aux
	p.blockNodes[from]--
	p.blockNodes[to]++
	if p.nres > 0 {
		oldFromResOK, oldToResOK = p.resOK(from), p.resOK(to)
		fr, tr := int(from)*p.nres, int(to)*p.nres
		for r := 0; r < p.nres; r++ {
			col := p.resOf[r]
			if col == nil {
				continue
			}
			d := int(col[v])
			if d == 0 {
				continue
			}
			c := p.resCaps[r]
			oldF, oldT := p.blockRes[fr+r], p.blockRes[tr+r]
			p.blockRes[fr+r] = oldF - d
			p.blockRes[tr+r] = oldT + d
			p.resOver[r] += max0(oldF-d-c) - max0(oldF-c) + max0(oldT+d-c) - max0(oldT-c)
		}
	}
	if p.h.KindOf(v) == hypergraph.Pad {
		if p.ebM > 0 {
			pads, m := p.h.NumPads(), p.ebM
			p.ebNum += max0(pads-m*(p.blockPads[from]-1)) - max0(pads-m*p.blockPads[from])
			p.ebNum += max0(pads-m*(p.blockPads[to]+1)) - max0(pads-m*p.blockPads[to])
		}
		p.blockPads[from]--
		p.blockPads[to]++
	}

	for _, e := range p.h.NodeNets(v) {
		row := int(e) * p.stride
		cf := p.blockPins[row+int(from)]
		ct := p.blockPins[row+int(to)]
		spanBefore := p.spans[e]
		if buf != nil {
			buf = append(buf, NetDelta{Net: e, FromPins: cf, ToPins: ct, SpanBefore: spanBefore})
		}
		p.blockPins[row+int(from)] = cf - 1
		p.blockPins[row+int(to)] = ct + 1
		fromLeft := cf == 1
		toJoined := ct == 0
		spanAfter := spanBefore
		tbase := int(e) * p.twords
		if fromLeft {
			p.netTouch[tbase+int(from)/64] &^= 1 << (uint(from) % 64)
			spanAfter--
		}
		if toJoined {
			p.netTouch[tbase+int(to)/64] |= 1 << (uint(to) % 64)
			spanAfter++
		}
		p.spans[e] = spanAfter
		if buf != nil {
			buf[len(buf)-1].SpanAfter = spanAfter
		}

		wasCut, isCut := spanBefore >= 2, spanAfter >= 2
		switch {
		case wasCut && isCut:
			if fromLeft {
				p.blockCutInc[from]--
			}
			if toJoined {
				p.blockCutInc[to]++
			}
		case wasCut && !isCut:
			// spanBefore == 2, members were {from, to}; from left.
			p.blockCutInc[from]--
			p.blockCutInc[to]--
			p.cut--
		case !wasCut && isCut:
			// spanBefore == 1, member was {from}; to joined.
			p.blockCutInc[from]++
			p.blockCutInc[to]++
			p.cut++
		}
	}

	p.aggUpdate(from, oldFromS, oldFromT, oldFromAux, oldFromResOK)
	p.aggUpdate(to, oldToS, oldToT, oldToAux, oldToResOK)
	return buf
}

// aggUpdate folds one block's state change into the incremental cost
// aggregates, given its pre-move size, terminals, aux demand, and (for
// R>1 devices) whether its resource vector fit before the move. Scalar
// devices always pass oldResOK=true and resOK() is a constant-true test,
// so the R=1 behavior is unchanged.
func (p *Partition) aggUpdate(b BlockID, oldS, oldT, oldAux int, oldResOK bool) {
	newS, newT, newAux := p.blockSize[b], p.Terminals(b), p.blockAux[b]
	smax, tmax := p.smax, p.tmax
	p.sizeOver += max0(newS-smax) - max0(oldS-smax)
	p.termOver += max0(newT-tmax) - max0(oldT-tmax)
	p.termSum += newT - oldT
	wasFeas := oldResOK && p.fitsFull(oldS, oldT, oldAux)
	isFeas := p.resOK(b) && p.fitsFull(newS, newT, newAux)
	if wasFeas != isFeas {
		if isFeas {
			p.feasCount++
		} else {
			p.feasCount--
		}
	}
}

// Snapshot captures the assignment so it can be restored later.
type Snapshot struct {
	assign []BlockID
	k      int
}

// Snapshot copies the current assignment.
func (p *Partition) Snapshot() Snapshot {
	return p.SnapshotInto(Snapshot{})
}

// SnapshotInto is Snapshot reusing buf's storage when it is large enough.
// The sanchis engine keeps a freelist of retired snapshot buffers and
// refills them through this, so the solution stacks of §3.6 stop costing one
// allocation per stacked solution.
func (p *Partition) SnapshotInto(buf Snapshot) Snapshot {
	n := len(p.assign)
	if cap(buf.assign) < n {
		buf.assign = make([]BlockID, n)
	}
	buf.assign = buf.assign[:n]
	copy(buf.assign, p.assign)
	buf.k = p.k
	return buf
}

// K returns the number of blocks at the time of the snapshot.
func (s Snapshot) K() int { return s.k }

// Assign returns the snapshotted block of node v.
func (s Snapshot) Assign(v hypergraph.NodeID) BlockID { return s.assign[v] }

// Restore reinstates a snapshot by replaying moves for nodes whose block
// differs. The snapshot must come from this partition (same hypergraph) and
// must not reference blocks beyond the current k.
func (p *Partition) Restore(s Snapshot) {
	if len(s.assign) != len(p.assign) {
		panic(fmt.Sprintf("partition: snapshot of %d nodes restored onto %d nodes", len(s.assign), len(p.assign)))
	}
	for v, b := range s.assign {
		if p.assign[v] != b {
			p.Move(hypergraph.NodeID(v), b)
		}
	}
}

// Feasible reports whether block b meets the device constraints (P ⊨ D),
// including the secondary-resource bound when the device declares one and
// every extra resource axis for R>1 devices.
func (p *Partition) Feasible(b BlockID) bool {
	return p.resOK(b) && p.fitsFull(p.blockSize[b], p.Terminals(b), p.blockAux[b])
}

// resOK reports whether block b's extra-resource totals fit the device's
// resource vector, componentwise. Constant true for scalar devices.
func (p *Partition) resOK(b BlockID) bool {
	if p.nres == 0 {
		return true
	}
	row := int(b) * p.nres
	for r := 0; r < p.nres; r++ {
		if p.blockRes[row+r] > p.resCaps[r] {
			return false
		}
	}
	return true
}

// fitsFull is device.FitsFull against the cached capacities.
func (p *Partition) fitsFull(size, terminals, aux int) bool {
	return size <= p.smax && terminals <= p.tmax &&
		(p.auxCap == 0 || aux <= p.auxCap)
}

// CountFeasible returns the number of blocks meeting the device constraints.
// It is O(1): the count is maintained incrementally by Move and AddBlock.
func (p *Partition) CountFeasible() int { return p.feasCount }

// Class is the paper's three-way solution classification (§2).
type Class uint8

const (
	// FeasibleSolution: every block meets the device constraints.
	FeasibleSolution Class = iota
	// SemiFeasibleSolution: exactly one block violates the constraints
	// (the remainder).
	SemiFeasibleSolution
	// InfeasibleSolution: two or more blocks violate the constraints.
	InfeasibleSolution
)

// String names the class.
func (c Class) String() string {
	switch c {
	case FeasibleSolution:
		return "feasible"
	case SemiFeasibleSolution:
		return "semi-feasible"
	case InfeasibleSolution:
		return "infeasible"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Classify returns the solution class per §2 / Figure 2.
func (p *Partition) Classify() Class {
	switch p.k - p.CountFeasible() {
	case 0:
		return FeasibleSolution
	case 1:
		return SemiFeasibleSolution
	default:
		return InfeasibleSolution
	}
}

// CostParams holds the weighting coefficients of the infeasibility-distance
// cost function (§3.3). The paper's published values are in Defaults.
type CostParams struct {
	LambdaS float64 // λ^S, size-distance weight (0.4)
	LambdaT float64 // λ^T, I/O-distance weight (0.6)
	LambdaR float64 // λ^R, size-deviation penalty weight (0.1)
}

// DefaultCost returns the published coefficients λ^S=0.4, λ^T=0.6, λ^R=0.1.
func DefaultCost() CostParams {
	return CostParams{LambdaS: 0.4, LambdaT: 0.6, LambdaR: 0.1}
}

// BlockDistance returns d_i, the infeasibility distance of block b:
// λ^S·max(0,(S_i−S_MAX)/S_MAX) + λ^T·max(0,(T_i−T_MAX)/T_MAX).
func (p *Partition) BlockDistance(b BlockID, cp CostParams) float64 {
	smax, tmax := p.smax, p.tmax
	var d float64
	if s := p.blockSize[b]; s > smax {
		d += cp.LambdaS * float64(s-smax) / float64(smax)
	}
	if tc := p.Terminals(b); tc > tmax {
		d += cp.LambdaT * float64(tc-tmax) / float64(tmax)
	}
	// §3.3 generalizes componentwise: each extra resource axis contributes
	// a size-style relative-overflow term, weighted like the size axis.
	for r := 0; r < p.nres; r++ {
		if over := p.blockRes[int(b)*p.nres+r] - p.resCaps[r]; over > 0 {
			d += cp.LambdaS * float64(over) / float64(p.resCaps[r])
		}
	}
	return d
}

// Distance returns d_k, the infeasibility distance of the whole solution:
// Σ_i d_i plus the size-deviation penalty λ^R·d_k^R when a remainder block
// and the lower bound M are supplied (§3.3). Pass remainder = NoBlock to
// skip the penalty term.
//
// The block sum is O(1): Σ_i d_i factors as λ^S·Σ max(0,S_i−S_MAX)/S_MAX +
// λ^T·Σ max(0,T_i−T_MAX)/T_MAX, and both integer overflow sums are
// maintained incrementally by Move.
func (p *Partition) Distance(cp CostParams, remainder BlockID, m int) float64 {
	var d float64
	if p.sizeOver > 0 {
		d += cp.LambdaS * float64(p.sizeOver) / float64(p.smax)
	}
	if p.termOver > 0 {
		d += cp.LambdaT * float64(p.termOver) / float64(p.tmax)
	}
	// Componentwise per-resource overflow terms; resOver is maintained
	// incrementally by Move so this stays O(R) per query (R=0 for scalar).
	for r := 0; r < p.nres; r++ {
		if ov := p.resOver[r]; ov > 0 {
			d += cp.LambdaS * float64(ov) / float64(p.resCaps[r])
		}
	}
	if remainder != NoBlock {
		d += cp.LambdaR * p.SizeDeviation(remainder, m)
	}
	return d
}

// SizeDeviation returns d_k^R: with k non-remainder blocks created so far,
// S_AVG = S(R_k)/(M−k+1) is the average block size if the remainder were
// split into the minimal theoretical number of parts; the penalty is
// S_AVG/S_MAX when S_AVG exceeds S_MAX and 0 otherwise (§3.3).
func (p *Partition) SizeDeviation(remainder BlockID, m int) float64 {
	created := p.k - 1 // blocks other than the remainder
	den := m - created + 1
	if den < 1 {
		den = 1
	}
	savg := float64(p.blockSize[remainder]) / float64(den)
	smax := float64(p.smax)
	if savg > smax {
		return savg / smax
	}
	return 0
}

// TerminalSum returns T_SUM = Σ_i T_i, the total pin count of all blocks.
// It is O(1): the sum is maintained incrementally by Move.
func (p *Partition) TerminalSum() int { return p.termSum }

// ExternalBalance returns d_k^E, the external-I/O balancing factor (§3.4):
// blocks holding fewer external pads than the average T^E_AVG = |Y0|/M are
// penalized proportionally.
//
// With avg = |Y0|/m, the factor equals Σ_i max(0, |Y0| − m·T_i^E) / |Y0|,
// whose integer numerator is cached per m and updated incrementally by pad
// moves and AddBlock; repeated calls with the same m are O(1).
func (p *Partition) ExternalBalance(m int) float64 {
	pads := p.h.NumPads()
	if pads == 0 || m < 1 {
		return 0
	}
	if p.ebM != m {
		n := 0
		for b := 0; b < p.k; b++ {
			n += max0(pads - m*p.blockPads[b])
		}
		p.ebM, p.ebNum = m, n
	}
	return float64(p.ebNum) / float64(pads)
}

// Key is the lexicographic solution-comparison key of §3.4:
// (f, d_k, T_SUM, d_k^E) with f maximized and the rest minimized.
type Key struct {
	F    int     // number of feasible blocks (higher is better)
	D    float64 // infeasibility distance (lower is better)
	TSum int     // total block pin count (lower is better)
	DE   float64 // external I/O balancing factor (lower is better)
}

// eps absorbs float noise when comparing the two float components.
const eps = 1e-9

// Better reports whether key a is strictly better than key b.
func (a Key) Better(b Key) bool {
	if a.F != b.F {
		return a.F > b.F
	}
	if a.D < b.D-eps {
		return true
	}
	if a.D > b.D+eps {
		return false
	}
	if a.TSum != b.TSum {
		return a.TSum < b.TSum
	}
	return a.DE < b.DE-eps
}

// String renders the key.
func (k Key) String() string {
	return fmt.Sprintf("(f=%d d=%.4f T=%d dE=%.4f)", k.F, k.D, k.TSum, k.DE)
}

// Key evaluates the solution key for the current state. remainder and m
// feed the d_k^R penalty and the external balance average; pass NoBlock to
// omit the remainder penalty.
func (p *Partition) Key(cp CostParams, remainder BlockID, m int) Key {
	return Key{
		F:    p.CountFeasible(),
		D:    p.Distance(cp, remainder, m),
		TSum: p.TerminalSum(),
		DE:   p.ExternalBalance(m),
	}
}

// Validate recomputes every incremental quantity from scratch and returns an
// error describing the first mismatch. It is O(V + pins) and intended for
// tests and debugging.
func (p *Partition) Validate() error {
	size := make([]int, p.k)
	aux := make([]int, p.k)
	pads := make([]int, p.k)
	nodes := make([]int, p.k)
	cutInc := make([]int, p.k)
	for v := 0; v < p.h.NumNodes(); v++ {
		b := p.assign[v]
		if b < 0 || int(b) >= p.k {
			return fmt.Errorf("node %d assigned to invalid block %d (k=%d)", v, b, p.k)
		}
		n := p.h.Node(hypergraph.NodeID(v))
		nodes[b]++
		aux[b] += n.Aux
		if n.Kind == hypergraph.Pad {
			pads[b]++
		} else {
			size[b] += n.Size
		}
	}
	cut := 0
	for e := 0; e < p.h.NumNets(); e++ {
		want := map[BlockID]int{}
		for _, v := range p.h.Pins(hypergraph.NetID(e)) {
			want[p.assign[v]]++
		}
		if len(want) != p.Span(hypergraph.NetID(e)) {
			return fmt.Errorf("net %d: span %d, recomputed %d", e, p.Span(hypergraph.NetID(e)), len(want))
		}
		for b, c := range want {
			if got := p.PinCount(hypergraph.NetID(e), b); got != c {
				return fmt.Errorf("net %d block %d: pin count %d, recomputed %d", e, b, got, c)
			}
		}
		if len(want) >= 2 {
			cut++
			for b := range want {
				cutInc[b]++
			}
		}
	}
	for b := 0; b < p.k; b++ {
		if size[b] != p.blockSize[b] {
			return fmt.Errorf("block %d: size %d, recomputed %d", b, p.blockSize[b], size[b])
		}
		if aux[b] != p.blockAux[b] {
			return fmt.Errorf("block %d: aux %d, recomputed %d", b, p.blockAux[b], aux[b])
		}
		if pads[b] != p.blockPads[b] {
			return fmt.Errorf("block %d: pads %d, recomputed %d", b, p.blockPads[b], pads[b])
		}
		if nodes[b] != p.blockNodes[b] {
			return fmt.Errorf("block %d: nodes %d, recomputed %d", b, p.blockNodes[b], nodes[b])
		}
		if cutInc[b] != p.blockCutInc[b] {
			return fmt.Errorf("block %d: cut-incidence %d, recomputed %d", b, p.blockCutInc[b], cutInc[b])
		}
	}
	if cut != p.cut {
		return fmt.Errorf("cut %d, recomputed %d", p.cut, cut)
	}
	feas, tsum, sover, tover := 0, 0, 0, 0
	for b := 0; b < p.k; b++ {
		id := BlockID(b)
		if p.Feasible(id) {
			feas++
		}
		tsum += p.Terminals(id)
		sover += max0(p.blockSize[b] - p.dev.SMax())
		tover += max0(p.Terminals(id) - p.dev.TMax())
	}
	if feas != p.feasCount {
		return fmt.Errorf("feasible count %d, recomputed %d", p.feasCount, feas)
	}
	if tsum != p.termSum {
		return fmt.Errorf("terminal sum %d, recomputed %d", p.termSum, tsum)
	}
	if sover != p.sizeOver {
		return fmt.Errorf("size overflow %d, recomputed %d", p.sizeOver, sover)
	}
	if tover != p.termOver {
		return fmt.Errorf("terminal overflow %d, recomputed %d", p.termOver, tover)
	}
	if p.ebM > 0 {
		n := 0
		for b := 0; b < p.k; b++ {
			n += max0(p.h.NumPads() - p.ebM*p.blockPads[b])
		}
		if n != p.ebNum {
			return fmt.Errorf("external-balance numerator %d (m=%d), recomputed %d", p.ebNum, p.ebM, n)
		}
	}
	for r := 0; r < p.nres; r++ {
		want := make([]int, p.k)
		if col := p.resOf[r]; col != nil {
			for v := 0; v < p.h.NumNodes(); v++ {
				want[p.assign[v]] += int(col[v])
			}
		}
		over := 0
		for b := 0; b < p.k; b++ {
			if want[b] != p.blockRes[b*p.nres+r] {
				return fmt.Errorf("block %d resource %d: total %d, recomputed %d", b, r, p.blockRes[b*p.nres+r], want[b])
			}
			over += max0(want[b] - p.resCaps[r])
		}
		if over != p.resOver[r] {
			return fmt.Errorf("resource %d overflow %d, recomputed %d", r, p.resOver[r], over)
		}
	}
	return nil
}

// String summarizes the partition.
func (p *Partition) String() string {
	return fmt.Sprintf("partition{k=%d cut=%d class=%s}", p.k, p.cut, p.Classify())
}
