package partition

// Focused tests for the §3.3/§3.4 cost machinery: Distance with remainder
// penalty, Key evaluation end to end, and terminal-sum bookkeeping.

import (
	"math"
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

func TestDistanceSumsBlocksAndPenalty(t *testing.T) {
	// Two blocks, one violating size, with a remainder penalty.
	var b hypergraph.Builder
	var ids []hypergraph.NodeID
	for i := 0; i < 30; i++ {
		ids = append(ids, b.AddInterior("v", 1))
	}
	b.AddNet("n", ids[0], ids[1])
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0}
	p := New(h, dev)
	blk := p.AddBlock()
	for i := 0; i < 10; i++ {
		p.Move(ids[i], blk)
	}
	// Remainder (block 0) has 20 cells: d^S = (20-10)/10 = 1.0, weighted 0.4.
	cp := DefaultCost()
	wantBlockDist := 0.4 * 1.0
	if got := p.BlockDistance(0, cp); math.Abs(got-wantBlockDist) > 1e-12 {
		t.Errorf("BlockDistance = %v, want %v", got, wantBlockDist)
	}
	// With M=2 and one created block: S_AVG = 20/(2-1+1) = 10 <= 10: no
	// penalty. With M=1: S_AVG = 20/1 = 20 > 10 -> d_R = 2, weighted 0.1.
	if got := p.Distance(cp, 0, 2); math.Abs(got-wantBlockDist) > 1e-12 {
		t.Errorf("Distance(M=2) = %v, want %v", got, wantBlockDist)
	}
	want := wantBlockDist + 0.1*2.0
	if got := p.Distance(cp, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Distance(M=1) = %v, want %v", got, want)
	}
	// NoBlock skips the penalty.
	if got := p.Distance(cp, NoBlock, 1); math.Abs(got-wantBlockDist) > 1e-12 {
		t.Errorf("Distance(NoBlock) = %v, want %v", got, wantBlockDist)
	}
}

func TestKeyEndToEnd(t *testing.T) {
	h := grid(t)
	p := New(h, testDev) // S_MAX=10, T_MAX=4; block 0 feasible
	k := p.Key(DefaultCost(), NoBlock, 1)
	if k.F != 1 {
		t.Errorf("F = %d, want 1", k.F)
	}
	if k.D != 0 {
		t.Errorf("D = %v, want 0 for a feasible block", k.D)
	}
	if k.TSum != p.TerminalSum() {
		t.Errorf("TSum = %d, want %d", k.TSum, p.TerminalSum())
	}
}

func TestTerminalSumMatchesBlocks(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	b1 := p.AddBlock()
	p.Move(2, b1)
	p.Move(3, b1)
	want := p.Terminals(0) + p.Terminals(b1)
	if got := p.TerminalSum(); got != want {
		t.Errorf("TerminalSum = %d, want %d", got, want)
	}
}

func TestSizeDeviationDenominatorClamp(t *testing.T) {
	var b hypergraph.Builder
	var ids []hypergraph.NodeID
	for i := 0; i < 40; i++ {
		ids = append(ids, b.AddInterior("v", 1))
	}
	b.AddNet("n", ids[0], ids[1])
	h := b.MustBuild()
	p := New(h, testDev) // S_MAX = 10
	// Many created blocks (k-1 > M): denominator clamps at 1.
	for i := 0; i < 5; i++ {
		blk := p.AddBlock()
		p.Move(ids[i], blk)
	}
	// remainder size 35; M=2 => den = max(1, 2-5+1) = 1 => S_AVG = 35.
	if d := p.SizeDeviation(0, 2); math.Abs(d-3.5) > 1e-12 {
		t.Errorf("clamped SizeDeviation = %v, want 3.5", d)
	}
}

func TestCountFeasibleTracksMoves(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	if p.CountFeasible() != 1 {
		t.Fatalf("initial CountFeasible = %d", p.CountFeasible())
	}
	b1 := p.AddBlock()
	if p.CountFeasible() != 2 { // empty block is feasible
		t.Errorf("with empty block: %d", p.CountFeasible())
	}
	// Overload block 1 with terminals: move alternating cells to create
	// many cut nets (T_MAX=4).
	p.Move(1, b1)
	p.Move(3, b1)
	p.Move(5, b1)
	if p.Terminals(b1) <= 4 {
		t.Skip("construction did not exceed T_MAX; adjust test circuit")
	}
	if p.CountFeasible() != 0 {
		// block 0 also holds the cut nets + pads
		t.Logf("feasible=%d T0=%d T1=%d", p.CountFeasible(), p.Terminals(0), p.Terminals(b1))
	}
}

func TestMovesCounter(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	b1 := p.AddBlock()
	p.Move(0, b1)
	p.Move(0, 0)
	p.Move(0, 0) // no-op: same block
	if p.Moves() != 2 {
		t.Errorf("Moves = %d, want 2", p.Moves())
	}
}

func TestRestoreSizeMismatchPanics(t *testing.T) {
	h := grid(t)
	p := New(h, testDev)
	var b2 hypergraph.Builder
	b2.AddInterior("x", 1)
	other := New(b2.MustBuild(), testDev)
	snap := other.Snapshot()
	defer func() {
		if recover() == nil {
			t.Error("cross-partition Restore did not panic")
		}
	}()
	p.Restore(snap)
}
