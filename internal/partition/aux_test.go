package partition

// Tests for the secondary-resource (flip-flop / tristate) constraint of §2,
// which the paper handles "in a similar way as the size constraint".

import (
	"testing"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

func auxCircuit(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	v0 := b.AddInterior("lut", 1)
	ff1 := b.AddInterior("ff1", 1)
	ff2 := b.AddInterior("ff2", 1)
	b.SetAux(ff1, 1)
	b.SetAux(ff2, 2)
	b.AddNet("n", v0, ff1, ff2)
	return b.MustBuild()
}

func TestAuxBookkeeping(t *testing.T) {
	h := auxCircuit(t)
	if h.TotalAux() != 3 {
		t.Fatalf("TotalAux = %d, want 3", h.TotalAux())
	}
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0, AuxCap: 2}
	p := New(h, dev)
	if p.Aux(0) != 3 {
		t.Errorf("Aux(0) = %d, want 3", p.Aux(0))
	}
	b1 := p.AddBlock()
	p.Move(2, b1) // ff2 carries aux 2
	if p.Aux(0) != 1 || p.Aux(b1) != 2 {
		t.Errorf("aux split = %d,%d want 1,2", p.Aux(0), p.Aux(b1))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAuxFeasibility(t *testing.T) {
	h := auxCircuit(t)
	capped := device.Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0, AuxCap: 2}
	p := New(h, capped)
	// Block 0 holds aux 3 > cap 2: infeasible despite size/pins fitting.
	if p.Feasible(0) {
		t.Error("aux-overflowing block reported feasible")
	}
	// Without a cap the same block is fine.
	uncapped := capped
	uncapped.AuxCap = 0
	p2 := New(h, uncapped)
	if !p2.Feasible(0) {
		t.Error("uncapped device rejected the block")
	}
}

func TestAuxValidateDetectsCorruption(t *testing.T) {
	h := auxCircuit(t)
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0}
	p := New(h, dev)
	p.blockAux[0]++
	if err := p.Validate(); err == nil {
		t.Error("Validate missed corrupted aux")
	}
	p.blockAux[0]--
}

func TestAuxLowerBound(t *testing.T) {
	// 6 aux units on a device with AuxCap 2: at least 3 devices even
	// though size and pins allow 1.
	var b hypergraph.Builder
	prev := hypergraph.NodeID(-1)
	for i := 0; i < 6; i++ {
		id := b.AddInterior("ff", 1)
		b.SetAux(id, 1)
		if prev >= 0 {
			b.AddNet("n", prev, id)
		}
		prev = id
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 100, Pins: 100, Fill: 1.0, AuxCap: 2}
	if m := device.LowerBound(h, dev); m != 3 {
		t.Errorf("aux-dominated LowerBound = %d, want 3", m)
	}
}

func TestAuxSurvivesInduced(t *testing.T) {
	h := auxCircuit(t)
	sub, back := h.Induced([]hypergraph.NodeID{1, 2})
	for i, orig := range back {
		if sub.Node(hypergraph.NodeID(i)).Aux != h.Node(orig).Aux {
			t.Errorf("Induced dropped aux of node %d", orig)
		}
	}
	if sub.TotalAux() != 3 {
		t.Errorf("induced TotalAux = %d, want 3", sub.TotalAux())
	}
}

func TestSetAuxClampsNegative(t *testing.T) {
	var b hypergraph.Builder
	id := b.AddInterior("v", 1)
	b.SetAux(id, -5)
	h := b.MustBuild()
	if h.Node(id).Aux != 0 {
		t.Errorf("negative aux not clamped: %d", h.Node(id).Aux)
	}
}
