package obs

import (
	"sync"
	"testing"
)

func emitN(b *Broadcast, n int) {
	for i := 0; i < n; i++ {
		b.Event(Event{Type: ImprovePass, Iteration: i + 1})
	}
}

// drain consumes a subscription to completion (History + channel) and
// returns the iteration numbers seen, in order.
func drain(sub *Subscription) []int {
	var got []int
	for _, e := range sub.History {
		got = append(got, e.Iteration)
	}
	for e := range sub.C() {
		got = append(got, e.Iteration)
	}
	return got
}

func TestBroadcastReplayAndLive(t *testing.T) {
	b := NewBroadcast()
	emitN(b, 3)

	sub := b.Subscribe(16)
	if len(sub.History) != 3 {
		t.Fatalf("history: want 3 events, got %d", len(sub.History))
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var got []int
	go func() {
		defer wg.Done()
		got = drain(sub)
	}()
	emitN(b, 3)
	b.Close()
	wg.Wait()

	if len(got) != 6 {
		t.Fatalf("want 6 events (3 replayed + 3 live), got %d: %v", len(got), got)
	}
	for i, it := range got {
		want := i + 1
		if i >= 3 {
			want = i - 2 // live events restart iteration numbering
		}
		if it != want {
			t.Fatalf("ordering violated at %d: got %v", i, got)
		}
	}
}

func TestBroadcastOrderingExact(t *testing.T) {
	const n = 500
	b := NewBroadcast()
	sub := b.Subscribe(n) // buffer large enough: no drops allowed
	done := make(chan []int)
	go func() { done <- drain(sub) }()
	emitN(b, n)
	b.Close()
	got := <-done
	if len(got) != n {
		t.Fatalf("want %d events, got %d (dropped=%d)", n, len(got), sub.Dropped())
	}
	for i, it := range got {
		if it != i+1 {
			t.Fatalf("out of order at %d: got %d", i, it)
		}
	}
}

func TestBroadcastSlowSubscriberDrop(t *testing.T) {
	const n = 100
	b := NewBroadcast()
	sub := b.Subscribe(1) // deliberately tiny: reader never drains
	emitN(b, n)           // emitter must not block
	b.Close()

	got := drain(sub)
	if sub.Dropped() == 0 || b.Dropped() == 0 {
		t.Fatalf("expected drops for a stuck subscriber, got sub=%d total=%d", sub.Dropped(), b.Dropped())
	}
	if uint64(len(got))+sub.Dropped() != n {
		t.Fatalf("received %d + dropped %d != emitted %d", len(got), sub.Dropped(), n)
	}
	// Whatever survives must still be an increasing subsequence.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("drop policy broke ordering: %v", got)
		}
	}
	// The full stream is still retained for late (replay) subscribers.
	if b.Len() != n {
		t.Fatalf("retained %d of %d events", b.Len(), n)
	}
}

func TestBroadcastSubscribeAfterClose(t *testing.T) {
	b := NewBroadcast()
	emitN(b, 4)
	b.Close()
	b.Event(Event{Type: ImprovePass, Iteration: 99}) // must be dropped

	sub := b.Subscribe(4)
	got := drain(sub) // channel is already closed; only history remains
	if len(got) != 4 || got[3] != 4 {
		t.Fatalf("late subscriber: want full 4-event history, got %v", got)
	}
	if !b.Closed() {
		t.Fatal("Closed() should report true")
	}
}

func TestBroadcastCancelIdempotent(t *testing.T) {
	b := NewBroadcast()
	sub := b.Subscribe(1)
	sub.Cancel()
	sub.Cancel() // second cancel must not panic
	emitN(b, 3)  // emitting to a cancelled sub must not panic or block
	b.Close()    // close after cancel must not double-close
	if got := drain(sub); len(got) != 0 {
		t.Fatalf("cancelled subscription received %v", got)
	}
}

// TestBroadcastConcurrent hammers subscribe/consume/cancel from many
// goroutines while an emitter runs — the -race leg's target. Subscribers
// that stay attached until Close must observe an ordered subsequence with
// received+dropped accounting intact.
func TestBroadcastConcurrent(t *testing.T) {
	const (
		events      = 2000
		subscribers = 16
	)
	b := NewBroadcast()
	var wg sync.WaitGroup

	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := b.Subscribe(8)
			if i%3 == 0 {
				// A third of the subscribers detach mid-stream.
				for j := 0; j < 10; j++ {
					select {
					case _, ok := <-sub.C():
						if !ok {
							return
						}
					}
				}
				sub.Cancel()
				return
			}
			prev := -1
			seen := len(sub.History)
			for _, e := range sub.History {
				if e.Iteration <= prev {
					t.Errorf("history out of order")
					return
				}
				prev = e.Iteration
			}
			for e := range sub.C() {
				if e.Iteration <= prev {
					t.Errorf("live stream out of order: %d after %d", e.Iteration, prev)
					return
				}
				prev = e.Iteration
				seen++
			}
			if uint64(seen)+sub.Dropped() > events {
				t.Errorf("accounting overflow: seen=%d dropped=%d", seen, sub.Dropped())
			}
		}(i)
	}

	emitN(b, events)
	b.Close()
	wg.Wait()

	if b.Len() != events {
		t.Fatalf("retained %d of %d", b.Len(), events)
	}
}
