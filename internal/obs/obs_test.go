package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilEmitterIsInert(t *testing.T) {
	var em *Emitter
	if em.Enabled() {
		t.Error("nil emitter reports enabled")
	}
	// Must not panic.
	em.Emit(Event{Type: RunStart, M: 3})

	if got := NewEmitter(nil, "x"); got != nil {
		t.Errorf("NewEmitter(nil) = %v, want nil", got)
	}
}

func TestEmitterStampsEvents(t *testing.T) {
	var c Collector
	em := NewEmitter(&c, "run1")
	em.Emit(Event{Type: RunStart, M: 2})
	em.Emit(Event{Type: RunEnd, K: 2, Feasible: true, Source: "explicit"})
	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("collected %d events, want 2", len(evs))
	}
	if evs[0].Source != "run1" {
		t.Errorf("source = %q, want emitter tag", evs[0].Source)
	}
	if evs[1].Source != "explicit" {
		t.Errorf("explicit source overwritten: %q", evs[1].Source)
	}
	if evs[1].At < evs[0].At {
		t.Errorf("timestamps not monotone: %v then %v", evs[0].At, evs[1].At)
	}
}

func TestCollectorPreservesOrderAndCounts(t *testing.T) {
	var c Collector
	seq := []EventType{RunStart, BipartitionStart, BipartitionEnd,
		ImprovePass, ImprovePass, Repair, Absorb, RunEnd}
	for i, ty := range seq {
		c.Event(Event{Type: ty, Iteration: i})
	}
	evs := c.Events()
	if len(evs) != len(seq) {
		t.Fatalf("len = %d, want %d", len(evs), len(seq))
	}
	for i, e := range evs {
		if e.Type != seq[i] || e.Iteration != i {
			t.Errorf("event %d = (%v,%d), want (%v,%d)", i, e.Type, e.Iteration, seq[i], i)
		}
	}
	if c.Count(ImprovePass) != 2 || c.Count(Cancelled) != 0 {
		t.Errorf("counts wrong: improve=%d cancelled=%d", c.Count(ImprovePass), c.Count(Cancelled))
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("reset left %d events", c.Len())
	}
}

func TestTextSinkFormats(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	s.Event(Event{Type: BipartitionEnd, Iteration: 3, Block: 2, Size: 10, Terminals: 5})
	s.Event(Event{Type: ImprovePass, Label: "pair(R,Pk)", Blocks: []int{0, 2}, Improved: true})
	s.Event(Event{Type: Repair, Block: 1, Moves: 4})
	s.Event(Event{Type: Absorb, Block: 7})
	s.Event(Event{Type: StackRestart, Label: "semi", Moves: 12})
	out := buf.String()
	for _, want := range []string{
		"iteration 3: bipartition R -> {R, P2} (size=10 T=5)",
		"improve pair(R,Pk) blocks=[0 2] improved=true",
		"repair block=1 shed=4",
		"absorbed block 7",
		"stack restart semi prefix=12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q\ngot:\n%s", want, out)
		}
	}
}

func TestJSONSinkEmitsOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	s.Event(Event{Type: ImprovePass, Label: "all", Blocks: []int{0, 1}, Passes: 3})
	s.Event(Event{Type: RunEnd, K: 4, Feasible: true})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["type"] != "improve-pass" || first["label"] != "all" {
		t.Errorf("decoded %v, want improve-pass/all", first)
	}
	if _, ok := first["block"]; ok {
		t.Error("zero field not elided from JSON")
	}
}

func TestSynchronizedAndLockedUnderConcurrency(t *testing.T) {
	var c Collector
	var mu sync.Mutex
	sinks := []Sink{Synchronized(&c), Locked(&mu, &c), &c}
	const perSink = 200
	var wg sync.WaitGroup
	for _, s := range sinks {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(s Sink) {
				defer wg.Done()
				for i := 0; i < perSink; i++ {
					s.Event(Event{Type: ImprovePass, Moves: i})
				}
			}(s)
		}
	}
	wg.Wait()
	if got, want := c.Len(), len(sinks)*4*perSink; got != want {
		t.Errorf("collected %d events, want %d", got, want)
	}
	if Synchronized(nil) != nil || Locked(&mu, nil) != nil {
		t.Error("nil sink wrappers must stay nil")
	}
}

func TestMultiFansOut(t *testing.T) {
	var a, b Collector
	m := Multi(&a, nil, &b)
	m.Event(Event{Type: RunStart})
	m.Event(Event{Type: RunEnd})
	if a.Len() != 2 || b.Len() != 2 {
		t.Errorf("fan-out lens = %d,%d, want 2,2", a.Len(), b.Len())
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	if one := Multi(&a); one != Sink(&a) {
		t.Error("Multi of one sink should return it unwrapped")
	}
}

func TestStatsMergeAndDerived(t *testing.T) {
	a := Stats{Iterations: 2, Passes: 4, MovesApplied: 40, MovesEvaluated: 100,
		MovesGated: 25, BucketOps: 500, Restarts: 1, PeakBlocks: 3}
	a.PhaseTime[PhaseSeed] = time.Millisecond
	b := Stats{Iterations: 1, Passes: 6, MovesApplied: 20, MovesEvaluated: 100,
		MovesGated: 0, BucketOps: 100, Restarts: 2, PeakBlocks: 5, Absorbed: 1}
	b.PhaseTime[PhaseSeed] = time.Millisecond
	a.Merge(b)
	if a.Iterations != 3 || a.Passes != 10 || a.MovesApplied != 60 ||
		a.BucketOps != 600 || a.Restarts != 3 || a.Absorbed != 1 {
		t.Errorf("merge wrong: %+v", a)
	}
	if a.PeakBlocks != 5 {
		t.Errorf("PeakBlocks = %d, want max 5", a.PeakBlocks)
	}
	if a.PhaseTime[PhaseSeed] != 2*time.Millisecond {
		t.Errorf("phase time = %v, want 2ms", a.PhaseTime[PhaseSeed])
	}
	if got := a.MovesPerPass(); got != 6 {
		t.Errorf("MovesPerPass = %v, want 6", got)
	}
	if got := a.GateRate(); got != 0.125 {
		t.Errorf("GateRate = %v, want 0.125", got)
	}
	var zero Stats
	if zero.MovesPerPass() != 0 || zero.GateRate() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestStatsReportMentionsEveryPhase(t *testing.T) {
	var buf bytes.Buffer
	s := Stats{Iterations: 1, Passes: 2, MovesApplied: 10}
	s.Report(&buf)
	out := buf.String()
	for p := Phase(0); p < NumPhases; p++ {
		if !strings.Contains(out, p.String()) {
			t.Errorf("report missing phase %q:\n%s", p, out)
		}
	}
	if !strings.Contains(out, "moves/pass") {
		t.Errorf("report missing moves/pass:\n%s", out)
	}
}

func TestEventTypeStrings(t *testing.T) {
	for ty := EventType(0); ty < numEventTypes; ty++ {
		if strings.HasPrefix(ty.String(), "EventType(") {
			t.Errorf("event type %d unnamed", ty)
		}
	}
	txt, err := ImprovePass.MarshalText()
	if err != nil || string(txt) != "improve-pass" {
		t.Errorf("MarshalText = %q, %v", txt, err)
	}
}
