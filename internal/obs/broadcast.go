package obs

import "sync"

// Broadcast is a Sink that retains the event stream and fans it out to any
// number of live subscribers. It backs the partitioning service's
// `GET /v1/jobs/{id}/events` endpoint: the partitioning goroutine emits
// into the Broadcast, and each HTTP streaming handler holds a Subscription.
//
// Guarantees:
//
//   - Ordering: events are delivered to every subscriber in emit order.
//     A Subscription's History followed by its channel reads reconstructs
//     a prefix-preserving subsequence of the emitted stream.
//   - Late subscribers: Subscribe atomically snapshots the history and
//     registers for live delivery, so no event is both missed and absent
//     from History.
//   - Slow subscribers: delivery is non-blocking. When a subscriber's
//     buffer is full the event is dropped for that subscriber only, and
//     its Dropped counter advances; the emitting goroutine never stalls on
//     a stuck reader.
//   - Termination: Close marks the stream complete and closes every
//     subscriber channel. Subscriptions taken after Close see the full
//     history and an already-closed channel.
//
// All methods are safe for concurrent use.
type Broadcast struct {
	mu      sync.Mutex
	events  []Event
	subs    map[*Subscription]struct{}
	closed  bool
	dropped uint64
}

// NewBroadcast returns an empty broadcast sink.
func NewBroadcast() *Broadcast {
	return &Broadcast{subs: make(map[*Subscription]struct{})}
}

// Event retains e and fans it out to the live subscribers without blocking.
// Events arriving after Close are dropped (the stream has ended).
func (b *Broadcast) Event(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.events = append(b.events, e)
	for sub := range b.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped++
			b.dropped++
		}
	}
}

// Subscription is one subscriber's view of a Broadcast stream.
type Subscription struct {
	// History holds every event emitted before the subscription was taken,
	// in emit order. Consume it before reading C.
	History []Event

	b       *Broadcast
	ch      chan Event
	dropped uint64
	done    bool
}

// C yields the events emitted after the subscription was taken, in order.
// It is closed when the Broadcast closes or the subscription is cancelled.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped reports how many events were discarded for this subscriber
// because its buffer was full.
func (s *Subscription) Dropped() uint64 {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.dropped
}

// Cancel detaches the subscription and closes its channel. Safe to call
// more than once, and after the Broadcast has closed.
func (s *Subscription) Cancel() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	delete(s.b.subs, s)
	close(s.ch)
}

// Subscribe returns a subscription whose History is the stream so far and
// whose channel receives subsequent events, buffered to buf (minimum 1).
// The snapshot and the registration are atomic: no emit can fall between
// them.
func (b *Broadcast) Subscribe(buf int) *Subscription {
	if buf < 1 {
		buf = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	sub := &Subscription{
		History: append([]Event(nil), b.events...),
		b:       b,
		ch:      make(chan Event, buf),
	}
	if b.closed {
		sub.done = true
		close(sub.ch)
		return sub
	}
	b.subs[sub] = struct{}{}
	return sub
}

// Close ends the stream: every subscriber channel is closed and later
// Event calls become no-ops. Safe to call more than once.
func (b *Broadcast) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		sub.done = true
		close(sub.ch)
		delete(b.subs, sub)
	}
}

// Closed reports whether Close has been called.
func (b *Broadcast) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Events returns a copy of the retained stream in emit order.
func (b *Broadcast) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Len returns the number of retained events.
func (b *Broadcast) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Dropped returns the total number of per-subscriber event drops.
func (b *Broadcast) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
