package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TextSink renders events as one human-readable line each, matching the
// Figure 1 trace format the repository's schedule tests assert against.
type TextSink struct {
	w io.Writer
}

// NewTextSink writes one line per event to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Event renders e.
func (s *TextSink) Event(e Event) {
	switch e.Type {
	case RunStart:
		fmt.Fprintf(s.w, "run start: M=%d\n", e.M)
	case RunEnd:
		fmt.Fprintf(s.w, "run end: K=%d feasible=%v\n", e.K, e.Feasible)
	case BipartitionStart:
		fmt.Fprintf(s.w, "iteration %d: bipartition start\n", e.Iteration)
	case BipartitionEnd:
		fmt.Fprintf(s.w, "iteration %d: bipartition R -> {R, P%d} (size=%d T=%d)\n",
			e.Iteration, e.Block, e.Size, e.Terminals)
	case ImprovePass:
		fmt.Fprintf(s.w, "improve %s blocks=%v improved=%v\n", e.Label, e.Blocks, e.Improved)
	case StackRestart:
		fmt.Fprintf(s.w, "stack restart %s prefix=%d\n", e.Label, e.Moves)
	case SolutionAccepted:
		fmt.Fprintf(s.w, "restart solution accepted\n")
	case SolutionRejected:
		fmt.Fprintf(s.w, "restart solution rejected\n")
	case Repair:
		fmt.Fprintf(s.w, "repair block=%d shed=%d\n", e.Block, e.Moves)
	case Absorb:
		fmt.Fprintf(s.w, "absorbed block %d\n", e.Block)
	case Cancelled:
		fmt.Fprintf(s.w, "run cancelled\n")
	default:
		fmt.Fprintf(s.w, "%s %+v\n", e.Type, e)
	}
}

// JSONSink renders events as JSON, one object per line, suitable for
// machine consumption (`cmd/fpart -trace-format=json`).
type JSONSink struct {
	enc *json.Encoder
}

// NewJSONSink writes one JSON object per event to w.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{enc: json.NewEncoder(w)} }

// Event encodes e.
func (s *JSONSink) Event(e Event) { _ = s.enc.Encode(e) }

// Collector retains the event stream in order. It is safe for concurrent
// use, so one Collector can observe every member of a core.Portfolio.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Event appends e.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the stream in arrival order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Count returns how many events of type t arrived.
func (c *Collector) Count(t EventType) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// Len returns the total number of events collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards the collected events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// lockedSink serializes access to an underlying sink.
type lockedSink struct {
	mu *sync.Mutex
	s  Sink
}

func (l *lockedSink) Event(e Event) {
	l.mu.Lock()
	l.s.Event(e)
	l.mu.Unlock()
}

// Synchronized wraps s with a private mutex so it can be shared by
// concurrent runs. Returns nil for a nil sink.
func Synchronized(s Sink) Sink {
	if s == nil {
		return nil
	}
	return &lockedSink{mu: new(sync.Mutex), s: s}
}

// Locked wraps s with the caller's mutex. Use it when several wrappers must
// share one lock — core.Portfolio wraps every member's sink with a single
// mutex so that distinct configurations pointing at the same underlying
// sink stay serialized. Returns nil for a nil sink.
func Locked(mu *sync.Mutex, s Sink) Sink {
	if s == nil {
		return nil
	}
	return &lockedSink{mu: mu, s: s}
}

// Multi fans events out to every non-nil sink, in order.
func Multi(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}
