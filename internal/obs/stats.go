package obs

import (
	"fmt"
	"io"
	"time"
)

// Phase indexes the per-phase wall-time slots of Stats.PhaseTime.
type Phase uint8

const (
	// PhaseSeed is the constructive bipartitioning of §3.2.
	PhaseSeed Phase = iota
	// PhaseImprove is the guided iterative improvement of §3.3–§3.7.
	PhaseImprove
	// PhaseRepair is the semi-feasibility repair between iterations.
	PhaseRepair
	// PhaseAbsorb is the endgame absorption pass.
	PhaseAbsorb
	// PhaseCoarsen is the hierarchy construction of a multilevel V-cycle.
	PhaseCoarsen
	// PhaseRefine is the uncoarsening/refinement sweep of a multilevel
	// V-cycle (projection + boundary FM + flow refinement).
	PhaseRefine

	// NumPhases sizes PhaseTime.
	NumPhases
)

var phaseNames = [NumPhases]string{"seed", "improve", "repair", "absorb", "coarsen", "refine"}

// String names the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Stats aggregates the effort counters of one partitioning run (or, after
// Merge, of several). The zero value is ready to use.
type Stats struct {
	// Iterations counts Algorithm 1 bipartition steps.
	Iterations int
	// ImproveCalls counts schedule-step Improve invocations.
	ImproveCalls int
	// Passes counts FM passes executed, including stack-restart series.
	Passes int
	// MovesEvaluated counts candidate moves examined by best-move
	// selection (admissible or not).
	MovesEvaluated int
	// MovesApplied counts cell moves actually applied (before rollbacks),
	// plus repair sheds.
	MovesApplied int
	// MovesGated counts candidate moves rejected by the feasible move
	// regions of §3.5.
	MovesGated int
	// BucketOps counts gain-bucket mutations (inserts, removals, updates).
	BucketOps int
	// Restarts counts pass series started from stacked solutions (§3.6).
	Restarts int
	// Absorbed counts blocks dissolved by the endgame absorption.
	Absorbed int
	// PeakBlocks is the largest block count observed during the run.
	PeakBlocks int
	// SpecRounds counts speculative peeling rounds (peel steps raced at
	// width > 1). The other counters above describe the adopted trajectory
	// only; losing candidates' effort is not folded in, so effort metrics
	// stay comparable across speculation widths.
	SpecRounds int
	// SpecWins counts speculative rounds won by a non-base candidate
	// (candidate 0 is always the caller's own configuration).
	SpecWins int
	// SpecLosses counts discarded candidates across all rounds.
	SpecLosses int
	// PhaseTime is wall time per algorithm phase, indexed by Phase.
	PhaseTime [NumPhases]time.Duration
}

// Merge folds o into s (counters add, peaks take the max).
func (s *Stats) Merge(o Stats) {
	s.Iterations += o.Iterations
	s.ImproveCalls += o.ImproveCalls
	s.Passes += o.Passes
	s.MovesEvaluated += o.MovesEvaluated
	s.MovesApplied += o.MovesApplied
	s.MovesGated += o.MovesGated
	s.BucketOps += o.BucketOps
	s.Restarts += o.Restarts
	s.Absorbed += o.Absorbed
	if o.PeakBlocks > s.PeakBlocks {
		s.PeakBlocks = o.PeakBlocks
	}
	s.SpecRounds += o.SpecRounds
	s.SpecWins += o.SpecWins
	s.SpecLosses += o.SpecLosses
	for i := range s.PhaseTime {
		s.PhaseTime[i] += o.PhaseTime[i]
	}
}

// MovesPerPass is the average number of applied moves per FM pass, the
// headline effort density metric of the EXPERIMENTS.md instrumentation
// tables.
func (s Stats) MovesPerPass() float64 {
	if s.Passes == 0 {
		return 0
	}
	return float64(s.MovesApplied) / float64(s.Passes)
}

// GateRate is the fraction of evaluated moves rejected by the move windows.
func (s Stats) GateRate() float64 {
	if s.MovesEvaluated == 0 {
		return 0
	}
	return float64(s.MovesGated) / float64(s.MovesEvaluated)
}

// Report writes a multi-line human-readable summary (the `cmd/fpart -stats`
// instrumentation block).
func (s Stats) Report(w io.Writer) {
	fmt.Fprintf(w, "instrumentation:\n")
	fmt.Fprintf(w, "  iterations %6d   improve calls %6d   passes %6d   restarts %5d\n",
		s.Iterations, s.ImproveCalls, s.Passes, s.Restarts)
	fmt.Fprintf(w, "  moves      %6d applied / %d evaluated / %d window-gated (%.1f%%), %.1f moves/pass\n",
		s.MovesApplied, s.MovesEvaluated, s.MovesGated, 100*s.GateRate(), s.MovesPerPass())
	fmt.Fprintf(w, "  buckets    %6d ops   peak blocks %d   absorbed %d\n",
		s.BucketOps, s.PeakBlocks, s.Absorbed)
	if s.SpecRounds > 0 {
		fmt.Fprintf(w, "  speculate  %6d rounds   %d variant wins   %d discarded candidates\n",
			s.SpecRounds, s.SpecWins, s.SpecLosses)
	}
	fmt.Fprintf(w, "  phase time")
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(w, "  %s %s", p, s.PhaseTime[p].Round(time.Microsecond))
	}
	fmt.Fprintln(w)
}
