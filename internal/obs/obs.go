// Package obs is the structured observability layer of the FPART pipeline.
//
// The partitioner's interesting behaviour — the improvement schedule of
// Algorithm 1 (§3.1), the dual solution stacks (§3.6), the feasible move
// regions (§3.5) — is invisible from the final Result alone. This package
// gives every layer of the pipeline a common vocabulary for reporting what
// it did:
//
//   - Event / Sink: a typed event stream. core.Run emits one Event per
//     algorithm step (bipartition start/end, improvement pass per schedule
//     step, repair, absorption, run start/end); the sanchis engine emits
//     stack restarts and restart-solution accept/reject decisions. Sinks
//     render the stream as text (TextSink, the Figure 1 trace), JSON lines
//     (JSONSink), or retain it for inspection (Collector).
//   - Stats: aggregated effort counters — passes run, moves evaluated /
//     applied / gated by the move windows, gain-bucket operations, stack
//     restarts, per-phase wall time, peak block count. core.Run fills one
//     Stats per run; Merge folds several together.
//   - Emitter: the nil-safe handle the pipeline threads through its layers.
//     A nil *Emitter is fully inert, so the instrumented hot paths cost a
//     single pointer test when observability is off.
//
// Sinks are invoked synchronously from the partitioning goroutine. A sink
// shared between concurrent runs (core.Portfolio members) must be safe for
// concurrent use: Collector is; wrap anything else with Synchronized or
// Locked. See ARCHITECTURE.md for where each event fires.
package obs

import (
	"fmt"
	"time"
)

// EventType enumerates the algorithm events emitted by the pipeline.
type EventType uint8

const (
	// RunStart opens a core.Run event stream (carries M).
	RunStart EventType = iota
	// RunEnd closes the stream (carries K and Feasible).
	RunEnd
	// BipartitionStart marks the beginning of one Algorithm 1 iteration,
	// before the constructive seeding of §3.2.
	BipartitionStart
	// BipartitionEnd reports the seeded block: {R_k, P_k} = Bipartition(R)
	// (carries Iteration, Block, Size, Terminals).
	BipartitionEnd
	// ImprovePass reports one schedule step of §3.1 (carries Label — e.g.
	// "pair(R,Pk)", "all" — Blocks, Passes, Moves, Improved).
	ImprovePass
	// StackRestart reports a pass series restarted from a stacked solution
	// of §3.6 (Label is "semi" or "infeasible", Moves the journal prefix).
	StackRestart
	// SolutionAccepted reports a restart series that beat the incumbent
	// solution key; SolutionRejected one that did not.
	SolutionAccepted
	// SolutionRejected is the complement of SolutionAccepted.
	SolutionRejected
	// Repair reports a non-remainder block shedding cells back to the
	// remainder to restore semi-feasibility (carries Block, Moves).
	Repair
	// Absorb reports the endgame absorption dissolving a block (carries
	// Block).
	Absorb
	// Cancelled reports a run aborted by context cancellation or deadline.
	Cancelled
	// SpecWin reports the candidate that won one speculative peeling round
	// (carries Iteration, Candidate, Label — the candidate's variant name).
	SpecWin
	// SpecLoss reports a candidate whose speculative peel was discarded
	// (carries Iteration, Candidate, Label).
	SpecLoss
	// CoarsenLevel reports one heavy-edge coarsening level of a multilevel
	// V-cycle (carries Iteration — the level index — and Size — the coarse
	// node count).
	CoarsenLevel
	// RefineLevel reports one uncoarsening/refinement level of a multilevel
	// V-cycle (carries Iteration — the level index — Size — the fine node
	// count — Moves, and Improved).
	RefineLevel

	numEventTypes
)

var eventNames = [numEventTypes]string{
	"run-start", "run-end", "bipartition-start", "bipartition-end",
	"improve-pass", "stack-restart", "solution-accepted",
	"solution-rejected", "repair", "absorb", "cancelled",
	"spec-win", "spec-loss", "coarsen-level", "refine-level",
}

// String names the event type as used in the text and JSON renderings.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// MarshalText renders the type name, so JSONSink output is self-describing.
func (t EventType) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText parses a type name, so consumers of the JSON event stream
// (the service's NDJSON endpoint, trace post-processors) can decode events
// back into obs.Event.
func (t *EventType) UnmarshalText(b []byte) error {
	s := string(b)
	for i, n := range eventNames {
		if n == s {
			*t = EventType(i)
			return nil
		}
	}
	return fmt.Errorf("unknown event type %q", s)
}

// Event is one observation from the pipeline. Only the fields relevant to
// the Type are set; the rest stay zero (and are elided from JSON output).
type Event struct {
	Type EventType `json:"type"`
	// At is the offset from the emitting run's start.
	At time.Duration `json:"at_ns"`
	// Source tags the emitting run — Portfolio members are tagged
	// "portfolio[i]" unless the configuration carries its own Label.
	Source string `json:"source,omitempty"`
	// Iteration is the Algorithm 1 iteration (1-based; 0 outside the loop).
	Iteration int `json:"iteration,omitempty"`
	// Label is the schedule-step label (ImprovePass) or stack name
	// (StackRestart).
	Label string `json:"label,omitempty"`
	// Blocks lists the active blocks of an improvement pass.
	Blocks []int `json:"blocks,omitempty"`
	// Block is the subject block (BipartitionEnd, Repair, Absorb).
	Block int `json:"block,omitempty"`
	// Size and Terminals describe the subject block (BipartitionEnd).
	Size      int `json:"size,omitempty"`
	Terminals int `json:"terminals,omitempty"`
	// K and M carry the block count and lower bound (RunStart, RunEnd).
	K int `json:"k,omitempty"`
	M int `json:"m,omitempty"`
	// Candidate is the speculation candidate index (SpecWin, SpecLoss).
	Candidate int `json:"candidate,omitempty"`
	// Passes and Moves quantify an improvement call or restart prefix.
	Passes int `json:"passes,omitempty"`
	Moves  int `json:"moves,omitempty"`
	// Improved and Feasible report outcomes (ImprovePass, RunEnd).
	Improved bool `json:"improved,omitempty"`
	Feasible bool `json:"feasible,omitempty"`
}

// Sink receives the event stream. Implementations are invoked synchronously
// from the partitioning goroutine; they must not call back into the
// partitioner.
type Sink interface {
	Event(Event)
}

// Emitter stamps events with a run-relative timestamp and source tag before
// forwarding them to a Sink. The nil *Emitter is valid and inert — every
// instrumented layer holds an *Emitter and pays one nil test when
// observability is off.
type Emitter struct {
	sink   Sink
	source string
	start  time.Time
}

// NewEmitter wraps sink for one run. A nil sink yields a nil (inert)
// emitter.
func NewEmitter(sink Sink, source string) *Emitter {
	if sink == nil {
		return nil
	}
	return &Emitter{sink: sink, source: source, start: time.Now()}
}

// Enabled reports whether events will reach a sink. Callers building
// expensive event payloads (slices) should guard on it.
func (em *Emitter) Enabled() bool { return em != nil }

// Emit stamps and forwards e. Safe on a nil receiver.
func (em *Emitter) Emit(e Event) {
	if em == nil {
		return
	}
	e.At = time.Since(em.start)
	if e.Source == "" {
		e.Source = em.source
	}
	em.sink.Event(e)
}
