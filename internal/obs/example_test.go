package obs_test

import (
	"fmt"
	"os"

	"fpart/internal/obs"
)

// ExampleTextSink renders a hand-built event stream the way core.Run
// streams a real one (cmd/fpart -trace-format text).
func ExampleTextSink() {
	sink := obs.NewTextSink(os.Stdout)
	em := obs.NewEmitter(sink, "demo")
	em.Emit(obs.Event{Type: obs.RunStart, M: 2})
	em.Emit(obs.Event{Type: obs.BipartitionEnd, Iteration: 1, Block: 1, Size: 6, Terminals: 2})
	em.Emit(obs.Event{Type: obs.ImprovePass, Label: "pair(R,Pk)", Blocks: []int{0, 1}, Improved: true})
	em.Emit(obs.Event{Type: obs.RunEnd, K: 2, Feasible: true})
	// Output:
	// run start: M=2
	// iteration 1: bipartition R -> {R, P1} (size=6 T=2)
	// improve pair(R,Pk) blocks=[0 1] improved=true
	// run end: K=2 feasible=true
}

// ExampleCollector retains a stream for inspection — the pattern the
// repository's tests use to assert event ordering.
func ExampleCollector() {
	var c obs.Collector
	em := obs.NewEmitter(&c, "run")
	em.Emit(obs.Event{Type: obs.RunStart})
	em.Emit(obs.Event{Type: obs.ImprovePass, Label: "all"})
	em.Emit(obs.Event{Type: obs.ImprovePass, Label: "final-pair"})
	em.Emit(obs.Event{Type: obs.RunEnd})

	evs := c.Events()
	fmt.Printf("events=%d first=%s last=%s\n", len(evs), evs[0].Type, evs[len(evs)-1].Type)
	fmt.Printf("improve passes=%d\n", c.Count(obs.ImprovePass))
	// Output:
	// events=4 first=run-start last=run-end
	// improve passes=2
}

// ExampleStats_Merge folds per-run counters into suite totals, as
// internal/bench does for the Table 7 instrumentation.
func ExampleStats_Merge() {
	a := obs.Stats{Iterations: 4, Passes: 290, MovesApplied: 54078, PeakBlocks: 5}
	b := obs.Stats{Iterations: 7, Passes: 537, MovesApplied: 99658, PeakBlocks: 8}
	a.Merge(b)
	fmt.Printf("iterations=%d passes=%d moves/pass=%.1f peak=%d\n",
		a.Iterations, a.Passes, a.MovesPerPass(), a.PeakBlocks)
	// Output:
	// iterations=11 passes=827 moves/pass=185.9 peak=8
}
