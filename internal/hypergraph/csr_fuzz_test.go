package hypergraph

// Property test for the CSR incidence layout: a fuzzer-driven Builder
// construction must produce slab-backed accessors (NetPins, NodeNets,
// Degree, NetDegree, packed attributes) that agree with an independent
// shadow incidence built directly from the raw inputs. The shadow is
// assembled BEFORE Build repoints the legacy structs at the slabs, so the
// comparison cannot be satisfied by aliasing.

import (
	"testing"
)

// decodeCircuit turns a fuzzer byte stream into a deterministic Builder
// construction plus the shadow input lists it was built from. Duplicate
// pins are pre-collapsed the same way AddNet collapses them, so the shadow
// pin lists are exactly what Build receives.
func decodeCircuit(data []byte) (b *Builder, kinds []NodeKind, sizes, auxs []int, netPins [][]NodeID) {
	if len(data) < 2 {
		return nil, nil, nil, nil, nil
	}
	b = &Builder{}
	n := int(data[0])%48 + 1
	data = data[1:]
	for i := 0; i < n; i++ {
		var spec byte
		if i < len(data) {
			spec = data[i]
		}
		if spec&1 == 0 {
			sz := int(spec>>1)%7 + 1
			id := b.AddInterior("v", sz)
			aux := int(spec >> 4 & 3)
			b.SetAux(id, aux)
			kinds = append(kinds, Interior)
			sizes = append(sizes, sz)
			auxs = append(auxs, aux)
		} else {
			b.AddPad("p")
			kinds = append(kinds, Pad)
			sizes = append(sizes, 0)
			auxs = append(auxs, 0)
		}
	}
	if n < len(data) {
		data = data[n:]
	} else {
		data = nil
	}
	// Remaining bytes: alternating (degree, pins...) groups.
	for len(data) > 0 {
		deg := int(data[0])%6 + 1
		data = data[1:]
		if deg > len(data) {
			deg = len(data)
		}
		if deg == 0 {
			break
		}
		var pins []NodeID
		seen := map[NodeID]bool{}
		for _, raw := range data[:deg] {
			p := NodeID(int(raw) % n)
			if !seen[p] {
				seen[p] = true
				pins = append(pins, p)
			}
		}
		data = data[deg:]
		b.AddNet("e", pins...)
		netPins = append(netPins, pins)
	}
	return b, kinds, sizes, auxs, netPins
}

func FuzzBuilderCSRRoundTrip(f *testing.F) {
	f.Add([]byte{8, 0, 1, 2, 3, 4, 5, 6, 7, 3, 0, 1, 2, 2, 3, 4})
	f.Add([]byte{3, 2, 2, 2, 1, 0, 1, 1, 1, 2, 2, 0})
	f.Add([]byte{48, 255, 254})
	f.Add([]byte{1, 0, 5, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, kinds, sizes, auxs, netPins := decodeCircuit(data)
		if b == nil {
			return
		}
		// Shadow transpose from the raw inputs: node v's incident nets in
		// ascending net order — the documented NodeNets order.
		n := len(kinds)
		shadowNets := make([][]NetID, n)
		for ei, pins := range netPins {
			for _, p := range pins {
				shadowNets[p] = append(shadowNets[p], NetID(ei))
			}
		}

		h, err := b.Build()
		if err != nil {
			t.Fatalf("Build failed on valid construction: %v", err)
		}
		if h.NumNodes() != n || h.NumNets() != len(netPins) {
			t.Fatalf("dims: got %d nodes %d nets, want %d, %d", h.NumNodes(), h.NumNets(), n, len(netPins))
		}

		totalPins, maxDeg, totalSize, totalAux, pads := 0, 0, 0, 0, 0
		for v := 0; v < n; v++ {
			id := NodeID(v)
			if h.KindOf(id) != kinds[v] || h.SizeOf(id) != sizes[v] || h.AuxOf(id) != auxs[v] {
				t.Fatalf("node %d attrs: kind=%v size=%d aux=%d, want %v/%d/%d",
					v, h.KindOf(id), h.SizeOf(id), h.AuxOf(id), kinds[v], sizes[v], auxs[v])
			}
			nd := h.Node(id)
			if nd.Kind != kinds[v] || nd.Size != sizes[v] || nd.Aux != auxs[v] {
				t.Fatalf("node %d struct attrs diverge from packed arrays", v)
			}
			got := h.NodeNets(id)
			if len(got) != len(shadowNets[v]) || h.Degree(id) != len(shadowNets[v]) {
				t.Fatalf("node %d: %d incident nets (Degree %d), shadow %d",
					v, len(got), h.Degree(id), len(shadowNets[v]))
			}
			for i := range got {
				if got[i] != shadowNets[v][i] {
					t.Fatalf("node %d nets[%d]: got %d, shadow %d", v, i, got[i], shadowNets[v][i])
				}
			}
			totalPins += len(got)
			if len(got) > maxDeg {
				maxDeg = len(got)
			}
			if kinds[v] == Interior {
				totalSize += sizes[v]
			} else {
				pads++
			}
			totalAux += auxs[v]
		}
		for ei, pins := range netPins {
			id := NetID(ei)
			got := h.NetPins(id)
			if len(got) != len(pins) || h.NetDegree(id) != len(pins) {
				t.Fatalf("net %d: %d pins (NetDegree %d), shadow %d",
					ei, len(got), h.NetDegree(id), len(pins))
			}
			for i := range got {
				if got[i] != pins[i] {
					t.Fatalf("net %d pins[%d]: got %d, shadow %d", ei, i, got[i], pins[i])
				}
			}
		}
		if h.NumPins() != totalPins {
			t.Fatalf("NumPins %d, shadow transpose has %d", h.NumPins(), totalPins)
		}
		if h.MaxDegree() != maxDeg {
			t.Fatalf("MaxDegree %d, shadow %d", h.MaxDegree(), maxDeg)
		}
		if h.TotalSize() != totalSize || h.TotalAux() != totalAux || h.NumPads() != pads {
			t.Fatalf("aggregates: size %d aux %d pads %d, shadow %d/%d/%d",
				h.TotalSize(), h.TotalAux(), h.NumPads(), totalSize, totalAux, pads)
		}
	})
}
