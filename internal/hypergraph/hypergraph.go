// Package hypergraph provides the circuit hypergraph substrate used by all
// partitioners in this repository.
//
// A circuit is modeled as a hypergraph H = ({X, Y}, E) following the problem
// definition of Krupnova & Saucier (DATE 1999, §2): X is the set of interior
// nodes (logic cells, each with a size in technology cells), Y is the set of
// terminal nodes (primary I/O pads, size zero), and E is the set of nets,
// each net connecting two or more nodes.
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a Hypergraph. IDs are dense, starting at 0.
type NodeID int32

// NetID identifies a net within a Hypergraph. IDs are dense, starting at 0.
type NetID int32

// NodeKind distinguishes interior logic nodes from terminal (pad) nodes.
type NodeKind uint8

const (
	// Interior marks a logic node; it occupies Size technology cells.
	Interior NodeKind = iota
	// Pad marks a primary I/O terminal node; it has size zero and consumes
	// one device terminal (IOB) in whichever block it is assigned to.
	Pad
)

// String returns "interior" or "pad".
func (k NodeKind) String() string {
	switch k {
	case Interior:
		return "interior"
	case Pad:
		return "pad"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Node is a vertex of the hypergraph: a logic cell or an I/O pad.
type Node struct {
	Name string
	Kind NodeKind
	// Size is the number of technology cells (CLBs) the node occupies.
	// It is zero for pads and at least one for interior nodes.
	Size int
	// Aux is the node's demand on the device's secondary resource —
	// flip-flops on Xilinx parts, tristate lines, etc. (§2 of the paper:
	// "handled in a similar way as the size constraint"). Zero for nodes
	// without such demand.
	Aux int
	// Nets lists the nets incident to the node, in insertion order.
	Nets []NetID
}

// Net is a hyperedge connecting two or more nodes.
type Net struct {
	Name string
	// Pins lists the nodes connected by the net, without duplicates.
	Pins []NodeID
}

// Hypergraph is an immutable-after-build circuit hypergraph. Build one with
// a Builder, or deserialize one with the netlist package.
//
// Internally the incidence structure is stored as two flat CSR
// (compressed sparse row) slabs built once at Build time: the pin lists of
// all nets concatenated into pinOfNet (indexed by netOff) and the transpose
// — the net lists of all nodes — concatenated into netOfNode (indexed by
// nodeOff). Node.Nets and Net.Pins are subslices of these slabs, so the
// legacy struct-based accessors and the zero-alloc span accessors
// (NetPins, NodeNets) read the same contiguous memory.
type Hypergraph struct {
	nodes []Node
	nets  []Net

	// CSR incidence slabs; see the type comment.
	pinOfNet  []NodeID
	netOff    []int32 // len nets+1; net e's pins are pinOfNet[netOff[e]:netOff[e+1]]
	netOfNode []NetID
	nodeOff   []int32 // len nodes+1; node v's nets are netOfNode[nodeOff[v]:nodeOff[v+1]]

	// Packed per-node attribute arrays: the hot paths read sizes, kinds,
	// and aux demands through these instead of pulling whole Node structs
	// (whose Name headers would waste cache lines) into the working set.
	nodeSize []int32
	nodeAux  []int32
	nodeKind []NodeKind

	// Named resource-demand columns (LUT/FF/DSP/...): resCols[i] is a
	// packed per-node demand array for the resource named resNames[i],
	// laid out like nodeSize. Columns exist only when the netlist declares
	// demands; circuits without them (every paper benchmark) carry none,
	// so the scalar R=1 paths never touch this memory. Names are sorted,
	// so column order is deterministic regardless of insertion order.
	resNames  []string
	resCols   [][]int32
	resTotals []int

	totalSize int
	totalAux  int
	numPads   int
	maxDegree int
}

// NumNodes returns the total node count (interior + pads).
func (h *Hypergraph) NumNodes() int { return len(h.nodes) }

// NumNets returns the net count.
func (h *Hypergraph) NumNets() int { return len(h.nets) }

// NumPads returns |Y0|, the number of terminal (pad) nodes.
func (h *Hypergraph) NumPads() int { return h.numPads }

// NumInterior returns |X0|, the number of interior nodes.
func (h *Hypergraph) NumInterior() int { return len(h.nodes) - h.numPads }

// TotalSize returns S0 = sum of interior node sizes.
func (h *Hypergraph) TotalSize() int { return h.totalSize }

// TotalAux returns the sum of secondary-resource demands over all nodes.
func (h *Hypergraph) TotalAux() int { return h.totalAux }

// MaxDegree returns the largest number of nets incident to any node.
func (h *Hypergraph) MaxDegree() int { return h.maxDegree }

// Node returns the node with the given ID. The returned pointer must be
// treated as read-only.
func (h *Hypergraph) Node(id NodeID) *Node { return &h.nodes[id] }

// Net returns the net with the given ID. The returned pointer must be
// treated as read-only.
func (h *Hypergraph) Net(id NetID) *Net { return &h.nets[id] }

// Nets returns the nets incident to node id. The slice must not be modified.
func (h *Hypergraph) Nets(id NodeID) []NetID { return h.netOfNode[h.nodeOff[id]:h.nodeOff[id+1]] }

// Pins returns the pins of net id. The slice must not be modified.
func (h *Hypergraph) Pins(id NetID) []NodeID { return h.pinOfNet[h.netOff[id]:h.netOff[id+1]] }

// NodeNets is the CSR span accessor for the nets incident to node id: a
// zero-alloc view into the flat transpose slab. Identical to Nets; the
// explicit name marks call sites migrated to the flat layout.
func (h *Hypergraph) NodeNets(id NodeID) []NetID { return h.netOfNode[h.nodeOff[id]:h.nodeOff[id+1]] }

// NetPins is the CSR span accessor for the pins of net id: a zero-alloc
// view into the flat pin slab. Identical to Pins; the explicit name marks
// call sites migrated to the flat layout.
func (h *Hypergraph) NetPins(id NetID) []NodeID { return h.pinOfNet[h.netOff[id]:h.netOff[id+1]] }

// Degree returns the number of nets incident to node id.
func (h *Hypergraph) Degree(id NodeID) int { return int(h.nodeOff[id+1] - h.nodeOff[id]) }

// NetDegree returns the number of pins on net id without touching the pin
// slab (one offset subtraction).
func (h *Hypergraph) NetDegree(id NetID) int { return int(h.netOff[id+1] - h.netOff[id]) }

// NumPins returns the total pin count Σ_e |pins(e)| — the length of the
// CSR pin slab.
func (h *Hypergraph) NumPins() int { return len(h.pinOfNet) }

// SizeOf returns the size of node v from the packed attribute array. It is
// the hot-path equivalent of Node(v).Size.
func (h *Hypergraph) SizeOf(v NodeID) int { return int(h.nodeSize[v]) }

// AuxOf returns the secondary-resource demand of node v from the packed
// attribute array. It is the hot-path equivalent of Node(v).Aux.
func (h *Hypergraph) AuxOf(v NodeID) int { return int(h.nodeAux[v]) }

// KindOf returns the kind of node v from the packed attribute array. It is
// the hot-path equivalent of Node(v).Kind.
func (h *Hypergraph) KindOf(v NodeID) NodeKind { return h.nodeKind[v] }

// ResourceNames lists the resource-demand columns present in the netlist,
// sorted. The slice must not be modified.
func (h *Hypergraph) ResourceNames() []string { return h.resNames }

// ResourceColumn returns the packed per-node demand array for the named
// resource, or nil when the netlist declares no such column (every node
// demands zero). The slice must not be modified.
func (h *Hypergraph) ResourceColumn(name string) []int32 {
	for i, n := range h.resNames {
		if n == name {
			return h.resCols[i]
		}
	}
	return nil
}

// TotalResource returns the summed demand for the named resource over all
// nodes (zero for unknown columns).
func (h *Hypergraph) TotalResource(name string) int {
	for i, n := range h.resNames {
		if n == name {
			return h.resTotals[i]
		}
	}
	return 0
}

// ResourceOf returns node v's demand for the named resource (zero when no
// such column exists). Hot paths bind ResourceColumn once instead.
func (h *Hypergraph) ResourceOf(v NodeID, name string) int {
	if col := h.ResourceColumn(name); col != nil {
		return int(col[v])
	}
	return 0
}

// NodeIDs returns all node IDs in increasing order.
func (h *Hypergraph) NodeIDs() []NodeID {
	ids := make([]NodeID, len(h.nodes))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return ids
}

// InteriorIDs returns the IDs of all interior nodes in increasing order.
func (h *Hypergraph) InteriorIDs() []NodeID {
	ids := make([]NodeID, 0, h.NumInterior())
	for i := range h.nodes {
		if h.nodes[i].Kind == Interior {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// PadIDs returns the IDs of all pad nodes in increasing order.
func (h *Hypergraph) PadIDs() []NodeID {
	ids := make([]NodeID, 0, h.numPads)
	for i := range h.nodes {
		if h.nodes[i].Kind == Pad {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// String summarizes the hypergraph in one line.
func (h *Hypergraph) String() string {
	return fmt.Sprintf("hypergraph{interior:%d pads:%d nets:%d size:%d}",
		h.NumInterior(), h.numPads, len(h.nets), h.totalSize)
}

// Builder incrementally constructs a Hypergraph. The zero value is ready to
// use. Builders are not safe for concurrent use.
type Builder struct {
	nodes  []Node
	nets   []Net
	byName map[string]NodeID
	// res holds sparse per-resource demands until Build packs them into
	// dense columns; most circuits never touch it.
	res map[string]map[NodeID]int32
}

// AddNode appends a node and returns its ID. Pads are forced to size zero;
// interior nodes must have size >= 1 (size 0 is promoted to 1). Names need
// not be unique, but NodeByName resolves only the first occurrence.
func (b *Builder) AddNode(name string, kind NodeKind, size int) NodeID {
	if kind == Pad {
		size = 0
	} else if size < 1 {
		size = 1
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{Name: name, Kind: kind, Size: size})
	if b.byName == nil {
		b.byName = make(map[string]NodeID)
	}
	if _, dup := b.byName[name]; !dup && name != "" {
		b.byName[name] = id
	}
	return id
}

// AddInterior is shorthand for AddNode(name, Interior, size).
func (b *Builder) AddInterior(name string, size int) NodeID {
	return b.AddNode(name, Interior, size)
}

// AddPad is shorthand for AddNode(name, Pad, 0).
func (b *Builder) AddPad(name string) NodeID {
	return b.AddNode(name, Pad, 0)
}

// SetAux records a secondary-resource demand (e.g., flip-flops) on a node
// previously added to the builder. Negative demands are clamped to zero.
func (b *Builder) SetAux(id NodeID, aux int) {
	if aux < 0 {
		aux = 0
	}
	b.nodes[id].Aux = aux
}

// SetResource records node id's demand for a named resource axis (DSP,
// BRAM, ...). Non-positive demands are dropped — absent means zero. The
// column comes into existence with its first positive demand.
func (b *Builder) SetResource(id NodeID, name string, demand int) {
	if demand <= 0 || name == "" {
		return
	}
	if b.res == nil {
		b.res = make(map[string]map[NodeID]int32)
	}
	col := b.res[name]
	if col == nil {
		col = make(map[NodeID]int32)
		b.res[name] = col
	}
	col[id] = int32(demand)
}

// NodeByName returns the ID of the first node added with the given name.
func (b *Builder) NodeByName(name string) (NodeID, bool) {
	id, ok := b.byName[name]
	return id, ok
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodes) }

// AddNet appends a net connecting the given pins and returns its ID.
// Duplicate pins are collapsed.
func (b *Builder) AddNet(name string, pins ...NodeID) NetID {
	uniq := pins[:0:0]
	seen := make(map[NodeID]bool, len(pins))
	for _, p := range pins {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	id := NetID(len(b.nets))
	b.nets = append(b.nets, Net{Name: name, Pins: uniq})
	return id
}

// AddNetUnique appends a net whose pins the caller guarantees are already
// pairwise distinct, skipping AddNet's dedup pass, and takes ownership of
// the pins slice. Generators that dedup with their own scratch state (the
// multilevel coarsener emits millions of nets per level) use it to avoid
// one map allocation per net.
func (b *Builder) AddNetUnique(name string, pins []NodeID) NetID {
	id := NetID(len(b.nets))
	b.nets = append(b.nets, Net{Name: name, Pins: pins})
	return id
}

// Build validates the construction and returns the finished hypergraph.
// It fails if any net references an unknown node or has fewer than one pin.
// Single-pin nets are permitted (they can never be cut) but nets with zero
// pins are rejected.
//
// Build assembles the flat CSR incidence slabs in two counting-sort passes
// and repoints every Net.Pins and Node.Nets at its slab span, so the whole
// incidence structure costs four allocations regardless of net count and
// all accessors read contiguous memory.
func (b *Builder) Build() (*Hypergraph, error) {
	h := &Hypergraph{nodes: b.nodes, nets: b.nets}
	n, m := len(h.nodes), len(h.nets)

	// Pass 1: validate, size the slabs, count node degrees into nodeOff.
	h.nodeOff = make([]int32, n+1)
	h.netOff = make([]int32, m+1)
	totalPins := 0
	for ei := range h.nets {
		e := &h.nets[ei]
		if len(e.Pins) == 0 {
			return nil, fmt.Errorf("hypergraph: net %d (%q) has no pins", ei, e.Name)
		}
		for _, p := range e.Pins {
			if p < 0 || int(p) >= n {
				return nil, fmt.Errorf("hypergraph: net %d (%q) references unknown node %d", ei, e.Name, p)
			}
			h.nodeOff[p+1]++
		}
		totalPins += len(e.Pins)
		h.netOff[ei+1] = int32(totalPins)
	}
	for i := 0; i < n; i++ {
		h.nodeOff[i+1] += h.nodeOff[i]
	}

	// Pass 2: fill the pin slab (net-major, preserving each net's pin
	// order) and the transpose (cursor fill in ascending net order, which
	// reproduces the legacy per-node insertion order exactly).
	h.pinOfNet = make([]NodeID, totalPins)
	h.netOfNode = make([]NetID, totalPins)
	cursor := make([]int32, n)
	copy(cursor, h.nodeOff[:n])
	for ei := range h.nets {
		e := &h.nets[ei]
		copy(h.pinOfNet[h.netOff[ei]:h.netOff[ei+1]], e.Pins)
		for _, p := range e.Pins {
			h.netOfNode[cursor[p]] = NetID(ei)
			cursor[p]++
		}
		e.Pins = h.pinOfNet[h.netOff[ei]:h.netOff[ei+1]:h.netOff[ei+1]]
	}

	// Packed attribute arrays + aggregate stats; repoint Node.Nets at the
	// transpose slab.
	h.nodeSize = make([]int32, n)
	h.nodeAux = make([]int32, n)
	h.nodeKind = make([]NodeKind, n)
	for i := range h.nodes {
		nd := &h.nodes[i]
		nd.Nets = h.netOfNode[h.nodeOff[i]:h.nodeOff[i+1]:h.nodeOff[i+1]]
		h.nodeSize[i] = int32(nd.Size)
		h.nodeAux[i] = int32(nd.Aux)
		h.nodeKind[i] = nd.Kind
		if nd.Kind == Interior {
			h.totalSize += nd.Size
		} else {
			h.numPads++
		}
		h.totalAux += nd.Aux
		if d := len(nd.Nets); d > h.maxDegree {
			h.maxDegree = d
		}
	}

	// Pack sparse builder demands into dense per-resource columns, in
	// sorted name order for a canonical layout.
	if len(b.res) > 0 {
		h.resNames = make([]string, 0, len(b.res))
		for name := range b.res {
			h.resNames = append(h.resNames, name)
		}
		sort.Strings(h.resNames)
		h.resCols = make([][]int32, len(h.resNames))
		h.resTotals = make([]int, len(h.resNames))
		for i, name := range h.resNames {
			col := make([]int32, n)
			total := 0
			for id, d := range b.res[name] {
				if int(id) >= n {
					return nil, fmt.Errorf("hypergraph: resource %s demand on unknown node %d", name, id)
				}
				col[id] = d
				total += int(d)
			}
			h.resCols[i] = col
			h.resTotals[i] = total
		}
	}
	return h, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// that construct graphs programmatically.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// BFSDistances returns, for every node, its hop distance from the seed node
// (two nodes are adjacent when they share a net). Unreachable nodes get -1.
func (h *Hypergraph) BFSDistances(seed NodeID) []int {
	dist := make([]int, len(h.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[seed] = 0
	queue := []NodeID{seed}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range h.nodes[v].Nets {
			for _, u := range h.nets[e].Pins {
				if dist[u] == -1 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
	return dist
}

// FarthestFrom returns the node at maximal BFS distance from seed, preferring
// interior nodes, then larger sizes, then lower IDs for determinism. If the
// graph is disconnected it returns an unreached interior node when one
// exists (distance treated as infinite).
func (h *Hypergraph) FarthestFrom(seed NodeID) NodeID {
	dist := h.BFSDistances(seed)
	best := seed
	bestDist := -2 // below any real distance so seed itself can win only alone
	for i := range h.nodes {
		id := NodeID(i)
		if id == seed {
			continue
		}
		d := dist[i]
		if d == -1 {
			if h.nodes[i].Kind != Interior {
				continue
			}
			d = int(^uint(0) >> 2) // effectively infinite: disconnected
		}
		better := false
		switch {
		case d > bestDist:
			better = true
		case d == bestDist:
			bi, ci := h.nodes[best], h.nodes[i]
			if ci.Kind == Interior && bi.Kind != Interior {
				better = true
			} else if ci.Kind == bi.Kind && ci.Size > bi.Size {
				better = true
			}
		}
		if better {
			best, bestDist = id, d
		}
	}
	return best
}

// Components returns the connected components of the hypergraph as slices of
// node IDs, largest (by total interior size, then node count) first.
func (h *Hypergraph) Components() [][]NodeID {
	seen := make([]bool, len(h.nodes))
	var comps [][]NodeID
	for i := range h.nodes {
		if seen[i] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{NodeID(i)}
		seen[i] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, e := range h.nodes[v].Nets {
				for _, u := range h.nets[e].Pins {
					if !seen[u] {
						seen[u] = true
						queue = append(queue, u)
					}
				}
			}
		}
		comps = append(comps, comp)
	}
	size := func(c []NodeID) (s, n int) {
		for _, v := range c {
			s += h.nodes[v].Size
		}
		return s, len(c)
	}
	sort.SliceStable(comps, func(a, b int) bool {
		sa, na := size(comps[a])
		sb, nb := size(comps[b])
		if sa != sb {
			return sa > sb
		}
		return na > nb
	})
	return comps
}

// Induced returns the subhypergraph induced by the given node set, together
// with a mapping from new node IDs back to the original IDs. Nets are kept
// if at least two of their pins fall inside the set (single-pin remnants of
// cut nets are dropped: they cannot influence further partitioning). Node
// kinds and sizes are preserved.
func (h *Hypergraph) Induced(nodes []NodeID) (*Hypergraph, []NodeID) {
	newID := make(map[NodeID]NodeID, len(nodes))
	var b Builder
	back := make([]NodeID, 0, len(nodes))
	for _, v := range nodes {
		n := &h.nodes[v]
		id := b.AddNode(n.Name, n.Kind, n.Size)
		b.SetAux(id, n.Aux)
		for ri, name := range h.resNames {
			if d := h.resCols[ri][v]; d > 0 {
				b.SetResource(id, name, int(d))
			}
		}
		newID[v] = id
		back = append(back, v)
	}
	for ei := range h.nets {
		e := &h.nets[ei]
		var pins []NodeID
		for _, p := range e.Pins {
			if np, ok := newID[p]; ok {
				pins = append(pins, np)
			}
		}
		if len(pins) >= 2 {
			b.AddNet(e.Name, pins...)
		}
	}
	sub, err := b.Build()
	if err != nil {
		// Build can only fail on dangling pins, which cannot happen here.
		panic(fmt.Sprintf("hypergraph: induced subgraph invalid: %v", err))
	}
	return sub, back
}

// Stats describes the shape of a hypergraph; useful for generator
// calibration and reporting.
type Stats struct {
	Nodes, Interior, Pads, Nets int
	TotalSize                   int
	AvgNetDegree                float64 // pins per net
	MaxNetDegree                int
	AvgNodeDegree               float64 // nets per node
	MaxNodeDegree               int
	Components                  int
}

// ComputeStats gathers Stats for the hypergraph.
func (h *Hypergraph) ComputeStats() Stats {
	s := Stats{
		Nodes:     h.NumNodes(),
		Interior:  h.NumInterior(),
		Pads:      h.numPads,
		Nets:      h.NumNets(),
		TotalSize: h.totalSize,
	}
	var pinSum int
	for i := range h.nets {
		d := len(h.nets[i].Pins)
		pinSum += d
		if d > s.MaxNetDegree {
			s.MaxNetDegree = d
		}
	}
	if s.Nets > 0 {
		s.AvgNetDegree = float64(pinSum) / float64(s.Nets)
	}
	var degSum int
	for i := range h.nodes {
		d := len(h.nodes[i].Nets)
		degSum += d
		if d > s.MaxNodeDegree {
			s.MaxNodeDegree = d
		}
	}
	if s.Nodes > 0 {
		s.AvgNodeDegree = float64(degSum) / float64(s.Nodes)
	}
	s.Components = len(h.Components())
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d (interior=%d pads=%d) nets=%d size=%d",
		s.Nodes, s.Interior, s.Pads, s.Nets, s.TotalSize)
	fmt.Fprintf(&sb, " netdeg=%.2f/%d nodedeg=%.2f/%d comps=%d",
		s.AvgNetDegree, s.MaxNetDegree, s.AvgNodeDegree, s.MaxNodeDegree, s.Components)
	return sb.String()
}
