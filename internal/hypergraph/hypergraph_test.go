package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds a path hypergraph v0-v1-...-v(n-1) with 2-pin nets.
func chain(t testing.TB, n int) *Hypergraph {
	t.Helper()
	var b Builder
	for i := 0; i < n; i++ {
		b.AddInterior("v", 1)
	}
	for i := 0; i+1 < n; i++ {
		b.AddNet("e", NodeID(i), NodeID(i+1))
	}
	h, err := b.Build()
	if err != nil {
		t.Fatalf("chain(%d): %v", n, err)
	}
	return h
}

func TestBuilderBasics(t *testing.T) {
	var b Builder
	a := b.AddInterior("a", 3)
	p := b.AddPad("p")
	c := b.AddInterior("c", 0) // promoted to size 1
	b.AddNet("n1", a, p, c)
	b.AddNet("n2", a, c, c) // duplicate pin collapsed
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 3 || h.NumInterior() != 2 || h.NumPads() != 1 {
		t.Errorf("counts: nodes=%d interior=%d pads=%d", h.NumNodes(), h.NumInterior(), h.NumPads())
	}
	if h.TotalSize() != 4 {
		t.Errorf("TotalSize = %d, want 4 (pad size excluded, zero promoted)", h.TotalSize())
	}
	if got := len(h.Pins(1)); got != 2 {
		t.Errorf("net n2 pins = %d, want 2 after dedup", got)
	}
	if h.Node(p).Size != 0 {
		t.Errorf("pad size = %d, want 0", h.Node(p).Size)
	}
	if h.Degree(a) != 2 {
		t.Errorf("Degree(a) = %d, want 2", h.Degree(a))
	}
}

func TestBuilderNodeByName(t *testing.T) {
	var b Builder
	a := b.AddInterior("x", 1)
	b.AddInterior("x", 1) // duplicate name: first wins
	got, ok := b.NodeByName("x")
	if !ok || got != a {
		t.Errorf("NodeByName(x) = %v,%v want %v,true", got, ok, a)
	}
	if _, ok := b.NodeByName("missing"); ok {
		t.Error("NodeByName(missing) unexpectedly found")
	}
}

func TestBuildRejectsEmptyNet(t *testing.T) {
	var b Builder
	b.AddInterior("a", 1)
	b.AddNet("empty")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a zero-pin net")
	}
}

func TestBuildRejectsDanglingPin(t *testing.T) {
	var b Builder
	b.AddInterior("a", 1)
	b.nets = append(b.nets, Net{Name: "bad", Pins: []NodeID{42}})
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a net with an unknown node")
	}
}

func TestSinglePinNetAllowed(t *testing.T) {
	var b Builder
	a := b.AddInterior("a", 1)
	b.AddNet("n", a)
	if _, err := b.Build(); err != nil {
		t.Fatalf("single-pin net rejected: %v", err)
	}
}

func TestIncidenceIsConsistent(t *testing.T) {
	h := chain(t, 5)
	// Every pin relation must appear in both directions.
	for ei := 0; ei < h.NumNets(); ei++ {
		for _, v := range h.Pins(NetID(ei)) {
			found := false
			for _, e := range h.Nets(v) {
				if e == NetID(ei) {
					found = true
				}
			}
			if !found {
				t.Fatalf("net %d lists node %d, node does not list net", ei, v)
			}
		}
	}
}

func TestBFSDistancesOnChain(t *testing.T) {
	h := chain(t, 6)
	dist := h.BFSDistances(0)
	for i, want := range []int{0, 1, 2, 3, 4, 5} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	if far := h.FarthestFrom(0); far != 5 {
		t.Errorf("FarthestFrom(0) = %d, want 5", far)
	}
}

func TestBFSDisconnected(t *testing.T) {
	var b Builder
	a := b.AddInterior("a", 1)
	c := b.AddInterior("b", 1)
	d := b.AddInterior("c", 2)
	b.AddNet("n", a, c)
	h := b.MustBuild()
	dist := h.BFSDistances(a)
	if dist[d] != -1 {
		t.Errorf("disconnected node distance = %d, want -1", dist[d])
	}
	if far := h.FarthestFrom(a); far != d {
		t.Errorf("FarthestFrom should prefer unreachable interior node, got %d want %d", far, d)
	}
}

func TestComponentsOrdering(t *testing.T) {
	var b Builder
	// Component 1: two nodes, total size 2.
	a := b.AddInterior("a", 1)
	c := b.AddInterior("b", 1)
	b.AddNet("n1", a, c)
	// Component 2: one node, size 5 (bigger total size => listed first).
	b.AddInterior("big", 5)
	h := b.MustBuild()
	comps := h.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if h.Node(comps[0][0]).Name != "big" {
		t.Errorf("largest-size component should be first, got %q", h.Node(comps[0][0]).Name)
	}
}

func TestInducedSubgraph(t *testing.T) {
	var b Builder
	n := make([]NodeID, 6)
	for i := range n {
		n[i] = b.AddInterior("v", i+1)
	}
	p := b.AddPad("p")
	b.AddNet("in", n[0], n[1], n[2]) // fully inside the kept set
	b.AddNet("cut", n[0], n[5])      // only one pin inside: dropped
	b.AddNet("half", n[1], n[2], n[4], p)
	h := b.MustBuild()

	sub, back := h.Induced([]NodeID{n[0], n[1], n[2], p})
	if sub.NumNodes() != 4 || sub.NumPads() != 1 {
		t.Fatalf("induced nodes=%d pads=%d, want 4,1", sub.NumNodes(), sub.NumPads())
	}
	if sub.TotalSize() != 1+2+3 {
		t.Errorf("induced size = %d, want 6", sub.TotalSize())
	}
	// "in" survives with 3 pins, "half" shrinks to 3 pins (n1,n2,p), "cut" dropped.
	if sub.NumNets() != 2 {
		t.Fatalf("induced nets = %d, want 2", sub.NumNets())
	}
	for newID, origID := range back {
		if h.Node(origID).Size != sub.Node(NodeID(newID)).Size {
			t.Errorf("back-mapping broke sizes at %d", newID)
		}
	}
}

func TestComputeStats(t *testing.T) {
	var b Builder
	a := b.AddInterior("a", 2)
	c := b.AddInterior("b", 3)
	p := b.AddPad("p")
	b.AddNet("n1", a, c)
	b.AddNet("n2", a, c, p)
	h := b.MustBuild()
	s := h.ComputeStats()
	if s.Nodes != 3 || s.Interior != 2 || s.Pads != 1 || s.Nets != 2 {
		t.Errorf("stats counts wrong: %+v", s)
	}
	if s.TotalSize != 5 {
		t.Errorf("TotalSize = %d, want 5", s.TotalSize)
	}
	if s.MaxNetDegree != 3 || s.MaxNodeDegree != 2 {
		t.Errorf("degrees wrong: %+v", s)
	}
	if s.AvgNetDegree != 2.5 {
		t.Errorf("AvgNetDegree = %v, want 2.5", s.AvgNetDegree)
	}
	if s.Components != 1 {
		t.Errorf("Components = %d, want 1", s.Components)
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

// randomGraph builds a random connected-ish hypergraph for property tests.
func randomGraph(r *rand.Rand, nNodes, nNets int) *Hypergraph {
	var b Builder
	for i := 0; i < nNodes; i++ {
		if r.Intn(8) == 0 {
			b.AddPad("p")
		} else {
			b.AddInterior("v", 1+r.Intn(4))
		}
	}
	for e := 0; e < nNets; e++ {
		deg := 2 + r.Intn(4)
		pins := make([]NodeID, deg)
		for i := range pins {
			pins[i] = NodeID(r.Intn(nNodes))
		}
		b.AddNet("e", pins...)
	}
	return b.MustBuild()
}

// Property: pin/incidence relations are a perfect bidirectional matching and
// totals are internally consistent, for arbitrary random graphs.
func TestQuickIncidenceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		h := randomGraph(r, n, 1+r.Intn(60))
		pinRefs := 0
		for ei := 0; ei < h.NumNets(); ei++ {
			pinRefs += len(h.Pins(NetID(ei)))
		}
		nodeRefs, size, pads := 0, 0, 0
		for i := 0; i < h.NumNodes(); i++ {
			nodeRefs += len(h.Nets(NodeID(i)))
			nd := h.Node(NodeID(i))
			if nd.Kind == Pad {
				pads++
			} else {
				size += nd.Size
			}
		}
		return pinRefs == nodeRefs && size == h.TotalSize() && pads == h.NumPads()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances change by at most 1 across any net (triangle-ish
// inequality on the net adjacency relation).
func TestQuickBFSLipschitz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		h := randomGraph(r, n, 1+r.Intn(50))
		dist := h.BFSDistances(0)
		for ei := 0; ei < h.NumNets(); ei++ {
			pins := h.Pins(NetID(ei))
			for _, u := range pins {
				for _, v := range pins {
					du, dv := dist[u], dist[v]
					if du == -1 || dv == -1 {
						if du != dv { // one reachable, one not, sharing a net: impossible
							return false
						}
						continue
					}
					if du-dv > 1 || dv-du > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: components partition the node set.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		h := randomGraph(r, n, r.Intn(40))
		seen := make(map[NodeID]int)
		for _, comp := range h.Components() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != h.NumNodes() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNodeKindString(t *testing.T) {
	if Interior.String() != "interior" || Pad.String() != "pad" {
		t.Error("NodeKind.String wrong")
	}
	if NodeKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestHypergraphString(t *testing.T) {
	h := chain(t, 3)
	if h.String() == "" {
		t.Error("String empty")
	}
}

func BenchmarkBuild10k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		randomGraph(r, 10000, 13000)
	}
}
