package hypergraph_test

import (
	"fmt"

	"fpart/internal/hypergraph"
)

// ExampleBuilder constructs a three-node circuit with one pad.
func ExampleBuilder() {
	var b hypergraph.Builder
	alu := b.AddInterior("alu", 3)
	reg := b.AddInterior("reg", 1)
	pad := b.AddPad("clk")
	b.AddNet("d", alu, reg)
	b.AddNet("clk", pad, reg)
	h, _ := b.Build()
	fmt.Println(h)
	fmt.Println("degree(reg) =", h.Degree(reg))
	// Output:
	// hypergraph{interior:2 pads:1 nets:2 size:4}
	// degree(reg) = 2
}
