package hypergraph

import "testing"

func TestIDAccessors(t *testing.T) {
	var b Builder
	v0 := b.AddInterior("a", 2)
	p0 := b.AddPad("p")
	v1 := b.AddInterior("b", 1)
	b.AddNet("n", v0, v1, p0)
	b.AddNet("m", v0, v1)
	h := b.MustBuild()

	ids := h.NodeIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Errorf("NodeIDs = %v", ids)
	}
	in := h.InteriorIDs()
	if len(in) != 2 || in[0] != v0 || in[1] != v1 {
		t.Errorf("InteriorIDs = %v", in)
	}
	pads := h.PadIDs()
	if len(pads) != 1 || pads[0] != p0 {
		t.Errorf("PadIDs = %v", pads)
	}
	if h.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", h.MaxDegree())
	}
	if h.Net(0).Name != "n" {
		t.Errorf("Net(0) = %q", h.Net(0).Name)
	}
	if h.NumInterior() != 2 {
		t.Errorf("NumInterior = %d", h.NumInterior())
	}
}

func TestBuilderNumNodes(t *testing.T) {
	var b Builder
	if b.NumNodes() != 0 {
		t.Error("fresh builder not empty")
	}
	b.AddInterior("a", 1)
	b.AddPad("p")
	if b.NumNodes() != 2 {
		t.Errorf("NumNodes = %d", b.NumNodes())
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid input")
		}
	}()
	var b Builder
	b.AddNet("empty")
	b.MustBuild()
}

func TestFarthestFromSizeTieBreak(t *testing.T) {
	// Two nodes at the same distance: the bigger one wins.
	var b Builder
	s := b.AddInterior("s", 1)
	small := b.AddInterior("small", 1)
	big := b.AddInterior("big", 5)
	b.AddNet("n1", s, small)
	b.AddNet("n2", s, big)
	h := b.MustBuild()
	if far := h.FarthestFrom(s); far != big {
		t.Errorf("FarthestFrom = %d, want the bigger node %d", far, big)
	}
}

func TestInducedEmptySet(t *testing.T) {
	var b Builder
	v0 := b.AddInterior("a", 1)
	v1 := b.AddInterior("b", 1)
	b.AddNet("n", v0, v1)
	h := b.MustBuild()
	sub, back := h.Induced(nil)
	if sub.NumNodes() != 0 || len(back) != 0 {
		t.Errorf("empty induced subgraph: %v back=%v", sub, back)
	}
}
