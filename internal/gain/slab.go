package gain

// Slab backs a family of identically-shaped Buckets — the k·(k−1)
// directional buckets of a multi-way FM pass — with one contiguous
// allocation per array kind instead of five small allocations per bucket.
// Adjacent directions land on adjacent cache lines, and a pooled engine
// rebinding to the same graph shape reuses the whole family without
// touching the allocator. Individual buckets behave exactly like ones made
// with NewBucket; they share nothing but backing storage.
type Slab struct {
	dirs, numCells, maxGain int
	buckets                 []Bucket
}

// NewSlab creates dirs buckets for cells 0..numCells-1 and gains in
// [-maxGain, maxGain], all carved out of shared slabs.
func NewSlab(dirs, numCells, maxGain int) *Slab {
	if maxGain < 0 {
		panic("gain: negative maxGain")
	}
	if dirs < 0 {
		panic("gain: negative dir count")
	}
	hn := 2*maxGain + 1
	heads := make([]int32, dirs*hn)
	next := make([]int32, dirs*numCells)
	prev := make([]int32, dirs*numCells)
	gains := make([]int32, dirs*numCells)
	in := make([]bool, dirs*numCells)
	for i := range heads {
		heads[i] = none
	}
	s := &Slab{dirs: dirs, numCells: numCells, maxGain: maxGain,
		buckets: make([]Bucket, dirs)}
	for d := 0; d < dirs; d++ {
		c0, c1 := d*numCells, (d+1)*numCells
		s.buckets[d] = Bucket{
			offset:  maxGain,
			heads:   heads[d*hn : (d+1)*hn : (d+1)*hn],
			next:    next[c0:c1:c1],
			prev:    prev[c0:c1:c1],
			gain:    gains[c0:c1:c1],
			in:      in[c0:c1:c1],
			maxIdx:  -1,
			maxGain: maxGain,
		}
	}
	return s
}

// Bucket returns direction d's bucket. The pointer stays valid for the
// slab's lifetime.
func (s *Slab) Bucket(d int) *Bucket { return &s.buckets[d] }

// Dirs returns the number of buckets in the slab.
func (s *Slab) Dirs() int { return s.dirs }

// Dims returns the per-bucket shape the slab was built with.
func (s *Slab) Dims() (numCells, maxGain int) { return s.numCells, s.maxGain }
