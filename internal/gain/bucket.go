// Package gain provides the gain-bucket container used by the FM and
// Sanchis iterative-improvement engines (Fiduccia–Mattheyses 1982, Sanchis
// 1989, as used by Krupnova & Saucier §3.7).
//
// A Bucket keeps every candidate cell of one move direction indexed by its
// first-level gain, with LIFO ordering inside each gain list (the classic FM
// choice, which the implementation-study literature cited by the paper
// found superior to FIFO). The multi-way engine maintains one Bucket per
// ordered block pair (k·(k−1) of them).
package gain

import "fmt"

// none marks an empty link/head.
const none int32 = -1

// Bucket is a gain-indexed set of cells with LIFO lists per gain value.
// Cell IDs must be dense in [0, numCells). Gains must lie in
// [-maxGain, +maxGain]. The zero value is not usable; call NewBucket.
type Bucket struct {
	offset  int
	heads   []int32 // per gain index: head cell, or none
	next    []int32 // per cell
	prev    []int32 // per cell; prev == cell itself means "list head marker"
	gain    []int32 // per cell: current gain (valid only when in[cell])
	in      []bool  // per cell: membership
	maxIdx  int     // highest non-empty gain index, or -1 when empty
	count   int
	maxGain int
}

// NewBucket creates a bucket for cells 0..numCells-1 and gains in
// [-maxGain, maxGain].
func NewBucket(numCells, maxGain int) *Bucket {
	if maxGain < 0 {
		panic("gain: negative maxGain")
	}
	b := &Bucket{
		offset:  maxGain,
		heads:   make([]int32, 2*maxGain+1),
		next:    make([]int32, numCells),
		prev:    make([]int32, numCells),
		gain:    make([]int32, numCells),
		in:      make([]bool, numCells),
		maxIdx:  -1,
		maxGain: maxGain,
	}
	for i := range b.heads {
		b.heads[i] = none
	}
	return b
}

// Len returns the number of cells currently in the bucket.
func (b *Bucket) Len() int { return b.count }

// Contains reports whether cell v is in the bucket.
func (b *Bucket) Contains(v int32) bool { return b.in[v] }

// Gain returns the stored gain of cell v; ok is false if v is absent.
func (b *Bucket) Gain(v int32) (int, bool) {
	if !b.in[v] {
		return 0, false
	}
	return int(b.gain[v]), true
}

// MaxGain returns the highest gain present; ok is false when empty.
func (b *Bucket) MaxGain() (int, bool) {
	if b.maxIdx < 0 {
		return 0, false
	}
	return b.maxIdx - b.offset, true
}

func (b *Bucket) idx(g int) int {
	if g < -b.maxGain || g > b.maxGain {
		panic(fmt.Sprintf("gain: %d outside [-%d,%d]", g, b.maxGain, b.maxGain))
	}
	return g + b.offset
}

// Insert adds cell v with the given gain. v must not already be present.
func (b *Bucket) Insert(v int32, g int) {
	if b.in[v] {
		panic(fmt.Sprintf("gain: cell %d inserted twice", v))
	}
	i := b.idx(g)
	b.in[v] = true
	b.gain[v] = int32(g)
	b.next[v] = b.heads[i]
	b.prev[v] = none
	if b.heads[i] != none {
		b.prev[b.heads[i]] = v
	}
	b.heads[i] = v
	b.count++
	if i > b.maxIdx {
		b.maxIdx = i
	}
}

// Remove deletes cell v. Removing an absent cell is a no-op.
func (b *Bucket) Remove(v int32) {
	if !b.in[v] {
		return
	}
	i := int(b.gain[v]) + b.offset
	if b.prev[v] != none {
		b.next[b.prev[v]] = b.next[v]
	} else {
		b.heads[i] = b.next[v]
	}
	if b.next[v] != none {
		b.prev[b.next[v]] = b.prev[v]
	}
	b.in[v] = false
	b.count--
	if i == b.maxIdx && b.heads[i] == none {
		b.shrinkMax()
	}
}

// Update moves cell v to a new gain, preserving LIFO recency (v becomes the
// head of its new list). Updating an absent cell inserts it.
func (b *Bucket) Update(v int32, g int) {
	if b.in[v] && int(b.gain[v]) == g {
		return
	}
	b.Remove(v)
	b.Insert(v, g)
}

// Adjust shifts the gain of cell v by delta, with the same LIFO reinsertion
// semantics as Update (v becomes the head of its new gain list). It is the
// primitive of delta-gain engines, which know the change in a cell's gain
// without recomputing its absolute value. The cell must be present; a zero
// delta is a no-op.
func (b *Bucket) Adjust(v int32, delta int) {
	if !b.in[v] {
		panic(fmt.Sprintf("gain: Adjust of absent cell %d", v))
	}
	if delta == 0 {
		return
	}
	g := int(b.gain[v]) + delta
	b.Remove(v)
	b.Insert(v, g)
}

func (b *Bucket) shrinkMax() {
	for b.maxIdx >= 0 && b.heads[b.maxIdx] == none {
		b.maxIdx--
	}
}

// Top returns the LIFO-first cell of the highest non-empty gain list.
func (b *Bucket) Top() (v int32, g int, ok bool) {
	if b.maxIdx < 0 {
		return 0, 0, false
	}
	return b.heads[b.maxIdx], b.maxIdx - b.offset, true
}

// TopN appends up to n cells from the highest non-empty gain list, in LIFO
// order, to dst and returns it. It does not descend to lower gains.
func (b *Bucket) TopN(n int, dst []int32) []int32 {
	if b.maxIdx < 0 {
		return dst
	}
	for v := b.heads[b.maxIdx]; v != none && n > 0; v = b.next[v] {
		dst = append(dst, v)
		n--
	}
	return dst
}

// ScanFrom calls fn for cells in gain order, highest first, within each gain
// LIFO order, until fn returns false or the bucket is exhausted. The bucket
// must not be mutated during the scan.
func (b *Bucket) ScanFrom(fn func(v int32, g int) bool) {
	for i := b.maxIdx; i >= 0; i-- {
		for v := b.heads[i]; v != none; v = b.next[v] {
			if !fn(v, i-b.offset) {
				return
			}
		}
	}
}

// Clear removes all cells in O(count + gain range).
func (b *Bucket) Clear() {
	for i := 0; i <= b.maxIdx; i++ {
		for v := b.heads[i]; v != none; {
			nx := b.next[v]
			b.in[v] = false
			v = nx
		}
		b.heads[i] = none
	}
	b.maxIdx = -1
	b.count = 0
}
