package gain

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyBucket(t *testing.T) {
	b := NewBucket(10, 5)
	if b.Len() != 0 {
		t.Error("new bucket not empty")
	}
	if _, ok := b.MaxGain(); ok {
		t.Error("MaxGain on empty bucket")
	}
	if _, _, ok := b.Top(); ok {
		t.Error("Top on empty bucket")
	}
	if got := b.TopN(3, nil); len(got) != 0 {
		t.Error("TopN on empty bucket returned cells")
	}
}

func TestInsertTopRemove(t *testing.T) {
	b := NewBucket(10, 5)
	b.Insert(1, 2)
	b.Insert(2, 4)
	b.Insert(3, -5)
	if g, ok := b.MaxGain(); !ok || g != 4 {
		t.Errorf("MaxGain = %d,%v want 4", g, ok)
	}
	v, g, ok := b.Top()
	if !ok || v != 2 || g != 4 {
		t.Errorf("Top = %d,%d,%v want 2,4", v, g, ok)
	}
	b.Remove(2)
	if g, _ := b.MaxGain(); g != 2 {
		t.Errorf("MaxGain after remove = %d, want 2", g)
	}
	b.Remove(1)
	b.Remove(3)
	if b.Len() != 0 {
		t.Errorf("Len = %d after removing all", b.Len())
	}
	if _, ok := b.MaxGain(); ok {
		t.Error("MaxGain should be empty")
	}
}

func TestLIFOOrder(t *testing.T) {
	b := NewBucket(10, 5)
	b.Insert(1, 3)
	b.Insert(2, 3)
	b.Insert(3, 3)
	// LIFO: most recent insertion first.
	got := b.TopN(10, nil)
	want := []int32{3, 2, 1}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("TopN = %v, want %v", got, want)
	}
	// Removing the middle keeps order of the rest.
	b.Remove(2)
	got = b.TopN(10, nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("TopN after middle removal = %v, want [3 1]", got)
	}
}

func TestUpdateMakesHead(t *testing.T) {
	b := NewBucket(10, 5)
	b.Insert(1, 3)
	b.Insert(2, 3)
	b.Update(1, 3) // same gain: no-op, order preserved
	if got := b.TopN(10, nil); got[0] != 2 {
		t.Errorf("same-gain update must not reorder; TopN = %v", got)
	}
	b.Update(1, 4)
	if v, g, _ := b.Top(); v != 1 || g != 4 {
		t.Errorf("Top after update = %d,%d want 1,4", v, g)
	}
	b.Update(5, 0) // update of absent cell inserts
	if !b.Contains(5) {
		t.Error("Update should insert absent cell")
	}
}

func TestGainLookup(t *testing.T) {
	b := NewBucket(4, 3)
	b.Insert(0, -2)
	if g, ok := b.Gain(0); !ok || g != -2 {
		t.Errorf("Gain = %d,%v want -2", g, ok)
	}
	if _, ok := b.Gain(1); ok {
		t.Error("Gain of absent cell should be not-ok")
	}
}

func TestRemoveAbsentNoop(t *testing.T) {
	b := NewBucket(4, 3)
	b.Remove(2) // must not panic
	if b.Len() != 0 {
		t.Error("Len changed")
	}
}

func TestInsertTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double insert did not panic")
		}
	}()
	b := NewBucket(4, 3)
	b.Insert(1, 0)
	b.Insert(1, 1)
}

func TestGainOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range gain did not panic")
		}
	}()
	b := NewBucket(4, 3)
	b.Insert(1, 4)
}

func TestScanFrom(t *testing.T) {
	b := NewBucket(10, 5)
	b.Insert(1, 1)
	b.Insert(2, 3)
	b.Insert(3, 3)
	b.Insert(4, -2)
	var seq []int32
	b.ScanFrom(func(v int32, g int) bool {
		seq = append(seq, v)
		return true
	})
	want := []int32{3, 2, 1, 4} // gain 3 LIFO, then 1, then -2
	if len(seq) != len(want) {
		t.Fatalf("scan = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("scan = %v, want %v", seq, want)
		}
	}
	// Early stop.
	n := 0
	b.ScanFrom(func(v int32, g int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop scanned %d, want 2", n)
	}
}

func TestClear(t *testing.T) {
	b := NewBucket(10, 5)
	for i := int32(0); i < 10; i++ {
		b.Insert(i, int(i%4)-2)
	}
	b.Clear()
	if b.Len() != 0 {
		t.Errorf("Len after Clear = %d", b.Len())
	}
	if _, ok := b.MaxGain(); ok {
		t.Error("MaxGain after Clear")
	}
	for i := int32(0); i < 10; i++ {
		if b.Contains(i) {
			t.Errorf("cell %d survived Clear", i)
		}
	}
	// Bucket is reusable after Clear.
	b.Insert(3, 5)
	if v, g, ok := b.Top(); !ok || v != 3 || g != 5 {
		t.Errorf("reuse after Clear: Top = %d,%d,%v", v, g, ok)
	}
}

// Property: the bucket behaves exactly like a reference map implementation
// under random insert/remove/update, including MaxGain and membership.
func TestQuickMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const cells, maxG = 30, 6
		b := NewBucket(cells, maxG)
		ref := map[int32]int{}
		for op := 0; op < 300; op++ {
			v := int32(r.Intn(cells))
			switch r.Intn(3) {
			case 0:
				g := r.Intn(2*maxG+1) - maxG
				if _, in := ref[v]; !in {
					b.Insert(v, g)
					ref[v] = g
				}
			case 1:
				b.Remove(v)
				delete(ref, v)
			case 2:
				g := r.Intn(2*maxG+1) - maxG
				b.Update(v, g)
				ref[v] = g
			}
			if b.Len() != len(ref) {
				return false
			}
			var wantMax int
			first := true
			for _, g := range ref {
				if first || g > wantMax {
					wantMax, first = g, false
				}
			}
			gotMax, ok := b.MaxGain()
			if ok == first { // ok should be !empty
				return false
			}
			if ok && gotMax != wantMax {
				return false
			}
			for c := int32(0); c < cells; c++ {
				wg, win := ref[c]
				gg, gin := b.Gain(c)
				if win != gin || (win && wg != gg) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ScanFrom visits every cell exactly once in non-increasing gain
// order.
func TestQuickScanOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const cells, maxG = 25, 5
		b := NewBucket(cells, maxG)
		n := r.Intn(cells)
		perm := r.Perm(cells)
		var want []int
		for i := 0; i < n; i++ {
			g := r.Intn(2*maxG+1) - maxG
			b.Insert(int32(perm[i]), g)
			want = append(want, g)
		}
		var gains []int
		seen := map[int32]bool{}
		b.ScanFrom(func(v int32, g int) bool {
			gains = append(gains, g)
			if seen[v] {
				return false
			}
			seen[v] = true
			return true
		})
		if len(gains) != n || len(seen) != n {
			return false
		}
		if !sort.SliceIsSorted(gains, func(i, j int) bool { return gains[i] > gains[j] }) {
			return false
		}
		sort.Ints(want)
		sort.Ints(gains)
		for i := range want {
			if want[i] != gains[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBucketChurn(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	const cells, maxG = 4096, 32
	bk := NewBucket(cells, maxG)
	for i := int32(0); i < cells; i++ {
		bk.Insert(i, r.Intn(2*maxG+1)-maxG)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int32(r.Intn(cells))
		bk.Update(v, r.Intn(2*maxG+1)-maxG)
	}
}

func TestAdjustShiftsGainAndMakesHead(t *testing.T) {
	b := NewBucket(4, 8)
	b.Insert(0, 2)
	b.Insert(1, 2)
	b.Insert(2, 5)
	b.Adjust(0, 3) // 2 → 5: joins cell 2's list as the new head
	if g, ok := b.Gain(0); !ok || g != 5 {
		t.Fatalf("Gain(0) = %d,%v after Adjust, want 5", g, ok)
	}
	if v, g, ok := b.Top(); !ok || v != 0 || g != 5 {
		t.Errorf("Top = (%d,%d,%v), want adjusted cell 0 at the head", v, g, ok)
	}
	b.Adjust(0, 0) // zero delta: position and gain untouched
	if v, _, _ := b.Top(); v != 0 {
		t.Error("zero-delta Adjust moved the cell")
	}
	b.Adjust(2, -5)
	if g, _ := b.Gain(2); g != 0 {
		t.Errorf("Gain(2) = %d after Adjust(-5), want 0", g)
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want 3", b.Len())
	}
}

func TestAdjustAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Adjust of absent cell did not panic")
		}
	}()
	NewBucket(4, 3).Adjust(1, 1)
}
