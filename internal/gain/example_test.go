package gain_test

import (
	"fmt"

	"fpart/internal/gain"
)

// ExampleBucket walks the FM selection loop: fill, pick the best cell
// (LIFO among equals), move it, re-gain its neighbours.
func ExampleBucket() {
	b := gain.NewBucket(4, 3) // 4 cells, gains in [-3, +3]
	b.Insert(0, 1)
	b.Insert(1, 3)
	b.Insert(2, -2)
	b.Insert(3, 3)

	v, g, _ := b.Top() // cell 3: same gain as cell 1, inserted later
	fmt.Printf("best cell=%d gain=%d of %d\n", v, g, b.Len())

	b.Remove(v)    // "move" it: lock and drop from the bucket
	b.Update(2, 2) // a neighbour's gain changed
	v, g, _ = b.Top()
	fmt.Printf("next cell=%d gain=%d of %d\n", v, g, b.Len())
	// Output:
	// best cell=3 gain=3 of 4
	// next cell=1 gain=3 of 3
}
