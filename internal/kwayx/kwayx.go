// Package kwayx implements the recursive-bipartitioning baseline of Kuznar,
// Brglez & Kozminski (DAC 1993, "cost minimization of partitions into
// multiple devices"), the method the FPART paper calls k-way.x or (p,p).
//
// The baseline shares the peeling skeleton of Algorithm 1 but omits every
// piece of FPART's guidance, matching §3's description of its weaknesses:
//
//   - improvement runs only between the remainder and the block produced at
//     the last step — blocks carved earlier are never revisited, so the
//     algorithm is greedy and I/O saturates at the later iterations;
//   - the cost function considers only the net number (cut size), not the
//     infeasibility distance, terminal totals, or external I/O balance;
//   - no solution stacks and no second-level gains.
//
// Comparing kwayx to core on the same circuits reproduces the k-way.x
// column of Tables 2–5.
package kwayx

import (
	"errors"
	"fmt"
	"time"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
	"fpart/internal/seed"
)

// Result mirrors core.Result for the baseline.
type Result struct {
	Partition  *partition.Partition
	K          int
	M          int
	Feasible   bool
	Iterations int
	Elapsed    time.Duration
}

// Config tunes the baseline; the zero value is the canonical baseline.
type Config struct {
	// MaxPasses bounds the FM pass series per improvement call (default 10).
	MaxPasses int
	// MaxBlocks caps iterations for termination safety (default 4·M+32).
	MaxBlocks int
}

// Partition runs the k-way.x-style baseline.
func Partition(h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	start := time.Now()
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if h.NumNodes() == 0 {
		return nil, errors.New("kwayx: empty circuit")
	}
	for _, id := range h.InteriorIDs() {
		if h.Node(id).Size > dev.SMax() {
			return nil, fmt.Errorf("kwayx: node %q larger than device (%d > %d)",
				h.Node(id).Name, h.Node(id).Size, dev.SMax())
		}
	}

	engCfg := sanchis.Config{
		StackDepth:   -1,    // no solution stacks
		UseLevel2:    false, // first-level gains only
		CutObjective: true,  // cut-size cost function of [9]
		MaxPasses:    cfg.MaxPasses,
	}
	p := partition.New(h, dev)
	m := device.LowerBound(h, dev)
	eng := sanchis.New(p, engCfg)
	rem := partition.BlockID(0)
	res := &Result{Partition: p, M: m}
	maxBlocks := cfg.MaxBlocks
	if maxBlocks == 0 {
		maxBlocks = 4*m + 32
	}

	for !p.Feasible(rem) {
		if p.NumBlocks() >= maxBlocks {
			break
		}
		res.Iterations++
		pk, ok := seed.Best(p, rem, dev, partition.DefaultCost(), m)
		if !ok {
			break
		}
		// The baseline improves only between the newest pair.
		eng.Improve([]partition.BlockID{rem, pk}, rem, m)
		repair(p, rem)
		if p.Nodes(rem) == 0 {
			break
		}
	}
	res.Feasible = p.Classify() == partition.FeasibleSolution
	for b := 0; b < p.NumBlocks(); b++ {
		if p.Nodes(partition.BlockID(b)) > 0 {
			res.K++
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// repair sheds loose cells from infeasible non-remainder blocks back to the
// remainder, exactly as the core algorithm's safety net does.
func repair(p *partition.Partition, rem partition.BlockID) {
	h := p.Hypergraph()
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if id == rem || p.Feasible(id) {
			continue
		}
		for !p.Feasible(id) && p.Nodes(id) > 0 {
			var worst hypergraph.NodeID = -1
			score := 0
			sizeViolated := p.Size(id) > p.Device().SMax()
			for _, v := range p.NodesIn(id) {
				internal := 0
				for _, e := range h.Nets(v) {
					if p.Span(e) == 1 {
						internal++
					}
				}
				s := -internal
				if sizeViolated {
					s += h.Node(v).Size * 8
				}
				if worst < 0 || s > score {
					worst, score = v, s
				}
			}
			p.Move(worst, rem)
		}
	}
}
