// Package kwayx implements the recursive-bipartitioning baseline of Kuznar,
// Brglez & Kozminski (DAC 1993, "cost minimization of partitions into
// multiple devices"), the method the FPART paper calls k-way.x or (p,p).
//
// The baseline shares the peeling skeleton of Algorithm 1 but omits every
// piece of FPART's guidance, matching §3's description of its weaknesses:
//
//   - improvement runs only between the remainder and the block produced at
//     the last step — blocks carved earlier are never revisited, so the
//     algorithm is greedy and I/O saturates at the later iterations;
//   - the cost function considers only the net number (cut size), not the
//     infeasibility distance, terminal totals, or external I/O balance;
//   - no solution stacks and no second-level gains.
//
// Comparing kwayx to core on the same circuits reproduces the k-way.x
// column of Tables 2–5.
//
// PartitionCtx is the instrumented entry point: it polls ctx in the pass
// loops (via the sanchis engine's mid-pass cancellation), emits one
// obs.Event per algorithm step to Config.Sink, and fills Result.Stats with
// the same effort counters core.Run reports, so the baseline is a
// first-class citizen of the engine registry.
package kwayx

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
	"fpart/internal/seed"
)

// Result mirrors core.Result for the baseline.
type Result struct {
	Partition  *partition.Partition
	K          int
	M          int
	Feasible   bool
	Iterations int
	// Stats carries the effort counters of the run (iterations, passes,
	// moves, per-phase wall time).
	Stats   obs.Stats
	Elapsed time.Duration
}

// Config tunes the baseline; the zero value is the canonical baseline.
type Config struct {
	// MaxPasses bounds the FM pass series per improvement call (default 10).
	MaxPasses int
	// MaxBlocks caps iterations for termination safety (default 4·M+32).
	MaxBlocks int
	// Sink, when non-nil, receives one obs.Event per algorithm step.
	Sink obs.Sink
	// Label tags this run's events (obs.Event.Source).
	Label string
}

// Partition runs the k-way.x-style baseline. It is PartitionCtx with a
// background context.
func Partition(h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	return PartitionCtx(context.Background(), h, dev, cfg)
}

// PartitionCtx runs the k-way.x-style baseline under ctx. Cancellation is
// polled at every peel iteration and inside each improvement pass series,
// so the run aborts promptly; the partial solution is discarded and ctx's
// error is returned.
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if h.NumNodes() == 0 {
		return nil, errors.New("kwayx: empty circuit")
	}
	for _, id := range h.InteriorIDs() {
		if h.Node(id).Size > dev.SMax() {
			return nil, fmt.Errorf("kwayx: node %q larger than device (%d > %d)",
				h.Node(id).Name, h.Node(id).Size, dev.SMax())
		}
	}
	em := obs.NewEmitter(cfg.Sink, cfg.Label)

	engCfg := sanchis.Config{
		StackDepth:   -1,    // no solution stacks
		UseLevel2:    false, // first-level gains only
		CutObjective: true,  // cut-size cost function of [9]
		MaxPasses:    cfg.MaxPasses,
		Obs:          em,
	}
	p := partition.New(h, dev)
	m := device.LowerBound(h, dev)
	eng := sanchis.New(p, engCfg)
	rem := partition.BlockID(0)
	res := &Result{Partition: p, M: m}
	res.Stats.PeakBlocks = p.NumBlocks()
	maxBlocks := cfg.MaxBlocks
	if maxBlocks == 0 {
		maxBlocks = 4*m + 32
	}

	em.Emit(obs.Event{Type: obs.RunStart, M: m})
	cancelled := func(err error) (*Result, error) {
		em.Emit(obs.Event{Type: obs.Cancelled})
		return nil, err
	}

	for !p.Feasible(rem) {
		if err := ctx.Err(); err != nil {
			return cancelled(err)
		}
		if p.NumBlocks() >= maxBlocks {
			break
		}
		res.Iterations++
		res.Stats.Iterations++
		em.Emit(obs.Event{Type: obs.BipartitionStart, Iteration: res.Iterations})
		t0 := time.Now()
		pk, ok := seed.Best(p, rem, dev, partition.DefaultCost(), m)
		res.Stats.PhaseTime[obs.PhaseSeed] += time.Since(t0)
		if !ok {
			break
		}
		if p.NumBlocks() > res.Stats.PeakBlocks {
			res.Stats.PeakBlocks = p.NumBlocks()
		}
		em.Emit(obs.Event{
			Type: obs.BipartitionEnd, Iteration: res.Iterations,
			Block: int(pk), Size: p.Size(pk), Terminals: p.Terminals(pk),
		})
		// The baseline improves only between the newest pair.
		t0 = time.Now()
		st, err := eng.ImproveCtx(ctx, []partition.BlockID{rem, pk}, rem, m)
		res.Stats.PhaseTime[obs.PhaseImprove] += time.Since(t0)
		res.Stats.ImproveCalls++
		res.Stats.Passes += st.Passes
		res.Stats.MovesEvaluated += st.MovesEvaluated
		res.Stats.MovesApplied += st.MovesApplied
		res.Stats.MovesGated += st.MovesGated
		res.Stats.BucketOps += st.BucketOps
		res.Stats.Restarts += st.Restarts
		if em.Enabled() {
			em.Emit(obs.Event{
				Type: obs.ImprovePass, Iteration: res.Iterations,
				Label: "pair(R,Pk)", Blocks: []int{int(rem), int(pk)},
				Passes: st.Passes, Moves: st.MovesApplied, Improved: st.Improved,
			})
		}
		if err != nil {
			return cancelled(err)
		}
		t0 = time.Now()
		repair(p, rem, &res.Stats, em)
		res.Stats.PhaseTime[obs.PhaseRepair] += time.Since(t0)
		if p.Nodes(rem) == 0 {
			break
		}
	}
	res.Feasible = p.Classify() == partition.FeasibleSolution
	for b := 0; b < p.NumBlocks(); b++ {
		if p.Nodes(partition.BlockID(b)) > 0 {
			res.K++
		}
	}
	res.Elapsed = time.Since(start)
	em.Emit(obs.Event{Type: obs.RunEnd, K: res.K, M: m, Feasible: res.Feasible})
	return res, nil
}

// repair sheds loose cells from infeasible non-remainder blocks back to the
// remainder, exactly as the core algorithm's safety net does.
func repair(p *partition.Partition, rem partition.BlockID, st *obs.Stats, em *obs.Emitter) {
	h := p.Hypergraph()
	for b := 0; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		if id == rem || p.Feasible(id) {
			continue
		}
		shed := 0
		for !p.Feasible(id) && p.Nodes(id) > 0 {
			var worst hypergraph.NodeID = -1
			score := 0
			sizeViolated := p.Size(id) > p.Device().SMax()
			for _, v := range p.NodesIn(id) {
				internal := 0
				for _, e := range h.Nets(v) {
					if p.Span(e) == 1 {
						internal++
					}
				}
				s := -internal
				if sizeViolated {
					s += h.Node(v).Size * 8
				}
				if worst < 0 || s > score {
					worst, score = v, s
				}
			}
			p.Move(worst, rem)
			shed++
			st.MovesApplied++
		}
		em.Emit(obs.Event{Type: obs.Repair, Block: int(id), Moves: shed})
	}
}
