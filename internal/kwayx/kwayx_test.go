package kwayx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
)

func ring(t testing.TB, c, n, pads int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	sets := make([][]hypergraph.NodeID, c)
	for ci := 0; ci < c; ci++ {
		for i := 0; i < n; i++ {
			sets[ci] = append(sets[ci], b.AddInterior("v", 1))
		}
		for i := 0; i+1 < n; i++ {
			b.AddNet("in", sets[ci][i], sets[ci][i+1])
			if i+2 < n {
				b.AddNet("in2", sets[ci][i], sets[ci][i+2])
			}
		}
	}
	for ci := 0; ci < c; ci++ {
		b.AddNet("bridge", sets[ci][n-1], sets[(ci+1)%c][0])
	}
	for i := 0; i < pads; i++ {
		pd := b.AddPad("p")
		b.AddNet("pe", pd, sets[i%c][i%n])
	}
	return b.MustBuild()
}

func TestBaselineFindsFeasiblePartition(t *testing.T) {
	h := ring(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("baseline infeasible: K=%d M=%d", r.K, r.M)
	}
	if r.K < r.M {
		t.Errorf("K=%d < M=%d", r.K, r.M)
	}
	if err := r.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineTrivial(t *testing.T) {
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "big", DatasheetCells: 50, Pins: 50, Fill: 1.0}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 1 || r.Iterations != 0 {
		t.Errorf("K=%d iters=%d, want 1,0", r.K, r.Iterations)
	}
}

func TestBaselineErrors(t *testing.T) {
	var b hypergraph.Builder
	if _, err := Partition(b.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("empty circuit accepted")
	}
	var b2 hypergraph.Builder
	v := b2.AddInterior("huge", 999)
	w := b2.AddInterior("w", 1)
	b2.AddNet("n", v, w)
	if _, err := Partition(b2.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("oversized node accepted")
	}
	bad := device.Device{Name: "bad"}
	if _, err := Partition(ring(t, 2, 3, 0), bad, Config{}); err == nil {
		t.Error("bad device accepted")
	}
}

func TestQuickBaselineValid(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 10 + r.Intn(40)
		for i := 0; i < n; i++ {
			if r.Intn(9) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1)
			}
		}
		for e := 0; e < n+r.Intn(n); e++ {
			d := 2 + r.Intn(3)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		dev := device.Device{Name: "d", DatasheetCells: 6 + r.Intn(20), Pins: 8 + r.Intn(20), Fill: 1.0}
		res, err := Partition(h, dev, Config{MaxPasses: 2})
		if err != nil {
			return true
		}
		if res.Partition.Validate() != nil {
			return false
		}
		return !res.Feasible || res.K >= res.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBaselineRing8(b *testing.B) {
	h := ring(b, 8, 12, 8)
	dev := device.Device{Name: "d", DatasheetCells: 15, Pins: 30, Fill: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(h, dev, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
