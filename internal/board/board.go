// Package board models the multi-FPGA board downstream of partitioning:
// blocks are placed onto board slots and the cut nets become inter-FPGA
// signals routed over the board's interconnect. This is the logic-emulation
// context the FPGA-partitioning literature targets (Chou et al. [3]:
// "circuit partitioning for huge logic emulation systems"): a partition
// with few cut nets is only as good as the board's ability to route them.
//
// Three interconnect topologies are modeled:
//
//   - Crossbar: every slot pair is directly connected (full custom wiring
//     or a programmable crossbar); routing always succeeds, cost is the
//     number of inter-FPGA signals.
//   - Chain: slots in a line, signals routed through intermediate slots;
//     per-adjacent-link wire capacity limits routability.
//   - Mesh: slots in a grid, X-then-Y deterministic routing.
package board

import (
	"fmt"
	"sort"

	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// Topology enumerates interconnect styles.
type Topology uint8

const (
	// Crossbar connects every slot pair directly.
	Crossbar Topology = iota
	// Chain connects slot i to slot i+1.
	Chain
	// Mesh arranges slots in a Cols-wide grid with 4-neighbour links.
	Mesh
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Crossbar:
		return "crossbar"
	case Chain:
		return "chain"
	case Mesh:
		return "mesh"
	default:
		return fmt.Sprintf("Topology(%d)", uint8(t))
	}
}

// Board describes the physical carrier.
type Board struct {
	Slots    int
	Topology Topology
	// Cols is the mesh width (ignored otherwise).
	Cols int
	// WiresPerLink caps signals per adjacent link (Chain/Mesh); zero means
	// unlimited.
	WiresPerLink int
}

// Validate rejects degenerate boards.
func (b Board) Validate() error {
	if b.Slots < 1 {
		return fmt.Errorf("board: %d slots", b.Slots)
	}
	if b.Topology == Mesh && b.Cols < 1 {
		return fmt.Errorf("board: mesh requires Cols >= 1")
	}
	return nil
}

// coord returns mesh coordinates of a slot.
func (b Board) coord(slot int) (x, y int) {
	return slot % b.Cols, slot / b.Cols
}

// distance returns hop distance between two slots under the topology.
func (b Board) distance(a, c int) int {
	switch b.Topology {
	case Crossbar:
		if a == c {
			return 0
		}
		return 1
	case Chain:
		d := a - c
		if d < 0 {
			d = -d
		}
		return d
	case Mesh:
		ax, ay := b.coord(a)
		cx, cy := b.coord(c)
		dx, dy := ax-cx, ay-cy
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	default:
		return 0
	}
}

// Placement maps non-empty partition blocks to slots.
type Placement struct {
	// SlotOf maps each block ID to its slot (-1 for empty blocks).
	SlotOf []int
	Board  Board
}

// Report summarizes board-level routing of a placed partition.
type Report struct {
	InterNets   int  // nets spanning >= 2 slots
	TotalHops   int  // Σ spanning-tree hop counts over all inter nets
	MaxLinkLoad int  // busiest adjacent link (Chain/Mesh)
	Routable    bool // every link within WiresPerLink (always true for Crossbar)
}

// Place assigns blocks to slots. For the crossbar the identity order is
// used; for chains and meshes a greedy connectivity placement puts strongly
// connected blocks on adjacent slots: blocks are taken in decreasing total
// connectivity, each placed on the free slot minimizing hop-weighted cut to
// the already-placed blocks.
func Place(p *partition.Partition, b Board) (*Placement, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var blocks []partition.BlockID
	for blk := 0; blk < p.NumBlocks(); blk++ {
		if p.Nodes(partition.BlockID(blk)) > 0 {
			blocks = append(blocks, partition.BlockID(blk))
		}
	}
	if len(blocks) > b.Slots {
		return nil, fmt.Errorf("board: %d blocks exceed %d slots", len(blocks), b.Slots)
	}
	pl := &Placement{SlotOf: make([]int, p.NumBlocks()), Board: b}
	for i := range pl.SlotOf {
		pl.SlotOf[i] = -1
	}

	// Block-to-block connectivity weights from cut nets.
	conn := make(map[[2]partition.BlockID]int)
	h := p.Hypergraph()
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if p.Span(ne) < 2 {
			continue
		}
		bs := p.Blocks(ne, nil)
		for i := 0; i < len(bs); i++ {
			for j := i + 1; j < len(bs); j++ {
				a, c := bs[i], bs[j]
				if a > c {
					a, c = c, a
				}
				conn[[2]partition.BlockID{a, c}]++
			}
		}
	}
	weight := func(a, c partition.BlockID) int {
		if a > c {
			a, c = c, a
		}
		return conn[[2]partition.BlockID{a, c}]
	}

	// Order blocks by total connectivity, heaviest first.
	total := map[partition.BlockID]int{}
	for pair, w := range conn {
		total[pair[0]] += w
		total[pair[1]] += w
	}
	sort.SliceStable(blocks, func(i, j int) bool {
		if total[blocks[i]] != total[blocks[j]] {
			return total[blocks[i]] > total[blocks[j]]
		}
		return blocks[i] < blocks[j]
	})

	usedSlot := make([]bool, b.Slots)
	for _, blk := range blocks {
		bestSlot, bestCost := -1, 1<<30
		for s := 0; s < b.Slots; s++ {
			if usedSlot[s] {
				continue
			}
			cost := 0
			for _, other := range blocks {
				os := pl.SlotOf[other]
				if os < 0 || other == blk {
					continue
				}
				cost += weight(blk, other) * b.distance(s, os)
			}
			if cost < bestCost {
				bestSlot, bestCost = s, cost
			}
		}
		pl.SlotOf[blk] = bestSlot
		usedSlot[bestSlot] = true
	}
	return pl, nil
}

// Evaluate routes every cut net over the board and reports interconnect
// usage. Nets are routed as stars from their lowest-slot terminal along
// shortest paths (X-then-Y on meshes); link loads accumulate per adjacent
// slot pair.
func (pl *Placement) Evaluate(p *partition.Partition) Report {
	b := pl.Board
	h := p.Hypergraph()
	linkLoad := map[[2]int]int{}
	addPath := func(from, to int) int {
		hops := 0
		switch b.Topology {
		case Crossbar:
			if from != to {
				hops = 1
				key := [2]int{min(from, to), max(from, to)}
				linkLoad[key]++
			}
		case Chain:
			step := 1
			if to < from {
				step = -1
			}
			for s := from; s != to; s += step {
				key := [2]int{min(s, s+step), max(s, s+step)}
				linkLoad[key]++
				hops++
			}
		case Mesh:
			fx, fy := b.coord(from)
			tx, ty := b.coord(to)
			x, y := fx, fy
			for x != tx {
				step := 1
				if tx < x {
					step = -1
				}
				a := y*b.Cols + x
				c := y*b.Cols + x + step
				linkLoad[[2]int{min(a, c), max(a, c)}]++
				x += step
				hops++
			}
			for y != ty {
				step := 1
				if ty < y {
					step = -1
				}
				a := y*b.Cols + x
				c := (y+step)*b.Cols + x
				linkLoad[[2]int{min(a, c), max(a, c)}]++
				y += step
				hops++
			}
		}
		return hops
	}

	var rep Report
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if p.Span(ne) < 2 {
			continue
		}
		slots := map[int]bool{}
		for _, blk := range p.Blocks(ne, nil) {
			if s := pl.SlotOf[blk]; s >= 0 {
				slots[s] = true
			}
		}
		if len(slots) < 2 {
			continue
		}
		rep.InterNets++
		ordered := make([]int, 0, len(slots))
		for s := range slots {
			ordered = append(ordered, s)
		}
		sort.Ints(ordered)
		root := ordered[0]
		for _, s := range ordered[1:] {
			rep.TotalHops += addPath(root, s)
		}
	}
	rep.Routable = true
	for _, load := range linkLoad {
		if load > rep.MaxLinkLoad {
			rep.MaxLinkLoad = load
		}
	}
	if b.WiresPerLink > 0 && rep.MaxLinkLoad > b.WiresPerLink {
		rep.Routable = false
	}
	return rep
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
