// Package board models the multi-FPGA board downstream of partitioning:
// blocks are placed onto board slots and the cut nets become inter-FPGA
// signals routed over the board's interconnect. This is the logic-emulation
// context the FPGA-partitioning literature targets (Chou et al. [3]:
// "circuit partitioning for huge logic emulation systems"): a partition
// with few cut nets is only as good as the board's ability to route them.
//
// Three interconnect topologies are modeled:
//
//   - Crossbar: every slot pair is directly connected (full custom wiring
//     or a programmable crossbar); routing always succeeds, cost is the
//     number of inter-FPGA signals.
//   - Chain: slots in a line, signals routed through intermediate slots;
//     per-adjacent-link wire capacity limits routability.
//   - Mesh: slots in a grid, X-then-Y deterministic routing.
package board

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// Topology enumerates interconnect styles.
type Topology uint8

const (
	// Crossbar connects every slot pair directly.
	Crossbar Topology = iota
	// Chain connects slot i to slot i+1.
	Chain
	// Mesh arranges slots in a Cols-wide grid with 4-neighbour links.
	Mesh
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Crossbar:
		return "crossbar"
	case Chain:
		return "chain"
	case Mesh:
		return "mesh"
	default:
		return fmt.Sprintf("Topology(%d)", uint8(t))
	}
}

// Board describes the physical carrier.
type Board struct {
	Slots    int
	Topology Topology
	// Cols is the mesh width (ignored otherwise).
	Cols int
	// WiresPerLink caps signals per adjacent link (Chain/Mesh); zero means
	// unlimited.
	WiresPerLink int
}

// Validate rejects degenerate boards.
func (b Board) Validate() error {
	if b.Slots < 1 {
		return fmt.Errorf("board: %d slots", b.Slots)
	}
	if b.Topology == Mesh && b.Cols < 1 {
		return fmt.Errorf("board: mesh requires Cols >= 1")
	}
	return nil
}

// coord returns mesh coordinates of a slot.
func (b Board) coord(slot int) (x, y int) {
	return slot % b.Cols, slot / b.Cols
}

// distance returns hop distance between two slots under the topology.
func (b Board) distance(a, c int) int {
	switch b.Topology {
	case Crossbar:
		if a == c {
			return 0
		}
		return 1
	case Chain:
		d := a - c
		if d < 0 {
			d = -d
		}
		return d
	case Mesh:
		ax, ay := b.coord(a)
		cx, cy := b.coord(c)
		dx, dy := ax-cx, ay-cy
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	default:
		return 0
	}
}

// Placement maps non-empty partition blocks to slots.
type Placement struct {
	// SlotOf maps each block ID to its slot (-1 for empty blocks).
	SlotOf []int
	Board  Board
}

// Report summarizes board-level routing of a placed partition.
type Report struct {
	InterNets   int  // nets spanning >= 2 slots
	TotalHops   int  // Σ spanning-tree hop counts over all inter nets
	MaxLinkLoad int  // busiest adjacent link (Chain/Mesh)
	Routable    bool // every link within WiresPerLink (always true for Crossbar)
}

// Place assigns blocks to slots. For the crossbar the identity order is
// used; for chains and meshes a greedy connectivity placement puts strongly
// connected blocks on adjacent slots: blocks are taken in decreasing total
// connectivity, each placed on the free slot minimizing hop-weighted cut to
// the already-placed blocks.
func Place(p *partition.Partition, b Board) (*Placement, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var blocks []partition.BlockID
	for blk := 0; blk < p.NumBlocks(); blk++ {
		if p.Nodes(partition.BlockID(blk)) > 0 {
			blocks = append(blocks, partition.BlockID(blk))
		}
	}
	if len(blocks) > b.Slots {
		return nil, fmt.Errorf("board: %d blocks exceed %d slots", len(blocks), b.Slots)
	}
	pl := &Placement{SlotOf: make([]int, p.NumBlocks()), Board: b}
	for i := range pl.SlotOf {
		pl.SlotOf[i] = -1
	}

	// Block-to-block connectivity weights from cut nets.
	conn := make(map[[2]partition.BlockID]int)
	h := p.Hypergraph()
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if p.Span(ne) < 2 {
			continue
		}
		bs := p.Blocks(ne, nil)
		for i := 0; i < len(bs); i++ {
			for j := i + 1; j < len(bs); j++ {
				a, c := bs[i], bs[j]
				if a > c {
					a, c = c, a
				}
				conn[[2]partition.BlockID{a, c}]++
			}
		}
	}
	weight := func(a, c partition.BlockID) int {
		if a > c {
			a, c = c, a
		}
		return conn[[2]partition.BlockID{a, c}]
	}

	// Order blocks by total connectivity, heaviest first.
	total := map[partition.BlockID]int{}
	for pair, w := range conn {
		total[pair[0]] += w
		total[pair[1]] += w
	}
	sort.SliceStable(blocks, func(i, j int) bool {
		if total[blocks[i]] != total[blocks[j]] {
			return total[blocks[i]] > total[blocks[j]]
		}
		return blocks[i] < blocks[j]
	})

	usedSlot := make([]bool, b.Slots)
	for _, blk := range blocks {
		bestSlot, bestCost := -1, 1<<30
		for s := 0; s < b.Slots; s++ {
			if usedSlot[s] {
				continue
			}
			cost := 0
			for _, other := range blocks {
				os := pl.SlotOf[other]
				if os < 0 || other == blk {
					continue
				}
				cost += weight(blk, other) * b.distance(s, os)
			}
			if cost < bestCost {
				bestSlot, bestCost = s, cost
			}
		}
		pl.SlotOf[blk] = bestSlot
		usedSlot[bestSlot] = true
	}
	return pl, nil
}

// Evaluate routes every cut net over the board and reports interconnect
// usage. Nets are routed as stars from their lowest-slot terminal along
// shortest paths (X-then-Y on meshes); link loads accumulate per adjacent
// slot pair.
func (pl *Placement) Evaluate(p *partition.Partition) Report {
	h := p.Hypergraph()
	linkLoad := map[[2]int]int{}

	var rep Report
	for e := 0; e < h.NumNets(); e++ {
		ne := hypergraph.NetID(e)
		if p.Span(ne) < 2 {
			continue
		}
		slots := map[int]bool{}
		for _, blk := range p.Blocks(ne, nil) {
			if s := pl.SlotOf[blk]; s >= 0 {
				slots[s] = true
			}
		}
		if len(slots) < 2 {
			continue
		}
		rep.InterNets++
		ordered := make([]int, 0, len(slots))
		for s := range slots {
			ordered = append(ordered, s)
		}
		sort.Ints(ordered)
		root := ordered[0]
		for _, s := range ordered[1:] {
			rep.TotalHops += pl.routePath(root, s, linkLoad)
		}
	}
	rep.Routable = true
	for _, load := range linkLoad {
		if load > rep.MaxLinkLoad {
			rep.MaxLinkLoad = load
		}
	}
	if pl.Board.WiresPerLink > 0 && rep.MaxLinkLoad > pl.Board.WiresPerLink {
		rep.Routable = false
	}
	return rep
}

// routePath routes one signal from slot `from` to slot `to`, incrementing
// linkLoad for every adjacent slot pair traversed, and returns the hop
// count (always the shortest-path distance).
func (pl *Placement) routePath(from, to int, linkLoad map[[2]int]int) int {
	b := pl.Board
	hops := 0
	switch b.Topology {
	case Crossbar:
		if from != to {
			hops = 1
			key := [2]int{min(from, to), max(from, to)}
			linkLoad[key]++
		}
	case Chain:
		step := 1
		if to < from {
			step = -1
		}
		for s := from; s != to; s += step {
			key := [2]int{min(s, s+step), max(s, s+step)}
			linkLoad[key]++
			hops++
		}
	case Mesh:
		fx, fy := b.coord(from)
		tx, ty := b.coord(to)
		x, y := fx, fy
		stepX := func() {
			for x != tx {
				step := 1
				if tx < x {
					step = -1
				}
				a := y*b.Cols + x
				c := y*b.Cols + x + step
				linkLoad[[2]int{min(a, c), max(a, c)}]++
				x += step
				hops++
			}
		}
		stepY := func() {
			for y != ty {
				step := 1
				if ty < y {
					step = -1
				}
				a := y*b.Cols + x
				c := (y+step)*b.Cols + x
				linkLoad[[2]int{min(a, c), max(a, c)}]++
				y += step
				hops++
			}
		}
		// X-then-Y, unless the X-leg would run past the end of a ragged
		// last row (Cols ∤ Slots): slot fy*Cols+tx must exist for every
		// intermediate of the X-leg to exist. In the ragged case route
		// Y-first — the Y-leg moves along the source column through full
		// rows only (the source slot itself exists), and the X-leg then
		// runs in the target's row, which contains the target column by
		// definition. At most one of the two orders can be ragged-blocked,
		// so this stays deterministic.
		if fy*b.Cols+tx < b.Slots {
			stepX()
			stepY()
		} else {
			stepY()
			stepX()
		}
	}
	return hops
}

// Route is the post-peel board feasibility gate: it places the partition
// onto the board and routes the cut nets, returning the placement and the
// routing report. An error means the partition cannot even be placed
// (more non-empty blocks than slots, or a degenerate board).
func Route(p *partition.Partition, b Board) (*Placement, Report, error) {
	pl, err := Place(p, b)
	if err != nil {
		return nil, Report{}, err
	}
	return pl, pl.Evaluate(p), nil
}

// ParseSpec parses a board description of the form
//
//	crossbar:N | chain:N[:wires=W] | mesh:CxR[:wires=W]
//
// e.g. "mesh:4x4:wires=64" is a 16-slot 4-wide mesh with 64 wires per
// adjacent link. A wires clause of 0 (or its absence) means unlimited.
func ParseSpec(spec string) (Board, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 {
		return Board{}, fmt.Errorf("board: malformed spec %q (want crossbar:N, chain:N[:wires=W], or mesh:CxR[:wires=W])", spec)
	}
	var b Board
	switch parts[0] {
	case "crossbar":
		b.Topology = Crossbar
	case "chain":
		b.Topology = Chain
	case "mesh":
		b.Topology = Mesh
	default:
		return Board{}, fmt.Errorf("board: unknown topology %q in spec %q (want crossbar, chain, or mesh)", parts[0], spec)
	}
	if b.Topology == Mesh {
		cs, rs, ok := strings.Cut(parts[1], "x")
		if !ok {
			return Board{}, fmt.Errorf("board: mesh size %q is not of the form CxR", parts[1])
		}
		cols, err1 := strconv.Atoi(cs)
		rows, err2 := strconv.Atoi(rs)
		if err1 != nil || err2 != nil || cols < 1 || rows < 1 {
			return Board{}, fmt.Errorf("board: mesh size %q must be positive COLSxROWS", parts[1])
		}
		b.Cols = cols
		b.Slots = cols * rows
	} else {
		n, err := strconv.Atoi(parts[1])
		if err != nil || n < 1 {
			return Board{}, fmt.Errorf("board: slot count %q must be a positive integer", parts[1])
		}
		b.Slots = n
	}
	for _, opt := range parts[2:] {
		val, ok := strings.CutPrefix(opt, "wires=")
		if !ok {
			return Board{}, fmt.Errorf("board: unknown option %q in spec %q (want wires=W)", opt, spec)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return Board{}, fmt.Errorf("board: wires in %q must be a non-negative integer", opt)
		}
		if b.Topology == Crossbar && w > 0 {
			return Board{}, fmt.Errorf("board: wires=W does not apply to crossbar boards")
		}
		b.WiresPerLink = w
	}
	return b, b.Validate()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
