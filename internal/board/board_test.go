package board

import (
	"testing"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// fourBlocks builds a partition of 4 chained clusters of 4 cells, each in
// its own block: blocks 0-1, 1-2, 2-3 connected by one net each.
func fourBlocks(t *testing.T) *partition.Partition {
	t.Helper()
	var b hypergraph.Builder
	var all [][]hypergraph.NodeID
	for c := 0; c < 4; c++ {
		var set []hypergraph.NodeID
		for i := 0; i < 4; i++ {
			set = append(set, b.AddInterior("v", 1))
		}
		for i := 0; i+1 < 4; i++ {
			b.AddNet("in", set[i], set[i+1])
		}
		all = append(all, set)
	}
	for c := 0; c+1 < 4; c++ {
		b.AddNet("x", all[c][3], all[c+1][0])
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 5, Pins: 10, Fill: 1.0}
	p := partition.New(h, dev)
	for c := 1; c < 4; c++ {
		nb := p.AddBlock()
		for _, v := range all[c] {
			p.Move(v, nb)
		}
	}
	return p
}

func TestDistance(t *testing.T) {
	xb := Board{Slots: 4, Topology: Crossbar}
	if xb.distance(0, 3) != 1 || xb.distance(2, 2) != 0 {
		t.Error("crossbar distances wrong")
	}
	ch := Board{Slots: 4, Topology: Chain}
	if ch.distance(0, 3) != 3 || ch.distance(3, 1) != 2 {
		t.Error("chain distances wrong")
	}
	me := Board{Slots: 6, Topology: Mesh, Cols: 3}
	if me.distance(0, 5) != 3 { // (0,0) -> (2,1)
		t.Errorf("mesh distance = %d, want 3", me.distance(0, 5))
	}
}

func TestValidate(t *testing.T) {
	if (Board{Slots: 0}).Validate() == nil {
		t.Error("0 slots accepted")
	}
	if (Board{Slots: 4, Topology: Mesh}).Validate() == nil {
		t.Error("mesh without Cols accepted")
	}
	if (Board{Slots: 4, Topology: Chain}).Validate() != nil {
		t.Error("valid chain rejected")
	}
}

func TestPlaceChainKeepsNeighborsAdjacent(t *testing.T) {
	p := fourBlocks(t)
	pl, err := Place(p, Board{Slots: 4, Topology: Chain})
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.Evaluate(p)
	// The block chain placed on a slot chain: 3 inter nets, each 1 hop if
	// the placement is perfect. Allow 4 hops of slack for greedy placement.
	if rep.InterNets != 3 {
		t.Errorf("InterNets = %d, want 3", rep.InterNets)
	}
	if rep.TotalHops > 5 {
		t.Errorf("TotalHops = %d, want near 3 on a chain-of-chains", rep.TotalHops)
	}
	if !rep.Routable {
		t.Error("unlimited wires must be routable")
	}
}

func TestPlaceTooManyBlocks(t *testing.T) {
	p := fourBlocks(t)
	if _, err := Place(p, Board{Slots: 2, Topology: Chain}); err == nil {
		t.Error("4 blocks on 2 slots accepted")
	}
}

func TestCrossbarAlwaysRoutable(t *testing.T) {
	p := fourBlocks(t)
	pl, err := Place(p, Board{Slots: 4, Topology: Crossbar, WiresPerLink: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.Evaluate(p)
	if rep.TotalHops != rep.InterNets {
		t.Errorf("crossbar hops %d != nets %d", rep.TotalHops, rep.InterNets)
	}
}

func TestWireCapacityLimits(t *testing.T) {
	// Force all traffic through one chain link by placing on 2 slots.
	var b hypergraph.Builder
	var left, right []hypergraph.NodeID
	for i := 0; i < 3; i++ {
		left = append(left, b.AddInterior("l", 1))
		right = append(right, b.AddInterior("r", 1))
	}
	for i := 0; i < 3; i++ {
		b.AddNet("x", left[i], right[i]) // 3 cut nets
	}
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 10, Fill: 1.0}
	p := partition.New(h, dev)
	nb := p.AddBlock()
	for _, v := range right {
		p.Move(v, nb)
	}
	pl, err := Place(p, Board{Slots: 2, Topology: Chain, WiresPerLink: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.Evaluate(p)
	if rep.MaxLinkLoad != 3 {
		t.Errorf("MaxLinkLoad = %d, want 3", rep.MaxLinkLoad)
	}
	if rep.Routable {
		t.Error("3 signals over a 2-wire link reported routable")
	}
	// With capacity 3 it routes.
	pl2, _ := Place(p, Board{Slots: 2, Topology: Chain, WiresPerLink: 3})
	if rep2 := pl2.Evaluate(p); !rep2.Routable {
		t.Error("3 signals over a 3-wire link reported unroutable")
	}
}

func TestMeshRouting(t *testing.T) {
	p := fourBlocks(t)
	pl, err := Place(p, Board{Slots: 4, Topology: Mesh, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.Evaluate(p)
	if rep.InterNets != 3 {
		t.Errorf("InterNets = %d, want 3", rep.InterNets)
	}
	if rep.TotalHops < 3 {
		t.Errorf("TotalHops = %d, want >= 3", rep.TotalHops)
	}
	if !rep.Routable {
		t.Error("unlimited mesh must route")
	}
}

func TestEndToEndWithFPART(t *testing.T) {
	// Partition a benchmark, then place it on a mesh emulation board.
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	r, err := core.Partition(h, device.XC3042, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	board := Board{Slots: 6, Topology: Mesh, Cols: 3, WiresPerLink: 200}
	pl, err := Place(r.Partition, board)
	if err != nil {
		t.Fatal(err)
	}
	rep := pl.Evaluate(r.Partition)
	if rep.InterNets == 0 {
		t.Error("no inter-FPGA nets on a multi-device partition")
	}
	if !rep.Routable {
		t.Errorf("generous board unroutable: max link load %d", rep.MaxLinkLoad)
	}
	// The greedy placement must beat a worst-case bound: hops <= nets ×
	// board diameter.
	diameter := board.distance(0, board.Slots-1)
	if rep.TotalHops > rep.InterNets*diameter {
		t.Errorf("hops %d exceed diameter bound %d", rep.TotalHops, rep.InterNets*diameter)
	}
}

// TestMeshRaggedLastRow pins routing on a mesh whose Cols does not divide
// Slots: a 4-wide, 6-slot mesh has a ragged last row of width 2 (slots 4,
// 5). Routing from slot 4 (x=0,y=1) to slot 3 (x=3,y=0) X-first would walk
// the ragged row through phantom slots 5, 6, 7; the router must fall back
// to Y-first and every traversed link must join two real slots.
func TestMeshRaggedLastRow(t *testing.T) {
	b := Board{Slots: 6, Topology: Mesh, Cols: 4}
	pl := &Placement{Board: b}
	for _, tc := range []struct{ from, to int }{
		{4, 3}, // ragged source row, target column past ragged width
		{3, 4}, // reverse: X-first lands on (0,0) then descends — fine
		{5, 3}, // ragged source, 3 hops
		{4, 5}, // within the ragged row
	} {
		load := map[[2]int]int{}
		hops := pl.routePath(tc.from, tc.to, load)
		if want := b.distance(tc.from, tc.to); hops != want {
			t.Errorf("route %d->%d: hops = %d, want Manhattan %d", tc.from, tc.to, hops, want)
		}
		for link := range load {
			for _, s := range link {
				if s < 0 || s >= b.Slots {
					t.Errorf("route %d->%d traverses phantom slot %d (link %v)", tc.from, tc.to, s, link)
				}
			}
		}
	}
}

func TestParseSpec(t *testing.T) {
	good := []struct {
		spec string
		want Board
	}{
		{"crossbar:4", Board{Slots: 4, Topology: Crossbar}},
		{"chain:8", Board{Slots: 8, Topology: Chain}},
		{"chain:8:wires=16", Board{Slots: 8, Topology: Chain, WiresPerLink: 16}},
		{"mesh:4x4:wires=64", Board{Slots: 16, Topology: Mesh, Cols: 4, WiresPerLink: 64}},
		{"mesh:3x2", Board{Slots: 6, Topology: Mesh, Cols: 3}},
	}
	for _, tc := range good {
		got, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	bad := []string{
		"", "mesh", "torus:4", "mesh:4", "mesh:0x4", "mesh:4xfour",
		"chain:0", "chain:-2", "chain:4:wires=-1", "chain:4:fibers=9",
		"crossbar:4:wires=2",
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestRoute(t *testing.T) {
	p := fourBlocks(t)
	pl, rep, err := Route(p, Board{Slots: 4, Topology: Chain})
	if err != nil {
		t.Fatal(err)
	}
	if pl == nil || rep.InterNets != 3 || !rep.Routable {
		t.Errorf("Route: report %+v", rep)
	}
	if _, _, err := Route(p, Board{Slots: 2, Topology: Chain}); err == nil {
		t.Error("Route accepted 4 blocks on 2 slots")
	}
}

func TestTopologyString(t *testing.T) {
	for _, tp := range []Topology{Crossbar, Chain, Mesh, Topology(9)} {
		if tp.String() == "" {
			t.Error("empty topology name")
		}
	}
}
