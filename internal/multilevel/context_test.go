package multilevel

// Cancellation and deadline tests for PartitionCtx, mirroring
// internal/core/context_test.go.

import (
	"context"
	"errors"
	"testing"
	"time"

	"fpart/internal/device"
	"fpart/internal/gen"
)

func TestPartitionCtxPreCancelledReturnsCanceled(t *testing.T) {
	h := ring(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := PartitionCtx(ctx, h, dev, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r != nil {
		t.Error("cancelled run returned a result")
	}
}

func TestPartitionCtxDeadlineAbortsPromptly(t *testing.T) {
	// A large generated circuit whose V-cycles take far longer than the
	// deadline: the per-level polling must surface it quickly.
	spec, ok := gen.ByName("s38584")
	if !ok {
		t.Fatal("spec s38584 missing")
	}
	h := gen.Generate(spec, device.XC3000)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := PartitionCtx(ctx, h, device.XC3020, Config{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Generous bound: a full multilevel run takes far longer, and the
	// refinement engine polls every 64 applied moves.
	if elapsed > 2*time.Second {
		t.Errorf("run took %v to notice a 30ms deadline", elapsed)
	}
}

func TestPartitionMatchesPartitionCtx(t *testing.T) {
	h := ring(t, 3, 12, 4)
	dev := device.Device{Name: "d", DatasheetCells: 16, Pins: 30, Fill: 1.0}
	a, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionCtx(context.Background(), h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || a.Feasible != b.Feasible || a.Iterations != b.Iterations {
		t.Errorf("wrapper diverged: K %d/%d feasible %v/%v iters %d/%d",
			a.K, b.K, a.Feasible, b.Feasible, a.Iterations, b.Iterations)
	}
}
