package multilevel

import (
	"context"
	"testing"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

func TestClusterOrderIsPermutation(t *testing.T) {
	h := ring(t, 4, 12, 8)
	order := ClusterOrder(h)
	if len(order) != h.NumNodes() {
		t.Fatalf("order covers %d of %d nodes", len(order), h.NumNodes())
	}
	seen := make([]bool, h.NumNodes())
	for _, v := range order {
		if seen[v] {
			t.Fatalf("node %d ordered twice", v)
		}
		seen[v] = true
	}
}

func TestClusterOrderPadsNextToAnchors(t *testing.T) {
	h := ring(t, 3, 8, 6)
	order := ClusterOrder(h)
	pos := make([]int, h.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	for _, p := range h.PadIDs() {
		// The pad's anchor is its first interior neighbour.
		var anchor hypergraph.NodeID = -1
		for _, e := range h.Nets(p) {
			for _, u := range h.Pins(e) {
				if h.Node(u).Kind == hypergraph.Interior {
					anchor = u
					break
				}
			}
			if anchor >= 0 {
				break
			}
		}
		if anchor < 0 {
			continue
		}
		d := pos[p] - pos[anchor]
		if d < 0 {
			d = -d
		}
		// Pads sharing an anchor queue up behind it; a handful of pads per
		// anchor keeps the distance tiny.
		if d > 6 {
			t.Errorf("pad %d sits %d slots from its anchor", p, d)
		}
	}
}

func TestClusterOrderHasLowCutWidth(t *testing.T) {
	// The property WCDP needs: contiguous windows of the ordering cross
	// few nets. On s9234 a 140-node window must stay well under the
	// ~240-net crossings a frontier-style (max-adjacency) order produces.
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	order := ClusterOrder(h)
	const win = 140
	worst := 0
	for start := 0; start+win <= len(order); start += win {
		in := make(map[hypergraph.NodeID]bool, win)
		for i := start; i < start+win; i++ {
			in[order[i]] = true
		}
		cross := 0
		for e := 0; e < h.NumNets(); e++ {
			has, out := false, false
			for _, u := range h.Pins(hypergraph.NetID(e)) {
				if in[u] {
					has = true
				} else {
					out = true
				}
			}
			if has && out {
				cross++
			}
		}
		if cross > worst {
			worst = cross
		}
	}
	if worst > 160 {
		t.Errorf("worst window cut %d: ordering too scrambled for the DP", worst)
	}
}

func TestVCycleSplitTinyRemainder(t *testing.T) {
	var b hypergraph.Builder
	b.AddInterior("only", 1)
	h := b.MustBuild()
	dev := device.Device{Name: "d", DatasheetCells: 4, Pins: 4, Fill: 1.0}
	p := partitionOf(t, h, dev)
	if _, _, ok, _ := vCycleSplit(context.Background(), p, 0, dev, Config{}.normalize(), new(obs.Stats)); ok {
		t.Error("single-node remainder split")
	}
}

func partitionOf(t *testing.T, h *hypergraph.Hypergraph, dev device.Device) *partition.Partition {
	t.Helper()
	return partition.New(h, dev)
}
