// Package multilevel implements a multilevel (hMETIS-style) partitioning
// baseline: heavy-edge-matching coarsening, a constructive split of the
// coarsest graph, and FM refinement on the way back up, embedded in the
// same recursive peeling driver the other methods use.
//
// Multilevel methods postdate the FPART paper's comparisons (hMETIS
// appeared contemporaneously) but dominate modern practice; having one in
// the repository shows where the paper's guided flat FM stands against the
// coarsening paradigm on the same benchmark suite.
package multilevel

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
	"fpart/internal/sanchis"
	"fpart/internal/seed"
)

// Config tunes the multilevel driver.
type Config struct {
	// CoarsestNodes stops coarsening once the graph is this small
	// (default 64).
	CoarsestNodes int
	// MaxClusterFrac caps a coarse node's size as a fraction of S_MAX so
	// refinement keeps enough granularity (default 0.25).
	MaxClusterFrac float64
	// MaxBlocks caps peeling iterations; zero selects 4·M+32.
	MaxBlocks int
	// Sink, when non-nil, receives one obs.Event per peeled block.
	Sink obs.Sink
	// Label tags this run's events (obs.Event.Source).
	Label string
}

func (c Config) normalize() Config {
	if c.CoarsestNodes == 0 {
		c.CoarsestNodes = 64
	}
	if c.MaxClusterFrac == 0 {
		c.MaxClusterFrac = 0.25
	}
	return c
}

// Result mirrors the other drivers' results.
type Result struct {
	Partition  *partition.Partition
	K          int
	M          int
	Feasible   bool
	Iterations int
	Levels     int // coarsening levels used by the last peel
	// Stats carries the effort counters of the run: the V-cycle split
	// (coarsen + refine) is accounted as the seed phase, its per-level FM
	// refinement counters fold into the move/pass totals.
	Stats   obs.Stats
	Elapsed time.Duration
}

// level is one rung of the coarsening hierarchy.
type level struct {
	h *hypergraph.Hypergraph
	// fineToCoarse maps the previous (finer) level's node IDs into this
	// level's node IDs. Nil for the finest level.
	fineToCoarse []hypergraph.NodeID
}

// coarsen builds one coarser level without a cancellation context; it is
// coarsenCtx (hierarchy.go) under context.Background, kept for callers like
// ClusterOrder that have no deadline to honour.
func coarsen(h *hypergraph.Hypergraph, maxClusterSize int) (*level, bool) {
	lv, ok, _ := coarsenCtx(context.Background(), h, maxClusterSize)
	return lv, ok
}

// vCycleSplit selects a node set of the remainder whose projection targets
// a device-sized, min-cut block: coarsen, split the coarsest level, then
// uncoarsen with FM refinement at every level. Returns the chosen fine-level
// node set and the number of levels used. Cancelling ctx aborts between
// coarsening levels and mid-refinement, returning ctx's error.
func vCycleSplit(ctx context.Context, p *partition.Partition, rem partition.BlockID, dev device.Device, cfg Config, st *obs.Stats) ([]hypergraph.NodeID, int, bool, error) {
	remNodes := p.NodesIn(rem)
	if len(remNodes) < 2 {
		return nil, 0, false, nil
	}
	base, back := p.Hypergraph().Induced(remNodes)
	levels := []*level{{h: base}}
	maxCluster := int(cfg.MaxClusterFrac * float64(dev.SMax()))
	if maxCluster < 2 {
		maxCluster = 2
	}
	for levels[len(levels)-1].h.NumNodes() > cfg.CoarsestNodes {
		if err := ctx.Err(); err != nil {
			return nil, len(levels), false, err
		}
		// coarsenCtx polls ctx inside its matching loop too, so one huge
		// level cannot blow past a deadline before the between-level check
		// above runs again.
		lv, ok, err := coarsenCtx(ctx, levels[len(levels)-1].h, maxCluster)
		if err != nil {
			return nil, len(levels), false, err
		}
		if !ok {
			break
		}
		levels = append(levels, lv)
	}

	// Split the coarsest level: grow a block toward S_MAX by connectivity.
	coarsest := levels[len(levels)-1].h
	inA := growSplit(coarsest, dev.SMax())

	// Refine upward. At each level, build a scratch 2-block partition and
	// run the FM engine with a cut objective and size window around S_MAX.
	for li := len(levels) - 1; li >= 0; li-- {
		lh := levels[li].h
		scratch := partition.New(lh, dev)
		blkA := scratch.AddBlock()
		for v := 0; v < lh.NumNodes(); v++ {
			if inA[hypergraph.NodeID(v)] {
				scratch.Move(hypergraph.NodeID(v), blkA)
			}
		}
		eng := sanchis.New(scratch, sanchis.Config{
			CutObjective: true,
			StackDepth:   -1,
			MaxPasses:    4,
		})
		est, err := eng.ImproveCtx(ctx, []partition.BlockID{0, blkA}, 0, device.LowerBound(lh, dev))
		st.ImproveCalls++
		st.Passes += est.Passes
		st.MovesEvaluated += est.MovesEvaluated
		st.MovesApplied += est.MovesApplied
		st.MovesGated += est.MovesGated
		st.BucketOps += est.BucketOps
		if err != nil {
			return nil, len(levels), false, err
		}
		// Re-read side A and project one level down.
		if li > 0 {
			finer := levels[li-1].h
			f2c := levels[li].fineToCoarse
			next := make(map[hypergraph.NodeID]bool, finer.NumNodes())
			for v := 0; v < finer.NumNodes(); v++ {
				if scratch.Block(f2c[v]) == blkA {
					next[hypergraph.NodeID(v)] = true
				}
			}
			inA = next
		} else {
			next := make(map[hypergraph.NodeID]bool)
			for v := 0; v < lh.NumNodes(); v++ {
				if scratch.Block(hypergraph.NodeID(v)) == blkA {
					next[hypergraph.NodeID(v)] = true
				}
			}
			inA = next
		}
	}

	// Map the finest-level side A back to global node IDs, then trim to
	// device feasibility (the V-cycle minimizes cut at target size but
	// does not check pins).
	var set []hypergraph.NodeID
	for v, in := range inA {
		if in {
			set = append(set, back[v])
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	if len(set) == 0 || len(set) == len(remNodes) {
		return nil, len(levels), false, nil
	}
	return set, len(levels), true, nil
}

// growSplit grows a connectivity-first cluster on the coarse graph until
// the next addition would exceed S_MAX.
func growSplit(h *hypergraph.Hypergraph, smax int) map[hypergraph.NodeID]bool {
	inA := make(map[hypergraph.NodeID]bool)
	var seedNode hypergraph.NodeID = -1
	for v := 0; v < h.NumNodes(); v++ {
		id := hypergraph.NodeID(v)
		if h.Node(id).Kind != hypergraph.Interior {
			continue
		}
		if seedNode < 0 || h.Node(id).Size > h.Node(seedNode).Size {
			seedNode = id
		}
	}
	if seedNode < 0 {
		return inA
	}
	inA[seedNode] = true
	size := h.Node(seedNode).Size
	gainTo := map[hypergraph.NodeID]int{}
	expand := func(v hypergraph.NodeID) {
		for _, e := range h.Nets(v) {
			for _, u := range h.Pins(e) {
				if !inA[u] {
					gainTo[u]++
				}
			}
		}
	}
	expand(seedNode)
	for {
		var best hypergraph.NodeID = -1
		bestG := -1
		for u, g := range gainTo {
			if inA[u] {
				continue
			}
			if size+h.Node(u).Size > smax {
				continue
			}
			if g > bestG || (g == bestG && u < best) {
				best, bestG = u, g
			}
		}
		if best < 0 {
			return inA
		}
		inA[best] = true
		size += h.Node(best).Size
		delete(gainTo, best)
		expand(best)
	}
}

// ClusterOrder returns a linear arrangement of h's nodes in which nodes
// merged at deeper coarsening levels stay adjacent: the hierarchy is built
// by repeated heavy-edge matching and the order is its depth-first
// expansion. Orderings like this keep natural circuit clusters contiguous,
// which is what window/DP partitioners (internal/wcdp) need.
func ClusterOrder(h *hypergraph.Hypergraph) []hypergraph.NodeID {
	levels := []*level{{h: h}}
	for levels[len(levels)-1].h.NumNodes() > 8 {
		lv, ok := coarsen(levels[len(levels)-1].h, 1<<30)
		if !ok {
			break
		}
		levels = append(levels, lv)
	}
	// Start from the coarsest level in node-ID order and expand downward:
	// at each level, fine nodes are grouped behind their coarse image.
	top := levels[len(levels)-1].h
	order := make([]hypergraph.NodeID, top.NumNodes())
	for i := range order {
		order[i] = hypergraph.NodeID(i)
	}
	for li := len(levels) - 1; li >= 1; li-- {
		f2c := levels[li].fineToCoarse
		fineN := levels[li-1].h.NumNodes()
		buckets := make([][]hypergraph.NodeID, levels[li].h.NumNodes())
		for v := 0; v < fineN; v++ {
			c := f2c[v]
			buckets[c] = append(buckets[c], hypergraph.NodeID(v))
		}
		fineOrder := make([]hypergraph.NodeID, 0, fineN)
		for _, c := range order {
			fineOrder = append(fineOrder, buckets[c]...)
		}
		order = fineOrder
	}
	// Pads never merge during coarsening, so the hierarchy leaves them
	// scattered; splice each pad right behind its anchor (its first
	// interior neighbour) so pad-heavy circuits stay contiguous.
	padsOf := make(map[hypergraph.NodeID][]hypergraph.NodeID)
	var orphans []hypergraph.NodeID
	for _, p := range h.PadIDs() {
		var anchor hypergraph.NodeID = -1
		for _, e := range h.Nets(p) {
			for _, u := range h.Pins(e) {
				if h.Node(u).Kind == hypergraph.Interior {
					anchor = u
					break
				}
			}
			if anchor >= 0 {
				break
			}
		}
		if anchor >= 0 {
			padsOf[anchor] = append(padsOf[anchor], p)
		} else {
			orphans = append(orphans, p)
		}
	}
	final := make([]hypergraph.NodeID, 0, h.NumNodes())
	for _, v := range order {
		if h.Node(v).Kind == hypergraph.Pad {
			continue // re-emitted next to its anchor
		}
		final = append(final, v)
		final = append(final, padsOf[v]...)
	}
	return append(final, orphans...)
}

// Partition runs the multilevel peeling driver. It is PartitionCtx with a
// background context.
func Partition(h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	return PartitionCtx(context.Background(), h, dev, cfg)
}

// PartitionCtx runs the multilevel peeling driver under ctx. Cancellation
// is polled at every peel iteration, between coarsening levels, and inside
// each level's FM refinement, so even one V-cycle on a large circuit
// aborts promptly; the partial solution is discarded and ctx's error is
// returned. Structured events flow to cfg.Sink and effort counters land in
// Result.Stats.
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if h.NumNodes() == 0 {
		return nil, errors.New("multilevel: empty circuit")
	}
	for _, id := range h.InteriorIDs() {
		if h.Node(id).Size > dev.SMax() {
			return nil, fmt.Errorf("multilevel: node %q larger than device (%d > %d)",
				h.Node(id).Name, h.Node(id).Size, dev.SMax())
		}
	}
	cfg = cfg.normalize()
	em := obs.NewEmitter(cfg.Sink, cfg.Label)

	p := partition.New(h, dev)
	m := device.LowerBound(h, dev)
	rem := partition.BlockID(0)
	res := &Result{Partition: p, M: m}
	res.Stats.PeakBlocks = p.NumBlocks()
	maxBlocks := cfg.MaxBlocks
	if maxBlocks == 0 {
		maxBlocks = 4*m + 32
	}

	em.Emit(obs.Event{Type: obs.RunStart, M: m})
	for !p.Feasible(rem) {
		if err := ctx.Err(); err != nil {
			em.Emit(obs.Event{Type: obs.Cancelled})
			return nil, err
		}
		if p.NumBlocks() >= maxBlocks {
			break
		}
		res.Iterations++
		res.Stats.Iterations++
		em.Emit(obs.Event{Type: obs.BipartitionStart, Iteration: res.Iterations})
		t0 := time.Now()
		set, lv, ok, err := vCycleSplit(ctx, p, rem, dev, cfg, &res.Stats)
		if err != nil {
			res.Stats.PhaseTime[obs.PhaseSeed] += time.Since(t0)
			em.Emit(obs.Event{Type: obs.Cancelled})
			return nil, err
		}
		res.Levels = lv
		if ok {
			// Saturate the min-cut side under both constraints, exactly as
			// the flow baseline does with its nucleus.
			set = trimToFeasible(p, rem, dev, set)
		}
		if !ok || len(set) == 0 {
			set = seed.Grow(p, rem, dev, biggestSeed(p, rem))
		}
		res.Stats.PhaseTime[obs.PhaseSeed] += time.Since(t0)
		if len(set) == 0 {
			break
		}
		nb := p.AddBlock()
		for _, v := range set {
			p.Move(v, nb)
			res.Stats.MovesApplied++
		}
		if p.NumBlocks() > res.Stats.PeakBlocks {
			res.Stats.PeakBlocks = p.NumBlocks()
		}
		em.Emit(obs.Event{
			Type: obs.BipartitionEnd, Iteration: res.Iterations,
			Block: int(nb), Size: p.Size(nb), Terminals: p.Terminals(nb),
		})
		if p.Nodes(rem) == 0 {
			break
		}
	}
	res.Feasible = p.Classify() == partition.FeasibleSolution
	for b := 0; b < p.NumBlocks(); b++ {
		if p.Nodes(partition.BlockID(b)) > 0 {
			res.K++
		}
	}
	res.Elapsed = time.Since(start)
	em.Emit(obs.Event{Type: obs.RunEnd, K: res.K, M: m, Feasible: res.Feasible})
	return res, nil
}

// trimToFeasible shrinks/saturates a candidate set so the carved block
// meets both device constraints: it regrows from the candidate's highest
// connectivity core using the pin-aware greedy growth.
func trimToFeasible(p *partition.Partition, rem partition.BlockID, dev device.Device, set []hypergraph.NodeID) []hypergraph.NodeID {
	// Check the set as-is first.
	size, okAux := 0, true
	for _, v := range set {
		size += p.Hypergraph().Node(v).Size
		if dev.AuxCap > 0 {
			okAux = okAux && p.Hypergraph().Node(v).Aux <= dev.AuxCap
		}
	}
	if size <= dev.SMax() && okAux {
		if term := probeTerminals(p, rem, set); term <= dev.TMax() {
			return seed.Grow(p, rem, dev, set)
		}
	}
	// Infeasible as a whole: regrow from its densest member.
	if len(set) == 0 {
		return nil
	}
	return seed.Grow(p, rem, dev, set[:1])
}

// probeTerminals evaluates the terminal count the set would have as a block.
func probeTerminals(p *partition.Partition, rem partition.BlockID, set []hypergraph.NodeID) int {
	h := p.Hypergraph()
	in := make(map[hypergraph.NodeID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	term := 0
	seen := map[hypergraph.NetID]bool{}
	for _, v := range set {
		if h.Node(v).Kind == hypergraph.Pad {
			term++
		}
		for _, e := range h.Nets(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			outside := p.Span(e) > 1
			if !outside {
				for _, u := range h.Pins(e) {
					if !in[u] {
						outside = true
						break
					}
				}
			}
			if outside {
				term++
			}
		}
	}
	return term
}

// biggestSeed returns the biggest interior remainder node as a one-element
// growth seed.
func biggestSeed(p *partition.Partition, rem partition.BlockID) []hypergraph.NodeID {
	h := p.Hypergraph()
	var s hypergraph.NodeID = -1
	for _, v := range p.NodesIn(rem) {
		if h.Node(v).Kind != hypergraph.Interior {
			continue
		}
		if s < 0 || h.Node(v).Size > h.Node(s).Size {
			s = v
		}
	}
	if s < 0 {
		return nil
	}
	return []hypergraph.NodeID{s}
}
