package multilevel

// Invariant and cancellation tests for the retained coarsening hierarchy.
// The mlfpart engine's correctness rests on the projection-exactness
// invariant pinned here: contraction only drops cluster-internal nets and
// surviving nets keep their span, so a coarse block assignment projected
// down carries identical block sizes, pin conservation, and cut value.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// checkHierarchy verifies the structural invariants between every pair of
// adjacent levels: total size/aux conservation per cluster, pad kinds
// preserved, every fine node mapped, and no surviving net losing a pin's
// cluster.
func checkHierarchy(t *testing.T, hr *Hierarchy) {
	t.Helper()
	for li := 1; li <= hr.Depth(); li++ {
		fh, ch := hr.Graph(li-1), hr.Graph(li)
		f2c := hr.FineToCoarse(li)
		if len(f2c) != fh.NumNodes() {
			t.Fatalf("level %d: map covers %d of %d fine nodes", li, len(f2c), fh.NumNodes())
		}
		size := make([]int, ch.NumNodes())
		aux := make([]int, ch.NumNodes())
		for v := range f2c {
			c := f2c[v]
			if c < 0 || int(c) >= ch.NumNodes() {
				t.Fatalf("level %d: fine node %d maps to invalid cluster %d", li, v, c)
			}
			id := hypergraph.NodeID(v)
			size[c] += fh.SizeOf(id)
			aux[c] += fh.AuxOf(id)
			if fh.KindOf(id) == hypergraph.Pad && ch.KindOf(c) != hypergraph.Pad {
				t.Fatalf("level %d: pad %d merged into interior cluster %d", li, v, c)
			}
		}
		for c := 0; c < ch.NumNodes(); c++ {
			id := hypergraph.NodeID(c)
			if size[c] != ch.SizeOf(id) || aux[c] != ch.AuxOf(id) {
				t.Fatalf("level %d: cluster %d has size/aux %d/%d, members sum to %d/%d",
					li, c, ch.SizeOf(id), ch.AuxOf(id), size[c], aux[c])
			}
		}
		if ch.TotalSize() != fh.TotalSize() {
			t.Fatalf("level %d: total size %d != %d", li, ch.TotalSize(), fh.TotalSize())
		}
		if ch.NumPads() != fh.NumPads() {
			t.Fatalf("level %d: pads %d != %d", li, ch.NumPads(), fh.NumPads())
		}
		// Every fine net must either survive with the exact set of member
		// clusters, or have collapsed into a single cluster. Surviving
		// nets are matched by multiset of (sorted) cluster pins: count
		// them on both sides.
		fineNets := make(map[string]int)
		for e := 0; e < fh.NumNets(); e++ {
			key := netKey(f2c, fh.Pins(hypergraph.NetID(e)))
			if key != "" {
				fineNets[key]++
			}
		}
		for e := 0; e < ch.NumNets(); e++ {
			pins := ch.Pins(hypergraph.NetID(e))
			ids := make([]hypergraph.NodeID, len(pins))
			copy(ids, pins)
			key := sortedKey(ids)
			if fineNets[key] == 0 {
				t.Fatalf("level %d: coarse net %d (%v) has no fine counterpart", li, e, pins)
			}
			fineNets[key]--
		}
		for key, left := range fineNets {
			if left != 0 {
				t.Fatalf("level %d: %d fine nets with cluster set %q lost", li, left, key)
			}
		}
	}
}

// netKey renders a fine net's cluster multiset, or "" when it collapsed
// into one cluster (dropped by contraction).
func netKey(f2c []hypergraph.NodeID, pins []hypergraph.NodeID) string {
	seen := make(map[hypergraph.NodeID]bool, len(pins))
	var ids []hypergraph.NodeID
	for _, p := range pins {
		if c := f2c[p]; !seen[c] {
			seen[c] = true
			ids = append(ids, c)
		}
	}
	if len(ids) < 2 {
		return ""
	}
	return sortedKey(ids)
}

func sortedKey(ids []hypergraph.NodeID) string {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = appendInt(b, int(id))
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

func TestHierarchyInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		h := gen.Synthetic(2000, 80, seed, seed%2 == 0)
		hr, err := BuildHierarchy(context.Background(), h, HierarchyConfig{CoarsestNodes: 64, MaxClusterSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		if hr.Depth() < 2 {
			t.Fatalf("seed %d: depth %d, want multi-level", seed, hr.Depth())
		}
		checkHierarchy(t, hr)
	}
}

// Projecting a random feasible-shaped assignment from any level down to
// level 0 must preserve the cut value exactly, level by level — the
// invariant the mlfpart engine's "coarse feasibility implies projected
// feasibility" argument rests on. Differential: cut computed by
// partition.FromAssignment on each graph.
func TestHierarchyProjectionPreservesCut(t *testing.T) {
	h := gen.Synthetic(1500, 60, 5, true)
	hr, err := BuildHierarchy(context.Background(), h, HierarchyConfig{CoarsestNodes: 96, MaxClusterSize: 24})
	if err != nil {
		t.Fatal(err)
	}
	if hr.Depth() == 0 {
		t.Fatal("no coarsening happened")
	}
	dev := device.Device{Name: "d", DatasheetCells: 1 << 20, Pins: 1 << 20, Fill: 1.0}
	rng := rand.New(rand.NewSource(42))
	const k = 7
	coarse := make([]partition.BlockID, hr.Coarsest().NumNodes())
	for i := range coarse {
		coarse[i] = partition.BlockID(rng.Intn(k))
	}
	cp, err := partition.FromAssignment(hr.Coarsest(), dev, coarse, k)
	if err != nil {
		t.Fatal(err)
	}
	wantCut := cp.Cut()
	sizes := make([]int, k)
	for b := 0; b < k; b++ {
		sizes[b] = cp.Size(partition.BlockID(b))
	}
	assign := coarse
	for li := hr.Depth(); li >= 1; li-- {
		assign = hr.Project(li, assign, nil)
		fp, err := partition.FromAssignment(hr.Graph(li-1), dev, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		if fp.Cut() != wantCut {
			t.Fatalf("level %d: projected cut %d, coarse cut %d", li-1, fp.Cut(), wantCut)
		}
		for b := 0; b < k; b++ {
			if fp.Size(partition.BlockID(b)) != sizes[b] {
				t.Fatalf("level %d: block %d size %d, coarse size %d", li-1, b, fp.Size(partition.BlockID(b)), sizes[b])
			}
		}
	}
	if len(assign) != h.NumNodes() {
		t.Fatalf("final projection covers %d of %d nodes", len(assign), h.NumNodes())
	}
}

// countingCtx reports context.Canceled starting from the nth Err() call —
// it distinguishes in-loop polling from between-level polling: with a tiny
// poll interval the very first coarsening level must observe the
// cancellation before it completes.
type countingCtx struct {
	context.Context
	calls, after int
}

func (c *countingCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func TestBuildHierarchyCancelInsideCoarsenLoop(t *testing.T) {
	old := coarsenPollEvery
	coarsenPollEvery = 16
	defer func() { coarsenPollEvery = old }()

	h := gen.Synthetic(2000, 80, 1, false)
	// Survive BuildHierarchy's own between-level check plus one in-loop
	// poll, then cancel: the first level is still being matched, so no
	// coarse level may exist in the result.
	ctx := &countingCtx{Context: context.Background(), after: 2}
	hr, err := BuildHierarchy(ctx, h, HierarchyConfig{CoarsestNodes: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if hr != nil {
		t.Fatal("cancelled build returned a hierarchy")
	}
	// The cancellation must have been noticed mid-matching, well before
	// the ~2000 nodes of level 0 were all visited: with poll interval 16
	// and a budget of 2 Err() calls, the third call aborts after at most
	// 32 visited nodes.
	if ctx.calls > 3 {
		t.Fatalf("ctx polled %d times before aborting", ctx.calls)
	}
}

// BuildHierarchy and the one-shot vCycle coarsener share coarsenCtx; a
// background context must never alter results vs the historical behaviour.
func TestCoarsenCtxMatchesCoarsen(t *testing.T) {
	h := gen.Synthetic(800, 40, 9, true)
	a, okA := coarsen(h, 16)
	b, okB, err := coarsenCtx(context.Background(), h, 16)
	if err != nil {
		t.Fatal(err)
	}
	if okA != okB {
		t.Fatalf("ok: %v vs %v", okA, okB)
	}
	if !okA {
		return
	}
	if a.h.NumNodes() != b.h.NumNodes() || a.h.NumNets() != b.h.NumNets() {
		t.Fatalf("coarse graphs differ: %d/%d nodes, %d/%d nets",
			a.h.NumNodes(), b.h.NumNodes(), a.h.NumNets(), b.h.NumNets())
	}
	for i := range a.fineToCoarse {
		if a.fineToCoarse[i] != b.fineToCoarse[i] {
			t.Fatalf("node %d: cluster %d vs %d", i, a.fineToCoarse[i], b.fineToCoarse[i])
		}
	}
}
