package multilevel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

func ring(t testing.TB, c, n, pads int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	sets := make([][]hypergraph.NodeID, c)
	for ci := 0; ci < c; ci++ {
		for i := 0; i < n; i++ {
			sets[ci] = append(sets[ci], b.AddInterior("v", 1))
		}
		for i := 0; i+1 < n; i++ {
			b.AddNet("in", sets[ci][i], sets[ci][i+1])
			if i+2 < n {
				b.AddNet("in2", sets[ci][i], sets[ci][i+2])
			}
		}
	}
	for ci := 0; ci < c; ci++ {
		b.AddNet("bridge", sets[ci][n-1], sets[(ci+1)%c][0])
	}
	for i := 0; i < pads; i++ {
		pd := b.AddPad("p")
		b.AddNet("pe", pd, sets[i%c][i%n])
	}
	return b.MustBuild()
}

func TestCoarsenHalvesGraph(t *testing.T) {
	h := ring(t, 4, 16, 8)
	lv, ok := coarsen(h, 8)
	if !ok {
		t.Fatal("coarsening stalled on a dense ring")
	}
	if lv.h.NumNodes() >= h.NumNodes() {
		t.Errorf("coarse nodes %d >= fine %d", lv.h.NumNodes(), h.NumNodes())
	}
	// Total size and pads are conserved.
	if lv.h.TotalSize() != h.TotalSize() {
		t.Errorf("size changed: %d -> %d", h.TotalSize(), lv.h.TotalSize())
	}
	if lv.h.NumPads() != h.NumPads() {
		t.Errorf("pads changed: %d -> %d", h.NumPads(), lv.h.NumPads())
	}
	// The mapping covers every fine node.
	for v := 0; v < h.NumNodes(); v++ {
		c := lv.fineToCoarse[v]
		if c < 0 || int(c) >= lv.h.NumNodes() {
			t.Fatalf("node %d maps to invalid coarse node %d", v, c)
		}
	}
}

func TestCoarsenRespectsClusterCap(t *testing.T) {
	var b hypergraph.Builder
	a := b.AddInterior("a", 5)
	c := b.AddInterior("b", 5)
	b.AddNet("n", a, c)
	h := b.MustBuild()
	// Cap 8 < 10: the pair must not merge, so matching stalls.
	if _, ok := coarsen(h, 8); ok {
		t.Error("coarsening merged beyond the cluster cap")
	}
	if lv, ok := coarsen(h, 10); !ok || lv.h.NumNodes() != 1 {
		t.Error("coarsening should merge exactly at the cap")
	}
}

func TestCoarsenNeverMergesPads(t *testing.T) {
	var b hypergraph.Builder
	p1 := b.AddPad("p1")
	p2 := b.AddPad("p2")
	v := b.AddInterior("v", 1)
	b.AddNet("n", p1, p2, v)
	h := b.MustBuild()
	lv, ok := coarsen(h, 100)
	if ok {
		if lv.h.NumPads() != 2 {
			t.Errorf("pads merged: %d", lv.h.NumPads())
		}
	}
}

func TestGrowSplitTargetsSMax(t *testing.T) {
	h := ring(t, 2, 12, 0)
	inA := growSplit(h, 10)
	size := 0
	for v := range inA {
		size += h.Node(v).Size
	}
	if size == 0 || size > 10 {
		t.Errorf("grown side size %d outside (0,10]", size)
	}
}

func TestMultilevelPartition(t *testing.T) {
	h := ring(t, 4, 12, 6)
	dev := device.Device{Name: "d", DatasheetCells: 15, Pins: 30, Fill: 1.0}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("infeasible: K=%d M=%d", r.K, r.M)
	}
	if r.K < r.M || r.K > 6 {
		t.Errorf("K = %d outside [M=%d, 6]", r.K, r.M)
	}
	if err := r.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultilevelOnBenchmark(t *testing.T) {
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	r, err := Partition(h, device.XC3042, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("infeasible on s9234/XC3042: K=%d M=%d", r.K, r.M)
	}
	if r.K > r.M+2 {
		t.Errorf("K = %d far above M = %d", r.K, r.M)
	}
	if r.Levels == 0 {
		t.Error("no coarsening levels used on a 454-cell circuit")
	}
}

func TestMultilevelErrors(t *testing.T) {
	var b hypergraph.Builder
	if _, err := Partition(b.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("empty circuit accepted")
	}
	var b2 hypergraph.Builder
	v := b2.AddInterior("huge", 999)
	w := b2.AddInterior("w", 1)
	b2.AddNet("n", v, w)
	if _, err := Partition(b2.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("oversized node accepted")
	}
	if _, err := Partition(ring(t, 2, 3, 0), device.Device{Name: "bad"}, Config{}); err == nil {
		t.Error("bad device accepted")
	}
}

func TestProbeTerminals(t *testing.T) {
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "d", DatasheetCells: 10, Pins: 10, Fill: 1.0}
	p := partition.New(h, dev)
	// Whole circuit as "set": terminals = pads only.
	all := p.NodesIn(0)
	if term := probeTerminals(p, 0, all); term != 2 {
		t.Errorf("whole-set terminals = %d, want 2 (pads)", term)
	}
	// One cluster: 2 bridge nets cut + any pads inside.
	var set []hypergraph.NodeID
	for v := 0; v < 4; v++ {
		set = append(set, hypergraph.NodeID(v))
	}
	term := probeTerminals(p, 0, set)
	if term < 2 {
		t.Errorf("cluster terminals = %d, want >= 2 (bridges)", term)
	}
}

// Property: the multilevel driver always terminates with a valid partition.
func TestQuickMultilevelValid(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 10 + r.Intn(50)
		for i := 0; i < n; i++ {
			if r.Intn(10) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1)
			}
		}
		for e := 0; e < n+r.Intn(n); e++ {
			d := 2 + r.Intn(3)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		dev := device.Device{Name: "d", DatasheetCells: 6 + r.Intn(20), Pins: 8 + r.Intn(25), Fill: 1.0}
		res, err := Partition(h, dev, Config{})
		if err != nil {
			return true
		}
		if res.Partition.Validate() != nil {
			return false
		}
		return !res.Feasible || res.K >= res.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMultilevelS9234(b *testing.B) {
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(h, device.XC3020, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
