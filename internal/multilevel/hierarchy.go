package multilevel

import (
	"context"
	"fmt"
	"sort"

	"fpart/internal/hypergraph"
	"fpart/internal/partition"
)

// HierarchyConfig tunes BuildHierarchy.
type HierarchyConfig struct {
	// CoarsestNodes stops coarsening once the coarsest graph has at most
	// this many nodes (default 1024).
	CoarsestNodes int
	// MaxClusterSize globally caps a coarse node's size. Each level also
	// applies an adaptive cap of 4× the current average cluster size, so
	// early levels merge conservatively while deep levels keep making
	// progress; MaxClusterSize bounds both (default: unbounded).
	MaxClusterSize int
	// MaxLevels caps the number of coarse levels (default 24).
	MaxLevels int
}

func (c HierarchyConfig) normalize() HierarchyConfig {
	if c.CoarsestNodes <= 0 {
		c.CoarsestNodes = 1024
	}
	if c.MaxClusterSize <= 0 {
		c.MaxClusterSize = 1 << 30
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 24
	}
	return c
}

// Hierarchy is a retained multi-level coarsening of one hypergraph: level 0
// is the input graph, each following level the heavy-edge contraction of
// the previous one. It is the shared substructure of the one-shot V-cycle
// baseline (vCycleSplit builds a throwaway one per peel) and the mlfpart
// engine (which builds one for the whole input and peels on its coarsest
// graph).
type Hierarchy struct {
	levels []*level
}

// Depth returns the number of coarse levels (0 when no coarsening
// happened).
func (hr *Hierarchy) Depth() int { return len(hr.levels) - 1 }

// Graph returns the hypergraph of level i (0 = the input graph).
func (hr *Hierarchy) Graph(i int) *hypergraph.Hypergraph { return hr.levels[i].h }

// Coarsest returns the top (smallest) graph of the hierarchy.
func (hr *Hierarchy) Coarsest() *hypergraph.Hypergraph {
	return hr.levels[len(hr.levels)-1].h
}

// FineToCoarse returns the node map from level i-1 into level i (i ≥ 1).
func (hr *Hierarchy) FineToCoarse(i int) []hypergraph.NodeID {
	return hr.levels[i].fineToCoarse
}

// Project maps a block assignment of level i's nodes onto level i-1's
// nodes (i ≥ 1): every fine node inherits its cluster's block. The
// projection is exact — cluster sizes are the sums of their members, nets
// dropped during contraction were internal to one cluster, and surviving
// nets keep their span — so block sizes, terminal counts, and the cut
// value are identical before any refinement (hierarchy_test.go pins this).
// dst is reused when it has capacity.
func (hr *Hierarchy) Project(i int, coarse []partition.BlockID, dst []partition.BlockID) []partition.BlockID {
	f2c := hr.levels[i].fineToCoarse
	if cap(dst) < len(f2c) {
		dst = make([]partition.BlockID, len(f2c))
	}
	dst = dst[:len(f2c)]
	for v, c := range f2c {
		dst[v] = coarse[c]
	}
	return dst
}

// BuildHierarchy coarsens h through successive heavy-edge matchings until
// the coarsest graph falls under cfg.CoarsestNodes, matching stalls
// (reduction below 10%), or cfg.MaxLevels is reached. Cancellation is
// polled between levels and inside each matching loop, so even a single
// million-cell level aborts promptly.
func BuildHierarchy(ctx context.Context, h *hypergraph.Hypergraph, cfg HierarchyConfig) (*Hierarchy, error) {
	cfg = cfg.normalize()
	hr := &Hierarchy{levels: []*level{{h: h}}}
	for hr.Depth() < cfg.MaxLevels && hr.Coarsest().NumNodes() > cfg.CoarsestNodes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur := hr.Coarsest()
		levelCap := 4 * (cur.TotalSize()/max(cur.NumInterior(), 1) + 1)
		levelCap = min(levelCap, cfg.MaxClusterSize)
		levelCap = max(levelCap, 2)
		lv, ok, err := coarsenCtx(ctx, cur, levelCap)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		hr.levels = append(hr.levels, lv)
	}
	return hr, nil
}

// coarsenPollEvery is the matching-loop cancellation poll interval. A
// package variable so the context test can tighten it on small fixtures.
var coarsenPollEvery = 8192

// coarsenCtx builds one coarser level via heavy-edge matching: each
// unmatched node pairs with the neighbour sharing the largest connectivity
// weight Σ 1/(|e|−1); pads never merge. Returns ok=false when matching
// stalls (reduction below 10%). ctx is polled every coarsenPollEvery
// visited nodes.
//
// Weights accumulate into an epoch-stamped scratch array in the exact
// visit order of the historical map-based implementation, and ties break
// on the lowest node ID, so matchings (and every trajectory downstream of
// them) are unchanged while million-node levels stop paying map overhead.
func coarsenCtx(ctx context.Context, h *hypergraph.Hypergraph, maxClusterSize int) (*level, bool, error) {
	n := h.NumNodes()
	match := make([]hypergraph.NodeID, n)
	for i := range match {
		match[i] = -1
	}
	// Visit nodes in decreasing degree for better matchings.
	order := make([]hypergraph.NodeID, n)
	for i := range order {
		order[i] = hypergraph.NodeID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return h.Degree(order[a]) > h.Degree(order[b])
	})
	matched := 0
	wval := make([]float64, n)
	wstamp := make([]int32, n)
	var epoch int32
	touched := make([]hypergraph.NodeID, 0, 64)
	for vi, v := range order {
		if vi%coarsenPollEvery == coarsenPollEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
		}
		if match[v] != -1 || h.KindOf(v) == hypergraph.Pad {
			continue
		}
		epoch++
		touched = touched[:0]
		vsz := h.SizeOf(v)
		for _, e := range h.Nets(v) {
			pins := h.Pins(e)
			if len(pins) < 2 {
				continue
			}
			w := 1.0 / float64(len(pins)-1)
			for _, u := range pins {
				if u == v || match[u] != -1 || h.KindOf(u) == hypergraph.Pad {
					continue
				}
				if h.SizeOf(u)+vsz > maxClusterSize {
					continue
				}
				if wstamp[u] != epoch {
					wstamp[u] = epoch
					wval[u] = 0
					touched = append(touched, u)
				}
				wval[u] += w
			}
		}
		var best hypergraph.NodeID = -1
		bestW := 0.0
		for _, u := range touched {
			if w := wval[u]; w > bestW || (w == bestW && (best < 0 || u < best)) {
				best, bestW = u, w
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
			matched += 2
		}
	}
	if matched == 0 || matched*10 < n {
		return nil, false, nil
	}
	// Build the coarse hypergraph. Coarse nodes are anonymous: names carry
	// no algorithmic weight and a million-node level would otherwise spend
	// most of its build time populating the builder's name index.
	var b hypergraph.Builder
	f2c := make([]hypergraph.NodeID, n)
	for i := range f2c {
		f2c[i] = -1
	}
	for i := 0; i < n; i++ {
		v := hypergraph.NodeID(i)
		if f2c[v] != -1 {
			continue
		}
		if m := match[v]; m != -1 {
			id := b.AddNode("", h.KindOf(v), h.SizeOf(v)+h.SizeOf(m))
			b.SetAux(id, h.AuxOf(v)+h.AuxOf(m))
			f2c[v], f2c[m] = id, id
		} else {
			id := b.AddNode("", h.KindOf(v), h.SizeOf(v))
			b.SetAux(id, h.AuxOf(v))
			f2c[v] = id
		}
	}
	cstamp := make([]int32, b.NumNodes())
	for i := range cstamp {
		cstamp[i] = -1
	}
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(hypergraph.NetID(e))
		coarse := make([]hypergraph.NodeID, 0, len(pins))
		for _, p := range pins {
			c := f2c[p]
			if cstamp[c] != int32(e) {
				cstamp[c] = int32(e)
				coarse = append(coarse, c)
			}
		}
		if len(coarse) >= 2 {
			b.AddNetUnique("", coarse)
		}
	}
	ch, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("multilevel: coarse graph invalid: %v", err))
	}
	return &level{h: ch, fineToCoarse: f2c}, true, nil
}
