package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
	"fpart/internal/obs"
)

const tinyPHG = `phg
node a 2
node b 2
node c 2
node d 2
pad p
pad q
net n1 0 1 4
net n2 1 2
net n3 2 3 5
net n4 0 3
`

// uniquePHG returns a structurally distinct tiny netlist per tag, so tests
// can defeat the cache and in-flight coalescing at will.
func uniquePHG(tag int) string {
	return fmt.Sprintf("phg\nnode a %d\nnode b 1\nnode c 1\npad p\nnet n1 0 1 3\nnet n2 1 2\n", 1+tag%3) +
		fmt.Sprintf("net extra%d 0 2\n", tag)
}

func phgRequest(body string) Request {
	return Request{Format: "phg", Netlist: body, Device: "XC3020"}
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not complete")
	}
}

func shutdownClean(t *testing.T, s *Service) {
	t.Helper()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)

	bad := []Request{
		{},                 // no device
		{Device: "XC3020"}, // neither circuit nor netlist
		{Device: "XC3020", Circuit: "s9234", Netlist: "phg\n", Format: "phg"}, // both
		{Device: "nope", Circuit: "s9234"},
		{Device: "XC3020", Circuit: "unknown-circuit"},
		{Device: "XC3020", Circuit: "s9234", Method: "annealing"},
		{Device: "XC3020", Circuit: "s9234", Fill: 1.5},
		{Device: "XC3020", Netlist: "not a netlist", Format: "phg"},
	}
	for i, req := range bad {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("request %d should have been rejected", i)
		}
	}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownClean(t, s)

	job, err := s.Submit(phgRequest(tinyPHG))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)

	snap := s.Snapshot(job)
	if snap.State != StateDone || snap.Err != nil {
		t.Fatalf("job ended %s (%v)", snap.State, snap.Err)
	}
	if snap.Result == nil || snap.Report == nil || snap.Result.K < 1 {
		t.Fatalf("missing result payload: %+v", snap)
	}
	if snap.Result.Stats == nil {
		t.Fatal("fpart run should carry effort counters")
	}
	// The quality report matches the partitioning outcome.
	if snap.Report.Feasible != snap.Result.Feasible {
		t.Fatal("report/result feasibility disagree")
	}
	// The event stream is complete and terminated.
	if !job.Events().Closed() {
		t.Fatal("broadcast must be closed after completion")
	}
	evs := job.Events().Events()
	if len(evs) == 0 || evs[0].Type != obs.RunStart || evs[len(evs)-1].Type != obs.RunEnd {
		t.Fatalf("unexpected event envelope: %d events", len(evs))
	}
}

func TestCacheHitOnResubmit(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)

	first, err := s.Submit(phgRequest(tinyPHG))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)

	second, err := s.Submit(phgRequest(tinyPHG))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, second) // already closed: cache hits are born terminal

	snap := s.Snapshot(second)
	if !snap.Cached || snap.State != StateDone {
		t.Fatalf("resubmit should hit the cache: %+v", snap)
	}
	if snap.Key != first.Key() {
		t.Fatal("identical content must produce identical keys")
	}
	if got := s.m.computations.Load(); got != 1 {
		t.Fatalf("want 1 computation, got %d", got)
	}
	// The cached job replays the original event stream.
	if len(second.Events().Events()) != len(first.Events().Events()) {
		t.Fatal("cached job should replay the leader's events")
	}
	// Different device => different key => new computation.
	third, err := s.Submit(Request{Format: "phg", Netlist: tinyPHG, Device: "XC3042"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, third)
	if s.Snapshot(third).Cached {
		t.Fatal("different device must not share cache entries")
	}
}

// TestConcurrentSubmissionsCoalesce is the acceptance criterion: N
// concurrent submissions of the same circuit complete with exactly one
// cache-miss computation.
func TestConcurrentSubmissionsCoalesce(t *testing.T) {
	const n = 12
	s := New(Config{Workers: 2, QueueDepth: n})
	defer shutdownClean(t, s)

	release := make(chan struct{})
	started := make(chan struct{}, n)
	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return driver.RunOpts(ctx, method, h, dev, opts)
	}

	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(phgRequest(tinyPHG))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			mu.Lock()
			jobs[i] = j
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	<-started // the single leader is running
	close(release)

	for _, j := range jobs {
		if j == nil {
			t.Fatal("missing job")
		}
		waitTerminal(t, j)
		if snap := s.Snapshot(j); snap.State != StateDone {
			t.Fatalf("job %s ended %s (%v)", snap.ID, snap.State, snap.Err)
		}
	}
	if got := s.m.computations.Load(); got != 1 {
		t.Fatalf("want exactly 1 computation for %d identical submissions, got %d", n, got)
	}
	if hits := s.m.coalesced.Load() + s.m.cacheHits.Load(); hits != n-1 {
		t.Fatalf("want %d coalesced/cached riders, got %d", n-1, hits)
	}
}

// TestQueueBackpressure is the acceptance criterion: overflow of the
// bounded queue rejects with ErrQueueFull (HTTP 429).
func TestQueueBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer shutdownClean(t, s)

	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return driver.RunOpts(context.Background(), method, h, dev, opts)
	}
	defer close(release)

	// Occupy the worker...
	running, err := s.Submit(phgRequest(uniquePHG(1)))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// ...fill the single queue slot...
	queued, err := s.Submit(phgRequest(uniquePHG(2)))
	if err != nil {
		t.Fatal(err)
	}
	// ...and overflow it.
	if _, err := s.Submit(phgRequest(uniquePHG(3))); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if s.m.rejected.Load() != 1 {
		t.Fatal("rejection must be counted")
	}
	if s.QueueDepth() != 1 {
		t.Fatalf("queue depth: want 1, got %d", s.QueueDepth())
	}
	_ = running
	_ = queued
}

// TestShutdownDrains is the acceptance criterion: in-flight jobs drain on
// a graceful shutdown and admission stops.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit(phgRequest(uniquePHG(i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	for _, j := range jobs {
		snap := s.Snapshot(j)
		if snap.State != StateDone {
			t.Fatalf("queued job %s should have drained to done, got %s (%v)", snap.ID, snap.State, snap.Err)
		}
	}
	if _, err := s.Submit(phgRequest(tinyPHG)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: want ErrShuttingDown, got %v", err)
	}
	// A second shutdown is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownCancelsInFlight is the acceptance criterion's other half:
// when the drain deadline expires, running jobs are cancelled cleanly via
// their contexts.
func TestShutdownCancelsInFlight(t *testing.T) {
	s := New(Config{Workers: 1})

	started := make(chan struct{})
	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		close(started)
		<-ctx.Done() // a run that never finishes on its own
		return nil, ctx.Err()
	}
	job, err := s.Submit(phgRequest(tinyPHG))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown should report the deadline, got %v", err)
	}
	waitTerminal(t, job)
	snap := s.Snapshot(job)
	if snap.State != StateCanceled {
		t.Fatalf("in-flight job should end canceled, got %s (%v)", snap.State, snap.Err)
	}
	if !job.Events().Closed() {
		t.Fatal("event stream must be terminated on cancellation")
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})

	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return driver.RunOpts(context.Background(), method, h, dev, opts)
	}

	running, err := s.Submit(phgRequest(uniquePHG(10)))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(phgRequest(uniquePHG(11)))
	if err != nil {
		t.Fatal(err)
	}

	if !s.Cancel(queued) {
		t.Fatal("queued job should be cancellable")
	}
	waitTerminal(t, queued)
	if snap := s.Snapshot(queued); snap.State != StateCanceled {
		t.Fatalf("queued cancel: got %s", snap.State)
	}

	if !s.Cancel(running) {
		t.Fatal("running job should be cancellable")
	}
	waitTerminal(t, running)
	if snap := s.Snapshot(running); snap.State != StateCanceled {
		t.Fatalf("running cancel: got %s", snap.State)
	}
	if s.Cancel(running) {
		t.Fatal("terminal job must not report as cancelled again")
	}
	close(release)
	shutdownClean(t, s)
}

func TestJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)

	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	job, err := s.Submit(Request{Format: "phg", Netlist: tinyPHG, Device: "XC3020", Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	snap := s.Snapshot(job)
	if snap.State != StateFailed || !errors.Is(snap.Err, context.DeadlineExceeded) {
		t.Fatalf("timed-out job: got %s (%v)", snap.State, snap.Err)
	}
}

func TestFingerprintSemantics(t *testing.T) {
	dev, _ := device.ByName("XC3020")
	load := func(body string) *hypergraph.Hypergraph {
		c, err := driver.Load(driver.Source{Reader: strings.NewReader(body), Format: "phg"}, dev)
		if err != nil {
			t.Fatal(err)
		}
		return c.Hypergraph
	}
	a := load(tinyPHG)
	b := load(tinyPHG)
	if Fingerprint(a, dev, "fpart", "") != Fingerprint(b, dev, "fpart", "") {
		t.Fatal("identical content must fingerprint identically")
	}
	// Renamed nodes, same structure: still identical (content addressing).
	renamed := "phg\nnode x 2\nnode y 2\nnode z 2\nnode w 2\npad r\npad s\nnet m1 0 1 4\nnet m2 1 2\nnet m3 2 3 5\nnet m4 0 3\n"
	if Fingerprint(load(renamed), dev, "fpart", "") != Fingerprint(a, dev, "fpart", "") {
		t.Fatal("names must not affect the fingerprint")
	}
	if Fingerprint(a, dev, "kwayx", "") == Fingerprint(a, dev, "fpart", "") {
		t.Fatal("method must affect the fingerprint")
	}
	dev2, _ := device.ByName("XC3042")
	if Fingerprint(a, dev2, "fpart", "") == Fingerprint(a, dev, "fpart", "") {
		t.Fatal("device must affect the fingerprint")
	}
	if Fingerprint(a, dev.WithFill(0.5), "fpart", "") == Fingerprint(a, dev, "fpart", "") {
		t.Fatal("fill override must affect the fingerprint")
	}
	structDiff := "phg\nnode a 1\nnode b 2\nnode c 2\nnode d 2\npad p\npad q\nnet n1 0 1 4\nnet n2 1 2\nnet n3 2 3 5\nnet n4 0 3\n"
	if Fingerprint(load(structDiff), dev, "fpart", "") == Fingerprint(a, dev, "fpart", "") {
		t.Fatal("structure must affect the fingerprint")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.add("a", cacheEntry{})
	c.add("b", cacheEntry{})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.add("c", cacheEntry{}) // evicts b (a was just touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if c.len() != 2 {
		t.Fatalf("cache len: want 2, got %d", c.len())
	}
}

func TestJobRetention(t *testing.T) {
	s := New(Config{Workers: 1, JobRetention: 3, QueueDepth: 16})
	defer shutdownClean(t, s)

	var last *Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(phgRequest(uniquePHG(20 + i)))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		last = j
	}
	if got := len(s.Jobs()); got > 3 {
		t.Fatalf("retention: want ≤3 jobs retained, got %d", got)
	}
	if _, ok := s.Job(last.ID()); !ok {
		t.Fatal("most recent job must stay queryable")
	}
}

func TestLimitsRejectHostileUpload(t *testing.T) {
	s := New(Config{Workers: 1, Limits: netlist.Limits{MaxNodes: 3}})
	defer shutdownClean(t, s)
	_, err := s.Submit(phgRequest(tinyPHG)) // 6 nodes > limit 3
	var le *netlist.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("hostile upload should hit a LimitError, got %v", err)
	}
}
