package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpart/internal/cluster"
	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/hypergraph"
	"fpart/internal/store"
)

// gateRuns replaces s.run with a gated real run: each run parks on the
// returned release channel (after signalling started) before executing.
func gateRuns(s *Service, depth int) (started chan struct{}, release chan struct{}) {
	started = make(chan struct{}, depth)
	release = make(chan struct{})
	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return driver.RunOpts(context.Background(), method, h, dev, opts)
	}
	return started, release
}

// TestStorePersistsAcrossRestart is the tentpole acceptance criterion for
// the disk layer: a result computed by one service process is served as a
// cache hit by a fresh process sharing the data directory.
func TestStorePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	s1 := New(Config{Workers: 1, Store: st})
	job, err := s1.Submit(phgRequest(tinyPHG))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	first := s1.Snapshot(job)
	if first.State != StateDone {
		t.Fatalf("job ended %s (%v)", first.State, first.Err)
	}
	shutdownClean(t, s1)

	// A new process over the same directory: the memory cache is cold, the
	// disk layer is not.
	st2, err := store.Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Store: st2})
	defer shutdownClean(t, s2)

	job2, err := s2.Submit(phgRequest(tinyPHG))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job2)
	snap := s2.Snapshot(job2)
	if snap.State != StateDone || !snap.Cached {
		t.Fatalf("restarted service should answer from disk: state=%s cached=%v", snap.State, snap.Cached)
	}
	if s2.m.storeHits.Load() != 1 || s2.m.computations.Load() != 0 {
		t.Fatalf("want 1 store hit and 0 computations, got %d/%d",
			s2.m.storeHits.Load(), s2.m.computations.Load())
	}
	// The rebuilt result matches the original run exactly.
	if snap.Result.K != first.Result.K || snap.Result.Feasible != first.Result.Feasible {
		t.Fatalf("rebuilt result diverged: k=%d/%d feasible=%v/%v",
			snap.Result.K, first.Result.K, snap.Result.Feasible, first.Result.Feasible)
	}
	if snap.Report.Cut != first.Report.Cut {
		t.Fatalf("rebuilt quality diverged: cut %v vs %v", snap.Report.Cut, first.Report.Cut)
	}
	// The replayed event stream is the original run's, closed.
	if len(job2.Events().Events()) != len(job.Events().Events()) {
		t.Fatal("replayed event history must match the original run")
	}
}

// TestDegradeUnderQueuePressure: once the queue passes the DegradeAt
// fill fraction, an expensive submission runs on a cheaper engine and
// records the original method in DegradedFrom.
func TestDegradeUnderQueuePressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, DegradeAt: 0.5})
	defer shutdownClean(t, s)
	started, release := gateRuns(s, 8)
	defer close(release)

	// Occupy the worker, then fill the queue to the degradation threshold
	// (0.5 * 4 = 2 queued jobs).
	if _, err := s.Submit(phgRequest(uniquePHG(1))); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 2; i <= 3; i++ {
		if _, err := s.Submit(phgRequest(uniquePHG(i))); err != nil {
			t.Fatal(err)
		}
	}

	// tinyPHG is structurally distinct from every queued uniquePHG, so this
	// submission can neither cache-hit nor coalesce — it must queue or
	// degrade.
	job, err := s.Submit(Request{Format: "phg", Netlist: tinyPHG, Device: "XC3020", Method: "fpart"})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot(job)
	if snap.DegradedFrom != "fpart" {
		t.Fatalf("want degradation from fpart, got %q (method %q)", snap.DegradedFrom, snap.Method)
	}
	if snap.Method == "fpart" {
		t.Fatal("degraded job must run a cheaper engine")
	}
	if s.m.degraded.Load() != 1 {
		t.Fatalf("degraded counter: want 1, got %d", s.m.degraded.Load())
	}

	// Below the threshold nothing degrades.
	s2 := New(Config{Workers: 2, QueueDepth: 64})
	defer shutdownClean(t, s2)
	j2, err := s2.Submit(phgRequest(tinyPHG))
	if err != nil {
		t.Fatal(err)
	}
	if snap := s2.Snapshot(j2); snap.DegradedFrom != "" {
		t.Fatalf("unloaded service degraded a job to %q", snap.Method)
	}

	// DegradeAt < 0 disables the ladder even under pressure.
	s3 := New(Config{Workers: 1, QueueDepth: 1, DegradeAt: -1})
	defer shutdownClean(t, s3)
	started3, release3 := gateRuns(s3, 4)
	defer close(release3)
	if _, err := s3.Submit(phgRequest(uniquePHG(10))); err != nil {
		t.Fatal(err)
	}
	<-started3
	if _, err := s3.Submit(phgRequest(uniquePHG(11))); err != nil {
		t.Fatal(err)
	}
	j3, err := s3.Submit(Request{Format: "phg", Netlist: uniquePHG(12), Device: "XC3020", Method: "fpart"})
	if err == nil {
		if snap := s3.Snapshot(j3); snap.DegradedFrom != "" {
			t.Fatal("DegradeAt<0 must disable degradation")
		}
	}
}

// TestStealLifecycle walks the whole work-stealing handshake at the API
// level: victim hands its oldest queued job out, a thief service executes
// it through its own pipeline, and the pushed envelope completes the
// victim's job with a full result.
func TestStealLifecycle(t *testing.T) {
	victim := New(Config{Workers: 1, QueueDepth: 4, StealTTL: time.Minute})
	defer shutdownClean(t, victim)
	started, release := gateRuns(victim, 4)
	defer close(release)

	if _, err := victim.Submit(phgRequest(uniquePHG(1))); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := victim.Submit(phgRequest(uniquePHG(2)))
	if err != nil {
		t.Fatal(err)
	}

	sj, ok := victim.StealOne("thief-1")
	if !ok {
		t.Fatal("a queued job must be stealable")
	}
	if sj.ID != queued.ID() || sj.Spec.Netlist != uniquePHG(2) || sj.Spec.Device != "XC3020" {
		t.Fatalf("stolen spec mismatch: %+v", sj)
	}
	snap := victim.Snapshot(queued)
	if snap.State != StateRunning || !snap.Stolen || snap.Thief != "thief-1" {
		t.Fatalf("stolen job state: %+v", snap)
	}
	if _, ok := victim.StealOne("thief-2"); ok {
		t.Fatal("nothing else is queued; second steal must miss")
	}

	thief := New(Config{Workers: 1})
	defer shutdownClean(t, thief)
	env, err := thief.Execute(context.Background(), sj)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.CompleteStolen(sj.ID, env); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, queued)
	snap = victim.Snapshot(queued)
	if snap.State != StateDone || snap.Result == nil || snap.Report == nil {
		t.Fatalf("stolen job must complete with a result: %+v", snap)
	}
	if victim.m.stolenCompleted.Load() != 1 || victim.m.computations.Load() != 0 {
		t.Fatalf("victim counters: completed=%d computations=%d",
			victim.m.stolenCompleted.Load(), victim.m.computations.Load())
	}
	// A duplicate (stale) push is dropped without error.
	if err := victim.CompleteStolen(sj.ID, env); err != nil {
		t.Fatalf("stale push must be tolerated: %v", err)
	}
}

// TestStealTTLRequeue: when the thief never pushes a result, the victim
// requeues the job locally and finishes it itself.
func TestStealTTLRequeue(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, StealTTL: 50 * time.Millisecond})
	defer shutdownClean(t, s)
	started, release := gateRuns(s, 4)

	if _, err := s.Submit(phgRequest(uniquePHG(1))); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(phgRequest(uniquePHG(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.StealOne("vanishing-thief"); !ok {
		t.Fatal("steal must succeed")
	}

	deadline := time.After(5 * time.Second)
	for s.m.stealRequeued.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("stolen job was never requeued")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(release)
	waitTerminal(t, queued)
	if snap := s.Snapshot(queued); snap.State != StateDone {
		t.Fatalf("requeued job ended %s (%v)", snap.State, snap.Err)
	}
}

// TestBatchGroup fans one circuit across devices, tracking per-device
// admission errors and group completion.
func TestBatchGroup(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownClean(t, s)

	g, err := s.SubmitBatch(Request{Format: "phg", Netlist: tinyPHG},
		[]string{"XC3020", "XC3042", "no-such-part"})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range g.Items() {
		if it.Job != nil {
			waitTerminal(t, it.Job)
		}
	}
	got, ok := s.Group(g.ID())
	if !ok || got != g {
		t.Fatal("group must be queryable by ID")
	}
	snap := s.SnapshotGroup(g)
	if len(snap.Jobs) != 2 || len(snap.Rejected) != 1 || !snap.Complete {
		t.Fatalf("group snapshot: %d jobs, %d rejected, complete=%v",
			len(snap.Jobs), len(snap.Rejected), snap.Complete)
	}
	if _, bad := snap.Rejected["no-such-part"]; !bad {
		t.Fatal("the unknown device must be recorded as rejected")
	}
	for _, js := range snap.Jobs {
		if js.State != StateDone {
			t.Fatalf("group job %s ended %s", js.ID, js.State)
		}
	}

	// All-rejected batches fail outright; so do empty and oversized ones.
	if _, err := s.SubmitBatch(Request{Format: "phg", Netlist: tinyPHG}, []string{"bogus"}); err == nil {
		t.Fatal("all-rejected batch must error")
	}
	if _, err := s.SubmitBatch(Request{Format: "phg", Netlist: tinyPHG}, nil); err == nil {
		t.Fatal("empty batch must error")
	}
	many := make([]string, MaxBatchDevices+1)
	for i := range many {
		many[i] = "XC3020"
	}
	if _, err := s.SubmitBatch(Request{Format: "phg", Netlist: tinyPHG}, many); err == nil {
		t.Fatal("oversized batch must error")
	}
}

// TestHTTPBatchAndGroups drives the batch fan-out through the HTTP API:
// submit, poll the group, and drain its merged event stream.
func TestHTTPBatchAndGroups(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownClean(t, s)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"format":"phg","netlist":%q,"devices":["XC3020","XC3042"]}`, tinyPHG)
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var gv GroupView
	if err := json.NewDecoder(resp.Body).Decode(&gv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || len(gv.Jobs) != 2 {
		t.Fatalf("batch submit: HTTP %d, %d jobs", resp.StatusCode, len(gv.Jobs))
	}

	// The merged event stream ends once both jobs are terminal, each line
	// tagged with its job and device.
	resp, err = http.Get(srv.URL + "/v1/groups/" + gv.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	devices := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Job    string          `json:"job"`
			Device string          `json:"device"`
			Event  json.RawMessage `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Job == "" || line.Device == "" || len(line.Event) == 0 {
			t.Fatalf("untagged event line: %q", sc.Text())
		}
		devices[line.Device] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !devices["XC3020"] || !devices["XC3042"] {
		t.Fatalf("event stream missing a device: %v", devices)
	}

	// Group status is queryable and eventually complete.
	deadline := time.After(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/groups/" + gv.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got GroupView
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.Complete {
			for _, jv := range got.Jobs {
				if jv.State != StateDone {
					t.Fatalf("group job %s ended %s", jv.ID, jv.State)
				}
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("group never completed")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if resp, err := http.Get(srv.URL + "/v1/groups/grp-999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown group must 404, got %v %v", resp.StatusCode, err)
	}
}

// clusterPair starts two HTTP services joined into one two-peer cluster
// and returns them with their advertise addresses.
func clusterPair(t *testing.T) (sA, sB *Service, addrA, addrB string) {
	t.Helper()
	sA = New(Config{Workers: 1})
	sB = New(Config{Workers: 1})
	srvA := httptest.NewServer(sA.Handler())
	srvB := httptest.NewServer(sB.Handler())
	t.Cleanup(func() {
		srvA.Close()
		srvB.Close()
		shutdownClean(t, sA)
		shutdownClean(t, sB)
	})
	addrA = strings.TrimPrefix(srvA.URL, "http://")
	addrB = strings.TrimPrefix(srvB.URL, "http://")
	peers := []string{addrA, addrB}
	nA, err := cluster.New(cluster.Config{Self: addrA, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	nB, err := cluster.New(cluster.Config{Self: addrB, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	sA.SetCluster(nA)
	sB.SetCluster(nB)
	return sA, sB, addrA, addrB
}

// TestHTTPForwardToOwner: a submission POSTed to the non-owning peer is
// forwarded to the ring owner, executes there, and the owner's cache
// serves the resubmission — the tentpole's routing acceptance criterion.
func TestHTTPForwardToOwner(t *testing.T) {
	sA, sB, addrA, addrB := clusterPair(t)

	prep, err := sA.prepare(phgRequest(tinyPHG))
	if err != nil {
		t.Fatal(err)
	}
	owner := sA.Cluster().Owner(prep.key)
	if owner != sB.Cluster().Owner(prep.key) {
		t.Fatal("peers disagree on ring ownership")
	}
	nonOwner := addrA
	ownerSvc, otherSvc := sB, sA
	if owner == addrA {
		nonOwner = addrB
		ownerSvc, otherSvc = sA, sB
	}

	body := fmt.Sprintf(`{"format":"phg","netlist":%q,"device":"XC3020"}`, tinyPHG)
	resp, err := http.Post("http://"+nonOwner+"/v1/partition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(cluster.PeerHeader); got != owner {
		t.Fatalf("handled by %q, want owner %q", got, owner)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded submit: HTTP %d", resp.StatusCode)
	}
	// The job lives on the owner, not on the receiving peer.
	if _, ok := ownerSvc.Job(jv.ID); !ok {
		t.Fatal("owner must hold the forwarded job")
	}
	if _, ok := otherSvc.Job(jv.ID); ok {
		t.Fatal("non-owner must not duplicate the job")
	}
	job, _ := ownerSvc.Job(jv.ID)
	waitTerminal(t, job)

	// Resubmitting anywhere now answers from the owner's cache (HTTP 200).
	resp, err = http.Post("http://"+nonOwner+"/v1/partition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !jv.Cached {
		t.Fatalf("resubmit: HTTP %d cached=%v, want owner cache hit", resp.StatusCode, jv.Cached)
	}
	forwards, _, _, _ := otherSvc.Cluster().Counters()
	if forwards != 2 {
		t.Fatalf("forward counter: want 2, got %d", forwards)
	}
}

// TestHTTPForwardFallback: when the ring owner is unreachable, the
// receiving peer runs the job locally instead of failing the request.
func TestHTTPForwardFallback(t *testing.T) {
	sA := New(Config{Workers: 1})
	defer shutdownClean(t, sA)
	srvA := httptest.NewServer(sA.Handler())
	defer srvA.Close()
	addrA := strings.TrimPrefix(srvA.URL, "http://")

	// Peer B is listed in the membership but never started: whenever the
	// ring routes there, the forward must fall back to local execution.
	deadPeer := "127.0.0.1:1" // reserved port; connections fail fast
	nA, err := cluster.New(cluster.Config{Self: addrA, Peers: []string{addrA, deadPeer}})
	if err != nil {
		t.Fatal(err)
	}
	sA.SetCluster(nA)

	// Find a request the dead peer owns (the fill ratio is part of the
	// fingerprint, so sweeping it yields distinct keys).
	body := ""
	for i := 0; i < 64; i++ {
		fill := 0.5 + float64(i)/128
		req := phgRequest(tinyPHG)
		req.Fill = fill
		prep, err := sA.prepare(req)
		if err != nil {
			t.Fatal(err)
		}
		if nA.Owner(prep.key) == deadPeer {
			body = fmt.Sprintf(`{"format":"phg","netlist":%q,"device":"XC3020","fill":%g}`, tinyPHG, fill)
			break
		}
	}
	if body == "" {
		t.Fatal("no key routed to the dead peer; ring is suspiciously unbalanced")
	}

	resp, err := http.Post(srvA.URL+"/v1/partition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(cluster.PeerHeader); got != addrA {
		t.Fatalf("fallback must be served locally by %q, got %q", addrA, got)
	}
	job, ok := sA.Job(jv.ID)
	if !ok {
		t.Fatal("fallback job must exist locally")
	}
	waitTerminal(t, job)
	if snap := sA.Snapshot(job); snap.State != StateDone {
		t.Fatalf("fallback job ended %s (%v)", snap.State, snap.Err)
	}
	_, fallbacks, _, _ := nA.Counters()
	if fallbacks != 1 {
		t.Fatalf("fallback counter: want 1, got %d", fallbacks)
	}
}

// TestHTTPStealEndpoints exercises the steal wire protocol over real
// HTTP: 204 when idle, a job spec when loaded, and result push-back.
func TestHTTPStealEndpoints(t *testing.T) {
	victim := New(Config{Workers: 1, QueueDepth: 4, StealTTL: time.Minute})
	defer shutdownClean(t, victim)
	started, release := gateRuns(victim, 4)
	defer close(release)
	srv := httptest.NewServer(victim.Handler())
	defer srv.Close()

	// Idle victim: nothing to steal.
	resp, err := http.Post(srv.URL+"/v1/steal", "application/json", strings.NewReader(`{"from":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle steal: HTTP %d, want 204", resp.StatusCode)
	}

	// Load the victim: one running, one queued.
	if _, err := victim.Submit(phgRequest(uniquePHG(1))); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := victim.Submit(phgRequest(uniquePHG(2)))
	if err != nil {
		t.Fatal(err)
	}

	thiefNode, err := cluster.New(cluster.Config{
		Self:  "thief:0",
		Peers: []string{"thief:0", strings.TrimPrefix(srv.URL, "http://")},
	})
	if err != nil {
		t.Fatal(err)
	}
	sj, ok, err := thiefNode.StealFrom(context.Background(), strings.TrimPrefix(srv.URL, "http://"))
	if err != nil || !ok {
		t.Fatalf("steal over HTTP: ok=%v err=%v", ok, err)
	}
	if sj.ID != queued.ID() {
		t.Fatalf("stole %s, want %s", sj.ID, queued.ID())
	}

	thief := New(Config{Workers: 1})
	defer shutdownClean(t, thief)
	env, err := thief.Execute(context.Background(), sj)
	if err != nil {
		t.Fatal(err)
	}
	if err := thiefNode.PushResult(context.Background(), strings.TrimPrefix(srv.URL, "http://"), sj.ID, env); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, queued)
	if snap := victim.Snapshot(queued); snap.State != StateDone || snap.Result == nil {
		t.Fatalf("pushed result must complete the job: %+v", snap)
	}

	// A push for an unknown job is a client error.
	bad, _ := json.Marshal(map[string]any{"id": "job-999999", "envelope": json.RawMessage(env)})
	resp, err = http.Post(srv.URL+"/v1/internal/result", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-job push: HTTP %d, want 400", resp.StatusCode)
	}
}
