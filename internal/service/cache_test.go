package service

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/hypergraph"
)

// TestFingerprintRenameStability pins the content-addressing contract
// one axis at a time: renaming only the nets, or only the nodes, of a
// netlist must not move its fingerprint — the two uploads are the same
// computation — while any structural edit must.
func TestFingerprintRenameStability(t *testing.T) {
	dev, _ := device.ByName("XC3020")
	load := func(body string) *hypergraph.Hypergraph {
		c, err := driver.Load(driver.Source{Reader: strings.NewReader(body), Format: "phg"}, dev)
		if err != nil {
			t.Fatal(err)
		}
		return c.Hypergraph
	}
	base := Fingerprint(load(tinyPHG), dev, "fpart", "")

	netsRenamed := strings.NewReplacer("net n1", "net alpha", "net n2", "net beta",
		"net n3", "net gamma", "net n4", "net delta").Replace(tinyPHG)
	if Fingerprint(load(netsRenamed), dev, "fpart", "") != base {
		t.Fatal("net names must not affect the fingerprint")
	}

	nodesRenamed := strings.NewReplacer("node a", "node u0", "node b", "node u1",
		"node c", "node u2", "node d", "node u3", "pad p", "pad io0", "pad q", "pad io1").Replace(tinyPHG)
	if Fingerprint(load(nodesRenamed), dev, "fpart", "") != base {
		t.Fatal("node and pad names must not affect the fingerprint")
	}

	// A one-pin structural edit moves it.
	edited := strings.Replace(tinyPHG, "net n2 1 2", "net n2 1 3", 1)
	if Fingerprint(load(edited), dev, "fpart", "") == base {
		t.Fatal("pin edits must move the fingerprint")
	}
}

// TestCacheConcurrentGetAdd hammers the LRU with mixed get/add traffic
// from many goroutines (under the same external locking discipline the
// service uses) and then checks the structure is still coherent and
// still evicts in recency order. The -race leg of verify.sh runs this.
func TestCacheConcurrentGetAdd(t *testing.T) {
	const capacity = 16
	c := newResultCache(capacity)
	var mu sync.Mutex

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("k%d", (w*31+i*7)%48)
				mu.Lock()
				if (w+i)%3 == 0 {
					c.add(key, cacheEntry{})
				} else {
					c.get(key)
				}
				if c.len() > capacity {
					mu.Unlock()
					panic("cache exceeded its capacity")
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Map and list agree entry-for-entry after the storm.
	if c.ll.Len() != len(c.m) {
		t.Fatalf("list has %d entries, map %d", c.ll.Len(), len(c.m))
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		it := el.Value.(*cacheItem)
		if c.m[it.key] != el {
			t.Fatalf("map entry for %q does not point at its list element", it.key)
		}
	}

	// Eviction order is still strict recency: refill with known keys,
	// touch the oldest, and overflow — the touched key survives, the
	// now-least-recent one goes.
	for i := 0; i < capacity; i++ {
		c.add(fmt.Sprintf("x%d", i), cacheEntry{})
	}
	c.get("x0")
	c.add("overflow", cacheEntry{})
	if _, ok := c.get("x0"); !ok {
		t.Fatal("recently touched x0 must survive the overflow")
	}
	if _, ok := c.get("x1"); ok {
		t.Fatal("least-recently-used x1 must have been evicted")
	}
}

// TestServiceCacheConcurrentCorrectness drives the real Submit path from
// many goroutines over a key set larger than the cache, so entries churn
// while lookups race admissions. Every job must finish Done and every
// fingerprint must always yield the same partitioning outcome no matter
// whether it came from the engine, the cache, or a coalesced ride.
func TestServiceCacheConcurrentCorrectness(t *testing.T) {
	s := New(Config{Workers: 4, CacheEntries: 4, QueueDepth: 256})
	defer shutdownClean(t, s)

	type outcome struct {
		k, cut int
	}
	var mu sync.Mutex
	seen := make(map[float64]outcome) // fill → first observed result

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				// 8 distinct fills → 8 fingerprints over a 4-entry cache.
				fill := 0.55 + float64((w+i)%8)/40
				req := phgRequest(tinyPHG)
				req.Fill = fill
				j, err := s.Submit(req)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				waitTerminal(t, j)
				snap := s.Snapshot(j)
				if snap.State != StateDone {
					t.Errorf("job ended %s (%v)", snap.State, snap.Err)
					return
				}
				got := outcome{k: snap.Result.K, cut: snap.Report.Cut}
				mu.Lock()
				if prev, ok := seen[fill]; !ok {
					seen[fill] = got
				} else if prev != got {
					t.Errorf("fill %v: result diverged %v vs %v", fill, prev, got)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if got := s.cache.len(); got > 4 {
		t.Fatalf("cache len %d exceeds capacity 4", got)
	}
}
