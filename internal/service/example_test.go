package service_test

import (
	"context"
	"fmt"
	"log"

	"fpart/internal/service"
)

// Example_submitAndCache embeds a six-node hypergraph, partitions it onto an
// XC3020, and resubmits the identical request: the second submission is
// answered from the content-addressed result cache without recomputation.
func Example_submitAndCache() {
	const netlist = `phg
node a 2
node b 2
node c 2
node d 2
pad p
pad q
net n1 0 1 4
net n2 1 2
net n3 2 3 5
net n4 0 3
`

	s := service.New(service.Config{Workers: 1})
	defer s.Shutdown(context.Background())

	submit := func() service.Snapshot {
		job, err := s.Submit(service.Request{
			Netlist: netlist,
			Format:  "phg",
			Device:  "XC3020",
			Method:  "fpart",
		})
		if err != nil {
			log.Fatal(err)
		}
		<-job.Done() // a cache hit is born done; a miss runs on the pool
		return s.Snapshot(job)
	}

	first := submit()
	second := submit()
	fmt.Printf("first: %s cached=%v feasible=%v\n", first.State, first.Cached, first.Result.Feasible)
	fmt.Printf("second: %s cached=%v\n", second.State, second.Cached)
	fmt.Printf("same key: %v\n", first.Key == second.Key)
	// Output:
	// first: done cached=false feasible=true
	// second: done cached=true
	// same key: true
}
