package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func pollDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		if resp := getJSON(t, ts, "/v1/jobs/"+id, &v); resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll: HTTP %d", resp.StatusCode)
		}
		switch v.State {
		case StateDone, StateFailed, StateCanceled:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobView{}
}

func TestHTTPSubmitPollEvents(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownClean(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/partition", apiRequest{
		Netlist: tinyPHG, Format: "phg", Device: "XC3020",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: want 202, got %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Key == "" {
		t.Fatalf("submit view missing id/key: %s", body)
	}

	final := pollDone(t, ts, v.ID)
	if final.State != StateDone || final.K < 1 || final.Quality == nil || final.Stats == nil {
		t.Fatalf("final view incomplete: %+v", final)
	}
	if final.Error != "" {
		t.Fatalf("unexpected error: %s", final.Error)
	}

	// The assignment is withheld by default and served on request.
	if final.Assignment != nil {
		t.Fatal("assignment should be opt-in")
	}
	var withAssign JobView
	getJSON(t, ts, "/v1/jobs/"+v.ID+"?assignment=1", &withAssign)
	if len(withAssign.Assignment) != 6 {
		t.Fatalf("assignment: want 6 entries, got %d", len(withAssign.Assignment))
	}

	// The completed job's event stream replays as NDJSON and terminates.
	eresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type: %s", ct)
	}
	var events []obs.Event
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) == 0 || events[0].Type != obs.RunStart || events[len(events)-1].Type != obs.RunEnd {
		t.Fatalf("event stream envelope wrong: %d events", len(events))
	}

	// Listing includes the job.
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	getJSON(t, ts, "/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Fatalf("list: %+v", list)
	}
}

func TestHTTPLiveEventStreaming(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)

	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock() // never leave the stub blocked when a Fatal unwinds
	started := make(chan struct{})
	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		em := obs.NewEmitter(opts.Sink, "test")
		em.Emit(obs.Event{Type: obs.RunStart})
		close(started)
		<-release
		em.Emit(obs.Event{Type: obs.RunEnd})
		return driver.RunOpts(context.Background(), method, h, dev, opts)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJSON(t, ts, "/v1/partition", apiRequest{Netlist: tinyPHG, Format: "phg", Device: "XC3020"})
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	<-started

	// Attach mid-run: we must see the replayed RunStart live-followed by
	// the rest of the stream, then EOF when the job completes.
	eresp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	sc := bufio.NewScanner(eresp.Body)
	if !sc.Scan() {
		t.Fatal("expected the replayed run-start before release")
	}
	var first obs.Event
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Type != obs.RunStart {
		t.Fatalf("first streamed event: %q (%v)", sc.Text(), err)
	}
	unblock()
	count := 1
	for sc.Scan() { // drains until the broadcast closes at job completion
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count < 2 {
		t.Fatalf("expected live events after release, got %d total", count)
	}
	pollDone(t, ts, v.ID)
}

func TestHTTPSSEFraming(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJSON(t, ts, "/v1/partition", apiRequest{Netlist: tinyPHG, Format: "phg", Device: "XC3020"})
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	pollDone(t, ts, v.ID)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type: %s", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	if !strings.HasPrefix(string(data), "data: ") {
		t.Fatalf("SSE framing missing: %q", string(data[:min(40, len(data))]))
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, MaxRequestBytes: 1 << 20})
	defer shutdownClean(t, s)

	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return driver.RunOpts(context.Background(), method, h, dev, opts)
	}
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 400: malformed body, unknown fields, invalid request.
	resp, err := http.Post(ts.URL+"/v1/partition", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: want 400, got %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/partition", map[string]any{"device": "XC3020", "bogus": 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: want 400, got %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/partition", apiRequest{Device: "XC3020"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request: want 400, got %d", resp.StatusCode)
	}

	// 400: unknown method, rejected at submit by the engine-registry lookup;
	// the error quotes the registry so the client sees what is valid.
	respM, bodyM := postJSON(t, ts, "/v1/partition", apiRequest{
		Netlist: uniquePHG(39), Format: "phg", Device: "XC3020", Method: "simulated-annealing",
	})
	if respM.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown method: want 400, got %d: %s", respM.StatusCode, bodyM)
	}
	for _, want := range []string{"simulated-annealing", "fpart", "kwayx", "multilevel"} {
		if !strings.Contains(string(bodyM), want) {
			t.Fatalf("unknown-method error should quote the registry (missing %q): %s", want, bodyM)
		}
	}

	// 404: unknown job.
	if resp := getJSON(t, ts, "/v1/jobs/job-999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: want 404, got %d", resp.StatusCode)
	}

	// 413: oversized body.
	big := apiRequest{Netlist: strings.Repeat("#", 2<<20), Format: "phg", Device: "XC3020"}
	if resp, _ := postJSON(t, ts, "/v1/partition", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: want 413, got %d", resp.StatusCode)
	}

	// 429: occupy the worker, fill the queue slot, overflow.
	if resp, body := postJSON(t, ts, "/v1/partition", apiRequest{Netlist: uniquePHG(40), Format: "phg", Device: "XC3020"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, body)
	}
	<-started
	if resp, body := postJSON(t, ts, "/v1/partition", apiRequest{Netlist: uniquePHG(41), Format: "phg", Device: "XC3020"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", resp.StatusCode, body)
	}
	resp429, body := postJSON(t, ts, "/v1/partition", apiRequest{Netlist: uniquePHG(42), Format: "phg", Device: "XC3020"})
	if resp429.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: want 429, got %d: %s", resp429.StatusCode, body)
	}
	if resp429.Header.Get("Retry-After") == "" {
		t.Fatal("429 should carry Retry-After")
	}
}

func TestHTTPCancel(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)

	started := make(chan struct{})
	s.run = func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJSON(t, ts, "/v1/partition", apiRequest{Netlist: tinyPHG, Format: "phg", Device: "XC3020"})
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	<-started

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: want 200, got %d", resp.StatusCode)
	}
	final := pollDone(t, ts, v.ID)
	if final.State != StateCanceled {
		t.Fatalf("cancelled job state: %s", final.State)
	}
}

func TestHTTPMetrics(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One miss, one hit.
	_, body := postJSON(t, ts, "/v1/partition", apiRequest{Netlist: tinyPHG, Format: "phg", Device: "XC3020"})
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	pollDone(t, ts, v.ID)
	if resp, _ := postJSON(t, ts, "/v1/partition", apiRequest{Netlist: tinyPHG, Format: "phg", Device: "XC3020"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("cache hit should answer 200, got %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"fpartd_queue_depth 0",
		"fpartd_workers 1",
		"fpartd_cache_hits_total 1",
		"fpartd_cache_misses_total 1",
		"fpartd_computations_total 1",
		"fpartd_cache_hit_rate 0.5000",
		`fpartd_phase_seconds_bucket{method="fpart",phase="improve",le="+Inf"} 1`,
		"fpartd_jobs_done_total 2",
		`fpartd_jobs_total{method="fpart",state="done"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", text)
	}

	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("healthz should be 200")
	}
}

// TestHTTPMethods covers the engine-registry discovery endpoint: the
// listing mirrors driver.Methods() order, carries capability flags, and
// every advertised name is accepted at submit.
func TestHTTPMethods(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownClean(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out struct {
		Methods []MethodView `json:"methods"`
	}
	if resp := getJSON(t, ts, "/methods", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/methods: want 200, got %d", resp.StatusCode)
	}
	want := driver.Methods()
	if len(out.Methods) != len(want) {
		t.Fatalf("want %d methods, got %+v", len(want), out.Methods)
	}
	for i, m := range out.Methods {
		if m.Name != want[i] {
			t.Fatalf("method %d: want %q, got %q", i, want[i], m.Name)
		}
		if !m.Cancellable || !m.Instrumented || m.Summary == "" {
			t.Fatalf("method %s should advertise cancellable+instrumented and a summary: %+v", m.Name, m)
		}
		if !m.BoardAware {
			t.Fatalf("method %s should advertise board_aware (every registered engine accepts the board gate)", m.Name)
		}
	}

	// Discovery is honest: every advertised method is accepted at submit.
	for _, m := range out.Methods {
		resp, body := postJSON(t, ts, "/v1/partition", apiRequest{
			Netlist: tinyPHG, Format: "phg", Device: "XC3020", Method: m.Name,
		})
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %s: %d %s", m.Name, resp.StatusCode, body)
		}
	}
}
