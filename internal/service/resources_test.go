package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/hypergraph"
)

// dspPHG is scalar-tiny (total size 5) but stamps a 9-DSP demand on one
// node, so it is unsplittable on any device whose DSP cap is below 9.
const dspPHG = `phg
node hog 1 DSP:9
node a 1
node b 1
node c 1
node d 1
pad p
net n1 0 1 5
net n2 1 2
net n3 2 3
net n4 3 4
`

// TestServiceResourceVectorEndToEnd is the fpartd half of the DSP-tight
// acceptance case: the same upload succeeds on a scalar device (undeclared
// resource axes never bind) and fails on a vector device whose DSP cap the
// hog node exceeds — with the failure naming the node and the resource.
func TestServiceResourceVectorEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)

	scalar, err := s.Submit(Request{Format: "phg", Netlist: dspPHG, Device: "LUT:50/64"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, scalar)
	if snap := s.Snapshot(scalar); snap.State != StateDone || !snap.Result.Feasible {
		t.Fatalf("scalar job ended %s (%v), want feasible done", snap.State, snap.Err)
	}

	vector, err := s.Submit(Request{Format: "phg", Netlist: dspPHG, Device: "LUT:50/64", Resources: "DSP:4"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, vector)
	snap := s.Snapshot(vector)
	if snap.State != StateFailed || snap.Err == nil {
		t.Fatalf("vector job ended %s (%v), want failed (DSP 9 > cap 4)", snap.State, snap.Err)
	}
	for _, want := range []string{"hog", "DSP"} {
		if !strings.Contains(snap.Err.Error(), want) {
			t.Errorf("failure should name %q: %v", want, snap.Err)
		}
	}

	// The two submissions must not share a cache key: the resource caps
	// are part of the fingerprint via the device parameters.
	if scalar.Key() == vector.Key() {
		t.Error("scalar and vector jobs coalesced onto one fingerprint")
	}

	// Bad specs are rejected at admission, naming the offending token.
	for _, req := range []Request{
		{Format: "phg", Netlist: dspPHG, Device: "LUT:0/64"},
		{Format: "phg", Netlist: dspPHG, Device: "LUT:50/64", Resources: "DSP:many"},
		{Format: "phg", Netlist: dspPHG, Device: "LUT:50/64", Resources: "DSP:4,DSP:8"},
		{Format: "phg", Netlist: dspPHG, Device: "LUT:50,DSP:2/64", Resources: "DSP:4"},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("request %+v should have been rejected", req)
		}
	}
}

// TestServiceBoardGating submits the same circuit against a permissive
// crossbar and a wire-starved chain: the partition is identical, but the
// board gate flips feasibility and the job view carries the routing report.
func TestServiceBoardGating(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)

	submit := func(boardSpec string) Snapshot {
		t.Helper()
		j, err := s.Submit(Request{Circuit: "c3540", Device: "XC3020", Board: boardSpec})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		snap := s.Snapshot(j)
		if snap.State != StateDone {
			t.Fatalf("board=%q job ended %s (%v)", boardSpec, snap.State, snap.Err)
		}
		return snap
	}

	open := submit("crossbar:16")
	if !open.Result.Feasible || open.Result.Board == nil || !open.Result.Board.Routable {
		t.Fatalf("crossbar run should be routable: %+v", open.Result.Board)
	}
	tight := submit("chain:16:wires=1")
	if tight.Result.Feasible {
		t.Fatal("one wire per chain link should not route a multi-block cut")
	}
	if open.Key == tight.Key {
		t.Error("different boards coalesced onto one fingerprint")
	}

	if _, err := s.Submit(Request{Circuit: "c3540", Device: "XC3020", Board: "torus:4"}); err == nil {
		t.Error("unknown board topology accepted")
	}
}

// TestHTTPBoardAndResources drives the new request fields through the wire
// format: the JSON body carries resources/board, and a gated job's view
// exposes the routing report.
func TestHTTPBoardAndResources(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownClean(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/v1/partition", apiRequest{
		Circuit: "c3540", Device: "XC3020", Board: "crossbar:16",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: want 202, got %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	final := pollDone(t, ts, v.ID)
	if final.State != StateDone || !final.Feasible {
		t.Fatalf("gated job ended %s feasible=%v (%s)", final.State, final.Feasible, final.Error)
	}
	if final.Board == nil || !final.Board.Routable || final.Board.InterNets < 1 {
		t.Fatalf("job view should carry the routing report: %+v", final.Board)
	}

	// A DSP-starved vector submission fails end to end over HTTP too.
	resp, body = postJSON(t, ts, "/v1/partition", apiRequest{
		Netlist: dspPHG, Format: "phg", Device: "LUT:50/64", Resources: "DSP:4",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("vector submit: want 202, got %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	final = pollDone(t, ts, v.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "DSP") {
		t.Fatalf("vector job should fail naming DSP, got %s: %q", final.State, final.Error)
	}

	// Bad specs map to 400 with the offending token in the message.
	resp, body = postJSON(t, ts, "/v1/partition", apiRequest{
		Circuit: "c3540", Device: "XC3020", Board: "mesh:4xfour",
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "4xfour") {
		t.Fatalf("bad board spec: want 400 naming the token, got %d: %s", resp.StatusCode, body)
	}
}

// TestFingerprintResourceColumns pins the cache-key rule for resource
// demands: two structurally identical uploads that differ only in a node's
// resource stamp are different computations, and the resource *name*
// matters (a DSP demand is not a BRAM demand).
func TestFingerprintResourceColumns(t *testing.T) {
	base := `phg
node a 1 DSP:2
node b 1
net n1 0 1
`
	variants := []string{
		strings.Replace(base, "DSP:2", "DSP:3", 1),
		strings.Replace(base, "DSP:2", "BRAM:2", 1),
		strings.Replace(base, "node a 1 DSP:2", "node a 1", 1),
	}
	dev, _ := device.ByName("XC3020")
	load := func(body string) *hypergraph.Hypergraph {
		c, err := driver.Load(driver.Source{Reader: strings.NewReader(body), Format: "phg"}, dev)
		if err != nil {
			t.Fatal(err)
		}
		return c.Hypergraph
	}
	ref := Fingerprint(load(base), dev, "fpart", "")
	for i, v := range variants {
		if Fingerprint(load(v), dev, "fpart", "") == ref {
			t.Errorf("variant %d: resource-demand change did not change the fingerprint", i)
		}
	}
	if Fingerprint(load(base), dev, "fpart", "chain:4") == ref {
		t.Error("board spec did not change the fingerprint")
	}
	if Fingerprint(load(base), dev, "fpart", "") != ref {
		t.Error("fingerprint is not deterministic")
	}
}
