package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"fpart/internal/obs"
)

// phaseBounds are the per-phase wall-time histogram bucket upper bounds,
// in seconds.
var phaseBounds = [...]float64{0.001, 0.01, 0.1, 1, 10}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket i counts observations ≤ phaseBounds[i]; +Inf is implicit).
type histogram struct {
	mu      sync.Mutex
	buckets [len(phaseBounds)]uint64
	count   uint64
	sum     float64
}

func (h *histogram) observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += seconds
	for i, b := range phaseBounds {
		if seconds <= b {
			h.buckets[i]++
		}
	}
}

// methodState keys the per-method job lifecycle counters.
type methodState struct {
	method string
	state  State
}

// metrics aggregates the service's operational counters. Counters are
// atomic so the hot paths never contend with the /metrics scrape; the
// per-method breakdowns live behind one small mutex because every method
// label is a map key.
type metrics struct {
	submitted    atomic.Int64
	done         atomic.Int64
	failed       atomic.Int64
	canceled     atomic.Int64
	rejected     atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	coalesced    atomic.Int64
	computations atomic.Int64
	busy         atomic.Int64

	specRounds atomic.Int64
	specWins   atomic.Int64
	specLosses atomic.Int64

	// Disk-store layer (service-side view; the store keeps its own
	// hit/miss/eviction counters).
	storeHits     atomic.Int64
	storeMisses   atomic.Int64
	storeBad      atomic.Int64
	storeFailures atomic.Int64

	// Cluster: stolen-job lifecycle on the victim side, plus degradation
	// and batch activity.
	stolenServed    atomic.Int64
	stolenCompleted atomic.Int64
	stealRequeued   atomic.Int64
	degraded        atomic.Int64
	batchGroups     atomic.Int64

	mu sync.Mutex
	// jobs counts terminal jobs per (method, state):
	// fpartd_jobs_total{method,state}.
	jobs map[methodState]int64
	// phase holds the per-phase wall-time histograms per method:
	// fpartd_phase_seconds{method,phase}.
	phase map[string]*[obs.NumPhases]histogram
}

func (m *metrics) finished(method string, state State) {
	switch state {
	case StateDone:
		m.done.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCanceled:
		m.canceled.Add(1)
	default:
		return
	}
	m.mu.Lock()
	if m.jobs == nil {
		m.jobs = make(map[methodState]int64)
	}
	m.jobs[methodState{method, state}]++
	m.mu.Unlock()
}

// observePhases folds one completed run's per-phase wall times and
// speculation outcomes into the method's aggregates.
func (m *metrics) observePhases(method string, st *obs.Stats) {
	m.mu.Lock()
	if m.phase == nil {
		m.phase = make(map[string]*[obs.NumPhases]histogram)
	}
	hs, ok := m.phase[method]
	if !ok {
		hs = new([obs.NumPhases]histogram)
		m.phase[method] = hs
	}
	m.mu.Unlock()
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		hs[p].observe(st.PhaseTime[p].Seconds())
	}
	m.specRounds.Add(int64(st.SpecRounds))
	m.specWins.Add(int64(st.SpecWins))
	m.specLosses.Add(int64(st.SpecLosses))
}

// meanRunSeconds is the degradation ladder's cost model: the measured
// mean wall time of one run of method, summed across its per-phase
// histograms. ok is false until at least one run completed.
func (m *metrics) meanRunSeconds(method string) (float64, bool) {
	m.mu.Lock()
	hs, ok := m.phase[method]
	m.mu.Unlock()
	if !ok {
		return 0, false
	}
	var total float64
	var count uint64
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		h := &hs[p]
		h.mu.Lock()
		total += h.sum
		count = h.count // every phase is observed once per run
		h.mu.Unlock()
	}
	if count == 0 {
		return 0, false
	}
	return total / float64(count), true
}

// hitRate is cache hits (including coalesced riders) over all admissions
// that could have hit.
func (m *metrics) hitRate() float64 {
	hits := m.cacheHits.Load() + m.coalesced.Load()
	total := hits + m.cacheMisses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// WriteMetrics renders the Prometheus text exposition of the service's
// state: queue depth, worker utilization, cache effectiveness, job
// lifecycle counters, and the per-phase timing histograms.
func (s *Service) WriteMetrics(w io.Writer) {
	s.mu.Lock()
	cacheLen := s.cache.len()
	jobsRetained := len(s.jobs)
	s.mu.Unlock()

	g := func(name string, v any, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	c := func(name string, v int64, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	g("fpartd_queue_depth", len(s.queue), "admitted jobs waiting for a worker")
	g("fpartd_queue_capacity", cap(s.queue), "bounded queue size")
	g("fpartd_workers", s.cfg.Workers, "worker pool size")
	g("fpartd_workers_busy", s.m.busy.Load(), "workers currently partitioning")
	g("fpartd_cache_entries", cacheLen, "memoized results")
	g("fpartd_cache_hit_rate", fmt.Sprintf("%.4f", s.m.hitRate()), "cache hits (incl. coalesced) / lookups")
	g("fpartd_jobs_retained", jobsRetained, "jobs queryable via the API")

	c("fpartd_jobs_submitted_total", s.m.submitted.Load(), "admitted submissions")
	c("fpartd_jobs_done_total", s.m.done.Load(), "jobs finished successfully")
	c("fpartd_jobs_failed_total", s.m.failed.Load(), "jobs finished with an error")
	c("fpartd_jobs_canceled_total", s.m.canceled.Load(), "jobs canceled or aborted")

	// Per-method job lifecycle, labelled by the engine-registry method name.
	s.m.mu.Lock()
	keys := make([]methodState, 0, len(s.m.jobs))
	for k := range s.m.jobs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].method != keys[j].method {
			return keys[i].method < keys[j].method
		}
		return keys[i].state < keys[j].state
	})
	fmt.Fprintf(w, "# HELP fpartd_jobs_total terminal jobs by method and state\n# TYPE fpartd_jobs_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "fpartd_jobs_total{method=%q,state=%q} %d\n", k.method, string(k.state), s.m.jobs[k])
	}
	s.m.mu.Unlock()

	c("fpartd_jobs_rejected_total", s.m.rejected.Load(), "submissions rejected by queue backpressure")
	c("fpartd_cache_hits_total", s.m.cacheHits.Load(), "submissions answered from the result cache")
	c("fpartd_cache_misses_total", s.m.cacheMisses.Load(), "submissions that queued a computation")
	c("fpartd_coalesced_total", s.m.coalesced.Load(), "submissions coalesced onto an in-flight computation")
	c("fpartd_computations_total", s.m.computations.Load(), "partitioning runs executed by the pool")
	c("fpartd_spec_rounds_total", s.m.specRounds.Load(), "speculative peeling rounds raced")
	c("fpartd_spec_wins_total", s.m.specWins.Load(), "speculative rounds won by a non-base candidate")
	c("fpartd_spec_losses_total", s.m.specLosses.Load(), "speculative candidates discarded")

	c("fpartd_degraded_total", s.m.degraded.Load(), "admissions degraded to a cheaper engine under load")
	c("fpartd_batch_groups_total", s.m.batchGroups.Load(), "batch job groups admitted")
	c("fpartd_stolen_served_total", s.m.stolenServed.Load(), "queued jobs handed to stealing peers")
	c("fpartd_stolen_completed_total", s.m.stolenCompleted.Load(), "stolen jobs completed by a peer's result push")
	c("fpartd_steal_requeued_total", s.m.stealRequeued.Load(), "stolen jobs requeued after the thief went silent")

	if st := s.cfg.Store; st != nil {
		ss := st.StatsNow()
		g("fpartd_store_entries", ss.Entries, "results persisted on disk")
		g("fpartd_store_bytes", ss.Bytes, "bytes of persisted results on disk")
		c("fpartd_store_hits_total", ss.Hits, "disk-store lookups that returned a result")
		c("fpartd_store_misses_total", ss.Misses, "disk-store lookups that found nothing")
		c("fpartd_store_writes_total", ss.Writes, "results written to the disk store")
		c("fpartd_store_evictions_total", ss.Evictions, "results evicted to respect the byte budget")
		c("fpartd_store_corrupt_total", ss.Corrupt, "persisted entries dropped as corrupt")
		c("fpartd_store_decode_errors_total", s.m.storeBad.Load(), "persisted payloads the service could not rebuild")
		c("fpartd_store_write_failures_total", s.m.storeFailures.Load(), "results the service failed to persist")
	}
	if n := s.clusterNode; n != nil {
		forwards, fallbacks, steals, stealFails := n.Counters()
		c("fpartd_forward_total", forwards, "submissions forwarded to their owning peer")
		c("fpartd_forward_fallback_total", fallbacks, "forwards that fell back to local execution")
		c("fpartd_steal_total", steals, "jobs stolen from busy peers")
		c("fpartd_steal_failures_total", stealFails, "steal attempts that failed in transit")
	}

	const hn = "fpartd_phase_seconds"
	fmt.Fprintf(w, "# HELP %s wall time per algorithm phase per run, by method\n# TYPE %s histogram\n", hn, hn)
	s.m.mu.Lock()
	methods := make([]string, 0, len(s.m.phase))
	for method := range s.m.phase {
		methods = append(methods, method)
	}
	sort.Strings(methods)
	s.m.mu.Unlock()
	for _, method := range methods {
		s.m.mu.Lock()
		hs := s.m.phase[method]
		s.m.mu.Unlock()
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			h := &hs[p]
			h.mu.Lock()
			for i, b := range phaseBounds {
				fmt.Fprintf(w, "%s_bucket{method=%q,phase=%q,le=%q} %d\n", hn, method, p.String(), fmt.Sprintf("%g", b), h.buckets[i])
			}
			fmt.Fprintf(w, "%s_bucket{method=%q,phase=%q,le=\"+Inf\"} %d\n", hn, method, p.String(), h.count)
			fmt.Fprintf(w, "%s_sum{method=%q,phase=%q} %g\n", hn, method, p.String(), h.sum)
			fmt.Fprintf(w, "%s_count{method=%q,phase=%q} %d\n", hn, method, p.String(), h.count)
			h.mu.Unlock()
		}
	}
}
