package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/quality"
)

// Fingerprint computes the content-addressed cache key of one query: a
// SHA-256 over the canonicalized hypergraph structure (node kinds, sizes,
// aux demands, per-resource demand columns; net pin lists in declaration
// order), the resolved device parameters including its resource caps, the
// method, and the board spec the result is gated on ("" for none). Node
// and net *names* are deliberately excluded — two uploads of the same
// structure under different signal names are the same computation.
// Resource *names* are included: a DSP demand and a BRAM demand of the
// same magnitude bind against different device caps.
func Fingerprint(h *hypergraph.Hypergraph, dev device.Device, method, boardSpec string) string {
	hash := sha256.New()
	// dev's %v is its String(), which renders name, S_MAX, T_MAX, and δ but
	// not the resource vector — hash the caps explicitly.
	fmt.Fprintf(hash, "method=%s|device=%v|board=%s|", method, dev, boardSpec)
	for _, r := range dev.Resources {
		fmt.Fprintf(hash, "cap:%s=%d|", r.Name, r.Cap)
	}

	buf := make([]byte, 0, 64)
	flush := func() {
		hash.Write(buf)
		buf = buf[:0]
	}
	putInt := func(v int) {
		buf = binary.AppendUvarint(buf, uint64(v))
		if len(buf) >= 48 {
			flush()
		}
	}
	putInt(h.NumNodes())
	putInt(h.NumNets())
	for i := 0; i < h.NumNodes(); i++ {
		n := h.Node(hypergraph.NodeID(i))
		putInt(int(n.Kind))
		putInt(n.Size)
		putInt(n.Aux)
	}
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(hypergraph.NetID(e))
		putInt(len(pins))
		for _, p := range pins {
			putInt(int(p))
		}
	}
	flush()
	for _, name := range h.ResourceNames() {
		fmt.Fprintf(hash, "res=%s|", name)
		for _, d := range h.ResourceColumn(name) {
			putInt(int(d))
		}
		flush()
	}
	return hex.EncodeToString(hash.Sum(nil))
}

// cacheEntry is one memoized outcome: the partitioning result, its quality
// report, and the event stream of the run that produced it (replayed to
// subscribers of cached jobs).
type cacheEntry struct {
	res    *driver.Result
	report quality.Report
	events []obs.Event
}

// resultCache is a plain LRU over cache entries. It is not self-locking;
// the service mutex guards it.
type resultCache struct {
	max int
	ll  *list.List // front = most recently used; values are *cacheItem
	m   map[string]*list.Element
}

type cacheItem struct {
	key string
	ent cacheEntry
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (cacheEntry, bool) {
	el, ok := c.m[key]
	if !ok {
		return cacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).ent, true
}

func (c *resultCache) add(key string, ent cacheEntry) {
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheItem).ent = ent
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheItem{key: key, ent: ent})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheItem).key)
	}
}

func (c *resultCache) len() int { return c.ll.Len() }
