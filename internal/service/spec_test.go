package service

// Concurrency tests for speculative peeling through the daemon: two
// simultaneous jobs drawing engines and arenas from the shared pools, and
// the /metrics exposure of the speculation counters. Run under -race (the
// verify script's race leg includes this package).

import (
	"strings"
	"testing"

	"fpart/internal/hypergraph"
)

func TestConcurrentSpeculativeJobs(t *testing.T) {
	s := New(Config{Workers: 2, SpecWidth: 4})
	defer shutdownClean(t, s)

	// Two different built-in circuits so neither caching nor coalescing
	// collapses the pair: both run at once, racing 4 candidates each over
	// pooled arenas.
	a, err := s.Submit(Request{Circuit: "c3540", Device: "XC3042"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(Request{Circuit: "s5378", Device: "XC3042"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, a)
	waitTerminal(t, b)

	for _, j := range []*Job{a, b} {
		snap := s.Snapshot(j)
		if snap.State != StateDone {
			t.Fatalf("job %s: state %s (err %v)", snap.ID, snap.State, snap.Err)
		}
		if snap.Result == nil || !snap.Result.Feasible {
			t.Fatalf("job %s: no feasible result", snap.ID)
		}
		if err := snap.Result.Partition.Validate(); err != nil {
			t.Errorf("job %s: corrupt partition after pooled run: %v", snap.ID, err)
		}
		if snap.Result.Stats == nil || snap.Result.Stats.SpecRounds == 0 {
			t.Errorf("job %s: no speculation recorded under SpecWidth 4", snap.ID)
		}
	}

	var sb strings.Builder
	s.WriteMetrics(&sb)
	metrics := sb.String()
	for _, name := range []string{
		"fpartd_spec_rounds_total",
		"fpartd_spec_wins_total",
		"fpartd_spec_losses_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if strings.Contains(metrics, "fpartd_spec_rounds_total 0\n") {
		t.Error("spec rounds not folded into metrics")
	}
}

// TestServiceResultMatchesDirectRun: a pooled, budgeted daemon run must
// produce the same solution as a direct sequential-width call, whatever
// engines the pools hand out.
func TestServiceResultMatchesDirectRun(t *testing.T) {
	s := New(Config{Workers: 1, SpecWidth: 4})
	defer shutdownClean(t, s)
	j, err := s.Submit(Request{Circuit: "c3540", Device: "XC3042"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	snap := s.Snapshot(j)
	if snap.State != StateDone {
		t.Fatalf("state %s (err %v)", snap.State, snap.Err)
	}

	s2 := New(Config{Workers: 4, SpecWidth: 4})
	defer shutdownClean(t, s2)
	j2, err := s2.Submit(Request{Circuit: "c3540", Device: "XC3042"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j2)
	snap2 := s2.Snapshot(j2)
	if snap2.State != StateDone {
		t.Fatalf("state %s (err %v)", snap2.State, snap2.Err)
	}

	// Same width, different budgets: bit-identical assignments.
	p1, p2 := snap.Result.Partition, snap2.Result.Partition
	for v := 0; v < p1.Hypergraph().NumNodes(); v++ {
		if p1.Block(hypergraph.NodeID(v)) != p2.Block(hypergraph.NodeID(v)) {
			t.Fatalf("node %d assigned differently under 1 vs 4 workers", v)
		}
	}
}
