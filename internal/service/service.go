// Package service turns the one-shot partitioning pipeline into a
// long-running daemon: a bounded job queue feeding a worker pool, a
// content-addressed result cache, and live per-job event streaming.
//
// The shape of the system:
//
//	POST /v1/partition ──▶ admission ──▶ bounded queue ──▶ worker pool
//	                          │                                │
//	                          │ cache hit / in-flight          ▼
//	                          ▼ coalescing               driver.Run
//	                      result cache ◀──────────── quality.Analyze
//	                                                        │
//	     GET /v1/jobs/{id}/events ◀── obs.Broadcast fan-out ◀┘
//
// Partitioning is a repeatedly-invoked inner service inside larger CAD
// loops: the same circuit/device pair is queried many times under sweeps
// and what-if edits. The cache keys on the content of the canonicalized
// hypergraph plus device and method, so identical queries — whatever their
// transport or naming — return in O(1), and concurrent identical queries
// coalesce onto a single computation.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpart/internal/board"
	"fpart/internal/cluster"
	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/engine"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
	"fpart/internal/obs"
	"fpart/internal/quality"
	"fpart/internal/store"
)

// Config tunes the service. The zero value is production-ready.
type Config struct {
	// Workers sizes the worker pool and the shared CPU budget; 0 means
	// runtime.GOMAXPROCS(0) (via driver.ClampParallel).
	Workers int
	// SpecWidth is the speculative peeling width applied to fpart jobs
	// (driver.Options.SpecWidth); ≤ 1 runs the sequential peel. Speculation
	// draws its extra concurrency from the same Workers-sized budget the
	// job runners use, so jobs plus speculation never oversubscribe.
	SpecWidth int
	// QueueDepth bounds the number of admitted-but-unstarted jobs; a full
	// queue rejects submissions with ErrQueueFull (HTTP 429). 0 means 64.
	QueueDepth int
	// CacheEntries bounds the result cache; 0 means 128.
	CacheEntries int
	// JobRetention bounds how many finished jobs stay queryable; the
	// oldest finished jobs are forgotten first. 0 means 1024.
	JobRetention int
	// DefaultTimeout bounds each job's run when the submission does not
	// carry its own deadline; 0 means no limit.
	DefaultTimeout time.Duration
	// MaxRequestBytes caps an HTTP request body; 0 means 8 MiB.
	MaxRequestBytes int64
	// EventBuffer sizes each event subscriber's channel; 0 means 256.
	EventBuffer int
	// Limits bounds the netlist parsers for uploaded circuits; the zero
	// value applies netlist.DefaultLimits.
	Limits netlist.Limits
	// Store, when non-nil, is the disk-backed content-addressed result
	// store layered under the in-memory cache: completed runs are written
	// through, and a memory miss probes the disk before queueing a
	// computation, so results survive restarts (and arrive via work
	// stealing). nil keeps the service memory-only.
	Store *store.Store
	// DegradeAt is the queue-fill fraction at which admission control
	// degrades expensive methods to a cheaper registry engine instead of
	// rejecting with ErrQueueFull (0 = 0.75; negative disables
	// degradation).
	DegradeAt float64
	// StealTTL bounds how long a stolen job may stay out with a work
	// thief before the victim requeues it locally (0 = 30s).
	StealTTL time.Duration
	// GroupRetention bounds how many batch job groups stay queryable
	// (0 = 256).
	GroupRetention int
}

func (c Config) normalize() Config {
	c.Workers = driver.ClampParallel(c.Workers)
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 1024
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.DegradeAt == 0 {
		c.DegradeAt = 0.75
	}
	if c.StealTTL <= 0 {
		c.StealTTL = 30 * time.Second
	}
	if c.GroupRetention <= 0 {
		c.GroupRetention = 256
	}
	return c
}

// Errors surfaced by Submit; the HTTP layer maps them onto status codes.
var (
	// ErrQueueFull means admission succeeded but the queue is at capacity
	// (HTTP 429: retry with backoff).
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrShuttingDown means the service no longer admits jobs (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Request describes one partitioning submission. Exactly one of Circuit
// (a built-in benchmark) or Netlist (an uploaded netlist body in Format)
// must be set.
type Request struct {
	// Circuit names a built-in MCNC benchmark.
	Circuit string
	// Format and Netlist carry an uploaded netlist ("phg", "hgr", "blif").
	Format  string
	Netlist string
	// Arch is the BLIF CLB architecture ("" = device family default).
	Arch string
	// Device names the target FPGA (required): a catalog name, synthetic
	// CELLSxPINS, or a resource-vector spec like "LUT:1500,FF:3000/200".
	Device string
	// Resources appends extra resource caps ("DSP:12,BRAM:4") to the
	// device, whatever form Device took.
	Resources string
	// Board, when non-empty, gates the result on a multi-FPGA board
	// topology ("crossbar:N", "chain:N[:wires=W]", "mesh:CxR[:wires=W]"):
	// an unplaceable or unroutable solution reports Feasible=false.
	Board string
	// Fill overrides the device filling ratio δ (0 keeps the published
	// value).
	Fill float64
	// Method selects the partitioner ("" = "fpart").
	Method string
	// Timeout bounds this job's run (0 = the service default).
	Timeout time.Duration
}

// Job is one partitioning run owned by the service. All fields are
// maintained under the service mutex; read them through Snapshot.
type Job struct {
	id      string
	key     string
	method  string
	device  device.Device
	board   *board.Board
	circuit string

	h *hypergraph.Hypergraph
	// req retains the original submission (cleared at completion) so a
	// queued job can be handed to a work-stealing peer verbatim.
	req Request
	// degradedFrom names the method the client asked for when admission
	// control degraded this job to a cheaper engine ("" otherwise).
	degradedFrom string

	state     State
	cached    bool
	coalesced bool
	// stolen marks a queued job handed to the work-stealing peer named in
	// thief; stealTimer requeues it locally if no result comes back.
	stolen     bool
	thief      string
	stealTimer *time.Timer
	submitted  time.Time
	started    time.Time
	finished   time.Time

	bcast  *obs.Broadcast
	cancel context.CancelFunc
	// followers are identical-key jobs coalesced onto this leader; they
	// complete when it does.
	followers []*Job

	result *driver.Result
	report *quality.Report
	err    error
	done   chan struct{}

	timeout time.Duration
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's content-addressed cache key.
func (j *Job) Key() string { return j.key }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events returns the job's broadcast stream (shared with the coalescing
// leader for follower jobs).
func (j *Job) Events() *obs.Broadcast { return j.bcast }

// Snapshot is an immutable copy of a job's externally visible state.
type Snapshot struct {
	ID      string
	Key     string
	State   State
	Method  string
	Device  string
	Circuit string
	// DegradedFrom names the originally requested method when admission
	// control substituted a cheaper engine ("" when it did not).
	DegradedFrom string
	Cached       bool
	Coalesced    bool
	// Stolen reports that the job is (or was) out with the named work
	// thief.
	Stolen    bool
	Thief     string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Err       error
	// Result and Report are non-nil once State is StateDone.
	Result *driver.Result
	Report *quality.Report
}

// Service is the concurrent partitioning daemon core. Create one with New,
// serve its Handler, and stop it with Shutdown.
type Service struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing and retention
	inflight map[string]*Job
	cache    *resultCache
	groups   map[string]*Group
	grpOrder []string
	closed   bool

	// clusterNode is this peer's view of the fpartd cluster (nil when
	// running single-node). Set once via SetCluster before serving.
	clusterNode *cluster.Node

	queue   chan *Job
	wg      sync.WaitGroup
	baseCtx context.Context
	cancel  context.CancelFunc

	nextID    atomic.Int64
	nextGroup atomic.Int64
	m         metrics

	// budget is the shared CPU budget (capacity = Workers): job dispatches
	// hold one token each and in-run speculation borrows spare ones.
	budget *core.Budget

	// run dispatches a job's computation; tests substitute it to model
	// slow or failing runs.
	run func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error)
}

// New starts a service with cfg's worker pool running.
func New(cfg Config) *Service {
	cfg = cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		cache:    newResultCache(cfg.CacheEntries),
		groups:   make(map[string]*Group),
		queue:    make(chan *Job, cfg.QueueDepth),
		baseCtx:  ctx,
		cancel:   cancel,
		budget:   core.NewBudget(cfg.Workers),
		run:      driver.RunOpts,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the normalized configuration the service runs with.
func (s *Service) Config() Config { return s.cfg }

// SetCluster attaches this peer's cluster node: submissions whose
// fingerprint another peer owns are forwarded there, the steal endpoints
// go live, and the cluster counters join /metrics. Call it once, before
// the handler serves traffic.
func (s *Service) SetCluster(n *cluster.Node) { s.clusterNode = n }

// Cluster returns the attached cluster node (nil when single-node).
func (s *Service) Cluster() *cluster.Node { return s.clusterNode }

// prepared is a validated, circuit-loaded submission: everything needed
// to either admit it locally or route it to its owning peer.
type prepared struct {
	req     Request
	dev     device.Device
	board   *board.Board
	method  string
	circuit *driver.Circuit
	timeout time.Duration
	// key is the content-addressed fingerprint under the *requested*
	// method; admission may re-key if it degrades the method.
	key string
}

// prepare validates req and loads its circuit without touching the
// queue. The HTTP layer uses the returned fingerprint to route the
// submission across the cluster before committing to local admission.
func (s *Service) prepare(req Request) (*prepared, error) {
	dev, err := device.ParseSpec(req.Device)
	if err != nil {
		return nil, err
	}
	if req.Resources != "" {
		extra, err := device.ParseResources(req.Resources)
		if err != nil {
			return nil, err
		}
		if dev, err = dev.WithResources(extra); err != nil {
			return nil, err
		}
	}
	var brd *board.Board
	if req.Board != "" {
		b, err := board.ParseSpec(req.Board)
		if err != nil {
			return nil, err
		}
		brd = &b
	}
	if req.Fill != 0 {
		if req.Fill < 0 || req.Fill > 1 {
			return nil, fmt.Errorf("fill %v out of range (0,1]", req.Fill)
		}
		dev = dev.WithFill(req.Fill)
	}
	method := req.Method
	if method == "" {
		method = "fpart"
	}
	if !driver.ValidMethod(method) {
		return nil, fmt.Errorf("unknown method %q (valid: %v)", method, driver.Methods())
	}
	if (req.Circuit == "") == (req.Netlist == "") {
		return nil, errors.New("set exactly one of circuit (built-in) or netlist (upload)")
	}
	src := driver.Source{Builtin: req.Circuit, Arch: req.Arch, Limits: s.cfg.Limits}
	if req.Netlist != "" {
		src.Reader = strings.NewReader(req.Netlist)
		src.Format = req.Format
		src.Name = "upload." + req.Format
	}
	c, err := driver.Load(src, dev)
	if err != nil {
		return nil, err
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	return &prepared{
		req:     req,
		dev:     dev,
		board:   brd,
		method:  method,
		circuit: c,
		timeout: timeout,
		key:     Fingerprint(c.Hypergraph, dev, method, req.Board),
	}, nil
}

// Submit validates and admits one partitioning request. The returned job
// is already terminal for cache hits (memory or disk). ErrQueueFull and
// ErrShuttingDown report admission failures; other errors are invalid
// requests. Under queue pressure, admission may degrade the default
// expensive method to a cheaper registry engine — the job then reports
// the original method in Snapshot.DegradedFrom.
func (s *Service) Submit(req Request) (*Job, error) {
	prep, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	return s.submitPrepared(prep)
}

// submitPrepared admits a prepared submission: memory cache, in-flight
// coalescing, disk store, degradation ladder, then the bounded queue —
// in that order.
func (s *Service) submitPrepared(prep *prepared) (*Job, error) {
	method, key := prep.method, prep.key

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	job := &Job{
		id:        "job-" + strconv.FormatInt(s.nextID.Add(1), 10),
		device:    prep.dev,
		board:     prep.board,
		circuit:   prep.circuit.Name,
		h:         prep.circuit.Hypergraph,
		req:       prep.req,
		submitted: time.Now(),
		done:      make(chan struct{}),
		timeout:   prep.timeout,
	}

	for attempt := 0; ; attempt++ {
		job.method, job.key = method, key

		if ent, ok := s.cache.get(key); ok {
			// O(1) path: replay the cached outcome, including its event
			// stream, without touching the queue.
			s.m.cacheHits.Add(1)
			s.finishFromCacheLocked(job, ent)
			return job, nil
		}

		if leader, ok := s.inflight[key]; ok {
			// An identical computation is already queued or running: ride it.
			job.state = leader.state
			job.coalesced = true
			job.bcast = leader.bcast
			leader.followers = append(leader.followers, job)
			s.m.coalesced.Add(1)
			s.remember(job)
			return job, nil
		}

		if ent, ok := s.storeGetLocked(job); ok {
			// Disk layer: a previous process (or a peer's steal run)
			// already computed this fingerprint. Promote it to the memory
			// cache and answer without queueing.
			s.cache.add(key, ent)
			s.m.storeHits.Add(1)
			s.finishFromCacheLocked(job, ent)
			return job, nil
		}

		// Nothing memoized: this request costs a computation. If the
		// queue is near capacity and the method has a cheaper registered
		// engine, degrade once and retry the lookups under the new key —
		// a degraded request can still be a cache hit.
		if attempt == 0 && s.shouldDegradeLocked() {
			if alt, ok := s.cheaperEngineLocked(method); ok {
				job.degradedFrom = method
				method = alt
				key = Fingerprint(prep.circuit.Hypergraph, prep.dev, alt, prep.req.Board)
				s.m.degraded.Add(1)
				continue
			}
		}
		break
	}

	job.state = StateQueued
	job.bcast = obs.NewBroadcast()
	select {
	case s.queue <- job:
	default:
		s.m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.inflight[key] = job
	s.m.cacheMisses.Add(1)
	s.remember(job)
	return job, nil
}

// finishFromCacheLocked completes a freshly submitted job from a
// memoized entry, replaying the original run's event stream. Callers
// hold mu.
func (s *Service) finishFromCacheLocked(job *Job, ent cacheEntry) {
	job.state = StateDone
	job.cached = true
	job.started = job.submitted
	job.finished = job.submitted
	job.result = ent.res
	job.report = &ent.report
	job.req = Request{}
	job.bcast = obs.NewBroadcast()
	for _, e := range ent.events {
		job.bcast.Event(e)
	}
	job.bcast.Close()
	close(job.done)
	s.m.finished(job.method, StateDone)
	s.remember(job)
}

// storeGetLocked probes the disk store for the job's fingerprint and
// rebuilds the cache entry. Callers hold mu; the read is one small file.
func (s *Service) storeGetLocked(job *Job) (cacheEntry, bool) {
	if s.cfg.Store == nil {
		return cacheEntry{}, false
	}
	payload, ok := s.cfg.Store.Get(job.key)
	if !ok {
		s.m.storeMisses.Add(1)
		return cacheEntry{}, false
	}
	res, sr, err := decodeStored(payload, job.h)
	if err != nil {
		// The envelope passed the store's checksum but does not fit this
		// circuit or decode — count it and recompute rather than serve it.
		s.m.storeBad.Add(1)
		return cacheEntry{}, false
	}
	report := quality.Analyze(res.Partition, res.M)
	return cacheEntry{res: res, report: report, events: sr.Events}, true
}

// shouldDegradeLocked reports whether admission is under enough queue
// pressure to trade quality for latency. Callers hold mu.
func (s *Service) shouldDegradeLocked() bool {
	if s.cfg.DegradeAt < 0 || s.cfg.DegradeAt > 1 {
		return false
	}
	limit := int(s.cfg.DegradeAt * float64(cap(s.queue)))
	if limit < 1 {
		limit = 1
	}
	return len(s.queue) >= limit
}

// cheaperEngineLocked picks the degradation target for method: the
// registered engine with a strictly lower Caps.Cost rank and the lowest
// measured mean run time (per-method latency histograms); engines with
// no observations yet fall back to their static cost rank. Callers hold
// mu.
func (s *Service) cheaperEngineLocked(method string) (string, bool) {
	ladder := engine.CheaperThan(method)
	if len(ladder) == 0 {
		return "", false
	}
	best, bestMean := "", 0.0
	for _, inf := range ladder {
		if mean, ok := s.m.meanRunSeconds(inf.Name); ok {
			if best == "" || mean < bestMean {
				best, bestMean = inf.Name, mean
			}
		}
	}
	if best != "" {
		return best, true
	}
	// No latency data yet: the ladder is sorted cheapest-first by rank.
	return ladder[0].Name, true
}

// remember records the job for lookup and trims retention. Callers hold mu.
func (s *Service) remember(job *Job) {
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.m.submitted.Add(1)
	for len(s.order) > s.cfg.JobRetention {
		evicted := false
		for i, id := range s.order {
			if j := s.jobs[id]; j != nil && j.terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live: keep them all queryable
		}
	}
}

func (j *Job) terminal() bool {
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns snapshots of the retained jobs in submission order.
func (s *Service) Jobs() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.snapshotLocked())
		}
	}
	return out
}

// Snapshot returns an immutable copy of the job's state.
func (s *Service) Snapshot(j *Job) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:           j.id,
		Key:          j.key,
		State:        j.state,
		Method:       j.method,
		Device:       j.device.Name,
		Circuit:      j.circuit,
		DegradedFrom: j.degradedFrom,
		Cached:       j.cached,
		Coalesced:    j.coalesced,
		Stolen:       j.thief != "",
		Thief:        j.thief,
		Submitted:    j.submitted,
		Started:      j.started,
		Finished:     j.finished,
		Err:          j.err,
		Result:       j.result,
		Report:       j.report,
	}
}

// Cancel aborts a job: queued jobs (and their followers) complete as
// canceled without running; running jobs have their context cancelled and
// complete as canceled when the engine unwinds. Terminal jobs are left
// untouched. Reports whether the job was still live.
func (s *Service) Cancel(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.state {
	case StateQueued:
		if j.coalesced {
			// Detach the follower only; the leader computation stands.
			s.finishFollowerLocked(j, StateCanceled, context.Canceled)
			return true
		}
		delete(s.inflight, j.key)
		s.completeLocked(j, StateCanceled, nil, context.Canceled)
		return true
	case StateRunning:
		if j.coalesced {
			s.finishFollowerLocked(j, StateCanceled, context.Canceled)
			return true
		}
		if j.stolen {
			// The computation is out with a work thief; finish the local
			// job now and drop the thief's eventual push as stale.
			j.stolen = false
			if j.stealTimer != nil {
				j.stealTimer.Stop()
			}
			delete(s.inflight, j.key)
			s.completeLocked(j, StateCanceled, nil, context.Canceled)
			return true
		}
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
	return false
}

// worker pulls jobs off the queue until the queue closes at shutdown.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

func (s *Service) runJob(job *Job) {
	s.mu.Lock()
	if job.state != StateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	for _, f := range job.followers {
		if f.state == StateQueued {
			f.state = StateRunning
			f.started = job.started
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if job.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, job.timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	job.cancel = cancel
	s.mu.Unlock()

	s.m.busy.Add(1)
	res, err := s.run(ctx, job.method, job.h, job.device, driver.Options{
		Sink:      job.bcast,
		SpecWidth: s.cfg.SpecWidth,
		Budget:    s.budget,
		Board:     job.board,
	})
	s.m.busy.Add(-1)
	s.m.computations.Add(1)
	cancel()

	if err == nil {
		// Write-through to the disk store before taking the service lock
		// (file I/O off the submission path).
		s.persistResult(job, res)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, job.key)
	if err != nil {
		state := StateFailed
		if errors.Is(err, context.Canceled) {
			state = StateCanceled
		}
		s.completeLocked(job, state, nil, err)
		return
	}
	report := quality.Analyze(res.Partition, res.M)
	s.cache.add(job.key, cacheEntry{res: res, report: report, events: job.bcast.Events()})
	if res.Stats != nil {
		s.m.observePhases(job.method, res.Stats)
	}
	s.completeLocked(job, StateDone, res, nil)
}

// completeLocked moves a leader job (and its followers) to a terminal
// state. Callers hold mu.
func (s *Service) completeLocked(job *Job, state State, res *driver.Result, err error) {
	job.state = state
	job.finished = time.Now()
	job.err = err
	job.result = res
	if res != nil {
		report := quality.Analyze(res.Partition, res.M)
		job.report = &report
	}
	s.m.finished(job.method, state)
	close(job.done)
	for _, f := range job.followers {
		if f.terminal() {
			continue // cancelled earlier
		}
		f.state = state
		f.finished = job.finished
		f.err = err
		f.result = job.result
		f.report = job.report
		s.m.finished(f.method, state)
		close(f.done)
	}
	job.followers = nil
	job.bcast.Close()
	job.h = nil         // the circuit is no longer needed; let it collect
	job.req = Request{} // drop any retained netlist body
	if job.stealTimer != nil {
		job.stealTimer.Stop()
		job.stealTimer = nil
	}
}

// persistResult writes one finished run through to the disk store.
func (s *Service) persistResult(job *Job, res *driver.Result) {
	if s.cfg.Store == nil {
		return
	}
	payload, err := encodeStored(job.circuit, job.method, res, job.bcast.Events())
	if err == nil {
		err = s.cfg.Store.Put(job.key, payload)
	}
	if err != nil {
		s.m.storeFailures.Add(1)
	}
}

// finishFollowerLocked detaches one coalesced follower early (cancel path).
func (s *Service) finishFollowerLocked(f *Job, state State, err error) {
	f.state = state
	f.finished = time.Now()
	f.err = err
	s.m.finished(f.method, state)
	close(f.done)
}

// QueueDepth reports the number of admitted-but-unstarted jobs.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Idle reports whether this peer has spare capacity worth stealing for:
// an empty queue and at least one free worker. It is the cluster steal
// loop's gate (cluster.Source).
func (s *Service) Idle() bool {
	return len(s.queue) == 0 && s.m.busy.Load() < int64(s.cfg.Workers)
}

// StealOne hands the oldest queued leader job to the work thief named in
// thief. The job stays owned by this service — externally it turns
// "running" — and is requeued locally if no result is pushed back within
// Config.StealTTL. ok is false when nothing is stealable.
func (s *Service) StealOne(thief string) (*cluster.StolenJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil || j.state != StateQueued || j.coalesced {
			continue
		}
		j.state = StateRunning // the worker pulling it off the queue skips it
		j.started = time.Now()
		j.stolen = true
		j.thief = thief
		for _, f := range j.followers {
			if f.state == StateQueued {
				f.state = StateRunning
				f.started = j.started
			}
		}
		j.stealTimer = time.AfterFunc(s.cfg.StealTTL, func() { s.requeueStolen(j) })
		s.m.stolenServed.Add(1)
		return &cluster.StolenJob{
			ID:  j.id,
			Key: j.key,
			Spec: cluster.JobSpec{
				Circuit:   j.req.Circuit,
				Format:    j.req.Format,
				Netlist:   j.req.Netlist,
				Arch:      j.req.Arch,
				Device:    j.req.Device,
				Resources: j.req.Resources,
				Board:     j.req.Board,
				Fill:      j.req.Fill,
				// The thief must run what admission decided, not what the
				// client asked for — a degraded job stays degraded.
				Method:    j.method,
				TimeoutMS: j.timeout.Milliseconds(),
			},
		}, true
	}
	return nil, false
}

// requeueStolen returns a job whose thief went quiet to the local queue.
func (s *Service) requeueStolen(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !j.stolen || j.terminal() {
		return
	}
	j.stolen = false
	j.thief = ""
	s.m.stealRequeued.Add(1)
	if s.closed {
		delete(s.inflight, j.key)
		s.completeLocked(j, StateCanceled, nil, ErrShuttingDown)
		return
	}
	j.state = StateQueued
	select {
	case s.queue <- j:
	default:
		// The queue refilled while the job was out; failing it honestly
		// beats blocking the timer goroutine on a full queue.
		delete(s.inflight, j.key)
		s.completeLocked(j, StateFailed, nil, errors.New("service: stolen job lost and queue full"))
	}
}

// CompleteStolen finishes a stolen job from the thief's pushed result
// envelope (the storedResult codec). Late pushes — after cancellation,
// the requeue TTL, or shutdown — are dropped without error.
func (s *Service) CompleteStolen(id string, payload []byte) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("unknown job %q", id)
	}
	if !j.stolen || j.terminal() {
		s.mu.Unlock()
		return nil // stale push; the job moved on
	}
	h := j.h
	s.mu.Unlock()

	// Decode (and rebuild the partition) off the lock; pushes race only
	// against the requeue timer, which the re-check below handles.
	res, sr, err := decodeStored(payload, h)
	if err != nil {
		return fmt.Errorf("stolen result for %s: %w", id, err)
	}
	if res.Partition.Device().Name != j.device.Name {
		return fmt.Errorf("stolen result for %s targets %s, want %s", id, res.Partition.Device().Name, j.device.Name)
	}
	report := quality.Analyze(res.Partition, res.M)
	if s.cfg.Store != nil {
		// Content-addressed, so persisting even a push that loses the
		// race below is correct — it is the same computation.
		if err := s.cfg.Store.Put(j.key, payload); err != nil {
			s.m.storeFailures.Add(1)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if !j.stolen || j.terminal() {
		return nil
	}
	j.stolen = false
	if j.stealTimer != nil {
		j.stealTimer.Stop()
	}
	delete(s.inflight, j.key)
	for _, e := range sr.Events {
		j.bcast.Event(e)
	}
	s.cache.add(j.key, cacheEntry{res: res, report: report, events: sr.Events})
	s.m.stolenCompleted.Add(1)
	s.completeLocked(j, StateDone, res, nil)
	return nil
}

// Execute runs a job stolen from a peer through this service's own
// pipeline — budget, cache, and store included — and returns the result
// envelope to push back (cluster.Source).
func (s *Service) Execute(ctx context.Context, job *cluster.StolenJob) ([]byte, error) {
	j, err := s.Submit(Request{
		Circuit:   job.Spec.Circuit,
		Format:    job.Spec.Format,
		Netlist:   job.Spec.Netlist,
		Arch:      job.Spec.Arch,
		Device:    job.Spec.Device,
		Resources: job.Spec.Resources,
		Board:     job.Spec.Board,
		Fill:      job.Spec.Fill,
		Method:    job.Spec.Method,
		Timeout:   time.Duration(job.Spec.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	select {
	case <-j.Done():
	case <-ctx.Done():
		s.Cancel(j)
		return nil, ctx.Err()
	}
	snap := s.Snapshot(j)
	if snap.State != StateDone {
		return nil, fmt.Errorf("stolen job ended %s: %v", snap.State, snap.Err)
	}
	return encodeStored(snap.Circuit, snap.Method, snap.Result, j.Events().Events())
}

// Shutdown stops admission, waits for queued and running jobs to drain,
// and — if ctx expires first — cancels every in-flight job's context and
// waits for the workers to unwind. It returns ctx.Err() on the forced
// path, nil on a clean drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // abort in-flight runs; queued jobs fail fast
		<-done
		return ctx.Err()
	}
}
