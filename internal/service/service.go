// Package service turns the one-shot partitioning pipeline into a
// long-running daemon: a bounded job queue feeding a worker pool, a
// content-addressed result cache, and live per-job event streaming.
//
// The shape of the system:
//
//	POST /v1/partition ──▶ admission ──▶ bounded queue ──▶ worker pool
//	                          │                                │
//	                          │ cache hit / in-flight          ▼
//	                          ▼ coalescing               driver.Run
//	                      result cache ◀──────────── quality.Analyze
//	                                                        │
//	     GET /v1/jobs/{id}/events ◀── obs.Broadcast fan-out ◀┘
//
// Partitioning is a repeatedly-invoked inner service inside larger CAD
// loops: the same circuit/device pair is queried many times under sweeps
// and what-if edits. The cache keys on the content of the canonicalized
// hypergraph plus device and method, so identical queries — whatever their
// transport or naming — return in O(1), and concurrent identical queries
// coalesce onto a single computation.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
	"fpart/internal/obs"
	"fpart/internal/quality"
)

// Config tunes the service. The zero value is production-ready.
type Config struct {
	// Workers sizes the worker pool and the shared CPU budget; 0 means
	// runtime.GOMAXPROCS(0) (via driver.ClampParallel).
	Workers int
	// SpecWidth is the speculative peeling width applied to fpart jobs
	// (driver.Options.SpecWidth); ≤ 1 runs the sequential peel. Speculation
	// draws its extra concurrency from the same Workers-sized budget the
	// job runners use, so jobs plus speculation never oversubscribe.
	SpecWidth int
	// QueueDepth bounds the number of admitted-but-unstarted jobs; a full
	// queue rejects submissions with ErrQueueFull (HTTP 429). 0 means 64.
	QueueDepth int
	// CacheEntries bounds the result cache; 0 means 128.
	CacheEntries int
	// JobRetention bounds how many finished jobs stay queryable; the
	// oldest finished jobs are forgotten first. 0 means 1024.
	JobRetention int
	// DefaultTimeout bounds each job's run when the submission does not
	// carry its own deadline; 0 means no limit.
	DefaultTimeout time.Duration
	// MaxRequestBytes caps an HTTP request body; 0 means 8 MiB.
	MaxRequestBytes int64
	// EventBuffer sizes each event subscriber's channel; 0 means 256.
	EventBuffer int
	// Limits bounds the netlist parsers for uploaded circuits; the zero
	// value applies netlist.DefaultLimits.
	Limits netlist.Limits
}

func (c Config) normalize() Config {
	c.Workers = driver.ClampParallel(c.Workers)
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 1024
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	return c
}

// Errors surfaced by Submit; the HTTP layer maps them onto status codes.
var (
	// ErrQueueFull means admission succeeded but the queue is at capacity
	// (HTTP 429: retry with backoff).
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrShuttingDown means the service no longer admits jobs (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Request describes one partitioning submission. Exactly one of Circuit
// (a built-in benchmark) or Netlist (an uploaded netlist body in Format)
// must be set.
type Request struct {
	// Circuit names a built-in MCNC benchmark.
	Circuit string
	// Format and Netlist carry an uploaded netlist ("phg", "hgr", "blif").
	Format  string
	Netlist string
	// Arch is the BLIF CLB architecture ("" = device family default).
	Arch string
	// Device names the target FPGA (required).
	Device string
	// Fill overrides the device filling ratio δ (0 keeps the published
	// value).
	Fill float64
	// Method selects the partitioner ("" = "fpart").
	Method string
	// Timeout bounds this job's run (0 = the service default).
	Timeout time.Duration
}

// Job is one partitioning run owned by the service. All fields are
// maintained under the service mutex; read them through Snapshot.
type Job struct {
	id      string
	key     string
	method  string
	device  device.Device
	circuit string

	h *hypergraph.Hypergraph

	state     State
	cached    bool
	coalesced bool
	submitted time.Time
	started   time.Time
	finished  time.Time

	bcast  *obs.Broadcast
	cancel context.CancelFunc
	// followers are identical-key jobs coalesced onto this leader; they
	// complete when it does.
	followers []*Job

	result *driver.Result
	report *quality.Report
	err    error
	done   chan struct{}

	timeout time.Duration
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's content-addressed cache key.
func (j *Job) Key() string { return j.key }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events returns the job's broadcast stream (shared with the coalescing
// leader for follower jobs).
func (j *Job) Events() *obs.Broadcast { return j.bcast }

// Snapshot is an immutable copy of a job's externally visible state.
type Snapshot struct {
	ID        string
	Key       string
	State     State
	Method    string
	Device    string
	Circuit   string
	Cached    bool
	Coalesced bool
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Err       error
	// Result and Report are non-nil once State is StateDone.
	Result *driver.Result
	Report *quality.Report
}

// Service is the concurrent partitioning daemon core. Create one with New,
// serve its Handler, and stop it with Shutdown.
type Service struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing and retention
	inflight map[string]*Job
	cache    *resultCache
	closed   bool

	queue   chan *Job
	wg      sync.WaitGroup
	baseCtx context.Context
	cancel  context.CancelFunc

	nextID atomic.Int64
	m      metrics

	// budget is the shared CPU budget (capacity = Workers): job dispatches
	// hold one token each and in-run speculation borrows spare ones.
	budget *core.Budget

	// run dispatches a job's computation; tests substitute it to model
	// slow or failing runs.
	run func(ctx context.Context, method string, h *hypergraph.Hypergraph, dev device.Device, opts driver.Options) (*driver.Result, error)
}

// New starts a service with cfg's worker pool running.
func New(cfg Config) *Service {
	cfg = cfg.normalize()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		cache:    newResultCache(cfg.CacheEntries),
		queue:    make(chan *Job, cfg.QueueDepth),
		baseCtx:  ctx,
		cancel:   cancel,
		budget:   core.NewBudget(cfg.Workers),
		run:      driver.RunOpts,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the normalized configuration the service runs with.
func (s *Service) Config() Config { return s.cfg }

// Submit validates and admits one partitioning request. The returned job
// is already terminal for cache hits. ErrQueueFull and ErrShuttingDown
// report admission failures; other errors are invalid requests.
func (s *Service) Submit(req Request) (*Job, error) {
	dev, ok := device.ByName(req.Device)
	if !ok {
		return nil, fmt.Errorf("unknown device %q", req.Device)
	}
	if req.Fill != 0 {
		if req.Fill < 0 || req.Fill > 1 {
			return nil, fmt.Errorf("fill %v out of range (0,1]", req.Fill)
		}
		dev = dev.WithFill(req.Fill)
	}
	method := req.Method
	if method == "" {
		method = "fpart"
	}
	if !driver.ValidMethod(method) {
		return nil, fmt.Errorf("unknown method %q (valid: %v)", method, driver.Methods())
	}
	if (req.Circuit == "") == (req.Netlist == "") {
		return nil, errors.New("set exactly one of circuit (built-in) or netlist (upload)")
	}
	src := driver.Source{Builtin: req.Circuit, Arch: req.Arch, Limits: s.cfg.Limits}
	if req.Netlist != "" {
		src.Reader = strings.NewReader(req.Netlist)
		src.Format = req.Format
		src.Name = "upload." + req.Format
	}
	c, err := driver.Load(src, dev)
	if err != nil {
		return nil, err
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	key := Fingerprint(c.Hypergraph, dev, method)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	job := &Job{
		id:        "job-" + strconv.FormatInt(s.nextID.Add(1), 10),
		key:       key,
		method:    method,
		device:    dev,
		circuit:   c.Name,
		h:         c.Hypergraph,
		submitted: time.Now(),
		done:      make(chan struct{}),
		timeout:   timeout,
	}

	if ent, ok := s.cache.get(key); ok {
		// O(1) path: replay the cached outcome, including its event
		// stream, without touching the queue.
		job.state = StateDone
		job.cached = true
		job.started = job.submitted
		job.finished = job.submitted
		job.result = ent.res
		job.report = &ent.report
		job.bcast = obs.NewBroadcast()
		for _, e := range ent.events {
			job.bcast.Event(e)
		}
		job.bcast.Close()
		close(job.done)
		s.m.cacheHits.Add(1)
		s.m.finished(job.method, StateDone)
		s.remember(job)
		return job, nil
	}

	if leader, ok := s.inflight[key]; ok {
		// An identical computation is already queued or running: ride it.
		job.state = leader.state
		job.coalesced = true
		job.bcast = leader.bcast
		leader.followers = append(leader.followers, job)
		s.m.coalesced.Add(1)
		s.remember(job)
		return job, nil
	}

	job.state = StateQueued
	job.bcast = obs.NewBroadcast()
	select {
	case s.queue <- job:
	default:
		s.m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.inflight[key] = job
	s.m.cacheMisses.Add(1)
	s.remember(job)
	return job, nil
}

// remember records the job for lookup and trims retention. Callers hold mu.
func (s *Service) remember(job *Job) {
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.m.submitted.Add(1)
	for len(s.order) > s.cfg.JobRetention {
		evicted := false
		for i, id := range s.order {
			if j := s.jobs[id]; j != nil && j.terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live: keep them all queryable
		}
	}
}

func (j *Job) terminal() bool {
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns snapshots of the retained jobs in submission order.
func (s *Service) Jobs() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j.snapshotLocked())
		}
	}
	return out
}

// Snapshot returns an immutable copy of the job's state.
func (s *Service) Snapshot(j *Job) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:        j.id,
		Key:       j.key,
		State:     j.state,
		Method:    j.method,
		Device:    j.device.Name,
		Circuit:   j.circuit,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Err:       j.err,
		Result:    j.result,
		Report:    j.report,
	}
}

// Cancel aborts a job: queued jobs (and their followers) complete as
// canceled without running; running jobs have their context cancelled and
// complete as canceled when the engine unwinds. Terminal jobs are left
// untouched. Reports whether the job was still live.
func (s *Service) Cancel(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.state {
	case StateQueued:
		if j.coalesced {
			// Detach the follower only; the leader computation stands.
			s.finishFollowerLocked(j, StateCanceled, context.Canceled)
			return true
		}
		delete(s.inflight, j.key)
		s.completeLocked(j, StateCanceled, nil, context.Canceled)
		return true
	case StateRunning:
		if j.coalesced {
			s.finishFollowerLocked(j, StateCanceled, context.Canceled)
			return true
		}
		if j.cancel != nil {
			j.cancel()
		}
		return true
	}
	return false
}

// worker pulls jobs off the queue until the queue closes at shutdown.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

func (s *Service) runJob(job *Job) {
	s.mu.Lock()
	if job.state != StateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	for _, f := range job.followers {
		if f.state == StateQueued {
			f.state = StateRunning
			f.started = job.started
		}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if job.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, job.timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	job.cancel = cancel
	s.mu.Unlock()

	s.m.busy.Add(1)
	res, err := s.run(ctx, job.method, job.h, job.device, driver.Options{
		Sink:      job.bcast,
		SpecWidth: s.cfg.SpecWidth,
		Budget:    s.budget,
	})
	s.m.busy.Add(-1)
	s.m.computations.Add(1)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, job.key)
	if err != nil {
		state := StateFailed
		if errors.Is(err, context.Canceled) {
			state = StateCanceled
		}
		s.completeLocked(job, state, nil, err)
		return
	}
	report := quality.Analyze(res.Partition, res.M)
	s.cache.add(job.key, cacheEntry{res: res, report: report, events: job.bcast.Events()})
	if res.Stats != nil {
		s.m.observePhases(job.method, res.Stats)
	}
	s.completeLocked(job, StateDone, res, nil)
}

// completeLocked moves a leader job (and its followers) to a terminal
// state. Callers hold mu.
func (s *Service) completeLocked(job *Job, state State, res *driver.Result, err error) {
	job.state = state
	job.finished = time.Now()
	job.err = err
	job.result = res
	if res != nil {
		report := quality.Analyze(res.Partition, res.M)
		job.report = &report
	}
	s.m.finished(job.method, state)
	close(job.done)
	for _, f := range job.followers {
		if f.terminal() {
			continue // cancelled earlier
		}
		f.state = state
		f.finished = job.finished
		f.err = err
		f.result = job.result
		f.report = job.report
		s.m.finished(f.method, state)
		close(f.done)
	}
	job.followers = nil
	job.bcast.Close()
	job.h = nil // the circuit is no longer needed; let it collect
}

// finishFollowerLocked detaches one coalesced follower early (cancel path).
func (s *Service) finishFollowerLocked(f *Job, state State, err error) {
	f.state = state
	f.finished = time.Now()
	f.err = err
	s.m.finished(f.method, state)
	close(f.done)
}

// QueueDepth reports the number of admitted-but-unstarted jobs.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Shutdown stops admission, waits for queued and running jobs to drain,
// and — if ctx expires first — cancels every in-flight job's context and
// waits for the workers to unwind. It returns ctx.Err() on the forced
// path, nil on a clean drain.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // abort in-flight runs; queued jobs fail fast
		<-done
		return ctx.Err()
	}
}
