package service

import (
	"encoding/json"
	"fmt"
	"time"

	"fpart/internal/device"
	"fpart/internal/driver"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// storedResult is the durable serialization of one completed run: the
// payload the disk store files under a fingerprint key, and the envelope
// a work-stealing thief pushes back to its victim. It carries the block
// assignment rather than the partition object — the loader still has the
// hypergraph (content addressing guarantees an identical structure), so
// the partition and its quality report are rebuilt exactly, and the
// payload stays a few bytes per cell.
type storedResult struct {
	Circuit string `json:"circuit,omitempty"`
	Device  string `json:"device"`
	// Fill is the device's resolved filling ratio (request overrides
	// included), re-applied at decode so the rebuilt partition judges
	// feasibility exactly as the original run did.
	Fill     float64 `json:"fill"`
	Method   string  `json:"method"`
	K        int     `json:"k"`
	M        int     `json:"m"`
	Feasible bool    `json:"feasible"`
	// Assignment maps node index to block.
	Assignment []int32     `json:"assignment"`
	ElapsedNS  int64       `json:"elapsed_ns"`
	Stats      *obs.Stats  `json:"stats,omitempty"`
	Events     []obs.Event `json:"events,omitempty"`
}

// encodeStored serializes a finished run for the disk store or a steal
// result push. The device (resolved fill included) comes from the
// partition itself.
func encodeStored(circuit, method string, res *driver.Result, events []obs.Event) ([]byte, error) {
	h := res.Partition.Hypergraph()
	dev := res.Partition.Device()
	assign := make([]int32, h.NumNodes())
	for i := range assign {
		assign[i] = int32(res.Partition.Block(hypergraph.NodeID(i)))
	}
	return json.Marshal(storedResult{
		Circuit:    circuit,
		Device:     dev.Name,
		Fill:       dev.Fill,
		Method:     method,
		K:          res.K,
		M:          res.M,
		Feasible:   res.Feasible,
		Assignment: assign,
		ElapsedNS:  int64(res.Elapsed),
		Stats:      res.Stats,
		Events:     events,
	})
}

// decodeStored rebuilds a driver.Result from a stored payload against the
// hypergraph it was computed for. The device must resolve locally and the
// assignment must cover the hypergraph — a payload that does not fit the
// circuit (a hash collision would be the only honest cause) is an error,
// never a silently wrong partition.
func decodeStored(payload []byte, h *hypergraph.Hypergraph) (*driver.Result, *storedResult, error) {
	var sr storedResult
	if err := json.Unmarshal(payload, &sr); err != nil {
		return nil, nil, fmt.Errorf("stored result: %w", err)
	}
	dev, ok := device.Parse(sr.Device)
	if !ok {
		return nil, nil, fmt.Errorf("stored result names unknown device %q", sr.Device)
	}
	if sr.Fill > 0 {
		dev = dev.WithFill(sr.Fill)
	}
	if len(sr.Assignment) != h.NumNodes() {
		return nil, nil, fmt.Errorf("stored assignment covers %d of %d nodes", len(sr.Assignment), h.NumNodes())
	}
	blocks := make([]partition.BlockID, len(sr.Assignment))
	k := 1
	for i, b := range sr.Assignment {
		blocks[i] = partition.BlockID(b)
		if int(b)+1 > k {
			k = int(b) + 1
		}
	}
	p, err := partition.FromAssignment(h, dev, blocks, k)
	if err != nil {
		return nil, nil, fmt.Errorf("stored result: %w", err)
	}
	return &driver.Result{
		Partition: p,
		K:         sr.K,
		M:         sr.M,
		Feasible:  sr.Feasible,
		Stats:     sr.Stats,
		Elapsed:   time.Duration(sr.ElapsedNS),
	}, &sr, nil
}
