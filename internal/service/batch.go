package service

import (
	"errors"
	"fmt"
	"strconv"
	"time"
)

// MaxBatchDevices bounds one batch submission's fan-out.
const MaxBatchDevices = 64

// GroupItem is one device target's outcome inside a batch group: either
// an admitted job or the admission error that kept it out.
type GroupItem struct {
	Device string
	Job    *Job  // nil when admission failed
	Err    error // nil when admitted
}

// Group is one batch submission: the same circuit fanned out across many
// device targets as individually tracked jobs. The Table 6 grid — one
// circuit, every device — is a single group.
type Group struct {
	id      string
	created time.Time
	items   []GroupItem
}

// ID returns the group's identifier.
func (g *Group) ID() string { return g.id }

// Items returns the group's per-device entries in submission order.
func (g *Group) Items() []GroupItem { return g.items }

// SubmitBatch fans base out across devices as one job group. Each target
// is admitted independently (cache hits, coalescing, and degradation all
// apply per job); per-device admission errors are recorded in the group
// rather than aborting it. Only if no device at all was admitted does
// SubmitBatch fail, with the first error.
func (s *Service) SubmitBatch(base Request, devices []string) (*Group, error) {
	if len(devices) == 0 {
		return nil, errors.New("batch: no target devices")
	}
	if len(devices) > MaxBatchDevices {
		return nil, fmt.Errorf("batch: %d target devices (max %d)", len(devices), MaxBatchDevices)
	}
	g := &Group{
		id:      "grp-" + strconv.FormatInt(s.nextGroup.Add(1), 10),
		created: time.Now(),
	}
	admitted := 0
	var firstErr error
	for _, dev := range devices {
		req := base
		req.Device = dev
		job, err := s.Submit(req)
		if err == nil {
			admitted++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("device %s: %w", dev, err)
		}
		g.items = append(g.items, GroupItem{Device: dev, Job: job, Err: err})
	}
	if admitted == 0 {
		return nil, firstErr
	}
	s.mu.Lock()
	s.rememberGroupLocked(g)
	s.mu.Unlock()
	s.m.batchGroups.Add(1)
	return g, nil
}

// rememberGroupLocked records the group and trims retention (oldest
// fully terminal groups first). Callers hold mu.
func (s *Service) rememberGroupLocked(g *Group) {
	s.groups[g.id] = g
	s.grpOrder = append(s.grpOrder, g.id)
	for len(s.grpOrder) > s.cfg.GroupRetention {
		evicted := false
		for i, id := range s.grpOrder {
			if grp := s.groups[id]; grp != nil && grp.terminalLocked() {
				delete(s.groups, id)
				s.grpOrder = append(s.grpOrder[:i], s.grpOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // every group still live: keep them all queryable
		}
	}
}

// terminalLocked reports whether every admitted job of the group reached
// a terminal state. Callers hold mu.
func (g *Group) terminalLocked() bool {
	for _, it := range g.items {
		if it.Job != nil && !it.Job.terminal() {
			return false
		}
	}
	return true
}

// Group looks a batch group up by ID.
func (s *Service) Group(id string) (*Group, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[id]
	return g, ok
}

// GroupSnapshot is an immutable copy of a group's state.
type GroupSnapshot struct {
	ID      string
	Created time.Time
	// Jobs holds one snapshot per admitted job, in submission order.
	Jobs []Snapshot
	// Rejected maps device targets to their admission error strings.
	Rejected map[string]string
	// Complete reports that every admitted job is terminal.
	Complete bool
}

// SnapshotGroup captures the group's current state.
func (s *Service) SnapshotGroup(g *Group) GroupSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := GroupSnapshot{ID: g.id, Created: g.created, Complete: true}
	for _, it := range g.items {
		if it.Job == nil {
			if out.Rejected == nil {
				out.Rejected = make(map[string]string)
			}
			out.Rejected[it.Device] = it.Err.Error()
			continue
		}
		snap := it.Job.snapshotLocked()
		if !it.Job.terminal() {
			out.Complete = false
		}
		out.Jobs = append(out.Jobs, snap)
	}
	return out
}
