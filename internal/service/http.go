package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"fpart/internal/engine"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/quality"
)

// apiRequest is the JSON body of POST /v1/partition.
type apiRequest struct {
	// Circuit names a built-in benchmark; Netlist uploads one instead.
	Circuit string  `json:"circuit,omitempty"`
	Format  string  `json:"format,omitempty"`
	Netlist string  `json:"netlist,omitempty"`
	Arch    string  `json:"arch,omitempty"`
	Device  string  `json:"device"`
	Fill    float64 `json:"fill,omitempty"`
	Method  string  `json:"method,omitempty"`
	// TimeoutMS bounds the run in milliseconds (0 = service default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobView is the JSON rendering of a job.
type JobView struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Method    string `json:"method"`
	Device    string `json:"device"`
	Circuit   string `json:"circuit"`
	Key       string `json:"key"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`

	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	ElapsedMS   int64  `json:"elapsed_ms,omitempty"`

	Error string `json:"error,omitempty"`

	// Result fields, present once State is "done".
	K          int             `json:"k,omitempty"`
	M          int             `json:"m,omitempty"`
	Feasible   bool            `json:"feasible,omitempty"`
	Quality    *quality.Report `json:"quality,omitempty"`
	Stats      *obs.Stats      `json:"stats,omitempty"`
	Assignment []int           `json:"assignment,omitempty"`
}

func viewOf(snap Snapshot, withAssignment bool) JobView {
	v := JobView{
		ID:          snap.ID,
		State:       snap.State,
		Method:      snap.Method,
		Device:      snap.Device,
		Circuit:     snap.Circuit,
		Key:         snap.Key,
		Cached:      snap.Cached,
		Coalesced:   snap.Coalesced,
		SubmittedAt: snap.Submitted.UTC().Format(time.RFC3339Nano),
	}
	if !snap.Started.IsZero() {
		v.StartedAt = snap.Started.UTC().Format(time.RFC3339Nano)
	}
	if !snap.Finished.IsZero() {
		v.FinishedAt = snap.Finished.UTC().Format(time.RFC3339Nano)
		v.ElapsedMS = snap.Finished.Sub(snap.Started).Milliseconds()
	}
	if snap.Err != nil {
		v.Error = snap.Err.Error()
	}
	if snap.State == StateDone && snap.Result != nil {
		v.K = snap.Result.K
		v.M = snap.Result.M
		v.Feasible = snap.Result.Feasible
		v.Quality = snap.Report
		v.Stats = snap.Result.Stats
		if withAssignment {
			p := snap.Result.Partition
			h := p.Hypergraph()
			v.Assignment = make([]int, h.NumNodes())
			for i := range v.Assignment {
				v.Assignment[i] = int(p.Block(hypergraph.NodeID(i)))
			}
		}
	}
	return v
}

// MethodView is the JSON rendering of one registered engine in the
// GET /methods discovery response.
type MethodView struct {
	Name         string `json:"name"`
	Cancellable  bool   `json:"cancellable"`
	Instrumented bool   `json:"instrumented"`
	Budgeted     bool   `json:"budgeted"`
	Summary      string `json:"summary"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/partition        submit a job (202; 200 on a cache hit)
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        job status (+ ?assignment=1 for the blocks)
//	DELETE /v1/jobs/{id}        cancel a live job
//	GET    /v1/jobs/{id}/events stream the job's events (NDJSON, or SSE
//	                            when Accept includes text/event-stream)
//	GET    /methods             engine registry discovery (names + caps)
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/partition", s.handleSubmit)
	mux.HandleFunc("GET /methods", handleMethods)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleMethods renders the engine registry so clients can discover
// which method names Submit accepts and what each engine guarantees.
func handleMethods(w http.ResponseWriter, r *http.Request) {
	infos := engine.List()
	views := make([]MethodView, len(infos))
	for i, info := range infos {
		views[i] = MethodView{
			Name:         info.Name,
			Cancellable:  info.Caps.Cancellable,
			Instrumented: info.Caps.Instrumented,
			Budgeted:     info.Caps.Budgeted,
			Summary:      info.Caps.Summary,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"methods": views})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	var req apiRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	job, err := s.Submit(Request{
		Circuit: req.Circuit,
		Format:  req.Format,
		Netlist: req.Netlist,
		Arch:    req.Arch,
		Device:  req.Device,
		Fill:    req.Fill,
		Method:  req.Method,
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.Snapshot(job)
	status := http.StatusAccepted
	if snap.Cached {
		status = http.StatusOK // answered without queueing
	}
	writeJSON(w, status, viewOf(snap, false))
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	snaps := s.Jobs()
	views := make([]JobView, len(snaps))
	for i, snap := range snaps {
		views[i] = viewOf(snap, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	withAssignment := r.URL.Query().Get("assignment") != ""
	writeJSON(w, http.StatusOK, viewOf(s.Snapshot(job), withAssignment))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	live := s.Cancel(job)
	writeJSON(w, http.StatusOK, map[string]any{"id": job.ID(), "canceled": live})
}

// handleEvents streams a job's event feed: the retained history first,
// then live events until the job completes or the client goes away.
// Output is NDJSON (one obs.Event per line) unless the client asks for
// text/event-stream, in which case each event rides an SSE data frame.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	enc := json.NewEncoder(w)
	write := func(e obs.Event) {
		if sse {
			fmt.Fprint(w, "data: ")
		}
		_ = enc.Encode(e)
		if sse {
			fmt.Fprint(w, "\n")
		}
	}

	sub := job.Events().Subscribe(s.cfg.EventBuffer)
	defer sub.Cancel()
	for _, e := range sub.History {
		write(e)
	}
	flush()
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return // stream complete: the job reached a terminal state
			}
			write(e)
			flush()
		case <-r.Context().Done():
			return
		}
	}
}
