package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"fpart/internal/board"
	"fpart/internal/cluster"
	"fpart/internal/engine"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/quality"
)

// apiRequest is the JSON body of POST /v1/partition.
type apiRequest struct {
	// Circuit names a built-in benchmark; Netlist uploads one instead.
	Circuit string  `json:"circuit,omitempty"`
	Format  string  `json:"format,omitempty"`
	Netlist string  `json:"netlist,omitempty"`
	Arch    string  `json:"arch,omitempty"`
	Device  string  `json:"device"`
	Fill    float64 `json:"fill,omitempty"`
	Method  string  `json:"method,omitempty"`
	// Resources appends extra resource caps to the device, e.g.
	// "DSP:12,BRAM:4".
	Resources string `json:"resources,omitempty"`
	// Board gates the result on a multi-FPGA board topology, e.g.
	// "mesh:4x4:wires=64".
	Board string `json:"board,omitempty"`
	// TimeoutMS bounds the run in milliseconds (0 = service default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// toRequest maps the wire form onto the service submission type.
func (a apiRequest) toRequest() Request {
	return Request{
		Circuit:   a.Circuit,
		Format:    a.Format,
		Netlist:   a.Netlist,
		Arch:      a.Arch,
		Device:    a.Device,
		Resources: a.Resources,
		Board:     a.Board,
		Fill:      a.Fill,
		Method:    a.Method,
		Timeout:   time.Duration(a.TimeoutMS) * time.Millisecond,
	}
}

// apiBatchRequest is the JSON body of POST /v1/batch: one submission
// fanned out across Devices (the embedded Device field is ignored).
type apiBatchRequest struct {
	apiRequest
	Devices []string `json:"devices"`
}

// JobView is the JSON rendering of a job.
type JobView struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Method    string `json:"method"`
	Device    string `json:"device"`
	Circuit   string `json:"circuit"`
	Key       string `json:"key"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	// DegradedFrom names the originally requested method when admission
	// control substituted a cheaper engine under load.
	DegradedFrom string `json:"degraded_from,omitempty"`
	// Stolen and Thief report the job is (or was) out with a work thief.
	Stolen bool   `json:"stolen,omitempty"`
	Thief  string `json:"thief,omitempty"`

	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	ElapsedMS   int64  `json:"elapsed_ms,omitempty"`

	Error string `json:"error,omitempty"`

	// Result fields, present once State is "done".
	K        int             `json:"k,omitempty"`
	M        int             `json:"m,omitempty"`
	Feasible bool            `json:"feasible,omitempty"`
	Quality  *quality.Report `json:"quality,omitempty"`
	Stats    *obs.Stats      `json:"stats,omitempty"`
	// Board is the routing report when the job was board-gated and the
	// blocks fit the slots (absent otherwise).
	Board      *board.Report `json:"board,omitempty"`
	Assignment []int         `json:"assignment,omitempty"`
}

func viewOf(snap Snapshot, withAssignment bool) JobView {
	v := JobView{
		ID:           snap.ID,
		State:        snap.State,
		Method:       snap.Method,
		Device:       snap.Device,
		Circuit:      snap.Circuit,
		Key:          snap.Key,
		Cached:       snap.Cached,
		Coalesced:    snap.Coalesced,
		DegradedFrom: snap.DegradedFrom,
		Stolen:       snap.Stolen,
		Thief:        snap.Thief,
		SubmittedAt:  snap.Submitted.UTC().Format(time.RFC3339Nano),
	}
	if !snap.Started.IsZero() {
		v.StartedAt = snap.Started.UTC().Format(time.RFC3339Nano)
	}
	if !snap.Finished.IsZero() {
		v.FinishedAt = snap.Finished.UTC().Format(time.RFC3339Nano)
		v.ElapsedMS = snap.Finished.Sub(snap.Started).Milliseconds()
	}
	if snap.Err != nil {
		v.Error = snap.Err.Error()
	}
	if snap.State == StateDone && snap.Result != nil {
		v.K = snap.Result.K
		v.M = snap.Result.M
		v.Feasible = snap.Result.Feasible
		v.Quality = snap.Report
		v.Stats = snap.Result.Stats
		v.Board = snap.Result.Board
		if withAssignment {
			p := snap.Result.Partition
			h := p.Hypergraph()
			v.Assignment = make([]int, h.NumNodes())
			for i := range v.Assignment {
				v.Assignment[i] = int(p.Block(hypergraph.NodeID(i)))
			}
		}
	}
	return v
}

// MethodView is the JSON rendering of one registered engine in the
// GET /methods discovery response.
type MethodView struct {
	Name         string `json:"name"`
	Cancellable  bool   `json:"cancellable"`
	Instrumented bool   `json:"instrumented"`
	Budgeted     bool   `json:"budgeted"`
	// BoardAware reports that jobs on this engine accept the "board"
	// request field (multi-FPGA feasibility gating).
	BoardAware bool   `json:"board_aware"`
	Summary    string `json:"summary"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/partition          submit a job (202; 200 on a cache hit);
//	                              forwarded to its owning peer in a cluster
//	POST   /v1/batch              fan one circuit out across many devices
//	                              as a tracked job group
//	GET    /v1/jobs               list retained jobs
//	GET    /v1/jobs/{id}          job status (+ ?assignment=1 for the blocks)
//	DELETE /v1/jobs/{id}          cancel a live job
//	GET    /v1/jobs/{id}/events   stream the job's events (NDJSON, or SSE
//	                              when Accept includes text/event-stream)
//	GET    /v1/groups/{id}        batch group status
//	GET    /v1/groups/{id}/events merged NDJSON event stream of the group
//	POST   /v1/steal              hand one queued job to an idle peer
//	POST   /v1/internal/result    accept a stolen job's result envelope
//	GET    /methods               engine registry discovery (names + caps)
//	GET    /metrics               Prometheus text exposition
//	GET    /healthz               liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/partition", s.handleSubmit)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /methods", handleMethods)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/groups/{id}", s.handleGroup)
	mux.HandleFunc("GET /v1/groups/{id}/events", s.handleGroupEvents)
	mux.HandleFunc("POST /v1/steal", s.handleSteal)
	mux.HandleFunc("POST /v1/internal/result", s.handleStolenResult)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleMethods renders the engine registry so clients can discover
// which method names Submit accepts and what each engine guarantees.
func handleMethods(w http.ResponseWriter, r *http.Request) {
	infos := engine.List()
	views := make([]MethodView, len(infos))
	for i, info := range infos {
		views[i] = MethodView{
			Name:         info.Name,
			Cancellable:  info.Caps.Cancellable,
			Instrumented: info.Caps.Instrumented,
			Budgeted:     info.Caps.Budgeted,
			BoardAware:   info.Caps.BoardAware,
			Summary:      info.Caps.Summary,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"methods": views})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// readBody drains one request body under the configured size cap,
// returning the raw bytes (a cluster forward re-sends them verbatim).
func (s *Service) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		}
		return nil, false
	}
	return raw, true
}

func decodeStrict(raw []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req apiRequest
	if err := decodeStrict(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	prep, err := s.prepare(req.toRequest())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Cluster routing: the fingerprint's ring owner handles the job so its
	// cache fills deterministically. A request already forwarded once runs
	// here no matter what — single-hop by construction — and an unreachable
	// owner degrades to local execution rather than an error.
	if n := s.clusterNode; n != nil && r.Header.Get(cluster.ForwardedHeader) == "" {
		if owner := n.Owner(prep.key); owner != n.Self() {
			resp, ferr := n.Forward(r.Context(), owner, r.Header.Get("Content-Type"), raw)
			if ferr == nil {
				defer resp.Body.Close()
				s.relay(w, resp, owner)
				return
			}
			n.FallbackObserved()
		}
	}
	if n := s.clusterNode; n != nil {
		w.Header().Set(cluster.PeerHeader, n.Self())
	}

	job, err := s.submitPrepared(prep)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.Snapshot(job)
	status := http.StatusAccepted
	if snap.Cached {
		status = http.StatusOK // answered without queueing
	}
	writeJSON(w, status, viewOf(snap, false))
}

// relay proxies the owner peer's verbatim response to the client.
func (s *Service) relay(w http.ResponseWriter, resp *http.Response, owner string) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	peer := resp.Header.Get(cluster.PeerHeader)
	if peer == "" {
		peer = owner
	}
	w.Header().Set(cluster.PeerHeader, peer)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	snaps := s.Jobs()
	views := make([]JobView, len(snaps))
	for i, snap := range snaps {
		views[i] = viewOf(snap, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	withAssignment := r.URL.Query().Get("assignment") != ""
	writeJSON(w, http.StatusOK, viewOf(s.Snapshot(job), withAssignment))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	live := s.Cancel(job)
	writeJSON(w, http.StatusOK, map[string]any{"id": job.ID(), "canceled": live})
}

// handleEvents streams a job's event feed: the retained history first,
// then live events until the job completes or the client goes away.
// Output is NDJSON (one obs.Event per line) unless the client asks for
// text/event-stream, in which case each event rides an SSE data frame.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	enc := json.NewEncoder(w)
	write := func(e obs.Event) {
		if sse {
			fmt.Fprint(w, "data: ")
		}
		_ = enc.Encode(e)
		if sse {
			fmt.Fprint(w, "\n")
		}
	}

	sub := job.Events().Subscribe(s.cfg.EventBuffer)
	defer sub.Cancel()
	for _, e := range sub.History {
		write(e)
	}
	flush()
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return // stream complete: the job reached a terminal state
			}
			write(e)
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// GroupView is the JSON rendering of a batch job group.
type GroupView struct {
	ID      string    `json:"id"`
	Created string    `json:"created"`
	Jobs    []JobView `json:"jobs"`
	// Rejected maps device targets to their admission error.
	Rejected map[string]string `json:"rejected,omitempty"`
	// Complete reports that every admitted job is terminal.
	Complete bool `json:"complete"`
}

func (s *Service) groupView(g *Group) GroupView {
	snap := s.SnapshotGroup(g)
	v := GroupView{
		ID:       snap.ID,
		Created:  snap.Created.UTC().Format(time.RFC3339Nano),
		Jobs:     make([]JobView, len(snap.Jobs)),
		Rejected: snap.Rejected,
		Complete: snap.Complete,
	}
	for i, js := range snap.Jobs {
		v.Jobs[i] = viewOf(js, false)
	}
	return v
}

// handleBatch fans one submission out across many devices as a job group
// (202; 400 when no device at all was admitted).
func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req apiBatchRequest
	if err := decodeStrict(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	g, err := s.SubmitBatch(req.toRequest(), req.Devices)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.groupView(g))
}

func (s *Service) handleGroup(w http.ResponseWriter, r *http.Request) {
	g, ok := s.Group(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown group %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.groupView(g))
}

// handleGroupEvents streams the merged event feeds of every admitted job
// in a group as NDJSON, each line tagging the event with its job and
// device. The stream ends when every member job's feed closes.
func (s *Service) handleGroupEvents(w http.ResponseWriter, r *http.Request) {
	g, ok := s.Group(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown group %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	type tagged struct {
		Job    string    `json:"job"`
		Device string    `json:"device"`
		Event  obs.Event `json:"event"`
	}
	ctx := r.Context()
	ch := make(chan tagged, 64)
	var wg sync.WaitGroup
	for _, it := range g.Items() {
		if it.Job == nil {
			continue
		}
		sub := it.Job.Events().Subscribe(s.cfg.EventBuffer)
		wg.Add(1)
		go func(id, dev string) {
			defer wg.Done()
			defer sub.Cancel()
			send := func(e obs.Event) bool {
				select {
				case ch <- tagged{Job: id, Device: dev, Event: e}:
					return true
				case <-ctx.Done():
					return false
				}
			}
			for _, e := range sub.History {
				if !send(e) {
					return
				}
			}
			for {
				select {
				case e, live := <-sub.C():
					if !live || !send(e) {
						return
					}
				case <-ctx.Done():
					return
				}
			}
		}(it.Job.ID(), it.Device)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	enc := json.NewEncoder(w)
	for t := range ch {
		_ = enc.Encode(t)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSteal hands one queued job to an idle peer (200 with the job
// spec, or 204 when nothing is stealable).
func (s *Service) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req struct {
		From string `json:"from"`
	}
	_ = json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req)
	if req.From == "" {
		req.From = r.RemoteAddr
	}
	job, ok := s.StealOne(req.From)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleStolenResult accepts a thief's result envelope for a stolen job.
// Stale pushes (the job was cancelled or requeued meanwhile) answer 200:
// the thief did nothing wrong and retrying cannot help.
func (s *Service) handleStolenResult(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		ID       string          `json:"id"`
		Envelope json.RawMessage `json:"envelope"`
	}
	if err := json.Unmarshal(raw, &req); err != nil || req.ID == "" {
		writeError(w, http.StatusBadRequest, errors.New("bad result push body"))
		return
	}
	if err := s.CompleteStolen(req.ID, req.Envelope); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
