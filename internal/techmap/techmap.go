// Package techmap packs a gate-level BLIF circuit into CLB-level nodes for
// a Xilinx architecture generation, the flow stage that produces the two
// mapped variants of each benchmark in Table 1 of the FPART paper (XC2000:
// 4-input CLBs, XC3000: 5-input CLBs — the same circuit maps to fewer
// XC3000 CLBs).
//
// The mapper is a greedy dependency-order packer: gates are visited in
// topological order and merged into the cluster of one of their fanin
// drivers whenever the merged cluster still satisfies the CLB's distinct
// input bound, output bound, and flip-flop capacity. Latches prefer the
// cluster of their D-input driver (the classic LUT+FF pairing). This is not
// a delay-optimal mapper (FlowMap); it reproduces the *area* behaviour that
// matters for partitioning: bigger K ⇒ fewer CLBs.
package techmap

import (
	"errors"
	"fmt"

	"fpart/internal/hypergraph"
	"fpart/internal/netlist"
)

// Arch describes one CLB architecture.
type Arch struct {
	Name string
	// K is the number of distinct input signals a CLB can consume.
	K int
	// Outputs is the number of signals a CLB can drive.
	Outputs int
	// FFs is the number of flip-flops a CLB provides.
	FFs int
}

// The two architectures of the paper's Table 1.
var (
	XC2000Arch = Arch{Name: "XC2000", K: 4, Outputs: 2, FFs: 1}
	XC3000Arch = Arch{Name: "XC3000", K: 5, Outputs: 2, FFs: 2}
)

// cell is one gate or latch of the input circuit.
type cell struct {
	out    string
	ins    []string
	isFF   bool
	placed int // cluster index, -1 unplaced
}

// Mapped is the result of technology mapping.
type Mapped struct {
	Arch Arch
	// Clusters lists, per CLB, the indices of the packed cells.
	Clusters [][]int
	circuit  *netlist.BlifCircuit
	cells    []cell
}

// NumCLBs returns the number of CLBs used.
func (m *Mapped) NumCLBs() int { return len(m.Clusters) }

// Circuit returns the BLIF circuit the mapping was built from.
func (m *Mapped) Circuit() *netlist.BlifCircuit { return m.circuit }

// CLBCell exposes one packed cell's signal connectivity for downstream
// passes (e.g., functional replication) that need direction information.
type CLBCell struct {
	Output string
	Inputs []string
	IsFF   bool
}

// CellsPerCLB returns the packed cells of every CLB.
func (m *Mapped) CellsPerCLB() [][]CLBCell {
	out := make([][]CLBCell, len(m.Clusters))
	for ci, members := range m.Clusters {
		for _, mi := range members {
			c := &m.cells[mi]
			out[ci] = append(out[ci], CLBCell{
				Output: c.out,
				Inputs: append([]string(nil), c.ins...),
				IsFF:   c.isFF,
			})
		}
	}
	return out
}

// Map packs the circuit for the given architecture.
func Map(c *netlist.BlifCircuit, arch Arch) (*Mapped, error) {
	if arch.K < 1 || arch.Outputs < 1 {
		return nil, fmt.Errorf("techmap: degenerate architecture %+v", arch)
	}
	var cells []cell
	driver := map[string]int{} // signal -> driving cell
	for _, g := range c.Gates {
		if len(g.Inputs) > arch.K {
			return nil, fmt.Errorf("techmap: gate %q has %d inputs > K=%d (decompose first)",
				g.Output, len(g.Inputs), arch.K)
		}
		driver[g.Output] = len(cells)
		cells = append(cells, cell{out: g.Output, ins: g.Inputs, placed: -1})
	}
	for _, l := range c.Latches {
		if _, dup := driver[l.Output]; dup {
			return nil, fmt.Errorf("techmap: signal %q driven twice", l.Output)
		}
		driver[l.Output] = len(cells)
		cells = append(cells, cell{out: l.Output, ins: []string{l.Input}, isFF: true, placed: -1})
	}
	primary := map[string]bool{}
	for _, in := range c.Inputs {
		primary[in] = true
	}
	consumers := map[string][]int{} // signal -> consuming cells
	for i := range cells {
		for _, in := range cells[i].ins {
			consumers[in] = append(consumers[in], i)
		}
	}
	outputs := map[string]bool{}
	for _, o := range c.Outputs {
		outputs[o] = true
	}

	order, err := topoOrder(cells, driver)
	if err != nil {
		return nil, err
	}

	m := &Mapped{Arch: arch, circuit: c, cells: cells}

	// clusterInputs computes the distinct external input signals, internal
	// FF count, and external output count of a tentative cluster.
	feasible := func(members []int) bool {
		inCluster := map[int]bool{}
		for _, ci := range members {
			inCluster[ci] = true
		}
		ins := map[string]bool{}
		ffs, outs := 0, 0
		for _, ci := range members {
			cl := &cells[ci]
			if cl.isFF {
				ffs++
			}
			for _, s := range cl.ins {
				if d, ok := driver[s]; ok && inCluster[d] {
					continue // internally produced
				}
				ins[s] = true
			}
			// The cell's output escapes when a consumer outside the
			// cluster, or a primary output, reads it.
			escapes := outputs[cl.out]
			for _, consumer := range consumers[cl.out] {
				if !inCluster[consumer] {
					escapes = true
					break
				}
			}
			if escapes {
				outs++
			}
		}
		return len(ins) <= arch.K && outs <= arch.Outputs && ffs <= arch.FFs
	}

	for _, ci := range order {
		cl := &cells[ci]
		// Candidate clusters: those of fanin drivers, preferring the one
		// whose merge leaves the fewest distinct inputs.
		bestCluster := -1
		for _, s := range cl.ins {
			d, ok := driver[s]
			if !ok || cells[d].placed < 0 {
				continue
			}
			cand := cells[d].placed
			if cand == bestCluster {
				continue
			}
			merged := append(append([]int{}, m.Clusters[cand]...), ci)
			if feasible(merged) {
				bestCluster = cand
				break // first feasible fanin cluster in input order: deterministic
			}
		}
		if bestCluster >= 0 {
			m.Clusters[bestCluster] = append(m.Clusters[bestCluster], ci)
			cl.placed = bestCluster
		} else {
			if !feasible([]int{ci}) {
				return nil, fmt.Errorf("techmap: cell %q does not fit an empty CLB", cl.out)
			}
			cl.placed = len(m.Clusters)
			m.Clusters = append(m.Clusters, []int{ci})
		}
	}
	return m, nil
}

// topoOrder orders cells so combinational fanins come first. Latch outputs
// are sequential sources and impose no ordering. A combinational cycle is
// an error.
func topoOrder(cells []cell, driver map[string]int) ([]int, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(cells))
	var order []int
	var visit func(i int) error
	visit = func(i int) error {
		if color[i] == black {
			return nil
		}
		if color[i] == gray {
			return errors.New("techmap: combinational cycle")
		}
		color[i] = gray
		if !cells[i].isFF { // latches are sequential barriers
			for _, s := range cells[i].ins {
				if d, ok := driver[s]; ok && !cells[d].isFF {
					if err := visit(d); err != nil {
						return err
					}
				}
			}
		}
		color[i] = black
		order = append(order, i)
		return nil
	}
	for i := range cells {
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Hypergraph lowers the mapped circuit to a CLB-level hypergraph: one
// interior node of size 1 per CLB, one pad per primary input/output, and a
// net per signal that crosses a CLB boundary (or reaches a pad).
func (m *Mapped) Hypergraph() (*hypergraph.Hypergraph, error) {
	var b hypergraph.Builder
	clbNode := make([]hypergraph.NodeID, len(m.Clusters))
	for i, members := range m.Clusters {
		clbNode[i] = b.AddInterior(fmt.Sprintf("clb%d", i), 1)
		ffs := 0
		for _, ci := range members {
			if m.cells[ci].isFF {
				ffs++
			}
		}
		b.SetAux(clbNode[i], ffs)
	}
	attach := map[string][]hypergraph.NodeID{}
	var order []string
	seen := map[string]bool{}
	add := func(sig string, id hypergraph.NodeID) {
		attach[sig] = append(attach[sig], id)
		if !seen[sig] {
			seen[sig] = true
			order = append(order, sig)
		}
	}
	for _, in := range m.circuit.Inputs {
		add(in, b.AddPad("pi:"+in))
	}
	for _, out := range m.circuit.Outputs {
		add(out, b.AddPad("po:"+out))
	}
	driver := map[string]int{}
	for i, c := range m.cells {
		driver[c.out] = i
	}
	for ci, members := range m.Clusters {
		inCluster := map[int]bool{}
		for _, mi := range members {
			inCluster[mi] = true
		}
		touched := map[string]bool{}
		for _, mi := range members {
			c := &m.cells[mi]
			// Inputs sourced outside the cluster attach the CLB to the net.
			for _, s := range c.ins {
				if d, ok := driver[s]; ok && inCluster[d] {
					continue
				}
				if !touched[s] {
					touched[s] = true
					add(s, clbNode[ci])
				}
			}
			// Outputs always attach (consumers decide whether a net forms).
			if !touched[c.out] {
				touched[c.out] = true
				add(c.out, clbNode[ci])
			}
		}
	}
	for _, sig := range order {
		ids := attach[sig]
		// Dedup while preserving order.
		uniq := ids[:0:0]
		had := map[hypergraph.NodeID]bool{}
		for _, id := range ids {
			if !had[id] {
				had[id] = true
				uniq = append(uniq, id)
			}
		}
		if len(uniq) >= 2 {
			b.AddNet(sig, uniq...)
		}
	}
	return b.Build()
}
