package techmap

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fpart/internal/netlist"
)

func parse(t testing.TB, blif string) *netlist.BlifCircuit {
	t.Helper()
	c, err := netlist.ReadBLIF(strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const adderChain = `
.model chain
.inputs a b c d e
.outputs z
.names a b w1
11 1
.names w1 c w2
11 1
.names w2 d w3
11 1
.names w3 e z
11 1
.end
`

func TestMapChainPacks(t *testing.T) {
	c := parse(t, adderChain)
	m3, err := Map(c, XC3000Arch)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Map(c, XC2000Arch)
	if err != nil {
		t.Fatal(err)
	}
	// K=5 must never need more CLBs than K=4 on the same circuit.
	if m3.NumCLBs() > m2.NumCLBs() {
		t.Errorf("XC3000 used %d CLBs > XC2000 %d", m3.NumCLBs(), m2.NumCLBs())
	}
	// The 4-gate chain has 5 distinct PIs; a single K=5 CLB could hold all
	// gates input-wise but the chain packer is greedy pairwise; at most 4.
	if m3.NumCLBs() > 4 || m3.NumCLBs() < 1 {
		t.Errorf("XC3000 CLBs = %d, want within [1,4]", m3.NumCLBs())
	}
	// Every cell placed exactly once.
	placed := map[int]bool{}
	for _, cl := range m3.Clusters {
		for _, ci := range cl {
			if placed[ci] {
				t.Fatalf("cell %d in two CLBs", ci)
			}
			placed[ci] = true
		}
	}
	if len(placed) != 4 {
		t.Errorf("placed %d cells, want 4", len(placed))
	}
}

func TestMapRespectsInputBound(t *testing.T) {
	c := parse(t, adderChain)
	m, err := Map(c, XC2000Arch)
	if err != nil {
		t.Fatal(err)
	}
	driver := map[string]bool{}
	for _, g := range c.Gates {
		driver[g.Output] = true
	}
	for _, members := range m.Clusters {
		in := map[string]bool{}
		inCluster := map[int]bool{}
		for _, ci := range members {
			inCluster[ci] = true
		}
		for _, ci := range members {
			for _, s := range m.cells[ci].ins {
				internal := false
				for _, cj := range members {
					if m.cells[cj].out == s {
						internal = true
					}
				}
				if !internal {
					in[s] = true
				}
			}
		}
		if len(in) > XC2000Arch.K {
			t.Errorf("cluster %v has %d inputs > K=%d", members, len(in), XC2000Arch.K)
		}
	}
}

func TestMapRejectsWideGate(t *testing.T) {
	blif := `
.model wide
.inputs a b c d e f
.outputs z
.names a b c d e f z
111111 1
.end
`
	c := parse(t, blif)
	if _, err := Map(c, XC2000Arch); err == nil {
		t.Error("6-input gate accepted for K=4")
	}
	if _, err := Map(c, XC3000Arch); err == nil {
		t.Error("6-input gate accepted for K=5")
	}
}

func TestMapLatchPairing(t *testing.T) {
	blif := `
.model seq
.inputs a b clk
.outputs q
.names a b d
11 1
.latch d q re clk 0
.end
`
	c := parse(t, blif)
	m, err := Map(c, XC3000Arch)
	if err != nil {
		t.Fatal(err)
	}
	// The LUT and its FF should share one CLB.
	if m.NumCLBs() != 1 {
		t.Errorf("CLBs = %d, want 1 (LUT+FF pairing)", m.NumCLBs())
	}
}

func TestMapFFCapacity(t *testing.T) {
	// Two latches driven by one gate. XC3000 (2 FFs per CLB) packs
	// everything into one CLB: the gate's output d is consumed only
	// internally, and the two Q pins fit the 2-output bound. XC2000
	// (1 FF per CLB) must split the latches across CLBs.
	blif := `
.model ffs
.inputs a clk
.outputs q1 q2
.names a d
1 1
.latch d q1 re clk 0
.latch d q2 re clk 0
.end
`
	c := parse(t, blif)
	m2, err := Map(c, XC2000Arch)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := Map(c, XC3000Arch)
	if err != nil {
		t.Fatal(err)
	}
	if m3.NumCLBs() != 1 {
		t.Errorf("XC3000 CLBs = %d, want 1", m3.NumCLBs())
	}
	if m2.NumCLBs() < 2 {
		t.Errorf("XC2000 CLBs = %d, want >= 2 (1 FF per CLB)", m2.NumCLBs())
	}
}

func TestMapCycleDetection(t *testing.T) {
	blif := `
.model cyc
.inputs a
.outputs z
.names a y x
11 1
.names x z y
11 1
.names y z
1 1
.end
`
	c := parse(t, blif)
	if _, err := Map(c, XC3000Arch); err == nil {
		t.Error("combinational cycle accepted")
	}
}

func TestMapSequentialLoopOK(t *testing.T) {
	// A loop through a latch is fine (state machines).
	blif := `
.model fsm
.inputs a clk
.outputs q
.names a q d
11 1
.latch d q re clk 0
.end
`
	c := parse(t, blif)
	if _, err := Map(c, XC3000Arch); err != nil {
		t.Errorf("sequential loop rejected: %v", err)
	}
}

func TestMappedHypergraph(t *testing.T) {
	c := parse(t, adderChain)
	m, err := Map(c, XC3000Arch)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumInterior() != m.NumCLBs() {
		t.Errorf("interior = %d, want %d CLBs", h.NumInterior(), m.NumCLBs())
	}
	if h.NumPads() != 6 { // 5 inputs + 1 output
		t.Errorf("pads = %d, want 6", h.NumPads())
	}
	if h.TotalSize() != m.NumCLBs() {
		t.Errorf("size = %d, want %d", h.TotalSize(), m.NumCLBs())
	}
}

// randomBlif builds a random DAG circuit for the shape test.
func randomBlif(r *rand.Rand, gates int) string {
	var sb strings.Builder
	sb.WriteString(".model rnd\n.inputs")
	nIn := 4 + r.Intn(5)
	for i := 0; i < nIn; i++ {
		fmt.Fprintf(&sb, " i%d", i)
	}
	sb.WriteString("\n.outputs z\n")
	signals := make([]string, 0, nIn+gates)
	for i := 0; i < nIn; i++ {
		signals = append(signals, fmt.Sprintf("i%d", i))
	}
	for g := 0; g < gates; g++ {
		k := 1 + r.Intn(4)
		ins := map[string]bool{}
		for len(ins) < k {
			ins[signals[r.Intn(len(signals))]] = true
		}
		out := fmt.Sprintf("w%d", g)
		sb.WriteString(".names")
		for s := range ins {
			// map iteration is fine inside the generator: the circuit it
			// emits is still a fixed string for the test run
			fmt.Fprintf(&sb, " %s", s)
		}
		fmt.Fprintf(&sb, " %s\n", out)
		signals = append(signals, out)
	}
	fmt.Fprintf(&sb, ".names w%d z\n1 1\n.end\n", gates-1)
	return sb.String()
}

func TestMapAreaShapeAcrossK(t *testing.T) {
	// Table 1 shape: for every circuit, XC3000 (K=5) maps to at most as
	// many CLBs as XC2000 (K=4).
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		c := parse(t, randomBlif(r, 30+r.Intn(50)))
		m2, err := Map(c, XC2000Arch)
		if err != nil {
			t.Fatal(err)
		}
		m3, err := Map(c, XC3000Arch)
		if err != nil {
			t.Fatal(err)
		}
		if m3.NumCLBs() > m2.NumCLBs() {
			t.Errorf("trial %d: K=5 used %d > K=4 %d", trial, m3.NumCLBs(), m2.NumCLBs())
		}
		if m2.NumCLBs() == 0 {
			t.Error("no CLBs")
		}
	}
}
