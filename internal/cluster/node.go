package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// ForwardedHeader marks a request already forwarded once; a receiving
// peer executes it locally no matter what the ring says, so a stale or
// disagreeing ring can never bounce a request around the cluster. The
// value is the forwarding peer's advertise address (diagnostic only).
const ForwardedHeader = "X-Fpart-Forwarded"

// PeerHeader names the peer that actually handled a submission; the HTTP
// layer stamps it on every /v1/partition response so clients (and the
// smoke test) can see where a job landed.
const PeerHeader = "X-Fpart-Peer"

// JobSpec is the wire form of one partitioning request, used when a job
// crosses peers (steal handoff). It mirrors the public submit API body.
type JobSpec struct {
	Circuit   string  `json:"circuit,omitempty"`
	Format    string  `json:"format,omitempty"`
	Netlist   string  `json:"netlist,omitempty"`
	Arch      string  `json:"arch,omitempty"`
	Device    string  `json:"device"`
	Resources string  `json:"resources,omitempty"`
	Board     string  `json:"board,omitempty"`
	Fill      float64 `json:"fill,omitempty"`
	Method    string  `json:"method,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

// StolenJob is one queued job handed from a victim to a thief: the
// victim-side job identity plus everything needed to run it elsewhere.
type StolenJob struct {
	// ID is the job's identifier on the victim; the thief echoes it when
	// pushing the result back.
	ID string `json:"id"`
	// Key is the victim's content-addressed fingerprint (diagnostic; the
	// thief recomputes its own from the spec).
	Key  string  `json:"key"`
	Spec JobSpec `json:"spec"`
}

// Source is what the steal loop needs from the local daemon. The service
// layer implements it.
type Source interface {
	// Idle reports whether this peer has spare capacity worth stealing
	// for (empty queue and a free worker).
	Idle() bool
	// Execute runs a stolen job locally and returns the serialized result
	// envelope to push back to the victim.
	Execute(ctx context.Context, job *StolenJob) ([]byte, error)
}

// Config describes this peer's place in the cluster.
type Config struct {
	// Self is this peer's advertise address; it must appear in Peers.
	Self string
	// Peers is the full static membership (including Self), identical on
	// every peer.
	Peers []string
	// Replicas is the virtual-node count per peer (0 = 64).
	Replicas int
	// Client is the HTTP client for peer calls; nil gets a 10s-timeout
	// default. Forwarded submissions use untimed requests bounded by the
	// caller's context instead, since partitioning can outlast any fixed
	// RTT budget.
	Client *http.Client
	// StealInterval paces the steal loop (0 = 500ms).
	StealInterval time.Duration
}

// Node is one peer's view of the cluster: the ring plus the HTTP client
// machinery for forwarding, stealing, and result push-back, with the
// operational counters the /metrics endpoint exposes.
type Node struct {
	cfg  Config
	ring *Ring

	forwards         atomic.Int64
	forwardFallbacks atomic.Int64
	steals           atomic.Int64
	stealFailures    atomic.Int64
}

// New validates cfg and builds the node.
func New(cfg Config) (*Node, error) {
	ring, err := NewRing(cfg.Peers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	self := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			self = true
			break
		}
	}
	if !self {
		return nil, fmt.Errorf("cluster: advertise address %q not in peer list %v", cfg.Self, cfg.Peers)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.StealInterval <= 0 {
		cfg.StealInterval = 500 * time.Millisecond
	}
	return &Node{cfg: cfg, ring: ring}, nil
}

// Self returns this peer's advertise address.
func (n *Node) Self() string { return n.cfg.Self }

// Owner maps a fingerprint key to its owning peer.
func (n *Node) Owner(key string) string { return n.ring.Owner(key) }

// Others lists the peers other than self, in configuration order.
func (n *Node) Others() []string {
	out := make([]string, 0, len(n.cfg.Peers)-1)
	for _, p := range n.cfg.Peers {
		if p != n.cfg.Self {
			out = append(out, p)
		}
	}
	return out
}

// Forward re-sends a submission body to the owner peer, marked with the
// single-hop ForwardedHeader. The returned response is the owner's
// verbatim answer (the caller proxies it to the client); a transport
// error means the owner is unreachable and the caller should fall back
// to local execution (FallbackObserved records that choice).
func (n *Node) Forward(ctx context.Context, owner string, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+"/v1/partition", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	// Deliberately not n.cfg.Client: a cache hit answers in microseconds
	// but a cold fpart run can take seconds, so the forward is bounded by
	// the caller's request context, not the peer-RPC timeout.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return nil, err
	}
	n.forwards.Add(1)
	return resp, nil
}

// FallbackObserved counts an owner-down local fallback.
func (n *Node) FallbackObserved() { n.forwardFallbacks.Add(1) }

// StealFrom asks one peer for a queued job. ok is false when the peer has
// nothing to give (HTTP 204) — not an error.
func (n *Node) StealFrom(ctx context.Context, peer string) (job *StolenJob, ok bool, err error) {
	body, _ := json.Marshal(map[string]string{"from": n.cfg.Self})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer+"/v1/steal", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, false, nil
	case http.StatusOK:
		var sj StolenJob
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&sj); err != nil {
			return nil, false, fmt.Errorf("cluster: bad steal response from %s: %w", peer, err)
		}
		return &sj, true, nil
	default:
		return nil, false, fmt.Errorf("cluster: steal from %s: HTTP %d", peer, resp.StatusCode)
	}
}

// PushResult returns a stolen job's serialized result envelope to its
// victim.
func (n *Node) PushResult(ctx context.Context, peer, id string, env []byte) error {
	body, err := json.Marshal(struct {
		ID       string          `json:"id"`
		Envelope json.RawMessage `json:"envelope"`
	}{ID: id, Envelope: env})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+peer+"/v1/internal/result", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: result push to %s: HTTP %d", peer, resp.StatusCode)
	}
	return nil
}

// StealLoop polls the other peers for work whenever src is idle, runs
// what it gets through src, and pushes results back — the idle half of
// the cluster's load balancing (the busy half is queue backpressure plus
// forwarding). It returns when ctx is cancelled. Run it in its own
// goroutine.
func (n *Node) StealLoop(ctx context.Context, src Source) {
	others := n.Others()
	if len(others) == 0 {
		return
	}
	ticker := time.NewTicker(n.cfg.StealInterval)
	defer ticker.Stop()
	next := 0 // round-robin so one busy peer is not the only victim
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if !src.Idle() {
			continue
		}
		for range others {
			peer := others[next%len(others)]
			next++
			job, ok, err := n.StealFrom(ctx, peer)
			if err != nil || !ok {
				continue // dead or idle peer; try the next one
			}
			env, err := src.Execute(ctx, job)
			if err != nil {
				// The victim's steal TTL requeues the job; nothing to push.
				n.stealFailures.Add(1)
				break
			}
			if err := n.PushResult(ctx, peer, job.ID, env); err != nil {
				n.stealFailures.Add(1)
				break
			}
			n.steals.Add(1)
			break // one job per tick keeps the loop fair under contention
		}
	}
}

// Counters snapshots the node's operational counters for /metrics.
func (n *Node) Counters() (forwards, forwardFallbacks, steals, stealFailures int64) {
	return n.forwards.Load(), n.forwardFallbacks.Load(), n.steals.Load(), n.stealFailures.Load()
}
