package cluster

import (
	"fmt"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 0); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 0); err == nil {
		t.Error("empty peer address accepted")
	}
}

func TestOwnerIsDeterministicAndValid(t *testing.T) {
	peers := []string{"h1:8080", "h2:8080", "h3:8080"}
	r1, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(peers, 0)
	valid := map[string]bool{}
	for _, p := range peers {
		valid[p] = true
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		o := r1.Owner(key)
		if !valid[o] {
			t.Fatalf("owner %q not a peer", o)
		}
		if o != r2.Owner(key) {
			t.Fatalf("rings from the same list disagree on %q", key)
		}
	}
}

// Every peer must route identically regardless of the order its operator
// wrote the -peers list in: the ring is a pure function of the peer SET.
func TestOwnerIndependentOfListOrder(t *testing.T) {
	a, _ := NewRing([]string{"h1:1", "h2:1", "h3:1"}, 32)
	b, _ := NewRing([]string{"h3:1", "h1:1", "h2:1"}, 32)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("list order changed routing for %q", key)
		}
	}
}

func TestOwnershipRoughlyBalanced(t *testing.T) {
	peers := []string{"h1:1", "h2:1", "h3:1", "h4:1"}
	r, _ := NewRing(peers, 64)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / n
		// Perfect balance is 0.25; replicated virtual nodes should keep
		// every peer within a loose 2x band of it.
		if share < 0.125 || share > 0.5 {
			t.Errorf("peer %s owns %.1f%% of keys (counts %v)", p, 100*share, counts)
		}
	}
}

// Adding one peer must only reassign keys onto the new peer, never
// shuffle keys between surviving peers — the property that makes
// consistent hashing worth its salt for cache locality.
func TestMinimalDisruptionOnGrowth(t *testing.T) {
	old, _ := NewRing([]string{"h1:1", "h2:1", "h3:1"}, 64)
	grown, _ := NewRing([]string{"h1:1", "h2:1", "h3:1", "h4:1"}, 64)
	moved, toNew := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		a, b := old.Owner(key), grown.Owner(key)
		if a != b {
			moved++
			if b == "h4:1" {
				toNew++
			}
		}
	}
	if moved != toNew {
		t.Errorf("%d keys moved between surviving peers", moved-toNew)
	}
	if toNew == 0 {
		t.Error("new peer owns nothing")
	}
}
