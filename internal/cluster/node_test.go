package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func peerAddr(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestNewValidatesSelf(t *testing.T) {
	if _, err := New(Config{Self: "x:1", Peers: []string{"a:1", "b:1"}}); err == nil {
		t.Error("self outside the peer list accepted")
	}
	n, err := New(Config{Self: "a:1", Peers: []string{"a:1", "b:1", "c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Others(); len(got) != 2 || got[0] != "b:1" || got[1] != "c:1" {
		t.Errorf("Others() = %v", got)
	}
}

func TestForwardCarriesSingleHopHeader(t *testing.T) {
	var gotHeader, gotBody string
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(ForwardedHeader)
		b := make([]byte, 256)
		n, _ := r.Body.Read(b)
		gotBody = string(b[:n])
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job-7"}`)
	}))
	defer owner.Close()

	self := "self:1"
	n, err := New(Config{Self: self, Peers: []string{self, peerAddr(owner)}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := n.Forward(context.Background(), peerAddr(owner), "application/json", []byte(`{"circuit":"s9234"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if gotHeader != self {
		t.Errorf("forwarded header = %q, want %q", gotHeader, self)
	}
	if gotBody != `{"circuit":"s9234"}` {
		t.Errorf("body = %q", gotBody)
	}
	if f, _, _, _ := n.Counters(); f != 1 {
		t.Errorf("forward counter = %d", f)
	}
}

func TestStealFromProtocol(t *testing.T) {
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer empty.Close()
	loaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req map[string]string
		json.NewDecoder(r.Body).Decode(&req)
		if req["from"] == "" {
			t.Error("steal request missing thief identity")
		}
		json.NewEncoder(w).Encode(StolenJob{
			ID:   "job-3",
			Key:  "deadbeef",
			Spec: JobSpec{Circuit: "s9234", Device: "XC3020", Method: "fpart"},
		})
	}))
	defer loaded.Close()
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer broken.Close()

	self := "self:1"
	n, err := New(Config{Self: self, Peers: []string{self, peerAddr(empty), peerAddr(loaded), peerAddr(broken)}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, ok, err := n.StealFrom(ctx, peerAddr(empty)); ok || err != nil {
		t.Errorf("empty peer: ok=%v err=%v", ok, err)
	}
	job, ok, err := n.StealFrom(ctx, peerAddr(loaded))
	if err != nil || !ok {
		t.Fatalf("loaded peer: ok=%v err=%v", ok, err)
	}
	if job.ID != "job-3" || job.Spec.Circuit != "s9234" {
		t.Errorf("stolen job %+v", job)
	}
	if _, _, err := n.StealFrom(ctx, peerAddr(broken)); err == nil {
		t.Error("broken peer: want error")
	}
}

// TestStealLoopEndToEnd runs the full steal protocol against a fake
// victim: hand one job out, receive its result push, and stop handing
// out more once the source reports busy.
func TestStealLoopEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var pushedID string
	var pushedEnv []byte
	handed := false
	victim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/steal":
			mu.Lock()
			defer mu.Unlock()
			if handed {
				w.WriteHeader(http.StatusNoContent)
				return
			}
			handed = true
			json.NewEncoder(w).Encode(StolenJob{ID: "job-9", Spec: JobSpec{Circuit: "c1355", Device: "XC3020"}})
		case "/v1/internal/result":
			var req struct {
				ID       string          `json:"id"`
				Envelope json.RawMessage `json:"envelope"`
			}
			json.NewDecoder(r.Body).Decode(&req)
			mu.Lock()
			pushedID, pushedEnv = req.ID, req.Envelope
			mu.Unlock()
			w.WriteHeader(http.StatusOK)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer victim.Close()

	self := "self:1"
	n, err := New(Config{
		Self:          self,
		Peers:         []string{self, peerAddr(victim)},
		StealInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	src := &fakeSource{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		n.StealLoop(ctx, src)
		close(done)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		id := pushedID
		mu.Unlock()
		if id != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no result pushed back")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	if pushedID != "job-9" || string(pushedEnv) != `{"k":3}` {
		t.Errorf("push: id=%q env=%s", pushedID, pushedEnv)
	}
	mu.Unlock()
	if got := src.executed.Load(); got != 1 {
		t.Errorf("executed %d jobs, want 1", got)
	}
	if _, _, steals, _ := n.Counters(); steals != 1 {
		t.Errorf("steal counter = %d", steals)
	}

	// A busy source must not steal.
	src.busy.Store(true)
	mu.Lock()
	handed = false
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	if src.executed.Load() != 1 {
		t.Error("stole while busy")
	}

	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("steal loop did not stop on cancel")
	}
}

type fakeSource struct {
	busy     atomic.Bool
	executed atomic.Int64
}

func (f *fakeSource) Idle() bool { return !f.busy.Load() }
func (f *fakeSource) Execute(ctx context.Context, job *StolenJob) ([]byte, error) {
	f.executed.Add(1)
	return []byte(`{"k":3}`), nil
}
