// Package cluster shards the fpartd daemon across a static set of peers.
//
// Membership is configuration, not consensus: every peer is started with
// the same `-peers` list and an `-advertise` address naming itself in that
// list, and all routing state is derived deterministically from the list.
// Three mechanisms ride on top:
//
//   - Routing. A consistent-hash ring (Ring) with replicated virtual
//     nodes assigns every result fingerprint an owner peer. A submission
//     arriving at a non-owner is forwarded over HTTP to the owner, so each
//     fingerprint's cache/store entry concentrates on one peer and the
//     cluster-wide hit rate approaches the single-node rate. Forwarded
//     requests carry the X-Fpart-Forwarded header; a peer never re-forwards
//     a forwarded request (single-hop loop prevention), and a dead owner
//     degrades to local execution rather than an error.
//   - Work stealing. An idle peer polls the others' POST /v1/steal
//     endpoint; a loaded peer hands over one queued job spec. The thief
//     executes it through its own service (budget, cache, and store
//     included) and pushes the serialized result back to the victim, which
//     completes the original job as if it had run locally.
//   - Fault tolerance. Owners that stop answering are bypassed (forward
//     fallback); stolen jobs whose thief disappears are requeued by the
//     victim after a TTL (see internal/service).
//
// The package deliberately has no dependency on internal/service: the
// service implements the small Source interface and owns the HTTP
// endpoints, while this package owns ring math, the peer HTTP client, and
// the steal loop.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over a static peer set. Each peer is
// projected onto the ring at Replicas pseudo-random points (virtual
// nodes), which evens out the key share each peer owns; a key belongs to
// the first virtual node at or clockwise of its hash. The ring is
// immutable after construction and safe for concurrent use.
type Ring struct {
	peers  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds the ring. replicas ≤ 0 selects 64 virtual nodes per
// peer. Peers must be non-empty and unique.
func NewRing(peers []string, replicas int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if replicas <= 0 {
		replicas = 64
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{peers: append([]string(nil), peers...)}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", p, i)),
				peer: p,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare) break ties by peer name so
		// every ring built from the same list routes identically.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Peers returns the peer list the ring was built from.
func (r *Ring) Peers() []string { return r.peers }

// Owner maps a key to the peer owning it.
func (r *Ring) Owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].peer
}

// ringHash maps a string onto the ring's 64-bit circle. SHA-256 keeps the
// virtual-node spread uniform regardless of how similar peer addresses
// are (host:8080 vs host:8081 differ in one character).
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
