package sweep

import (
	"bytes"
	"strings"
	"testing"

	"fpart/internal/device"
)

func runner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner("c3540", device.XC3042)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRunnerUnknownCircuit(t *testing.T) {
	if _, err := NewRunner("nope", device.XC3020); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestLambdaTSweep(t *testing.T) {
	r := runner(t)
	s := r.LambdaT([]float64{0.0, 0.6, 1.0})
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.K <= 0 {
			t.Errorf("λT=%v: K=%d", p.Value, p.K)
		}
	}
	// The published value must be at least as good as the extremes.
	pub := s.Points[1].K
	if pub > s.Points[0].K || pub > s.Points[2].K {
		t.Logf("λT sensitivity: %v (informational; published not always best per-instance)", s.Points)
	}
}

func TestWindowSweeps(t *testing.T) {
	r := runner(t)
	for _, s := range []Series{
		r.Lower2([]float64{0.5, 0.95}),
		r.LowerMulti([]float64{0.0, 0.3}),
		r.Upper([]float64{1.0, 1.05}),
	} {
		if len(s.Points) != 2 {
			t.Fatalf("%s: points = %d", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if !p.Feasible {
				t.Errorf("%s value %v infeasible", s.Name, p.Value)
			}
		}
	}
}

func TestIntSweeps(t *testing.T) {
	r := runner(t)
	sd := r.StackDepth([]int{0, 4})
	ns := r.NSmall([]int{0, 15})
	if len(sd.Points) != 2 || len(ns.Points) != 2 {
		t.Fatal("sweep sizes wrong")
	}
	// StackDepth 0 must disable stacks without crashing, and both NSmall
	// strategies must produce feasible results.
	for _, p := range append(sd.Points, ns.Points...) {
		if !p.Feasible {
			t.Errorf("point %v infeasible", p.Value)
		}
	}
}

func TestFillSweepMonotoneBound(t *testing.T) {
	r := runner(t)
	s := r.Fill([]float64{0.7, 1.0})
	if len(s.Points) != 2 {
		t.Fatal("points wrong")
	}
	// Lower fill → more devices (weakly).
	if s.Points[0].K < s.Points[1].K {
		t.Errorf("δ=0.7 used fewer devices (%d) than δ=1.0 (%d)", s.Points[0].K, s.Points[1].K)
	}
}

func TestSeriesWrite(t *testing.T) {
	r := runner(t)
	s := r.LambdaR([]float64{0.1})
	var buf bytes.Buffer
	s.Write(&buf)
	out := buf.String()
	for _, want := range []string{"sweep lambdaR", "c3540", "devices", "0.100"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~30 partitionings")
	}
	r := runner(t)
	all := r.Defaults()
	if len(all) != 8 {
		t.Fatalf("default sweeps = %d, want 8", len(all))
	}
	for _, s := range all {
		if len(s.Points) == 0 {
			t.Errorf("%s: empty", s.Name)
		}
	}
}
