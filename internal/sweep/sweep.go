// Package sweep runs one-dimensional parameter sensitivity studies over
// FPART's published constants (§4 of the paper): the cost-function weights
// λ^S/λ^T/λ^R, the move-window edges, the solution-stack depth, N_small,
// and the device fill ratio δ. Each sweep holds everything else at the
// published value, runs FPART across the sweep points on a chosen circuit,
// and reports the device count and runtime per point — the sensitivity
// curves behind the paper's "determined on the experimental basis"
// parameter choices.
package sweep

import (
	"fmt"
	"io"
	"time"

	"fpart/internal/core"
	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
)

// Point is one sweep sample.
type Point struct {
	// Value is the swept parameter's value at this sample.
	Value float64
	// K is the resulting device count (+100 marks infeasible outcomes so
	// they stand out in series output).
	K        int
	Feasible bool
	Elapsed  time.Duration
}

// Series is a named sweep result.
type Series struct {
	Name    string
	Circuit string
	Device  device.Device
	M       int
	Points  []Point
}

// Write renders the series as an aligned table.
func (s Series) Write(w io.Writer) {
	fmt.Fprintf(w, "sweep %s on %s/%s (M=%d)\n", s.Name, s.Circuit, s.Device.Name, s.M)
	fmt.Fprintf(w, "%10s %8s %9s %10s\n", "value", "devices", "feasible", "time")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%10.3f %8d %9v %10v\n", p.Value, p.K, p.Feasible, p.Elapsed.Round(time.Millisecond))
	}
}

// Runner owns a circuit/device pair for a set of sweeps.
type Runner struct {
	Circuit string
	Device  device.Device
	h       *hypergraph.Hypergraph
	m       int
}

// NewRunner generates the circuit once for all sweeps.
func NewRunner(circuit string, dev device.Device) (*Runner, error) {
	spec, ok := gen.ByName(circuit)
	if !ok {
		return nil, fmt.Errorf("sweep: unknown circuit %q", circuit)
	}
	h := gen.Generate(spec, dev.Family)
	return &Runner{Circuit: circuit, Device: dev, h: h, m: device.LowerBound(h, dev)}, nil
}

// run executes FPART with cfg and records a point.
func (r *Runner) run(value float64, cfg core.Config) Point {
	start := time.Now()
	res, err := core.Partition(r.h, r.Device, cfg)
	p := Point{Value: value, Elapsed: time.Since(start)}
	if err != nil {
		p.K = -1
		return p
	}
	p.K = res.K
	p.Feasible = res.Feasible
	if !res.Feasible {
		p.K += 100
	}
	return p
}

func (r *Runner) series(name string, values []float64, mk func(v float64) core.Config) Series {
	s := Series{Name: name, Circuit: r.Circuit, Device: r.Device, M: r.m}
	for _, v := range values {
		s.Points = append(s.Points, r.run(v, mk(v)))
	}
	return s
}

// LambdaT sweeps the I/O infeasibility weight λ^T (published 0.6), keeping
// λ^S = 1−λ^T as the paper's weights sum to 1.
func (r *Runner) LambdaT(values []float64) Series {
	return r.series("lambdaT", values, func(v float64) core.Config {
		cfg := core.Default()
		cfg.Engine.Cost.LambdaT = v
		cfg.Engine.Cost.LambdaS = 1 - v
		return cfg
	})
}

// LambdaR sweeps the size-deviation penalty λ^R (published 0.1).
func (r *Runner) LambdaR(values []float64) Series {
	return r.series("lambdaR", values, func(v float64) core.Config {
		cfg := core.Default()
		cfg.Engine.Cost.LambdaR = v
		return cfg
	})
}

// Lower2 sweeps the 2-block window lower edge ε²_min (published 0.95).
func (r *Runner) Lower2(values []float64) Series {
	return r.series("window.lower2", values, func(v float64) core.Config {
		cfg := core.Default()
		cfg.Engine.Windows.Lower2 = v
		return cfg
	})
}

// LowerMulti sweeps the multi-block window lower edge ε*_min (published 0.3).
func (r *Runner) LowerMulti(values []float64) Series {
	return r.series("window.lowerMulti", values, func(v float64) core.Config {
		cfg := core.Default()
		cfg.Engine.Windows.LowerMulti = v
		return cfg
	})
}

// Upper sweeps the window upper edge ε_max (published 1.05).
func (r *Runner) Upper(values []float64) Series {
	return r.series("window.upper", values, func(v float64) core.Config {
		cfg := core.Default()
		cfg.Engine.Windows.Upper = v
		return cfg
	})
}

// StackDepth sweeps D_stack (published 4).
func (r *Runner) StackDepth(values []int) Series {
	s := Series{Name: "stackDepth", Circuit: r.Circuit, Device: r.Device, M: r.m}
	for _, v := range values {
		cfg := core.Default()
		if v == 0 {
			cfg.Engine.StackDepth = -1
		} else {
			cfg.Engine.StackDepth = v
		}
		s.Points = append(s.Points, r.run(float64(v), cfg))
	}
	return s
}

// NSmall sweeps the strategy threshold N_small (published 15).
func (r *Runner) NSmall(values []int) Series {
	s := Series{Name: "nSmall", Circuit: r.Circuit, Device: r.Device, M: r.m}
	for _, v := range values {
		cfg := core.Default()
		cfg.NSmall = v
		s.Points = append(s.Points, r.run(float64(v), cfg))
	}
	return s
}

// Fill sweeps the device filling ratio δ (published 0.9 for XC3000 parts):
// the M recomputation per point shows how derating trades devices for
// routability headroom.
func (r *Runner) Fill(values []float64) Series {
	s := Series{Name: "fill", Circuit: r.Circuit, Device: r.Device, M: r.m}
	for _, v := range values {
		dev := r.Device.WithFill(v)
		start := time.Now()
		res, err := core.Partition(r.h, dev, core.Default())
		p := Point{Value: v, Elapsed: time.Since(start)}
		if err != nil {
			p.K = -1
		} else {
			p.K = res.K
			p.Feasible = res.Feasible
			if !res.Feasible {
				p.K += 100
			}
		}
		s.Points = append(s.Points, p)
	}
	return s
}

// Defaults runs the canonical sweep set used by cmd/sweep.
func (r *Runner) Defaults() []Series {
	return []Series{
		r.LambdaT([]float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}),
		r.LambdaR([]float64{0, 0.05, 0.1, 0.2, 0.4}),
		r.Lower2([]float64{0.5, 0.8, 0.9, 0.95, 1.0}),
		r.LowerMulti([]float64{0.0, 0.15, 0.3, 0.6, 0.9}),
		r.Upper([]float64{1.0, 1.05, 1.15, 1.3}),
		r.StackDepth([]int{0, 2, 4, 8}),
		r.NSmall([]int{0, 5, 15, 100}),
		r.Fill([]float64{0.7, 0.8, 0.9, 1.0}),
	}
}
