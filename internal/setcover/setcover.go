// Package setcover implements a set-covering partitioning baseline in the
// spirit of Chou et al. (DAC 1994, reference [3] of the FPART paper:
// "local ratio-cut" clustering and set covering for huge logic emulation
// systems).
//
// The method decouples cluster generation from selection:
//
//  1. Candidate generation: device-feasible clusters are grown greedily
//     (pin-aware, the same S/T cost the seed constructors use) from many
//     seed nodes spread across the circuit.
//  2. Greedy set cover: candidates are chosen by maximum coverage of
//     still-uncovered nodes until every node is covered.
//  3. Overlap resolution: nodes claimed by several chosen clusters stay
//     with the one that claimed them first; shrunken clusters remain
//     feasible because removing nodes can only reduce size, and a final
//     repair pass sheds any pin violations introduced by the split nets.
package setcover

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fpart/internal/device"
	"fpart/internal/hypergraph"
	"fpart/internal/partition"
	"fpart/internal/seed"
)

// Config tunes the baseline.
type Config struct {
	// Seeds is the number of candidate-generation start points; zero
	// derives ~2·M+8 from the instance.
	Seeds int
	// MaxBlocks caps the result for termination safety (default 4·M+32).
	MaxBlocks int
}

// Result mirrors the other drivers' results.
type Result struct {
	Partition  *partition.Partition
	K          int
	M          int
	Feasible   bool
	Candidates int // clusters generated
	Elapsed    time.Duration
}

// Partition runs candidate generation + greedy set cover.
func Partition(h *hypergraph.Hypergraph, dev device.Device, cfg Config) (*Result, error) {
	start := time.Now()
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if h.NumNodes() == 0 {
		return nil, errors.New("setcover: empty circuit")
	}
	for _, id := range h.InteriorIDs() {
		if h.Node(id).Size > dev.SMax() {
			return nil, fmt.Errorf("setcover: node %q larger than device (%d > %d)",
				h.Node(id).Name, h.Node(id).Size, dev.SMax())
		}
	}
	m := device.LowerBound(h, dev)
	res := &Result{M: m}
	maxBlocks := cfg.MaxBlocks
	if maxBlocks == 0 {
		maxBlocks = 4*m + 32
	}
	nSeeds := cfg.Seeds
	if nSeeds == 0 {
		nSeeds = 2*m + 8
	}

	// Candidate generation over a scratch partition (everything in block
	// 0, so seed.Grow sees the whole circuit as the remainder).
	scratch := partition.New(h, dev)
	seeds := spreadSeeds(h, nSeeds)
	candidates := make([][]hypergraph.NodeID, 0, len(seeds))
	for _, s := range seeds {
		c := seed.Grow(scratch, 0, dev, []hypergraph.NodeID{s})
		if len(c) > 0 {
			candidates = append(candidates, c)
		}
	}
	res.Candidates = len(candidates)

	// Greedy set cover by uncovered-size coverage; ties toward fewer
	// terminals are implicit in generation order determinism.
	covered := make([]bool, h.NumNodes())
	uncovered := h.NumNodes()
	type chosen struct{ nodes []hypergraph.NodeID }
	var picks []chosen
	for uncovered > 0 && len(picks) < maxBlocks {
		bestIdx, bestGain := -1, 0
		for i, c := range candidates {
			gain := 0
			for _, v := range c {
				if !covered[v] {
					gain++
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			// No candidate covers anything new: grow a fresh cluster from
			// the lowest uncovered node on a partition reflecting leftover
			// structure. Simplest robust move: take the uncovered nodes as
			// one more pick chunked greedily below.
			break
		}
		picks = append(picks, chosen{nodes: candidates[bestIdx]})
		for _, v := range candidates[bestIdx] {
			if !covered[v] {
				covered[v] = true
				uncovered--
			}
		}
		// Remove the pick to avoid reselecting it.
		candidates[bestIdx] = candidates[len(candidates)-1]
		candidates = candidates[:len(candidates)-1]
	}

	// Materialize: the chosen covers locate dense regions; each block is
	// regrown live from its cover's anchor against the current remainder
	// (block 0), so overlaps shrink into whatever is still unassigned and
	// every carved block is feasible by construction.
	p := partition.New(h, dev)
	res.Partition = p
	for _, pick := range picks {
		if p.Feasible(0) {
			break
		}
		var anchor hypergraph.NodeID = -1
		for _, v := range pick.nodes {
			if p.Block(v) == 0 && h.Node(v).Kind == hypergraph.Interior {
				anchor = v
				break
			}
		}
		if anchor < 0 {
			continue
		}
		grown := seed.Grow(p, 0, dev, []hypergraph.NodeID{anchor})
		if len(grown) == 0 || len(grown) == p.Nodes(0) {
			continue // absorbing everything means block 0 already fits
		}
		blk := p.AddBlock()
		for _, v := range grown {
			p.Move(v, blk)
		}
	}
	// Peel whatever remains in block 0 until it fits.
	repair(p, dev)
	for !p.Feasible(0) && p.NumBlocks() < maxBlocks {
		var seedNode hypergraph.NodeID = -1
		for _, v := range p.NodesIn(0) {
			if h.Node(v).Kind != hypergraph.Interior {
				continue
			}
			if seedNode < 0 || h.Node(v).Size > h.Node(seedNode).Size {
				seedNode = v
			}
		}
		if seedNode < 0 {
			break
		}
		grown := seed.Grow(p, 0, dev, []hypergraph.NodeID{seedNode})
		if len(grown) == 0 || len(grown) == p.Nodes(0) {
			break
		}
		blk := p.AddBlock()
		for _, v := range grown {
			p.Move(v, blk)
		}
	}
	res.Feasible = p.Classify() == partition.FeasibleSolution
	for b := 0; b < p.NumBlocks(); b++ {
		if p.Nodes(partition.BlockID(b)) > 0 {
			res.K++
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// spreadSeeds picks n interior nodes spread across the node-ID space
// (which, for the synthetic suite, follows the cluster hierarchy), always
// including the biggest node.
func spreadSeeds(h *hypergraph.Hypergraph, n int) []hypergraph.NodeID {
	interior := h.InteriorIDs()
	if len(interior) == 0 {
		return nil
	}
	if n > len(interior) {
		n = len(interior)
	}
	out := make([]hypergraph.NodeID, 0, n)
	seen := map[hypergraph.NodeID]bool{}
	biggest := interior[0]
	for _, v := range interior {
		if h.Node(v).Size > h.Node(biggest).Size {
			biggest = v
		}
	}
	out = append(out, biggest)
	seen[biggest] = true
	for i := 0; len(out) < n; i++ {
		v := interior[(i*len(interior))/n%len(interior)]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
		if i > 4*len(interior) {
			break
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// repair sheds loose nodes from infeasible blocks back to block 0, then
// from block 0 into fresh blocks if needed — mirroring the other drivers'
// safety nets.
func repair(p *partition.Partition, dev device.Device) {
	h := p.Hypergraph()
	for b := 1; b < p.NumBlocks(); b++ {
		id := partition.BlockID(b)
		for !p.Feasible(id) && p.Nodes(id) > 0 {
			var worst hypergraph.NodeID = -1
			score := 0
			sizeViolated := p.Size(id) > dev.SMax()
			for _, v := range p.NodesIn(id) {
				internal := 0
				for _, e := range h.Nets(v) {
					if p.Span(e) == 1 {
						internal++
					}
				}
				s := -internal
				if sizeViolated {
					s += h.Node(v).Size * 8
				}
				if worst < 0 || s > score {
					worst, score = v, s
				}
			}
			p.Move(worst, 0)
		}
	}
}
