package setcover

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpart/internal/device"
	"fpart/internal/gen"
	"fpart/internal/hypergraph"
)

func ring(t testing.TB, c, n, pads int) *hypergraph.Hypergraph {
	t.Helper()
	var b hypergraph.Builder
	sets := make([][]hypergraph.NodeID, c)
	for ci := 0; ci < c; ci++ {
		for i := 0; i < n; i++ {
			sets[ci] = append(sets[ci], b.AddInterior("v", 1))
		}
		for i := 0; i+1 < n; i++ {
			b.AddNet("in", sets[ci][i], sets[ci][i+1])
			if i+2 < n {
				b.AddNet("in2", sets[ci][i], sets[ci][i+2])
			}
		}
	}
	for ci := 0; ci < c; ci++ {
		b.AddNet("bridge", sets[ci][n-1], sets[(ci+1)%c][0])
	}
	for i := 0; i < pads; i++ {
		pd := b.AddPad("p")
		b.AddNet("pe", pd, sets[i%c][i%n])
	}
	return b.MustBuild()
}

func TestSetCoverFindsFeasible(t *testing.T) {
	h := ring(t, 4, 10, 4)
	dev := device.Device{Name: "d", DatasheetCells: 13, Pins: 30, Fill: 1.0}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("infeasible: K=%d M=%d", r.K, r.M)
	}
	if r.K < r.M || r.K > 8 {
		t.Errorf("K=%d outside [M=%d, 8]", r.K, r.M)
	}
	if r.Candidates == 0 {
		t.Error("no candidates generated")
	}
	if err := r.Partition.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetCoverTrivial(t *testing.T) {
	h := ring(t, 2, 4, 2)
	dev := device.Device{Name: "big", DatasheetCells: 50, Pins: 50, Fill: 1.0}
	r, err := Partition(h, dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.K != 1 {
		t.Errorf("K=%d feasible=%v, want 1 feasible", r.K, r.Feasible)
	}
}

func TestSetCoverOnBenchmark(t *testing.T) {
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	r, err := Partition(h, device.XC3042, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("infeasible on s9234/XC3042")
	}
	if r.K > 2*r.M {
		t.Errorf("K=%d > 2·M=%d", r.K, 2*r.M)
	}
}

func TestSetCoverErrors(t *testing.T) {
	var b hypergraph.Builder
	if _, err := Partition(b.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("empty circuit accepted")
	}
	var b2 hypergraph.Builder
	v := b2.AddInterior("huge", 999)
	w := b2.AddInterior("w", 1)
	b2.AddNet("n", v, w)
	if _, err := Partition(b2.MustBuild(), device.XC3020, Config{}); err == nil {
		t.Error("oversized node accepted")
	}
	if _, err := Partition(ring(t, 2, 3, 0), device.Device{Name: "bad"}, Config{}); err == nil {
		t.Error("bad device accepted")
	}
}

func TestSpreadSeeds(t *testing.T) {
	h := ring(t, 3, 10, 2)
	seeds := spreadSeeds(h, 6)
	if len(seeds) != 6 {
		t.Fatalf("seeds = %d", len(seeds))
	}
	seen := map[hypergraph.NodeID]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
		if h.Node(s).Kind != hypergraph.Interior {
			t.Error("pad chosen as seed")
		}
	}
	// Request beyond the interior count clamps.
	if got := spreadSeeds(h, 1000); len(got) > h.NumInterior() {
		t.Errorf("seeds %d exceed interiors", len(got))
	}
}

// Property: set cover always yields a structurally valid partition with
// K >= M when feasible.
func TestQuickSetCoverValid(t *testing.T) {
	f := func(s int64) bool {
		r := rand.New(rand.NewSource(s))
		var b hypergraph.Builder
		n := 8 + r.Intn(40)
		for i := 0; i < n; i++ {
			if r.Intn(10) == 0 {
				b.AddPad("p")
			} else {
				b.AddInterior("v", 1)
			}
		}
		for e := 0; e < n+r.Intn(n); e++ {
			d := 2 + r.Intn(3)
			pins := make([]hypergraph.NodeID, d)
			for i := range pins {
				pins[i] = hypergraph.NodeID(r.Intn(n))
			}
			b.AddNet("e", pins...)
		}
		h := b.MustBuild()
		dev := device.Device{Name: "d", DatasheetCells: 6 + r.Intn(20), Pins: 8 + r.Intn(25), Fill: 1.0}
		res, err := Partition(h, dev, Config{})
		if err != nil {
			return true
		}
		if res.Partition.Validate() != nil {
			return false
		}
		return !res.Feasible || res.K >= res.M
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetCoverS9234(b *testing.B) {
	spec, _ := gen.ByName("s9234")
	h := gen.Generate(spec, device.XC3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(h, device.XC3020, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
