package sanchis

// Cancellation and instrumentation tests for ImproveCtx.

import (
	"context"
	"errors"
	"testing"

	"fpart/internal/obs"
	"fpart/internal/partition"
)

func TestImproveCtxPreCancelled(t *testing.T) {
	h, _ := clusters(t, 3, 8)
	p := scrambled(t, h, testDev, 3)
	before := p.Moves()
	eng := New(p, Default())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := eng.ImproveCtx(ctx, []partition.BlockID{0, 1, 2}, 0, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Passes != 0 || st.MovesApplied != 0 {
		t.Errorf("pre-cancelled improve did work: %+v", st)
	}
	if p.Moves() != before {
		t.Error("pre-cancelled improve mutated the partition")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImproveCtxLeavesValidPartitionOnCancel(t *testing.T) {
	// Cancelling mid-run must still end on a consistent snapshot: the
	// engine restores the best solution found before the cut-off.
	h, _ := clusters(t, 4, 10)
	p := scrambled(t, h, testDev, 4)
	eng := New(p, Default())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ImproveCtx(ctx, []partition.BlockID{0, 1, 2, 3}, 0, 4); err == nil {
		t.Fatal("cancelled improve returned nil error")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("cancelled improve left corrupt partition: %v", err)
	}
}

func TestImproveCompatWrapperMatchesCtx(t *testing.T) {
	run := func(useCtx bool) (Stats, int) {
		h, _ := clusters(t, 3, 8)
		p := scrambled(t, h, testDev, 3)
		eng := New(p, Default())
		if useCtx {
			st, err := eng.ImproveCtx(context.Background(), []partition.BlockID{0, 1, 2}, 0, 3)
			if err != nil {
				t.Fatal(err)
			}
			return st, p.Cut()
		}
		return eng.Improve([]partition.BlockID{0, 1, 2}, 0, 3), p.Cut()
	}
	a, cutA := run(true)
	b, cutB := run(false)
	if a != b || cutA != cutB {
		t.Errorf("ImproveCtx and Improve diverged: %+v cut=%d vs %+v cut=%d", a, cutA, b, cutB)
	}
}

func TestImproveCtxEffortCounters(t *testing.T) {
	h, _ := clusters(t, 3, 8)
	p := scrambled(t, h, testDev, 3)
	eng := New(p, Default())
	st, err := eng.ImproveCtx(context.Background(), []partition.BlockID{0, 1, 2}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Improved {
		t.Fatal("scrambled clusters not improved")
	}
	if st.Passes == 0 || st.MovesEvaluated == 0 || st.MovesApplied == 0 || st.BucketOps == 0 {
		t.Errorf("effort counters zero: %+v", st)
	}
	if st.MovesEvaluated < st.MovesApplied {
		t.Errorf("evaluated %d < applied %d", st.MovesEvaluated, st.MovesApplied)
	}
	// The default move windows must gate at least some candidates on a
	// scrambled instance.
	if st.MovesGated == 0 {
		t.Log("note: no window-gated moves on this instance")
	}
}

func TestStackRestartEventsMatchStats(t *testing.T) {
	h, _ := clusters(t, 4, 10)
	p := scrambled(t, h, testDev, 4)
	var c obs.Collector
	cfg := Default()
	cfg.Obs = obs.NewEmitter(&c, "engine")
	eng := New(p, cfg)
	st, err := eng.ImproveCtx(context.Background(), []partition.BlockID{0, 1, 2, 3}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Count(obs.StackRestart); got != st.Restarts {
		t.Errorf("StackRestart events = %d, want Restarts = %d", got, st.Restarts)
	}
	verdicts := c.Count(obs.SolutionAccepted) + c.Count(obs.SolutionRejected)
	if verdicts != st.Restarts {
		t.Errorf("accept/reject events = %d, want one per restart (%d)", verdicts, st.Restarts)
	}
}
