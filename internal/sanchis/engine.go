// Package sanchis implements the guided multi-way iterative-improvement
// engine at the heart of FPART (Krupnova & Saucier, DATE 1999, §3.3–§3.7).
//
// It is the Sanchis (1989) multi-way extension of Fiduccia–Mattheyses with
// the paper's FPGA-specific guidance:
//
//   - one gain bucket per move direction — k·(k−1) buckets for a k-block
//     pass — with LIFO lists and 2-level (Krishnamurthy) gains for
//     tie-breaking, further ties broken toward size-equilibrating moves
//     max(S_FROM − S_TO) (§3.7);
//   - feasible move regions gating cell moves by block size windows, with
//     separate windows for 2-block and multi-block passes, no upper bound
//     for the remainder, and no I/O-violation gating (§3.5);
//   - solution selection by the lexicographic key (f, d_k, T_SUM, d_k^E)
//     (§3.4) rather than raw cut size;
//   - dual solution stacks — semi-feasible and infeasible — collected during
//     the first pass and used to restart pass series (§3.6).
//
// A 2-block Improve call is exactly the guided FM bipartitioning pass; the
// multi-block call is the Sanchis generalization.
package sanchis

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"fpart/internal/gain"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// Windows defines the feasible move regions of §3.5. The published
// constants are direct multipliers of S_MAX (see DESIGN.md for the
// interpretation note): a non-remainder block must stay within
// [lower·S_MAX, Upper·S_MAX], where lower is Lower2 for 2-block passes and
// LowerMulti for multi-block passes. The remainder has no upper bound, and
// moves out of the remainder are never size-gated.
type Windows struct {
	Upper      float64 // ε_max = 1.05
	Lower2     float64 // ε_min for 2-block passes = 0.95
	LowerMulti float64 // ε_min for multi-block passes = 0.3
}

// DefaultWindows returns the published §4 values.
func DefaultWindows() Windows {
	return Windows{Upper: 1.05, Lower2: 0.95, LowerMulti: 0.3}
}

// Config tunes the engine. Zero values select reasonable defaults via
// normalize.
type Config struct {
	Windows Windows
	Cost    partition.CostParams
	// StackDepth is D_stack, the depth of each of the two solution stacks
	// (§3.6; published value 4). Zero disables solution stacks. Set to -1
	// to explicitly disable while keeping other defaults.
	StackDepth int
	// MaxPasses bounds each pass series. Zero selects 10.
	MaxPasses int
	// UseLevel2 enables 2-level Krishnamurthy gains for tie-breaking.
	UseLevel2 bool
	// GainLevels selects deeper Krishnamurthy look-ahead for tie-breaking
	// (3 or more levels, compared lexicographically). Zero or below 3
	// defers to UseLevel2. Krishnamurthy [8] and the study [7] cited in
	// §3.7 found diminishing returns past level 2 — the ablation bench
	// confirms it here.
	GainLevels int
	// TieWidth is how many cells per direction's top gain list are examined
	// when breaking ties. Zero selects 8.
	TieWidth int
	// DisableWindows turns off all size gating (ablation switch).
	DisableWindows bool
	// CutObjective replaces the infeasibility-distance solution key with
	// the classical (feasible blocks, cut size) key — the cost function of
	// Kuznar et al. [9] that §3.3 contrasts against. Used by the k-way.x
	// baseline and the cost-function ablation.
	CutObjective bool
	// PinGain implements the paper's first future-work suggestion (§5):
	// bucket cells by the real change in block I/O pin counts (−ΔT over
	// the touched blocks) instead of the cut-net gain. A net that stays
	// cut can still free a pin on the source block or cost one on the
	// target; pin gains see that, cut gains do not.
	PinGain bool
	// EarlyStop implements the paper's second future-work suggestion
	// (§5): abort an FM pass after this many consecutive moves without
	// improving the pass-best solution, cutting the time spent exploring
	// the infeasible region. Zero disables (the paper's baseline
	// behaviour: a full pass).
	EarlyStop int
	// DisableDeltaGain replaces the incremental delta-gain move kernel
	// with the wholesale per-neighbour gain recomputation it superseded.
	// The two paths produce bit-identical pass trajectories; the switch
	// exists for verification (differential tests) and ablation benches.
	DisableDeltaGain bool
	// Obs, when non-nil, receives stack-restart and restart-solution
	// accept/reject events (§3.6). The nil emitter is inert; see
	// internal/obs.
	Obs *obs.Emitter
}

func (c Config) normalize() Config {
	if c.Windows == (Windows{}) {
		c.Windows = DefaultWindows()
	}
	if c.Cost == (partition.CostParams{}) {
		c.Cost = partition.DefaultCost()
	}
	if c.StackDepth == 0 {
		c.StackDepth = 4
	} else if c.StackDepth < 0 {
		c.StackDepth = 0
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 10
	}
	if c.TieWidth <= 0 {
		c.TieWidth = 8
	}
	return c
}

// Default returns the paper's published engine configuration: windows
// (1.05, 0.95, 0.3), cost (0.4, 0.6, 0.1), stack depth 4, 2-level gains.
func Default() Config {
	return Config{UseLevel2: true}.normalize()
}

// Stats reports the work done by one Improve call.
type Stats struct {
	Passes         int // FM passes executed, including stack restarts
	MovesEvaluated int // candidate moves examined by best-move selection
	MovesApplied   int // cell moves applied (before rollbacks)
	MovesGated     int // candidates rejected by the §3.5 move windows
	BucketOps      int // gain-bucket mutations (inserts, removals, updates)
	Restarts       int // pass series started from stacked solutions
	Improved       bool
}

// Engine runs improvement passes over a Partition. An Engine may be reused
// across Improve calls on the same partition; it is not safe for concurrent
// use.
type Engine struct {
	p   *partition.Partition
	h   *hypergraph.Hypergraph
	cfg Config

	// per-Improve state
	blocks    []partition.BlockID
	blkIdx    []int // BlockID -> index in blocks, -1 inactive
	remainder partition.BlockID
	m         int
	allowOver bool

	// §3.5 window limits as integers, fixed per Improve call (prepare):
	// a destination may not grow past winUpInt, a source may not shrink
	// below winLowInt. See dirWindowFor for the exactness argument.
	winUpInt, winLowInt int

	// szOf[v] = h.Node(v).Size, packed for cache locality in the
	// admissibility test of the selection loop.
	szOf []int32

	buckets []*gain.Bucket
	locked  []bool
	stamp   []int32
	epoch   int32

	journal []moveRec

	// delta-gain kernel scratch (sized in ImproveCtx). accum holds the
	// pending gain delta of every (cell, outgoing-direction slot) pair; it
	// is all-zero between applyMove calls. touched lists the cells with
	// pending deltas in first-touch order, netBuf receives the per-net
	// transition trace of the move being applied.
	accum   []int32
	touched []int32
	netBuf  []partition.NetDelta

	// tie-breaking scratch: Krishnamurthy level vectors for the candidate
	// and incumbent in selectBest, and the bounded top-gain-list scan
	// buffer. Reused across passes to avoid per-comparison allocation.
	lvCand, lvBest []int
	topScratch     []int32

	// dirBound caches, per direction, a proven upper bound on anything the
	// direction can contribute to best-move selection; applyMove dirties
	// the directions whose source or destination is a move endpoint and
	// initPass resets all. See selectBest.
	dirBound []dirBound

	// level-2 gain memo: one entry per (cell, outgoing-direction slot),
	// valid while g2stamp matches the cell's revision counter. cellRev is
	// bumped for every cell whose level-2 gain may have changed: the moved
	// cell's net neighbourhood after each applied move (pin counts and the
	// fresh lock both live on nets incident to the moved cell) and every
	// cell at pass start, when the locks reset.
	g2cache []int32
	g2stamp []int32
	cellRev []int32

	// parallel initPass scratch: the active cells of the pass and their
	// per-direction seed gains.
	activeV []int32
	gainBuf []int32

	// bucketN/bucketMaxG are the dimensions the direction buckets were
	// built with. Buckets survive direction-count changes (their arrays are
	// per-cell, not per-direction), but a pooled engine rebound to a graph
	// with a different cell count or gain range must drop them.
	bucketN, bucketMaxG int

	// snapFree is the snapshot-buffer freelist: retired solution snapshots
	// (restart stacks, incumbent-best) are refilled via SnapshotInto instead
	// of allocating one assignment copy per snapshot.
	snapFree []partition.Snapshot

	// st accumulates effort counters for the Improve call in flight.
	st *Stats
}

type moveRec struct {
	v        hypergraph.NodeID
	from, to partition.BlockID
}

// New creates an engine over p.
func New(p *partition.Partition, cfg Config) *Engine {
	e := &Engine{}
	e.Reset(p, cfg)
	return e
}

// Reset rebinds the engine to partition p under cfg, reusing every scratch
// buffer that still fits. The per-cell revision counters, lock stamps, and
// level-2 memo stamps are rewound to their initial state, so a pooled engine
// replays exactly the trajectory a fresh New(p, cfg) engine would — the
// determinism guarantee of speculative peeling rests on this.
func (e *Engine) Reset(p *partition.Partition, cfg Config) {
	e.p = p
	e.cfg = cfg.normalize()
	h := p.Hypergraph()
	if e.h != h {
		e.h = h
		e.szOf = nil // node sizes are per-graph; prepare rebuilds
	}
	n := h.NumNodes()
	if cap(e.locked) < n {
		e.locked = make([]bool, n)
		e.stamp = make([]int32, n)
	} else {
		e.locked = e.locked[:n]
		e.stamp = e.stamp[:n]
		clearBools(e.locked[:cap(e.locked)])
		clearInt32s(e.stamp[:cap(e.stamp)])
	}
	e.epoch = 0
	clearInt32s(e.g2stamp[:cap(e.g2stamp)])
	clearInt32s(e.cellRev[:cap(e.cellRev)])
	if e.st == nil {
		e.st = new(Stats) // discarded scratch outside Improve calls
	}
}

// Unbind drops the engine's partition reference so a pooled engine does not
// pin its last run's partition (which escapes to callers via core.Result).
// Graph-shaped caches — buckets, the size table — stay resident and are
// revalidated by the next Reset.
func (e *Engine) Unbind() { e.p = nil }

// clearBools and clearInt32s zero a buffer through its full capacity, so a
// buffer sliced down and back up between Resets cannot resurface stale
// values.
func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

func clearInt32s(b []int32) {
	for i := range b {
		b[i] = 0
	}
}

// nb returns the number of active blocks.
func (e *Engine) nb() int { return len(e.blocks) }

// dirIndex maps an ordered (fromIdx, toIdx) pair to a dense direction index.
func (e *Engine) dirIndex(fi, ti int) int {
	if ti > fi {
		ti--
	}
	return fi*(e.nb()-1) + ti
}

// gain1 returns the first-level (exact Δcut) gain of moving v from F to T.
func (e *Engine) gain1(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	for _, net := range e.h.Nets(v) {
		pf := e.p.PinCount(net, f)
		span := e.p.Span(net)
		if pf == 1 {
			// Net leaves F entirely; it becomes uncut only if its other
			// pins all sit in T.
			if span == 2 && e.p.PinCount(net, t) > 0 {
				g++
			}
		} else if span == 1 {
			// Net entirely inside F with other pins left behind: cut.
			g--
		}
	}
	return g
}

// gainPin returns −ΔT_SUM for moving v from F to T: the net reduction in
// terminal counts across the touched blocks (§5 future work (a)). Terminal
// deltas follow the same case analysis as the partition's incremental
// bookkeeping; pad relocation itself is T-neutral (−1 on F, +1 on T).
func (e *Engine) gainPin(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	for _, net := range e.h.Nets(v) {
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		span := e.p.Span(net)
		fromLeft := pf == 1
		toJoined := pt == 0
		spanAfter := span
		if fromLeft {
			spanAfter--
		}
		if toJoined {
			spanAfter++
		}
		wasCut, isCut := span >= 2, spanAfter >= 2
		switch {
		case wasCut && isCut:
			if fromLeft {
				g++
			}
			if toJoined {
				g--
			}
		case wasCut && !isCut:
			g += 2
		case !wasCut && isCut:
			g -= 2
		}
	}
	return g
}

// gainLevels computes Krishnamurthy gains λ_2..λ_L for moving v from F to
// T, restricted to nets with no pins outside {F, T}. λ_i counts nets whose
// F-side binding number is i minus nets whose T-side binding number is
// i−1; locked pins poison a side (binding number ∞). The result is built
// in out (a reusable scratch buffer) and aliases it.
func (e *Engine) gainLevels(v hypergraph.NodeID, f, t partition.BlockID, maxLevel int, out []int) []int {
	out = out[:0]
	for lvl := 2; lvl <= maxLevel; lvl++ { // levels 2..maxLevel
		out = append(out, 0)
	}
	for _, net := range e.h.Nets(v) {
		if e.p.Span(net) > 2 {
			continue // pins in a third block, cheap O(1) pre-filter
		}
		pins := e.h.Pins(net)
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		if pf+pt != len(pins) {
			continue
		}
		lockF, lockT := 0, 0
		for _, u := range pins {
			if !e.locked[u] {
				continue
			}
			if e.p.Block(u) == f {
				lockF++
			} else {
				lockT++
			}
		}
		for lvl := 2; lvl <= maxLevel; lvl++ {
			if lockF == 0 && pf == lvl {
				out[lvl-2]++
			}
			if lockT == 0 && pt == lvl-1 {
				out[lvl-2]--
			}
		}
	}
	return out
}

// cellGain returns the bucket (first-level) gain under the configured gain
// model.
func (e *Engine) cellGain(v hypergraph.NodeID, f, t partition.BlockID) int {
	if e.cfg.PinGain {
		return e.gainPin(v, f, t)
	}
	return e.gain1(v, f, t)
}

// gain2Of returns gain2 through the per-(cell, direction) memo. A move
// changes the level-2 gain of exactly the cells sharing a net with the
// moved cell, so deltaUpdate (and the recompute path) invalidate that
// neighbourhood and everything else stays cached across selectBest calls.
func (e *Engine) gain2Of(v hypergraph.NodeID, f, t partition.BlockID) int {
	s := e.blkIdx[t]
	if fi := e.blkIdx[f]; s > fi {
		s--
	}
	idx := int(v)*(e.nb()-1) + s
	if e.g2stamp[idx] == e.cellRev[v] {
		return int(e.g2cache[idx])
	}
	g := e.gain2(v, f, t)
	e.g2cache[idx] = int32(g)
	e.g2stamp[idx] = e.cellRev[v]
	return g
}

// gain2 returns the second-level Krishnamurthy gain of moving v from F to T,
// restricted to nets with no pins outside {F, T} (nets spanning other blocks
// cannot change cut state through F→T moves). Locked pins make a side
// unusable, following the classical binding-number definition.
func (e *Engine) gain2(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	for _, net := range e.h.Nets(v) {
		if e.p.Span(net) > 2 {
			continue // pins in a third block, cheap O(1) pre-filter
		}
		pins := e.h.Pins(net)
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		if pf+pt != len(pins) {
			continue
		}
		lockF, lockT := 0, 0
		for _, u := range pins {
			if !e.locked[u] {
				continue
			}
			if e.p.Block(u) == f {
				lockF++
			} else {
				lockT++
			}
		}
		if lockF == 0 && pf-lockF == 2 {
			g++
		}
		if lockT == 0 && pt-lockT == 1 {
			g--
		}
	}
	return g
}

// dirWindow is the feasible move region of §3.5 for one (F, T) direction,
// hoisted out of the per-candidate admissibility test. Block sizes are
// frozen at construction, which is valid for the duration of one selectBest
// scan of the direction (sizes only change when a move is applied).
type dirWindow struct {
	szMax int
}

// dirWindowFor freezes the §3.5 bounds for moves from F to T, reduced to
// the largest admissible cell size. The integer limits winUpInt/winLowInt
// (prepare) are exact equivalents of the float comparisons sizeAdmissible
// has always used: float64(sizeT+sz) > upLim rejects iff sizeT+sz > ⌊upLim⌋,
// and float64(sizeF−sz) < lowLim rejects iff sizeF−sz < ⌈lowLim⌉ — integer
// block sizes are exactly representable, so the reduction cannot flip a
// borderline decision.
func (e *Engine) dirWindowFor(f, t partition.BlockID) dirWindow {
	w := dirWindow{szMax: math.MaxInt}
	if e.cfg.DisableWindows {
		return w
	}
	if t != e.remainder {
		w.szMax = e.winUpInt - e.p.Size(t)
	}
	if f != e.remainder {
		if v := e.p.Size(f) - e.winLowInt; v < w.szMax {
			w.szMax = v
		}
	}
	return w
}

// admits reports whether moving a cell of the given size stays inside the
// window.
func (w dirWindow) admits(sz int) bool { return sz <= w.szMax }

// windowLimits derives the integer §3.5 limits from the current Improve
// context (allowOver, the active block set). prepare caches the result in
// winUpInt/winLowInt for the selection loop; those fields only go stale if
// the context changes without a prepare call, which production code never
// does.
func (e *Engine) windowLimits() (upInt, lowInt int) {
	smax := float64(e.p.Device().SMax())
	up := smax // strict feasibility once M is reached (§3.5 rule 1)
	if e.allowOver {
		up = smax * e.cfg.Windows.Upper
	}
	lower := e.cfg.Windows.LowerMulti
	if len(e.blocks) == 2 {
		lower = e.cfg.Windows.Lower2
	}
	return int(math.Floor(up)), int(math.Ceil(lower * smax))
}

// sizeAdmissible applies the feasible move region of §3.5 to moving a cell
// of the given size from F to T. Off the hot path (selectBest goes through
// dirWindowFor directly), it re-derives the limits from the engine's
// current fields rather than trusting the prepare-time cache.
func (e *Engine) sizeAdmissible(sz int, f, t partition.BlockID) bool {
	e.winUpInt, e.winLowInt = e.windowLimits()
	return e.dirWindowFor(f, t).admits(sz)
}

// parallelInitThreshold is the minimum number of (cell, direction) gain
// computations before initPass fans its gain computation out across a
// worker pool; below it the goroutine overhead outweighs the work. A
// package variable so tests can force the parallel path on small fixtures.
var parallelInitThreshold = 4096

// parallelInitWorkers overrides the initPass worker count when positive;
// zero selects min(GOMAXPROCS, 8). Tests set it to exercise the worker
// pool on machines where GOMAXPROCS is 1.
var parallelInitWorkers = 0

// initPass fills the direction buckets with every unlocked cell of every
// active block and clears locks.
//
// Seed gains are pure reads of the partition — independent per (cell,
// direction) — so they are computed into gainBuf by a bounded worker pool
// when the pass is large enough. Bucket insertion stays serial and follows
// the exact (cell ascending, direction ascending) order the serial path
// used, so the LIFO seed order of every gain list is identical regardless
// of worker count.
func (e *Engine) initPass() {
	n := e.h.NumNodes()
	maxG := e.h.MaxDegree()
	if e.cfg.PinGain {
		maxG *= 2 // pin deltas reach ±2 per net
	}
	nd := e.nb() * (e.nb() - 1)
	if n != e.bucketN || maxG != e.bucketMaxG {
		// Bucket arrays are sized by cell count and gain range; an engine
		// rebound to different dimensions (pooled reuse, a PinGain variant)
		// must rebuild them. Within fixed dimensions buckets survive
		// direction-count changes: slots beyond the previous count hold
		// nil (fresh) or a stale bucket that Clear below resets.
		full := e.buckets[:cap(e.buckets)]
		for i := range full {
			full[i] = nil
		}
		e.bucketN, e.bucketMaxG = n, maxG
	}
	if cap(e.buckets) < nd {
		grown := make([]*gain.Bucket, nd)
		copy(grown, e.buckets[:cap(e.buckets)])
		e.buckets = grown
	}
	e.buckets = e.buckets[:nd]
	for d := range e.buckets {
		if e.buckets[d] == nil {
			e.buckets[d] = gain.NewBucket(n, maxG)
		} else {
			e.buckets[d].Clear()
		}
	}
	for i := range e.locked {
		e.locked[i] = false
	}
	for i := range e.cellRev {
		e.cellRev[i]++ // locks reset: every cached level-2 gain is stale
	}
	if cap(e.dirBound) < nd {
		e.dirBound = make([]dirBound, nd)
	}
	e.dirBound = e.dirBound[:nd]
	for i := range e.dirBound {
		e.dirBound[i] = dirBound{}
	}

	e.activeV = e.activeV[:0]
	for v := 0; v < n; v++ {
		if e.blkIdx[e.p.Block(hypergraph.NodeID(v))] >= 0 {
			e.activeV = append(e.activeV, int32(v))
		}
	}
	slots := e.nb() - 1
	need := len(e.activeV) * slots
	if cap(e.gainBuf) < need {
		e.gainBuf = make([]int32, need)
	}
	e.gainBuf = e.gainBuf[:need]

	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := hypergraph.NodeID(e.activeV[i])
			b := e.p.Block(v)
			fi := e.blkIdx[b]
			o := i * slots
			s := 0
			for ti := range e.blocks {
				if ti == fi {
					continue
				}
				e.gainBuf[o+s] = int32(e.cellGain(v, b, e.blocks[ti]))
				s++
			}
		}
	}
	workers := parallelInitWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if need < parallelInitThreshold || workers < 2 {
		fill(0, len(e.activeV))
	} else {
		var wg sync.WaitGroup
		chunk := (len(e.activeV) + workers - 1) / workers
		for lo := 0; lo < len(e.activeV); lo += chunk {
			hi := lo + chunk
			if hi > len(e.activeV) {
				hi = len(e.activeV)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fill(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	for i, vi := range e.activeV {
		fi := e.blkIdx[e.p.Block(hypergraph.NodeID(vi))]
		base := fi * slots
		o := i * slots
		// Ascending slot order equals ascending direction order: dirIndex
		// is monotone in the destination index for a fixed source.
		for s := 0; s < slots; s++ {
			e.buckets[base+s].Insert(vi, int(e.gainBuf[o+s]))
			e.st.BucketOps++
		}
	}
}

// candidate is a tentative best move.
type candidate struct {
	v     hypergraph.NodeID
	from  partition.BlockID
	to    partition.BlockID
	g1    int
	g2    int
	hasG2 bool
	lv    []int // levels 2..GainLevels, computed lazily
	bal   int   // S_FROM - S_TO at selection time
}

// dirBound is the cached selection bound of one direction: a proof,
// recorded after a full evaluation, that every candidate the direction can
// contribute compares ≤ (g1, g2, bal) under the selection order. The bound
// stays valid until a move dirties the direction — a clean direction's
// bucket, windows, balance, locks, and level-2 gains are all untouched —
// and while it holds, a direction that cannot beat the incumbent is
// skipped without rescanning its gain list.
type dirBound struct {
	valid       bool
	g1, g2, bal int32
}

// disableDirBound turns the per-direction selection-bound cache off; the
// differential test proves the cache never changes a selection.
var disableDirBound = false

// boundSkip reports whether a direction with bound b is provably unable to
// beat the incumbent best (strictly better in (g1, g2, bal) is required to
// win, so a bound ≤ the incumbent's key means skip).
func (e *Engine) boundSkip(b dirBound, best *candidate) bool {
	if b.g1 != int32(best.g1) {
		return b.g1 < int32(best.g1)
	}
	if !best.hasG2 {
		best.g2 = e.gain2Of(best.v, best.from, best.to)
		best.hasG2 = true
	}
	if b.g2 != int32(best.g2) {
		return b.g2 < int32(best.g2)
	}
	return b.bal <= int32(best.bal)
}

// selectBest scans all directions for the best admissible move under the
// ordering (g1, g2, S_FROM−S_TO). Returns ok=false when no admissible move
// exists.
func (e *Engine) selectBest(scratch []int32) (candidate, bool) {
	var best candidate
	found := false
	better := func(c candidate) bool {
		if !found {
			return true
		}
		if c.g1 != best.g1 {
			return c.g1 > best.g1
		}
		if e.cfg.GainLevels >= 3 {
			// c is always a fresh candidate (lv nil on entry) and best.lv
			// is only ever written here, so the two engine scratch buffers
			// never alias: lvCand backs c.lv, lvBest backs best.lv.
			if c.lv == nil {
				e.lvCand = e.gainLevels(c.v, c.from, c.to, e.cfg.GainLevels, e.lvCand)
				c.lv = e.lvCand
			}
			if best.lv == nil {
				e.lvBest = e.gainLevels(best.v, best.from, best.to, e.cfg.GainLevels, e.lvBest)
				best.lv = e.lvBest
			}
			for i := range c.lv {
				if c.lv[i] != best.lv[i] {
					return c.lv[i] > best.lv[i]
				}
			}
		} else if e.cfg.UseLevel2 {
			if !c.hasG2 {
				c.g2 = e.gain2Of(c.v, c.from, c.to)
				c.hasG2 = true
			}
			if !best.hasG2 {
				best.g2 = e.gain2Of(best.v, best.from, best.to)
				best.hasG2 = true
			}
			if c.g2 != best.g2 {
				return c.g2 > best.g2
			}
		}
		return c.bal > best.bal
	}
	// The bound cache assumes the selection order is exactly (g1, g2, bal);
	// deeper Krishnamurthy levels compare lv vectors instead, so it is
	// restricted to the published configuration.
	useBound := e.cfg.UseLevel2 && e.cfg.GainLevels < 3 && !disableDirBound && len(e.dirBound) > 0
	for fi := range e.blocks {
		for ti := range e.blocks {
			if ti == fi {
				continue
			}
			d := e.dirIndex(fi, ti)
			bk := e.buckets[d]
			topG, ok := bk.MaxGain()
			if !ok {
				continue
			}
			if found && topG < best.g1 {
				continue // cannot beat the current best on g1
			}
			if useBound && found && e.dirBound[d].valid && e.boundSkip(e.dirBound[d], &best) {
				continue // cached bound: cannot beat the current best
			}
			f, t := e.blocks[fi], e.blocks[ti]
			bal := e.p.Size(f) - e.p.Size(t)
			win := e.dirWindowFor(f, t)
			// Examine the top gain list first (bounded), then descend
			// until one admissible cell is found.
			scratch = scratch[:0]
			scratch = bk.TopN(e.cfg.TieWidth, scratch)
			examined := false
			for _, vi := range scratch {
				v := hypergraph.NodeID(vi)
				e.st.MovesEvaluated++
				if !win.admits(int(e.szOf[v])) {
					e.st.MovesGated++
					continue
				}
				c := candidate{v: v, from: f, to: t, g1: topG, bal: bal}
				if better(c) {
					if !c.hasG2 && e.cfg.UseLevel2 {
						c.g2 = e.gain2Of(c.v, c.from, c.to)
						c.hasG2 = true
					}
					best, found = c, true
				}
				examined = true
			}
			stoppedByLimit, stoppedByBound := false, false
			if !examined {
				// Whole top list inadmissible: descend in gain order for
				// the first admissible cell (bounded scan).
				limit := 64
				bk.ScanFrom(func(vi int32, g int) bool {
					limit--
					if limit < 0 {
						stoppedByLimit = true
						return false
					}
					if found && g < best.g1 {
						stoppedByBound = true
						return false
					}
					v := hypergraph.NodeID(vi)
					e.st.MovesEvaluated++
					if !win.admits(int(e.szOf[v])) {
						e.st.MovesGated++
						return true
					}
					c := candidate{v: v, from: f, to: t, g1: g, bal: bal}
					if better(c) {
						best, found = c, true
					}
					examined = true
					return false // direction contributes its best admissible only
				})
			}
			if !useBound {
				continue
			}
			switch {
			case examined:
				// Every candidate the direction contributes compared ≤ the
				// best standing right after the direction was processed.
				if !best.hasG2 {
					best.g2 = e.gain2Of(best.v, best.from, best.to)
					best.hasG2 = true
				}
				e.dirBound[d] = dirBound{valid: true, g1: int32(best.g1), g2: int32(best.g2), bal: int32(best.bal)}
			case stoppedByBound:
				// Nothing admissible at or above best.g1: the direction's
				// best contribution sits strictly below it.
				e.dirBound[d] = dirBound{valid: true, g1: int32(best.g1) - 1, g2: math.MaxInt32, bal: math.MaxInt32}
			case stoppedByLimit:
				// Scan truncated: no bound learned, keep any prior one.
			default:
				// Gain list exhausted with nothing admissible: the direction
				// cannot contribute at all while it stays clean.
				e.dirBound[d] = dirBound{valid: true, g1: math.MinInt32, g2: math.MinInt32, bal: math.MinInt32}
			}
		}
	}
	return best, found
}

// cutContrib returns the contribution of one net to the cut gain of a cell
// sitting in block A, moving toward a destination block, given the net's
// pin count in A, its pin count in the destination, and its span. It
// mirrors the per-net case analysis of gain1 exactly (including the
// else-chain: a single-pin net has pcA == 1 and span == 1 and contributes
// nothing).
func cutContrib(pcA, pcDest, span int32) int32 {
	if pcA == 1 {
		if span == 2 && pcDest > 0 {
			return 1
		}
		return 0
	}
	if span == 1 {
		return -1
	}
	return 0
}

// pinContrib is cutContrib's counterpart for the PinGain model, mirroring
// the per-net body of gainPin.
func pinContrib(pcA, pcDest, span int32) int32 {
	fromLeft := pcA == 1
	toJoined := pcDest == 0
	spanAfter := span
	if fromLeft {
		spanAfter--
	}
	if toJoined {
		spanAfter++
	}
	wasCut, isCut := span >= 2, spanAfter >= 2
	switch {
	case wasCut && isCut:
		var g int32
		if fromLeft {
			g++
		}
		if toJoined {
			g--
		}
		return g
	case wasCut && !isCut:
		return 2
	case !wasCut && isCut:
		return -2
	}
	return 0
}

// applyMove commits the move, locks the cell, and updates the gains of
// affected unlocked cells.
//
// The default path is the incremental delta-gain kernel: for every net
// incident to the moved cell it re-evaluates — from the net's pin-count
// transition alone — the per-net gain contribution of each unlocked
// neighbour, in only the directions that can change. For both gain models
// the per-net contribution of a cell in block A toward block B is a
// function of (pins(A), pins(B), span); a move F→T changes the pin counts
// of F and T only, so contributions change only where A ∈ {F, T} (source
// counts changed) or B ∈ {F, T} (destination counts changed). A direction
// between two uninvolved blocks cannot change: the net always has a pin on
// the moved cell (in F before, T after), which rules out the span == 1 and
// span == 2 configurations those contributions would need to differ. Span
// transitions are captured exactly by the partition's NetDelta trace, so
// no fallback recompute is needed; the wholesale path survives as
// Config.DisableDeltaGain and produces bit-identical trajectories (the
// differential tests assert this).
func (e *Engine) applyMove(c candidate) {
	v := c.v
	fi := e.blkIdx[c.from]
	// Remove v from its outgoing buckets.
	for ti := range e.blocks {
		if ti == fi {
			continue
		}
		e.buckets[e.dirIndex(fi, ti)].Remove(int32(v))
		e.st.BucketOps++
	}
	// Dirty the selection-bound cache: only directions whose source or
	// destination is a move endpoint see their buckets, sizes, locks, or
	// level-2 gains change (the same locality argument the delta kernel
	// rests on), so only those bounds are dropped.
	if len(e.dirBound) > 0 {
		ti := e.blkIdx[c.to]
		for j := range e.blocks {
			if j != fi {
				e.dirBound[e.dirIndex(fi, j)] = dirBound{}
				e.dirBound[e.dirIndex(j, fi)] = dirBound{}
			}
			if j != ti {
				e.dirBound[e.dirIndex(ti, j)] = dirBound{}
				e.dirBound[e.dirIndex(j, ti)] = dirBound{}
			}
		}
	}
	if e.cfg.DisableDeltaGain {
		e.applyMoveRecompute(c)
		return
	}
	e.netBuf = e.p.MoveTrace(v, c.to, e.netBuf[:0])
	e.locked[v] = true
	e.journal = append(e.journal, moveRec{v: v, from: c.from, to: c.to})
	e.deltaUpdate(v, c.from, c.to)
}

// applyMoveRecompute is the wholesale update the delta kernel superseded:
// refresh the gains of every unlocked active cell sharing a net with v, in
// every direction, by recomputation. Kept behind Config.DisableDeltaGain
// for differential testing and ablation.
func (e *Engine) applyMoveRecompute(c candidate) {
	v := c.v
	e.p.Move(v, c.to)
	e.locked[v] = true
	e.journal = append(e.journal, moveRec{v: v, from: c.from, to: c.to})
	e.epoch++
	for _, net := range e.h.Nets(v) {
		for _, u := range e.h.Pins(net) {
			if u == v || e.locked[u] || e.stamp[u] == e.epoch {
				continue
			}
			e.stamp[u] = e.epoch
			e.cellRev[u]++ // level-2 memo: neighbourhood changed
			b := e.p.Block(u)
			ufi := e.blkIdx[b]
			if ufi < 0 {
				continue
			}
			for ti := range e.blocks {
				if ti == ufi {
					continue
				}
				g := e.cellGain(u, b, e.blocks[ti])
				e.buckets[e.dirIndex(ufi, ti)].Update(int32(u), g)
				e.st.BucketOps++
			}
		}
	}
}

// deltaUpdate folds the netBuf trace of a just-applied move v: from→to
// into the gain buckets. Phase 1 accumulates per-(cell, direction) gain
// deltas; phase 2 applies each non-zero delta with a single bucket
// adjustment. Cells are processed in first-touch order and directions in
// ascending order, matching the mutation sequence of the recompute path
// (whose Update short-circuits unchanged gains), so the LIFO lists evolve
// identically on both paths.
func (e *Engine) deltaUpdate(v hypergraph.NodeID, from, to partition.BlockID) {
	nb := e.nb()
	slots := nb - 1
	fi := e.blkIdx[from]
	ti := e.blkIdx[to]
	contrib := cutContrib
	if e.cfg.PinGain {
		contrib = pinContrib
	}
	e.epoch++
	e.touched = e.touched[:0]
	for i, net := range e.h.Nets(v) {
		nd := &e.netBuf[i]
		pcFb, pcTb := nd.FromPins, nd.ToPins
		pcFa, pcTa := pcFb-1, pcTb+1
		spanB, spanA := nd.SpanBefore, nd.SpanAfter
		if spanB == spanA && pcFb >= 3 && pcTb >= 2 {
			// No critical transition: the source keeps ≥2 pins, the
			// destination already had ≥2, and the span is unchanged, so
			// both contrib models return identical values before and
			// after for every pin and direction. Only the level-2 memo
			// goes stale (pin counts and v's lock changed on this net):
			// stamp the pins so the flush loop bumps their revision.
			for _, u := range e.h.Pins(net) {
				if u == v || e.locked[u] {
					continue
				}
				if e.stamp[u] != e.epoch {
					e.stamp[u] = e.epoch
					e.touched = append(e.touched, int32(u))
				}
			}
			continue
		}
		for _, u := range e.h.Pins(net) {
			if u == v || e.locked[u] {
				continue
			}
			if e.stamp[u] != e.epoch {
				e.stamp[u] = e.epoch
				e.touched = append(e.touched, int32(u))
			}
			b := e.p.Block(u)
			ufi := e.blkIdx[b]
			if ufi < 0 {
				continue
			}
			base := int(u) * slots
			switch b {
			case from:
				if pcFb >= 3 && spanB == spanA {
					continue // pcA stays ≥2 on both sides: no critical transition
				}
				// Source-side pin count changed: every direction shifts.
				for tj := 0; tj < nb; tj++ {
					if tj == ufi {
						continue
					}
					s := tj
					if tj > ufi {
						s--
					}
					var before, after int32
					if tj == ti {
						before = contrib(pcFb, pcTb, spanB)
						after = contrib(pcFa, pcTa, spanA)
					} else {
						pcD := int32(e.p.PinCount(net, e.blocks[tj]))
						before = contrib(pcFb, pcD, spanB)
						after = contrib(pcFa, pcD, spanA)
					}
					e.accum[base+s] += after - before
				}
			case to:
				if pcTb >= 2 && spanB == spanA {
					continue // pcA stays ≥2 on both sides: no critical transition
				}
				for tj := 0; tj < nb; tj++ {
					if tj == ufi {
						continue
					}
					s := tj
					if tj > ufi {
						s--
					}
					var before, after int32
					if tj == fi {
						before = contrib(pcTb, pcFb, spanB)
						after = contrib(pcTa, pcFa, spanA)
					} else {
						pcD := int32(e.p.PinCount(net, e.blocks[tj]))
						before = contrib(pcTb, pcD, spanB)
						after = contrib(pcTa, pcD, spanA)
					}
					e.accum[base+s] += after - before
				}
			default:
				// Uninvolved source block: only the directions toward the
				// move's endpoints can change, and only when the move
				// created or destroyed a side — otherwise the pcDest>0 /
				// pcDest==0 flags are identical before and after. A span
				// swap (source's last pin leaves while the destination
				// joins, pcFb==1 ∧ pcTb==0) keeps the span yet flips both
				// flags, so it must not take the shortcut.
				if spanB == spanA && pcFb > 1 {
					continue
				}
				pcA := int32(e.p.PinCount(net, b))
				s := fi
				if fi > ufi {
					s--
				}
				e.accum[base+s] += contrib(pcA, pcFa, spanA) - contrib(pcA, pcFb, spanB)
				s = ti
				if ti > ufi {
					s--
				}
				e.accum[base+s] += contrib(pcA, pcTa, spanA) - contrib(pcA, pcTb, spanB)
			}
		}
	}

	for _, ui := range e.touched {
		u := hypergraph.NodeID(ui)
		e.cellRev[u]++ // level-2 memo: neighbourhood changed
		b := e.p.Block(u)
		ufi := e.blkIdx[b]
		if ufi < 0 {
			continue
		}
		base := int(ui) * slots
		row := ufi * slots
		if b == from || b == to {
			for s := 0; s < slots; s++ {
				if d := e.accum[base+s]; d != 0 {
					e.accum[base+s] = 0
					e.buckets[row+s].Adjust(ui, int(d))
					e.st.BucketOps++
				}
			}
			continue
		}
		// Visit the two candidate directions in ascending destination
		// order, matching the recompute path's direction sweep.
		lo, hi := fi, ti
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, tj := range [2]int{lo, hi} {
			s := tj
			if tj > ufi {
				s--
			}
			if d := e.accum[base+s]; d != 0 {
				e.accum[base+s] = 0
				e.buckets[row+s].Adjust(ui, int(d))
				e.st.BucketOps++
			}
		}
	}
}

// stackEntry records a candidate restart solution as a journal prefix.
type stackEntry struct {
	key       partition.Key
	dist      float64 // infeasibility distance, ranking for the infeasible stack
	prefixLen int
	snap      partition.Snapshot
	hasSnap   bool
}

// key evaluates the solution-comparison key under the configured objective.
func (e *Engine) key() partition.Key {
	if e.cfg.CutObjective {
		return partition.Key{F: e.p.CountFeasible(), D: float64(e.p.Cut())}
	}
	return e.p.Key(e.cfg.Cost, e.remainder, e.m)
}

// runPass executes one FM pass over the active blocks: moves cells until no
// admissible move remains, then rolls back to the best prefix. When collect
// is non-nil, every prefix whose key improves on the best-so-far (semi) or
// whose distance improves (infeasible) is offered to the stacks. A
// cancelled ctx ends the pass early; the rollback to the best prefix still
// runs, so the partition is left consistent.
func (e *Engine) runPass(ctx context.Context, collect *stacks) (improved bool, moves int) {
	e.initPass()
	e.journal = e.journal[:0]
	start := e.key()
	best := start
	bestLen := 0
	if cap(e.topScratch) < e.cfg.TieWidth {
		e.topScratch = make([]int32, 0, e.cfg.TieWidth)
	}
	scratch := e.topScratch

	for {
		// Poll cancellation every 64 applied moves so even the long
		// first passes on big circuits abort promptly.
		if moves&63 == 0 && ctx.Err() != nil {
			break
		}
		c, ok := e.selectBest(scratch)
		if !ok {
			break
		}
		e.applyMove(c)
		moves++
		key := e.key()
		if key.Better(best) {
			best = key
			bestLen = len(e.journal)
		}
		if collect != nil {
			collect.offer(e.p.NumBlocks(), key, len(e.journal))
		}
		if e.cfg.EarlyStop > 0 && len(e.journal)-bestLen > e.cfg.EarlyStop {
			break // §5 future work (b): stop drifting from the feasible region
		}
	}

	// Materialize stack snapshots before rolling back (entries reference
	// journal prefixes of this pass).
	if collect != nil {
		collect.materialize(e.p, e.journal, e.takeSnap)
	}

	// Roll back to the best prefix.
	for i := len(e.journal) - 1; i >= bestLen; i-- {
		e.p.Move(e.journal[i].v, e.journal[i].from)
	}
	return best.Better(start), moves
}

// stacks holds the two restart stacks of §3.6.
type stacks struct {
	depth  int
	cost   partition.CostParams
	semi   []stackEntry
	infeas []stackEntry
}

// offer records a prefix in the appropriate stack if it ranks well enough.
// Snapshots are not taken here; materialize replays the journal once at the
// end of the collecting pass. The solution class is derived from the key's
// feasible-block count (k − F ≥ 2 ⇔ infeasible), which holds under both
// the §3.4 key and the CutObjective key — no partition scan needed.
func (s *stacks) offer(k int, key partition.Key, prefixLen int) {
	if s.depth == 0 {
		return
	}
	entry := stackEntry{key: key, dist: key.D, prefixLen: prefixLen}
	if k-key.F >= 2 {
		s.infeas = insertRanked(s.infeas, entry, s.depth, func(a, b stackEntry) bool {
			return a.dist < b.dist
		})
	} else {
		s.semi = insertRanked(s.semi, entry, s.depth, func(a, b stackEntry) bool {
			return a.key.Better(b.key)
		})
	}
}

// insertRanked keeps list sorted best-first, bounded to depth, replacing the
// worst entry when full. Entries with identical rank keys are deduplicated.
func insertRanked(list []stackEntry, ent stackEntry, depth int, less func(a, b stackEntry) bool) []stackEntry {
	for _, ex := range list {
		if ex.key == ent.key {
			return list // duplicate solution quality: keep the earlier one
		}
	}
	pos := sort.Search(len(list), func(i int) bool { return less(ent, list[i]) })
	if pos == len(list) && len(list) >= depth {
		return list
	}
	list = append(list, stackEntry{})
	copy(list[pos+1:], list[pos:])
	list[pos] = ent
	if len(list) > depth {
		list = list[:depth]
	}
	return list
}

// materialize converts journal-prefix entries into real snapshots by
// replaying the pass journal from its start state. Called exactly once, at
// the end of the collecting pass, while the journal is fully applied. take
// snapshots the partition's current state (the engine passes takeSnap, so
// the buffers come from the freelist).
func (s *stacks) materialize(p *partition.Partition, journal []moveRec, take func() partition.Snapshot) {
	all := append(append([]*stackEntry{}, refs(s.semi)...), refs(s.infeas)...)
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].prefixLen > all[j].prefixLen })
	// Walk backwards from the fully-applied state, undoing moves and
	// snapshotting at each requested prefix length.
	pos := len(journal)
	for _, ent := range all {
		for pos > ent.prefixLen {
			pos--
			p.Move(journal[pos].v, journal[pos].from)
		}
		ent.snap = take()
		ent.hasSnap = true
	}
	// Reapply to return to the fully-applied state runPass expects.
	for ; pos < len(journal); pos++ {
		p.Move(journal[pos].v, journal[pos].to)
	}
}

func refs(list []stackEntry) []*stackEntry {
	out := make([]*stackEntry, len(list))
	for i := range list {
		out[i] = &list[i]
	}
	return out
}

// Improve runs the full §3.6 improvement procedure over the given active
// blocks: a pass series from the current solution (collecting restart
// solutions during the first pass), then a pass series from each stacked
// semi-feasible and infeasible solution, finally restoring the best solution
// seen. remainder designates the current remainder block (NoBlock for
// contexts without one), and m is the device lower bound M.
func (e *Engine) Improve(blocks []partition.BlockID, remainder partition.BlockID, m int) Stats {
	st, _ := e.ImproveCtx(context.Background(), blocks, remainder, m)
	return st
}

// prepare initializes the per-Improve state: the active block set and its
// index, the move-window context, and every scratch buffer the pass loop
// reuses. Split out of ImproveCtx so tests can drive individual passes.
func (e *Engine) prepare(blocks []partition.BlockID, remainder partition.BlockID, m int) {
	e.blocks = blocks
	e.remainder = remainder
	e.m = m
	e.allowOver = e.p.NumBlocks() <= m
	e.winUpInt, e.winLowInt = e.windowLimits()
	if cap(e.blkIdx) < e.p.NumBlocks() {
		e.blkIdx = make([]int, e.p.NumBlocks())
	}
	e.blkIdx = e.blkIdx[:e.p.NumBlocks()]
	for i := range e.blkIdx {
		e.blkIdx[i] = -1
	}
	for i, b := range blocks {
		e.blkIdx[b] = i
	}
	// Size the delta-gain accumulator: one pending delta per (cell,
	// outgoing-direction slot). It is all-zero between moves by invariant;
	// re-zero defensively because the slot layout changes with the active
	// block count.
	slots := len(blocks) - 1
	if need := e.h.NumNodes() * slots; cap(e.accum) < need {
		e.accum = make([]int32, need)
	} else {
		e.accum = e.accum[:need]
		for i := range e.accum {
			e.accum[i] = 0
		}
	}
	if cap(e.touched) < e.h.NumNodes() {
		e.touched = make([]int32, 0, e.h.NumNodes())
	}
	// Level-2 gain memo, laid out like accum. No clearing needed: entries
	// are only trusted when their stamp matches the cell revision, and
	// initPass advances every revision past any stamp written earlier.
	if need := e.h.NumNodes() * slots; cap(e.g2cache) < need {
		e.g2cache = make([]int32, need)
		e.g2stamp = make([]int32, need)
	} else {
		e.g2cache = e.g2cache[:need]
		e.g2stamp = e.g2stamp[:need]
	}
	if cap(e.cellRev) < e.h.NumNodes() {
		e.cellRev = make([]int32, e.h.NumNodes())
	}
	e.cellRev = e.cellRev[:e.h.NumNodes()]
	if e.netBuf == nil {
		// Must be non-nil even when empty: MoveTrace records nothing into
		// a nil buffer.
		e.netBuf = make([]partition.NetDelta, 0, e.h.MaxDegree())
	}
	if len(e.szOf) != e.h.NumNodes() {
		e.szOf = make([]int32, e.h.NumNodes())
		for v := range e.szOf {
			e.szOf[v] = int32(e.h.Node(hypergraph.NodeID(v)).Size)
		}
	}
}

// ImproveCtx is Improve with cancellation: the pass loop polls ctx and
// aborts promptly when it is cancelled or its deadline passes, restoring
// the best solution seen so far (the partition is always left consistent)
// and returning ctx's error alongside the partial Stats.
func (e *Engine) ImproveCtx(ctx context.Context, blocks []partition.BlockID, remainder partition.BlockID, m int) (Stats, error) {
	var st Stats
	if len(blocks) < 2 {
		return st, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return st, err // don't even fill the buckets on a dead context
	}
	e.st = &st
	defer func() { e.st = new(Stats) }()
	e.prepare(blocks, remainder, m)

	collect := &stacks{depth: e.cfg.StackDepth, cost: e.cfg.Cost}
	startKey := e.key()

	series := func(col *stacks) {
		for pass := 0; pass < e.cfg.MaxPasses; pass++ {
			var c *stacks
			if col != nil && pass == 0 {
				c = col
			}
			improved, moves := e.runPass(ctx, c)
			st.Passes++
			st.MovesApplied += moves
			if !improved || ctx.Err() != nil {
				break
			}
		}
	}

	series(collect)
	bestKey := e.key()
	bestSnap := e.takeSnap()

	restart := func(label string, ents []stackEntry) {
		for _, ent := range ents {
			if !ent.hasSnap {
				continue
			}
			if ctx.Err() != nil {
				return
			}
			e.p.Restore(ent.snap)
			st.Restarts++
			e.cfg.Obs.Emit(obs.Event{Type: obs.StackRestart, Label: label, Moves: ent.prefixLen})
			series(nil)
			if key := e.key(); key.Better(bestKey) {
				bestKey = key
				e.giveSnap(bestSnap)
				bestSnap = e.takeSnap()
				e.cfg.Obs.Emit(obs.Event{Type: obs.SolutionAccepted, Label: label})
			} else {
				e.cfg.Obs.Emit(obs.Event{Type: obs.SolutionRejected, Label: label})
			}
		}
	}
	restart("semi", collect.semi)
	restart("infeasible", collect.infeas)

	e.p.Restore(bestSnap)
	e.giveSnap(bestSnap)
	retireSnaps(e, collect.semi)
	retireSnaps(e, collect.infeas)
	st.Improved = bestKey.Better(startKey)
	return st, ctx.Err()
}

// retireSnaps returns the stack entries' snapshot buffers to the engine's
// freelist once the restart series are done with them.
func retireSnaps(e *Engine, ents []stackEntry) {
	for i := range ents {
		if ents[i].hasSnap {
			e.giveSnap(ents[i].snap)
			ents[i] = stackEntry{}
		}
	}
}

// takeSnap snapshots the current partition into a buffer drawn from the
// snapshot freelist (or a fresh one when the freelist is dry).
func (e *Engine) takeSnap() partition.Snapshot {
	var buf partition.Snapshot
	if n := len(e.snapFree); n > 0 {
		buf = e.snapFree[n-1]
		e.snapFree = e.snapFree[:n-1]
	}
	return e.p.SnapshotInto(buf)
}

// giveSnap retires a snapshot's buffer to the freelist. The caller must not
// use the snapshot afterwards: the next takeSnap overwrites it.
func (e *Engine) giveSnap(s partition.Snapshot) {
	e.snapFree = append(e.snapFree, s)
}
