// Package sanchis implements the guided multi-way iterative-improvement
// engine at the heart of FPART (Krupnova & Saucier, DATE 1999, §3.3–§3.7).
//
// It is the Sanchis (1989) multi-way extension of Fiduccia–Mattheyses with
// the paper's FPGA-specific guidance:
//
//   - one gain bucket per move direction — k·(k−1) buckets for a k-block
//     pass — with LIFO lists and 2-level (Krishnamurthy) gains for
//     tie-breaking, further ties broken toward size-equilibrating moves
//     max(S_FROM − S_TO) (§3.7);
//   - feasible move regions gating cell moves by block size windows, with
//     separate windows for 2-block and multi-block passes, no upper bound
//     for the remainder, and no I/O-violation gating (§3.5);
//   - solution selection by the lexicographic key (f, d_k, T_SUM, d_k^E)
//     (§3.4) rather than raw cut size;
//   - dual solution stacks — semi-feasible and infeasible — collected during
//     the first pass and used to restart pass series (§3.6).
//
// A 2-block Improve call is exactly the guided FM bipartitioning pass; the
// multi-block call is the Sanchis generalization.
package sanchis

import (
	"context"
	"sort"

	"fpart/internal/gain"
	"fpart/internal/hypergraph"
	"fpart/internal/obs"
	"fpart/internal/partition"
)

// Windows defines the feasible move regions of §3.5. The published
// constants are direct multipliers of S_MAX (see DESIGN.md for the
// interpretation note): a non-remainder block must stay within
// [lower·S_MAX, Upper·S_MAX], where lower is Lower2 for 2-block passes and
// LowerMulti for multi-block passes. The remainder has no upper bound, and
// moves out of the remainder are never size-gated.
type Windows struct {
	Upper      float64 // ε_max = 1.05
	Lower2     float64 // ε_min for 2-block passes = 0.95
	LowerMulti float64 // ε_min for multi-block passes = 0.3
}

// DefaultWindows returns the published §4 values.
func DefaultWindows() Windows {
	return Windows{Upper: 1.05, Lower2: 0.95, LowerMulti: 0.3}
}

// Config tunes the engine. Zero values select reasonable defaults via
// normalize.
type Config struct {
	Windows Windows
	Cost    partition.CostParams
	// StackDepth is D_stack, the depth of each of the two solution stacks
	// (§3.6; published value 4). Zero disables solution stacks. Set to -1
	// to explicitly disable while keeping other defaults.
	StackDepth int
	// MaxPasses bounds each pass series. Zero selects 10.
	MaxPasses int
	// UseLevel2 enables 2-level Krishnamurthy gains for tie-breaking.
	UseLevel2 bool
	// GainLevels selects deeper Krishnamurthy look-ahead for tie-breaking
	// (3 or more levels, compared lexicographically). Zero or below 3
	// defers to UseLevel2. Krishnamurthy [8] and the study [7] cited in
	// §3.7 found diminishing returns past level 2 — the ablation bench
	// confirms it here.
	GainLevels int
	// TieWidth is how many cells per direction's top gain list are examined
	// when breaking ties. Zero selects 8.
	TieWidth int
	// DisableWindows turns off all size gating (ablation switch).
	DisableWindows bool
	// CutObjective replaces the infeasibility-distance solution key with
	// the classical (feasible blocks, cut size) key — the cost function of
	// Kuznar et al. [9] that §3.3 contrasts against. Used by the k-way.x
	// baseline and the cost-function ablation.
	CutObjective bool
	// PinGain implements the paper's first future-work suggestion (§5):
	// bucket cells by the real change in block I/O pin counts (−ΔT over
	// the touched blocks) instead of the cut-net gain. A net that stays
	// cut can still free a pin on the source block or cost one on the
	// target; pin gains see that, cut gains do not.
	PinGain bool
	// EarlyStop implements the paper's second future-work suggestion
	// (§5): abort an FM pass after this many consecutive moves without
	// improving the pass-best solution, cutting the time spent exploring
	// the infeasible region. Zero disables (the paper's baseline
	// behaviour: a full pass).
	EarlyStop int
	// Obs, when non-nil, receives stack-restart and restart-solution
	// accept/reject events (§3.6). The nil emitter is inert; see
	// internal/obs.
	Obs *obs.Emitter
}

func (c Config) normalize() Config {
	if c.Windows == (Windows{}) {
		c.Windows = DefaultWindows()
	}
	if c.Cost == (partition.CostParams{}) {
		c.Cost = partition.DefaultCost()
	}
	if c.StackDepth == 0 {
		c.StackDepth = 4
	} else if c.StackDepth < 0 {
		c.StackDepth = 0
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 10
	}
	if c.TieWidth <= 0 {
		c.TieWidth = 8
	}
	return c
}

// Default returns the paper's published engine configuration: windows
// (1.05, 0.95, 0.3), cost (0.4, 0.6, 0.1), stack depth 4, 2-level gains.
func Default() Config {
	return Config{UseLevel2: true}.normalize()
}

// Stats reports the work done by one Improve call.
type Stats struct {
	Passes         int // FM passes executed, including stack restarts
	MovesEvaluated int // candidate moves examined by best-move selection
	MovesApplied   int // cell moves applied (before rollbacks)
	MovesGated     int // candidates rejected by the §3.5 move windows
	BucketOps      int // gain-bucket mutations (inserts, removals, updates)
	Restarts       int // pass series started from stacked solutions
	Improved       bool
}

// Engine runs improvement passes over a Partition. An Engine may be reused
// across Improve calls on the same partition; it is not safe for concurrent
// use.
type Engine struct {
	p   *partition.Partition
	h   *hypergraph.Hypergraph
	cfg Config

	// per-Improve state
	blocks    []partition.BlockID
	blkIdx    []int // BlockID -> index in blocks, -1 inactive
	remainder partition.BlockID
	m         int
	allowOver bool

	buckets []*gain.Bucket
	locked  []bool
	stamp   []int32
	epoch   int32

	journal []moveRec

	// st accumulates effort counters for the Improve call in flight.
	st *Stats
}

type moveRec struct {
	v        hypergraph.NodeID
	from, to partition.BlockID
}

// New creates an engine over p.
func New(p *partition.Partition, cfg Config) *Engine {
	cfg = cfg.normalize()
	return &Engine{
		p:      p,
		h:      p.Hypergraph(),
		cfg:    cfg,
		locked: make([]bool, p.Hypergraph().NumNodes()),
		stamp:  make([]int32, p.Hypergraph().NumNodes()),
		st:     new(Stats), // discarded scratch outside Improve calls
	}
}

// nb returns the number of active blocks.
func (e *Engine) nb() int { return len(e.blocks) }

// dirIndex maps an ordered (fromIdx, toIdx) pair to a dense direction index.
func (e *Engine) dirIndex(fi, ti int) int {
	if ti > fi {
		ti--
	}
	return fi*(e.nb()-1) + ti
}

// gain1 returns the first-level (exact Δcut) gain of moving v from F to T.
func (e *Engine) gain1(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	for _, net := range e.h.Nets(v) {
		pf := e.p.PinCount(net, f)
		span := e.p.Span(net)
		if pf == 1 {
			// Net leaves F entirely; it becomes uncut only if its other
			// pins all sit in T.
			if span == 2 && e.p.PinCount(net, t) > 0 {
				g++
			}
		} else if span == 1 {
			// Net entirely inside F with other pins left behind: cut.
			g--
		}
	}
	return g
}

// gainPin returns −ΔT_SUM for moving v from F to T: the net reduction in
// terminal counts across the touched blocks (§5 future work (a)). Terminal
// deltas follow the same case analysis as the partition's incremental
// bookkeeping; pad relocation itself is T-neutral (−1 on F, +1 on T).
func (e *Engine) gainPin(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	for _, net := range e.h.Nets(v) {
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		span := e.p.Span(net)
		fromLeft := pf == 1
		toJoined := pt == 0
		spanAfter := span
		if fromLeft {
			spanAfter--
		}
		if toJoined {
			spanAfter++
		}
		wasCut, isCut := span >= 2, spanAfter >= 2
		switch {
		case wasCut && isCut:
			if fromLeft {
				g++
			}
			if toJoined {
				g--
			}
		case wasCut && !isCut:
			g += 2
		case !wasCut && isCut:
			g -= 2
		}
	}
	return g
}

// gainLevels computes Krishnamurthy gains λ_2..λ_L for moving v from F to
// T, restricted to nets with no pins outside {F, T}. λ_i counts nets whose
// F-side binding number is i minus nets whose T-side binding number is
// i−1; locked pins poison a side (binding number ∞).
func (e *Engine) gainLevels(v hypergraph.NodeID, f, t partition.BlockID, maxLevel int) []int {
	out := make([]int, maxLevel-1) // levels 2..maxLevel
	for _, net := range e.h.Nets(v) {
		pins := e.h.Pins(net)
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		if pf+pt != len(pins) {
			continue
		}
		lockF, lockT := 0, 0
		for _, u := range pins {
			if !e.locked[u] {
				continue
			}
			if e.p.Block(u) == f {
				lockF++
			} else {
				lockT++
			}
		}
		for lvl := 2; lvl <= maxLevel; lvl++ {
			if lockF == 0 && pf == lvl {
				out[lvl-2]++
			}
			if lockT == 0 && pt == lvl-1 {
				out[lvl-2]--
			}
		}
	}
	return out
}

// cellGain returns the bucket (first-level) gain under the configured gain
// model.
func (e *Engine) cellGain(v hypergraph.NodeID, f, t partition.BlockID) int {
	if e.cfg.PinGain {
		return e.gainPin(v, f, t)
	}
	return e.gain1(v, f, t)
}

// gain2 returns the second-level Krishnamurthy gain of moving v from F to T,
// restricted to nets with no pins outside {F, T} (nets spanning other blocks
// cannot change cut state through F→T moves). Locked pins make a side
// unusable, following the classical binding-number definition.
func (e *Engine) gain2(v hypergraph.NodeID, f, t partition.BlockID) int {
	g := 0
	for _, net := range e.h.Nets(v) {
		pins := e.h.Pins(net)
		pf := e.p.PinCount(net, f)
		pt := e.p.PinCount(net, t)
		if pf+pt != len(pins) {
			continue
		}
		lockF, lockT := 0, 0
		for _, u := range pins {
			if !e.locked[u] {
				continue
			}
			if e.p.Block(u) == f {
				lockF++
			} else {
				lockT++
			}
		}
		if lockF == 0 && pf-lockF == 2 {
			g++
		}
		if lockT == 0 && pt-lockT == 1 {
			g--
		}
	}
	return g
}

// sizeAdmissible applies the feasible move region of §3.5 to moving a cell
// of the given size from F to T.
func (e *Engine) sizeAdmissible(sz int, f, t partition.BlockID) bool {
	if e.cfg.DisableWindows {
		return true
	}
	smax := float64(e.p.Device().SMax())
	if t != e.remainder {
		limit := smax // strict feasibility once M is reached (§3.5 rule 1)
		if e.allowOver {
			limit = smax * e.cfg.Windows.Upper
		}
		if float64(e.p.Size(t)+sz) > limit {
			return false
		}
	}
	if f != e.remainder {
		lower := e.cfg.Windows.LowerMulti
		if e.nb() == 2 {
			lower = e.cfg.Windows.Lower2
		}
		if float64(e.p.Size(f)-sz) < lower*smax {
			return false
		}
	}
	return true
}

// initPass fills the direction buckets with every unlocked cell of every
// active block and clears locks.
func (e *Engine) initPass() {
	n := e.h.NumNodes()
	maxG := e.h.MaxDegree()
	if e.cfg.PinGain {
		maxG *= 2 // pin deltas reach ±2 per net
	}
	nd := e.nb() * (e.nb() - 1)
	if cap(e.buckets) < nd {
		e.buckets = make([]*gain.Bucket, nd)
	}
	e.buckets = e.buckets[:nd]
	for d := range e.buckets {
		if e.buckets[d] == nil {
			e.buckets[d] = gain.NewBucket(n, maxG)
		} else {
			e.buckets[d].Clear()
		}
	}
	for i := range e.locked {
		e.locked[i] = false
	}
	for v := 0; v < n; v++ {
		b := e.p.Block(hypergraph.NodeID(v))
		fi := e.blkIdx[b]
		if fi < 0 {
			continue
		}
		for ti := range e.blocks {
			if ti == fi {
				continue
			}
			g := e.cellGain(hypergraph.NodeID(v), b, e.blocks[ti])
			e.buckets[e.dirIndex(fi, ti)].Insert(int32(v), g)
			e.st.BucketOps++
		}
	}
}

// candidate is a tentative best move.
type candidate struct {
	v     hypergraph.NodeID
	from  partition.BlockID
	to    partition.BlockID
	g1    int
	g2    int
	hasG2 bool
	lv    []int // levels 2..GainLevels, computed lazily
	bal   int   // S_FROM - S_TO at selection time
}

// selectBest scans all directions for the best admissible move under the
// ordering (g1, g2, S_FROM−S_TO). Returns ok=false when no admissible move
// exists.
func (e *Engine) selectBest(scratch []int32) (candidate, bool) {
	var best candidate
	found := false
	better := func(c candidate) bool {
		if !found {
			return true
		}
		if c.g1 != best.g1 {
			return c.g1 > best.g1
		}
		if e.cfg.GainLevels >= 3 {
			if c.lv == nil {
				c.lv = e.gainLevels(c.v, c.from, c.to, e.cfg.GainLevels)
			}
			if best.lv == nil {
				best.lv = e.gainLevels(best.v, best.from, best.to, e.cfg.GainLevels)
			}
			for i := range c.lv {
				if c.lv[i] != best.lv[i] {
					return c.lv[i] > best.lv[i]
				}
			}
		} else if e.cfg.UseLevel2 {
			if !c.hasG2 {
				c.g2 = e.gain2(c.v, c.from, c.to)
				c.hasG2 = true
			}
			if !best.hasG2 {
				best.g2 = e.gain2(best.v, best.from, best.to)
				best.hasG2 = true
			}
			if c.g2 != best.g2 {
				return c.g2 > best.g2
			}
		}
		return c.bal > best.bal
	}
	for fi := range e.blocks {
		for ti := range e.blocks {
			if ti == fi {
				continue
			}
			f, t := e.blocks[fi], e.blocks[ti]
			bk := e.buckets[e.dirIndex(fi, ti)]
			topG, ok := bk.MaxGain()
			if !ok {
				continue
			}
			if found && topG < best.g1 {
				continue // cannot beat the current best on g1
			}
			bal := e.p.Size(f) - e.p.Size(t)
			// Examine the top gain list first (bounded), then descend
			// until one admissible cell is found.
			scratch = scratch[:0]
			scratch = bk.TopN(e.cfg.TieWidth, scratch)
			examined := false
			for _, vi := range scratch {
				v := hypergraph.NodeID(vi)
				e.st.MovesEvaluated++
				if !e.sizeAdmissible(e.h.Node(v).Size, f, t) {
					e.st.MovesGated++
					continue
				}
				c := candidate{v: v, from: f, to: t, g1: topG, bal: bal}
				if better(c) {
					if !c.hasG2 && e.cfg.UseLevel2 {
						c.g2 = e.gain2(c.v, c.from, c.to)
						c.hasG2 = true
					}
					best, found = c, true
				}
				examined = true
			}
			if examined {
				continue
			}
			// Whole top list inadmissible: descend in gain order for the
			// first admissible cell (bounded scan).
			limit := 64
			bk.ScanFrom(func(vi int32, g int) bool {
				limit--
				if limit < 0 {
					return false
				}
				if found && g < best.g1 {
					return false
				}
				v := hypergraph.NodeID(vi)
				e.st.MovesEvaluated++
				if !e.sizeAdmissible(e.h.Node(v).Size, f, t) {
					e.st.MovesGated++
					return true
				}
				c := candidate{v: v, from: f, to: t, g1: g, bal: bal}
				if better(c) {
					best, found = c, true
				}
				return false // direction contributes its best admissible only
			})
		}
	}
	return best, found
}

// applyMove commits the move, locks the cell, and refreshes the gains of
// affected unlocked cells.
func (e *Engine) applyMove(c candidate) {
	v := c.v
	fi := e.blkIdx[c.from]
	// Remove v from its outgoing buckets.
	for ti := range e.blocks {
		if ti == fi {
			continue
		}
		e.buckets[e.dirIndex(fi, ti)].Remove(int32(v))
		e.st.BucketOps++
	}
	e.p.Move(v, c.to)
	e.locked[v] = true
	e.journal = append(e.journal, moveRec{v: v, from: c.from, to: c.to})

	// Refresh gains of every unlocked active cell sharing a net with v.
	// Gains in all directions can shift because "pins outside {F,T}"
	// conditions reference every block, so recompute the touched cells'
	// gains wholesale; each cell is refreshed once per applied move.
	e.epoch++
	for _, net := range e.h.Nets(v) {
		for _, u := range e.h.Pins(net) {
			if u == v || e.locked[u] || e.stamp[u] == e.epoch {
				continue
			}
			e.stamp[u] = e.epoch
			b := e.p.Block(u)
			ufi := e.blkIdx[b]
			if ufi < 0 {
				continue
			}
			for ti := range e.blocks {
				if ti == ufi {
					continue
				}
				g := e.cellGain(u, b, e.blocks[ti])
				e.buckets[e.dirIndex(ufi, ti)].Update(int32(u), g)
				e.st.BucketOps++
			}
		}
	}
}

// stackEntry records a candidate restart solution as a journal prefix.
type stackEntry struct {
	key       partition.Key
	dist      float64 // infeasibility distance, ranking for the infeasible stack
	prefixLen int
	snap      partition.Snapshot
	hasSnap   bool
}

// key evaluates the solution-comparison key under the configured objective.
func (e *Engine) key() partition.Key {
	if e.cfg.CutObjective {
		return partition.Key{F: e.p.CountFeasible(), D: float64(e.p.Cut())}
	}
	return e.p.Key(e.cfg.Cost, e.remainder, e.m)
}

// runPass executes one FM pass over the active blocks: moves cells until no
// admissible move remains, then rolls back to the best prefix. When collect
// is non-nil, every prefix whose key improves on the best-so-far (semi) or
// whose distance improves (infeasible) is offered to the stacks. A
// cancelled ctx ends the pass early; the rollback to the best prefix still
// runs, so the partition is left consistent.
func (e *Engine) runPass(ctx context.Context, collect *stacks) (improved bool, moves int) {
	e.initPass()
	e.journal = e.journal[:0]
	start := e.key()
	best := start
	bestLen := 0
	scratch := make([]int32, 0, e.cfg.TieWidth)

	for {
		// Poll cancellation every 64 applied moves so even the long
		// first passes on big circuits abort promptly.
		if moves&63 == 0 && ctx.Err() != nil {
			break
		}
		c, ok := e.selectBest(scratch)
		if !ok {
			break
		}
		e.applyMove(c)
		moves++
		key := e.key()
		if key.Better(best) {
			best = key
			bestLen = len(e.journal)
		}
		if collect != nil {
			collect.offer(e.p, key, len(e.journal))
		}
		if e.cfg.EarlyStop > 0 && len(e.journal)-bestLen > e.cfg.EarlyStop {
			break // §5 future work (b): stop drifting from the feasible region
		}
	}

	// Materialize stack snapshots before rolling back (entries reference
	// journal prefixes of this pass).
	if collect != nil {
		collect.materialize(e.p, e.journal)
	}

	// Roll back to the best prefix.
	for i := len(e.journal) - 1; i >= bestLen; i-- {
		e.p.Move(e.journal[i].v, e.journal[i].from)
	}
	return best.Better(start), moves
}

// stacks holds the two restart stacks of §3.6.
type stacks struct {
	depth  int
	cost   partition.CostParams
	semi   []stackEntry
	infeas []stackEntry
}

// offer records a prefix in the appropriate stack if it ranks well enough.
// Snapshots are not taken here; materialize replays the journal once at the
// end of the collecting pass.
func (s *stacks) offer(p *partition.Partition, key partition.Key, prefixLen int) {
	if s.depth == 0 {
		return
	}
	entry := stackEntry{key: key, dist: key.D, prefixLen: prefixLen}
	if p.Classify() == partition.InfeasibleSolution {
		s.infeas = insertRanked(s.infeas, entry, s.depth, func(a, b stackEntry) bool {
			return a.dist < b.dist
		})
	} else {
		s.semi = insertRanked(s.semi, entry, s.depth, func(a, b stackEntry) bool {
			return a.key.Better(b.key)
		})
	}
}

// insertRanked keeps list sorted best-first, bounded to depth, replacing the
// worst entry when full. Entries with identical rank keys are deduplicated.
func insertRanked(list []stackEntry, ent stackEntry, depth int, less func(a, b stackEntry) bool) []stackEntry {
	for _, ex := range list {
		if ex.key == ent.key {
			return list // duplicate solution quality: keep the earlier one
		}
	}
	pos := sort.Search(len(list), func(i int) bool { return less(ent, list[i]) })
	if pos == len(list) && len(list) >= depth {
		return list
	}
	list = append(list, stackEntry{})
	copy(list[pos+1:], list[pos:])
	list[pos] = ent
	if len(list) > depth {
		list = list[:depth]
	}
	return list
}

// materialize converts journal-prefix entries into real snapshots by
// replaying the pass journal from its start state. Called exactly once, at
// the end of the collecting pass, while the journal is fully applied.
func (s *stacks) materialize(p *partition.Partition, journal []moveRec) {
	all := append(append([]*stackEntry{}, refs(s.semi)...), refs(s.infeas)...)
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i].prefixLen > all[j].prefixLen })
	// Walk backwards from the fully-applied state, undoing moves and
	// snapshotting at each requested prefix length.
	pos := len(journal)
	for _, ent := range all {
		for pos > ent.prefixLen {
			pos--
			p.Move(journal[pos].v, journal[pos].from)
		}
		ent.snap = p.Snapshot()
		ent.hasSnap = true
	}
	// Reapply to return to the fully-applied state runPass expects.
	for ; pos < len(journal); pos++ {
		p.Move(journal[pos].v, journal[pos].to)
	}
}

func refs(list []stackEntry) []*stackEntry {
	out := make([]*stackEntry, len(list))
	for i := range list {
		out[i] = &list[i]
	}
	return out
}

// Improve runs the full §3.6 improvement procedure over the given active
// blocks: a pass series from the current solution (collecting restart
// solutions during the first pass), then a pass series from each stacked
// semi-feasible and infeasible solution, finally restoring the best solution
// seen. remainder designates the current remainder block (NoBlock for
// contexts without one), and m is the device lower bound M.
func (e *Engine) Improve(blocks []partition.BlockID, remainder partition.BlockID, m int) Stats {
	st, _ := e.ImproveCtx(context.Background(), blocks, remainder, m)
	return st
}

// ImproveCtx is Improve with cancellation: the pass loop polls ctx and
// aborts promptly when it is cancelled or its deadline passes, restoring
// the best solution seen so far (the partition is always left consistent)
// and returning ctx's error alongside the partial Stats.
func (e *Engine) ImproveCtx(ctx context.Context, blocks []partition.BlockID, remainder partition.BlockID, m int) (Stats, error) {
	var st Stats
	if len(blocks) < 2 {
		return st, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return st, err // don't even fill the buckets on a dead context
	}
	e.st = &st
	defer func() { e.st = new(Stats) }()
	e.blocks = blocks
	e.remainder = remainder
	e.m = m
	e.allowOver = e.p.NumBlocks() <= m
	if cap(e.blkIdx) < e.p.NumBlocks() {
		e.blkIdx = make([]int, e.p.NumBlocks())
	}
	e.blkIdx = e.blkIdx[:e.p.NumBlocks()]
	for i := range e.blkIdx {
		e.blkIdx[i] = -1
	}
	for i, b := range blocks {
		e.blkIdx[b] = i
	}

	collect := &stacks{depth: e.cfg.StackDepth, cost: e.cfg.Cost}
	startKey := e.key()

	series := func(col *stacks) {
		for pass := 0; pass < e.cfg.MaxPasses; pass++ {
			var c *stacks
			if col != nil && pass == 0 {
				c = col
			}
			improved, moves := e.runPass(ctx, c)
			st.Passes++
			st.MovesApplied += moves
			if !improved || ctx.Err() != nil {
				break
			}
		}
	}

	series(collect)
	bestKey := e.key()
	bestSnap := e.p.Snapshot()

	restart := func(label string, ents []stackEntry) {
		for _, ent := range ents {
			if !ent.hasSnap {
				continue
			}
			if ctx.Err() != nil {
				return
			}
			e.p.Restore(ent.snap)
			st.Restarts++
			e.cfg.Obs.Emit(obs.Event{Type: obs.StackRestart, Label: label, Moves: ent.prefixLen})
			series(nil)
			if key := e.key(); key.Better(bestKey) {
				bestKey = key
				bestSnap = e.p.Snapshot()
				e.cfg.Obs.Emit(obs.Event{Type: obs.SolutionAccepted, Label: label})
			} else {
				e.cfg.Obs.Emit(obs.Event{Type: obs.SolutionRejected, Label: label})
			}
		}
	}
	restart("semi", collect.semi)
	restart("infeasible", collect.infeas)

	e.p.Restore(bestSnap)
	st.Improved = bestKey.Better(startKey)
	return st, ctx.Err()
}
